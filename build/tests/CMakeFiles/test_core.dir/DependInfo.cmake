
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_amnt.cc" "tests/CMakeFiles/test_core.dir/core/test_amnt.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_amnt.cc.o.d"
  "/root/repo/tests/core/test_amnt_levels.cc" "tests/CMakeFiles/test_core.dir/core/test_amnt_levels.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_amnt_levels.cc.o.d"
  "/root/repo/tests/core/test_history_buffer.cc" "tests/CMakeFiles/test_core.dir/core/test_history_buffer.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_history_buffer.cc.o.d"
  "/root/repo/tests/core/test_hw_overhead.cc" "tests/CMakeFiles/test_core.dir/core/test_hw_overhead.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hw_overhead.cc.o.d"
  "/root/repo/tests/core/test_hybrid.cc" "tests/CMakeFiles/test_core.dir/core/test_hybrid.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hybrid.cc.o.d"
  "/root/repo/tests/core/test_recovery_planner.cc" "tests/CMakeFiles/test_core.dir/core/test_recovery_planner.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_recovery_planner.cc.o.d"
  "/root/repo/tests/core/test_subtree.cc" "tests/CMakeFiles/test_core.dir/core/test_subtree.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_subtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/midsummer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
