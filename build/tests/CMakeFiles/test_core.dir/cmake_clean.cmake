file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_amnt.cc.o"
  "CMakeFiles/test_core.dir/core/test_amnt.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_amnt_levels.cc.o"
  "CMakeFiles/test_core.dir/core/test_amnt_levels.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_history_buffer.cc.o"
  "CMakeFiles/test_core.dir/core/test_history_buffer.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hw_overhead.cc.o"
  "CMakeFiles/test_core.dir/core/test_hw_overhead.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hybrid.cc.o"
  "CMakeFiles/test_core.dir/core/test_hybrid.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_recovery_planner.cc.o"
  "CMakeFiles/test_core.dir/core/test_recovery_planner.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_subtree.cc.o"
  "CMakeFiles/test_core.dir/core/test_subtree.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
