file(REMOVE_RECURSE
  "CMakeFiles/test_bmt.dir/bmt/test_counters.cc.o"
  "CMakeFiles/test_bmt.dir/bmt/test_counters.cc.o.d"
  "CMakeFiles/test_bmt.dir/bmt/test_geometry.cc.o"
  "CMakeFiles/test_bmt.dir/bmt/test_geometry.cc.o.d"
  "CMakeFiles/test_bmt.dir/bmt/test_tree.cc.o"
  "CMakeFiles/test_bmt.dir/bmt/test_tree.cc.o.d"
  "test_bmt"
  "test_bmt.pdb"
  "test_bmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
