# Empty compiler generated dependencies file for test_bmt.
# This may be replaced when dependencies are built.
