file(REMOVE_RECURSE
  "CMakeFiles/test_mee.dir/mee/test_anubis.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_anubis.cc.o.d"
  "CMakeFiles/test_mee.dir/mee/test_bmf.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_bmf.cc.o.d"
  "CMakeFiles/test_mee.dir/mee/test_engine_basic.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_engine_basic.cc.o.d"
  "CMakeFiles/test_mee.dir/mee/test_engine_latency.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_engine_latency.cc.o.d"
  "CMakeFiles/test_mee.dir/mee/test_factory.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_factory.cc.o.d"
  "CMakeFiles/test_mee.dir/mee/test_osiris.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_osiris.cc.o.d"
  "CMakeFiles/test_mee.dir/mee/test_strict_leaf.cc.o"
  "CMakeFiles/test_mee.dir/mee/test_strict_leaf.cc.o.d"
  "test_mee"
  "test_mee.pdb"
  "test_mee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
