
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mee/test_anubis.cc" "tests/CMakeFiles/test_mee.dir/mee/test_anubis.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_anubis.cc.o.d"
  "/root/repo/tests/mee/test_bmf.cc" "tests/CMakeFiles/test_mee.dir/mee/test_bmf.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_bmf.cc.o.d"
  "/root/repo/tests/mee/test_engine_basic.cc" "tests/CMakeFiles/test_mee.dir/mee/test_engine_basic.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_engine_basic.cc.o.d"
  "/root/repo/tests/mee/test_engine_latency.cc" "tests/CMakeFiles/test_mee.dir/mee/test_engine_latency.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_engine_latency.cc.o.d"
  "/root/repo/tests/mee/test_factory.cc" "tests/CMakeFiles/test_mee.dir/mee/test_factory.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_factory.cc.o.d"
  "/root/repo/tests/mee/test_osiris.cc" "tests/CMakeFiles/test_mee.dir/mee/test_osiris.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_osiris.cc.o.d"
  "/root/repo/tests/mee/test_strict_leaf.cc" "tests/CMakeFiles/test_mee.dir/mee/test_strict_leaf.cc.o" "gcc" "tests/CMakeFiles/test_mee.dir/mee/test_strict_leaf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/midsummer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
