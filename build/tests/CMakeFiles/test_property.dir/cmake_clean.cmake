file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_allocator_storm.cc.o"
  "CMakeFiles/test_property.dir/property/test_allocator_storm.cc.o.d"
  "CMakeFiles/test_property.dir/property/test_crash_recovery.cc.o"
  "CMakeFiles/test_property.dir/property/test_crash_recovery.cc.o.d"
  "CMakeFiles/test_property.dir/property/test_plane_equivalence.cc.o"
  "CMakeFiles/test_property.dir/property/test_plane_equivalence.cc.o.d"
  "CMakeFiles/test_property.dir/property/test_protocol_differential.cc.o"
  "CMakeFiles/test_property.dir/property/test_protocol_differential.cc.o.d"
  "CMakeFiles/test_property.dir/property/test_tamper.cc.o"
  "CMakeFiles/test_property.dir/property/test_tamper.cc.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
