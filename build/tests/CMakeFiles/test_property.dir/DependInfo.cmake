
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/test_allocator_storm.cc" "tests/CMakeFiles/test_property.dir/property/test_allocator_storm.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_allocator_storm.cc.o.d"
  "/root/repo/tests/property/test_crash_recovery.cc" "tests/CMakeFiles/test_property.dir/property/test_crash_recovery.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_crash_recovery.cc.o.d"
  "/root/repo/tests/property/test_plane_equivalence.cc" "tests/CMakeFiles/test_property.dir/property/test_plane_equivalence.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_plane_equivalence.cc.o.d"
  "/root/repo/tests/property/test_protocol_differential.cc" "tests/CMakeFiles/test_property.dir/property/test_protocol_differential.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_protocol_differential.cc.o.d"
  "/root/repo/tests/property/test_tamper.cc" "tests/CMakeFiles/test_property.dir/property/test_tamper.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_tamper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/midsummer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
