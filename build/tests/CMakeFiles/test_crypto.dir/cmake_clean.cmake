file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_engines.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_engines.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_hmac.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_hmac.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_sha256.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_sha256.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_siphash.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_siphash.cc.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
