
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_aes128.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o.d"
  "/root/repo/tests/crypto/test_engines.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_engines.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_engines.cc.o.d"
  "/root/repo/tests/crypto/test_hmac.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_hmac.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_hmac.cc.o.d"
  "/root/repo/tests/crypto/test_sha256.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_sha256.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_sha256.cc.o.d"
  "/root/repo/tests/crypto/test_siphash.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_siphash.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_siphash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/midsummer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
