
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmt/counters.cc" "src/CMakeFiles/midsummer.dir/bmt/counters.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/bmt/counters.cc.o.d"
  "/root/repo/src/bmt/geometry.cc" "src/CMakeFiles/midsummer.dir/bmt/geometry.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/bmt/geometry.cc.o.d"
  "/root/repo/src/bmt/tree.cc" "src/CMakeFiles/midsummer.dir/bmt/tree.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/bmt/tree.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/midsummer.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/midsummer.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/midsummer.dir/common/log.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/midsummer.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/midsummer.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/midsummer.dir/common/table.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/common/table.cc.o.d"
  "/root/repo/src/core/amnt.cc" "src/CMakeFiles/midsummer.dir/core/amnt.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/core/amnt.cc.o.d"
  "/root/repo/src/core/history_buffer.cc" "src/CMakeFiles/midsummer.dir/core/history_buffer.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/core/history_buffer.cc.o.d"
  "/root/repo/src/core/hw_overhead.cc" "src/CMakeFiles/midsummer.dir/core/hw_overhead.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/core/hw_overhead.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/CMakeFiles/midsummer.dir/core/hybrid.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/core/hybrid.cc.o.d"
  "/root/repo/src/core/recovery_planner.cc" "src/CMakeFiles/midsummer.dir/core/recovery_planner.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/core/recovery_planner.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "src/CMakeFiles/midsummer.dir/crypto/aes128.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/engines.cc" "src/CMakeFiles/midsummer.dir/crypto/engines.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/crypto/engines.cc.o.d"
  "/root/repo/src/crypto/hmac_sha256.cc" "src/CMakeFiles/midsummer.dir/crypto/hmac_sha256.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/crypto/hmac_sha256.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/midsummer.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/siphash.cc" "src/CMakeFiles/midsummer.dir/crypto/siphash.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/crypto/siphash.cc.o.d"
  "/root/repo/src/mee/anubis.cc" "src/CMakeFiles/midsummer.dir/mee/anubis.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mee/anubis.cc.o.d"
  "/root/repo/src/mee/baselines.cc" "src/CMakeFiles/midsummer.dir/mee/baselines.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mee/baselines.cc.o.d"
  "/root/repo/src/mee/bmf.cc" "src/CMakeFiles/midsummer.dir/mee/bmf.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mee/bmf.cc.o.d"
  "/root/repo/src/mee/engine.cc" "src/CMakeFiles/midsummer.dir/mee/engine.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mee/engine.cc.o.d"
  "/root/repo/src/mee/factory.cc" "src/CMakeFiles/midsummer.dir/mee/factory.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mee/factory.cc.o.d"
  "/root/repo/src/mem/memory_map.cc" "src/CMakeFiles/midsummer.dir/mem/memory_map.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mem/memory_map.cc.o.d"
  "/root/repo/src/mem/nvm_device.cc" "src/CMakeFiles/midsummer.dir/mem/nvm_device.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/mem/nvm_device.cc.o.d"
  "/root/repo/src/os/amntpp_allocator.cc" "src/CMakeFiles/midsummer.dir/os/amntpp_allocator.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/os/amntpp_allocator.cc.o.d"
  "/root/repo/src/os/buddy_allocator.cc" "src/CMakeFiles/midsummer.dir/os/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/os/buddy_allocator.cc.o.d"
  "/root/repo/src/os/page_table.cc" "src/CMakeFiles/midsummer.dir/os/page_table.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/os/page_table.cc.o.d"
  "/root/repo/src/sim/presets.cc" "src/CMakeFiles/midsummer.dir/sim/presets.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/sim/presets.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/midsummer.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/midsummer.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/CMakeFiles/midsummer.dir/sim/workload.cc.o" "gcc" "src/CMakeFiles/midsummer.dir/sim/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
