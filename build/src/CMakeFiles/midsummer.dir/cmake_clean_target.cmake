file(REMOVE_RECURSE
  "libmidsummer.a"
)
