# Empty dependencies file for midsummer.
# This may be replaced when dependencies are built.
