# Empty dependencies file for fig05_parsec_multi.
# This may be replaced when dependencies are built.
