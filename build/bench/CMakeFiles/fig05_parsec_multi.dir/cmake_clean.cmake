file(REMOVE_RECURSE
  "CMakeFiles/fig05_parsec_multi.dir/fig05_parsec_multi.cc.o"
  "CMakeFiles/fig05_parsec_multi.dir/fig05_parsec_multi.cc.o.d"
  "fig05_parsec_multi"
  "fig05_parsec_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_parsec_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
