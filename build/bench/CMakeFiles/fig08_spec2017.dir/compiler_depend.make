# Empty compiler generated dependencies file for fig08_spec2017.
# This may be replaced when dependencies are built.
