file(REMOVE_RECURSE
  "CMakeFiles/fig08_spec2017.dir/fig08_spec2017.cc.o"
  "CMakeFiles/fig08_spec2017.dir/fig08_spec2017.cc.o.d"
  "fig08_spec2017"
  "fig08_spec2017.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_spec2017.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
