# Empty dependencies file for ablation_tradeoff.
# This may be replaced when dependencies are built.
