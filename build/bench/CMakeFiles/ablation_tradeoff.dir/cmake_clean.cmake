file(REMOVE_RECURSE
  "CMakeFiles/ablation_tradeoff.dir/ablation_tradeoff.cc.o"
  "CMakeFiles/ablation_tradeoff.dir/ablation_tradeoff.cc.o.d"
  "ablation_tradeoff"
  "ablation_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
