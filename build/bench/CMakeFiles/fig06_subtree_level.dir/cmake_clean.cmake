file(REMOVE_RECURSE
  "CMakeFiles/fig06_subtree_level.dir/fig06_subtree_level.cc.o"
  "CMakeFiles/fig06_subtree_level.dir/fig06_subtree_level.cc.o.d"
  "fig06_subtree_level"
  "fig06_subtree_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_subtree_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
