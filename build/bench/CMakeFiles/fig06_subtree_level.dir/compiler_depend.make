# Empty compiler generated dependencies file for fig06_subtree_level.
# This may be replaced when dependencies are built.
