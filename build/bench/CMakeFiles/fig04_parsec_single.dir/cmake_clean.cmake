file(REMOVE_RECURSE
  "CMakeFiles/fig04_parsec_single.dir/fig04_parsec_single.cc.o"
  "CMakeFiles/fig04_parsec_single.dir/fig04_parsec_single.cc.o.d"
  "fig04_parsec_single"
  "fig04_parsec_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_parsec_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
