# Empty compiler generated dependencies file for fig04_parsec_single.
# This may be replaced when dependencies are built.
