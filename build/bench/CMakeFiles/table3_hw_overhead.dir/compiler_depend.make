# Empty compiler generated dependencies file for table3_hw_overhead.
# This may be replaced when dependencies are built.
