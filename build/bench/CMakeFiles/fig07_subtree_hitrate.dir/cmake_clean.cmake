file(REMOVE_RECURSE
  "CMakeFiles/fig07_subtree_hitrate.dir/fig07_subtree_hitrate.cc.o"
  "CMakeFiles/fig07_subtree_hitrate.dir/fig07_subtree_hitrate.cc.o.d"
  "fig07_subtree_hitrate"
  "fig07_subtree_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_subtree_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
