# Empty dependencies file for fig07_subtree_hitrate.
# This may be replaced when dependencies are built.
