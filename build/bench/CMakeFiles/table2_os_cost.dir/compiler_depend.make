# Empty compiler generated dependencies file for table2_os_cost.
# This may be replaced when dependencies are built.
