file(REMOVE_RECURSE
  "CMakeFiles/table2_os_cost.dir/table2_os_cost.cc.o"
  "CMakeFiles/table2_os_cost.dir/table2_os_cost.cc.o.d"
  "table2_os_cost"
  "table2_os_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_os_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
