# Empty compiler generated dependencies file for multiprogram_locality.
# This may be replaced when dependencies are built.
