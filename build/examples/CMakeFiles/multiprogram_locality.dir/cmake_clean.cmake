file(REMOVE_RECURSE
  "CMakeFiles/multiprogram_locality.dir/multiprogram_locality.cpp.o"
  "CMakeFiles/multiprogram_locality.dir/multiprogram_locality.cpp.o.d"
  "multiprogram_locality"
  "multiprogram_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogram_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
