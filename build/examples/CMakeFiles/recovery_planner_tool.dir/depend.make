# Empty dependencies file for recovery_planner_tool.
# This may be replaced when dependencies are built.
