file(REMOVE_RECURSE
  "CMakeFiles/recovery_planner_tool.dir/recovery_planner_tool.cpp.o"
  "CMakeFiles/recovery_planner_tool.dir/recovery_planner_tool.cpp.o.d"
  "recovery_planner_tool"
  "recovery_planner_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_planner_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
