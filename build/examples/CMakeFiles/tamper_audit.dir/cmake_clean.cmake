file(REMOVE_RECURSE
  "CMakeFiles/tamper_audit.dir/tamper_audit.cpp.o"
  "CMakeFiles/tamper_audit.dir/tamper_audit.cpp.o.d"
  "tamper_audit"
  "tamper_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamper_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
