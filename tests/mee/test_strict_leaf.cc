#include <gtest/gtest.h>

#include "common/log.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

TEST(Strict, NothingStaleEver)
{
    Rig rig(mee::Protocol::Strict);
    for (std::uint64_t i = 0; i < 200; ++i)
        test::writePattern(*rig.engine, i * 4096 + (i % 8) * 64, i);
    EXPECT_TRUE(rig.engine->staleMetadataBlocks().empty());
}

TEST(Strict, RecoveryIsImmediateAndSucceeds)
{
    Rig rig(mee::Protocol::Strict);
    for (std::uint64_t i = 0; i < 100; ++i)
        test::writePattern(*rig.engine, i * 4096, i);
    rig.engine->crash();
    const auto report = rig.engine->recover();
    EXPECT_TRUE(report.success);
    EXPECT_DOUBLE_EQ(report.estimatedMs, 0.0);
    EXPECT_EQ(report.blocksRead, 0ull);
    for (std::uint64_t i = 0; i < 100; i += 13)
        EXPECT_TRUE(test::checkPattern(*rig.engine, i * 4096, i));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Leaf, CountersAndHmacsNeverStale)
{
    Rig rig(mee::Protocol::Leaf);
    for (std::uint64_t i = 0; i < 300; ++i)
        test::writePattern(*rig.engine, (i % 150) * 4096, i);
    for (Addr a : rig.engine->staleMetadataBlocks()) {
        EXPECT_EQ(rig.engine->map().classify(a), mem::Region::Tree)
            << "stale non-tree block";
    }
}

TEST(Leaf, TreeNodesAreLazyDirty)
{
    Rig rig(mee::Protocol::Leaf);
    for (std::uint64_t i = 0; i < 50; ++i)
        test::writePattern(*rig.engine, i * 4096, i);
    EXPECT_FALSE(rig.engine->staleMetadataBlocks().empty());
}

TEST(Leaf, CrashRecoverVerifiesAllData)
{
    Rig rig(mee::Protocol::Leaf);
    for (std::uint64_t i = 0; i < 200; ++i)
        test::writePattern(*rig.engine, i * 4096 + (i % 4) * 64,
                           500 + i);
    rig.engine->crash();
    const auto report = rig.engine->recover();
    EXPECT_TRUE(report.success);
    EXPECT_GT(report.blocksRead, 0ull);
    EXPECT_GT(report.estimatedMs, 0.0);
    EXPECT_EQ(report.countersRecovered, 200ull);
    for (std::uint64_t i = 0; i < 200; ++i)
        EXPECT_TRUE(test::checkPattern(
            *rig.engine, i * 4096 + (i % 4) * 64, 500 + i));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Leaf, RecoveredStateSupportsFurtherWrites)
{
    Rig rig(mee::Protocol::Leaf);
    test::writePattern(*rig.engine, 0x1000, 1);
    rig.engine->crash();
    ASSERT_TRUE(rig.engine->recover().success);
    test::writePattern(*rig.engine, 0x1000, 2);
    test::writePattern(*rig.engine, 0x9000, 3);
    EXPECT_TRUE(test::checkPattern(*rig.engine, 0x1000, 2));
    EXPECT_TRUE(test::checkPattern(*rig.engine, 0x9000, 3));

    // Even across a second crash.
    rig.engine->crash();
    ASSERT_TRUE(rig.engine->recover().success);
    EXPECT_TRUE(test::checkPattern(*rig.engine, 0x9000, 3));
}

TEST(Volatile, RecoveryFailsWithDirtyState)
{
    setQuiet(true);
    Rig rig(mee::Protocol::Volatile);
    for (std::uint64_t i = 0; i < 50; ++i)
        test::writePattern(*rig.engine, i * 4096, i);
    rig.engine->crash();
    const auto report = rig.engine->recover();
    EXPECT_FALSE(report.success) << "no NV root register to trust";
    setQuiet(false);
}

TEST(WriteLatency, StrictCostsMoreThanLeafCostsMoreThanVolatile)
{
    Rig v(mee::Protocol::Volatile);
    Rig l(mee::Protocol::Leaf);
    Rig s(mee::Protocol::Strict);
    std::uint8_t buf[kBlockSize] = {1};

    Cycle cv = 0, cl = 0, cs = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        cv += v.engine->write(i * 4096, buf);
        cl += l.engine->write(i * 4096, buf);
        cs += s.engine->write(i * 4096, buf);
    }
    EXPECT_LT(cv, cl);
    EXPECT_LT(cl, cs);
    // Strict serializes the whole ancestral path: the gap must be
    // roughly the path length, not marginal.
    EXPECT_GT(cs, cl * 2);
}

TEST(Persistence, StrictGeneratesMoreNvmWritesThanLeaf)
{
    Rig l(mee::Protocol::Leaf);
    Rig s(mee::Protocol::Strict);
    for (std::uint64_t i = 0; i < 100; ++i) {
        test::writePattern(*l.engine, i * 4096, i);
        test::writePattern(*s.engine, i * 4096, i);
    }
    EXPECT_GT(s.nvm->writes(), l.nvm->writes());
}

} // namespace
} // namespace amnt
