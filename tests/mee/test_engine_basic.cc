#include <gtest/gtest.h>

#include "common/log.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

class EngineBasic
    : public ::testing::TestWithParam<crypto::CryptoPlane>
{
  protected:
    EngineBasic()
        : rig_(mee::Protocol::Leaf, test::smallConfig(GetParam()))
    {
        setQuiet(true);
    }
    ~EngineBasic() override { setQuiet(false); }

    Rig rig_;
};

TEST_P(EngineBasic, WriteReadRoundTrip)
{
    test::writePattern(*rig_.engine, 0x1000, 1);
    EXPECT_TRUE(test::checkPattern(*rig_.engine, 0x1000, 1));
    EXPECT_EQ(rig_.engine->violations(), 0ull);
}

TEST_P(EngineBasic, UnwrittenBlocksReadZero)
{
    std::uint8_t buf[kBlockSize];
    std::memset(buf, 0xaa, sizeof(buf));
    rig_.engine->read(0x2000, buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(rig_.engine->violations(), 0ull);
}

TEST_P(EngineBasic, OverwriteBumpsCounter)
{
    test::writePattern(*rig_.engine, 0x3000, 1);
    test::writePattern(*rig_.engine, 0x3000, 2);
    const auto &cb = rig_.engine->treeState().counter(
        rig_.engine->map().counterIndexOf(0x3000));
    EXPECT_EQ(cb.minors[(0x3000 / kBlockSize) % kBlocksPerPage], 2);
    EXPECT_TRUE(test::checkPattern(*rig_.engine, 0x3000, 2));
}

TEST_P(EngineBasic, ManyBlocksManyPages)
{
    for (std::uint64_t i = 0; i < 300; ++i)
        test::writePattern(*rig_.engine, i * 4096 + (i % 64) * 64,
                           1000 + i);
    for (std::uint64_t i = 0; i < 300; ++i)
        EXPECT_TRUE(test::checkPattern(
            *rig_.engine, i * 4096 + (i % 64) * 64, 1000 + i));
    EXPECT_EQ(rig_.engine->violations(), 0ull);
}

TEST_P(EngineBasic, MinorOverflowReencryptsPage)
{
    // Write one block 128 times: the 7-bit minor overflows once.
    test::writePattern(*rig_.engine, 0x5040, 7); // sibling block
    for (int i = 0; i < 128; ++i)
        test::writePattern(*rig_.engine, 0x5000, 100 + i);

    EXPECT_EQ(rig_.engine->stats().get("overflow_reencrypts"), 1ull);
    const auto &cb = rig_.engine->treeState().counter(
        rig_.engine->map().counterIndexOf(0x5000));
    EXPECT_EQ(cb.major, 1ull);

    // Both the hammered block and its sibling must still decrypt and
    // verify under the new major counter.
    EXPECT_TRUE(test::checkPattern(*rig_.engine, 0x5000, 227));
    EXPECT_TRUE(test::checkPattern(*rig_.engine, 0x5040, 7));
    EXPECT_EQ(rig_.engine->violations(), 0ull);
}

TEST_P(EngineBasic, RootRegisterTracksWrites)
{
    EXPECT_EQ(rig_.engine->rootRegister(), 0ull);
    test::writePattern(*rig_.engine, 0, 1);
    const std::uint64_t r1 = rig_.engine->rootRegister();
    EXPECT_NE(r1, 0ull);
    test::writePattern(*rig_.engine, 0, 2);
    EXPECT_NE(rig_.engine->rootRegister(), r1);
}

TEST_P(EngineBasic, StatsCountAccesses)
{
    test::writePattern(*rig_.engine, 0, 1);
    test::checkPattern(*rig_.engine, 0, 1);
    EXPECT_EQ(rig_.engine->stats().get("data_writes"), 1ull);
    EXPECT_EQ(rig_.engine->stats().get("data_reads"), 1ull);
}

TEST_P(EngineBasic, MetadataCacheEvictionsWriteBack)
{
    // Touch enough pages to overflow the 8 kB metadata cache; dirty
    // tree nodes must be written back, not lost.
    for (std::uint64_t i = 0; i < 1024; ++i)
        test::writePattern(*rig_.engine, i * 4096, i);
    EXPECT_GT(rig_.engine->stats().get("meta_writebacks"), 0ull);
    for (std::uint64_t i = 0; i < 1024; i += 37)
        EXPECT_TRUE(test::checkPattern(*rig_.engine, i * 4096, i));
    EXPECT_EQ(rig_.engine->violations(), 0ull);
}

INSTANTIATE_TEST_SUITE_P(
    BothPlanes, EngineBasic,
    ::testing::Values(crypto::CryptoPlane::Fast,
                      crypto::CryptoPlane::Functional),
    [](const auto &info) {
        return info.param == crypto::CryptoPlane::Fast ? "Fast"
                                                       : "Functional";
    });

} // namespace
} // namespace amnt
