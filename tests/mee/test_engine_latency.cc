/**
 * Latency-model unit tests: the per-access cycle charges the timing
 * figures are built from — metadata-cache hits vs misses, pad
 * generation serialization, persist serialization per protocol, and
 * the Anubis per-miss shadow persist.
 */

#include <gtest/gtest.h>

#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

TEST(Latency, WarmReadIsCheapColdReadPaysTheChain)
{
    Rig rig(mee::Protocol::Leaf);
    const auto &cfg = rig.config;

    test::writePattern(*rig.engine, 0x1000, 1);
    std::uint8_t out[kBlockSize];
    const Cycle warm = rig.engine->read(0x1000, out);
    // Metadata all cached: data fetch + cache + hash only.
    EXPECT_LT(warm, cfg.nvmReadCycles + 200);

    // Evict the metadata, then the same read pays an extra parallel
    // fetch round and the pad-generation serialization.
    for (std::uint64_t i = 1; i < 600; ++i)
        rig.engine->read((100 + i) * kPageSize, out);
    const Cycle cold = rig.engine->read(0x1000, out);
    EXPECT_GE(cold, warm + cfg.nvmReadCycles);
}

TEST(Latency, VolatileWritePersistsNothingExtra)
{
    Rig v(mee::Protocol::Volatile);
    std::uint8_t buf[kBlockSize] = {1};
    v.engine->write(0x2000, buf); // warm the metadata
    const Cycle second = v.engine->write(0x2000, buf);
    // All metadata cached: no NVM round trips on the critical path.
    EXPECT_LT(second, v.config.nvmWriteCycles);
}

TEST(Latency, LeafWritePaysOnePersistBurst)
{
    Rig l(mee::Protocol::Leaf);
    Rig v(mee::Protocol::Volatile);
    std::uint8_t buf[kBlockSize] = {1};
    l.engine->write(0x2000, buf);
    v.engine->write(0x2000, buf);
    const Cycle leaf = l.engine->write(0x2000, buf);
    const Cycle vol = v.engine->write(0x2000, buf);
    // persistOverlap = 0.5: half an NVM write on top of volatile.
    const Cycle burst =
        static_cast<Cycle>(0.5 * l.config.nvmWriteCycles);
    EXPECT_EQ(leaf, vol + burst);
}

TEST(Latency, StrictWriteSerializesTheWholePath)
{
    Rig s(mee::Protocol::Strict);
    Rig v(mee::Protocol::Volatile);
    std::uint8_t buf[kBlockSize] = {1};
    s.engine->write(0x2000, buf);
    v.engine->write(0x2000, buf);
    const Cycle strict = s.engine->write(0x2000, buf);
    const Cycle vol = v.engine->write(0x2000, buf);
    // data + counter + HMAC + every node level, ordered: with the
    // 4 MB test geometry that is 3 + 4 writes at 0.5 overlap.
    const unsigned levels =
        s.engine->map().geometry().nodeLevels();
    const Cycle chain = static_cast<Cycle>(
        (3 + levels - 0.5) * s.config.nvmWriteCycles);
    EXPECT_EQ(strict, vol + chain);
}

TEST(Latency, AnubisChargesPerMetadataMiss)
{
    Rig a(mee::Protocol::Anubis);
    Rig v(mee::Protocol::Volatile);
    std::uint8_t out[kBlockSize];
    // Cold read: both miss the same metadata levels, but Anubis adds
    // one serialized shadow persist per miss.
    const Cycle anubis = a.engine->read(0x9000, out);
    const Cycle vol = v.engine->read(0x9000, out);
    EXPECT_GT(anubis, vol);
    EXPECT_EQ((anubis - vol) % a.config.nvmWriteCycles, 0ull);
}

TEST(Latency, AmntInsideMatchesLeafOutsideMatchesStrict)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    cfg.amntInterval = 1 << 30; // pin the subtree
    Rig amnt(mee::Protocol::Amnt, cfg);
    Rig leaf(mee::Protocol::Leaf, cfg);
    Rig strict(mee::Protocol::Strict, cfg);
    std::uint8_t buf[kBlockSize] = {1};

    // Bootstrap AMNT's subtree at region 0, warm all three.
    for (auto *r : {&amnt, &leaf, &strict}) {
        r->engine->write(0x0, buf);
        r->engine->write(0x0, buf);
        r->engine->write(300 * kPageSize, buf);
        r->engine->write(300 * kPageSize, buf);
    }
    EXPECT_EQ(amnt.engine->write(0x0, buf),
              leaf.engine->write(0x0, buf));
    EXPECT_EQ(amnt.engine->write(300 * kPageSize, buf),
              strict.engine->write(300 * kPageSize, buf));
}

} // namespace
} // namespace amnt
