#include <gtest/gtest.h>

#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

TEST(Osiris, CounterStalenessBoundedByStopLoss)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.osirisStopLoss = 4;
    Rig rig(mee::Protocol::Osiris, cfg);

    // Three writes to one block: fewer than the stop-loss, so the
    // persisted counter lags by exactly three.
    for (int i = 0; i < 3; ++i)
        test::writePattern(*rig.engine, 0x1000, i);

    const std::uint64_t cidx = rig.engine->map().counterIndexOf(0x1000);
    mem::Block persisted_raw;
    rig.nvm->peek(rig.engine->map().counterBase() + cidx * kBlockSize,
                  persisted_raw);
    const auto persisted =
        bmt::CounterBlock::deserialize(persisted_raw);
    const auto &latest = rig.engine->treeState().counter(cidx);
    const unsigned slot = (0x1000 / kBlockSize) % kBlocksPerPage;
    EXPECT_EQ(latest.minors[slot], 3);
    EXPECT_EQ(persisted.minors[slot], 0);

    // The fourth write crosses the stop-loss and persists.
    test::writePattern(*rig.engine, 0x1000, 9);
    rig.nvm->peek(rig.engine->map().counterBase() + cidx * kBlockSize,
                  persisted_raw);
    EXPECT_EQ(bmt::CounterBlock::deserialize(persisted_raw)
                  .minors[slot],
              4);
}

TEST(Osiris, TrialRecoveryRestoresExactCounters)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.osirisStopLoss = 4;
    Rig rig(mee::Protocol::Osiris, cfg);

    Rng rng(77);
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.below(256) * 4096 + rng.below(8) * 64;
        test::writePattern(*rig.engine, a, 1000 + i);
    }

    // Snapshot the architectural counters before the crash.
    std::unordered_map<std::uint64_t, bmt::CounterBlock> before;
    rig.engine->treeState().forEachCounter(
        [&](std::uint64_t idx, const bmt::CounterBlock &cb) {
            before[idx] = cb;
        });

    rig.engine->crash();
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success);

    // Every recovered counter equals the pre-crash architecture.
    for (const auto &kv : before)
        EXPECT_EQ(rig.engine->treeState().counter(kv.first), kv.second)
            << "counter " << kv.first;
}

TEST(Osiris, RecoveredDataVerifies)
{
    Rig rig(mee::Protocol::Osiris);
    for (std::uint64_t i = 0; i < 120; ++i)
        test::writePattern(*rig.engine, i * 4096 + (i % 3) * 64,
                           i * 3 + 1);
    rig.engine->crash();
    ASSERT_TRUE(rig.engine->recover().success);
    for (std::uint64_t i = 0; i < 120; ++i)
        EXPECT_TRUE(test::checkPattern(
            *rig.engine, i * 4096 + (i % 3) * 64, i * 3 + 1));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Osiris, OverflowForcesCounterPersist)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.osirisStopLoss = 200; // never persist by count alone
    Rig rig(mee::Protocol::Osiris, cfg);
    for (int i = 0; i < 128; ++i) // overflow at write 128
        test::writePattern(*rig.engine, 0x2000, i);

    const std::uint64_t cidx = rig.engine->map().counterIndexOf(0x2000);
    mem::Block raw;
    rig.nvm->peek(rig.engine->map().counterBase() + cidx * kBlockSize,
                  raw);
    EXPECT_EQ(bmt::CounterBlock::deserialize(raw).major, 1ull);
}

TEST(Osiris, FewerCounterPersistsThanLeaf)
{
    Rig o(mee::Protocol::Osiris);
    Rig l(mee::Protocol::Leaf);
    for (int i = 0; i < 400; ++i) {
        test::writePattern(*o.engine, 0x3000 + (i % 4) * 64, i);
        test::writePattern(*l.engine, 0x3000 + (i % 4) * 64, i);
    }
    EXPECT_LT(o.nvm->writes(), l.nvm->writes());
}

TEST(Osiris, RecoveryCostExceedsLeaf)
{
    // Same footprint, crash both: Osiris needs the extra data reads
    // for its trials, so its modeled recovery traffic is larger.
    Rig o(mee::Protocol::Osiris);
    Rig l(mee::Protocol::Leaf);
    for (std::uint64_t i = 0; i < 100; ++i) {
        test::writePattern(*o.engine, i * 4096, i);
        test::writePattern(*l.engine, i * 4096, i);
    }
    o.engine->crash();
    l.engine->crash();
    const auto ro = o.engine->recover();
    const auto rl = l.engine->recover();
    ASSERT_TRUE(ro.success);
    ASSERT_TRUE(rl.success);
    EXPECT_GT(ro.blocksRead, rl.blocksRead);
}

} // namespace
} // namespace amnt
