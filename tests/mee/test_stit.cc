/**
 * STIT (coalesced BMT update pipeline): coalescing under bursty
 * same-subtree write trains, the bounded-queue invariant, and the
 * adversarial persist-reordering case — a crash while node persists
 * sit reordered behind their (already persisted) counters must never
 * lose a committed write.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mee/mee_test_util.hh"
#include "mee/stit.hh"

namespace amnt
{
namespace
{

using test::Rig;

mee::StitStrategy &
stit(Rig &rig)
{
    return static_cast<mee::StitStrategy &>(rig.engine->strategy());
}

mee::MeeConfig
stitConfig(unsigned depth = 16, unsigned drain = 2)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.stitQueueDepth = depth;
    cfg.stitDrain = drain;
    return cfg;
}

TEST(Stit, BurstySameSubtreeWritesCoalesce)
{
    // A write train inside one page shares the whole ancestral path:
    // after the first write queues it, every later write coalesces
    // into the pending entries instead of adding NVM traffic.
    Rig rig(mee::Protocol::Stit, stitConfig(16, 1));
    for (std::uint64_t i = 0; i < 64; ++i)
        test::writePattern(*rig.engine, (i % 8) * kBlockSize, i);
    EXPECT_GT(stit(rig).coalesced(), 0ull);
    // Coalescing dominates: far fewer entries were created than
    // logical node updates (64 writes x path length).
    EXPECT_LT(rig.engine->stats().get("stit_enqueues"),
              rig.engine->stats().get("stit_coalesced"));
}

TEST(Stit, ScatteredWritesCoalesceLessThanBursty)
{
    Rig bursty(mee::Protocol::Stit, stitConfig());
    Rig scattered(mee::Protocol::Stit, stitConfig());
    for (std::uint64_t i = 0; i < 128; ++i) {
        test::writePattern(*bursty.engine, (i % 8) * kBlockSize, i);
        test::writePattern(*scattered.engine,
                           (i * 37 % 1000) * kPageSize, i);
    }
    EXPECT_GT(stit(bursty).coalesced(), stit(scattered).coalesced());
}

TEST(Stit, QueueOccupancyNeverExceedsCap)
{
    Rig rig(mee::Protocol::Stit, stitConfig(8, 1));
    Rng rng(99);
    for (std::uint64_t i = 0; i < 300; ++i) {
        test::writePattern(
            *rig.engine,
            rng.below(1000) * kPageSize + rng.below(8) * kBlockSize,
            i);
        ASSERT_LE(stit(rig).pendingUpdates(), 8u) << "write " << i;
    }
    EXPECT_GT(rig.engine->stats().get("stit_drains"), 0ull);
}

TEST(Stit, CrashWithReorderedNodePersistsPendingRecovers)
{
    // Adversarial persist reordering: the queue holds node updates
    // whose counters persisted long ago. Crash with a full pipeline —
    // every queued update is lost — and demand complete recovery.
    Rig rig(mee::Protocol::Stit, stitConfig(32, 1));
    for (std::uint64_t i = 0; i < 200; ++i)
        test::writePattern(*rig.engine,
                           (i % 50) * kPageSize +
                               (i % 4) * kBlockSize,
                           i);
    ASSERT_GT(stit(rig).pendingUpdates(), 0u);
    rig.engine->crash();
    EXPECT_GT(rig.engine->stats().get("stit_lost_at_crash"), 0ull);
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success) << report.detail;
    // (i % 50, i % 4) repeats with period lcm(50, 4) = 100, so the
    // second hundred writes are the final content of every slot.
    for (std::uint64_t i = 100; i < 200; ++i)
        EXPECT_TRUE(test::checkPattern(
            *rig.engine,
            (i % 50) * kPageSize + (i % 4) * kBlockSize, i))
            << i;
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Stit, DirtyEvictionRetiresPendingEntry)
{
    // When the generic eviction path persists a victim that still has
    // a queued update, the entry must retire instead of repeating the
    // write later.
    Rig rig(mee::Protocol::Stit, stitConfig(64, 1));
    for (std::uint64_t i = 0; i < 600; ++i)
        test::writePattern(*rig.engine, (i * 13 % 1000) * kPageSize,
                           i);
    EXPECT_GT(rig.engine->stats().get("stit_evict_retires"), 0ull);
    // Conservation: every entry ever enqueued either drained, retired
    // at an eviction, or is still pending.
    EXPECT_EQ(rig.engine->stats().get("stit_enqueues"),
              rig.engine->stats().get("stit_drains") +
                  rig.engine->stats().get("stit_evict_retires") +
                  stit(rig).pendingUpdates());
}

TEST(Stit, RejectsZeroKnobs)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.stitQueueDepth = 0;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Stit, cfg, nvm),
                ::testing::ExitedWithCode(1), "queue depth");

    mee::MeeConfig cfg2 = test::smallConfig();
    cfg2.stitDrain = 0;
    mem::NvmDevice nvm2(
        mem::MemoryMap(cfg2.dataBytes).deviceBytes());
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Stit, cfg2, nvm2),
                ::testing::ExitedWithCode(1), "drain");
}

} // namespace
} // namespace amnt
