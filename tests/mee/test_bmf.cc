#include <gtest/gtest.h>

#include "mee/bmf.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

mee::BmfStrategy &
bmf(Rig &rig)
{
    return static_cast<mee::BmfStrategy &>(rig.engine->strategy());
}

TEST(Bmf, StartsWithGlobalRootOnly)
{
    Rig rig(mee::Protocol::Bmf);
    EXPECT_EQ(bmf(rig).rootSetSize(), 1ull);
    EXPECT_EQ(bmf(rig).coveringLevel(0), 1u);
}

TEST(Bmf, FullCoverageInvariantHolds)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.bmfInterval = 64;
    Rig rig(mee::Protocol::Bmf, cfg);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        test::writePattern(*rig.engine,
                           rng.below(1024) * 4096 + rng.below(4) * 64,
                           i);
    for (std::uint64_t c = 0; c < 1024; c += 41)
        EXPECT_TRUE(bmf(rig).covers(c)) << "counter " << c;
}

TEST(Bmf, PruningDescendsTowardHotLeaves)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.bmfInterval = 64;
    Rig rig(mee::Protocol::Bmf, cfg);
    // Hammer one page; the covering root should be pruned deeper.
    for (int i = 0; i < 1000; ++i)
        test::writePattern(*rig.engine, 0x7000 + (i % 8) * 64, i);
    const std::uint64_t cidx = rig.engine->map().counterIndexOf(0x7000);
    EXPECT_GT(bmf(rig).coveringLevel(cidx), 1u);
    EXPECT_GT(rig.engine->stats().get("bmf_prunes"), 0ull);
}

TEST(Bmf, HotWritesGetCheaperAfterAdaptation)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.bmfInterval = 64;
    Rig rig(mee::Protocol::Bmf, cfg);
    std::uint8_t buf[kBlockSize] = {9};

    Cycle early = 0;
    for (int i = 0; i < 64; ++i)
        early += rig.engine->write(0x8000 + (i % 8) * 64, buf);
    for (int i = 0; i < 1500; ++i)
        rig.engine->write(0x8000 + (i % 8) * 64, buf);
    Cycle late = 0;
    for (int i = 0; i < 64; ++i)
        late += rig.engine->write(0x8000 + (i % 8) * 64, buf);
    EXPECT_LT(late, early);
}

TEST(Bmf, NothingStaleBelowCoveringRoots)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.bmfInterval = 64;
    Rig rig(mee::Protocol::Bmf, cfg);
    Rng rng(6);
    for (int i = 0; i < 1500; ++i)
        test::writePattern(*rig.engine, rng.below(512) * 4096, i);

    // Stale tree nodes may exist only above covering roots (they are
    // recomputed from the NV root set at recovery).
    for (Addr a : rig.engine->staleMetadataBlocks()) {
        ASSERT_EQ(rig.engine->map().classify(a), mem::Region::Tree);
        const bmt::NodeRef ref = rig.engine->map().nodeOfAddr(a);
        // Any counter under this node must have a covering root at
        // the node's own level (the cover itself: its latest value
        // lives in the NV root cache) or deeper.
        const std::uint64_t counters_per =
            rig.engine->map().geometry().countersPerNode(ref.level);
        const std::uint64_t c = ref.index * counters_per;
        EXPECT_GE(bmf(rig).coveringLevel(c), ref.level);
    }
}

TEST(Bmf, CrashRecoveryImmediateAndVerified)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.bmfInterval = 32;
    Rig rig(mee::Protocol::Bmf, cfg);
    for (std::uint64_t i = 0; i < 400; ++i)
        test::writePattern(*rig.engine, (i % 256) * 4096, i);
    rig.engine->crash();
    const auto report = rig.engine->recover();
    EXPECT_TRUE(report.success);
    EXPECT_DOUBLE_EQ(report.estimatedMs, 0.0);
    for (std::uint64_t i = 256; i < 400; ++i)
        EXPECT_TRUE(test::checkPattern(*rig.engine,
                                       (i % 256) * 4096, i));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

} // namespace
} // namespace amnt
