/**
 * Phoenix (epoch-flushed tree of counters): epoch accounting, the
 * staleness bound the epoch flush buys, and an adversarial
 * counter-overflow forcing attack — an attacker who can steer writes
 * hammers one block past the 7-bit minor counter to force page
 * re-encryptions, trying to desynchronize the persisted leaves the
 * recovery restore depends on.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mee/mee_test_util.hh"
#include "mee/phoenix.hh"

namespace amnt
{
namespace
{

using test::Rig;

mee::PhoenixStrategy &
phoenix(Rig &rig)
{
    return static_cast<mee::PhoenixStrategy &>(
        rig.engine->strategy());
}

mee::MeeConfig
phoenixConfig(unsigned epoch = 8)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.phoenixEpoch = epoch;
    return cfg;
}

TEST(Phoenix, EpochFlushFiresEveryEpochWrites)
{
    Rig rig(mee::Protocol::Phoenix, phoenixConfig(8));
    for (std::uint64_t i = 0; i < 50; ++i)
        test::writePattern(*rig.engine, (i % 20) * kPageSize, i);
    EXPECT_EQ(phoenix(rig).epochFlushes(), 50u / 8u);
    EXPECT_EQ(phoenix(rig).writesThisEpoch(), 50u % 8u);
}

TEST(Phoenix, EpochBoundaryLeavesNoStaleMetadata)
{
    // Counters and HMACs persist per write; tree nodes defer to the
    // flush. Right at an epoch boundary everything must be clean.
    Rig rig(mee::Protocol::Phoenix, phoenixConfig(16));
    for (std::uint64_t i = 0; i < 16; ++i)
        test::writePattern(*rig.engine, i * kPageSize, i);
    EXPECT_EQ(phoenix(rig).writesThisEpoch(), 0u);
    EXPECT_TRUE(rig.engine->staleMetadataBlocks().empty());

    // Mid-epoch, staleness is allowed again (that is the point of
    // batching) — but only in the tree region.
    test::writePattern(*rig.engine, 40 * kPageSize, 99);
    for (Addr a : rig.engine->staleMetadataBlocks())
        EXPECT_EQ(rig.engine->map().classify(a), mem::Region::Tree);
}

TEST(Phoenix, CrashMidEpochRecoversEveryCommittedWrite)
{
    Rig rig(mee::Protocol::Phoenix, phoenixConfig(32));
    for (std::uint64_t i = 0; i < 75; ++i) // 2 epochs + 11 writes
        test::writePattern(*rig.engine, (i % 60) * kPageSize, i);
    ASSERT_NE(phoenix(rig).writesThisEpoch(), 0u);
    rig.engine->crash();
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success) << report.detail;
    for (std::uint64_t i = 15; i < 75; ++i)
        EXPECT_TRUE(test::checkPattern(*rig.engine,
                                       (i % 60) * kPageSize, i))
            << i;
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Phoenix, AdversarialOverflowForcingStaysConsistent)
{
    // Hammer a single block past kMinorCounterMax: every overflow
    // re-encrypts the page and resets the minors. The attack must buy
    // nothing — contents stay exact and no violation fires.
    Rig rig(mee::Protocol::Phoenix, phoenixConfig(8));
    test::writePattern(*rig.engine, kPageSize + kBlockSize, 7);
    for (std::uint64_t i = 0; i < 3 * kMinorCounterMax; ++i)
        test::writePattern(*rig.engine, kPageSize, i);
    EXPECT_GE(rig.engine->stats().get("overflow_reencrypts"), 2ull);
    EXPECT_TRUE(test::checkPattern(*rig.engine, kPageSize,
                                   3 * kMinorCounterMax - 1));
    EXPECT_TRUE(test::checkPattern(*rig.engine,
                                   kPageSize + kBlockSize, 7));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Phoenix, AdversarialOverflowThenCrashRecovers)
{
    // Force an overflow mid-epoch, then crash: the re-encrypted
    // page's counters and HMACs persisted with the writes, so the
    // restore must reproduce the post-overflow state bit-exactly.
    Rig rig(mee::Protocol::Phoenix, phoenixConfig(64));
    for (std::uint64_t i = 0; i < kMinorCounterMax + 20; ++i)
        test::writePattern(*rig.engine, 5 * kPageSize, i);
    test::writePattern(*rig.engine, 9 * kPageSize, 1234);
    ASSERT_GE(rig.engine->stats().get("overflow_reencrypts"), 1ull);
    rig.engine->crash();
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success) << report.detail;
    EXPECT_TRUE(test::checkPattern(*rig.engine, 5 * kPageSize,
                                   kMinorCounterMax + 19));
    EXPECT_TRUE(
        test::checkPattern(*rig.engine, 9 * kPageSize, 1234));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Phoenix, RecoveryWorkBoundedByEpochStaleness)
{
    // The recovery work model rewrites only the nodes that were stale
    // at the crash — bounded by one epoch of dirtying, not by the
    // footprint.
    Rig rig(mee::Protocol::Phoenix, phoenixConfig(16));
    for (std::uint64_t i = 0; i < 900; ++i)
        test::writePattern(*rig.engine, (i % 800) * kPageSize, i);
    const std::size_t stale_nodes =
        rig.engine->staleMetadataBlocks().size();
    rig.engine->crash();
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success) << report.detail;
    EXPECT_EQ(report.nodesRecomputed, stale_nodes);
    EXPECT_LE(report.blocksWritten,
              rig.engine->metaCache().lines());
}

TEST(Phoenix, RejectsZeroEpoch)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.phoenixEpoch = 0;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Phoenix, cfg, nvm),
                ::testing::ExitedWithCode(1), "epoch");
}

} // namespace
} // namespace amnt
