#include <gtest/gtest.h>

#include "core/amnt.hh"
#include "core/protocol_registry.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

TEST(Factory, MakesEveryProtocol)
{
    const mee::MeeConfig cfg = test::smallConfig();
    for (mee::Protocol p : core::allProtocols()) {
        mem::NvmDevice nvm(
            mem::MemoryMap(cfg.dataBytes).deviceBytes());
        auto engine = core::makeEngine(p, cfg, nvm);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->protocol(), p);
        EXPECT_EQ(engine->strategy().id(), p);
    }
}

TEST(Factory, ProtocolNamesMatchFigureLabels)
{
    EXPECT_STREQ(protocolName(mee::Protocol::Volatile), "volatile");
    EXPECT_STREQ(protocolName(mee::Protocol::Strict), "strict");
    EXPECT_STREQ(protocolName(mee::Protocol::Leaf), "leaf");
    EXPECT_STREQ(protocolName(mee::Protocol::Osiris), "osiris");
    EXPECT_STREQ(protocolName(mee::Protocol::Anubis), "anubis");
    EXPECT_STREQ(protocolName(mee::Protocol::Bmf), "bmf");
    EXPECT_STREQ(protocolName(mee::Protocol::Amnt), "amnt");
    EXPECT_STREQ(protocolName(mee::Protocol::Phoenix), "phoenix");
    EXPECT_STREQ(protocolName(mee::Protocol::Stit), "stit");
}

TEST(Factory, MeeLayerFactoryRejectsAmnt)
{
    const mee::MeeConfig cfg = test::smallConfig();
    EXPECT_EXIT(mee::makeStrategy(mee::Protocol::Amnt, cfg),
                ::testing::ExitedWithCode(1), "core::makeEngine");
}

TEST(Factory, EngineRejectsUndersizedDevice)
{
    const mee::MeeConfig cfg = test::smallConfig();
    mem::NvmDevice nvm(cfg.dataBytes); // no room for metadata
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Leaf, cfg, nvm),
                ::testing::ExitedWithCode(1), "smaller than required");
}

TEST(Factory, AmntRejectsBadSubtreeLevel)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.amntSubtreeLevel = 99;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Amnt, cfg, nvm),
                ::testing::ExitedWithCode(1), "subtree level");
}

TEST(Factory, EngineRejectsNullStrategy)
{
    const mee::MeeConfig cfg = test::smallConfig();
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_EXIT(mee::MemoryEngine(cfg, nvm, nullptr),
                ::testing::ExitedWithCode(1), "protocol strategy");
}

} // namespace
} // namespace amnt
