#include <gtest/gtest.h>

#include "core/amnt.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

TEST(Factory, MakesEveryProtocol)
{
    const mee::MeeConfig cfg = test::smallConfig();
    for (mee::Protocol p :
         {mee::Protocol::Volatile, mee::Protocol::Strict,
          mee::Protocol::Leaf, mee::Protocol::Osiris,
          mee::Protocol::Anubis, mee::Protocol::Bmf,
          mee::Protocol::Amnt}) {
        mem::NvmDevice nvm(
            mem::MemoryMap(cfg.dataBytes).deviceBytes());
        auto engine = core::makeEngine(p, cfg, nvm);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->protocol(), p);
    }
}

TEST(Factory, ProtocolNamesMatchFigureLabels)
{
    EXPECT_STREQ(protocolName(mee::Protocol::Volatile), "volatile");
    EXPECT_STREQ(protocolName(mee::Protocol::Strict), "strict");
    EXPECT_STREQ(protocolName(mee::Protocol::Leaf), "leaf");
    EXPECT_STREQ(protocolName(mee::Protocol::Osiris), "osiris");
    EXPECT_STREQ(protocolName(mee::Protocol::Anubis), "anubis");
    EXPECT_STREQ(protocolName(mee::Protocol::Bmf), "bmf");
    EXPECT_STREQ(protocolName(mee::Protocol::Amnt), "amnt");
}

TEST(Factory, BaselineFactoryRejectsAmnt)
{
    const mee::MeeConfig cfg = test::smallConfig();
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_EXIT(
        mee::MemoryEngine::makeBaseline(mee::Protocol::Amnt, cfg, nvm),
        ::testing::ExitedWithCode(1), "core::makeEngine");
}

TEST(Factory, EngineRejectsUndersizedDevice)
{
    const mee::MeeConfig cfg = test::smallConfig();
    mem::NvmDevice nvm(cfg.dataBytes); // no room for metadata
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Leaf, cfg, nvm),
                ::testing::ExitedWithCode(1), "smaller than required");
}

TEST(Factory, AmntRejectsBadSubtreeLevel)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.amntSubtreeLevel = 99;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_EXIT(core::makeEngine(mee::Protocol::Amnt, cfg, nvm),
                ::testing::ExitedWithCode(1), "subtree level");
}

} // namespace
} // namespace amnt
