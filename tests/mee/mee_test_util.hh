/**
 * @file
 * Shared helpers for secure-memory engine tests: a small functional
 * configuration (4 MB protected data, 8 kB metadata cache so
 * evictions actually happen) and deterministic block patterns.
 */

#ifndef AMNT_TESTS_MEE_TEST_UTIL_HH
#define AMNT_TESTS_MEE_TEST_UTIL_HH

#include <cstring>
#include <memory>

#include "common/rng.hh"
#include "core/amnt.hh"
#include "mee/engine.hh"
#include "mem/memory_map.hh"
#include "mem/nvm_device.hh"

namespace amnt::test
{

inline mee::MeeConfig
smallConfig(crypto::CryptoPlane plane = crypto::CryptoPlane::Fast)
{
    mee::MeeConfig cfg;
    cfg.dataBytes = 4ull << 20; // 4 MB -> 1024 counters, 4 node levels
    cfg.metaCache = {"mcache", 8 * 1024, 8, 2};
    cfg.plane = plane;
    cfg.trackContents = true;
    cfg.keySeed = 0x5eed;
    return cfg;
}

/** Owns the device + engine pair tests need. */
struct Rig
{
    explicit Rig(mee::Protocol p,
                 mee::MeeConfig cfg = smallConfig())
        : config(cfg),
          nvm(std::make_unique<mem::NvmDevice>(
              mem::MemoryMap(cfg.dataBytes).deviceBytes())),
          engine(core::makeEngine(p, cfg, *nvm))
    {
    }

    mee::MeeConfig config;
    std::unique_ptr<mem::NvmDevice> nvm;
    std::unique_ptr<mee::MemoryEngine> engine;
};

/** Deterministic 64-byte pattern derived from a seed. */
inline void
fillBlock(std::uint8_t *out, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t i = 0; i < kBlockSize; ++i)
        out[i] = static_cast<std::uint8_t>(rng.next());
}

/** Write pattern(seed) to @p addr. */
inline void
writePattern(mee::MemoryEngine &e, Addr addr, std::uint64_t seed)
{
    std::uint8_t buf[kBlockSize];
    fillBlock(buf, seed);
    e.write(addr, buf);
}

/** Read @p addr and check it equals pattern(seed). */
inline bool
checkPattern(mee::MemoryEngine &e, Addr addr, std::uint64_t seed)
{
    std::uint8_t got[kBlockSize];
    std::uint8_t want[kBlockSize];
    e.read(addr, got);
    fillBlock(want, seed);
    return std::memcmp(got, want, kBlockSize) == 0;
}

} // namespace amnt::test

#endif // AMNT_TESTS_MEE_TEST_UTIL_HH
