#include <gtest/gtest.h>

#include "mee/anubis.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

mee::AnubisStrategy &
anubis(Rig &rig)
{
    return static_cast<mee::AnubisStrategy &>(rig.engine->strategy());
}

TEST(Anubis, ShadowTableTracksCacheOccupancy)
{
    Rig rig(mee::Protocol::Anubis);
    for (std::uint64_t i = 0; i < 400; ++i)
        test::writePattern(*rig.engine, i * 4096, i);
    EXPECT_GT(anubis(rig).shadowEntries(), 0ull);
    EXPECT_LE(anubis(rig).shadowEntries(),
              rig.engine->metaCache().lines());
}

TEST(Anubis, ShadowWritesAccounted)
{
    Rig rig(mee::Protocol::Anubis);
    test::writePattern(*rig.engine, 0, 1);
    EXPECT_GT(rig.engine->stats().get("shadow_writes"), 0ull);
}

TEST(Anubis, CrashRecoverSucceedsWithDirtyMetadata)
{
    Rig rig(mee::Protocol::Anubis);
    for (std::uint64_t i = 0; i < 300; ++i)
        test::writePattern(*rig.engine, (i % 200) * 4096 + (i % 2) * 64,
                           i + 7);
    // Anubis leaves tree state lazy, so there IS stale metadata...
    EXPECT_FALSE(rig.engine->staleMetadataBlocks().empty());
    rig.engine->crash();
    const auto report = rig.engine->recover();
    // ...but the shadow table restores it all.
    EXPECT_TRUE(report.success);
    // Writes at i and i+200 hit the same address, so the i+7 pattern
    // for i in [100, 300) is the final content everywhere.
    for (std::uint64_t i = 100; i < 300; ++i)
        EXPECT_TRUE(test::checkPattern(
            *rig.engine, (i % 200) * 4096 + (i % 2) * 64, i + 7))
            << i;
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Anubis, RecoveryBoundedByCacheNotFootprint)
{
    Rig small(mee::Protocol::Anubis);
    Rig large(mee::Protocol::Anubis);
    for (std::uint64_t i = 0; i < 16; ++i)
        test::writePattern(*small.engine, i * 4096, i);
    for (std::uint64_t i = 0; i < 900; ++i)
        test::writePattern(*large.engine, i * 4096, i);

    small.engine->crash();
    large.engine->crash();
    const auto rs = small.engine->recover();
    const auto rl = large.engine->recover();
    ASSERT_TRUE(rs.success);
    ASSERT_TRUE(rl.success);
    // The modeled time is a function of the cache size only.
    EXPECT_DOUBLE_EQ(rs.estimatedMs, rl.estimatedMs);
    // Restore traffic is bounded by cache lines, not the footprint.
    EXPECT_LE(rl.blocksRead, large.engine->metaCache().lines());
}

TEST(Anubis, MissesCostMoreThanHits)
{
    Rig rig(mee::Protocol::Anubis);
    // Warm a single page's metadata.
    test::writePattern(*rig.engine, 0x4000, 1);
    std::uint8_t buf[kBlockSize];
    const Cycle warm = rig.engine->read(0x4000, buf);

    // A cold page's first read misses several metadata levels; each
    // miss persists a shadow entry on the critical path.
    test::writePattern(*rig.engine, 200 * 4096, 2);
    for (std::uint64_t i = 0; i < 500; ++i) // evict page-200 metadata
        test::writePattern(*rig.engine, (300 + i) * 4096, i);
    const Cycle cold = rig.engine->read(200 * 4096, buf);
    EXPECT_GT(cold, warm);
}

} // namespace
} // namespace amnt
