/**
 * @file
 * Shard-invariance pins at the system level: the `--shards=N` lane
 * count is pure execution policy, so a full-system run — registry
 * dump included — must be byte-identical at shard counts 1, 2 and 4,
 * under any sweep thread count, and the checked-in campaign
 * artifacts must not move either. Also pins the AMNT_SHARDS
 * environment override and the engine()-on-sharded-system guard.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "sim/presets.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

using namespace amnt;

namespace
{

/** Set/unset an environment variable for one scope. */
struct EnvScope
{
    EnvScope(const char *name, const char *value) : name_(name)
    {
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvScope() { ::unsetenv(name_); }
    const char *name_;
};

sim::SystemConfig
shardedConfig(mee::Protocol p, unsigned shards)
{
    sim::SystemConfig cfg = sim::SystemConfig::singleProgram(p);
    cfg.shards = shards;
    // Pin the slice partition explicitly: the invariance contract is
    // "same machine, different lane count", so the machine parameter
    // must not float on AMNT_SHARD_SLICES.
    cfg.shardOptions.slices = 4;
    return cfg;
}

sim::WorkloadConfig
smallWorkload()
{
    sim::WorkloadConfig w = sim::parsecPreset("bodytrack");
    w.footprintPages = 256;
    return w;
}

} // namespace

TEST(ShardInvariance, SystemRunIsByteIdenticalAcrossShardCounts)
{
    std::string baseline_stats;
    sim::RunResult baseline{};
    for (unsigned shards : {1u, 2u, 4u}) {
        sim::System system(
            shardedConfig(mee::Protocol::Amnt, shards));
        ASSERT_NE(system.sharded(), nullptr);
        EXPECT_EQ(system.sharded()->sliceCount(), 4u);
        system.addProcess(smallWorkload());
        const sim::RunResult res = system.run(20000, 5000);
        const std::string stats = system.statsJson();
        if (shards == 1) {
            baseline_stats = stats;
            baseline = res;
            EXPECT_NE(stats.find("mee.shard0"), std::string::npos);
            continue;
        }
        EXPECT_EQ(stats, baseline_stats) << "shards " << shards;
        EXPECT_EQ(res.cycles, baseline.cycles) << "shards " << shards;
        EXPECT_EQ(res.memReads, baseline.memReads);
        EXPECT_EQ(res.memWrites, baseline.memWrites);
        EXPECT_EQ(res.mcacheHitRate, baseline.mcacheHitRate);
        EXPECT_EQ(res.subtreeHitRate, baseline.subtreeHitRate);
        EXPECT_EQ(res.pageFaults, baseline.pageFaults);
    }
}

TEST(ShardInvariance, SweepStatsIdenticalAcrossShardsAndThreads)
{
    // 3 jobs differing only in lane count, swept at 1 and 8 worker
    // threads: all six statsJson documents must be one byte string.
    std::vector<sweep::Job> jobs;
    for (unsigned shards : {1u, 2u, 4u}) {
        sweep::Job job;
        job.config = shardedConfig(mee::Protocol::Leaf, shards);
        job.processes = {smallWorkload()};
        job.instructions = 20000;
        job.warmup = 5000;
        jobs.push_back(std::move(job));
    }
    std::string baseline;
    for (unsigned threads : {1u, 8u}) {
        const std::vector<sweep::Outcome> out =
            sweep::run(jobs, threads);
        ASSERT_EQ(out.size(), jobs.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
            ASSERT_FALSE(out[i].statsJson.empty());
            if (baseline.empty())
                baseline = out[i].statsJson;
            EXPECT_EQ(out[i].statsJson, baseline)
                << "threads " << threads << " job " << i;
        }
    }
}

TEST(ShardInvariance, CampaignArtifactsImmuneToShardEnv)
{
    // Campaign reports drive protocol engines directly; AMNT_SHARDS
    // must not leak into them from the environment, at any worker
    // thread count — the checked-in results/campaign_*.json cannot
    // move when CI turns the sharded leg on.
    campaign::CampaignConfig cfg;
    cfg.ops = 400;
    cfg.crashAfter = 11;
    std::string baseline;
    for (const char *shards : {(const char *)nullptr, "1", "4"}) {
        EnvScope env("AMNT_SHARDS", shards);
        for (unsigned threads : {1u, 8u}) {
            campaign::CampaignConfig c = cfg;
            c.threads = threads;
            const std::string json =
                campaign::runCampaign("adversarial", c).toJson();
            if (baseline.empty())
                baseline = json;
            EXPECT_EQ(json, baseline)
                << "AMNT_SHARDS=" << (shards ? shards : "(unset)")
                << " threads " << threads;
        }
    }
}

TEST(ShardInvariance, EnvOverrideEnablesShardedModel)
{
    EnvScope env("AMNT_SHARDS", "2");
    sim::SystemConfig cfg =
        sim::SystemConfig::singleProgram(mee::Protocol::Leaf);
    cfg.shardOptions.slices = 4;
    ASSERT_EQ(cfg.shards, 0u); // config leaves it to the env
    sim::System system(cfg);
    ASSERT_NE(system.sharded(), nullptr);
    EXPECT_EQ(system.sharded()->sliceCount(), 4u);
    EXPECT_EQ(system.amnt(), nullptr);
}

TEST(ShardInvarianceDeath, LegacyEngineAccessorRefusesShardedSystem)
{
    sim::System system(shardedConfig(mee::Protocol::Leaf, 1));
    EXPECT_DEATH(system.engine(), "sharded");
}
