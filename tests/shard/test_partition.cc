/**
 * @file
 * Address-partition conformance: the fixed logical partition must be
 * total and disjoint (every physical data address maps to exactly one
 * slice), boundary addresses must round-trip through
 * shardFor()/localAddr()/globalAddr(), and a partition that cannot
 * split evenly (or page-aligned) must refuse to construct.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/types.hh"
#include "shard/partition.hh"

using namespace amnt;

TEST(Partition, EveryBlockMapsToExactlyOneSlice)
{
    const shard::Partition part(4ull << 20, 4);
    std::vector<std::uint64_t> per_slice(part.slices, 0);
    for (Addr a = 0; a < part.dataBytes; a += kBlockSize) {
        const unsigned s = part.shardFor(a);
        ASSERT_LT(s, part.slices);
        ++per_slice[s];
        // Disjointness: the inverse mapping lands back on a, so no
        // other (shard, local) pair can also own this address.
        ASSERT_EQ(part.globalAddr(s, part.localAddr(a)), a);
    }
    // Totality: the per-slice counts exhaust the range evenly.
    for (unsigned s = 0; s < part.slices; ++s)
        EXPECT_EQ(per_slice[s], part.sliceBytes / kBlockSize);
}

TEST(Partition, BoundaryAddressesRoundTrip)
{
    const shard::Partition part(8ull << 20, 2);
    const Addr boundaries[] = {
        0,
        kBlockSize,
        part.sliceBytes - kBlockSize,
        part.sliceBytes - 1,
        part.sliceBytes,
        part.sliceBytes + 1,
        2 * part.sliceBytes - 1,
        part.dataBytes - kBlockSize,
        part.dataBytes - 1,
    };
    for (Addr a : boundaries) {
        const unsigned s = part.shardFor(a);
        const Addr local = part.localAddr(a);
        EXPECT_EQ(s, a / part.sliceBytes) << "addr " << a;
        EXPECT_EQ(local, a % part.sliceBytes) << "addr " << a;
        EXPECT_EQ(part.globalAddr(s, local), a) << "addr " << a;
    }
    // The first address of slice 1 is local 0 of slice 1, not the
    // tail of slice 0.
    EXPECT_EQ(part.shardFor(part.sliceBytes), 1u);
    EXPECT_EQ(part.localAddr(part.sliceBytes), 0u);
}

TEST(Partition, SingleSliceIsIdentity)
{
    const shard::Partition part(2ull << 20, 1);
    EXPECT_EQ(part.sliceBytes, part.dataBytes);
    EXPECT_EQ(part.shardFor(part.dataBytes - 1), 0u);
    EXPECT_EQ(part.localAddr(12345), 12345u);
}

TEST(PartitionDeath, RefusesUnevenSplit)
{
    // 2 MB does not split into 3 equal slices.
    EXPECT_DEATH(shard::Partition(2ull << 20, 3),
                 "do not split into");
}

TEST(PartitionDeath, RefusesMisalignedSlice)
{
    // 12 KB splits into 3 slices of 4 KB... but 2 slices of 6 KB are
    // not page aligned.
    EXPECT_DEATH(shard::Partition(12 * 1024, 2), "not page aligned");
}

TEST(PartitionDeath, RefusesZeroSlices)
{
    EXPECT_DEATH(shard::Partition(2ull << 20, 0),
                 "at least one slice");
}

TEST(PartitionDeath, RefusesOutOfRangeAddress)
{
    const shard::Partition part(2ull << 20, 2);
    EXPECT_DEATH(part.shardFor(part.dataBytes), "beyond data range");
    EXPECT_DEATH(part.localAddr(part.dataBytes), "beyond data range");
    EXPECT_DEATH(part.globalAddr(2, 0), "out of");
    EXPECT_DEATH(part.globalAddr(0, part.sliceBytes),
                 "beyond slice size");
}
