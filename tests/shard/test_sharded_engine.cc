/**
 * @file
 * Sharded-engine unit behaviour: cross-slice write/read round trips,
 * epoch-batched commit semantics (buffered-but-uncommitted writes die
 * at a crash; committed epochs survive), lane-count byte-identity of
 * every registered statistic, and the enrollment pin — every registry
 * protocol must construct and run under the sharded engine, so a
 * protocol skipping shard enrollment is a test failure, not a silent
 * gap.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/protocol_registry.hh"
#include "mee/protocol.hh"
#include "obs/registry.hh"
#include "shard/sharded_engine.hh"

using namespace amnt;

namespace
{

mem::Block
patternBlock(std::uint64_t seed)
{
    Rng rng(seed);
    mem::Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

mee::MeeConfig
smallConfig()
{
    mee::MeeConfig m;
    m.dataBytes = 4ull << 20;
    m.trackContents = true;
    m.keySeed = 7;
    m.metaCache = {"mcache", 4 * 1024, 4, 2};
    return m;
}

shard::ShardOptions
options(unsigned slices, unsigned lanes,
        std::uint64_t epoch_writes = 8)
{
    shard::ShardOptions so;
    so.slices = slices;
    so.lanes = lanes;
    so.epochWrites = epoch_writes;
    so.cores = 2;
    return so;
}

/** One address in every slice, plus both sides of a slice boundary. */
std::vector<Addr>
crossSliceAddrs(const shard::Partition &part)
{
    std::vector<Addr> addrs;
    for (unsigned s = 0; s < part.slices; ++s)
        addrs.push_back(part.globalAddr(s, (s + 1) * kPageSize));
    addrs.push_back(part.sliceBytes - kBlockSize);
    addrs.push_back(part.sliceBytes);
    return addrs;
}

} // namespace

TEST(ShardedEngine, CrossSliceWriteReadRoundTrip)
{
    shard::ShardedEngine eng(mee::Protocol::Leaf, smallConfig(),
                             options(4, 1));
    ASSERT_EQ(eng.sliceCount(), 4u);
    const std::vector<Addr> addrs =
        crossSliceAddrs(eng.partition());
    for (std::size_t i = 0; i < addrs.size(); ++i)
        eng.write(addrs[i], patternBlock(100 + i).data());
    // Functional reads see buffered writes (sync drain) even before
    // any epoch closed or flushed.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        mem::Block got{};
        eng.read(addrs[i], got.data());
        EXPECT_EQ(got, patternBlock(100 + i)) << "addr " << addrs[i];
    }
    EXPECT_EQ(eng.violations(), 0u);
}

TEST(ShardedEngine, FlushCommitsAndSurvivesCrash)
{
    shard::ShardedEngine eng(mee::Protocol::Leaf, smallConfig(),
                             options(2, 1));
    const std::vector<Addr> addrs =
        crossSliceAddrs(eng.partition());
    for (std::size_t i = 0; i < addrs.size(); ++i)
        eng.write(addrs[i], patternBlock(200 + i).data());
    eng.flush();
    const std::uint64_t committed = eng.committedEpoch();
    EXPECT_GT(committed, 0u);

    // A buffered-but-uncommitted overwrite dies at the crash...
    eng.write(addrs[0], patternBlock(999).data());
    eng.crash();
    const mee::RecoveryReport rec = eng.recover();
    EXPECT_TRUE(rec.success) << rec.detail;
    EXPECT_EQ(eng.committedEpoch(), committed);

    // ...while every committed payload reads back bit-exactly.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        mem::Block got{};
        eng.read(addrs[i], got.data());
        EXPECT_EQ(got, patternBlock(200 + i)) << "addr " << addrs[i];
    }
    EXPECT_EQ(eng.violations(), 0u);
}

TEST(ShardedEngine, EpochClosesAtConfiguredWriteCount)
{
    shard::ShardedEngine eng(mee::Protocol::Leaf, smallConfig(),
                             options(2, 1, 4));
    EXPECT_EQ(eng.epochWrites(), 4u);
    EXPECT_EQ(eng.currentEpoch(), 1u);
    for (unsigned i = 0; i < 4; ++i)
        eng.write(i * kPageSize, patternBlock(i).data());
    // The fourth write closed (and, serially, committed) epoch 1.
    EXPECT_EQ(eng.currentEpoch(), 2u);
    EXPECT_EQ(eng.committedEpoch(), 1u);
}

TEST(ShardedEngine, LaneCountNeverChangesRegisteredStats)
{
    // `--shards=N` is execution policy: every simulated statistic —
    // per-slice engine counters, device write counts, journal
    // activity, epoch bookkeeping — must be byte-identical at any
    // lane count. This is the engine-level half of the shard
    // invariance contract (DESIGN.md §15).
    auto runAt = [](unsigned lanes) {
        shard::ShardedEngine eng(mee::Protocol::Amnt, smallConfig(),
                                 options(4, lanes, 8));
        Rng rng(3);
        for (unsigned i = 0; i < 200; ++i) {
            const Addr a = rng.below(1024) * kPageSize +
                           rng.below(8) * kBlockSize;
            if (rng.chance(0.7))
                eng.write(a, patternBlock(rng.next()).data(),
                          i % 2);
            else
                eng.read(a, nullptr, i % 2);
        }
        eng.flush();
        std::vector<Cycle> lat(2, 0);
        eng.harvestLatencies(lat);
        obs::StatRegistry reg;
        eng.registerStats(reg);
        return std::make_pair(reg.dumpJson(), lat);
    };
    const auto baseline = runAt(1);
    for (unsigned lanes : {2u, 4u}) {
        const auto got = runAt(lanes);
        EXPECT_EQ(got.first, baseline.first) << "lanes " << lanes;
        EXPECT_EQ(got.second, baseline.second) << "lanes " << lanes;
    }
}

/**
 * Enrollment pin: the sharded engine must cover the registry, whole.
 * Constructing and exercising every protocol here means a protocol
 * added to the registry cannot silently opt out of sharding — if a
 * strategy cannot run sliced, this test fails on it by name.
 */
TEST(ShardedEngineEnrollment, EveryRegistryProtocolRunsSharded)
{
    const std::vector<mee::Protocol> all = core::allProtocols();
    ASSERT_EQ(all.size(), mee::kProtocolCount);
    unsigned enrolled = 0;
    for (mee::Protocol p : all) {
        SCOPED_TRACE(mee::protocolName(p));
        shard::ShardedEngine eng(p, smallConfig(), options(2, 2, 8));
        const std::vector<Addr> addrs =
            crossSliceAddrs(eng.partition());
        for (std::size_t i = 0; i < addrs.size(); ++i)
            eng.write(addrs[i], patternBlock(300 + i).data());
        eng.flush();
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            mem::Block got{};
            eng.read(addrs[i], got.data());
            EXPECT_EQ(got, patternBlock(300 + i));
        }
        EXPECT_EQ(eng.violations(), 0u);
        ++enrolled;
    }
    EXPECT_EQ(enrolled, mee::kProtocolCount);
}
