#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "os/amntpp_allocator.hh"

namespace amnt::os
{
namespace
{

constexpr std::uint64_t kFramesPerRegion = 512;

TEST(AmntPp, RestructureBiasesAllocationsToOneRegion)
{
    AmntPpAllocator a(8 * kFramesPerRegion, kFramesPerRegion);
    Rng rng(3);
    a.ageSystem(rng, 0.6, /*run_pages=*/64);
    a.restructure();

    const std::uint64_t biased = a.biasedRegion();
    int in_biased = 0;
    for (int i = 0; i < 200; ++i) {
        auto f = a.allocPage();
        ASSERT_TRUE(f.has_value());
        in_biased += a.regionOf(*f) == biased;
    }
    // The head of every order list belongs to the biased region, so
    // allocations concentrate there; a plain aged allocator would
    // spread over all 8 regions (~25 of 200).
    EXPECT_GT(in_biased, 100);
}

TEST(AmntPp, UnbiasedAgedAllocatorScatters)
{
    BuddyAllocator a(8 * kFramesPerRegion);
    Rng rng(3);
    a.ageSystem(rng, 0.6, /*run_pages=*/64);
    std::vector<int> per_region(8, 0);
    for (int i = 0; i < 512; ++i) {
        auto f = a.allocPage();
        ASSERT_TRUE(f.has_value());
        ++per_region[*f / kFramesPerRegion];
    }
    int populated = 0;
    for (int c : per_region)
        populated += c > 0;
    EXPECT_GE(populated, 2) << "aged baseline should cross regions";
}

TEST(AmntPp, RestructureTriggersOnReclamation)
{
    AmntPpConfig cfg;
    cfg.restructureEvery = 8;
    AmntPpAllocator a(4096, kFramesPerRegion, 10, cfg);
    std::vector<PageId> frames;
    for (int i = 0; i < 64; ++i)
        frames.push_back(*a.allocPage());
    EXPECT_EQ(a.restructures(), 0ull);
    for (PageId f : frames)
        a.freePage(f);
    EXPECT_GE(a.restructures(), 8ull);
}

TEST(AmntPp, RestructureChargesInstructions)
{
    AmntPpAllocator a(4096, kFramesPerRegion);
    Rng rng(5);
    a.ageSystem(rng, 0.5, /*run_pages=*/64);
    const std::uint64_t before = a.instructions();
    a.restructure();
    EXPECT_GT(a.instructions(), before);
}

TEST(AmntPp, RestructurePreservesAllocatorIntegrity)
{
    AmntPpAllocator a(4096, kFramesPerRegion);
    Rng rng(7);
    a.ageSystem(rng, 0.7, /*run_pages=*/64);
    a.restructure();

    // Everything free before is still allocatable exactly once.
    const std::uint64_t free_before = a.freeFrames();
    std::set<PageId> seen;
    while (auto f = a.allocPage())
        EXPECT_TRUE(seen.insert(*f).second);
    EXPECT_EQ(seen.size(), free_before);
}

TEST(AmntPp, RestructureOnEmptyListsIsSafe)
{
    AmntPpAllocator a(64, kFramesPerRegion);
    while (a.allocPage())
        ;
    a.restructure();
    EXPECT_EQ(a.freeFrames(), 0ull);
}

} // namespace
} // namespace amnt::os
