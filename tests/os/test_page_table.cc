#include <gtest/gtest.h>

#include "os/page_table.hh"

namespace amnt::os
{
namespace
{

TEST(PageTable, FirstTouchAllocates)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    EXPECT_EQ(pt.faults(), 0ull);
    const Addr p = pt.translate(0x12345);
    EXPECT_EQ(pt.faults(), 1ull);
    EXPECT_EQ(p & (kPageSize - 1), 0x345ull); // offset preserved
    EXPECT_EQ(alloc.freeFrames(), 255ull);
}

TEST(PageTable, StableTranslation)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    const Addr a = pt.translate(0x4000);
    EXPECT_EQ(pt.translate(0x4000), a);
    EXPECT_EQ(pt.translate(0x4fff), a + 0xfff);
    EXPECT_EQ(pt.faults(), 1ull);
}

TEST(PageTable, DistinctPagesDistinctFrames)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    const Addr a = pt.translate(0x0000);
    const Addr b = pt.translate(0x1000);
    EXPECT_NE(pageOf(a), pageOf(b));
}

TEST(PageTable, TwoProcessesNeverShareFrames)
{
    BuddyAllocator alloc(256);
    PageTable p1(alloc), p2(alloc);
    const Addr a = p1.translate(0x8000);
    const Addr b = p2.translate(0x8000); // same vaddr, other process
    EXPECT_NE(pageOf(a), pageOf(b));
}

TEST(PageTable, ProbeDoesNotAllocate)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    Addr out = 0;
    EXPECT_FALSE(pt.probe(0x9000, out));
    EXPECT_EQ(pt.faults(), 0ull);
    pt.translate(0x9000);
    EXPECT_TRUE(pt.probe(0x9123, out));
}

TEST(PageTable, UnmapReturnsFrameAndRefaults)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    pt.translate(0x3000);
    EXPECT_EQ(alloc.freeFrames(), 255ull);
    pt.unmapPage(3);
    EXPECT_EQ(alloc.freeFrames(), 256ull);
    pt.translate(0x3000);
    EXPECT_EQ(pt.faults(), 2ull);
}

TEST(PageTable, UnmapAllReleasesEverything)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    for (int i = 0; i < 50; ++i)
        pt.translate(static_cast<Addr>(i) * kPageSize);
    EXPECT_EQ(pt.mappedPages(), 50ull);
    pt.unmapAll();
    EXPECT_EQ(pt.mappedPages(), 0ull);
    EXPECT_EQ(alloc.freeFrames(), 256ull);
}

TEST(PageTable, ForEachMappingVisitsAll)
{
    BuddyAllocator alloc(256);
    PageTable pt(alloc);
    pt.translate(0x1000);
    pt.translate(0x5000);
    int n = 0;
    pt.forEachMapping([&](PageId, PageId) { ++n; });
    EXPECT_EQ(n, 2);
}

} // namespace
} // namespace amnt::os
