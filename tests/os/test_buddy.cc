#include <gtest/gtest.h>

#include <set>

#include "os/buddy_allocator.hh"

namespace amnt::os
{
namespace
{

TEST(Buddy, AllFramesAllocatable)
{
    BuddyAllocator b(1024);
    std::set<PageId> seen;
    while (auto f = b.allocPage()) {
        EXPECT_LT(*f, 1024ull);
        EXPECT_TRUE(seen.insert(*f).second) << "double allocation";
    }
    EXPECT_EQ(seen.size(), 1024ull);
    EXPECT_EQ(b.freeFrames(), 0ull);
}

TEST(Buddy, NonPowerOfTwoCapacity)
{
    BuddyAllocator b(1000);
    std::uint64_t n = 0;
    while (b.allocPage())
        ++n;
    EXPECT_EQ(n, 1000ull);
}

TEST(Buddy, OrderAllocationAligned)
{
    BuddyAllocator b(1024);
    for (int i = 0; i < 16; ++i) {
        auto f = b.alloc(4);
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(*f % 16, 0ull) << "order-4 chunk misaligned";
    }
}

TEST(Buddy, FreeCoalescesBackToFullChunks)
{
    BuddyAllocator b(1024, 10);
    std::vector<PageId> frames;
    while (auto f = b.allocPage())
        frames.push_back(*f);
    for (PageId f : frames)
        b.freePage(f);
    EXPECT_EQ(b.freeFrames(), 1024ull);
    EXPECT_EQ(b.chunksAt(10), 1ull); // fully coalesced
    EXPECT_EQ(b.chunksAt(0), 0ull);
}

TEST(Buddy, SplitProducesBuddyHalves)
{
    BuddyAllocator b(16, 4);
    EXPECT_EQ(b.chunksAt(4), 1ull);
    auto f = b.allocPage();
    ASSERT_TRUE(f.has_value());
    // Splitting 16 -> 8+4+2+1 free halves remain.
    EXPECT_EQ(b.chunksAt(3), 1ull);
    EXPECT_EQ(b.chunksAt(2), 1ull);
    EXPECT_EQ(b.chunksAt(1), 1ull);
    EXPECT_EQ(b.chunksAt(0), 1ull);
    EXPECT_EQ(b.freeFrames(), 15ull);
}

TEST(Buddy, IsFreeTracksState)
{
    BuddyAllocator b(64);
    auto f = b.allocPage();
    ASSERT_TRUE(f.has_value());
    EXPECT_FALSE(b.isFree(*f));
    b.freePage(*f);
    EXPECT_TRUE(b.isFree(*f));
}

TEST(Buddy, InstructionAccounting)
{
    BuddyAllocator b(1024);
    const std::uint64_t before = b.instructions();
    b.allocPage();
    EXPECT_GT(b.instructions(), before);
}

TEST(Buddy, AgedSystemLeavesPinsAndRunGranularOrder)
{
    BuddyAllocator b(4096);
    Rng rng(3);
    b.ageSystem(rng, 0.5, /*run_pages=*/64);
    // Whole runs are pinned or freed: free count is a multiple of 64
    // and roughly half the memory.
    EXPECT_EQ(b.freeFrames() % 64, 0ull);
    EXPECT_GT(b.freeFrames(), 1024ull);
    EXPECT_LT(b.freeFrames(), 3072ull);
    EXPECT_EQ(b.instructions(), 0ull);

    // Allocations stay contiguous inside a run but jump across runs:
    // consecutive-frame pairs dominate, yet multiple distinct runs
    // appear and the run sequence is not simply ascending.
    std::vector<PageId> got;
    for (int i = 0; i < 256; ++i)
        got.push_back(*b.allocPage());
    int monotone = 0;
    std::set<PageId> runs_seen;
    for (std::size_t i = 1; i < got.size(); ++i)
        monotone += got[i] == got[i - 1] + 1;
    for (PageId f : got)
        runs_seen.insert(f / 64);
    EXPECT_GT(monotone, 128) << "runs should stay contiguous";
    EXPECT_GE(runs_seen.size(), 3ull);
}

TEST(Buddy, RandomAllocFreeStormPreservesInvariants)
{
    BuddyAllocator b(2048);
    Rng rng(9);
    std::vector<PageId> held;
    for (int i = 0; i < 20000; ++i) {
        if (!held.empty() && rng.chance(0.45)) {
            const std::size_t j = rng.below(held.size());
            b.freePage(held[j]);
            held[j] = held.back();
            held.pop_back();
        } else if (auto f = b.allocPage()) {
            held.push_back(*f);
        }
        ASSERT_EQ(b.freeFrames() + held.size(), 2048ull);
    }
    std::set<PageId> unique(held.begin(), held.end());
    EXPECT_EQ(unique.size(), held.size());
}

} // namespace
} // namespace amnt::os
