#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/hmac_sha256.hh"

namespace amnt::crypto
{
namespace
{

std::string
hex(const Sha256Digest &d)
{
    std::string out;
    for (auto b : d) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", b);
        out += buf;
    }
    return out;
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1)
{
    const std::vector<std::uint8_t> key(20, 0x0b);
    HmacSha256 h(key.data(), key.size());
    EXPECT_EQ(hex(h.mac("Hi There", 8)),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2)
{
    HmacSha256 h("Jefe", 4);
    const char *msg = "what do ya want for nothing?";
    EXPECT_EQ(hex(h.mac(msg, std::strlen(msg))),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
TEST(HmacSha256, Rfc4231Case3)
{
    const std::vector<std::uint8_t> key(20, 0xaa);
    const std::vector<std::uint8_t> data(50, 0xdd);
    HmacSha256 h(key.data(), key.size());
    EXPECT_EQ(hex(h.mac(data.data(), data.size())),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size gets hashed.
TEST(HmacSha256, Rfc4231Case6LongKey)
{
    const std::vector<std::uint8_t> key(131, 0xaa);
    HmacSha256 h(key.data(), key.size());
    const char *msg = "Test Using Larger Than Block-Size Key - "
                      "Hash Key First";
    EXPECT_EQ(hex(h.mac(msg, std::strlen(msg))),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Mac64IsLeadingBytes)
{
    HmacSha256 h("key", 3);
    const Sha256Digest full = h.mac("msg", 3);
    std::uint64_t lead = 0;
    for (int i = 0; i < 8; ++i)
        lead = (lead << 8) | full[static_cast<std::size_t>(i)];
    EXPECT_EQ(h.mac64("msg", 3), lead);
}

TEST(HmacSha256, KeySeparation)
{
    HmacSha256 a("key-a", 5), b("key-b", 5);
    EXPECT_NE(a.mac64("same message", 12), b.mac64("same message", 12));
}

} // namespace
} // namespace amnt::crypto
