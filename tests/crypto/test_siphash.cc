#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.hh"
#include "crypto/siphash.hh"

namespace amnt::crypto
{
namespace
{

// Reference vectors from the SipHash reference implementation
// (key 000102...0f, message bytes 0,1,2,...,len-1), interpreted as
// little-endian 64-bit values.
constexpr std::uint64_t kRef[16] = {
    0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
    0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
    0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
    0x9e0082df0ba9e4b0ULL, 0x7a5dbbc594ddb9f3ULL, 0xf4b32f46226bada7ULL,
    0x751e8fbc860ee5fbULL, 0x14ea5627c0843d90ULL, 0xf723ca908e7af2eeULL,
    0xa129ca6149be45e5ULL,
};

SipHash24
refKeyed()
{
    return SipHash24(0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL);
}

TEST(SipHash, ReferenceVectors)
{
    const SipHash24 sip = refKeyed();
    std::vector<std::uint8_t> msg;
    for (unsigned len = 0; len < 16; ++len) {
        EXPECT_EQ(sip.mac(msg.data(), msg.size()), kRef[len])
            << "length " << len;
        msg.push_back(static_cast<std::uint8_t>(len));
    }
}

TEST(SipHash, MacWordsMatchesByteForm)
{
    const SipHash24 sip(0x1234, 0x5678);
    std::uint8_t buf[16];
    store64le(buf, 0xdeadbeefcafef00dULL);
    store64le(buf + 8, 0x0123456789abcdefULL);
    EXPECT_EQ(sip.macWords(0xdeadbeefcafef00dULL,
                           0x0123456789abcdefULL),
              sip.mac(buf, sizeof(buf)));
}

TEST(SipHash, KeySeparation)
{
    const SipHash24 a(1, 2), b(1, 3);
    EXPECT_NE(a.mac("hello", 5), b.mac("hello", 5));
}

TEST(SipHash, LengthBinding)
{
    const SipHash24 sip(1, 2);
    const std::uint8_t zeros[16] = {};
    EXPECT_NE(sip.mac(zeros, 8), sip.mac(zeros, 9));
    EXPECT_NE(sip.mac(zeros, 15), sip.mac(zeros, 16));
}

} // namespace
} // namespace amnt::crypto
