/**
 * Known-answer tests for every runtime-dispatchable crypto kernel.
 *
 * The suites in test_sha256/test_aes128/test_hmac exercise whichever
 * kernel set AMNT_CRYPTO_ISA selected at startup. This file walks all
 * paths available on the host (scalar always; AES-NI / SHA-NI when
 * detected) and asserts the same NIST/FIPS/RFC vectors on each, plus
 * the batch-API contract: mac64xN/padxN bit-identical to N scalar
 * calls on every path, with the wide kernels both on and off.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "crypto/aes128.hh"
#include "crypto/dispatch.hh"
#include "crypto/engines.hh"
#include "crypto/hmac_sha256.hh"
#include "crypto/sha256.hh"
#include "crypto/siphash.hh"

namespace amnt::crypto
{
namespace
{

/** Restore the startup kernel selection when a test ends. */
class IsaGuard
{
  public:
    IsaGuard() : saved_(dispatch::active().isa) {}
    ~IsaGuard() { dispatch::select(saved_); }

  private:
    dispatch::Isa saved_;
};

/** Restore the batch-kernel knob when a test ends. */
class BatchGuard
{
  public:
    BatchGuard() : saved_(dispatch::batchEnabled()) {}
    ~BatchGuard() { dispatch::setBatchEnabled(saved_); }

  private:
    bool saved_;
};

std::vector<dispatch::Isa>
availableIsas()
{
    std::vector<dispatch::Isa> out;
    for (auto isa :
         {dispatch::Isa::Scalar, dispatch::Isa::AesNi,
          dispatch::Isa::ShaNi, dispatch::Isa::Native}) {
        if (dispatch::available(isa))
            out.push_back(isa);
    }
    return out;
}

std::string
hex(const std::uint8_t *p, std::size_t n)
{
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", p[i]);
        out += buf;
    }
    return out;
}

void
fromHex(const char *s, std::uint8_t *out)
{
    for (std::size_t i = 0; s[2 * i] != '\0'; ++i) {
        unsigned v = 0;
        std::sscanf(s + 2 * i, "%2x", &v);
        out[i] = static_cast<std::uint8_t>(v);
    }
}

TEST(KatDispatch, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(dispatch::available(dispatch::Isa::Scalar));
    EXPECT_TRUE(dispatch::available(dispatch::Isa::Native));
    EXPECT_FALSE(availableIsas().empty());
}

TEST(KatDispatch, SelectRefusesUnavailable)
{
    IsaGuard guard;
    for (auto isa : {dispatch::Isa::AesNi, dispatch::Isa::ShaNi}) {
        if (!dispatch::available(isa))
            EXPECT_FALSE(dispatch::select(isa));
    }
}

TEST(KatDispatch, Sha256NistVectorsEveryPath)
{
    IsaGuard guard;
    for (auto isa : availableIsas()) {
        ASSERT_TRUE(dispatch::select(isa));
        SCOPED_TRACE(dispatch::isaName(isa));

        const Sha256Digest empty = Sha256::digest("", 0);
        EXPECT_EQ(hex(empty.data(), empty.size()),
                  "e3b0c44298fc1c149afbf4c8996fb924"
                  "27ae41e4649b934ca495991b7852b855");

        const Sha256Digest abc = Sha256::digest("abc", 3);
        EXPECT_EQ(hex(abc.data(), abc.size()),
                  "ba7816bf8f01cfea414140de5dae2223"
                  "b00361a396177a9cb410ff61f20015ad");

        const char *two =
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        const Sha256Digest d2 = Sha256::digest(two, std::strlen(two));
        EXPECT_EQ(hex(d2.data(), d2.size()),
                  "248d6a61d20638b8e5c026930c3e6039"
                  "a33ce45964ff2167f6ecedd419db06c1");

        // Million a's: exercises the multi-block compress loop.
        Sha256 h;
        const std::string chunk(1000, 'a');
        for (int i = 0; i < 1000; ++i)
            h.update(chunk.data(), chunk.size());
        const Sha256Digest dm = h.final();
        EXPECT_EQ(hex(dm.data(), dm.size()),
                  "cdc76e5c9914fb9281a1c7e284d73e67"
                  "f1809a48a497200e046d39ccc7112cd0");
    }
}

TEST(KatDispatch, Sha256PathsAgreeOnArbitraryLengths)
{
    IsaGuard guard;
    std::vector<std::uint8_t> msg(1031);
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 37 + 11);
    for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u,
                            128u, 129u, 1031u}) {
        ASSERT_TRUE(dispatch::select(dispatch::Isa::Scalar));
        const Sha256Digest ref = Sha256::digest(msg.data(), len);
        for (auto isa : availableIsas()) {
            ASSERT_TRUE(dispatch::select(isa));
            EXPECT_EQ(Sha256::digest(msg.data(), len), ref)
                << dispatch::isaName(isa) << " len " << len;
        }
    }
}

TEST(KatDispatch, AesFips197EveryPath)
{
    IsaGuard guard;
    AesBlock key, pt, want;
    fromHex("000102030405060708090a0b0c0d0e0f", key.data());
    fromHex("00112233445566778899aabbccddeeff", pt.data());
    fromHex("69c4e0d86a7b0430d8cdb78070b4c55a", want.data());
    for (auto isa : availableIsas()) {
        ASSERT_TRUE(dispatch::select(isa));
        const Aes128 aes(key);
        EXPECT_EQ(aes.encrypt(pt), want) << dispatch::isaName(isa);
    }
}

TEST(KatDispatch, AesSp800_38aBatchEveryPath)
{
    IsaGuard guard;
    AesBlock key;
    fromHex("2b7e151628aed2a6abf7158809cf4f3c", key.data());
    static const char *kPt[4] = {
        "6bc1bee22e409f96e93d7e117393172a",
        "ae2d8a571e03ac9c9eb76fac45af8e51",
        "30c81c46a35ce411e5fbc1191a0a52ef",
        "f69f2445df4f9b17ad2b417be66c3710",
    };
    static const char *kCt[4] = {
        "3ad77bb40d7a3660a89ecaf32466ef97",
        "f5d3d58503b9699de785895a96fdbaaf",
        "43b1cd7f598ece23881b00e3ed030688",
        "7b0c785e27e8ad3f8223207104725dd4",
    };
    std::uint8_t in[4 * 16], want[4 * 16], out[4 * 16];
    for (int i = 0; i < 4; ++i) {
        fromHex(kPt[i], in + 16 * i);
        fromHex(kCt[i], want + 16 * i);
    }
    for (auto isa : availableIsas()) {
        ASSERT_TRUE(dispatch::select(isa));
        const Aes128 aes(key);
        // One multi-block call: exercises the 4-wide pipelined path.
        aes.encryptBlocks(in, out, 4);
        EXPECT_EQ(hex(out, sizeof(out)), hex(want, sizeof(want)))
            << dispatch::isaName(isa);
    }
}

TEST(KatDispatch, AesMultiBlockTailEveryPath)
{
    IsaGuard guard;
    AesBlock key;
    fromHex("2b7e151628aed2a6abf7158809cf4f3c", key.data());
    // 7 blocks: one 4-wide group plus a 3-block tail.
    std::uint8_t in[7 * 16];
    for (std::size_t i = 0; i < sizeof(in); ++i)
        in[i] = static_cast<std::uint8_t>(i * 13 + 5);
    for (auto isa : availableIsas()) {
        ASSERT_TRUE(dispatch::select(isa));
        const Aes128 aes(key);
        std::uint8_t batch[7 * 16];
        aes.encryptBlocks(in, batch, 7);
        for (int b = 0; b < 7; ++b) {
            AesBlock one;
            std::memcpy(one.data(), in + 16 * b, 16);
            const AesBlock enc = aes.encrypt(one);
            EXPECT_EQ(hex(batch + 16 * b, 16),
                      hex(enc.data(), enc.size()))
                << dispatch::isaName(isa) << " block " << b;
        }
    }
}

TEST(KatDispatch, HmacRfc4231EveryPath)
{
    IsaGuard guard;
    std::uint8_t key[20];
    std::memset(key, 0x0b, sizeof(key));
    for (auto isa : availableIsas()) {
        ASSERT_TRUE(dispatch::select(isa));
        const HmacSha256 hmac(key, sizeof(key));
        const Sha256Digest d = hmac.mac("Hi There", 8);
        EXPECT_EQ(hex(d.data(), d.size()),
                  "b0344c61d8db38535ca8afceaf0bf12b"
                  "881dc200c9833da726e9376c2e32cff7")
            << dispatch::isaName(isa);
    }
}

TEST(KatDispatch, SipHashBatchMatchesScalar)
{
    BatchGuard guard;
    const SipHash24 sip(0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL);
    std::vector<std::uint8_t> pool(256);
    for (std::size_t i = 0; i < pool.size(); ++i)
        pool[i] = static_cast<std::uint8_t>(i);

    for (std::size_t len : {0u, 3u, 8u, 16u, 63u, 64u}) {
        for (std::size_t n : {1u, 3u, 4u, 5u, 9u, 16u}) {
            std::vector<const std::uint8_t *> ptrs(n);
            for (std::size_t i = 0; i < n; ++i)
                ptrs[i] = pool.data() + i;
            std::vector<std::uint64_t> batch(n);
            sip.macManySameLen(ptrs.data(), len, batch.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(batch[i], sip.mac(ptrs[i], len))
                    << "len " << len << " lane " << i << "/" << n;
        }
    }

    std::vector<std::uint64_t> a(13), b(13), batch(13);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 0x1111111111111111ULL * i;
        b[i] = ~a[i];
    }
    sip.macWordsMany(a.data(), b.data(), batch.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(batch[i], sip.macWords(a[i], b[i])) << "lane " << i;
}

/** Batch engine calls must equal N scalar calls on every path. */
TEST(KatDispatch, EngineBatchesMatchScalarEveryPath)
{
    IsaGuard isa_guard;
    BatchGuard batch_guard;

    std::uint8_t payload[192 * kBlockSize];
    for (std::size_t i = 0; i < sizeof(payload); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 31 + 7);

    for (auto isa : availableIsas()) {
        ASSERT_TRUE(dispatch::select(isa));
        SCOPED_TRACE(dispatch::isaName(isa));

        const SipHashEngine sip_eng(0x1234, 0x5678);
        std::uint8_t hkey[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                                 9, 10, 11, 12, 13, 14, 15, 16};
        const HmacShaEngine hmac_eng(hkey, sizeof(hkey));
        const FastPadEngine fast_pad(0x9abc, 0xdef0);
        AesBlock akey;
        fromHex("000102030405060708090a0b0c0d0e0f", akey.data());
        const AesCtrEngine aes_pad(akey);

        // Chunk-boundary coverage: within one chunk, exactly one
        // chunk, and spanning three chunks.
        for (std::size_t n : {1u, 5u, 64u, 130u}) {
            std::vector<MacRequest> mreqs(n);
            std::vector<PadRequest> preqs(n);
            for (std::size_t i = 0; i < n; ++i) {
                // Mixed lengths to exercise the equal-length grouping.
                const std::size_t len = (i % 7 == 3) ? 24 : kBlockSize;
                mreqs[i] = {payload + i * kBlockSize, len,
                            0xabcd0000 + i};
                preqs[i] = {Addr(i * kBlockSize), 77 + i,
                            std::uint8_t(i % 120)};
            }
            for (bool wide : {true, false}) {
                dispatch::setBatchEnabled(wide);
                for (const HashEngine *h :
                     {static_cast<const HashEngine *>(&sip_eng),
                      static_cast<const HashEngine *>(&hmac_eng)}) {
                    std::vector<std::uint64_t> batch(n);
                    h->mac64xN(mreqs.data(), n, batch.data());
                    for (std::size_t i = 0; i < n; ++i)
                        EXPECT_EQ(batch[i],
                                  h->mac64(mreqs[i].data, mreqs[i].len,
                                           mreqs[i].tweak))
                            << "wide " << wide << " n " << n << " req "
                            << i;
                }
                for (const EncryptionEngine *e :
                     {static_cast<const EncryptionEngine *>(&fast_pad),
                      static_cast<const EncryptionEngine *>(
                          &aes_pad)}) {
                    std::vector<std::uint8_t> batch(n * kBlockSize);
                    e->padxN(preqs.data(), n, batch.data());
                    for (std::size_t i = 0; i < n; ++i) {
                        std::uint8_t one[kBlockSize];
                        e->pad(preqs[i].blockAddr, preqs[i].major,
                               preqs[i].minor, one);
                        EXPECT_EQ(
                            std::memcmp(batch.data() + i * kBlockSize,
                                        one, kBlockSize),
                            0)
                            << "wide " << wide << " n " << n << " req "
                            << i;
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace amnt::crypto
