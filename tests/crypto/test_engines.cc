#include <gtest/gtest.h>

#include <cstring>

#include "crypto/engines.hh"

namespace amnt::crypto
{
namespace
{

class EnginesTest : public ::testing::TestWithParam<CryptoPlane>
{
  protected:
    CryptoSuite suite_ = CryptoSuite::make(GetParam(), 42);
};

TEST_P(EnginesTest, EncryptDecryptRoundTrip)
{
    std::uint8_t plain[kBlockSize];
    for (std::size_t i = 0; i < kBlockSize; ++i)
        plain[i] = static_cast<std::uint8_t>(i * 7 + 1);

    std::uint8_t cipher[kBlockSize];
    std::uint8_t back[kBlockSize];
    suite_.enc->xorPad(0x1000, 5, 3, plain, cipher);
    suite_.enc->xorPad(0x1000, 5, 3, cipher, back);
    EXPECT_EQ(std::memcmp(plain, back, kBlockSize), 0);
    EXPECT_NE(std::memcmp(plain, cipher, kBlockSize), 0);
}

TEST_P(EnginesTest, PadIsSpatiallyUnique)
{
    std::uint8_t a[kBlockSize], b[kBlockSize];
    suite_.enc->pad(0x1000, 1, 1, a);
    suite_.enc->pad(0x1040, 1, 1, b);
    EXPECT_NE(std::memcmp(a, b, kBlockSize), 0);
}

TEST_P(EnginesTest, PadIsTemporallyUnique)
{
    std::uint8_t a[kBlockSize], b[kBlockSize], c[kBlockSize];
    suite_.enc->pad(0x1000, 1, 1, a);
    suite_.enc->pad(0x1000, 1, 2, b); // minor bump
    suite_.enc->pad(0x1000, 2, 1, c); // major bump
    EXPECT_NE(std::memcmp(a, b, kBlockSize), 0);
    EXPECT_NE(std::memcmp(a, c, kBlockSize), 0);
    EXPECT_NE(std::memcmp(b, c, kBlockSize), 0);
}

TEST_P(EnginesTest, MacDetectsSingleBitFlip)
{
    std::uint8_t data[kBlockSize] = {};
    const std::uint64_t before =
        suite_.hash->mac64(data, kBlockSize, 99);
    data[17] ^= 0x20;
    EXPECT_NE(suite_.hash->mac64(data, kBlockSize, 99), before);
}

TEST_P(EnginesTest, MacBindsTweak)
{
    const std::uint8_t data[kBlockSize] = {};
    EXPECT_NE(suite_.hash->mac64(data, kBlockSize, 1),
              suite_.hash->mac64(data, kBlockSize, 2));
}

TEST_P(EnginesTest, SeedsProduceIndependentKeys)
{
    CryptoSuite other = CryptoSuite::make(GetParam(), 43);
    const std::uint8_t data[kBlockSize] = {};
    EXPECT_NE(suite_.hash->mac64(data, kBlockSize, 1),
              other.hash->mac64(data, kBlockSize, 1));
}

INSTANTIATE_TEST_SUITE_P(BothPlanes, EnginesTest,
                         ::testing::Values(CryptoPlane::Fast,
                                           CryptoPlane::Functional),
                         [](const auto &info) {
                             return info.param == CryptoPlane::Fast
                                        ? "Fast"
                                        : "Functional";
                         });

} // namespace
} // namespace amnt::crypto
