#include <gtest/gtest.h>

#include "crypto/aes128.hh"

namespace amnt::crypto
{
namespace
{

AesBlock
fromHex(const char *hex)
{
    AesBlock b{};
    for (int i = 0; i < 16; ++i) {
        unsigned v = 0;
        std::sscanf(hex + 2 * i, "%02x", &v);
        b[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v);
    }
    return b;
}

// FIPS-197 Appendix C.1.
TEST(Aes128, Fips197Vector)
{
    Aes128 aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    const AesBlock out =
        aes.encrypt(fromHex("00112233445566778899aabbccddeeff"));
    EXPECT_EQ(out, fromHex("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

// NIST SP 800-38A F.1.1 (ECB-AES128, block 1).
TEST(Aes128, Sp800_38aBlock1)
{
    Aes128 aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const AesBlock out =
        aes.encrypt(fromHex("6bc1bee22e409f96e93d7e117393172a"));
    EXPECT_EQ(out, fromHex("3ad77bb40d7a3660a89ecaf32466ef97"));
}

// NIST SP 800-38A F.1.1 (ECB-AES128, block 2).
TEST(Aes128, Sp800_38aBlock2)
{
    Aes128 aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const AesBlock out =
        aes.encrypt(fromHex("ae2d8a571e03ac9c9eb76fac45af8e51"));
    EXPECT_EQ(out, fromHex("f5d3d58503b9699de785895a96fdbaaf"));
}

TEST(Aes128, Deterministic)
{
    Aes128 aes(fromHex("00000000000000000000000000000000"));
    const AesBlock in{};
    EXPECT_EQ(aes.encrypt(in), aes.encrypt(in));
}

TEST(Aes128, KeySensitivity)
{
    Aes128 a(fromHex("00000000000000000000000000000000"));
    Aes128 b(fromHex("00000000000000000000000000000001"));
    const AesBlock in{};
    EXPECT_NE(a.encrypt(in), b.encrypt(in));
}

} // namespace
} // namespace amnt::crypto
