#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/sha256.hh"

namespace amnt::crypto
{
namespace
{

std::string
hex(const Sha256Digest &d)
{
    std::string out;
    for (auto b : d) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", b);
        out += buf;
    }
    return out;
}

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(hex(Sha256::digest("", 0)),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hex(Sha256::digest("abc", 3)),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    const char *msg =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(hex(Sha256::digest(msg, std::strlen(msg))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk.data(), chunk.size());
    EXPECT_EQ(hex(h.final()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg = "the quick brown fox jumps over the lazy dog";
    Sha256 h;
    for (char c : msg)
        h.update(&c, 1);
    EXPECT_EQ(hex(h.final()),
              hex(Sha256::digest(msg.data(), msg.size())));
}

TEST(Sha256, PaddingBoundaries)
{
    // Lengths straddling the 55/56/64-byte padding edges must all
    // hash distinctly and deterministically.
    std::string prev;
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
        const std::string msg(len, 'x');
        const std::string d = hex(Sha256::digest(msg.data(), len));
        EXPECT_NE(d, prev);
        EXPECT_EQ(d, hex(Sha256::digest(msg.data(), len)));
        prev = d;
    }
}

} // namespace
} // namespace amnt::crypto
