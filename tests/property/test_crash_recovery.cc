/**
 * Property test: for every crash-consistent protocol, a crash after
 * ANY prefix of ANY workload must recover successfully, and every
 * block written before the crash must decrypt and verify afterwards.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

struct Scenario
{
    mee::Protocol protocol;
    std::uint64_t seed;
};

class CrashAnywhere : public ::testing::TestWithParam<Scenario>
{
};

TEST_P(CrashAnywhere, RecoversAndVerifies)
{
    const Scenario sc = GetParam();
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    cfg.amntInterval = 32;
    cfg.bmfInterval = 64;
    Rig rig(sc.protocol, cfg);

    Rng rng(sc.seed);
    const int total_ops = 400;
    const int crash_at = 1 + static_cast<int>(rng.below(total_ops));

    std::unordered_map<Addr, std::uint64_t> content;
    std::uint64_t op = 0;
    for (int i = 0; i < crash_at; ++i) {
        const Addr a =
            rng.below(512) * kPageSize + rng.below(16) * kBlockSize;
        if (rng.chance(0.7)) {
            test::writePattern(*rig.engine, a, op);
            content[a] = op;
            ++op;
        } else if (!content.empty()) {
            rig.engine->read(a);
        }
    }

    rig.engine->crash();
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success)
        << mee::protocolName(sc.protocol) << " seed " << sc.seed
        << " crash_at " << crash_at;

    for (const auto &kv : content)
        EXPECT_TRUE(
            test::checkPattern(*rig.engine, kv.first, kv.second))
            << mee::protocolName(sc.protocol) << " addr " << kv.first;
    EXPECT_EQ(rig.engine->violations(), 0ull);

    // And the machine keeps working after recovery.
    test::writePattern(*rig.engine, 0x8000, 999);
    EXPECT_TRUE(test::checkPattern(*rig.engine, 0x8000, 999));
}

std::vector<Scenario>
scenarios()
{
    std::vector<Scenario> out;
    for (mee::Protocol p :
         {mee::Protocol::Strict, mee::Protocol::Leaf,
          mee::Protocol::Osiris, mee::Protocol::Anubis,
          mee::Protocol::Bmf, mee::Protocol::Amnt}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            out.push_back({p, seed});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, CrashAnywhere, ::testing::ValuesIn(scenarios()),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param.protocol)) +
               "_seed" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace amnt
