/**
 * Differential property: persistence protocols change WHEN metadata
 * reaches NVM, never WHAT the data is. Feeding the same operation
 * stream to every protocol must produce identical readable contents,
 * and (absent a crash) identical architectural counters.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/protocol_registry.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

TEST(ProtocolDifferential, AllProtocolsAgreeOnContents)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    cfg.bmfInterval = 64;

    // Every registered protocol — including the volatile baseline —
    // must agree on contents; new registrations enroll automatically.
    std::vector<std::unique_ptr<Rig>> rigs;
    for (mee::Protocol p : core::allProtocols())
        rigs.push_back(std::make_unique<Rig>(p, cfg));

    Rng rng(31337);
    std::unordered_map<Addr, std::uint64_t> last;
    for (int i = 0; i < 600; ++i) {
        const Addr a =
            rng.below(512) * kPageSize + rng.below(8) * kBlockSize;
        if (rng.chance(0.6)) {
            for (auto &rig : rigs)
                test::writePattern(*rig->engine, a,
                                   static_cast<std::uint64_t>(i));
            last[a] = static_cast<std::uint64_t>(i);
        } else {
            for (auto &rig : rigs)
                rig->engine->read(a);
        }
    }

    for (auto &rig : rigs) {
        for (const auto &kv : last)
            EXPECT_TRUE(test::checkPattern(*rig->engine, kv.first,
                                           kv.second))
                << mee::protocolName(rig->engine->protocol());
        EXPECT_EQ(rig->engine->violations(), 0ull);
    }

    // Architectural counters agree across all protocols.
    const auto &reference = rigs.front()->engine->treeState();
    for (std::size_t r = 1; r < rigs.size(); ++r) {
        const auto &other = rigs[r]->engine->treeState();
        EXPECT_EQ(reference.touchedCounters(), other.touchedCounters());
        reference.forEachCounter(
            [&](std::uint64_t idx, const bmt::CounterBlock &cb) {
                EXPECT_EQ(other.counter(idx), cb)
                    << mee::protocolName(
                           rigs[r]->engine->protocol())
                    << " counter " << idx;
            });
    }
}

TEST(ProtocolDifferential, CrashSurvivorsAgreeAfterRecovery)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;

    std::vector<std::unique_ptr<Rig>> rigs;
    for (mee::Protocol p : core::persistentProtocols())
        rigs.push_back(std::make_unique<Rig>(p, cfg));

    Rng rng(4242);
    std::unordered_map<Addr, std::uint64_t> last;
    for (int i = 0; i < 400; ++i) {
        const Addr a = rng.below(256) * kPageSize;
        for (auto &rig : rigs)
            test::writePattern(*rig->engine, a,
                               static_cast<std::uint64_t>(i));
        last[a] = static_cast<std::uint64_t>(i);
    }

    for (auto &rig : rigs) {
        rig->engine->crash();
        ASSERT_TRUE(rig->engine->recover().success)
            << mee::protocolName(rig->engine->protocol());
        for (const auto &kv : last)
            EXPECT_TRUE(test::checkPattern(*rig->engine, kv.first,
                                           kv.second))
                << mee::protocolName(rig->engine->protocol());
    }
}

} // namespace
} // namespace amnt
