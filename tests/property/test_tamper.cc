/**
 * Property test: physical tampering with ANY persisted byte — data,
 * counters, HMACs, tree nodes — must be detected, either at the next
 * fetch of the tampered block or at crash recovery.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.hh"
#include "core/protocol_registry.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

class TamperTest : public ::testing::TestWithParam<mee::Protocol>
{
  protected:
    TamperTest()
    {
        setQuiet(true);
        mee::MeeConfig cfg = test::smallConfig();
        cfg.dataBytes = 2ull << 20;
        cfg.amntSubtreeLevel = 2;
        rig_ = std::make_unique<Rig>(GetParam(), cfg);
        // Populate a working set and push metadata out of the cache
        // so later fetches really come from (attackable) NVM.
        for (std::uint64_t i = 0; i < 400; ++i)
            test::writePattern(*rig_->engine, (i % 256) * kPageSize,
                               i);
    }
    ~TamperTest() override { setQuiet(false); }

    /** Evict everything cached so fetches hit NVM. */
    void
    flushMetadataCache()
    {
        for (std::uint64_t i = 0; i < 512; ++i)
            rig_->engine->read((256 + (i % 128)) * kPageSize);
    }

    std::unique_ptr<Rig> rig_;
};

TEST_P(TamperTest, DataTamperDetectedOnRead)
{
    rig_->nvm->tamper(0, 13, 0x04);
    rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, CounterTamperDetectedOnFetch)
{
    flushMetadataCache();
    const Addr caddr = rig_->engine->map().counterBase();
    rig_->nvm->tamper(caddr, 9, 0x80);
    // Touching page 0 forces the counter fetch.
    for (int i = 0; i < 4 && rig_->engine->violations() == 0; ++i)
        rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, HmacTamperDetected)
{
    flushMetadataCache();
    const Addr haddr = rig_->engine->map().hmacAddrOf(0);
    rig_->nvm->tamper(haddr, 2, 0x01);
    rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, TreeNodeTamperDetectedOnFetch)
{
    flushMetadataCache();
    // Tamper the deepest tree level node covering counter 0.
    const auto &map = rig_->engine->map();
    const Addr naddr =
        map.nodeAddrOf(map.geometry().leafNodeOf(0));
    rig_->nvm->tamper(naddr, 0, 0xff);
    for (int i = 0; i < 4 && rig_->engine->violations() == 0; ++i)
        rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, ReplayOfOldCounterDetected)
{
    // Capture the persisted counter block, advance it, then restore
    // the stale copy: a classic replay/rollback attack.
    const Addr caddr = rig_->engine->map().counterBase();
    flushMetadataCache();
    mem::Block old_bytes;
    rig_->nvm->peek(caddr, old_bytes);

    for (int i = 0; i < 8; ++i)
        test::writePattern(*rig_->engine, 0, 900 + i);
    flushMetadataCache();

    mem::Block now_bytes;
    rig_->nvm->peek(caddr, now_bytes);
    ASSERT_NE(old_bytes, now_bytes)
        << "test needs the persisted counter to have advanced";
    rig_->nvm->writeBlock(caddr, old_bytes); // attacker's restore

    for (int i = 0; i < 4 && rig_->engine->violations() == 0; ++i)
        rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

// Every persistent protocol in the registry is enrolled; registering
// a new protocol adds its legs here automatically.
INSTANTIATE_TEST_SUITE_P(
    Registry, TamperTest,
    ::testing::ValuesIn(core::persistentProtocols()),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

class TamperAtRest : public ::testing::TestWithParam<mee::Protocol>
{
};

TEST_P(TamperAtRest, CounterCorruptionWhilePoweredOffFailsRecovery)
{
    setQuiet(true);
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    Rig rig(GetParam(), cfg);
    for (std::uint64_t i = 0; i < 100; ++i)
        test::writePattern(*rig.engine, i * kPageSize, i);
    rig.engine->crash();
    rig.nvm->tamper(rig.engine->map().counterBase() + 5 * kBlockSize,
                    1, 0x10);
    const auto report = rig.engine->recover();
    EXPECT_FALSE(report.success);
    setQuiet(false);
}

// Enrollment follows each protocol's declared CrashProfile: only
// protocols whose recovery re-derives state from the persisted
// counters (tamperAtRestDetects) can promise a powered-off counter
// flip FAILS recovery. Osiris/Anubis/Bmf legitimately repair or
// shadow-restore instead, so they opt out via their profile — not via
// an edit to this file.
INSTANTIATE_TEST_SUITE_P(
    Registry, TamperAtRest,
    ::testing::ValuesIn(core::tamperAtRestProtocols()),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

// ---------------------------------------------------------------------
// Post-crash tamper-anywhere sweep: with the machine powered off, flip
// one bit in a representative of every persisted metadata region class
// and demand that nothing is silently corrupted — either recovery
// fails, or the first touch of the affected block flags a violation,
// or the flipped bytes are provably neutralized (recomputed during
// recovery) and every committed block still reads back bit-exactly.

/** A crashed engine plus the last committed pattern per address. */
struct SweepRig
{
    std::unique_ptr<Rig> rig;
    std::map<Addr, std::uint64_t> last;
};

SweepRig
makeCrashedRig(mee::Protocol p)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20; // 512 pages, node levels 1..3
    cfg.amntSubtreeLevel = 2;
    SweepRig s;
    s.rig = std::make_unique<Rig>(p, cfg);
    for (std::uint64_t i = 0; i < 120; ++i) {
        const Addr addr =
            (i % 40) * kPageSize + (i % 8) * kBlockSize;
        test::writePattern(*s.rig->engine, addr, i);
        s.last[addr] = i;
    }
    s.rig->engine->crash();
    return s;
}

/** The no-silent-corruption disjunction after a powered-off flip. */
void
expectNoSilentCorruption(SweepRig &s, Addr touch)
{
    const auto report = s.rig->engine->recover();
    if (!report.success)
        return; // detected at recovery: nothing silent
    s.rig->engine->read(touch);
    if (s.rig->engine->violations() > 0)
        return; // detected at the first touch of the region
    // Neither tripped: the flip must have been neutralized by the
    // recovery recompute, leaving every committed block intact.
    for (const auto &kv : s.last)
        EXPECT_TRUE(test::checkPattern(*s.rig->engine, kv.first,
                                       kv.second))
            << "silent corruption at address " << kv.first;
    EXPECT_EQ(s.rig->engine->violations(), 0u);
}

class PostCrashTamperSweep
    : public ::testing::TestWithParam<mee::Protocol>
{
  protected:
    PostCrashTamperSweep() { setQuiet(true); }
    ~PostCrashTamperSweep() override { setQuiet(false); }
};

TEST_P(PostCrashTamperSweep, WrittenDataBlock)
{
    SweepRig s = makeCrashedRig(GetParam());
    s.rig->nvm->tamper(0, 13, 0x04);
    expectNoSilentCorruption(s, 0);
}

TEST_P(PostCrashTamperSweep, CounterBlockOfWrittenPage)
{
    SweepRig s = makeCrashedRig(GetParam());
    s.rig->nvm->tamper(s.rig->engine->map().counterBase() +
                           5 * kBlockSize,
                       9, 0x80);
    expectNoSilentCorruption(s, 5 * kPageSize);
}

TEST_P(PostCrashTamperSweep, HmacBlockOfWrittenBlock)
{
    SweepRig s = makeCrashedRig(GetParam());
    s.rig->nvm->tamper(s.rig->engine->map().hmacAddrOf(0), 2, 0x01);
    expectNoSilentCorruption(s, 0);
}

TEST_P(PostCrashTamperSweep, TreeNodeAtEveryLevel)
{
    // One fresh crashed rig per level: recovery neutralizes tree-node
    // flips (nodes are recomputed from counters), so each level needs
    // its own powered-off flip — including level 1, the persisted
    // image of the root itself.
    const unsigned levels = [&] {
        SweepRig probe = makeCrashedRig(GetParam());
        return probe.rig->engine->map().geometry().nodeLevels();
    }();
    for (unsigned level = 1; level <= levels; ++level) {
        SweepRig s = makeCrashedRig(GetParam());
        const auto &map = s.rig->engine->map();
        bmt::NodeRef ref = map.geometry().leafNodeOf(0);
        while (ref.level > level)
            ref = bmt::Geometry::parentOf(ref);
        s.rig->nvm->tamper(map.nodeAddrOf(ref), 4, 0x20);
        expectNoSilentCorruption(s, 0);
    }
}

TEST_P(PostCrashTamperSweep, NeverWrittenDataBlockIsFlaggedOnRead)
{
    // Regression for the never-written tamper path: the attack
    // registers the all-zero block in the device store, recovery
    // succeeds (the data region is outside the rebuild), and the
    // first read must flag the nonzero ciphertext of a block whose
    // counter and HMAC entries are still zero.
    SweepRig s = makeCrashedRig(GetParam());
    const Addr untouched = 100 * kPageSize; // page never written
    EXPECT_FALSE(s.rig->nvm->tamper(untouched, 0, 0xff));
    const auto report = s.rig->engine->recover();
    ASSERT_TRUE(report.success) << report.detail;
    s.rig->engine->read(untouched);
    EXPECT_GT(s.rig->engine->violations(), 0ull)
        << "tamper of a never-written data block went undetected";
}

TEST_P(PostCrashTamperSweep, NeverWrittenCounterBlockFailsRecovery)
{
    // A flip inside the counter region of a never-written page plants
    // a phantom counter: the rebuild sweeps every persisted counter
    // block, so the recomputed root diverges from the NV register.
    SweepRig s = makeCrashedRig(GetParam());
    EXPECT_FALSE(s.rig->nvm->tamper(
        s.rig->engine->map().counterBase() + 200 * kBlockSize, 0,
        0x01));
    const auto report = s.rig->engine->recover();
    EXPECT_FALSE(report.success)
        << "phantom counter accepted by recovery";
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PostCrashTamperSweep,
    ::testing::ValuesIn(core::persistentProtocols()),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

} // namespace
} // namespace amnt
