/**
 * Property test: physical tampering with ANY persisted byte — data,
 * counters, HMACs, tree nodes — must be detected, either at the next
 * fetch of the tampered block or at crash recovery.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

class TamperTest : public ::testing::TestWithParam<mee::Protocol>
{
  protected:
    TamperTest()
    {
        setQuiet(true);
        mee::MeeConfig cfg = test::smallConfig();
        cfg.dataBytes = 2ull << 20;
        cfg.amntSubtreeLevel = 2;
        rig_ = std::make_unique<Rig>(GetParam(), cfg);
        // Populate a working set and push metadata out of the cache
        // so later fetches really come from (attackable) NVM.
        for (std::uint64_t i = 0; i < 400; ++i)
            test::writePattern(*rig_->engine, (i % 256) * kPageSize,
                               i);
    }
    ~TamperTest() override { setQuiet(false); }

    /** Evict everything cached so fetches hit NVM. */
    void
    flushMetadataCache()
    {
        for (std::uint64_t i = 0; i < 512; ++i)
            rig_->engine->read((256 + (i % 128)) * kPageSize);
    }

    std::unique_ptr<Rig> rig_;
};

TEST_P(TamperTest, DataTamperDetectedOnRead)
{
    rig_->nvm->tamper(0, 13, 0x04);
    rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, CounterTamperDetectedOnFetch)
{
    flushMetadataCache();
    const Addr caddr = rig_->engine->map().counterBase();
    rig_->nvm->tamper(caddr, 9, 0x80);
    // Touching page 0 forces the counter fetch.
    for (int i = 0; i < 4 && rig_->engine->violations() == 0; ++i)
        rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, HmacTamperDetected)
{
    flushMetadataCache();
    const Addr haddr = rig_->engine->map().hmacAddrOf(0);
    rig_->nvm->tamper(haddr, 2, 0x01);
    rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, TreeNodeTamperDetectedOnFetch)
{
    flushMetadataCache();
    // Tamper the deepest tree level node covering counter 0.
    const auto &map = rig_->engine->map();
    const Addr naddr =
        map.nodeAddrOf(map.geometry().leafNodeOf(0));
    rig_->nvm->tamper(naddr, 0, 0xff);
    for (int i = 0; i < 4 && rig_->engine->violations() == 0; ++i)
        rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

TEST_P(TamperTest, ReplayOfOldCounterDetected)
{
    // Capture the persisted counter block, advance it, then restore
    // the stale copy: a classic replay/rollback attack.
    const Addr caddr = rig_->engine->map().counterBase();
    flushMetadataCache();
    mem::Block old_bytes;
    rig_->nvm->peek(caddr, old_bytes);

    for (int i = 0; i < 8; ++i)
        test::writePattern(*rig_->engine, 0, 900 + i);
    flushMetadataCache();

    mem::Block now_bytes;
    rig_->nvm->peek(caddr, now_bytes);
    ASSERT_NE(old_bytes, now_bytes)
        << "test needs the persisted counter to have advanced";
    rig_->nvm->writeBlock(caddr, old_bytes); // attacker's restore

    for (int i = 0; i < 4 && rig_->engine->violations() == 0; ++i)
        rig_->engine->read(0);
    EXPECT_GT(rig_->engine->violations(), 0ull);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TamperTest,
    ::testing::Values(mee::Protocol::Strict, mee::Protocol::Leaf,
                      mee::Protocol::Osiris, mee::Protocol::Anubis,
                      mee::Protocol::Bmf, mee::Protocol::Amnt),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

class TamperAtRest : public ::testing::TestWithParam<mee::Protocol>
{
};

TEST_P(TamperAtRest, CounterCorruptionWhilePoweredOffFailsRecovery)
{
    setQuiet(true);
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    Rig rig(GetParam(), cfg);
    for (std::uint64_t i = 0; i < 100; ++i)
        test::writePattern(*rig.engine, i * kPageSize, i);
    rig.engine->crash();
    rig.nvm->tamper(rig.engine->map().counterBase() + 5 * kBlockSize,
                    1, 0x10);
    const auto report = rig.engine->recover();
    EXPECT_FALSE(report.success);
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(
    PersistentProtocols, TamperAtRest,
    ::testing::Values(mee::Protocol::Strict, mee::Protocol::Leaf,
                      mee::Protocol::Amnt),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

} // namespace
} // namespace amnt
