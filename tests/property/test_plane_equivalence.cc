/**
 * Property test: the two crypto planes are behaviourally equivalent.
 *
 * Protocol control flow (cache behaviour, persist decisions, NVM
 * traffic) depends only on addresses and counter state, never on hash
 * values — so a fast-plane engine and a functional-plane engine fed
 * the same operation stream must generate identical device traffic
 * and identical modeled latencies. This is what licenses running the
 * figure sweeps on the fast plane.
 */

#include <gtest/gtest.h>

#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

class PlaneEquivalence : public ::testing::TestWithParam<mee::Protocol>
{
};

TEST_P(PlaneEquivalence, IdenticalTrafficAndLatency)
{
    mee::MeeConfig fast_cfg =
        test::smallConfig(crypto::CryptoPlane::Fast);
    mee::MeeConfig func_cfg =
        test::smallConfig(crypto::CryptoPlane::Functional);
    fast_cfg.dataBytes = func_cfg.dataBytes = 2ull << 20;
    fast_cfg.amntSubtreeLevel = func_cfg.amntSubtreeLevel = 2;

    Rig fast(GetParam(), fast_cfg);
    Rig func(GetParam(), func_cfg);

    Rng rng(99);
    std::uint8_t buf[kBlockSize];
    for (int i = 0; i < 800; ++i) {
        const Addr a =
            rng.below(512) * kPageSize + rng.below(16) * kBlockSize;
        test::fillBlock(buf, static_cast<std::uint64_t>(i));
        Cycle lat_fast, lat_func;
        if (rng.chance(0.5)) {
            lat_fast = fast.engine->write(a, buf);
            lat_func = func.engine->write(a, buf);
        } else {
            lat_fast = fast.engine->read(a);
            lat_func = func.engine->read(a);
        }
        ASSERT_EQ(lat_fast, lat_func) << "op " << i;
        ASSERT_EQ(fast.nvm->reads(), func.nvm->reads()) << "op " << i;
        ASSERT_EQ(fast.nvm->writes(), func.nvm->writes())
            << "op " << i;
    }

    EXPECT_EQ(fast.engine->stats().all(), func.engine->stats().all());
    EXPECT_EQ(fast.engine->metaCache().hitRate(),
              func.engine->metaCache().hitRate());
    EXPECT_EQ(fast.engine->violations(), 0ull);
    EXPECT_EQ(func.engine->violations(), 0ull);
}

TEST_P(PlaneEquivalence, IdenticalRecoveryWork)
{
    mee::MeeConfig fast_cfg =
        test::smallConfig(crypto::CryptoPlane::Fast);
    mee::MeeConfig func_cfg =
        test::smallConfig(crypto::CryptoPlane::Functional);
    fast_cfg.dataBytes = func_cfg.dataBytes = 2ull << 20;
    fast_cfg.amntSubtreeLevel = func_cfg.amntSubtreeLevel = 2;

    Rig fast(GetParam(), fast_cfg);
    Rig func(GetParam(), func_cfg);
    for (std::uint64_t i = 0; i < 200; ++i) {
        test::writePattern(*fast.engine, (i % 128) * kPageSize, i);
        test::writePattern(*func.engine, (i % 128) * kPageSize, i);
    }
    fast.engine->crash();
    func.engine->crash();
    const auto rf = fast.engine->recover();
    const auto rg = func.engine->recover();
    // The volatile baseline fails recovery (no NV root register) —
    // identically on both planes.
    EXPECT_EQ(rf.success, rg.success);
    if (GetParam() != mee::Protocol::Volatile) {
        ASSERT_TRUE(rf.success);
        ASSERT_TRUE(rg.success);
    }
    EXPECT_EQ(rf.blocksRead, rg.blocksRead);
    EXPECT_EQ(rf.blocksWritten, rg.blocksWritten);
    EXPECT_EQ(rf.countersRecovered, rg.countersRecovered);
    EXPECT_DOUBLE_EQ(rf.estimatedMs, rg.estimatedMs);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, PlaneEquivalence,
    ::testing::Values(mee::Protocol::Volatile, mee::Protocol::Strict,
                      mee::Protocol::Leaf, mee::Protocol::Osiris,
                      mee::Protocol::Anubis, mee::Protocol::Bmf,
                      mee::Protocol::Amnt),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

} // namespace
} // namespace amnt
