/**
 * Property test: the two crypto planes are behaviourally equivalent.
 *
 * Protocol control flow (cache behaviour, persist decisions, NVM
 * traffic) depends only on addresses and counter state, never on hash
 * values — so a fast-plane engine and a functional-plane engine fed
 * the same operation stream must generate identical device traffic
 * and identical modeled latencies. This is what licenses running the
 * figure sweeps on the fast plane.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/dispatch.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

/** Restore the global batch/ISA knobs when a test ends. */
class KnobGuard
{
  public:
    KnobGuard()
        : isa_(crypto::dispatch::active().isa),
          batch_(crypto::dispatch::batchEnabled())
    {
    }
    ~KnobGuard()
    {
        crypto::dispatch::select(isa_);
        crypto::dispatch::setBatchEnabled(batch_);
    }

  private:
    crypto::dispatch::Isa isa_;
    bool batch_;
};

/**
 * Deterministic mixed workload: random reads/writes, a minor-counter
 * overflow (page re-encryption burst), then crash + recovery. Each op
 * runs on both rigs with @p knob flipped in between, asserting
 * identical latency and device traffic throughout.
 */
void
runLockstep(Rig &a, Rig &b, const std::function<void(bool)> &knob)
{
    Rng rng(4242);
    std::uint8_t buf[kBlockSize];
    const auto step = [&](auto &&op) {
        knob(true);
        const Cycle la = op(*a.engine);
        knob(false);
        const Cycle lb = op(*b.engine);
        ASSERT_EQ(la, lb);
        ASSERT_EQ(a.nvm->reads(), b.nvm->reads());
        ASSERT_EQ(a.nvm->writes(), b.nvm->writes());
    };
    for (int i = 0; i < 400 && !testing::Test::HasFatalFailure();
         ++i) {
        const Addr addr =
            rng.below(256) * kPageSize + rng.below(16) * kBlockSize;
        test::fillBlock(buf, static_cast<std::uint64_t>(i));
        if (rng.chance(0.5))
            step([&](mee::MemoryEngine &e) { return e.write(addr, buf); });
        else
            step([&](mee::MemoryEngine &e) { return e.read(addr); });
    }
    // Overflow the minor counter of one block: the write path takes
    // the page re-encryption burst (batched pads + HMAC entries).
    test::fillBlock(buf, 777);
    for (unsigned i = 0; i <= kMinorCounterMax + 1u &&
                         !testing::Test::HasFatalFailure();
         ++i)
        step([&](mee::MemoryEngine &e) {
            return e.write(3 * kPageSize, buf);
        });
    ASSERT_GE(a.engine->stats().get("overflow_reencrypts"), 1ull);

    // Identical persisted and architectural state before the crash.
    auto stale_a = a.engine->staleMetadataBlocks();
    auto stale_b = b.engine->staleMetadataBlocks();
    std::sort(stale_a.begin(), stale_a.end());
    std::sort(stale_b.begin(), stale_b.end());
    EXPECT_EQ(stale_a, stale_b);
    EXPECT_EQ(a.engine->stats().all(), b.engine->stats().all());

    // Crash + recover: exercises the level-by-level tree rebuild and
    // the batched bulk-persist restore paths.
    knob(true);
    a.engine->crash();
    const auto ra = a.engine->recover();
    knob(false);
    b.engine->crash();
    const auto rb = b.engine->recover();
    EXPECT_EQ(ra.success, rb.success);
    EXPECT_EQ(ra.blocksRead, rb.blocksRead);
    EXPECT_EQ(ra.blocksWritten, rb.blocksWritten);
    EXPECT_EQ(ra.countersRecovered, rb.countersRecovered);
    EXPECT_EQ(ra.nodesRecomputed, rb.nodesRecomputed);
    EXPECT_EQ(a.engine->rootRegister(), b.engine->rootRegister());
    EXPECT_EQ(a.engine->violations(), b.engine->violations());
}

class PlaneEquivalence : public ::testing::TestWithParam<mee::Protocol>
{
};

TEST_P(PlaneEquivalence, IdenticalTrafficAndLatency)
{
    mee::MeeConfig fast_cfg =
        test::smallConfig(crypto::CryptoPlane::Fast);
    mee::MeeConfig func_cfg =
        test::smallConfig(crypto::CryptoPlane::Functional);
    fast_cfg.dataBytes = func_cfg.dataBytes = 2ull << 20;
    fast_cfg.amntSubtreeLevel = func_cfg.amntSubtreeLevel = 2;

    Rig fast(GetParam(), fast_cfg);
    Rig func(GetParam(), func_cfg);

    Rng rng(99);
    std::uint8_t buf[kBlockSize];
    for (int i = 0; i < 800; ++i) {
        const Addr a =
            rng.below(512) * kPageSize + rng.below(16) * kBlockSize;
        test::fillBlock(buf, static_cast<std::uint64_t>(i));
        Cycle lat_fast, lat_func;
        if (rng.chance(0.5)) {
            lat_fast = fast.engine->write(a, buf);
            lat_func = func.engine->write(a, buf);
        } else {
            lat_fast = fast.engine->read(a);
            lat_func = func.engine->read(a);
        }
        ASSERT_EQ(lat_fast, lat_func) << "op " << i;
        ASSERT_EQ(fast.nvm->reads(), func.nvm->reads()) << "op " << i;
        ASSERT_EQ(fast.nvm->writes(), func.nvm->writes())
            << "op " << i;
    }

    EXPECT_EQ(fast.engine->stats().all(), func.engine->stats().all());
    EXPECT_EQ(fast.engine->metaCache().hitRate(),
              func.engine->metaCache().hitRate());
    EXPECT_EQ(fast.engine->violations(), 0ull);
    EXPECT_EQ(func.engine->violations(), 0ull);
}

TEST_P(PlaneEquivalence, IdenticalRecoveryWork)
{
    mee::MeeConfig fast_cfg =
        test::smallConfig(crypto::CryptoPlane::Fast);
    mee::MeeConfig func_cfg =
        test::smallConfig(crypto::CryptoPlane::Functional);
    fast_cfg.dataBytes = func_cfg.dataBytes = 2ull << 20;
    fast_cfg.amntSubtreeLevel = func_cfg.amntSubtreeLevel = 2;

    Rig fast(GetParam(), fast_cfg);
    Rig func(GetParam(), func_cfg);
    for (std::uint64_t i = 0; i < 200; ++i) {
        test::writePattern(*fast.engine, (i % 128) * kPageSize, i);
        test::writePattern(*func.engine, (i % 128) * kPageSize, i);
    }
    fast.engine->crash();
    func.engine->crash();
    const auto rf = fast.engine->recover();
    const auto rg = func.engine->recover();
    // The volatile baseline fails recovery (no NV root register) —
    // identically on both planes.
    EXPECT_EQ(rf.success, rg.success);
    if (GetParam() != mee::Protocol::Volatile) {
        ASSERT_TRUE(rf.success);
        ASSERT_TRUE(rg.success);
    }
    EXPECT_EQ(rf.blocksRead, rg.blocksRead);
    EXPECT_EQ(rf.blocksWritten, rg.blocksWritten);
    EXPECT_EQ(rf.countersRecovered, rg.countersRecovered);
    EXPECT_DOUBLE_EQ(rf.estimatedMs, rg.estimatedMs);
}

TEST_P(PlaneEquivalence, BatchedMatchesUnbatched)
{
    // The wide batch kernels must be behaviourally invisible: a full
    // workload (including overflow re-encryption and crash recovery)
    // with batching on equals the same workload with every batch call
    // degraded to N scalar calls — on both planes.
    KnobGuard guard;
    for (auto plane :
         {crypto::CryptoPlane::Fast, crypto::CryptoPlane::Functional}) {
        mee::MeeConfig cfg = test::smallConfig(plane);
        cfg.dataBytes = 2ull << 20;
        cfg.amntSubtreeLevel = 2;
        Rig batched(GetParam(), cfg);
        Rig scalar(GetParam(), cfg);
        runLockstep(batched, scalar, [](bool wide) {
            crypto::dispatch::setBatchEnabled(wide);
        });
        if (testing::Test::HasFatalFailure())
            return;
    }
}

TEST_P(PlaneEquivalence, IsaPathsAreEquivalent)
{
    // Scalar-forced and natively-dispatched engines must agree on a
    // full functional-plane workload (ISA selection only affects the
    // functional plane's SHA-256/AES kernels).
    KnobGuard guard;
    mee::MeeConfig cfg =
        test::smallConfig(crypto::CryptoPlane::Functional);
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    ASSERT_TRUE(crypto::dispatch::select(crypto::dispatch::Isa::Native));
    Rig native(GetParam(), cfg);
    ASSERT_TRUE(crypto::dispatch::select(crypto::dispatch::Isa::Scalar));
    Rig scalar(GetParam(), cfg);
    runLockstep(native, scalar, [](bool use_native) {
        crypto::dispatch::select(use_native
                                     ? crypto::dispatch::Isa::Native
                                     : crypto::dispatch::Isa::Scalar);
    });
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, PlaneEquivalence,
    ::testing::Values(mee::Protocol::Volatile, mee::Protocol::Strict,
                      mee::Protocol::Leaf, mee::Protocol::Osiris,
                      mee::Protocol::Anubis, mee::Protocol::Bmf,
                      mee::Protocol::Amnt),
    [](const auto &info) {
        return std::string(mee::protocolName(info.param));
    });

} // namespace
} // namespace amnt
