/**
 * Property test: randomized allocation/free storms preserve buddy
 * allocator invariants — no frame handed out twice, frame counts
 * conserved, coalescing sound — with and without AMNT++ biasing and
 * under concurrent restructuring.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "os/amntpp_allocator.hh"

namespace amnt::os
{
namespace
{

struct StormParams
{
    bool amntpp;
    std::uint64_t seed;
};

class AllocatorStorm : public ::testing::TestWithParam<StormParams>
{
};

TEST_P(AllocatorStorm, InvariantsHold)
{
    const StormParams p = GetParam();
    constexpr std::uint64_t kFrames = 4096;
    constexpr std::uint64_t kRegion = 512;

    std::unique_ptr<BuddyAllocator> alloc;
    if (p.amntpp) {
        AmntPpConfig cfg;
        cfg.restructureEvery = 64;
        alloc = std::make_unique<AmntPpAllocator>(kFrames, kRegion, 10,
                                                  cfg);
    } else {
        alloc = std::make_unique<BuddyAllocator>(kFrames);
    }

    Rng rng(p.seed);
    if (rng.chance(0.5))
        alloc->ageSystem(rng, 0.5 + rng.uniform() * 0.4);

    std::set<PageId> held;
    const std::uint64_t base_free = alloc->freeFrames();
    for (int i = 0; i < 30000; ++i) {
        const double roll = rng.uniform();
        if (roll < 0.5 || held.empty()) {
            if (auto f = alloc->allocPage()) {
                ASSERT_LT(*f, kFrames);
                ASSERT_TRUE(held.insert(*f).second)
                    << "frame handed out twice: " << *f;
            }
        } else {
            auto it = held.begin();
            std::advance(it, static_cast<long>(
                                 rng.below(held.size()) % 64));
            alloc->freePage(*it);
            held.erase(it);
        }
        ASSERT_EQ(alloc->freeFrames() + held.size(), base_free);
    }

    // Drain: everything still free is allocatable exactly once.
    std::set<PageId> rest;
    while (auto f = alloc->allocPage()) {
        ASSERT_TRUE(rest.insert(*f).second);
        ASSERT_EQ(held.count(*f), 0ull)
            << "allocator reissued a held frame";
    }
    EXPECT_EQ(rest.size(), base_free - held.size());
}

std::vector<StormParams>
storms()
{
    std::vector<StormParams> out;
    for (bool pp : {false, true})
        for (std::uint64_t seed = 1; seed <= 4; ++seed)
            out.push_back({pp, seed});
    return out;
}

INSTANTIATE_TEST_SUITE_P(Storms, AllocatorStorm,
                         ::testing::ValuesIn(storms()),
                         [](const auto &info) {
                             return std::string(info.param.amntpp
                                                    ? "amntpp"
                                                    : "buddy") +
                                    "_seed" +
                                    std::to_string(info.param.seed);
                         });

} // namespace
} // namespace amnt::os
