#include <gtest/gtest.h>

#include "core/history_buffer.hh"

namespace amnt::core
{
namespace
{

TEST(HistoryBuffer, HeadStartsAtIncumbent)
{
    HistoryBuffer hb(64, 7);
    EXPECT_EQ(hb.head(), 7ull);
}

TEST(HistoryBuffer, HeadTracksMostFrequent)
{
    HistoryBuffer hb(64, 0);
    for (int i = 0; i < 5; ++i)
        hb.record(3);
    for (int i = 0; i < 9; ++i)
        hb.record(11);
    EXPECT_EQ(hb.head(), 11ull);
    EXPECT_EQ(hb.countOf(3), 5ull);
    EXPECT_EQ(hb.countOf(11), 9ull);
}

TEST(HistoryBuffer, TieKeepsIncumbent)
{
    HistoryBuffer hb(64, 5);
    hb.record(5);
    hb.record(9); // 9 ties with 5 at count 1: incumbent stays
    EXPECT_EQ(hb.head(), 5ull);
    hb.record(9); // 9 now strictly greater
    EXPECT_EQ(hb.head(), 9ull);
}

TEST(HistoryBuffer, ResetZerosCountsAndSeedsHead)
{
    HistoryBuffer hb(64, 0);
    for (int i = 0; i < 10; ++i)
        hb.record(2);
    hb.reset(4);
    EXPECT_EQ(hb.head(), 4ull);
    EXPECT_EQ(hb.countOf(2), 0ull);
}

TEST(HistoryBuffer, CountersSaturate)
{
    HistoryBuffer hb(8, 0);
    for (int i = 0; i < 100; ++i)
        hb.record(1);
    EXPECT_LE(hb.countOf(1), 8ull);
}

TEST(HistoryBuffer, MoreRegionsThanEntriesReplacesColdest)
{
    HistoryBuffer hb(4, 0);
    // Touch many distinct regions; the buffer can only track 4.
    for (std::uint64_t r = 10; r < 30; ++r)
        hb.record(r);
    // A repeatedly-hot region must still surface at the head.
    for (int i = 0; i < 6; ++i)
        hb.record(42);
    EXPECT_EQ(hb.head(), 42ull);
}

TEST(HistoryBuffer, StorageMatchesPaper)
{
    // 64 entries of 2 x 6 bits = 768 bits = 96 bytes (Table 3).
    HistoryBuffer hb(64, 0);
    EXPECT_EQ(hb.storageBits(), 768ull);
}

TEST(HistoryBuffer, SingleEntryBuffer)
{
    HistoryBuffer hb(1, 3);
    hb.record(3);
    EXPECT_EQ(hb.head(), 3ull);
}

} // namespace
} // namespace amnt::core
