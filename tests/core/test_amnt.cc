#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/amnt.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

mee::MeeConfig
amntConfig()
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20; // 512 counters, 3 node levels
    cfg.amntSubtreeLevel = 2;   // 8 regions x 64 counters
    cfg.amntInterval = 64;
    return cfg;
}

core::AmntStrategy &
amnt(Rig &rig)
{
    return static_cast<core::AmntStrategy &>(rig.engine->strategy());
}

TEST(Amnt, StaleSetConfinedToFastSubtree)
{
    Rig rig(mee::Protocol::Amnt, amntConfig());
    Rng rng(11);
    // Mixed traffic: mostly region 0, some scattered elsewhere.
    for (int i = 0; i < 600; ++i) {
        const std::uint64_t page = rng.chance(0.8)
                                       ? rng.below(64)
                                       : rng.below(512);
        test::writePattern(*rig.engine, page * 4096 + rng.below(4) * 64,
                           i);
    }
    const auto root = amnt(rig).subtreeRoot();
    for (Addr a : rig.engine->staleMetadataBlocks()) {
        ASSERT_EQ(rig.engine->map().classify(a), mem::Region::Tree)
            << "counters/HMACs must never be stale under AMNT";
        const bmt::NodeRef ref = rig.engine->map().nodeOfAddr(a);
        // Stale nodes are confined to the fast subtree plus the
        // subtree root's ancestor path, which is re-anchored by the
        // NV registers and persisted on every movement (section 4.2).
        EXPECT_TRUE(bmt::Geometry::inSubtree(ref, root) ||
                    bmt::Geometry::inSubtree(root, ref))
            << "level " << ref.level << " index " << ref.index;
    }
}

TEST(Amnt, CrashRecoverySucceedsAndVerifies)
{
    Rig rig(mee::Protocol::Amnt, amntConfig());
    Rng rng(13);
    std::unordered_map<Addr, std::uint64_t> last;
    for (int i = 0; i < 500; ++i) {
        const Addr a = (rng.chance(0.7) ? rng.below(64)
                                        : rng.below(512)) *
                           4096 +
                       rng.below(8) * 64;
        test::writePattern(*rig.engine, a, i);
        last[a] = static_cast<std::uint64_t>(i);
    }
    rig.engine->crash();
    const auto report = rig.engine->recover();
    ASSERT_TRUE(report.success);
    for (const auto &kv : last)
        EXPECT_TRUE(
            test::checkPattern(*rig.engine, kv.first, kv.second));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(Amnt, RecoveryWorkBoundedBySubtree)
{
    Rig amnt_rig(mee::Protocol::Amnt, amntConfig());
    mee::MeeConfig leaf_cfg = amntConfig();
    Rig leaf_rig(mee::Protocol::Leaf, leaf_cfg);

    // Touch every region so the whole tree is populated.
    for (std::uint64_t p = 0; p < 512; p += 2) {
        test::writePattern(*amnt_rig.engine, p * 4096, p);
        test::writePattern(*leaf_rig.engine, p * 4096, p);
    }
    amnt_rig.engine->crash();
    leaf_rig.engine->crash();
    const auto ra = amnt_rig.engine->recover();
    const auto rl = leaf_rig.engine->recover();
    ASSERT_TRUE(ra.success);
    ASSERT_TRUE(rl.success);
    EXPECT_LT(ra.blocksRead, rl.blocksRead / 4)
        << "AMNT must recompute only the fast subtree";
    EXPECT_LT(ra.estimatedMs, rl.estimatedMs);
}

TEST(Amnt, SurvivesRepeatedCrashesAndMovements)
{
    Rig rig(mee::Protocol::Amnt, amntConfig());
    Rng rng(17);
    std::uint64_t hot = 0;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 200; ++i) {
            const Addr a =
                (hot * 64 + rng.below(32)) * 4096 + rng.below(4) * 64;
            test::writePattern(*rig.engine, a,
                               std::uint64_t(round) * 1000 + i);
        }
        rig.engine->crash();
        ASSERT_TRUE(rig.engine->recover().success)
            << "round " << round;
        hot = (hot + 3) % 8; // shift the hot region each round
    }
    EXPECT_GT(amnt(rig).movements(), 0ull);
}

TEST(Amnt, InsideWritesCheaperThanOutsideWrites)
{
    Rig rig(mee::Protocol::Amnt, amntConfig());
    std::uint8_t buf[kBlockSize] = {1};
    // Warm up: establish region 0 as the subtree.
    for (int i = 0; i < 128; ++i)
        rig.engine->write((i % 32) * 4096, buf);
    ASSERT_EQ(amnt(rig).currentRegion(), 0ull);

    Cycle inside = 0, outside = 0;
    for (int i = 0; i < 16; ++i)
        inside += rig.engine->write((i % 32) * 4096, buf);
    for (int i = 0; i < 16; ++i)
        outside += rig.engine->write((448 + i % 32) * 4096, buf);
    EXPECT_LT(inside * 2, outside);
}

TEST(Amnt, SubtreeRegisterDetectsTamperedSubtreeCounters)
{
    setQuiet(true);
    Rig rig(mee::Protocol::Amnt, amntConfig());
    for (int i = 0; i < 32; ++i)
        test::writePattern(*rig.engine, (i % 8) * 4096, i);
    rig.engine->crash();
    // Physical attack while powered off: corrupt a counter inside
    // the fast subtree.
    rig.nvm->tamper(rig.engine->map().counterBase() + 3 * kBlockSize,
                    5, 0x40);
    const auto report = rig.engine->recover();
    EXPECT_FALSE(report.success);
    setQuiet(false);
}

TEST(Amnt, MovementRateIsLow)
{
    // Zipf-like concentrated traffic should move the subtree rarely
    // (paper: ~3 movements per 1000 writes in the worst case).
    Rig rig(mee::Protocol::Amnt, amntConfig());
    Rng rng(23);
    const int writes = 5000;
    for (int i = 0; i < writes; ++i) {
        const std::uint64_t page = rng.chance(0.9)
                                       ? rng.below(48)
                                       : rng.below(512);
        test::writePattern(*rig.engine, page * 4096, i);
    }
    EXPECT_LT(amnt(rig).movements(),
              static_cast<std::uint64_t>(writes) * 5 / 1000);
}

} // namespace
} // namespace amnt
