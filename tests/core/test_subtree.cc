#include <gtest/gtest.h>

#include "core/amnt.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

core::AmntStrategy &
amnt(Rig &rig)
{
    return static_cast<core::AmntStrategy &>(rig.engine->strategy());
}

mee::MeeConfig
amntConfig(unsigned level = 2, unsigned interval = 64)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20; // 512 counters = 8^3, 3 node levels
    cfg.amntSubtreeLevel = level; // level 2: 8 regions x 64 counters
    cfg.amntInterval = interval;
    return cfg;
}

TEST(Subtree, MembershipFollowsRegionArithmetic)
{
    Rig rig(mee::Protocol::Amnt, amntConfig());
    auto &e = amnt(rig);
    EXPECT_EQ(e.currentRegion(), 0ull);
    EXPECT_TRUE(e.inFastSubtree(0));
    EXPECT_TRUE(e.inFastSubtree(63));
    EXPECT_FALSE(e.inFastSubtree(64));
}

TEST(Subtree, WritesInsideAreHitsOutsideAreMisses)
{
    Rig rig(mee::Protocol::Amnt, amntConfig(2, 1 << 30));
    for (int i = 0; i < 10; ++i)
        test::writePattern(*rig.engine, i * 4096, i); // region 0
    for (int i = 0; i < 4; ++i)
        test::writePattern(*rig.engine, (200 + i) * 4096, i); // region 1
    EXPECT_EQ(rig.engine->stats().get("subtree_hits"), 10ull);
    EXPECT_EQ(rig.engine->stats().get("subtree_misses"), 4ull);
    EXPECT_NEAR(amnt(rig).subtreeHitRate(), 10.0 / 14.0, 1e-9);
}

TEST(Subtree, BootstrapAdoptsFirstWrittenRegionForFree)
{
    Rig rig(mee::Protocol::Amnt, amntConfig(2, 64));
    auto &e = amnt(rig);
    // The register initializes on first use: no flush, no movement.
    test::writePattern(*rig.engine, 200 * 4096, 1); // region 3
    EXPECT_EQ(e.currentRegion(), 3ull);
    EXPECT_EQ(e.movements(), 0ull);
    EXPECT_EQ(rig.engine->stats().get("subtree_hits"), 1ull);
}

TEST(Subtree, MovesToHotRegionAfterInterval)
{
    Rig rig(mee::Protocol::Amnt, amntConfig(2, 64));
    auto &e = amnt(rig);
    // Bootstrap into region 0, then hammer region 3: after the next
    // full interval the head of the history buffer wins.
    test::writePattern(*rig.engine, 0, 0);
    for (int i = 0; i < 128; ++i)
        test::writePattern(*rig.engine, (192 + i % 16) * 4096, i);
    EXPECT_EQ(e.currentRegion(), 3ull);
    EXPECT_EQ(e.movements(), 1ull);
}

TEST(Subtree, StaysWhenIncumbentIsHottest)
{
    Rig rig(mee::Protocol::Amnt, amntConfig(2, 64));
    auto &e = amnt(rig);
    for (int i = 0; i < 256; ++i)
        test::writePattern(*rig.engine, (i % 32) * 4096, i); // region 0
    EXPECT_EQ(e.currentRegion(), 0ull);
    EXPECT_EQ(e.movements(), 0ull);
}

TEST(Subtree, MovementFlushesOldSubtree)
{
    Rig rig(mee::Protocol::Amnt, amntConfig(2, 64));
    // Dirty up region 0, then shift the workload to region 5.
    for (int i = 0; i < 32; ++i)
        test::writePattern(*rig.engine, (i % 16) * 4096, i);
    for (int i = 0; i < 96; ++i)
        test::writePattern(*rig.engine, (320 + i % 16) * 4096, i);
    ASSERT_EQ(amnt(rig).currentRegion(), 5ull);
    EXPECT_GT(rig.engine->stats().get("movement_flush_writes"), 0ull);

    // Keep writing in the new region so fresh dirty state exists.
    for (int i = 0; i < 16; ++i)
        test::writePattern(*rig.engine, (328 + i % 8) * 4096, 500 + i);

    // After the move, everything stale must be inside region 5's
    // subtree or on its (register-anchored) ancestor path.
    const auto root = amnt(rig).subtreeRoot();
    for (Addr a : rig.engine->staleMetadataBlocks()) {
        ASSERT_EQ(rig.engine->map().classify(a), mem::Region::Tree);
        const bmt::NodeRef ref = rig.engine->map().nodeOfAddr(a);
        EXPECT_TRUE(bmt::Geometry::inSubtree(ref, root) ||
                    bmt::Geometry::inSubtree(root, ref));
    }
}

TEST(Subtree, RegisterTracksSubtreeRootNode)
{
    Rig rig(mee::Protocol::Amnt, amntConfig(2, 1 << 30));
    test::writePattern(*rig.engine, 0x1000, 1);
    const auto root = amnt(rig).subtreeRoot();
    EXPECT_EQ(root.level, 2u);
    EXPECT_EQ(root.index, 0ull);
}

TEST(Subtree, LevelValidation)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.amntSubtreeLevel = 3; // valid for 4 node levels
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    EXPECT_NO_THROW(core::makeEngine(mee::Protocol::Amnt, cfg, nvm));
}

} // namespace
} // namespace amnt
