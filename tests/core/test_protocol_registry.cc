/**
 * Registry sync regression: the protocol table, the Protocol enum,
 * the CLI names, and the derived enrollment lists must stay in
 * lockstep. A protocol added to the enum but not the table (or vice
 * versa) fails here before it can silently skip the test matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/protocol_registry.hh"

namespace amnt
{
namespace
{

TEST(ProtocolRegistry, CoversTheWholeEnumInOrder)
{
    const auto &table = core::protocolRegistry();
    ASSERT_EQ(table.size(), mee::kProtocolCount);
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(table[i].id), i);
        EXPECT_STREQ(table[i].name, mee::protocolName(table[i].id));
        EXPECT_NE(table[i].make, nullptr);
        EXPECT_STRNE(table[i].summary, "");
    }
}

TEST(ProtocolRegistry, NameLookupRoundTrips)
{
    for (mee::Protocol p : core::allProtocols()) {
        const auto found = core::findProtocol(mee::protocolName(p));
        ASSERT_TRUE(found.has_value()) << mee::protocolName(p);
        EXPECT_EQ(*found, p);
        EXPECT_EQ(core::protocolByName(mee::protocolName(p)), p);
    }
    EXPECT_FALSE(core::findProtocol("no-such-protocol").has_value());
    EXPECT_EXIT(core::protocolByName("no-such-protocol"),
                ::testing::ExitedWithCode(1), "phoenix");
}

TEST(ProtocolRegistry, NameListMentionsEveryProtocol)
{
    const std::string list = core::protocolNameList();
    for (mee::Protocol p : core::allProtocols())
        EXPECT_NE(list.find(mee::protocolName(p)), std::string::npos)
            << mee::protocolName(p);
}

TEST(ProtocolRegistry, FigureColumnsMatchThePaper)
{
    // Figures 4/5 pin the paper's column order; Phoenix and STIT are
    // fig04 extras appended after it, never interleaved.
    const auto figure = core::figureProtocols();
    const std::vector<mee::Protocol> want = {
        mee::Protocol::Leaf, mee::Protocol::Strict,
        mee::Protocol::Anubis, mee::Protocol::Bmf,
        mee::Protocol::Amnt};
    EXPECT_EQ(figure, want);
    const auto extra = core::fig04ExtraProtocols();
    const std::vector<mee::Protocol> want_extra = {
        mee::Protocol::Phoenix, mee::Protocol::Stit};
    EXPECT_EQ(extra, want_extra);
}

TEST(ProtocolRegistry, EnrollmentListsFollowCrashProfiles)
{
    const auto persistent = core::persistentProtocols();
    const auto at_rest = core::tamperAtRestProtocols();
    for (mee::Protocol p : core::allProtocols()) {
        const mee::CrashProfile profile = core::crashProfileOf(p);
        const bool in_persistent =
            std::find(persistent.begin(), persistent.end(), p) !=
            persistent.end();
        const bool in_at_rest =
            std::find(at_rest.begin(), at_rest.end(), p) !=
            at_rest.end();
        EXPECT_EQ(in_persistent, profile.persistent)
            << mee::protocolName(p);
        EXPECT_EQ(in_at_rest, profile.tamperAtRestDetects)
            << mee::protocolName(p);
        EXPECT_STRNE(profile.boundaries, "")
            << mee::protocolName(p);
    }
    // The new baselines are full citizens of both matrices.
    EXPECT_NE(std::find(persistent.begin(), persistent.end(),
                        mee::Protocol::Phoenix),
              persistent.end());
    EXPECT_NE(std::find(persistent.begin(), persistent.end(),
                        mee::Protocol::Stit),
              persistent.end());
    EXPECT_NE(std::find(at_rest.begin(), at_rest.end(),
                        mee::Protocol::Phoenix),
              at_rest.end());
    EXPECT_NE(std::find(at_rest.begin(), at_rest.end(),
                        mee::Protocol::Stit),
              at_rest.end());
    // The volatile baseline cannot promise post-crash anything.
    EXPECT_EQ(std::find(persistent.begin(), persistent.end(),
                        mee::Protocol::Volatile),
              persistent.end());
}

TEST(ProtocolRegistry, KnobsNameRealConfigFields)
{
    // Spot-check the knob strings the --help text prints.
    EXPECT_NE(std::string(
                  core::protocolInfo(mee::Protocol::Phoenix).knobs)
                  .find("phoenixEpoch"),
              std::string::npos);
    EXPECT_NE(std::string(
                  core::protocolInfo(mee::Protocol::Stit).knobs)
                  .find("stitQueueDepth"),
              std::string::npos);
    EXPECT_NE(std::string(
                  core::protocolInfo(mee::Protocol::Amnt).knobs)
                  .find("amntSubtreeLevel"),
              std::string::npos);
}

} // namespace
} // namespace amnt
