#include <gtest/gtest.h>

#include "core/hw_overhead.hh"

namespace amnt::core
{
namespace
{

TEST(HwOverhead, AmntMatchesPaperTable3)
{
    const mee::MeeConfig cfg;
    const HwOverhead hw = hwOverheadOf(mee::Protocol::Amnt, cfg);
    EXPECT_EQ(hw.nvOnChip, 64ull);
    EXPECT_EQ(hw.volatileOnChip, 96ull);
    EXPECT_EQ(hw.inMemory, 0ull);
}

TEST(HwOverhead, AnubisMatchesPaperTable3)
{
    const mee::MeeConfig cfg;
    const HwOverhead hw = hwOverheadOf(mee::Protocol::Anubis, cfg);
    EXPECT_EQ(hw.nvOnChip, 64ull);
    EXPECT_EQ(hw.volatileOnChip, 37ull * 1024);
    EXPECT_EQ(hw.inMemory, 37ull * 1024);
}

TEST(HwOverhead, BmfMatchesPaperTable3)
{
    const mee::MeeConfig cfg;
    const HwOverhead hw = hwOverheadOf(mee::Protocol::Bmf, cfg);
    EXPECT_EQ(hw.nvOnChip, 4ull * 1024);
    EXPECT_EQ(hw.volatileOnChip, 768ull);
    EXPECT_EQ(hw.inMemory, 0ull);
}

TEST(HwOverhead, BaselinesNeedNothingExtra)
{
    const mee::MeeConfig cfg;
    for (auto p : {mee::Protocol::Volatile, mee::Protocol::Strict,
                   mee::Protocol::Leaf, mee::Protocol::Osiris}) {
        const HwOverhead hw = hwOverheadOf(p, cfg);
        EXPECT_EQ(hw.nvOnChip, 0ull);
        EXPECT_EQ(hw.volatileOnChip, 0ull);
        EXPECT_EQ(hw.inMemory, 0ull);
    }
}

TEST(HwOverhead, AmntIsIndependentOfCacheSize)
{
    mee::MeeConfig small;
    small.metaCache.sizeBytes = 16 * 1024;
    mee::MeeConfig big;
    big.metaCache.sizeBytes = 1024 * 1024;
    EXPECT_EQ(hwOverheadOf(mee::Protocol::Amnt, small).volatileOnChip,
              hwOverheadOf(mee::Protocol::Amnt, big).volatileOnChip);
    // ...while Anubis and BMF scale with it.
    EXPECT_LT(
        hwOverheadOf(mee::Protocol::Anubis, small).volatileOnChip,
        hwOverheadOf(mee::Protocol::Anubis, big).volatileOnChip);
    EXPECT_LT(hwOverheadOf(mee::Protocol::Bmf, small).volatileOnChip,
              hwOverheadOf(mee::Protocol::Bmf, big).volatileOnChip);
}

} // namespace
} // namespace amnt::core
