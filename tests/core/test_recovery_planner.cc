#include <gtest/gtest.h>

#include "core/recovery_planner.hh"

namespace amnt::core
{
namespace
{

constexpr std::uint64_t kTb = 1ull << 40;

TEST(RecoveryModel, LeafScalesLinearlyWithMemory)
{
    RecoveryModel m;
    const double at2 = m.leafMs(2 * kTb);
    EXPECT_NEAR(m.leafMs(16 * kTb) / at2, 8.0, 1e-9);
    EXPECT_NEAR(m.leafMs(128 * kTb) / at2, 64.0, 1e-9);
}

TEST(RecoveryModel, LeafMatchesPaperTable4)
{
    // Paper Table 4: leaf at 2 TB = 6222.21 ms. Our byte-count model
    // (C * 15/7 reads at 12 GB/s) lands within 2%.
    RecoveryModel m;
    EXPECT_NEAR(m.leafMs(2 * kTb), 6222.21, 6222.21 * 0.02);
}

TEST(RecoveryModel, AmntIsLeafScaledByLevel)
{
    RecoveryModel m;
    const double leaf = m.leafMs(2 * kTb);
    EXPECT_NEAR(m.amntMs(2 * kTb, 2), leaf / 8, 1e-9);
    EXPECT_NEAR(m.amntMs(2 * kTb, 3), leaf / 64, 1e-9);
    EXPECT_NEAR(m.amntMs(2 * kTb, 4), leaf / 512, 1e-9);
}

TEST(RecoveryModel, AmntMatchesPaperTable4)
{
    RecoveryModel m;
    EXPECT_NEAR(m.amntMs(2 * kTb, 3), 97.22, 97.22 * 0.03);
    EXPECT_NEAR(m.amntMs(16 * kTb, 4), 97.22, 97.22 * 0.03);
}

TEST(RecoveryModel, StrictAndBmfAreZero)
{
    RecoveryModel m;
    EXPECT_DOUBLE_EQ(m.strictMs(128 * kTb), 0.0);
    EXPECT_DOUBLE_EQ(m.bmfMs(128 * kTb), 0.0);
}

TEST(RecoveryModel, AnubisFixedRegardlessOfMemory)
{
    RecoveryModel m;
    EXPECT_NEAR(m.anubisMs(), 1.3, 0.1); // paper: 1.30 ms
}

TEST(RecoveryModel, OsirisIsWorstNonTrivial)
{
    RecoveryModel m;
    EXPECT_GT(m.osirisMs(2 * kTb), m.leafMs(2 * kTb) * 8);
    EXPECT_LT(m.osirisMs(2 * kTb), m.leafMs(2 * kTb) * 9);
}

TEST(RecoveryModel, StaleFractions)
{
    EXPECT_DOUBLE_EQ(RecoveryModel::amntStaleFraction(2), 0.125);
    EXPECT_DOUBLE_EQ(RecoveryModel::amntStaleFraction(3), 0.015625);
    EXPECT_NEAR(RecoveryModel::amntStaleFraction(4), 0.00195, 1e-4);
}

TEST(RecoveryPlanner, PicksDeepestCoverageMeetingBudget)
{
    RecoveryModel m;
    // 2 TB, 100 ms budget: level 2 (~778 ms) misses, level 3
    // (~97 ms) fits.
    EXPECT_EQ(m.levelForBudget(2 * kTb, 100.0, 7), 3u);
    // A 1 s budget already fits level 2.
    EXPECT_EQ(m.levelForBudget(2 * kTb, 1000.0, 7), 2u);
    // An impossible budget returns 0.
    EXPECT_EQ(m.levelForBudget(128 * kTb, 1e-6, 7), 0u);
}

TEST(RecoveryPlanner, BudgetMonotoneInLevel)
{
    RecoveryModel m;
    for (unsigned level = 2; level < 7; ++level)
        EXPECT_GT(m.amntMs(2 * kTb, level),
                  m.amntMs(2 * kTb, level + 1));
}

} // namespace
} // namespace amnt::core
