#include <gtest/gtest.h>

#include <cstring>

#include "common/log.hh"
#include "core/hybrid.hh"
#include "mee/mee_test_util.hh"

namespace amnt::core
{
namespace
{

HybridConfig
smallHybrid()
{
    HybridConfig cfg;
    cfg.scmBytes = 4ull << 20;
    cfg.dramBytes = 4ull << 20;
    cfg.mee = test::smallConfig();
    return cfg;
}

TEST(Hybrid, PartitionDispatch)
{
    HybridEngine h(smallHybrid());
    EXPECT_TRUE(h.isScm(0));
    EXPECT_TRUE(h.isScm((4ull << 20) - 1));
    EXPECT_FALSE(h.isScm(4ull << 20));
}

TEST(Hybrid, BothPartitionsRoundTrip)
{
    HybridEngine h(smallHybrid());
    std::uint8_t scm_data[kBlockSize], dram_data[kBlockSize];
    test::fillBlock(scm_data, 1);
    test::fillBlock(dram_data, 2);
    h.write(0x1000, scm_data);
    h.write((4ull << 20) + 0x1000, dram_data);

    std::uint8_t out[kBlockSize];
    h.read(0x1000, out);
    EXPECT_EQ(std::memcmp(out, scm_data, kBlockSize), 0);
    h.read((4ull << 20) + 0x1000, out);
    EXPECT_EQ(std::memcmp(out, dram_data, kBlockSize), 0);
    EXPECT_EQ(h.violations(), 0ull);
}

TEST(Hybrid, DramIsCheaperThanScm)
{
    HybridEngine h(smallHybrid());
    std::uint8_t buf[kBlockSize] = {1};
    Cycle scm = 0, dram = 0;
    for (std::uint64_t i = 0; i < 32; ++i) {
        scm += h.write(i * kPageSize, buf);
        dram += h.write((4ull << 20) + i * kPageSize, buf);
    }
    EXPECT_LT(dram, scm);
}

TEST(Hybrid, CrashLosesDramKeepsScm)
{
    HybridEngine h(smallHybrid());
    std::uint8_t buf[kBlockSize];
    for (std::uint64_t i = 0; i < 64; ++i) {
        test::fillBlock(buf, i);
        h.write(i * kPageSize, buf);
        test::fillBlock(buf, 1000 + i);
        h.write((4ull << 20) + i * kPageSize, buf);
    }

    h.crash();
    const mee::RecoveryReport report = h.recover();
    ASSERT_TRUE(report.success);

    // SCM contents recovered and verified.
    std::uint8_t out[kBlockSize], want[kBlockSize];
    for (std::uint64_t i = 0; i < 64; ++i) {
        h.read(i * kPageSize, out);
        test::fillBlock(want, i);
        EXPECT_EQ(std::memcmp(out, want, kBlockSize), 0) << i;
    }
    EXPECT_EQ(h.violations(), 0ull);

    // DRAM restarts empty, like any boot.
    h.read((4ull << 20) + 0x0, out);
    for (std::size_t i = 0; i < kBlockSize; ++i)
        EXPECT_EQ(out[i], 0);
}

TEST(Hybrid, ScmTamperStillDetected)
{
    setQuiet(true);
    HybridEngine h(smallHybrid());
    std::uint8_t buf[kBlockSize] = {5};
    h.write(0x2000, buf);
    h.scmDevice().tamper(0x2000, 3, 0x04);
    h.read(0x2000);
    EXPECT_GT(h.violations(), 0ull);
    setQuiet(false);
}

TEST(Hybrid, ScmRecoveryBoundedBySubtree)
{
    HybridConfig cfg = smallHybrid();
    cfg.mee.amntSubtreeLevel = 3;
    HybridEngine h(cfg);
    std::uint8_t buf[kBlockSize] = {7};
    for (std::uint64_t i = 0; i < 512; i += 2)
        h.write(i * kPageSize, buf);
    h.crash();
    const auto report = h.recover();
    ASSERT_TRUE(report.success);
    // Only the fast subtree's share was recomputed.
    EXPECT_LT(report.countersRecovered, 200ull);
}

} // namespace
} // namespace amnt::core
