/**
 * Parameterized sweep of the AMNT subtree level (the BIOS knob):
 * every level must preserve crash consistency, confine staleness, and
 * trade recovery work monotonically — the mechanism behind Figures
 * 6/7 and Table 4.
 */

#include <gtest/gtest.h>

#include "core/amnt.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

class AmntLevelSweep : public ::testing::TestWithParam<unsigned>
{
  protected:
    static mee::MeeConfig
    config(unsigned level)
    {
        mee::MeeConfig cfg = test::smallConfig();
        cfg.dataBytes = 2ull << 20; // 512 counters, 3 node levels
        cfg.amntSubtreeLevel = level;
        cfg.amntInterval = 32;
        return cfg;
    }
};

TEST_P(AmntLevelSweep, CrashRecoveryHoldsAtEveryLevel)
{
    Rig rig(mee::Protocol::Amnt, config(GetParam()));
    Rng rng(GetParam() * 101);
    std::unordered_map<Addr, std::uint64_t> last;
    for (int i = 0; i < 400; ++i) {
        const Addr a = (rng.chance(0.8) ? rng.below(32)
                                        : rng.below(512)) *
                           kPageSize +
                       rng.below(8) * kBlockSize;
        test::writePattern(*rig.engine, a, i);
        last[a] = static_cast<std::uint64_t>(i);
    }
    rig.engine->crash();
    ASSERT_TRUE(rig.engine->recover().success);
    for (const auto &kv : last)
        EXPECT_TRUE(
            test::checkPattern(*rig.engine, kv.first, kv.second));
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST_P(AmntLevelSweep, StalenessConfinedAtEveryLevel)
{
    Rig rig(mee::Protocol::Amnt, config(GetParam()));
    auto &e = static_cast<core::AmntStrategy &>(rig.engine->strategy());
    Rng rng(GetParam() * 313);
    for (int i = 0; i < 300; ++i)
        test::writePattern(
            *rig.engine,
            (rng.chance(0.8) ? rng.below(16) : rng.below(512)) *
                kPageSize,
            i);
    const auto root = e.subtreeRoot();
    for (Addr a : rig.engine->staleMetadataBlocks()) {
        ASSERT_EQ(rig.engine->map().classify(a), mem::Region::Tree);
        const bmt::NodeRef ref = rig.engine->map().nodeOfAddr(a);
        EXPECT_TRUE(bmt::Geometry::inSubtree(ref, root) ||
                    bmt::Geometry::inSubtree(root, ref))
            << "level " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, AmntLevelSweep,
                         ::testing::Values(2u, 3u),
                         [](const auto &info) {
                             return "L" + std::to_string(info.param);
                         });

TEST(AmntLevels, RecoveryWorkShrinksWithDeeperLevels)
{
    std::uint64_t prev_reads = ~0ull;
    for (unsigned level = 2; level <= 3; ++level) {
        mee::MeeConfig cfg = test::smallConfig();
        cfg.dataBytes = 2ull << 20;
        cfg.amntSubtreeLevel = level;
        cfg.amntInterval = 1 << 30; // pin the subtree at region 0
        Rig rig(mee::Protocol::Amnt, cfg);
        // Touch every page so every region is populated.
        for (std::uint64_t p = 0; p < 512; ++p)
            test::writePattern(*rig.engine, p * kPageSize, p);
        rig.engine->crash();
        const auto report = rig.engine->recover();
        ASSERT_TRUE(report.success);
        EXPECT_LT(report.blocksRead, prev_reads)
            << "deeper level must recover less";
        prev_reads = report.blocksRead;
    }
}

} // namespace
} // namespace amnt
