/**
 * Storage-application scenario (the paper's motivating workload):
 * a block-granular persistent log + index on AMNT-protected SCM,
 * exercised through repeated crash/recover cycles with flush-style
 * persistence — the "instantaneous recovery" story of section 1.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "mee/mee_test_util.hh"

namespace amnt
{
namespace
{

using test::Rig;

/**
 * An append-only record log: block 0 holds the persisted record
 * count; records live one per block after it. Every append persists
 * the record then the count — the classic two-step commit whose
 * correctness depends on ordered persistence.
 */
class RecordLog
{
  public:
    explicit RecordLog(mee::MemoryEngine &engine) : engine_(&engine) {}

    std::uint64_t
    count()
    {
        std::uint8_t header[kBlockSize];
        engine_->read(0, header);
        return load64le(header);
    }

    void
    append(std::uint64_t payload_seed)
    {
        const std::uint64_t n = count();
        std::uint8_t record[kBlockSize];
        test::fillBlock(record, payload_seed);
        engine_->write((n + 1) * kBlockSize, record);
        std::uint8_t header[kBlockSize] = {};
        store64le(header, n + 1);
        engine_->write(0, header);
    }

    bool
    verify(std::uint64_t index, std::uint64_t payload_seed)
    {
        return test::checkPattern(*engine_,
                                  (index + 1) * kBlockSize,
                                  payload_seed);
    }

  private:
    mee::MemoryEngine *engine_;
};

TEST(KvScenario, LogSurvivesRepeatedCrashes)
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    Rig rig(mee::Protocol::Amnt, cfg);
    RecordLog log(*rig.engine);

    std::vector<std::uint64_t> seeds;
    Rng rng(808);
    for (int round = 0; round < 5; ++round) {
        const int appends = 20 + static_cast<int>(rng.below(30));
        for (int i = 0; i < appends; ++i) {
            const std::uint64_t seed = rng.next();
            log.append(seed);
            seeds.push_back(seed);
        }
        rig.engine->crash();
        ASSERT_TRUE(rig.engine->recover().success)
            << "round " << round;

        // Every committed record is present and verifies.
        ASSERT_EQ(log.count(), seeds.size());
        for (std::size_t i = 0; i < seeds.size(); ++i)
            EXPECT_TRUE(log.verify(i, seeds[i])) << "record " << i;
    }
    EXPECT_EQ(rig.engine->violations(), 0ull);
}

TEST(KvScenario, TornHeaderNeverClaimsUnwrittenRecords)
{
    // A crash between record persist and header persist must leave
    // the old count (record invisible) — never a count covering a
    // missing record. Both orders are persisted immediately by the
    // engine, so the only legal post-crash states are n and n+1 with
    // the record present.
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    Rig rig(mee::Protocol::Amnt, cfg);
    RecordLog log(*rig.engine);

    log.append(1);
    log.append(2);
    rig.engine->crash();
    ASSERT_TRUE(rig.engine->recover().success);
    const std::uint64_t n = log.count();
    ASSERT_EQ(n, 2ull);
    EXPECT_TRUE(log.verify(0, 1));
    EXPECT_TRUE(log.verify(1, 2));
}

} // namespace
} // namespace amnt
