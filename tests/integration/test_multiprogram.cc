/**
 * Multiprogram integration: two processes with private hierarchies
 * and a shared LLC/MEE, physical interleaving through the OS, and
 * the AMNT++ consolidation effect.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/amntpp_allocator.hh"
#include "sim/system.hh"

namespace amnt::sim
{
namespace
{

WorkloadConfig
proc(std::uint64_t seed)
{
    WorkloadConfig w;
    w.footprintPages = 4096;
    w.memIntensity = 0.2;
    w.writeFraction = 0.3;
    w.hotPagesFraction = 0.1;
    w.churnEvery = 400;
    w.seed = seed;
    return w;
}

SystemConfig
mpConfig(mee::Protocol p, bool amntpp)
{
    SystemConfig cfg = SystemConfig::multiProgram(p);
    cfg.mee.dataBytes = 256ull << 20;
    cfg.mee.metaCache = {"mcache", 32 * 1024, 8, 2};
    cfg.mee.amntSubtreeLevel = 3;
    cfg.amntpp = amntpp;
    cfg.daemonEvery = 20000;
    return cfg;
}

TEST(Multiprogram, ProcessesLiveInDisjointFrames)
{
    SystemConfig cfg = mpConfig(mee::Protocol::Volatile, false);
    cfg.recordAccessHistogram = true;
    System sys(cfg);
    sys.addProcess(proc(1));
    sys.addProcess(proc(2));
    sys.run(20000);
    // The histogram spans both processes' frames; total mapped pages
    // must equal the sum of their footprint faults (no sharing).
    EXPECT_FALSE(sys.accessHistogram().empty());
}

TEST(Multiprogram, AgedPhysicalPlacementInterleaves)
{
    // Figure 3b's phenomenon: two processes' pages interleave in
    // physical memory on an aged system. Use short aged runs (a
    // heavily fragmented machine) so placement visibly crosses
    // subtree regions even at this small test scale.
    SystemConfig cfg = mpConfig(mee::Protocol::Volatile, false);
    cfg.agedRunPages = 512;
    cfg.recordAccessHistogram = true;
    System sys(cfg);
    sys.addProcess(proc(5));
    sys.addProcess(proc(6));
    sys.run(20000);

    const std::uint64_t frames_per_region =
        sys.engine().map().geometry().countersPerNode(3);
    std::set<std::uint64_t> regions;
    for (const auto &kv : sys.accessHistogram())
        regions.insert(kv.first / frames_per_region);
    EXPECT_GT(regions.size(), 1ull)
        << "aged allocation should scatter across subtree regions";
}

TEST(Multiprogram, AmntPpConsolidatesPlacement)
{
    auto spread = [](bool amntpp) {
        SystemConfig cfg = mpConfig(mee::Protocol::Amnt, amntpp);
        cfg.recordAccessHistogram = true;
        System sys(cfg);
        sys.addProcess(proc(7));
        sys.addProcess(proc(8));
        sys.run(40000);
        const std::uint64_t frames_per_region =
            sys.engine().map().geometry().countersPerNode(3);
        // Weighted: where do the accesses actually land?
        std::unordered_map<std::uint64_t, std::uint64_t> per_region;
        std::uint64_t total = 0;
        for (const auto &kv : sys.accessHistogram()) {
            per_region[kv.first / frames_per_region] += kv.second;
            total += kv.second;
        }
        std::uint64_t top = 0;
        for (const auto &kv : per_region)
            top = std::max(top, kv.second);
        return static_cast<double>(top) / static_cast<double>(total);
    };
    const double plain = spread(false);
    const double biased = spread(true);
    EXPECT_GE(biased, plain * 0.95)
        << "AMNT++ must not reduce placement concentration";
}

TEST(Multiprogram, SharedMeeServesBothCores)
{
    System sys(mpConfig(mee::Protocol::Leaf, false));
    sys.addProcess(proc(9));
    sys.addProcess(proc(10));
    const RunResult r = sys.run(20000);
    EXPECT_GT(r.memReads, 0ull);
    EXPECT_GT(sys.engine().stats().get("data_reads"), 0ull);
    EXPECT_EQ(sys.engine().violations(), 0ull);
}

TEST(Multiprogram, OsCostIsSmall)
{
    // Table 2's shape: the modified OS (AMNT++) adds only a couple
    // of percent of instructions over the unmodified allocator.
    auto os_cost = [](bool amntpp) {
        SystemConfig cfg = mpConfig(mee::Protocol::Amnt, amntpp);
        System sys(cfg);
        sys.addProcess(proc(11));
        sys.addProcess(proc(12));
        return sys.run(50000);
    };
    const RunResult plain = os_cost(false);
    const RunResult modified = os_cost(true);
    EXPECT_GT(modified.osInstructions, plain.osInstructions);
    const double delta =
        static_cast<double>(modified.osInstructions) -
        static_cast<double>(plain.osInstructions);
    EXPECT_LT(delta, 0.10 * static_cast<double>(
                                modified.appInstructions));
}

} // namespace
} // namespace amnt::sim
