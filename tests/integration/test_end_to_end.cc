/**
 * End-to-end integration: full systems (cores + caches + OS + MEE +
 * NVM) running synthetic benchmarks, including crash/recovery of the
 * whole machine and protocol-relative performance shape checks.
 */

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/system.hh"

namespace amnt::sim
{
namespace
{

SystemConfig
smallSystem(mee::Protocol p)
{
    SystemConfig cfg = SystemConfig::singleProgram(p);
    cfg.mee.dataBytes = 256ull << 20; // 256 MB
    cfg.mee.metaCache = {"mcache", 32 * 1024, 8, 2};
    cfg.privateLevels = {
        {"l1d", 32 * 1024, 8, 2},
        {"l2", 128 * 1024, 8, 12},
    };
    return cfg;
}

WorkloadConfig
mediumWorkload()
{
    WorkloadConfig w;
    w.name = "medium";
    w.footprintPages = 4096;
    w.memIntensity = 0.25;
    w.writeFraction = 0.35;
    w.hotPagesFraction = 0.08;
    w.seed = 3;
    return w;
}

TEST(EndToEnd, AmntBeatsStrictAndApproachesLeaf)
{
    Cycle leaf = 0, strict = 0, amnt = 0;
    for (auto [p, out] :
         {std::pair{mee::Protocol::Leaf, &leaf},
          std::pair{mee::Protocol::Strict, &strict},
          std::pair{mee::Protocol::Amnt, &amnt}}) {
        System sys(smallSystem(p));
        sys.addProcess(mediumWorkload());
        *out = sys.run(50000).cycles;
    }
    EXPECT_LT(amnt, strict);
    // AMNT should be far closer to leaf than to strict.
    const auto gap_to_leaf = static_cast<std::int64_t>(amnt) -
                             static_cast<std::int64_t>(leaf);
    const auto gap_to_strict = static_cast<std::int64_t>(strict) -
                               static_cast<std::int64_t>(amnt);
    EXPECT_LT(gap_to_leaf, gap_to_strict / 2);
}

TEST(EndToEnd, WholeMachineCrashRecovery)
{
    System sys(smallSystem(mee::Protocol::Amnt));
    sys.addProcess(mediumWorkload());
    sys.run(40000);

    // Power failure: on-chip caches and the MEE's volatile state go.
    sys.engine().crash();
    const auto report = sys.engine().recover();
    EXPECT_TRUE(report.success);
    EXPECT_EQ(sys.engine().violations(), 0ull);
}

TEST(EndToEnd, SubtreeTracksTheHotRegion)
{
    SystemConfig cfg = smallSystem(mee::Protocol::Amnt);
    System sys(cfg);
    WorkloadConfig w = mediumWorkload();
    w.writeHotFraction = 0.95;
    w.hotPagesFraction = 0.02; // tight hot set
    sys.addProcess(w);
    const RunResult r = sys.run(60000);
    EXPECT_GT(r.subtreeHitRate, 0.5);
}

TEST(EndToEnd, AmntPpImprovesSubtreeHitRateUnderMultiprogramming)
{
    auto run = [](bool amntpp) {
        SystemConfig cfg =
            SystemConfig::multiProgram(mee::Protocol::Amnt);
        cfg.mee.dataBytes = 256ull << 20;
        cfg.mee.metaCache = {"mcache", 32 * 1024, 8, 2};
        cfg.amntpp = amntpp;
        cfg.daemonEvery = 20000;
        System sys(cfg);
        WorkloadConfig a = mediumWorkload();
        a.seed = 11;
        a.churnEvery = 500;
        WorkloadConfig b = mediumWorkload();
        b.seed = 22;
        b.churnEvery = 500;
        sys.addProcess(a);
        sys.addProcess(b);
        return sys.run(60000);
    };
    const RunResult plain = run(false);
    const RunResult biased = run(true);
    EXPECT_GE(biased.subtreeHitRate, plain.subtreeHitRate);
}

TEST(EndToEnd, ParsecPresetRunsCleanly)
{
    SystemConfig cfg = smallSystem(mee::Protocol::Amnt);
    System sys(cfg);
    WorkloadConfig w = parsecPreset("bodytrack");
    w.footprintPages = 8192; // scale into the 256 MB test device
    sys.addProcess(w);
    const RunResult r = sys.run(50000);
    EXPECT_GT(r.dataAccesses, 0ull);
    EXPECT_EQ(sys.engine().violations(), 0ull);
}

} // namespace
} // namespace amnt::sim
