/**
 * Golden regression pins for the paper harnesses.
 *
 * Seeded, scaled-down fig04 and table4 configurations run through the
 * same bench_util plumbing the real harnesses use, and their canonical
 * JSON serialization is compared byte-for-byte against checked-in
 * results/golden_*.json. The pins prove that infrastructure changes —
 * in particular the fault-injection hooks threaded through the persist
 * paths — change no simulated numbers while disarmed.
 *
 * Every value here is pinned explicitly (instruction counts, footprint
 * scaling, seeds); the AMNT_BENCH_* environment knobs are deliberately
 * not consulted, so the goldens hold under any environment.
 *
 * Regenerate after an intentional model change with:
 *   AMNT_GOLDEN_REGEN=1 ./build/tests/test_integration \
 *       --gtest_filter='GoldenFigures.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/amnt.hh"
#include "core/hw_overhead.hh"
#include "core/recovery_planner.hh"

namespace amnt
{
namespace
{

std::string
goldenPath(const char *name)
{
    return std::string(AMNT_SOURCE_ROOT) + "/results/" + name;
}

/** Compare @p text with the golden file, or rewrite it under regen. */
void
checkGolden(const char *name, const std::string &text)
{
    const std::string path = goldenPath(name);
    if (std::getenv("AMNT_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << text;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with AMNT_GOLDEN_REGEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), text)
        << "simulated numbers drifted from " << path
        << " (intentional model changes must regenerate the golden "
           "with AMNT_GOLDEN_REGEN=1)";
}

/** One canonical line per swept configuration. */
std::string
outcomeRow(const std::string &label, const sweep::Job &job,
           const sweep::Outcome &o)
{
    const sim::RunResult &r = o.result;
    bench::JsonRow row;
    row.field("label", label)
        .field("protocol",
               std::string(mee::protocolName(job.config.protocol)))
        .field("amntpp", job.config.amntpp)
        .field("cycles", r.cycles)
        .field("app_instructions", r.appInstructions)
        .field("os_instructions", r.osInstructions)
        .field("data_accesses", r.dataAccesses)
        .field("mem_reads", r.memReads)
        .field("mem_writes", r.memWrites)
        .field("mcache_hit_rate", r.mcacheHitRate)
        .field("subtree_hit_rate", r.subtreeHitRate)
        .field("subtree_movements", r.subtreeMovements)
        .field("page_faults", r.pageFaults);
    return row.str();
}

TEST(GoldenFigures, Fig04PinnedConfigsMatchGolden)
{
    // Pinned miniature of the fig04 matrix: two benchmarks (one
    // metadata-cache-hostile, one write-heavy), the volatile baseline,
    // the five figure protocols, and amnt++.
    const std::uint64_t instr = 48000;
    const std::uint64_t warmup = 16000;
    const std::vector<std::string> benchmarks = {"canneal",
                                                 "fluidanimate"};

    std::vector<std::string> labels;
    std::vector<sweep::Job> jobs;
    for (const std::string &name : benchmarks) {
        sim::WorkloadConfig w = sim::parsecPreset(name);
        w.footprintPages =
            std::max<std::uint64_t>(256, w.footprintPages / 16);
        auto push = [&](sim::SystemConfig cfg, const char *suffix) {
            labels.push_back(name + "/" + suffix);
            jobs.push_back(bench::makeJob(cfg, {w}, instr, warmup));
        };
        push(bench::paperSystem(mee::Protocol::Volatile, 1), "volatile");
        for (mee::Protocol p : bench::figureProtocols())
            push(bench::paperSystem(p, 1), mee::protocolName(p));
        sim::SystemConfig pp =
            bench::paperSystem(mee::Protocol::Amnt, 1);
        pp.amntpp = true;
        push(pp, "amnt++");
        // Post-paper baselines ride after the paper's columns so the
        // original pinned rows stay byte-identical.
        for (mee::Protocol p : core::fig04ExtraProtocols())
            push(bench::paperSystem(p, 1), mee::protocolName(p));
    }

    const std::vector<sweep::Outcome> outcomes =
        bench::sweepConfigs(jobs);
    std::string text;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        text += outcomeRow(labels[i], jobs[i], outcomes[i]) + "\n";
    checkGolden("golden_fig04.json", text);
}

TEST(GoldenFigures, Fig05PinnedConfigsMatchGolden)
{
    // Pinned miniature of the fig05 matrix: the paper's headline
    // multiprogram pair (bodytrack+fluidanimate, the one whose
    // interference AMNT++ is built to counteract) on the two-core
    // shared-LLC system, volatile baseline + figure protocols +
    // amnt++. Footprints are scaled down less aggressively than the
    // fig04 pin (/4): the combined hot sets must still overflow the
    // private caches and contend for one subtree region, otherwise
    // the ROI never reaches the secure memory controller and every
    // protocol pins identical cycles.
    const std::uint64_t instr = 48000;
    const std::uint64_t warmup = 16000;

    std::vector<sim::WorkloadConfig> procs;
    for (const char *name : {"bodytrack", "fluidanimate"}) {
        sim::WorkloadConfig w = sim::parsecPreset(name);
        w.footprintPages =
            std::max<std::uint64_t>(256, w.footprintPages / 4);
        // The full-scale fig05 run reaches the secure write path via
        // LLC pressure; the miniature ROI is too short for that, so
        // pin persistence-model flushes to keep every protocol's
        // write machinery inside the golden.
        w.flushWriteFraction = 0.05;
        procs.push_back(w);
    }

    std::vector<std::string> labels;
    std::vector<sweep::Job> jobs;
    auto push = [&](sim::SystemConfig cfg, const char *suffix) {
        labels.push_back(std::string("bodytrack+fluidanimate/") +
                         suffix);
        jobs.push_back(bench::makeJob(cfg, procs, instr, warmup));
    };
    push(bench::paperSystem(mee::Protocol::Volatile, 2), "volatile");
    for (mee::Protocol p : bench::figureProtocols())
        push(bench::paperSystem(p, 2), mee::protocolName(p));
    sim::SystemConfig pp = bench::paperSystem(mee::Protocol::Amnt, 2);
    pp.amntpp = true;
    push(pp, "amnt++");

    const std::vector<sweep::Outcome> outcomes =
        bench::sweepConfigs(jobs);
    std::string text;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        text += outcomeRow(labels[i], jobs[i], outcomes[i]) + "\n";
    checkGolden("golden_fig05.json", text);
}

TEST(GoldenFigures, Table3PinnedConfigsMatchGolden)
{
    // Area-model rows (pure arithmetic; paper Table 3) for the three
    // protocols whose hardware cost the paper compares in depth, at
    // the paper's 8 GB protected-data point.
    mee::MeeConfig cfg;
    cfg.dataBytes = 8ull << 30;
    std::string text;
    for (mee::Protocol p : {mee::Protocol::Anubis, mee::Protocol::Bmf,
                            mee::Protocol::Amnt}) {
        const core::HwOverhead hw = core::hwOverheadOf(p, cfg);
        bench::JsonRow row;
        row.field("label", std::string(mee::protocolName(p)))
            .field("nv_on_chip_bytes", hw.nvOnChip)
            .field("volatile_on_chip_bytes", hw.volatileOnChip)
            .field("in_memory_bytes", hw.inMemory);
        text += row.str() + "\n";
    }
    checkGolden("golden_table3.json", text);
}

TEST(GoldenFigures, Table4PinnedConfigsMatchGolden)
{
    std::string text;

    // Analytic recovery model rows (pure arithmetic, Table 4 sizes).
    core::RecoveryModel model;
    constexpr std::uint64_t kTb = 1ull << 40;
    const std::uint64_t sizes[] = {2 * kTb, 16 * kTb, 128 * kTb};
    auto analytic = [&](const std::string &label, auto fn) {
        bench::JsonRow row;
        row.field("label", label);
        for (std::uint64_t s : sizes)
            row.field(("ms_" + std::to_string(s / kTb) + "tb").c_str(),
                      fn(s));
        text += row.str() + "\n";
    };
    analytic("leaf", [&](std::uint64_t s) { return model.leafMs(s); });
    analytic("strict",
             [&](std::uint64_t s) { return model.strictMs(s); });
    analytic("anubis", [&](std::uint64_t) { return model.anubisMs(); });
    analytic("osiris",
             [&](std::uint64_t s) { return model.osirisMs(s); });
    analytic("bmf", [&](std::uint64_t s) { return model.bmfMs(s); });
    for (unsigned level = 2; level <= 4; ++level)
        analytic("amnt_l" + std::to_string(level),
                 [&, level](std::uint64_t s) {
                     return model.amntMs(s, level);
                 });
    // Post-paper baselines: Phoenix restores one epoch of nodes
    // (size-independent); STIT recomputes the inner tree like leaf.
    analytic("phoenix", [&](std::uint64_t) {
        return model.phoenixMs(mee::MeeConfig{}.phoenixEpoch);
    });
    analytic("stit", [&](std::uint64_t s) { return model.stitMs(s); });

    // Functional validation: real crash + recovery per protocol on a
    // pinned seeded workload (the table4 harness's second section).
    // Registry-ordered persistent protocols, so the new baselines
    // append after the paper's rows.
    const std::vector<mee::Protocol> protocols = {
        mee::Protocol::Strict, mee::Protocol::Leaf,
        mee::Protocol::Osiris, mee::Protocol::Anubis,
        mee::Protocol::Bmf,    mee::Protocol::Amnt,
        mee::Protocol::Phoenix, mee::Protocol::Stit};
    for (mee::Protocol p : protocols) {
        mee::MeeConfig cfg;
        cfg.dataBytes = 32ull << 20;
        cfg.trackContents = false;
        cfg.keySeed = 99;
        mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
        auto engine = core::makeEngine(p, cfg, nvm);
        Rng rng(4242);
        for (int w = 0; w < 6000; ++w)
            engine->write(rng.below(8192) * kPageSize +
                          rng.below(64) * kBlockSize);
        engine->crash();
        const mee::RecoveryReport report = engine->recover();
        bench::JsonRow row;
        row.field("label",
                  std::string("functional ") + mee::protocolName(p))
            .field("success", report.success)
            .field("blocks_read", report.blocksRead)
            .field("blocks_written", report.blocksWritten)
            .field("counters_recovered", report.countersRecovered)
            .field("nodes_recomputed", report.nodesRecomputed)
            .field("estimated_ms", report.estimatedMs);
        text += row.str() + "\n";
    }
    checkGolden("golden_table4.json", text);
}

} // namespace
} // namespace amnt
