#include <gtest/gtest.h>

#include "bmt/geometry.hh"

namespace amnt::bmt
{
namespace
{

TEST(Geometry, PadsToPowerOfEight)
{
    EXPECT_EQ(Geometry(1).paddedCounters(), 8ull);
    EXPECT_EQ(Geometry(8).paddedCounters(), 8ull);
    EXPECT_EQ(Geometry(9).paddedCounters(), 64ull);
    EXPECT_EQ(Geometry(513).paddedCounters(), 4096ull);
}

TEST(Geometry, LevelsRootIsOne)
{
    const Geometry g(512); // 8^3 counters -> 3 node levels
    EXPECT_EQ(g.nodeLevels(), 3u);
    EXPECT_EQ(g.totalLevels(), 4u);
    EXPECT_EQ(g.nodesAt(1), 1ull);
    EXPECT_EQ(g.nodesAt(2), 8ull);
    EXPECT_EQ(g.nodesAt(3), 64ull);
    EXPECT_EQ(g.totalNodes(), 73ull);
}

TEST(Geometry, EightGigabyteConfig)
{
    const Geometry g(1ull << 21); // 8 GB of pages
    EXPECT_EQ(g.nodeLevels(), 7u);
    EXPECT_EQ(g.totalLevels(), 8u); // the paper's "8-level BMT"
    EXPECT_EQ(g.nodesAt(3), 64ull); // 64 subtree regions at level 3
}

TEST(Geometry, Coverage)
{
    const Geometry g(512);
    EXPECT_EQ(g.countersPerNode(1), 512ull);
    EXPECT_EQ(g.countersPerNode(2), 64ull);
    EXPECT_EQ(g.countersPerNode(3), 8ull);
}

TEST(Geometry, AncestorAndParentConsistency)
{
    const Geometry g(512);
    const std::uint64_t counter = 345;
    NodeRef leaf = g.leafNodeOf(counter);
    EXPECT_EQ(leaf.level, 3u);
    EXPECT_EQ(leaf.index, counter / 8);
    NodeRef ref = leaf;
    for (unsigned level = 3; level >= 1; --level) {
        EXPECT_EQ(g.ancestorOf(counter, level), ref);
        EXPECT_TRUE(g.onPath(ref, counter));
        if (level > 1)
            ref = Geometry::parentOf(ref);
    }
    EXPECT_EQ(ref, (NodeRef{1, 0}));
}

TEST(Geometry, ChildSlotRoundTrip)
{
    const Geometry g(512);
    const NodeRef parent{2, 5};
    for (unsigned slot = 0; slot < kTreeArity; ++slot) {
        const NodeRef child = g.childOf(parent, slot);
        EXPECT_EQ(Geometry::parentOf(child), parent);
        EXPECT_EQ(Geometry::slotOf(child), slot);
    }
}

TEST(Geometry, LinearIdRoundTrip)
{
    const Geometry g(4096);
    std::uint64_t expected = 0;
    for (unsigned level = 1; level <= g.nodeLevels(); ++level) {
        for (std::uint64_t i : {std::uint64_t(0),
                                g.nodesAt(level) / 2,
                                g.nodesAt(level) - 1}) {
            const NodeRef ref{level, i};
            const std::uint64_t id = g.linearId(ref);
            EXPECT_EQ(g.nodeOfLinearId(id), ref);
        }
        expected += g.nodesAt(level);
    }
    EXPECT_EQ(g.totalNodes(), expected);
    EXPECT_EQ(g.linearId({1, 0}), 0ull);
    EXPECT_EQ(g.linearId({2, 0}), 1ull);
    EXPECT_EQ(g.linearId({3, 0}), 9ull);
}

TEST(Geometry, SubtreeMembership)
{
    const Geometry g(4096); // 4 node levels
    const NodeRef root{2, 3};
    EXPECT_TRUE(Geometry::inSubtree(root, root));
    EXPECT_TRUE(Geometry::inSubtree({3, 3 * 8 + 1}, root));
    EXPECT_TRUE(Geometry::inSubtree({4, 3 * 64 + 63}, root));
    EXPECT_FALSE(Geometry::inSubtree({3, 2 * 8 + 7}, root));
    EXPECT_FALSE(Geometry::inSubtree({1, 0}, root));
    EXPECT_FALSE(Geometry::inSubtree({2, 4}, root));
}

TEST(Geometry, RegionsPartitionCounters)
{
    const Geometry g(4096);
    const unsigned level = 3; // 64 regions of 64 counters each
    std::uint64_t last = 0;
    for (std::uint64_t c = 0; c < 4096; ++c) {
        const std::uint64_t r = g.regionOf(c, level);
        EXPECT_EQ(r, c / 64);
        EXPECT_GE(r, last);
        last = r;
    }
}

} // namespace
} // namespace amnt::bmt
