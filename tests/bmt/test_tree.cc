#include <gtest/gtest.h>

#include "bmt/tree.hh"
#include "crypto/engines.hh"
#include "mem/memory_map.hh"
#include "mem/nvm_device.hh"

namespace amnt::bmt
{
namespace
{

class TreeTest : public ::testing::Test
{
  protected:
    TreeTest()
        : map_(4ull << 20), // 4 MB data -> 1024 counters, 4 levels
          suite_(crypto::CryptoSuite::make(crypto::CryptoPlane::Fast,
                                           7)),
          tree_(map_, *suite_.hash)
    {
    }

    mem::MemoryMap map_;
    crypto::CryptoSuite suite_;
    TreeState tree_;
};

TEST_F(TreeTest, EmptyTreeHasZeroRoot)
{
    EXPECT_EQ(tree_.rootHash(), 0ull);
    EXPECT_TRUE(tree_.counter(5).isZero());
}

TEST_F(TreeTest, CounterUpdatePropagatesToRoot)
{
    CounterBlock cb;
    cb.increment(0);
    tree_.setCounter(17, cb);
    const std::uint64_t r1 = tree_.rootHash();
    EXPECT_NE(r1, 0ull);

    cb.increment(0);
    tree_.setCounter(17, cb);
    EXPECT_NE(tree_.rootHash(), r1);
}

TEST_F(TreeTest, IndependentCountersBothInfluenceRoot)
{
    CounterBlock a;
    a.increment(1);
    tree_.setCounter(0, a);
    const std::uint64_t r1 = tree_.rootHash();
    tree_.setCounter(1023, a);
    const std::uint64_t r2 = tree_.rootHash();
    EXPECT_NE(r1, r2);
}

TEST_F(TreeTest, VerifyCounterBytes)
{
    CounterBlock cb;
    cb.increment(9);
    tree_.setCounter(42, cb);
    EXPECT_TRUE(tree_.verifyCounterBytes(42, tree_.counterBytes(42)));

    mem::Block forged = tree_.counterBytes(42);
    forged[10] ^= 0x01;
    EXPECT_FALSE(tree_.verifyCounterBytes(42, forged));
}

TEST_F(TreeTest, VerifyNodeBytes)
{
    CounterBlock cb;
    cb.increment(0);
    tree_.setCounter(100, cb);
    const NodeRef leaf = map_.geometry().leafNodeOf(100);
    EXPECT_TRUE(tree_.verifyNodeBytes(leaf, tree_.node(leaf)));

    mem::Block forged = tree_.node(leaf);
    forged[0] ^= 0x80;
    EXPECT_FALSE(tree_.verifyNodeBytes(leaf, forged));

    // Root verifies against its own hash.
    EXPECT_TRUE(tree_.verifyNodeBytes({1, 0}, tree_.node({1, 0})));
}

TEST_F(TreeTest, OnlyPathNodesMaterialize)
{
    CounterBlock cb;
    cb.increment(0);
    tree_.setCounter(0, cb);
    EXPECT_EQ(tree_.touchedCounters(), 1ull);
    // One node per level on the path.
    EXPECT_EQ(tree_.touchedNodes(), map_.geometry().nodeLevels());
}

TEST_F(TreeTest, RebuildFromNvmReproducesRoot)
{
    CounterBlock cb;
    for (std::uint64_t idx : {0ull, 5ull, 63ull, 64ull, 1000ull}) {
        cb.increment(static_cast<unsigned>(idx % 64));
        tree_.setCounter(idx, cb);
    }
    const std::uint64_t live_root = tree_.rootHash();

    // Persist every counter, then rebuild a fresh tree from NVM.
    mem::NvmDevice nvm(map_.deviceBytes());
    tree_.forEachCounter(
        [&](std::uint64_t idx, const CounterBlock &c) {
            nvm.writeBlock(map_.counterBase() + idx * kBlockSize,
                           c.serialize());
        });
    TreeState rebuilt(map_, *suite_.hash);
    EXPECT_EQ(rebuilt.rebuildFromNvm(nvm), live_root);
    EXPECT_EQ(rebuilt.touchedCounters(), 5ull);
}

TEST_F(TreeTest, RebuildDetectsTamperedCounter)
{
    CounterBlock cb;
    cb.increment(0);
    tree_.setCounter(7, cb);
    const std::uint64_t live_root = tree_.rootHash();

    mem::NvmDevice nvm(map_.deviceBytes());
    nvm.writeBlock(map_.counterBase() + 7 * kBlockSize,
                   tree_.counterBytes(7));
    nvm.tamper(map_.counterBase() + 7 * kBlockSize, 3, 0xff);

    TreeState rebuilt(map_, *suite_.hash);
    EXPECT_NE(rebuilt.rebuildFromNvm(nvm), live_root);
}

TEST_F(TreeTest, DifferentKeysDifferentRoots)
{
    crypto::CryptoSuite other =
        crypto::CryptoSuite::make(crypto::CryptoPlane::Fast, 8);
    TreeState t2(map_, *other.hash);
    CounterBlock cb;
    cb.increment(0);
    tree_.setCounter(0, cb);
    t2.setCounter(0, cb);
    EXPECT_NE(tree_.rootHash(), t2.rootHash());
}

} // namespace
} // namespace amnt::bmt
