#include <gtest/gtest.h>

#include "bmt/counters.hh"

namespace amnt::bmt
{
namespace
{

TEST(CounterBlock, StartsZero)
{
    const CounterBlock cb;
    EXPECT_TRUE(cb.isZero());
    EXPECT_EQ(cb.major, 0ull);
}

TEST(CounterBlock, IncrementIsolatedPerSlot)
{
    CounterBlock cb;
    EXPECT_FALSE(cb.increment(3));
    EXPECT_FALSE(cb.increment(3));
    EXPECT_EQ(cb.minors[3], 2);
    EXPECT_EQ(cb.minors[2], 0);
    EXPECT_FALSE(cb.isZero());
}

TEST(CounterBlock, OverflowAtSevenBits)
{
    CounterBlock cb;
    for (int i = 0; i < 127; ++i)
        EXPECT_FALSE(cb.increment(0)) << "iteration " << i;
    EXPECT_EQ(cb.minors[0], kMinorCounterMax);
    EXPECT_TRUE(cb.increment(0)); // would exceed 7 bits
    cb.overflowReset();
    EXPECT_EQ(cb.major, 1ull);
    for (auto m : cb.minors)
        EXPECT_EQ(m, 0);
}

TEST(CounterBlock, SerializeIs64Bytes)
{
    CounterBlock cb;
    cb.major = 0x1122334455667788ULL;
    const auto raw = cb.serialize();
    EXPECT_EQ(raw.size(), kBlockSize);
    EXPECT_EQ(raw[0], 0x88); // little-endian major
}

TEST(CounterBlock, SerializeRoundTripDense)
{
    CounterBlock cb;
    cb.major = 0xdeadbeefcafe1234ULL;
    for (unsigned i = 0; i < kCounterArity; ++i)
        cb.minors[i] = static_cast<std::uint8_t>((i * 37 + 5) & 0x7f);
    EXPECT_EQ(CounterBlock::deserialize(cb.serialize()), cb);
}

TEST(CounterBlock, SerializeRoundTripExtremes)
{
    CounterBlock cb;
    for (unsigned i = 0; i < kCounterArity; ++i)
        cb.minors[i] = i % 2 ? kMinorCounterMax : 0;
    EXPECT_EQ(CounterBlock::deserialize(cb.serialize()), cb);
}

TEST(CounterBlock, MinorsUseExactly56Bytes)
{
    // Setting only the last minor must not touch the major bytes and
    // must land inside the trailing 56-byte area.
    CounterBlock cb;
    cb.minors[63] = kMinorCounterMax;
    const auto raw = cb.serialize();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(raw[static_cast<std::size_t>(i)], 0);
    EXPECT_NE(raw[63], 0);
    EXPECT_EQ(CounterBlock::deserialize(raw), cb);
}

TEST(CounterBlock, ZeroBlockSerializesToZeros)
{
    const CounterBlock cb;
    for (auto b : cb.serialize())
        EXPECT_EQ(b, 0);
}

} // namespace
} // namespace amnt::bmt
