#include <gtest/gtest.h>

#include "mem/nvm_device.hh"

namespace amnt::mem
{
namespace
{

TEST(NvmDevice, UnwrittenBlocksReadZero)
{
    NvmDevice nvm(1 << 20);
    Block b;
    b.fill(0xff);
    nvm.readBlock(0x100, b);
    for (auto byte : b)
        EXPECT_EQ(byte, 0);
}

TEST(NvmDevice, WriteReadRoundTrip)
{
    NvmDevice nvm(1 << 20);
    Block in;
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i);
    nvm.writeBlock(0x40, in);
    Block out;
    nvm.readBlock(0x40, out);
    EXPECT_EQ(in, out);
}

TEST(NvmDevice, BlockAlignmentSharesStorage)
{
    NvmDevice nvm(1 << 20);
    Block in{};
    in[0] = 0xaa;
    nvm.writeBlock(0x80, in);
    Block out;
    nvm.readBlock(0x80 + 17, out); // same block, unaligned byte addr
    EXPECT_EQ(out[0], 0xaa);
}

TEST(NvmDevice, TrafficCounting)
{
    NvmDevice nvm(1 << 20);
    Block b{};
    nvm.writeBlock(0, b);
    nvm.readBlock(0, b);
    nvm.touchRead(64);
    nvm.touchWrite(64);
    EXPECT_EQ(nvm.reads(), 2ull);
    EXPECT_EQ(nvm.writes(), 2ull);
}

TEST(NvmDevice, PeekDoesNotCount)
{
    NvmDevice nvm(1 << 20);
    Block b{};
    nvm.peek(0, b);
    EXPECT_EQ(nvm.reads(), 0ull);
}

TEST(NvmDevice, ContentsSurviveCrash)
{
    NvmDevice nvm(1 << 20);
    Block in{};
    in[5] = 0x55;
    nvm.writeBlock(0x1000, in);
    nvm.crash();
    Block out;
    nvm.readBlock(0x1000, out);
    EXPECT_EQ(out[5], 0x55);
}

TEST(NvmDevice, TamperFlipsBits)
{
    NvmDevice nvm(1 << 20);
    Block in{};
    in[3] = 0x0f;
    nvm.writeBlock(0, in);
    EXPECT_TRUE(nvm.tamper(0, 3, 0xff));
    Block out;
    nvm.readBlock(0, out);
    EXPECT_EQ(out[3], 0xf0);
}

TEST(NvmDevice, TamperUnwrittenBlock)
{
    NvmDevice nvm(1 << 20);
    EXPECT_FALSE(nvm.tamper(0x200, 0, 0x01));
    Block out;
    nvm.readBlock(0x200, out);
    EXPECT_EQ(out[0], 0x01);
}

TEST(NvmDevice, ForEachBlockInRange)
{
    NvmDevice nvm(1 << 20);
    Block b{};
    nvm.writeBlock(0x000, b);
    nvm.writeBlock(0x100, b);
    nvm.writeBlock(0x800, b);
    int in_range = 0;
    nvm.forEachBlockIn(0x100, 0x800,
                       [&](Addr, const Block &) { ++in_range; });
    EXPECT_EQ(in_range, 1);
    EXPECT_EQ(nvm.blocksTouched(), 3ull);
}

} // namespace
} // namespace amnt::mem
