#include <gtest/gtest.h>

#include "mem/memory_map.hh"

namespace amnt::mem
{
namespace
{

TEST(MemoryMap, RegionsAreOrderedAndDisjoint)
{
    const MemoryMap map(64ull << 20); // 64 MB
    EXPECT_LT(map.dataBytes(), map.counterBase() + 1);
    EXPECT_LT(map.counterBase(), map.hmacBase());
    EXPECT_LT(map.hmacBase(), map.treeBase());
    EXPECT_LT(map.treeBase(), map.deviceBytes());
}

TEST(MemoryMap, Classification)
{
    const MemoryMap map(64ull << 20);
    EXPECT_EQ(map.classify(0), Region::Data);
    EXPECT_EQ(map.classify(map.dataBytes() - 1), Region::Data);
    EXPECT_EQ(map.classify(map.counterBase()), Region::Counter);
    EXPECT_EQ(map.classify(map.hmacBase()), Region::Hmac);
    EXPECT_EQ(map.classify(map.treeBase()), Region::Tree);
}

TEST(MemoryMap, CounterPerPage)
{
    const MemoryMap map(64ull << 20);
    EXPECT_EQ(map.counterIndexOf(0), 0ull);
    EXPECT_EQ(map.counterIndexOf(4095), 0ull);
    EXPECT_EQ(map.counterIndexOf(4096), 1ull);
    EXPECT_EQ(map.counterAddrOf(4096),
              map.counterBase() + kBlockSize);
}

TEST(MemoryMap, HmacEntryPacking)
{
    const MemoryMap map(64ull << 20);
    // Eight consecutive data blocks share one HMAC block.
    EXPECT_EQ(map.hmacAddrOf(0), map.hmacAddrOf(7 * kBlockSize));
    EXPECT_NE(map.hmacAddrOf(0), map.hmacAddrOf(8 * kBlockSize));
    EXPECT_EQ(MemoryMap::hmacOffsetOf(0), 0ull);
    EXPECT_EQ(MemoryMap::hmacOffsetOf(kBlockSize), 8ull);
    EXPECT_EQ(MemoryMap::hmacOffsetOf(7 * kBlockSize), 56ull);
}

TEST(MemoryMap, NodeAddressRoundTrip)
{
    const MemoryMap map(64ull << 20);
    const auto &geo = map.geometry();
    for (unsigned level = 1; level <= geo.nodeLevels(); ++level) {
        const bmt::NodeRef ref{level, geo.nodesAt(level) - 1};
        const Addr a = map.nodeAddrOf(ref);
        EXPECT_EQ(map.classify(a), Region::Tree);
        EXPECT_EQ(map.nodeOfAddr(a), ref);
    }
}

TEST(MemoryMap, EightGigabyteGeometryMatchesPaper)
{
    const MemoryMap map(8ull << 30);
    // Paper: "8-level BMT" = 7 node levels + the counter leaves.
    EXPECT_EQ(map.geometry().nodeLevels(), 7u);
    EXPECT_EQ(map.geometry().totalLevels(), 8u);
    // Level 3 has 64 nodes covering 128 MB each.
    EXPECT_EQ(map.geometry().nodesAt(3), 64ull);
    EXPECT_EQ(map.geometry().countersPerNode(3) * kPageSize,
              128ull << 20);
}

TEST(MemoryMap, MetadataOverheadIsSmall)
{
    const MemoryMap map(1ull << 30);
    const double overhead =
        static_cast<double>(map.deviceBytes() - map.dataBytes()) /
        static_cast<double>(map.dataBytes());
    // Counters 1/64 + HMACs 1/8 + tree nodes ~1/448.
    EXPECT_LT(overhead, 0.16);
    EXPECT_GT(overhead, 0.13);
}

} // namespace
} // namespace amnt::mem
