/**
 * Multi-tenant campaign conformance and isolation.
 *
 * Statistical conformance: with CampaignConfig::collectSamples the
 * campaign keeps every co-run latency sample per tenant, so the
 * reported percentiles can be validated two ways — against a
 * histogram rebuilt from the raw samples, and against the sorted
 * nearest-rank oracle from tests/obs/ (sorted[k-1] with
 * k = max(1, ceil(p/100 * N)), quantized to the campaign histogram's
 * bin geometry).
 *
 * Isolation: tenant A's key must never verify tenant B's lines. The
 * campaign's ciphertext-splice probe asserts it end-to-end; the
 * direct CryptoSuite check asserts the primitive underneath.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "campaign/campaign.hh"
#include "core/protocol_registry.hh"
#include "crypto/engines.hh"
#include "mee/protocol.hh"

namespace amnt
{
namespace
{

campaign::CampaignConfig
sampledConfig()
{
    campaign::CampaignConfig cfg;
    cfg.ops = 400;
    cfg.collectSamples = true;
    return cfg;
}

const campaign::CampaignReport &
sampledReport()
{
    static const campaign::CampaignReport report =
        campaign::runMultiTenant(sampledConfig());
    return report;
}

double
nearestRank(const Histogram &h, std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    const auto k = static_cast<std::size_t>(
        std::max(1.0, std::ceil(p / 100.0 * n)));
    return h.quantize(sorted[k - 1]);
}

/** Row metrics round-trip through %.9g: compare at that precision. */
void
expectSerialized(double reported, double expect, const std::string &tag)
{
    EXPECT_NEAR(reported, expect, std::abs(expect) * 1e-8) << tag;
}

class MultiTenantConformance
    : public ::testing::TestWithParam<mee::Protocol>
{};

TEST_P(MultiTenantConformance, PercentilesMatchNearestRankOracle)
{
    const campaign::CampaignConfig cfg = sampledConfig();
    const campaign::ProtocolRow &row =
        sampledReport().row(GetParam());
    for (unsigned t = 0; t < cfg.tenants; ++t) {
        const std::string tag = "t" + std::to_string(t);
        const std::vector<double> *raw = row.sampleSet(tag + "_co");
        ASSERT_NE(raw, nullptr) << tag << " kept no samples";
        ASSERT_EQ(raw->size(), cfg.ops) << tag;

        // Reported percentile == rebuilt histogram == sorted oracle.
        Histogram rebuilt = campaign::latencyHistogram();
        for (double v : *raw)
            rebuilt.add(v);
        expectSerialized(row.num(tag + "_co_p50"),
                         rebuilt.percentile(50.0), tag);
        expectSerialized(row.num(tag + "_co_p90"),
                         rebuilt.percentile(90.0), tag);
        expectSerialized(row.num(tag + "_co_p99"),
                         rebuilt.percentile(99.0), tag);
        expectSerialized(row.num(tag + "_co_p50"),
                         nearestRank(rebuilt, *raw, 50.0), tag);
        expectSerialized(row.num(tag + "_co_p99"),
                         nearestRank(rebuilt, *raw, 99.0), tag);
        EXPECT_EQ(static_cast<std::uint64_t>(row.num(tag + "_ops")),
                  raw->size())
            << tag;
    }
}

TEST_P(MultiTenantConformance, SpliceNeverVerifiesAcrossTenants)
{
    const campaign::ProtocolRow &row =
        sampledReport().row(GetParam());
    EXPECT_GT(row.num("splice_attempts"), 0.0)
        << "the isolation probe never ran";
    EXPECT_EQ(row.num("splice_detected"), row.num("splice_attempts"))
        << "a cross-tenant ciphertext splice verified";
    EXPECT_EQ(row.num("isolation_false_accepts"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, MultiTenantConformance,
    ::testing::ValuesIn(core::allProtocols()),
    [](const ::testing::TestParamInfo<mee::Protocol> &info) {
        return std::string(mee::protocolName(info.param));
    });

TEST(TenantKeys, CrossTenantMacNeverMatches)
{
    // The primitive under the splice probe: the same bytes MACed
    // under two tenants' suites (derived exactly as the campaign
    // derives them) must disagree for every block-sized tweak tried.
    const campaign::CampaignConfig cfg = sampledConfig();
    const auto a = crypto::CryptoSuite::make(
        crypto::CryptoPlane::Fast, campaign::tenantKeySeed(cfg, 0));
    const auto b = crypto::CryptoSuite::make(
        crypto::CryptoPlane::Fast, campaign::tenantKeySeed(cfg, 1));
    std::uint8_t block[kBlockSize];
    for (std::size_t i = 0; i < kBlockSize; ++i)
        block[i] = static_cast<std::uint8_t>(i * 37 + 11);
    for (std::uint64_t tweak = 0; tweak < 64; ++tweak)
        EXPECT_NE(a.hash->mac64(block, kBlockSize, tweak),
                  b.hash->mac64(block, kBlockSize, tweak))
            << "tenant keys collide at tweak " << tweak;
}

TEST(TenantKeys, EngineRejectsMisalignedSlices)
{
    // 2 MB cannot split into 3 page-aligned equal slices; the engine
    // must refuse the geometry rather than silently mis-slice.
    campaign::CampaignConfig cfg;
    cfg.tenants = 3;
    EXPECT_DEATH(
        { campaign::runMultiTenant(cfg); },
        "page-aligned equal slices");
}

TEST(MultiTenant, SlowdownMetricsPresentAndSane)
{
    const campaign::CampaignConfig cfg = sampledConfig();
    for (const campaign::ProtocolRow &row : sampledReport().rows) {
        for (unsigned t = 0; t < cfg.tenants; ++t) {
            const std::string tag = "t" + std::to_string(t);
            EXPECT_GT(row.num(tag + "_solo_p50"), 0.0);
            EXPECT_GT(row.num(tag + "_p99_slowdown"), 0.0)
                << mee::protocolName(row.protocol) << " " << tag;
        }
        EXPECT_GT(row.num("co_mcache_hit_rate"), 0.0);
    }
}

} // namespace
} // namespace amnt
