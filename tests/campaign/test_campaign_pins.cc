/**
 * Campaign artifact pins.
 *
 * Each campaign at the pinned geometry (campaign::pinnedConfig(),
 * exactly what a bare `amnt_campaign` run uses) must serialize
 * byte-for-byte to the checked-in results/campaign_<name>.json.
 * Together with the determinism tests this pins the full chain:
 * config -> simulation -> canonical JSON -> artifact file, across
 * any thread count and environment.
 *
 * Regenerate after an intentional model change with:
 *   AMNT_GOLDEN_REGEN=1 ./build/tests/test_campaign \
 *       --gtest_filter='CampaignPins.*'
 * (or simply `./build/tools/amnt_campaign` — same bytes.)
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hh"

namespace amnt
{
namespace
{

std::string
artifactPath(const std::string &name)
{
    return std::string(AMNT_SOURCE_ROOT) + "/results/campaign_" +
           name + ".json";
}

class CampaignPins : public ::testing::TestWithParam<std::string>
{};

TEST_P(CampaignPins, ArtifactMatchesPinnedGeometry)
{
    const std::string name = GetParam();
    const std::string text =
        campaign::runCampaign(name, campaign::pinnedConfig()).toJson();
    const std::string path = artifactPath(name);
    if (std::getenv("AMNT_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << text;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with AMNT_GOLDEN_REGEN=1 "
        << "or ./build/tools/amnt_campaign";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), text)
        << "campaign numbers drifted from " << path
        << " (intentional model changes must regenerate the artifact)";
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, CampaignPins,
    ::testing::ValuesIn(campaign::campaignNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace amnt
