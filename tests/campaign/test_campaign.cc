/**
 * Campaign framework tests: enrollment, determinism, and the
 * adversarial / online-recovery oracles.
 *
 * Enrollment is a pin, not a convention: every campaign must carry
 * one row per registry protocol, in registry order. A protocol that
 * silently drops out of a campaign (an exemption someone "temporarily"
 * adds) is a test failure here, by construction.
 *
 * Campaign reports are shared across the oracle tests through a
 * per-campaign cache — each campaign runs once per test binary at the
 * small test geometry, and every parameterized assertion reads the
 * same report.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "campaign/campaign.hh"
#include "core/protocol_registry.hh"
#include "mee/protocol.hh"

namespace amnt
{
namespace
{

campaign::CampaignConfig
testConfig()
{
    campaign::CampaignConfig cfg;
    cfg.ops = 400;
    cfg.crashAfter = 11;
    return cfg;
}

const campaign::CampaignReport &
cached(const std::string &name)
{
    static std::map<std::string, campaign::CampaignReport> reports;
    auto it = reports.find(name);
    if (it == reports.end())
        it = reports.emplace(name, campaign::runCampaign(name, testConfig()))
                 .first;
    return it->second;
}

// ----------------------------------------------------------- enrollment

class CampaignEnrollment
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(CampaignEnrollment, OneRowPerRegistryProtocolInOrder)
{
    const campaign::CampaignReport &report = cached(GetParam());
    const std::vector<mee::Protocol> all = core::allProtocols();
    ASSERT_EQ(all.size(), mee::kProtocolCount);
    ASSERT_EQ(report.rows.size(), all.size())
        << "campaign '" << GetParam()
        << "' skipped a registry protocol";
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(report.rows[i].protocol, all[i])
            << "row " << i << " out of registry order";
}

TEST_P(CampaignEnrollment, EveryRowCarriesMetrics)
{
    for (const campaign::ProtocolRow &row : cached(GetParam()).rows)
        EXPECT_FALSE(row.metrics.empty())
            << mee::protocolName(row.protocol) << " row is empty";
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, CampaignEnrollment,
    ::testing::ValuesIn(campaign::campaignNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(CampaignRegistry, NamesAreStableAndDispatchable)
{
    const std::vector<std::string> &names = campaign::campaignNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "adversarial");
    EXPECT_EQ(names[1], "multi_tenant");
    EXPECT_EQ(names[2], "online_recovery");
}

// ---------------------------------------------------------- determinism

class CampaignDeterminism
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(CampaignDeterminism, ByteIdenticalAtAnyThreadCount)
{
    campaign::CampaignConfig cfg = testConfig();
    cfg.ops = 200;
    cfg.threads = 1;
    const std::string serial =
        campaign::runCampaign(GetParam(), cfg).toJson();
    cfg.threads = 4;
    const std::string parallel =
        campaign::runCampaign(GetParam(), cfg).toJson();
    EXPECT_EQ(serial, parallel)
        << "campaign '" << GetParam()
        << "' leaks thread-count into the artifact";
}

TEST_P(CampaignDeterminism, SeedChangesTheReport)
{
    campaign::CampaignConfig cfg = testConfig();
    cfg.ops = 200;
    const std::string a = campaign::runCampaign(GetParam(), cfg).toJson();
    cfg.seed += 1;
    const std::string b = campaign::runCampaign(GetParam(), cfg).toJson();
    EXPECT_NE(a, b) << "seed does not reach campaign '" << GetParam()
                    << "'";
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, CampaignDeterminism,
    ::testing::ValuesIn(campaign::campaignNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ------------------------------------------------- adversarial oracle

class AdversarialAllProtocols
    : public ::testing::TestWithParam<mee::Protocol>
{};

TEST_P(AdversarialAllProtocols, LiveTamperAlwaysDetected)
{
    const campaign::ProtocolRow &row =
        cached("adversarial").row(GetParam());
    EXPECT_GT(row.num("live_tamper_attempts"), 0.0);
    EXPECT_EQ(row.num("live_tamper_detected"),
              row.num("live_tamper_attempts"))
        << "a live data tamper went unnoticed";
    EXPECT_EQ(row.num("meta_tamper_detected"), 1.0)
        << "a persisted counter-block tamper went unnoticed";
}

TEST_P(AdversarialAllProtocols, OverflowForcesReencryption)
{
    const campaign::ProtocolRow &row =
        cached("adversarial").row(GetParam());
    EXPECT_GE(row.num("overflow_reencrypts"), 1.0)
        << "minor-counter hammering never wrapped";
}

TEST_P(AdversarialAllProtocols, CrashOutcomeMatchesCrashProfile)
{
    const campaign::ProtocolRow &row =
        cached("adversarial").row(GetParam());
    EXPECT_EQ(row.num("crash_fired"), 1.0);
    EXPECT_EQ(row.num("crash_recovered"),
              row.num("crash_expected_recover"))
        << "recovery outcome contradicts CrashProfile::persistent";
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AdversarialAllProtocols,
    ::testing::ValuesIn(core::allProtocols()),
    [](const ::testing::TestParamInfo<mee::Protocol> &info) {
        return std::string(mee::protocolName(info.param));
    });

class AdversarialAtRest : public ::testing::TestWithParam<mee::Protocol>
{};

TEST_P(AdversarialAtRest, PoweredOffTamperDetectedOnRecovery)
{
    const campaign::ProtocolRow &row =
        cached("adversarial").row(GetParam());
    EXPECT_EQ(row.num("at_rest_detect_expected"), 1.0);
    EXPECT_EQ(row.num("at_rest_tamper_detected"), 1.0)
        << "tamper-at-rest slipped past recovery";
}

INSTANTIATE_TEST_SUITE_P(
    TamperAtRest, AdversarialAtRest,
    ::testing::ValuesIn(core::tamperAtRestProtocols()),
    [](const ::testing::TestParamInfo<mee::Protocol> &info) {
        return std::string(mee::protocolName(info.param));
    });

// --------------------------------------------- online-recovery oracle

class RecoveryPersistent : public ::testing::TestWithParam<mee::Protocol>
{};

TEST_P(RecoveryPersistent, RecoversAndReportsDegradedPercentiles)
{
    const campaign::ProtocolRow &row =
        cached("online_recovery").row(GetParam());
    EXPECT_EQ(row.num("crash_fired"), 1.0);
    EXPECT_EQ(row.num("recovered"), 1.0)
        << "persistent protocol failed online recovery";
    EXPECT_EQ(row.num("cold_restart"), 0.0);
    EXPECT_GT(row.num("degraded_p50"), 0.0);
    EXPECT_GT(row.num("degraded_p99"), 0.0);
    EXPECT_GE(row.num("degraded_p99"), row.num("degraded_p50"));
    EXPECT_GT(row.num("post_p50"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Persistent, RecoveryPersistent,
    ::testing::ValuesIn(core::persistentProtocols()),
    [](const ::testing::TestParamInfo<mee::Protocol> &info) {
        return std::string(mee::protocolName(info.param));
    });

TEST(RecoveryVolatile, ColdRestartsInsteadOfRecovering)
{
    const campaign::ProtocolRow &row =
        cached("online_recovery").row(mee::Protocol::Volatile);
    EXPECT_EQ(row.num("recovered"), 0.0);
    EXPECT_EQ(row.num("recover_expected"), 0.0);
    EXPECT_EQ(row.num("cold_restart"), 1.0);
    EXPECT_EQ(row.num("recovery_backlog_cycles"), 0.0);
}

// --------------------------------------------------------- row plumbing

TEST(ProtocolRow, FindAndNumRoundTrip)
{
    campaign::ProtocolRow row;
    row.protocol = mee::Protocol::Amnt;
    row.u64("a", 7);
    row.f64("b", 2.5);
    row.boolean("c", true);
    row.str("d", "zipfian");
    EXPECT_EQ(row.num("a"), 7.0);
    EXPECT_EQ(row.num("b"), 2.5);
    EXPECT_EQ(row.num("c"), 1.0);
    ASSERT_NE(row.find("d"), nullptr);
    EXPECT_EQ(*row.find("d"), "\"zipfian\"");
    EXPECT_EQ(row.find("missing"), nullptr);
}

TEST(CampaignConfigEnv, OnlyRestrictsRowsNotValues)
{
    // A row must not depend on which other protocols ran alongside it
    // (per-protocol seed salting): the single-protocol report equals
    // the corresponding row of the full report.
    campaign::CampaignConfig cfg = testConfig();
    cfg.ops = 200;
    cfg.only = mee::Protocol::Amnt;
    const campaign::CampaignReport solo =
        campaign::runCampaign("adversarial", cfg);
    ASSERT_EQ(solo.rows.size(), 1u);
    campaign::CampaignConfig full_cfg = testConfig();
    full_cfg.ops = 200;
    const campaign::CampaignReport full =
        campaign::runCampaign("adversarial", full_cfg);
    EXPECT_EQ(solo.rows[0].metrics,
              full.row(mee::Protocol::Amnt).metrics);
}

} // namespace
} // namespace amnt
