/**
 * @file
 * Minimal recursive-descent JSON parser for the observability tests.
 *
 * The trace-conformance and registry tests validate real JSON
 * documents (Chrome trace exports, StatRegistry dumps) without pulling
 * a JSON library into the build. Coverage matches what those emitters
 * produce: objects, arrays, strings with escapes, numbers, booleans
 * and null. Parse errors throw std::runtime_error, which gtest
 * surfaces as a test failure.
 */

#ifndef AMNT_TESTS_OBS_TEST_UTIL_HH
#define AMNT_TESTS_OBS_TEST_UTIL_HH

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace amnt::obstest
{

/** One parsed JSON value (tagged union, values owned by vectors). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member by key, or nullptr. */
    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : members) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }

    bool has(const std::string &key) const { return find(key) != nullptr; }

    /** Object member by key; throws when absent. */
    const JsonValue &
    at(const std::string &key) const
    {
        const JsonValue *v = find(key);
        if (v == nullptr)
            throw std::runtime_error("missing JSON key: " + key);
        return *v;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        std::ostringstream os;
        os << "JSON parse error at offset " << pos_ << ": " << why;
        throw std::runtime_error(os.str());
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    void
    parseLiteral(const char *lit)
    {
        skipWs();
        for (const char *p = lit; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected literal ") + lit);
            ++pos_;
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start)
            fail("expected a number");
        pos_ += static_cast<std::size_t>(end - start);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        return v;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("dangling escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    v.text += e;
                    break;
                  case 'n':
                    v.text += '\n';
                    break;
                  case 't':
                    v.text += '\t';
                    break;
                  case 'r':
                    v.text += '\r';
                    break;
                  case 'b':
                    v.text += '\b';
                    break;
                  case 'f':
                    v.text += '\f';
                    break;
                  case 'u': {
                    // The emitters under test never write \u escapes;
                    // accept and keep the raw digits for robustness.
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    v.text += "\\u";
                    v.text.append(text_, pos_, 4);
                    pos_ += 4;
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
            } else {
                v.text += c;
            }
        }
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (consumeIf(']'))
            return v;
        while (true) {
            v.items.push_back(parseValue());
            if (consumeIf(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (consumeIf('}'))
            return v;
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.members.emplace_back(std::move(key.text), parseValue());
            if (consumeIf('}'))
                return v;
            expect(',');
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Parse a complete JSON document; throws std::runtime_error. */
inline JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

/** Slurp a file; throws when it cannot be opened. */
inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace amnt::obstest

#endif // AMNT_TESTS_OBS_TEST_UTIL_HH
