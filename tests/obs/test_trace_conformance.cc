/**
 * Trace-conformance suite (DESIGN.md §11): the Chrome trace_event
 * JSON exported via AMNT_TRACE must be schema-valid (required keys on
 * every record, nondecreasing ts per track, balanced Begin/End pairs),
 * the AMNT_TRACE_CAP ring bound must hold, one event of every class
 * the workload exercises must appear, and — the zero-cost rule —
 * a traced run must produce bit-identical simulated results to an
 * untraced run of the same seed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "mee/mee_test_util.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "obs_test_util.hh"

using namespace amnt;
using obstest::JsonValue;

namespace
{

/** 2 MB protected data -> 512 counters; level-2 subtree = 8 regions
 * of 64 counters, so shifting the hot set forces subtree movements. */
mee::MeeConfig
amntConfig()
{
    mee::MeeConfig cfg = test::smallConfig();
    cfg.dataBytes = 2ull << 20;
    cfg.amntSubtreeLevel = 2;
    cfg.amntInterval = 64;
    return cfg;
}

/**
 * Deterministic workload that touches every traced subsystem: hammers
 * region 0, migrates the hot set to region 3 (subtree movements),
 * rereads (mcache hits/misses/evictions, BMT walks), then optionally
 * crashes and recovers.
 */
void
runWorkload(mee::MemoryEngine &e, bool crash_and_recover)
{
    Rng rng(0x7ace);
    for (int i = 0; i < 300; ++i) {
        const Addr page = rng.below(64) * kPageSize;
        test::writePattern(e, page + rng.below(4) * kBlockSize, i);
    }
    for (int i = 0; i < 300; ++i) {
        const Addr page = (192 + rng.below(64)) * kPageSize;
        test::writePattern(e, page + rng.below(4) * kBlockSize,
                           1000 + i);
    }
    std::uint8_t buf[kBlockSize];
    for (int i = 0; i < 200; ++i)
        e.read(rng.below(512) * kPageSize, buf);
    if (crash_and_recover) {
        e.crash();
        const auto report = e.recover();
        ASSERT_TRUE(report.success);
    }
}

/** Structural validation of one exported Chrome trace document. */
struct TraceCheck
{
    std::set<std::string> names;
    std::map<double, std::size_t> perTrackEvents;
    double droppedEvents = 0.0;

    void
    validate(const JsonValue &doc)
    {
        ASSERT_TRUE(doc.isObject());
        ASSERT_TRUE(doc.has("traceEvents"));
        ASSERT_TRUE(doc.has("displayTimeUnit"));
        ASSERT_TRUE(doc.has("otherData"));
        droppedEvents =
            doc.at("otherData").at("dropped_events").number;

        const JsonValue &events = doc.at("traceEvents");
        ASSERT_TRUE(events.isArray());

        struct Track
        {
            bool seen = false;
            double lastTs = 0.0;
            int depth = 0;
        };
        std::map<double, Track> tracks;

        for (const JsonValue &e : events.items) {
            ASSERT_TRUE(e.isObject());
            for (const char *key :
                 {"name", "cat", "ph", "ts", "pid", "tid"}) {
                ASSERT_TRUE(e.has(key))
                    << "record missing required key " << key;
            }
            ASSERT_TRUE(e.at("name").isString());
            ASSERT_TRUE(e.at("ts").isNumber());
            const std::string ph = e.at("ph").text;
            ASSERT_TRUE(ph == "i" || ph == "B" || ph == "E" ||
                        ph == "X")
                << "unknown phase " << ph;
            if (ph == "X")
                ASSERT_TRUE(e.has("dur"));

            names.insert(e.at("name").text);
            const double tid = e.at("tid").number;
            Track &t = tracks[tid];
            ++perTrackEvents[tid];

            const double ts = e.at("ts").number;
            if (t.seen) {
                ASSERT_GE(ts, t.lastTs)
                    << "ts regressed on track " << tid;
            }
            t.seen = true;
            t.lastTs = ts;

            if (ph == "B") {
                ++t.depth;
            } else if (ph == "E") {
                --t.depth;
                ASSERT_GE(t.depth, 0)
                    << "orphaned End on track " << tid;
            }
        }
        for (const auto &kv : tracks) {
            EXPECT_EQ(kv.second.depth, 0)
                << "unbalanced Begin on track " << kv.first;
        }
    }
};

class TraceConformance : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        ::unsetenv("AMNT_TRACE");
        ::unsetenv("AMNT_TRACE_CAP");
        // enabled() turns false, so the atexit export later no-ops.
        obs::TraceSession::global().reconfigure();
    }

    /** Point the session at a fresh file (and cap) for this test. */
    std::string
    enableTrace(const char *name, std::size_t cap = 0)
    {
        const std::string path = ::testing::TempDir() + name;
        ::setenv("AMNT_TRACE", path.c_str(), 1);
        if (cap > 0)
            ::setenv("AMNT_TRACE_CAP", std::to_string(cap).c_str(), 1);
        else
            ::unsetenv("AMNT_TRACE_CAP");
        obs::TraceSession::global().reconfigure();
        return path;
    }
};

TEST_F(TraceConformance, ExportedTraceIsSchemaValid)
{
    const std::string path = enableTrace("amnt_conformance.json");
    ASSERT_TRUE(obs::TraceSession::global().enabled());

    test::Rig rig(mee::Protocol::Amnt, amntConfig());
    ASSERT_TRUE(rig.engine->tracer().on());
    runWorkload(*rig.engine, true);
    obs::TraceSession::global().exportNow();

    JsonValue doc;
    ASSERT_NO_THROW(doc = obstest::parseJson(obstest::readFile(path)));
    TraceCheck check;
    check.validate(doc);
    if (::testing::Test::HasFatalFailure())
        return;

    // Every class this workload exercises must show up at least once.
    for (const char *cls :
         {"op", "persist", "mcache_hit", "mcache_miss",
          "mcache_evict", "bmt_walk", "subtree_move", "crypto_batch",
          "crash", "recovery"}) {
        EXPECT_TRUE(check.names.count(cls))
            << "no '" << cls << "' event in exported trace";
    }
    EXPECT_EQ(check.perTrackEvents.size(), 1u);
}

TEST_F(TraceConformance, RingCapIsHonored)
{
    constexpr std::size_t kCap = 64;
    const std::string path = enableTrace("amnt_cap.json", kCap);
    ASSERT_EQ(obs::TraceSession::global().cap(), kCap);

    test::Rig rig(mee::Protocol::Amnt, amntConfig());
    runWorkload(*rig.engine, true);
    obs::TraceSession::global().exportNow();

    JsonValue doc;
    ASSERT_NO_THROW(doc = obstest::parseJson(obstest::readFile(path)));
    TraceCheck check;
    check.validate(doc);
    if (::testing::Test::HasFatalFailure())
        return;

    // This workload overflows a 64-event ring by orders of magnitude.
    EXPECT_GT(check.droppedEvents, 0.0);
    for (const auto &kv : check.perTrackEvents) {
        // Export may synthesize a few closing Ends past the cap; the
        // spans here (subtree_move, recovery) never nest deeply.
        EXPECT_LE(kv.second, kCap + 8)
            << "track " << kv.first << " exceeds the ring cap";
    }
}

TEST_F(TraceConformance, TracingIsObservationOnly)
{
    auto run = [](bool traced) {
        test::Rig rig(mee::Protocol::Amnt, amntConfig());
        EXPECT_EQ(rig.engine->tracer().on(), traced);
        runWorkload(*rig.engine, true);

        obs::StatRegistry reg;
        rig.engine->registerStats(reg, "mee");
        rig.nvm->registerStats(reg, "nvm");
        return reg.dumpJson();
    };

    // Baseline with tracing off (the fixture guarantees a clean env).
    obs::TraceSession::global().reconfigure();
    ASSERT_FALSE(obs::TraceSession::global().enabled());
    const std::string untraced = run(false);

    enableTrace("amnt_zero_cost.json");
    const std::string traced = run(true);
    obs::TraceSession::global().exportNow();

    // Identical registry snapshots: every counter, histogram summary
    // and latency-derived statistic matches byte for byte.
    EXPECT_EQ(untraced, traced);
}

} // namespace
