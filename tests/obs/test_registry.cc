/**
 * StatRegistry contract tests: duplicate dotted paths must panic at
 * registration, expanded-key collisions must panic at dump, the JSON
 * dump must be flat/sorted/stable, reset() must zero groups and
 * histograms in place (scalar probes are read-only views), and the
 * per-job snapshots the sweep runner captures must be bit-identical
 * at every AMNT_SWEEP_THREADS.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "obs/registry.hh"
#include "obs_test_util.hh"
#include "sim/presets.hh"
#include "sim/sweep.hh"

using namespace amnt;
using obstest::JsonValue;

namespace
{

TEST(StatRegistry, DuplicatePathPanics)
{
    obs::StatRegistry reg;
    StatGroup g1, g2;
    reg.addGroup("mee.mcache", &g1);
    EXPECT_DEATH(reg.addGroup("mee.mcache", &g2), "duplicate path");

    Histogram h(1.0, 10.0, 4);
    reg.addHistogram("mee.depth", &h);
    EXPECT_DEATH(reg.addHistogram("mee.depth", &h), "duplicate path");
    // Cross-kind clashes are duplicates too.
    EXPECT_DEATH(reg.addScalar("mee.depth", [] { return 0ull; }),
                 "duplicate path");
}

TEST(StatRegistry, ExpandedKeyCollisionPanicsAtDump)
{
    obs::StatRegistry reg;
    StatGroup g;
    g.inc("hits", 3);
    reg.addGroup("cache.l1", &g);
    // "cache.l1" + counter "hits" expands to the same key.
    reg.addScalar("cache.l1.hits", [] { return 7ull; });
    EXPECT_DEATH(reg.dumpJson(), "key collision");
}

TEST(StatRegistry, DumpIsFlatSortedAndStable)
{
    obs::StatRegistry reg;
    StatGroup mcache;
    mcache.inc("hits", 41);
    mcache.inc("misses", 7);
    Histogram depth(1.0, 100.0, 8, Histogram::Scale::Log);
    depth.add(2.0);
    depth.add(3.0);
    depth.add(500.0);
    std::uint64_t device_writes = 99;

    // Registration order is deliberately not path order.
    reg.addScalar("nvm.writes", [&] { return device_writes; });
    reg.addHistogram("mee.persist_chain_depth", &depth);
    reg.addGroup("mee.mcache", &mcache);
    ASSERT_FALSE(reg.empty());

    const std::string dump = reg.dumpJson();
    EXPECT_EQ(dump, reg.dumpJson()) << "dump must be reproducible";

    JsonValue doc;
    ASSERT_NO_THROW(doc = obstest::parseJson(dump));
    ASSERT_TRUE(doc.isObject());

    // Flat, and keys come back in sorted order.
    std::vector<std::string> keys;
    for (const auto &kv : doc.members)
        keys.push_back(kv.first);
    const std::vector<std::string> want = {
        "mee.mcache.hits",
        "mee.mcache.misses",
        "mee.persist_chain_depth",
        "nvm.writes",
    };
    EXPECT_EQ(keys, want);

    EXPECT_EQ(doc.at("mee.mcache.hits").number, 41.0);
    EXPECT_EQ(doc.at("mee.mcache.misses").number, 7.0);
    EXPECT_EQ(doc.at("nvm.writes").number, 99.0);

    const JsonValue &h = doc.at("mee.persist_chain_depth");
    ASSERT_TRUE(h.isObject());
    for (const char *key : {"count", "mean", "p50", "p95", "p99",
                            "underflow", "overflow"})
        EXPECT_TRUE(h.has(key)) << key;
    EXPECT_EQ(h.at("count").number, 3.0);
    EXPECT_EQ(h.at("overflow").number, 1.0);
    // Doubles travel as "%.9g"; compare after the same round-trip.
    char p50[64];
    std::snprintf(p50, sizeof(p50), "%.9g", depth.percentile(50.0));
    EXPECT_EQ(h.at("p50").number, std::strtod(p50, nullptr));

    // Scalar probes are evaluated live at every dump.
    device_writes = 100;
    const JsonValue redump = obstest::parseJson(reg.dumpJson());
    EXPECT_EQ(redump.at("nvm.writes").number, 100.0);
}

TEST(StatRegistry, ResetZeroesGroupsAndHistogramsInPlace)
{
    obs::StatRegistry reg;
    StatGroup g;
    g.inc("hits", 5);
    Histogram h(1.0, 100.0, 8);
    h.add(42.0);
    std::uint64_t probe = 1234;
    reg.addGroup("mee.mcache", &g);
    reg.addHistogram("mee.depth", &h);
    reg.addScalar("nvm.reads", [&] { return probe; });

    reg.reset();

    // Matches StatGroup::reset — names survive at value zero — and
    // the components themselves were reset (non-owning, in place).
    EXPECT_EQ(g.get("hits"), 0u);
    EXPECT_EQ(h.count(), 0u);

    const JsonValue doc = obstest::parseJson(reg.dumpJson());
    EXPECT_EQ(doc.at("mee.mcache.hits").number, 0.0);
    EXPECT_EQ(doc.at("mee.depth").at("count").number, 0.0);
    // Scalar probes are views; reset must not touch the component.
    EXPECT_EQ(doc.at("nvm.reads").number, 1234.0);
}

TEST(StatRegistry, SweepSnapshotsAreThreadCountInvariant)
{
    std::vector<sweep::Job> jobs;
    for (mee::Protocol p :
         {mee::Protocol::Leaf, mee::Protocol::Amnt}) {
        sim::WorkloadConfig w = sim::parsecPreset("bodytrack");
        w.footprintPages = 256;
        sweep::Job job;
        job.config = sim::SystemConfig::singleProgram(p);
        job.processes = {w};
        job.instructions = 10000;
        job.warmup = 2000;
        jobs.push_back(std::move(job));
    }

    const std::vector<sweep::Outcome> serial = sweep::run(jobs, 1);
    ASSERT_EQ(serial.size(), jobs.size());
    for (const auto &o : serial) {
        ASSERT_FALSE(o.statsJson.empty());
        // Snapshots are well-formed JSON with the federated paths.
        JsonValue doc;
        ASSERT_NO_THROW(doc = obstest::parseJson(o.statsJson));
        EXPECT_TRUE(doc.has("nvm.writes"));
        EXPECT_TRUE(doc.has("core0.mem_reads"));
        EXPECT_TRUE(doc.has("mee.persist_chain_depth"));
    }

    for (unsigned threads : {2u, 4u}) {
        const std::vector<sweep::Outcome> parallel =
            sweep::run(jobs, threads);
        ASSERT_EQ(parallel.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_EQ(serial[i].statsJson, parallel[i].statsJson)
                << "job " << i << " at " << threads << " threads";
        }
    }
}

} // namespace
