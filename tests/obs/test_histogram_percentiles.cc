/**
 * Histogram percentile queries checked against a sorted-reference
 * oracle: for nearest-rank percentile p over N samples the true
 * answer is sorted[k-1] with k = max(1, ceil(p/100 * N)), and the
 * histogram — which answers at bin granularity — must return exactly
 * quantize(sorted[k-1]) for both Linear and Log scales, with
 * out-of-range samples resolved to the lo/hi edges. Randomized over
 * tens of thousands of samples plus the degenerate edge cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace amnt;

namespace
{

const double kPercentiles[] = {0.5,  1.0,  10.0, 25.0, 50.0,
                               75.0, 90.0, 95.0, 99.0, 99.9,
                               100.0};

/** Nearest-rank oracle: the percentile in the quantized domain. */
double
oracle(const Histogram &h, std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    const auto k = static_cast<std::size_t>(
        std::max(1.0, std::ceil(p / 100.0 * n)));
    return h.quantize(sorted[k - 1]);
}

void
expectMatchesOracle(const Histogram &h,
                    const std::vector<double> &samples)
{
    for (double p : kPercentiles) {
        EXPECT_EQ(h.percentile(p), oracle(h, samples, p))
            << "p" << p << " over " << samples.size() << " samples";
    }
}

TEST(HistogramPercentiles, LogBinsMatchSortedOracle)
{
    // Long-tailed latency-style distribution spanning ~7 decades,
    // including mass below lo (underflow) and above hi (overflow).
    Histogram h(1.0, 1e6, 60, Histogram::Scale::Log);
    Rng rng(0xbeef);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.uniform() * 16.0 - 1.0);
        samples.push_back(v);
        h.add(v);
    }
    ASSERT_EQ(h.count(), samples.size());
    EXPECT_GT(h.overflow(), 0u);
    EXPECT_GT(h.underflow(), 0u);
    expectMatchesOracle(h, samples);
}

TEST(HistogramPercentiles, LinearBinsMatchSortedOracle)
{
    Histogram h(0.0, 100.0, 37, Histogram::Scale::Linear);
    Rng rng(0xcafe);
    std::vector<double> samples;
    for (int i = 0; i < 15000; ++i) {
        // Uniform over [-10, 110): both tails spill out of range.
        const double v = rng.uniform() * 120.0 - 10.0;
        samples.push_back(v);
        h.add(v);
    }
    EXPECT_GT(h.underflow(), 0u);
    EXPECT_GT(h.overflow(), 0u);
    expectMatchesOracle(h, samples);
}

TEST(HistogramPercentiles, WeightedSamplesMatchExpandedOracle)
{
    Histogram h(1.0, 4097.0, 24, Histogram::Scale::Log);
    Rng rng(0xd00d);
    std::vector<double> expanded;
    for (int i = 0; i < 2000; ++i) {
        const double v = 1.0 + rng.uniform() * 5000.0;
        const std::uint64_t w = 1 + rng.below(8);
        h.add(v, w);
        for (std::uint64_t j = 0; j < w; ++j)
            expanded.push_back(v);
    }
    ASSERT_EQ(h.count(), expanded.size());
    expectMatchesOracle(h, expanded);
}

TEST(HistogramPercentiles, EmptyHistogramReportsZero)
{
    Histogram h(1.0, 100.0, 8, Histogram::Scale::Log);
    EXPECT_EQ(h.count(), 0u);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), 0.0);
}

TEST(HistogramPercentiles, SingleSampleDominatesEveryPercentile)
{
    Histogram h(1.0, 1e4, 16, Histogram::Scale::Log);
    h.add(137.0);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), h.quantize(137.0));
}

TEST(HistogramPercentiles, AllOverflowResolvesToHi)
{
    Histogram h(1.0, 100.0, 8);
    for (int i = 0; i < 50; ++i)
        h.add(1000.0 + i);
    EXPECT_EQ(h.overflow(), 50u);
    EXPECT_EQ(h.count(), 50u);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), 100.0);
}

TEST(HistogramPercentiles, AllUnderflowResolvesToLo)
{
    Histogram h(10.0, 100.0, 8);
    for (int i = 0; i < 50; ++i)
        h.add(-static_cast<double>(i));
    EXPECT_EQ(h.underflow(), 50u);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), 10.0);
}

TEST(HistogramPercentiles, OutOfRangeStaysOutOfBins)
{
    // The regression the oracle suite pins down: out-of-range samples
    // used to clamp into the edge bins and skew tail percentiles.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 9; ++i)
        h.add(5.0);
    h.add(1e9);
    std::uint64_t binned = 0;
    for (std::uint64_t b : h.bins())
        binned += b;
    EXPECT_EQ(binned, 9u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.percentile(90.0), h.quantize(5.0));
    EXPECT_EQ(h.percentile(100.0), 10.0);
}

TEST(HistogramSummarySnapshot, MatchesDirectQueries)
{
    Histogram h(1.0, 1e5, 32, Histogram::Scale::Log);
    Rng rng(0xf00d);
    for (int i = 0; i < 5000; ++i)
        h.add(std::exp(rng.uniform() * 13.0 - 1.0));
    const HistogramSummary s = h.snapshot();
    EXPECT_EQ(s.count, h.count());
    EXPECT_EQ(s.mean, h.mean());
    EXPECT_EQ(s.p50, h.percentile(50.0));
    EXPECT_EQ(s.p90, h.percentile(90.0));
    EXPECT_EQ(s.p95, h.percentile(95.0));
    EXPECT_EQ(s.p99, h.percentile(99.0));
    EXPECT_EQ(s.underflow, h.underflow());
    EXPECT_EQ(s.overflow, h.overflow());
    // snapshot() is read-only: the histogram is untouched.
    EXPECT_EQ(h.count(), 5000u);
}

TEST(HistogramSummarySnapshot, SnapshotAndResetIsolatesPhases)
{
    // The campaign-phase regression: percentiles of a reused histogram
    // must come only from samples added since the last snapshot, or
    // phase-2 tails are polluted by phase-1 mass.
    Histogram h(1.0, 1e4, 24, Histogram::Scale::Log);
    for (int i = 0; i < 1000; ++i)
        h.add(10.0); // phase 1: tight cluster at 10
    h.add(-1.0);
    h.add(1e9);
    const HistogramSummary one = h.snapshotAndReset();
    EXPECT_EQ(one.count, 1002u);
    EXPECT_EQ(one.p50, h.quantize(10.0));
    EXPECT_EQ(one.underflow, 1u);
    EXPECT_EQ(one.overflow, 1u);

    // The reset half: geometry kept, all counts forgotten.
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);

    for (int i = 0; i < 100; ++i)
        h.add(5000.0); // phase 2: far from phase 1's cluster
    const HistogramSummary two = h.snapshotAndReset();
    EXPECT_EQ(two.count, 100u);
    EXPECT_EQ(two.p50, h.quantize(5000.0));
    EXPECT_EQ(two.p99, h.quantize(5000.0))
        << "phase-1 samples leaked into phase-2 percentiles";
    EXPECT_EQ(two.underflow, 0u);
    EXPECT_EQ(two.overflow, 0u);
}

TEST(HistogramPercentiles, ResetForgetsSamplesKeepsGeometry)
{
    Histogram h(1.0, 1e3, 12, Histogram::Scale::Log);
    h.add(-5.0);
    h.add(50.0);
    h.add(5e6);
    ASSERT_EQ(h.count(), 3u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    h.add(50.0);
    EXPECT_EQ(h.percentile(50.0), h.quantize(50.0));
}

} // namespace
