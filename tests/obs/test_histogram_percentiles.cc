/**
 * Histogram percentile queries checked against a sorted-reference
 * oracle: for nearest-rank percentile p over N samples the true
 * answer is sorted[k-1] with k = max(1, ceil(p/100 * N)), and the
 * histogram — which answers at bin granularity — must return exactly
 * quantize(sorted[k-1]) for both Linear and Log scales, with
 * out-of-range samples resolved to the lo/hi edges. Randomized over
 * tens of thousands of samples plus the degenerate edge cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace amnt;

namespace
{

const double kPercentiles[] = {0.5,  1.0,  10.0, 25.0, 50.0,
                               75.0, 90.0, 95.0, 99.0, 99.9,
                               100.0};

/** Nearest-rank oracle: the percentile in the quantized domain. */
double
oracle(const Histogram &h, std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    const auto k = static_cast<std::size_t>(
        std::max(1.0, std::ceil(p / 100.0 * n)));
    return h.quantize(sorted[k - 1]);
}

void
expectMatchesOracle(const Histogram &h,
                    const std::vector<double> &samples)
{
    for (double p : kPercentiles) {
        EXPECT_EQ(h.percentile(p), oracle(h, samples, p))
            << "p" << p << " over " << samples.size() << " samples";
    }
}

TEST(HistogramPercentiles, LogBinsMatchSortedOracle)
{
    // Long-tailed latency-style distribution spanning ~7 decades,
    // including mass below lo (underflow) and above hi (overflow).
    Histogram h(1.0, 1e6, 60, Histogram::Scale::Log);
    Rng rng(0xbeef);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.uniform() * 16.0 - 1.0);
        samples.push_back(v);
        h.add(v);
    }
    ASSERT_EQ(h.count(), samples.size());
    EXPECT_GT(h.overflow(), 0u);
    EXPECT_GT(h.underflow(), 0u);
    expectMatchesOracle(h, samples);
}

TEST(HistogramPercentiles, LinearBinsMatchSortedOracle)
{
    Histogram h(0.0, 100.0, 37, Histogram::Scale::Linear);
    Rng rng(0xcafe);
    std::vector<double> samples;
    for (int i = 0; i < 15000; ++i) {
        // Uniform over [-10, 110): both tails spill out of range.
        const double v = rng.uniform() * 120.0 - 10.0;
        samples.push_back(v);
        h.add(v);
    }
    EXPECT_GT(h.underflow(), 0u);
    EXPECT_GT(h.overflow(), 0u);
    expectMatchesOracle(h, samples);
}

TEST(HistogramPercentiles, WeightedSamplesMatchExpandedOracle)
{
    Histogram h(1.0, 4097.0, 24, Histogram::Scale::Log);
    Rng rng(0xd00d);
    std::vector<double> expanded;
    for (int i = 0; i < 2000; ++i) {
        const double v = 1.0 + rng.uniform() * 5000.0;
        const std::uint64_t w = 1 + rng.below(8);
        h.add(v, w);
        for (std::uint64_t j = 0; j < w; ++j)
            expanded.push_back(v);
    }
    ASSERT_EQ(h.count(), expanded.size());
    expectMatchesOracle(h, expanded);
}

TEST(HistogramPercentiles, EmptyHistogramReportsZero)
{
    Histogram h(1.0, 100.0, 8, Histogram::Scale::Log);
    EXPECT_EQ(h.count(), 0u);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), 0.0);
}

TEST(HistogramPercentiles, SingleSampleDominatesEveryPercentile)
{
    Histogram h(1.0, 1e4, 16, Histogram::Scale::Log);
    h.add(137.0);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), h.quantize(137.0));
}

TEST(HistogramPercentiles, AllOverflowResolvesToHi)
{
    Histogram h(1.0, 100.0, 8);
    for (int i = 0; i < 50; ++i)
        h.add(1000.0 + i);
    EXPECT_EQ(h.overflow(), 50u);
    EXPECT_EQ(h.count(), 50u);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), 100.0);
}

TEST(HistogramPercentiles, AllUnderflowResolvesToLo)
{
    Histogram h(10.0, 100.0, 8);
    for (int i = 0; i < 50; ++i)
        h.add(-static_cast<double>(i));
    EXPECT_EQ(h.underflow(), 50u);
    for (double p : kPercentiles)
        EXPECT_EQ(h.percentile(p), 10.0);
}

TEST(HistogramPercentiles, OutOfRangeStaysOutOfBins)
{
    // The regression the oracle suite pins down: out-of-range samples
    // used to clamp into the edge bins and skew tail percentiles.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 9; ++i)
        h.add(5.0);
    h.add(1e9);
    std::uint64_t binned = 0;
    for (std::uint64_t b : h.bins())
        binned += b;
    EXPECT_EQ(binned, 9u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.percentile(90.0), h.quantize(5.0));
    EXPECT_EQ(h.percentile(100.0), 10.0);
}

TEST(HistogramPercentiles, ResetForgetsSamplesKeepsGeometry)
{
    Histogram h(1.0, 1e3, 12, Histogram::Scale::Log);
    h.add(-5.0);
    h.add(50.0);
    h.add(5e6);
    ASSERT_EQ(h.count(), 3u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    h.add(50.0);
    EXPECT_EQ(h.percentile(50.0), h.quantize(50.0));
}

} // namespace
