#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace amnt::cache
{
namespace
{

struct Harness
{
    Cache l1{{"l1", 512, 2, 1}};
    Cache l2{{"l2", 2048, 4, 10}};
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    CacheHierarchy h{
        {&l1, &l2},
        [this](Addr) {
            ++memReads;
            return Cycle(100);
        },
        [this](Addr) {
            ++memWrites;
            return Cycle(100);
        }};
};

TEST(Hierarchy, MissGoesToMemoryThenHitsL1)
{
    Harness x;
    const Cycle miss = x.h.access(0, AccessType::Read);
    EXPECT_EQ(x.memReads, 1ull);
    EXPECT_GE(miss, 100ull);
    const Cycle hit = x.h.access(0, AccessType::Read);
    EXPECT_EQ(x.memReads, 1ull);
    EXPECT_EQ(hit, 1ull); // L1 hit latency
}

TEST(Hierarchy, InclusiveFill)
{
    Harness x;
    x.h.access(0, AccessType::Read);
    EXPECT_TRUE(x.l1.contains(0));
    EXPECT_TRUE(x.l2.contains(0));
}

TEST(Hierarchy, WriteMarksL1Dirty)
{
    Harness x;
    x.h.access(0, AccessType::Write);
    EXPECT_TRUE(x.l1.isDirty(0));
}

TEST(Hierarchy, DirtyBlockReachesMemoryOnlyAfterFullEviction)
{
    Harness x;
    x.h.access(0, AccessType::Write);
    // Thrash both levels so block 0 is pushed all the way out.
    // L1: 4 sets, L2: 8 sets; walk many conflicting blocks.
    for (int i = 1; i < 64; ++i)
        x.h.access(static_cast<Addr>(i) * 64 * 8, AccessType::Read);
    EXPECT_EQ(x.memWrites, 1ull);
}

TEST(Hierarchy, CleanEvictionsProduceNoMemoryWrites)
{
    Harness x;
    for (int i = 0; i < 64; ++i)
        x.h.access(static_cast<Addr>(i) * 64 * 8, AccessType::Read);
    EXPECT_EQ(x.memWrites, 0ull);
}

TEST(Hierarchy, L2HitRefillsL1)
{
    Harness x;
    x.h.access(0, AccessType::Read);
    // Evict from L1 only (L1 has 4 sets x 2 ways; same-set blocks).
    x.h.access(4 * 64, AccessType::Read);
    x.h.access(8 * 64, AccessType::Read);
    EXPECT_FALSE(x.l1.contains(0));
    const std::uint64_t reads_before = x.memReads;
    x.h.access(0, AccessType::Read); // should hit in L2
    EXPECT_EQ(x.memReads, reads_before);
    EXPECT_TRUE(x.l1.contains(0));
}

TEST(Hierarchy, InvalidateAllDropsDirtyData)
{
    Harness x;
    x.h.access(0, AccessType::Write);
    x.h.invalidateAll();
    EXPECT_FALSE(x.l1.contains(0));
    EXPECT_EQ(x.memWrites, 0ull); // power loss: nothing written back
}

TEST(Hierarchy, CountsMemoryTraffic)
{
    Harness x;
    x.h.access(0, AccessType::Read);
    x.h.access(64 * 1024, AccessType::Read);
    EXPECT_EQ(x.h.memReads(), 2ull);
}

TEST(Hierarchy, SharedLlcBetweenTwoPaths)
{
    Cache l1a{{"l1a", 512, 2, 1}};
    Cache l1b{{"l1b", 512, 2, 1}};
    Cache llc{{"llc", 4096, 4, 10}};
    std::uint64_t reads = 0;
    auto rd = [&reads](Addr) {
        ++reads;
        return Cycle(100);
    };
    auto wr = [](Addr) { return Cycle(100); };
    CacheHierarchy a({&l1a, &llc}, rd, wr);
    CacheHierarchy b({&l1b, &llc}, rd, wr);

    a.access(0, AccessType::Read);
    EXPECT_EQ(reads, 1ull);
    b.access(0, AccessType::Read); // hits shared LLC
    EXPECT_EQ(reads, 1ull);
    EXPECT_TRUE(l1b.contains(0));
}

} // namespace
} // namespace amnt::cache
