#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace amnt::cache
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways of 64 B lines.
    return {"test", 512, 2, 1};
}

TEST(Cache, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x0, false));
    c.insert(0x0, false);
    EXPECT_TRUE(c.access(0x0, false));
    EXPECT_EQ(c.stats().get("hits"), 1ull);
    EXPECT_EQ(c.stats().get("misses"), 1ull);
}

TEST(Cache, BlockGranularity)
{
    Cache c(smallCache());
    c.insert(0x0, false);
    EXPECT_TRUE(c.access(0x3f, false)); // same 64 B block
    EXPECT_FALSE(c.access(0x40, false));
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Set index = block % 4; blocks 0, 4, 8 all map to set 0.
    c.insert(0 * 64, false);
    c.insert(4 * 64, false);
    c.access(0 * 64, false); // make block 0 most recent
    const AccessResult res = c.insert(8 * 64, false);
    EXPECT_TRUE(res.evictedValid);
    EXPECT_EQ(res.evictedAddr, 4ull * 64); // LRU victim
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(4 * 64));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(smallCache());
    c.insert(0 * 64, true);
    c.insert(4 * 64, false);
    const AccessResult res = c.insert(8 * 64, false);
    EXPECT_TRUE(res.evictedValid);
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedAddr, 0ull);
    EXPECT_EQ(c.stats().get("dirty_evictions"), 1ull);
}

TEST(Cache, AccessCanSetDirty)
{
    Cache c(smallCache());
    c.insert(0, false);
    EXPECT_FALSE(c.isDirty(0));
    c.access(0, true);
    EXPECT_TRUE(c.isDirty(0));
    c.clean(0);
    EXPECT_FALSE(c.isDirty(0));
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(smallCache());
    c.insert(0, true);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.invalidate(0));
}

TEST(Cache, InvalidateAll)
{
    Cache c(smallCache());
    c.insert(0, true);
    c.insert(64, false);
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(64));
}

TEST(Cache, ForEachLineAndCleanIf)
{
    Cache c(smallCache());
    c.insert(0 * 64, true);
    c.insert(1 * 64, true);
    c.insert(2 * 64, false);
    int dirty = 0, valid = 0;
    c.forEachLine([&](Addr, bool d) {
        ++valid;
        dirty += d;
    });
    EXPECT_EQ(valid, 3);
    EXPECT_EQ(dirty, 2);

    const std::uint64_t cleaned =
        c.cleanIf([](Addr a) { return a == 0; });
    EXPECT_EQ(cleaned, 1ull);
    EXPECT_FALSE(c.isDirty(0));
    EXPECT_TRUE(c.isDirty(64));
}

TEST(Cache, HitRate)
{
    Cache c(smallCache());
    c.insert(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(64, false); // miss
    EXPECT_DOUBLE_EQ(c.hitRate(), 2.0 / 3.0);
}

TEST(Cache, FillsUseInvalidWaysFirst)
{
    Cache c(smallCache());
    c.insert(0 * 64, false);
    const AccessResult res = c.insert(4 * 64, false);
    EXPECT_FALSE(res.evictedValid);
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_TRUE(c.contains(4 * 64));
}

} // namespace
} // namespace amnt::cache
