#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "mem/nvm_device.hh"

namespace amnt
{
namespace
{

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%% literal"), "% literal");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Log, StrfmtLongStrings)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s!", big.c_str()).size(), 5001u);
}

using LogDeath = ::testing::Test;

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LogDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LogDeath, CacheRejectsNonPowerOfTwoSets)
{
    // 3 sets of 2 ways x 64 B = 384 B: not a power-of-two set count.
    cache::CacheConfig cfg{"bad", 384, 2, 1};
    EXPECT_DEATH({ cache::Cache c(cfg); }, "not a power of two");
}

TEST(LogDeath, CacheRejectsZeroSize)
{
    cache::CacheConfig cfg{"bad", 0, 2, 1};
    EXPECT_DEATH({ cache::Cache c(cfg); }, "zero size");
}

TEST(LogDeath, NvmRejectsOutOfRangeAccess)
{
    mem::NvmDevice nvm(1024);
    mem::Block b{};
    EXPECT_DEATH(nvm.readBlock(4096, b), "beyond capacity");
}

TEST(LogDeath, HistogramRejectsBadBounds)
{
    EXPECT_DEATH({ Histogram h(1.0, 1.0, 4); }, "hi > lo");
}

TEST(LogDeath, ZipfRejectsEmptyDomain)
{
    Rng rng(1);
    EXPECT_DEATH({ ZipfSampler z(0, 1.0); }, "n >= 1");
}

} // namespace
} // namespace amnt
