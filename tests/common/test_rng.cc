#include <gtest/gtest.h>

#include "common/rng.hh"

namespace amnt
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.below(17);
        EXPECT_LT(v, 17ull);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.below(8)];
    for (int count : seen)
        EXPECT_GT(count, 800); // roughly uniform
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Zipf, UniformWhenAlphaZero)
{
    Rng rng(3);
    ZipfSampler z(10, 0.0);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 20000; ++i)
        ++seen[z.sample(rng)];
    for (int count : seen) {
        EXPECT_GT(count, 1500);
        EXPECT_LT(count, 2500);
    }
}

TEST(Zipf, SkewPrefersLowRanks)
{
    Rng rng(5);
    ZipfSampler z(1000, 1.0);
    std::uint64_t top = 0, tail = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t r = z.sample(rng);
        if (r < 10)
            ++top;
        if (r >= 900)
            ++tail;
    }
    EXPECT_GT(top, tail * 5);
}

TEST(Zipf, SingleRank)
{
    Rng rng(1);
    ZipfSampler z(1, 1.2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0ull);
}

} // namespace
} // namespace amnt
