#include <gtest/gtest.h>

#include "common/stats.hh"

namespace amnt
{
namespace
{

TEST(StatGroup, IncrementAndGet)
{
    StatGroup s;
    EXPECT_EQ(s.get("missing"), 0ull);
    s.inc("hits");
    s.inc("hits", 4);
    EXPECT_EQ(s.get("hits"), 5ull);
    s.set("hits", 2);
    EXPECT_EQ(s.get("hits"), 2ull);
}

TEST(StatGroup, Ratio)
{
    StatGroup s;
    EXPECT_DOUBLE_EQ(s.ratio("hits", "misses"), 0.0);
    s.inc("hits", 3);
    s.inc("misses", 1);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "misses"), 0.75);
}

TEST(StatGroup, ResetKeepsNames)
{
    StatGroup s;
    s.inc("a", 10);
    s.reset();
    EXPECT_EQ(s.get("a"), 0ull);
    EXPECT_EQ(s.all().count("a"), 1ull);
}

TEST(StatGroup, DumpSortedAndPrefixed)
{
    StatGroup s;
    s.inc("b", 2);
    s.inc("a", 1);
    EXPECT_EQ(s.dump("x."), "x.a 1\nx.b 2\n");
}

TEST(Histogram, BinningAndOutOfRangeAccounting)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-3.0);  // below lo: counted as underflow, not bin 0
    h.add(100.0); // at/above hi: counted as overflow, not last bin
    EXPECT_EQ(h.count(), 4ull);
    EXPECT_EQ(h.bins()[0], 1ull);
    EXPECT_EQ(h.bins()[9], 1ull);
    EXPECT_EQ(h.underflow(), 1ull);
    EXPECT_EQ(h.overflow(), 1ull);
}

TEST(Histogram, MeanAndWeights)
{
    Histogram h(0.0, 100.0, 4);
    h.add(10.0, 3);
    h.add(50.0, 1);
    EXPECT_EQ(h.count(), 4ull);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.binLo(1), 25.0);
}

} // namespace
} // namespace amnt
