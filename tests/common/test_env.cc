/**
 * envU64 tests: well-formed values parse, and every malformed shape
 * that std::strtoull would silently mangle (suffixed units, signs,
 * empty strings, overflow) falls back to the caller's default instead
 * of quietly truncating a benchmark to a handful of instructions.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace amnt;

namespace
{

constexpr const char *kVar = "AMNT_TEST_ENV_U64";

class EnvU64 : public ::testing::Test
{
  protected:
    void TearDown() override { ::unsetenv(kVar); }

    void set(const char *value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvU64, UnsetReturnsFallback)
{
    ::unsetenv(kVar);
    EXPECT_EQ(envU64(kVar, 42), 42u);
}

TEST_F(EnvU64, ParsesPlainDecimal)
{
    set("2000000");
    EXPECT_EQ(envU64(kVar, 1), 2'000'000u);
    set("0");
    EXPECT_EQ(envU64(kVar, 1), 0u);
    set("18446744073709551615"); // 2^64 - 1
    EXPECT_EQ(envU64(kVar, 1), ~0ull);
}

TEST_F(EnvU64, AcceptsSurroundingSpaces)
{
    set("  123");
    EXPECT_EQ(envU64(kVar, 1), 123u);
}

TEST_F(EnvU64, RejectsUnitSuffix)
{
    set("2m"); // the motivating typo: 2m must not become 2
    EXPECT_EQ(envU64(kVar, 777), 777u);
    set("1e6");
    EXPECT_EQ(envU64(kVar, 777), 777u);
}

TEST_F(EnvU64, RejectsEmptyAndGarbage)
{
    set("");
    EXPECT_EQ(envU64(kVar, 5), 5u);
    set("   ");
    EXPECT_EQ(envU64(kVar, 5), 5u);
    set("abc");
    EXPECT_EQ(envU64(kVar, 5), 5u);
}

TEST_F(EnvU64, RejectsSigns)
{
    set("-1"); // strtoull would wrap this to 2^64-1
    EXPECT_EQ(envU64(kVar, 9), 9u);
    set("+4");
    EXPECT_EQ(envU64(kVar, 9), 9u);
}

TEST_F(EnvU64, RejectsOverflow)
{
    set("18446744073709551616"); // 2^64
    EXPECT_EQ(envU64(kVar, 11), 11u);
    set("99999999999999999999999999");
    EXPECT_EQ(envU64(kVar, 11), 11u);
}

} // namespace
