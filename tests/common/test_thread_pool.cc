/**
 * ThreadPool tests: every submitted task runs exactly once, wait()
 * really drains, work submitted to one queue is stolen by idle
 * workers, and the pool survives reuse across multiple wait() rounds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

using namespace amnt;

namespace
{

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    constexpr int kTasks = 1000;
    std::vector<std::atomic<int>> ran(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&ran, i] { ran[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, StealsFromBusyWorkers)
{
    // One long task occupies its queue's owner; the short tasks
    // round-robined behind it must be stolen and finish long before
    // the sleeper does, or wait() would take ~#tasks * sleep.
    ThreadPool pool(4);
    std::atomic<int> done{0};
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 64; ++i) {
        pool.submit([&done, i] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            done.fetch_add(1);
        });
    }
    pool.wait();
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(done.load(), 64);
    // 16 sleepers x 20 ms spread over 4 workers ~ 80-320 ms; a
    // serial execution of the sleepers alone would be 320 ms+. Keep a
    // wide margin for slow CI machines: the point is that the 48
    // non-sleeping tasks did not serialize behind sleepers.
    EXPECT_LT(secs, 5.0);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

} // namespace
