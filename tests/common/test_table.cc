#include <gtest/gtest.h>

#include "common/table.hh"

namespace amnt
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, BigFormatting)
{
    EXPECT_EQ(TextTable::big(0), "0");
    EXPECT_EQ(TextTable::big(999), "999");
    EXPECT_EQ(TextTable::big(1000), "1,000");
    EXPECT_EQ(TextTable::big(1234567), "1,234,567");
}

TEST(TextTable, PctFormatting)
{
    EXPECT_EQ(TextTable::pct(0.125, 1), "12.5%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, RowsWithoutHeader)
{
    TextTable t;
    t.row({"x", "y"});
    EXPECT_EQ(t.render(), "x  y\n");
}

} // namespace
} // namespace amnt
