/**
 * FlatMap unit tests: parity with std::unordered_map across insert,
 * find, erase (backward-shift deletion), rehash, and iteration, plus
 * the edge cases open addressing gets wrong when the probe-chain
 * bookkeeping is off (erase in long collision runs, wrap-around at
 * the table end).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/types.hh"

using namespace amnt;

namespace
{

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_FALSE(map.contains(0));
    EXPECT_EQ(map.find(42), map.end());
}

TEST(FlatMap, InsertAndFind)
{
    FlatMap<std::uint64_t, int> map;
    map[5] = 50;
    map[9] = 90;
    ASSERT_TRUE(map.contains(5));
    ASSERT_TRUE(map.contains(9));
    EXPECT_EQ(map.find(5)->second, 50);
    EXPECT_EQ(map.find(9)->second, 90);
    EXPECT_FALSE(map.contains(7));
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, TryEmplaceReportsFreshness)
{
    FlatMap<std::uint64_t, int> map;
    auto [it1, fresh1] = map.try_emplace(3);
    EXPECT_TRUE(fresh1);
    EXPECT_EQ(it1->second, 0); // value-initialized
    it1->second = 33;
    auto [it2, fresh2] = map.try_emplace(3);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(it2->second, 33);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, EraseRemovesOnlyTarget)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 64; ++k)
        map[k * 64] = static_cast<int>(k);
    EXPECT_TRUE(map.erase(0));
    EXPECT_FALSE(map.erase(0));
    EXPECT_EQ(map.size(), 63u);
    for (std::uint64_t k = 1; k < 64; ++k) {
        ASSERT_TRUE(map.contains(k * 64));
        EXPECT_EQ(map.find(k * 64)->second, static_cast<int>(k));
    }
}

TEST(FlatMap, GrowthPreservesEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    // Push well past several rehash thresholds.
    for (std::uint64_t k = 0; k < 10'000; ++k)
        map[k * 0x40] = k ^ 0xabcd;
    EXPECT_EQ(map.size(), 10'000u);
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        auto it = map.find(k * 0x40);
        ASSERT_NE(it, map.end());
        EXPECT_EQ(it->second, k ^ 0xabcd);
    }
}

TEST(FlatMap, ClearEmptiesButStaysUsable)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map[k] = 1;
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(5));
    map[5] = 2;
    EXPECT_EQ(map.find(5)->second, 2);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t k = 1; k <= 200; ++k)
        map[k * kBlockSize] = k;
    std::uint64_t count = 0, sum = 0;
    for (const auto &kv : map) {
        ++count;
        sum += kv.second;
    }
    EXPECT_EQ(count, 200u);
    EXPECT_EQ(sum, 200u * 201u / 2);
}

/** Identity hash forces collision runs so backward-shift is covered. */
struct IdentityHash
{
    std::size_t
    operator()(std::uint64_t v) const
    {
        return static_cast<std::size_t>(v);
    }
};

TEST(FlatMap, BackwardShiftKeepsCollisionRunsReachable)
{
    // All keys land on nearby home slots: erasing in the middle of
    // the run must not orphan the tail entries.
    FlatMap<std::uint64_t, int, IdentityHash> map;
    const std::vector<std::uint64_t> keys = {16, 32, 48, 17, 33, 18};
    for (std::uint64_t k : keys)
        map[k] = static_cast<int>(k);
    EXPECT_TRUE(map.erase(32));
    for (std::uint64_t k : keys) {
        if (k == 32)
            continue;
        ASSERT_TRUE(map.contains(k)) << "lost key " << k;
        EXPECT_EQ(map.find(k)->second, static_cast<int>(k));
    }
}

TEST(FlatMap, RandomizedParityWithUnorderedMap)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(12345);

    for (int step = 0; step < 200'000; ++step) {
        // Block-aligned keys from a small space: plenty of erase hits
        // and re-inserts of previously deleted slots.
        const std::uint64_t key = rng.below(4096) * kBlockSize;
        switch (rng.below(4)) {
        case 0:
        case 1: { // insert / overwrite
            const std::uint64_t value = rng.next();
            map[key] = value;
            ref[key] = value;
            break;
        }
        case 2: { // erase
            EXPECT_EQ(map.erase(key), ref.erase(key) != 0);
            break;
        }
        default: { // lookup
            auto it = map.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(it != map.end(), rit != ref.end());
            if (rit != ref.end()) {
                ASSERT_EQ(it->second, rit->second);
            }
            break;
        }
        }
        ASSERT_EQ(map.size(), ref.size());
    }

    // Full-content comparison at the end, via iteration.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got(
        map.begin(), map.end());
    std::sort(got.begin(), got.end());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> want(
        ref.begin(), ref.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
}

} // namespace
