#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/types.hh"

namespace amnt
{
namespace
{

TEST(Bitops, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Bitops, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(Bitops, IpowAndCeilDiv)
{
    EXPECT_EQ(ipow(8, 0), 1ull);
    EXPECT_EQ(ipow(8, 7), 2097152ull);
    EXPECT_EQ(ceilDiv(10, 3), 4ull);
    EXPECT_EQ(ceilDiv(9, 3), 3ull);
}

TEST(Bitops, AlignUp)
{
    EXPECT_EQ(alignUp(0, 64), 0ull);
    EXPECT_EQ(alignUp(1, 64), 64ull);
    EXPECT_EQ(alignUp(64, 64), 64ull);
    EXPECT_EQ(alignUp(65, 4096), 4096ull);
}

TEST(Bitops, EndianRoundTrips)
{
    std::uint8_t buf[8];
    store64le(buf, 0x0123456789abcdefULL);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
    EXPECT_EQ(load64le(buf), 0x0123456789abcdefULL);

    store64be(buf, 0x0123456789abcdefULL);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0xef);

    store32be(buf, 0xdeadbeef);
    EXPECT_EQ(load32be(buf), 0xdeadbeefu);
}

TEST(Bitops, Rotations)
{
    EXPECT_EQ(rotl64(1, 1), 2ull);
    EXPECT_EQ(rotl64(0x8000000000000000ULL, 1), 1ull);
    EXPECT_EQ(rotr32(1, 1), 0x80000000u);
}

TEST(Types, AddressHelpers)
{
    EXPECT_EQ(blockOf(0), 0ull);
    EXPECT_EQ(blockOf(63), 0ull);
    EXPECT_EQ(blockOf(64), 1ull);
    EXPECT_EQ(pageOf(4095), 0ull);
    EXPECT_EQ(pageOf(4096), 1ull);
    EXPECT_EQ(blockAddr(5), 320ull);
    EXPECT_EQ(pageAddr(3), 12288ull);
    EXPECT_EQ(kBlocksPerPage, 64ull);
}

} // namespace
} // namespace amnt
