#include <gtest/gtest.h>

#include <set>

#include "sim/presets.hh"

namespace amnt::sim
{
namespace
{

TEST(Presets, AllParsecBenchmarksResolve)
{
    for (const auto &name : parsecBenchmarks()) {
        const WorkloadConfig w = parsecPreset(name);
        EXPECT_EQ(w.name, name);
        EXPECT_GT(w.footprintPages, 0ull);
        EXPECT_GT(w.memIntensity, 0.0);
        EXPECT_LE(w.memIntensity, 1.0);
        EXPECT_GT(w.writeFraction, 0.0);
        EXPECT_LT(w.writeFraction, 1.0);
    }
}

TEST(Presets, AllSpecBenchmarksResolve)
{
    for (const auto &name : specBenchmarks()) {
        const WorkloadConfig w = specPreset(name);
        EXPECT_EQ(w.name, name);
        EXPECT_GT(w.footprintPages, 0ull);
    }
}

TEST(Presets, MultiprogramPairsAreValidParsec)
{
    for (const auto &[a, b] : parsecMultiprogramPairs()) {
        EXPECT_NO_FATAL_FAILURE(parsecPreset(a));
        EXPECT_NO_FATAL_FAILURE(parsecPreset(b));
    }
    EXPECT_EQ(parsecMultiprogramPairs().size(), 3ull);
}

TEST(Presets, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &name : parsecBenchmarks())
        seeds.insert(parsecPreset(name).seed);
    EXPECT_EQ(seeds.size(), parsecBenchmarks().size());
}

TEST(Presets, CannealMatchesPaperCharacterization)
{
    // canneal: large footprint, poor read locality (bad metadata
    // cache behaviour) but spatially tight writes.
    const WorkloadConfig w = parsecPreset("canneal");
    EXPECT_GT(w.footprintPages, 200000ull);
    EXPECT_LT(w.readHotFraction, 0.2);
    EXPECT_GT(w.writeHotFraction, 0.7);
}

TEST(Presets, XzIsMostWriteIntensiveSpec)
{
    const double xz = specPreset("xz").memIntensity *
                      specPreset("xz").writeFraction;
    for (const auto &name : specBenchmarks()) {
        if (name == "xz")
            continue;
        const WorkloadConfig w = specPreset(name);
        EXPECT_LT(w.memIntensity * w.writeFraction, xz) << name;
    }
}

TEST(Presets, ReadDominatedBenchmarks)
{
    EXPECT_LT(specPreset("mcf").writeFraction, 0.1);
    EXPECT_LT(specPreset("cactuBSSN").writeFraction, 0.1);
}

} // namespace
} // namespace amnt::sim
