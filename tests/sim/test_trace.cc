#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/trace.hh"

namespace amnt::sim
{
namespace
{

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/amnt_trace_" + tag +
           ".bin";
}

WorkloadConfig
sourceConfig()
{
    WorkloadConfig w;
    w.footprintPages = 512;
    w.memIntensity = 0.5;
    w.writeFraction = 0.4;
    w.flushWriteFraction = 0.1;
    w.seed = 77;
    return w;
}

TEST(Trace, RecordReplayRoundTrip)
{
    const std::string path = tempTracePath("roundtrip");
    Workload source(sourceConfig());
    std::vector<MemRef> expected;
    {
        TraceWriter writer(path);
        for (int i = 0; i < 500; ++i) {
            const MemRef r = source.next();
            writer.append(r);
            expected.push_back(r);
        }
        EXPECT_EQ(writer.count(), 500ull);
    }
    TraceReader reader(path);
    MemRef got;
    for (const MemRef &want : expected) {
        ASSERT_TRUE(reader.next(got));
        EXPECT_EQ(got.vaddr, want.vaddr);
        EXPECT_EQ(got.type, want.type);
        EXPECT_EQ(got.flush, want.flush);
    }
    EXPECT_FALSE(reader.next(got));
    std::remove(path.c_str());
}

TEST(Trace, RewindRestartsStream)
{
    const std::string path = tempTracePath("rewind");
    Workload source(sourceConfig());
    recordTrace(source, 10, path);

    TraceReader reader(path);
    MemRef first;
    ASSERT_TRUE(reader.next(first));
    MemRef r;
    while (reader.next(r))
        ;
    reader.rewind();
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.vaddr, first.vaddr);
    std::remove(path.c_str());
}

TEST(Trace, WorkloadReplayMatchesGenerator)
{
    const std::string path = tempTracePath("replay");
    {
        Workload source(sourceConfig());
        recordTrace(source, 1000, path);
    }
    Workload source(sourceConfig());
    WorkloadConfig replay_cfg = sourceConfig();
    replay_cfg.traceFile = path;
    Workload replay(replay_cfg);
    for (int i = 0; i < 1000; ++i) {
        const MemRef a = source.next();
        const MemRef b = replay.next();
        ASSERT_EQ(a.vaddr, b.vaddr) << i;
        ASSERT_EQ(a.type, b.type) << i;
    }
    std::remove(path.c_str());
}

TEST(Trace, WorkloadReplayWrapsAround)
{
    const std::string path = tempTracePath("wrap");
    {
        Workload source(sourceConfig());
        recordTrace(source, 10, path);
    }
    WorkloadConfig cfg = sourceConfig();
    cfg.traceFile = path;
    Workload replay(cfg);
    std::vector<Addr> first_pass;
    for (int i = 0; i < 10; ++i)
        first_pass.push_back(replay.next().vaddr);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(replay.next().vaddr, first_pass[static_cast<std::size_t>(i)]);
    std::remove(path.c_str());
}

TEST(Trace, DrivesAFullSystem)
{
    const std::string path = tempTracePath("system");
    {
        Workload source(sourceConfig());
        recordTrace(source, 5000, path);
    }
    SystemConfig cfg = SystemConfig::singleProgram(mee::Protocol::Amnt);
    cfg.mee.dataBytes = 64ull << 20;
    System sys(cfg);
    WorkloadConfig w = sourceConfig();
    w.traceFile = path;
    sys.addProcess(w);
    const RunResult r = sys.run(20000);
    EXPECT_GT(r.dataAccesses, 0ull);
    EXPECT_EQ(sys.engine().violations(), 0ull);
    std::remove(path.c_str());
}

} // namespace
} // namespace amnt::sim
