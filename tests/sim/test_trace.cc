#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/traceio/reader.hh"
#include "sim/traceio/writer.hh"

namespace amnt::sim
{
namespace
{

using traceio::TraceReader;
using traceio::TraceRecord;
using traceio::TraceWriter;
using traceio::recordTrace;

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/amnt_trace_" + tag +
           ".bin";
}

WorkloadConfig
sourceConfig()
{
    WorkloadConfig w;
    w.footprintPages = 512;
    w.memIntensity = 0.5;
    w.writeFraction = 0.4;
    w.flushWriteFraction = 0.1;
    w.seed = 77;
    return w;
}

TEST(Trace, RecordReplayRoundTrip)
{
    const std::string path = tempTracePath("roundtrip");
    Workload source(sourceConfig());
    std::vector<MemRef> expected;
    {
        TraceWriter writer(path);
        for (int i = 0; i < 500; ++i) {
            const MemRef r = source.next();
            writer.append(r);
            expected.push_back(r);
        }
        EXPECT_EQ(writer.count(), 500ull);
    }
    TraceReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_TRUE(reader.timed());
    TraceRecord got;
    for (const MemRef &want : expected) {
        ASSERT_TRUE(reader.next(got));
        EXPECT_EQ(got.ref.vaddr, want.vaddr);
        EXPECT_EQ(got.ref.type, want.type);
        EXPECT_EQ(got.ref.flush, want.flush);
        EXPECT_EQ(got.gap, 1ull);
    }
    EXPECT_FALSE(reader.next(got));
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.recordsRead(), 500ull);
    std::remove(path.c_str());
}

TEST(Trace, RewindRestartsStream)
{
    const std::string path = tempTracePath("rewind");
    Workload source(sourceConfig());
    recordTrace(source, 10, path);

    TraceReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    TraceRecord first;
    ASSERT_TRUE(reader.next(first));
    TraceRecord r;
    while (reader.next(r))
        ;
    ASSERT_TRUE(reader.ok()) << reader.error();
    reader.rewind();
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.ref.vaddr, first.ref.vaddr);
    std::remove(path.c_str());
}

TEST(Trace, WorkloadReplayMatchesGenerator)
{
    const std::string path = tempTracePath("replay");
    {
        Workload source(sourceConfig());
        recordTrace(source, 1000, path);
    }
    Workload source(sourceConfig());
    WorkloadConfig replay_cfg = sourceConfig();
    replay_cfg.traceFile = path;
    Workload replay(replay_cfg);
    for (int i = 0; i < 1000; ++i) {
        const MemRef a = source.next();
        const MemRef b = replay.next();
        ASSERT_EQ(a.vaddr, b.vaddr) << i;
        ASSERT_EQ(a.type, b.type) << i;
    }
    std::remove(path.c_str());
}

TEST(Trace, WorkloadReplayWrapsAround)
{
    const std::string path = tempTracePath("wrap");
    {
        Workload source(sourceConfig());
        recordTrace(source, 10, path);
    }
    WorkloadConfig cfg = sourceConfig();
    cfg.traceFile = path;
    Workload replay(cfg);
    std::vector<Addr> first_pass;
    for (int i = 0; i < 10; ++i)
        first_pass.push_back(replay.next().vaddr);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(replay.next().vaddr,
                  first_pass[static_cast<std::size_t>(i)]);
    std::remove(path.c_str());
}

TEST(Trace, DeltaEncodingHandlesChurnAndGaps)
{
    const std::string path = tempTracePath("churn");
    {
        TraceWriter writer(path);
        MemRef a;
        a.vaddr = 0x1000;
        writer.append(a, 7);
        MemRef b;
        b.vaddr = 0x40; // negative delta
        b.type = AccessType::Write;
        b.flush = true;
        b.churnPage = true;
        b.churnVictim = 4242;
        writer.append(b, 123456789ull);
    }
    TraceReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    TraceRecord r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.ref.vaddr, 0x1000ull);
    EXPECT_EQ(r.gap, 7ull);
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.ref.vaddr, 0x40ull);
    EXPECT_EQ(r.gap, 123456789ull);
    EXPECT_EQ(r.ref.type, AccessType::Write);
    EXPECT_TRUE(r.ref.flush);
    EXPECT_TRUE(r.ref.churnPage);
    EXPECT_EQ(r.ref.churnVictim, 4242ull);
    EXPECT_FALSE(reader.next(r));
    EXPECT_TRUE(reader.ok()) << reader.error();
    std::remove(path.c_str());
}

TEST(Trace, DrivesAFullSystem)
{
    const std::string path = tempTracePath("system");
    {
        Workload source(sourceConfig());
        recordTrace(source, 5000, path);
    }
    SystemConfig cfg = SystemConfig::singleProgram(mee::Protocol::Amnt);
    cfg.mee.dataBytes = 64ull << 20;
    System sys(cfg);
    WorkloadConfig w = sourceConfig();
    w.traceFile = path;
    sys.addProcess(w);
    const RunResult r = sys.run(20000);
    EXPECT_GT(r.dataAccesses, 0ull);
    EXPECT_EQ(sys.engine().violations(), 0ull);
    std::remove(path.c_str());
}

} // namespace
} // namespace amnt::sim
