#include <gtest/gtest.h>

#include <unordered_map>

#include "sim/workload.hh"

namespace amnt::sim
{
namespace
{

WorkloadConfig
baseConfig()
{
    WorkloadConfig w;
    w.footprintPages = 1000;
    w.memIntensity = 0.5;
    w.writeFraction = 0.3;
    w.hotPagesFraction = 0.05;
    w.readHotFraction = 0.8;
    w.writeHotFraction = 0.8;
    w.zipfAlpha = 0.9;
    w.streamFraction = 0.0;
    w.seed = 1;
    return w;
}

TEST(Workload, Deterministic)
{
    Workload a(baseConfig()), b(baseConfig());
    for (int i = 0; i < 1000; ++i) {
        const MemRef ra = a.next();
        const MemRef rb = b.next();
        EXPECT_EQ(ra.vaddr, rb.vaddr);
        EXPECT_EQ(ra.type, rb.type);
    }
}

TEST(Workload, AddressesWithinFootprint)
{
    Workload w(baseConfig());
    for (int i = 0; i < 5000; ++i) {
        const MemRef r = w.next();
        EXPECT_LT(pageOf(r.vaddr), 1000ull);
        EXPECT_EQ(r.vaddr % kBlockSize, 0ull);
    }
}

TEST(Workload, WriteFractionApproximatelyHonored)
{
    Workload w(baseConfig());
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += w.next().type == AccessType::Write;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.02);
}

TEST(Workload, HotClusterDominates)
{
    Workload w(baseConfig());
    const std::uint64_t hot_pages = 50; // 5% of 1000
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hot += pageOf(w.next().vaddr) < hot_pages;
    EXPECT_GT(hot, n / 2);
}

TEST(Workload, StreamingWalksSequentiallyByBlock)
{
    WorkloadConfig cfg = baseConfig();
    cfg.streamFraction = 1.0;
    Workload w(cfg);
    Addr prev = w.next().vaddr;
    for (int i = 0; i < 200; ++i) {
        const Addr a = w.next().vaddr;
        EXPECT_EQ(a, (prev + kBlockSize) % (1000 * kPageSize));
        prev = a;
    }
}

TEST(Workload, ChurnEmitsVictims)
{
    WorkloadConfig cfg = baseConfig();
    cfg.churnEvery = 10;
    Workload w(cfg);
    int churns = 0;
    for (int i = 0; i < 100; ++i) {
        const MemRef r = w.next();
        if (r.churnPage) {
            ++churns;
            EXPECT_GE(r.churnVictim, 50ull) << "victims must be cold";
            EXPECT_LT(r.churnVictim, 1000ull);
        }
    }
    EXPECT_EQ(churns, 10);
}

TEST(Workload, FlushWritesHonorFraction)
{
    WorkloadConfig cfg = baseConfig();
    cfg.flushWriteFraction = 0.5;
    Workload w(cfg);
    int writes = 0, flushes = 0;
    for (int i = 0; i < 20000; ++i) {
        const MemRef r = w.next();
        if (r.type == AccessType::Write) {
            ++writes;
            flushes += r.flush;
        } else {
            EXPECT_FALSE(r.flush) << "reads never flush";
        }
    }
    EXPECT_NEAR(static_cast<double>(flushes) / writes, 0.5, 0.05);
}

TEST(Workload, SpatialRunsProduceConsecutiveBlocks)
{
    WorkloadConfig cfg = baseConfig();
    cfg.spatialRun = 0.9;
    Workload w(cfg);
    Addr prev = w.next().vaddr;
    int consecutive = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const Addr a = w.next().vaddr;
        consecutive += a == prev + kBlockSize;
        prev = a;
    }
    EXPECT_GT(consecutive, n / 2);
}

TEST(Workload, IntensityGate)
{
    Workload w(baseConfig());
    Rng rng(5);
    int issues = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        issues += w.issuesMemRef(rng);
    EXPECT_NEAR(static_cast<double>(issues) / n, 0.5, 0.02);
}

} // namespace
} // namespace amnt::sim
