/**
 * Round-trip determinism: recording a live run and replaying the
 * capture through a fresh system must reproduce a bit-identical
 * StatRegistry dump, for every protocol preset. Plus unit coverage
 * of the varint/zigzag encoding edges the format rests on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/protocol_registry.hh"
#include "sim/system.hh"
#include "sim/traceio/format.hh"
#include "sim/traceio/reader.hh"
#include "sim/traceio/writer.hh"

namespace amnt::sim
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return std::string(::testing::TempDir()) + "/amnt_rt_" + tag +
           ".trc";
}

// ------------------------------------------------------- varint edges

TEST(TraceVarint, EncodesEdgeValuesCanonically)
{
    const std::uint64_t values[] = {
        0,
        1,
        127,
        128,
        129,
        16383,
        16384,
        (1ull << 32) - 1,
        1ull << 32,
        (1ull << 56) - 1,
        1ull << 63,
        ~0ull, // 2^64 - 1
    };
    for (std::uint64_t v : values) {
        std::uint8_t buf[traceio::kMaxVarintBytes];
        const std::size_t n = traceio::putVarint(buf, v);
        ASSERT_GE(n, 1u);
        ASSERT_LE(n, traceio::kMaxVarintBytes);
        std::uint64_t back = 0;
        EXPECT_EQ(traceio::getVarint(buf, n, back), n) << v;
        EXPECT_EQ(back, v);
        // Truncated buffers must be rejected, not misread.
        if (n > 1) {
            std::uint64_t dummy;
            EXPECT_EQ(traceio::getVarint(buf, n - 1, dummy), 0u)
                << v;
        }
    }
}

TEST(TraceVarint, RejectsNonCanonicalEncodings)
{
    std::uint64_t out;
    // 0 encoded in two bytes (0x80 0x00): overlong.
    const std::uint8_t overlong0[] = {0x80, 0x00};
    EXPECT_EQ(traceio::getVarint(overlong0, 2, out), 0u);
    // 1 encoded in three bytes.
    const std::uint8_t overlong1[] = {0x81, 0x80, 0x00};
    EXPECT_EQ(traceio::getVarint(overlong1, 3, out), 0u);
    // 10th byte above 1 overflows 64 bits.
    const std::uint8_t overflow[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                     0xff, 0xff, 0xff, 0xff, 0x02};
    EXPECT_EQ(traceio::getVarint(overflow, 10, out), 0u);
    // 2^64-1 itself is fine (10th byte == 1).
    const std::uint8_t max[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                0xff, 0xff, 0xff, 0xff, 0x01};
    EXPECT_EQ(traceio::getVarint(max, 10, out), 10u);
    EXPECT_EQ(out, ~0ull);
    // Eleven continuation bytes: longer than any u64.
    const std::uint8_t toolong[] = {0x80, 0x80, 0x80, 0x80, 0x80,
                                    0x80, 0x80, 0x80, 0x80, 0x80,
                                    0x00};
    EXPECT_EQ(traceio::getVarint(toolong, 11, out), 0u);
}

TEST(TraceVarint, ZigzagRoundTripsExtremes)
{
    const std::int64_t values[] = {
        0,  1,  -1, 2,  -2, 63, -64, 64,
        std::int64_t{1} << 40,
        -(std::int64_t{1} << 40),
        INT64_MAX,
        INT64_MIN,
    };
    for (std::int64_t v : values)
        EXPECT_EQ(traceio::zigzagDecode(traceio::zigzagEncode(v)), v);
    // Small magnitudes encode small.
    EXPECT_EQ(traceio::zigzagEncode(0), 0ull);
    EXPECT_EQ(traceio::zigzagEncode(-1), 1ull);
    EXPECT_EQ(traceio::zigzagEncode(1), 2ull);
}

TEST(TraceVarint, NonMonotonicAddressDeltasRoundTrip)
{
    // A worst-case address walk: full-range jumps both directions.
    const std::string path = tempPath("nonmono");
    const Addr walk[] = {0,        ~0ull,       1,    ~0ull - 1,
                         1ull << 63, 0x40,      ~0ull, 0};
    {
        traceio::TraceWriter writer(path);
        for (Addr a : walk) {
            MemRef r;
            r.vaddr = a;
            writer.append(r, ~0ull); // max gap too
        }
    }
    traceio::TraceReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    traceio::TraceRecord rec;
    for (Addr a : walk) {
        ASSERT_TRUE(reader.next(rec)) << reader.error();
        EXPECT_EQ(rec.ref.vaddr, a);
        EXPECT_EQ(rec.gap, ~0ull);
    }
    EXPECT_FALSE(reader.next(rec));
    EXPECT_TRUE(reader.ok()) << reader.error();
    std::remove(path.c_str());
}

// -------------------------------------------- record/replay invariant

WorkloadConfig
busyWorkload()
{
    WorkloadConfig w;
    w.name = "rt";
    w.footprintPages = 768;
    w.memIntensity = 0.4;
    w.writeFraction = 0.35;
    w.flushWriteFraction = 0.1;
    w.churnEvery = 257; // exercise unmap/refault through the trace
    w.seed = 1234;
    return w;
}

/** Live run with recording on; returns the registry dump. */
std::string
liveDump(mee::Protocol p, const std::string &trace_path,
         std::uint64_t instr, std::uint64_t warmup)
{
    SystemConfig cfg = SystemConfig::singleProgram(p);
    cfg.mee.dataBytes = 64ull << 20;
    cfg.traceRecordPath = trace_path;
    System sys(cfg);
    sys.addProcess(busyWorkload());
    sys.run(instr, warmup);
    return sys.statsJson();
}

/** Replay of the capture through a fresh system; registry dump. */
std::string
replayDump(mee::Protocol p, const std::string &trace_path,
           std::uint64_t instr, std::uint64_t warmup)
{
    SystemConfig cfg = SystemConfig::singleProgram(p);
    cfg.mee.dataBytes = 64ull << 20;
    System sys(cfg);
    WorkloadConfig w = busyWorkload();
    w.traceFile = trace_path;
    sys.addProcess(w);
    sys.run(instr, warmup);
    return sys.statsJson();
}

TEST(TraceRoundTrip, ReplayReproducesRegistryDumpForEveryProtocol)
{
    constexpr std::uint64_t kInstr = 6000;
    constexpr std::uint64_t kWarmup = 1500;
    // Enrollment is registry-driven: every protocol, volatile
    // included, must replay to a bit-identical registry dump.
    for (mee::Protocol p : core::allProtocols()) {
        const std::string path = tempPath(
            std::string("proto_") + mee::protocolName(p));
        const std::string live =
            liveDump(p, path, kInstr, kWarmup);
        const std::string replay =
            replayDump(p, path, kInstr, kWarmup);
        EXPECT_EQ(live, replay)
            << "protocol " << mee::protocolName(p);
        std::remove(path.c_str());
    }
}

TEST(TraceRoundTrip, RecordingIsObservationOnly)
{
    // A run with the recorder on must be bit-identical to one with
    // it off — recording never perturbs the simulation.
    SystemConfig cfg =
        SystemConfig::singleProgram(mee::Protocol::Amnt);
    cfg.mee.dataBytes = 64ull << 20;
    System plain(cfg);
    plain.addProcess(busyWorkload());
    plain.run(4000, 1000);

    const std::string path = tempPath("observe");
    SystemConfig rec_cfg = cfg;
    rec_cfg.traceRecordPath = path;
    System recorded(rec_cfg);
    recorded.addProcess(busyWorkload());
    recorded.run(4000, 1000);

    EXPECT_EQ(plain.statsJson(), recorded.statsJson());
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, MultiCoreRecordReplayRoundTrips)
{
    constexpr std::uint64_t kInstr = 4000;
    constexpr std::uint64_t kWarmup = 1000;
    const std::string prefix = tempPath("mp");

    SystemConfig cfg =
        SystemConfig::multiProgram(mee::Protocol::Amnt);
    cfg.mee.dataBytes = 64ull << 20;

    WorkloadConfig w0 = busyWorkload();
    WorkloadConfig w1 = busyWorkload();
    w1.seed = 999;
    w1.writeFraction = 0.2;

    std::string live;
    {
        SystemConfig rec_cfg = cfg;
        rec_cfg.traceRecordPath = prefix;
        System sys(rec_cfg);
        sys.addProcess(w0);
        sys.addProcess(w1);
        sys.run(kInstr, kWarmup);
        live = sys.statsJson();
    }
    {
        System sys(cfg);
        WorkloadConfig r0 = w0;
        r0.traceFile = prefix + ".core0";
        WorkloadConfig r1 = w1;
        r1.traceFile = prefix + ".core1";
        sys.addProcess(r0);
        sys.addProcess(r1);
        sys.run(kInstr, kWarmup);
        EXPECT_EQ(live, sys.statsJson());
    }
    std::remove((prefix + ".core0").c_str());
    std::remove((prefix + ".core1").c_str());
}

TEST(TraceRoundTrip, ReplayOutlastingTraceWrapsAround)
{
    // Replaying longer than the recording wraps to the start instead
    // of starving the core.
    const std::string path = tempPath("wraplong");
    liveDump(mee::Protocol::Leaf, path, 2000, 0);
    SystemConfig cfg =
        SystemConfig::singleProgram(mee::Protocol::Leaf);
    cfg.mee.dataBytes = 64ull << 20;
    System sys(cfg);
    WorkloadConfig w = busyWorkload();
    w.traceFile = path;
    sys.addProcess(w);
    const RunResult r = sys.run(10000, 0);
    EXPECT_GT(r.dataAccesses, 0ull);
    EXPECT_EQ(sys.engine().violations(), 0ull);
    std::remove(path.c_str());
}

} // namespace
} // namespace amnt::sim
