/**
 * Statistical conformance of the five microbenchmark generators
 * (WorkloadKind): each produces the distribution its knobs promise —
 * Zipf exponent, write fraction, working-set footprint, and
 * reuse/locality structure — and every draw is deterministic in
 * WorkloadConfig::seed. All tests are seeded and exact-repeatable;
 * tolerances cover only finite-sample noise at the fixed seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/types.hh"
#include "sim/workload.hh"

namespace amnt::sim
{
namespace
{

WorkloadConfig
base(WorkloadKind kind, std::uint64_t pages)
{
    WorkloadConfig w;
    w.name = "stats";
    w.kind = kind;
    w.footprintPages = pages;
    w.writeFraction = 0.3;
    w.seed = 7;
    return w;
}

std::vector<MemRef>
draw(const WorkloadConfig &cfg, std::size_t n)
{
    Workload w(cfg);
    std::vector<MemRef> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(w.next());
    return out;
}

double
writeShare(const std::vector<MemRef> &refs)
{
    std::size_t writes = 0;
    for (const MemRef &r : refs)
        writes += r.type == AccessType::Write;
    return static_cast<double>(writes) /
           static_cast<double>(refs.size());
}

// ------------------------------------------------------ Zipf exponent

TEST(WorkloadStats, ZipfianFrequenciesFollowTheConfiguredExponent)
{
    WorkloadConfig cfg = base(WorkloadKind::Zipfian, 4096);
    cfg.zipfAlpha = 0.99;
    const auto refs = draw(cfg, 300'000);

    std::map<PageId, std::uint64_t> freq;
    for (const MemRef &r : refs)
        ++freq[pageOf(r.vaddr)];
    std::vector<std::uint64_t> counts;
    counts.reserve(freq.size());
    for (const auto &[page, n] : freq)
        counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    ASSERT_GE(counts.size(), 50u);

    // Least-squares slope of log(count) on log(rank+1) over the top
    // 50 ranks estimates -alpha.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    constexpr int kRanks = 50;
    for (int i = 0; i < kRanks; ++i) {
        const double x = std::log(static_cast<double>(i + 1));
        const double y = std::log(static_cast<double>(counts[i]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    const double slope = (kRanks * sxy - sx * sy) /
                         (kRanks * sxx - sx * sx);
    EXPECT_NEAR(slope, -cfg.zipfAlpha, 0.15);

    // Skew sanity: at alpha ~1, the most popular 10% of pages absorb
    // the majority of accesses.
    std::uint64_t top = 0;
    for (std::size_t i = 0; i < counts.size() / 10; ++i)
        top += counts[i];
    EXPECT_GT(static_cast<double>(top) /
                  static_cast<double>(refs.size()),
              0.5);
}

TEST(WorkloadStats, ZipfianAlphaZeroIsUniform)
{
    WorkloadConfig cfg = base(WorkloadKind::Zipfian, 512);
    cfg.zipfAlpha = 0.0;
    const auto refs = draw(cfg, 200'000);
    std::map<PageId, std::uint64_t> freq;
    for (const MemRef &r : refs)
        ++freq[pageOf(r.vaddr)];
    // Every page is hit, and no page is grossly over-represented.
    EXPECT_EQ(freq.size(), cfg.footprintPages);
    const double mean = static_cast<double>(refs.size()) /
                        static_cast<double>(cfg.footprintPages);
    for (const auto &[page, n] : freq)
        EXPECT_NEAR(static_cast<double>(n), mean, mean * 0.5);
}

// ----------------------------------------------------- write fraction

TEST(WorkloadStats, WriteFractionsMatchConfiguration)
{
    // GUPS is exact read-modify-write pairs: precisely half writes
    // over any even draw count, regardless of writeFraction.
    EXPECT_DOUBLE_EQ(
        writeShare(draw(base(WorkloadKind::Gups, 1024), 100'000)),
        0.5);

    for (WorkloadKind kind :
         {WorkloadKind::Zipfian, WorkloadKind::Stream,
          WorkloadKind::KeyValue, WorkloadKind::PointerChase}) {
        WorkloadConfig cfg = base(kind, 1024);
        const auto refs = draw(cfg, 100'000);
        EXPECT_NEAR(writeShare(refs), cfg.writeFraction, 0.02)
            << "kind " << static_cast<int>(kind);
    }
}

TEST(WorkloadStats, GupsPairsWriteBackTheBlockJustRead)
{
    const auto refs = draw(base(WorkloadKind::Gups, 2048), 50'000);
    for (std::size_t i = 0; i + 1 < refs.size(); i += 2) {
        ASSERT_EQ(refs[i].type, AccessType::Read);
        ASSERT_EQ(refs[i + 1].type, AccessType::Write);
        ASSERT_EQ(refs[i].vaddr, refs[i + 1].vaddr);
    }
}

// ------------------------------------------------- working-set extent

TEST(WorkloadStats, StreamSweepsTouchTheWholeFootprint)
{
    WorkloadConfig cfg = base(WorkloadKind::Stream, 64);
    cfg.writeFraction = 0.25;
    // 64 pages = 4096 blocks; 60k refs sweep both halves repeatedly.
    const auto refs = draw(cfg, 60'000);
    std::set<PageId> pages;
    const PageId half = cfg.footprintPages / 2;
    for (const MemRef &r : refs) {
        pages.insert(pageOf(r.vaddr));
        // Reads stay in the lower half, writes in the upper half.
        if (r.type == AccessType::Read)
            EXPECT_LT(pageOf(r.vaddr), half);
        else
            EXPECT_GE(pageOf(r.vaddr), half);
    }
    EXPECT_EQ(pages.size(), cfg.footprintPages);
}

TEST(WorkloadStats, GupsSpreadsUniformlyOverTheFootprint)
{
    WorkloadConfig cfg = base(WorkloadKind::Gups, 512);
    const auto refs = draw(cfg, 200'000);
    std::map<PageId, std::uint64_t> freq;
    for (const MemRef &r : refs)
        ++freq[pageOf(r.vaddr)];
    EXPECT_EQ(freq.size(), cfg.footprintPages);
    const double mean = static_cast<double>(refs.size()) /
                        static_cast<double>(cfg.footprintPages);
    for (const auto &[page, n] : freq)
        EXPECT_NEAR(static_cast<double>(n), mean, mean * 0.5);
}

TEST(WorkloadStats, PointerChaseVisitsTheFullPermutation)
{
    // 8 pages = 512 blocks, a power of two: the walk is a full-period
    // permutation, so one lap visits every block exactly once.
    WorkloadConfig cfg = base(WorkloadKind::PointerChase, 8);
    cfg.writeFraction = 0.0; // pure chase: every ref advances
    const std::uint64_t blocks =
        cfg.footprintPages * kBlocksPerPage;
    const auto refs = draw(cfg, blocks);
    std::set<Addr> seen;
    for (const MemRef &r : refs)
        seen.insert(r.vaddr);
    EXPECT_EQ(seen.size(), blocks);
}

// --------------------------------------------------- reuse / locality

TEST(WorkloadStats, StreamHasNoBlockReuseWithinOneSweep)
{
    WorkloadConfig cfg = base(WorkloadKind::Stream, 64);
    cfg.writeFraction = 0.0; // isolate the read sweep
    const std::uint64_t half_blocks =
        (cfg.footprintPages / 2) * kBlocksPerPage;
    const auto refs = draw(cfg, half_blocks);
    std::set<Addr> seen;
    for (const MemRef &r : refs)
        EXPECT_TRUE(seen.insert(r.vaddr).second)
            << "block revisited before the sweep wrapped";
}

TEST(WorkloadStats, KeyValueOpsAreSequentialBlockBursts)
{
    WorkloadConfig cfg = base(WorkloadKind::KeyValue, 1024);
    cfg.kvValueBlocks = 4;
    const auto refs = draw(cfg, 40'000);
    std::size_t sequential = 0;
    for (std::size_t i = 1; i < refs.size(); ++i)
        sequential += refs[i].vaddr == refs[i - 1].vaddr + kBlockSize;
    // 3 of every 4 transitions continue a value; op boundaries jump.
    EXPECT_NEAR(static_cast<double>(sequential) /
                    static_cast<double>(refs.size() - 1),
                0.75, 0.03);
}

TEST(WorkloadStats, PointerChaseHasNoSpatialStructure)
{
    WorkloadConfig cfg = base(WorkloadKind::PointerChase, 256);
    cfg.writeFraction = 0.0;
    const auto refs = draw(cfg, 50'000);
    std::size_t sequential = 0;
    for (std::size_t i = 1; i < refs.size(); ++i)
        sequential += refs[i].vaddr == refs[i - 1].vaddr + kBlockSize;
    // A scrambled walk has (almost) no next-block successors.
    EXPECT_LT(static_cast<double>(sequential) /
                  static_cast<double>(refs.size() - 1),
              0.05);
}

TEST(WorkloadStats, KeyValueFlushedPutsHonourTheFlushFraction)
{
    WorkloadConfig cfg = base(WorkloadKind::KeyValue, 1024);
    cfg.writeFraction = 0.4;
    cfg.flushWriteFraction = 1.0;
    const auto refs = draw(cfg, 40'000);
    for (const MemRef &r : refs) {
        if (r.type == AccessType::Write)
            EXPECT_TRUE(r.flush);
        else
            EXPECT_FALSE(r.flush);
    }
}

// -------------------------------------------------------- determinism

TEST(WorkloadStats, SameSeedSameStreamAcrossAllKinds)
{
    for (WorkloadKind kind :
         {WorkloadKind::Synthetic, WorkloadKind::Zipfian,
          WorkloadKind::Gups, WorkloadKind::Stream,
          WorkloadKind::KeyValue, WorkloadKind::PointerChase}) {
        WorkloadConfig cfg = base(kind, 256);
        cfg.churnEvery = 101;
        const auto a = draw(cfg, 5'000);
        const auto b = draw(cfg, 5'000);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].vaddr, b[i].vaddr)
                << "kind " << static_cast<int>(kind) << " ref " << i;
            ASSERT_EQ(a[i].type, b[i].type);
            ASSERT_EQ(a[i].flush, b[i].flush);
            ASSERT_EQ(a[i].churnPage, b[i].churnPage);
            ASSERT_EQ(a[i].churnVictim, b[i].churnVictim);
        }
    }
}

TEST(WorkloadStats, SeedChangesTheStream)
{
    for (WorkloadKind kind :
         {WorkloadKind::Zipfian, WorkloadKind::Gups,
          WorkloadKind::KeyValue, WorkloadKind::PointerChase}) {
        WorkloadConfig cfg = base(kind, 256);
        const auto a = draw(cfg, 2'000);
        cfg.seed = 8888;
        const auto b = draw(cfg, 2'000);
        std::size_t same = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            same += a[i].vaddr == b[i].vaddr;
        EXPECT_LT(same, a.size() / 2)
            << "kind " << static_cast<int>(kind);
    }
}

} // namespace
} // namespace amnt::sim
