#include <gtest/gtest.h>

#include "sim/system.hh"

namespace amnt::sim
{
namespace
{

WorkloadConfig
tinyWorkload(std::uint64_t seed = 1)
{
    WorkloadConfig w;
    w.name = "tiny";
    w.footprintPages = 512;
    w.memIntensity = 0.3;
    w.writeFraction = 0.3;
    w.hotPagesFraction = 0.1;
    w.seed = seed;
    return w;
}

SystemConfig
tinySystem(mee::Protocol p)
{
    SystemConfig cfg = SystemConfig::singleProgram(p);
    cfg.mee.dataBytes = 64ull << 20; // 64 MB
    cfg.mee.metaCache = {"mcache", 16 * 1024, 8, 2};
    // Small on-chip caches so write-backs reach the MEE even in
    // short test runs (the paper deliberately under-sizes caches to
    // stress the memory system, section 6).
    cfg.privateLevels = {
        {"l1d", 16 * 1024, 8, 2},
        {"l2", 64 * 1024, 8, 12},
    };
    return cfg;
}

TEST(System, RunsAndCountsInstructions)
{
    System sys(tinySystem(mee::Protocol::Volatile));
    sys.addProcess(tinyWorkload());
    const RunResult r = sys.run(20000);
    EXPECT_EQ(r.appInstructions, 20000ull);
    EXPECT_GT(r.cycles, 20000ull);
    EXPECT_GT(r.dataAccesses, 0ull);
    EXPECT_GT(r.pageFaults, 0ull);
}

TEST(System, DeterministicRuns)
{
    System a(tinySystem(mee::Protocol::Leaf));
    System b(tinySystem(mee::Protocol::Leaf));
    a.addProcess(tinyWorkload());
    b.addProcess(tinyWorkload());
    EXPECT_EQ(a.run(20000).cycles, b.run(20000).cycles);
}

TEST(System, ProtocolOrderingHolds)
{
    Cycle cycles[3];
    const mee::Protocol protos[3] = {mee::Protocol::Volatile,
                                     mee::Protocol::Leaf,
                                     mee::Protocol::Strict};
    for (int i = 0; i < 3; ++i) {
        System sys(tinySystem(protos[i]));
        WorkloadConfig w = tinyWorkload();
        w.memIntensity = 0.5;
        w.writeFraction = 0.4;
        sys.addProcess(w);
        cycles[i] = sys.run(30000).cycles;
    }
    EXPECT_LT(cycles[0], cycles[1]); // volatile < leaf
    EXPECT_LT(cycles[1], cycles[2]); // leaf < strict
}

TEST(System, MultiprogramRunsTwoCores)
{
    SystemConfig cfg = SystemConfig::multiProgram(mee::Protocol::Leaf);
    cfg.mee.dataBytes = 64ull << 20;
    System sys(cfg);
    sys.addProcess(tinyWorkload(1));
    sys.addProcess(tinyWorkload(2));
    const RunResult r = sys.run(10000);
    EXPECT_EQ(r.appInstructions, 20000ull);
}

TEST(System, AmntReportsSubtreeStats)
{
    SystemConfig cfg = tinySystem(mee::Protocol::Amnt);
    cfg.mee.amntSubtreeLevel = 2;
    System sys(cfg);
    ASSERT_NE(sys.amnt(), nullptr);
    WorkloadConfig w = tinyWorkload();
    w.writeFraction = 0.5;
    sys.addProcess(w);
    const RunResult r = sys.run(30000);
    EXPECT_GT(r.subtreeHitRate, 0.0);
    EXPECT_LE(r.subtreeHitRate, 1.0);
}

TEST(System, AmntPpUsesBiasedAllocatorAndChargesOs)
{
    SystemConfig cfg = tinySystem(mee::Protocol::Amnt);
    cfg.mee.amntSubtreeLevel = 2;
    cfg.amntpp = true;
    cfg.daemonEvery = 5000;
    System sys(cfg);
    WorkloadConfig w = tinyWorkload();
    w.churnEvery = 200;
    sys.addProcess(w);
    const RunResult r = sys.run(30000);
    EXPECT_GT(r.osInstructions, 0ull);
    auto *pp = dynamic_cast<os::AmntPpAllocator *>(&sys.allocator());
    ASSERT_NE(pp, nullptr);
    EXPECT_GT(pp->restructures(), 0ull);
}

TEST(System, AccessHistogramRecordsFrames)
{
    SystemConfig cfg = tinySystem(mee::Protocol::Volatile);
    cfg.recordAccessHistogram = true;
    System sys(cfg);
    sys.addProcess(tinyWorkload());
    sys.run(10000);
    EXPECT_FALSE(sys.accessHistogram().empty());
}

TEST(System, NoIntegrityViolationsDuringNormalRuns)
{
    System sys(tinySystem(mee::Protocol::Amnt));
    sys.addProcess(tinyWorkload());
    sys.run(30000);
    EXPECT_EQ(sys.engine().violations(), 0ull);
}

} // namespace
} // namespace amnt::sim
