#!/usr/bin/env python3
"""Regenerate the malformed-trace corpus used by test_trace_malformed.

Each file below is intentionally defective in exactly one way; the
table in tests/sim/test_trace_malformed.cc pairs every file with the
error substring the reader must produce. Run from this directory:

    python3 gen_corpus.py
"""

import os

HDR_V1 = b"AMNTTRC1" + bytes([1]) + bytes(7)
HDR_V2 = b"AMNTTRC2" + bytes([2]) + bytes(7)


def w(name, payload):
    with open(os.path.join(os.path.dirname(__file__) or ".", name),
              "wb") as f:
        f.write(payload)
    print(f"{name}: {len(payload)} bytes")


# --- native traces -----------------------------------------------------
w("empty.trc", b"")
w("truncated_header.trc", b"AMNTTRC2")
w("bad_magic.trc", b"NOTATRACE" + bytes(7))
# Right magic, unsupported version byte.
w("wrong_version.trc", b"AMNTTRC2" + bytes([9]) + bytes(7))
# v2 magic paired with the v1 version byte.
w("mismatch_version.trc", b"AMNTTRC2" + bytes([1]) + bytes(7))
w("zero_records.trc", HDR_V2)
# Flags byte present, gap varint missing.
w("truncated_record.trc", HDR_V2 + bytes([0x00]))
# Gap present (1), address delta missing.
w("truncated_delta.trc", HDR_V2 + bytes([0x00, 0x01]))
# Churn bit set, victim varint missing.
w("truncated_victim.trc", HDR_V2 + bytes([0x04, 0x01, 0x02]))
# Gap encoded as 0x80 0x00: two bytes for the value 0.
w("overlong_varint.trc", HDR_V2 + bytes([0x00, 0x80, 0x00, 0x02]))
# Gap of eleven continuation bytes: no u64 is that long.
w("varint_too_long.trc",
  HDR_V2 + bytes([0x00]) + bytes([0xFF] * 10) + bytes([0x00]))
# Reserved flag bit 3 set.
w("reserved_flags.trc", HDR_V2 + bytes([0x08, 0x01, 0x02]))
# Kind 3 with the churn bit: only the bare end marker may use kind 3.
w("bad_kind.trc", HDR_V2 + bytes([0x07, 0x01, 0x02]))
# End marker present but its tail-gap varint missing.
w("truncated_tail.trc", HDR_V2 + bytes([0x00, 0x01, 0x02, 0x03]))
# Bytes after the end marker.
w("data_after_end.trc",
  HDR_V2 + bytes([0x00, 0x01, 0x02, 0x03, 0x05, 0x00]))
# A record but no end marker: the file was cut short.
w("missing_end_marker.trc", HDR_V2 + bytes([0x00, 0x01, 0x02]))
# v1 record cut short (5 of 9 bytes).
w("v1_truncated_record.trc", HDR_V1 + bytes(5))

# --- ChampSim imports --------------------------------------------------
w("champsim_empty.trace", b"")
# One full instruction record then a 1-byte stub of the next.
rec = bytearray(64)
rec[32:40] = (0x1000).to_bytes(8, "little")  # one source operand
w("champsim_truncated.trace", bytes(rec) + b"\x00")
# Valid-length records whose memory operand slots are all zero.
w("champsim_no_mem.trace", bytes(64) * 3)
