/**
 * Malformed-input hardening: every defective trace in
 * tests/sim/data/ must produce a clean, descriptive error through
 * TraceReader's non-fatal error model (or importChampSim's returned
 * string) — never UB, never a crash. The whole suite runs under
 * ASan/UBSan in the CI trace job. Regenerate the corpus with
 * tests/sim/data/gen_corpus.py.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/traceio/champsim.hh"
#include "sim/traceio/reader.hh"

namespace amnt::sim::traceio
{
namespace
{

std::string
corpusPath(const std::string &name)
{
    return std::string(AMNT_SOURCE_ROOT) + "/tests/sim/data/" + name;
}

struct Defect
{
    const char *file;
    const char *expect; ///< substring of the reader's error()
    bool opensClean;    ///< defect only surfaces on next()
};

const Defect kDefects[] = {
    {"empty.trc", "truncated header", false},
    {"truncated_header.trc", "truncated header", false},
    {"bad_magic.trc", "bad magic", false},
    {"wrong_version.trc", "does not match magic", false},
    {"mismatch_version.trc", "does not match magic", false},
    {"zero_records.trc", "holds no records", false},
    {"truncated_record.trc", "truncated gap varint", true},
    {"truncated_delta.trc", "truncated address-delta varint", true},
    {"truncated_victim.trc", "truncated churn-victim varint", true},
    {"overlong_varint.trc", "overlong or non-canonical gap varint",
     true},
    {"varint_too_long.trc", "overlong or non-canonical gap varint",
     true},
    {"reserved_flags.trc", "reserved flag bits", true},
    {"bad_kind.trc", "invalid op kind", true},
    {"truncated_tail.trc", "truncated tail-gap varint", true},
    {"data_after_end.trc", "data after end-of-trace marker", true},
    {"missing_end_marker.trc",
     "truncated trace (missing end-of-trace marker)", true},
    {"v1_truncated_record.trc", "truncated record", true},
};

TEST(TraceMalformed, CorpusProducesDescriptiveErrors)
{
    for (const Defect &d : kDefects) {
        SCOPED_TRACE(d.file);
        TraceReader reader(corpusPath(d.file));
        EXPECT_EQ(reader.ok(), d.opensClean);
        TraceRecord rec;
        // next() must never succeed past the defect; draining the
        // stream is what trips record-level corruption.
        while (reader.next(rec)) {
        }
        EXPECT_FALSE(reader.ok());
        EXPECT_NE(reader.error().find(d.expect), std::string::npos)
            << "got: " << reader.error();
        // The failed state is sticky and harmless.
        EXPECT_FALSE(reader.next(rec));
        reader.rewind();
        EXPECT_FALSE(reader.next(rec));
        EXPECT_NE(reader.error().find(d.expect), std::string::npos);
    }
}

TEST(TraceMalformed, MissingFileReportsCannotOpen)
{
    TraceReader reader(corpusPath("does_not_exist.trc"));
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("cannot open"), std::string::npos);
    TraceRecord rec;
    EXPECT_FALSE(reader.next(rec));
}

TEST(TraceMalformed, VersionReflectsHeaderOutcome)
{
    // A rejected header leaves version() at 0; a mismatched version
    // byte must not half-initialise the reader.
    EXPECT_EQ(TraceReader(corpusPath("bad_magic.trc")).version(), 0u);
    EXPECT_EQ(TraceReader(corpusPath("mismatch_version.trc")).version(),
              0u);
    EXPECT_EQ(TraceReader(corpusPath("truncated_record.trc")).version(),
              2u);
    EXPECT_EQ(
        TraceReader(corpusPath("v1_truncated_record.trc")).version(),
        1u);
}

struct ImportDefect
{
    const char *file;
    const char *expect;
};

const ImportDefect kImportDefects[] = {
    {"does_not_exist.trace", "cannot open"},
    {"champsim_empty.trace", "holds no instructions"},
    {"champsim_truncated.trace", "truncated ChampSim instruction"},
    {"champsim_no_mem.trace", "holds no memory references"},
};

TEST(TraceMalformed, ChampSimImportRejectsDefectiveInput)
{
    for (const ImportDefect &d : kImportDefects) {
        SCOPED_TRACE(d.file);
        const std::string out = std::string(::testing::TempDir()) +
                                "/amnt_import_reject.trc";
        ImportStats stats;
        const std::string err =
            importChampSim(corpusPath(d.file), out, &stats);
        EXPECT_NE(err.find(d.expect), std::string::npos)
            << "got: " << err;
        // A failed import must not leave a partial output behind.
        std::FILE *f = std::fopen(out.c_str(), "rb");
        EXPECT_EQ(f, nullptr);
        if (f != nullptr)
            std::fclose(f);
    }
}

} // namespace
} // namespace amnt::sim::traceio
