/**
 * Sweep-runner tests: the parallel sweep must be bit-identical to a
 * serial run of the same job list at every thread count (each job
 * owns its simulator, so threads can only reorder wall-clock time,
 * never simulated results), outcomes must come back in submission
 * order, and the AMNT_SWEEP_THREADS knob must parse strictly.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/thread_pool.hh"
#include "sim/presets.hh"
#include "sim/sweep.hh"

using namespace amnt;

namespace
{

void
expectSameResult(const sim::RunResult &a, const sim::RunResult &b,
                 std::size_t job)
{
    EXPECT_EQ(a.cycles, b.cycles) << "job " << job;
    EXPECT_EQ(a.appInstructions, b.appInstructions) << "job " << job;
    EXPECT_EQ(a.osInstructions, b.osInstructions) << "job " << job;
    EXPECT_EQ(a.dataAccesses, b.dataAccesses) << "job " << job;
    EXPECT_EQ(a.memReads, b.memReads) << "job " << job;
    EXPECT_EQ(a.memWrites, b.memWrites) << "job " << job;
    EXPECT_EQ(a.mcacheHitRate, b.mcacheHitRate) << "job " << job;
    EXPECT_EQ(a.subtreeHitRate, b.subtreeHitRate) << "job " << job;
    EXPECT_EQ(a.subtreeMovements, b.subtreeMovements)
        << "job " << job;
    EXPECT_EQ(a.pageFaults, b.pageFaults) << "job " << job;
}

/** 2 protocols x 2 workloads, small enough for a tier-1 test. */
std::vector<sweep::Job>
matrixJobs()
{
    std::vector<sweep::Job> jobs;
    for (mee::Protocol p :
         {mee::Protocol::Leaf, mee::Protocol::Amnt}) {
        for (const char *name : {"bodytrack", "canneal"}) {
            sim::WorkloadConfig w = sim::parsecPreset(name);
            w.footprintPages = 256;
            sweep::Job job;
            job.config = sim::SystemConfig::singleProgram(p);
            job.processes = {w};
            job.instructions = 20000;
            job.warmup = 5000;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(Sweep, ParallelMatchesSerialAtEveryThreadCount)
{
    const std::vector<sweep::Job> jobs = matrixJobs();
    const std::vector<sweep::Outcome> serial = sweep::run(jobs, 1);
    ASSERT_EQ(serial.size(), jobs.size());

    for (unsigned threads = 2; threads <= 8; ++threads) {
        const std::vector<sweep::Outcome> parallel =
            sweep::run(jobs, threads);
        ASSERT_EQ(parallel.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            expectSameResult(serial[i].result, parallel[i].result, i);
    }
}

TEST(Sweep, OutcomesComeBackInSubmissionOrder)
{
    // Distinguishable jobs: different instruction counts produce
    // different appInstructions, revealing any reordering.
    std::vector<sweep::Job> jobs;
    for (std::uint64_t n = 1; n <= 6; ++n) {
        sim::WorkloadConfig w = sim::parsecPreset("bodytrack");
        w.footprintPages = 256;
        sweep::Job job;
        job.config =
            sim::SystemConfig::singleProgram(mee::Protocol::Leaf);
        job.processes = {w};
        job.instructions = 1000 * n;
        jobs.push_back(std::move(job));
    }
    const std::vector<sweep::Outcome> outcomes = sweep::run(jobs, 4);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(outcomes[i].result.appInstructions,
                  1000 * (i + 1));
}

/** One small job per microbenchmark generator. */
std::vector<sweep::Job>
syntheticJobs()
{
    std::vector<sweep::Job> jobs;
    for (const char *name :
         {"zipfian", "gups", "stream", "kvstore", "chase"}) {
        sim::WorkloadConfig w = sim::syntheticPreset(name);
        w.footprintPages = 256;
        sweep::Job job;
        job.config =
            sim::SystemConfig::singleProgram(mee::Protocol::Amnt);
        job.processes = {w};
        job.instructions = 15000;
        job.warmup = 3000;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(Sweep, MicrobenchmarkGeneratorsAreThreadCountInvariant)
{
    // The determinism contract for the WorkloadKind generators: the
    // full registry dump of every job is byte-identical whether jobs
    // run serially or share the process with three worker threads.
    const std::vector<sweep::Job> jobs = syntheticJobs();
    const std::vector<sweep::Outcome> serial = sweep::run(jobs, 1);
    const std::vector<sweep::Outcome> parallel = sweep::run(jobs, 4);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_FALSE(serial[i].statsJson.empty()) << "job " << i;
        EXPECT_EQ(serial[i].statsJson, parallel[i].statsJson)
            << "job " << i;
    }
}

TEST(Sweep, InsertingAJobLeavesOtherRowsUnchanged)
{
    // Reseeding audit: generators draw only from their own seeded
    // rng_, so adding a job to a sweep cannot perturb any other row.
    const std::vector<sweep::Job> before = syntheticJobs();
    const std::vector<sweep::Outcome> base = sweep::run(before, 2);

    std::vector<sweep::Job> with_extra = syntheticJobs();
    sweep::Job extra;
    extra.config =
        sim::SystemConfig::singleProgram(mee::Protocol::Leaf);
    extra.processes = {sim::syntheticPreset("gups")};
    extra.processes[0].footprintPages = 128;
    extra.instructions = 9000;
    with_extra.insert(with_extra.begin() + 2, std::move(extra));
    const std::vector<sweep::Outcome> shifted =
        sweep::run(with_extra, 2);

    ASSERT_EQ(shifted.size(), base.size() + 1);
    for (std::size_t i = 0; i < base.size(); ++i) {
        const std::size_t j = i < 2 ? i : i + 1;
        EXPECT_EQ(base[i].statsJson, shifted[j].statsJson)
            << "job " << i;
    }
}

TEST(Sweep, RecordsHistogramWhenRequested)
{
    std::vector<sweep::Job> jobs = matrixJobs();
    jobs.resize(1);
    jobs[0].config.recordAccessHistogram = true;
    const std::vector<sweep::Outcome> outcomes = sweep::run(jobs, 2);
    EXPECT_FALSE(outcomes[0].accessHistogram.empty());
}

TEST(Sweep, ParallelForCoversEveryIndexOnce)
{
    std::vector<int> hits(100, 0);
    sweep::parallelFor(
        hits.size(), [&](std::size_t i) { hits[i] += 1; }, 4);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(Sweep, ThreadCountHonorsEnvironment)
{
    ::setenv("AMNT_SWEEP_THREADS", "3", 1);
    EXPECT_EQ(sweep::threadCount(), 3u);

    // 0 is clamped to 1 worker rather than zero.
    ::setenv("AMNT_SWEEP_THREADS", "0", 1);
    EXPECT_EQ(sweep::threadCount(), 1u);

    // Malformed values fall back to the hardware default.
    ::setenv("AMNT_SWEEP_THREADS", "all", 1);
    EXPECT_EQ(sweep::threadCount(), ThreadPool::hardwareThreads());

    ::unsetenv("AMNT_SWEEP_THREADS");
    EXPECT_EQ(sweep::threadCount(), ThreadPool::hardwareThreads());
}

} // namespace

