/**
 * @file
 * Exhaustive crash-point matrix: every metadata-persistence protocol,
 * crashed at every persist-op boundary of a fixed seeded workload,
 * must recover without losing a committed block, without missing a
 * tamper, and in agreement with a committed-write reference replay.
 *
 * Geometry is small on purpose (2 MB of data → 512 counter pages,
 * node levels 1..4) so the exhaustive sweep stays in CI budget; a
 * strided medium geometry runs when AMNT_FAULT_GEOMETRY=medium. A
 * failing boundary prints its crash-point ID; reproduce it alone with
 *   AMNT_FAULT_POINT=<id> ./test_fault \
 *       --gtest_filter='Registry/CrashMatrix.AllBoundariesRecover/<proto>'
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/log.hh"
#include "core/protocol_registry.hh"
#include "fault/crash_schedule.hh"
#include "fault/fault.hh"

using namespace amnt;

namespace
{

/** Matrix geometry: small enough for exhaustive boundary coverage. */
fault::ScheduleConfig
matrixConfig(mee::Protocol p, unsigned subtree_level = 3)
{
    fault::ScheduleConfig cfg;
    cfg.protocol = p;
    cfg.mee.dataBytes = 2ull << 20; // 512 pages, node levels 1..3
    if (subtree_level >= 4)
        cfg.mee.dataBytes = 16ull << 20; // deepen to node levels 1..4
    cfg.mee.trackContents = true;
    cfg.mee.keySeed = 7;
    // A small metadata cache forces evictions (and their commit-scoped
    // write-backs) into the boundary stream.
    cfg.mee.metaCache = {"mcache", 4 * 1024, 4, 2};
    cfg.mee.osirisStopLoss = 4;
    cfg.mee.amntSubtreeLevel = subtree_level;
    cfg.mee.amntInterval = 16;  // exercise movement inside ~96 ops
    cfg.mee.amntHistoryEntries = 16;
    cfg.mee.bmfRootCacheEntries = 16;
    cfg.mee.bmfInterval = 24;   // exercise prune/merge adaptation
    cfg.workloadSeed = 1;
    cfg.workloadOps = 96;
    cfg.pages = 48;
    cfg.blocksPerPage = 8;
    cfg.writeFraction = 0.7;

    if (const char *g = std::getenv("AMNT_FAULT_GEOMETRY");
        g != nullptr && std::string(g) == "medium") {
        cfg.mee.dataBytes = 16ull << 20;
        cfg.workloadOps = 384;
        cfg.pages = 192;
        cfg.stride = 17; // deterministic subset at medium geometry
        cfg.sampleSeed = 11;
    }
    return fault::applyEnv(cfg);
}

/** Silence the expected tamper-probe warnings for one test body. */
struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

void
runMatrix(const fault::ScheduleConfig &cfg)
{
    QuietScope quiet;
    const fault::ScheduleReport report = fault::runCrashSchedule(cfg);
    EXPECT_GT(report.totalBoundaries, 0u);
    EXPECT_GT(report.tested, 0u);
    EXPECT_TRUE(report.allOk())
        << "tested " << report.tested << " of "
        << report.totalBoundaries << " boundaries; "
        << report.failures.size() << " failed:\n"
        << report.describeFailures();
}

} // namespace

/**
 * Every persistent protocol in the registry gets an exhaustive
 * crash-matrix leg automatically: the suite is instantiated from
 * core::persistentProtocols(), so registering a protocol enrolls it
 * here with no per-protocol test code — and a protocol missing from
 * the registry cannot silently skip (EveryPersistentProtocolEnrolled
 * below pins the instantiation set).
 */
class CrashMatrix : public ::testing::TestWithParam<mee::Protocol>
{
};

TEST_P(CrashMatrix, AllBoundariesRecover)
{
    runMatrix(matrixConfig(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CrashMatrix,
    ::testing::ValuesIn(core::persistentProtocols()),
    [](const ::testing::TestParamInfo<mee::Protocol> &info) {
        return std::string(mee::protocolName(info.param));
    });

TEST(CrashMatrixEnrollment, EveryPersistentProtocolEnrolled)
{
    // The crash matrix covers exactly the protocols whose
    // CrashProfile declares them persistent — today all but the
    // volatile baseline. A protocol added to the enum but left out of
    // the registry (or mis-declared) shrinks this set and fails here.
    const auto enrolled = core::persistentProtocols();
    EXPECT_EQ(enrolled.size(), mee::kProtocolCount - 1);
    for (mee::Protocol p : core::allProtocols()) {
        const bool persistent = core::crashProfileOf(p).persistent;
        EXPECT_EQ(persistent, p != mee::Protocol::Volatile)
            << mee::protocolName(p);
    }
}

TEST(CrashMatrixExtra, AmntLevel2)
{
    runMatrix(matrixConfig(mee::Protocol::Amnt, 2));
}

TEST(CrashMatrixExtra, AmntLevel4)
{
    runMatrix(matrixConfig(mee::Protocol::Amnt, 4));
}

TEST(CrashMatrixExtra, Hybrid)
{
    fault::ScheduleConfig cfg = matrixConfig(mee::Protocol::Amnt);
    cfg.hybrid = true;
    runMatrix(cfg);
}

// ---------------------------------------------------------------------
// Scheduling machinery.

TEST(CrashSchedule, BoundaryCountIsDeterministic)
{
    QuietScope quiet;
    const fault::ScheduleConfig cfg =
        matrixConfig(mee::Protocol::Leaf);
    const fault::ScheduleConfig probe = [&] {
        fault::ScheduleConfig c = cfg;
        c.onlyPoint = ~0ull; // count, then test nothing real
        return c;
    }();
    const fault::ScheduleReport a = fault::runCrashSchedule(probe);
    const fault::ScheduleReport b = fault::runCrashSchedule(probe);
    EXPECT_EQ(a.totalBoundaries, b.totalBoundaries);
    EXPECT_GT(a.totalBoundaries, 0u);
}

TEST(CrashSchedule, StrideSelectsDeterministicSubset)
{
    QuietScope quiet;
    fault::ScheduleConfig cfg = matrixConfig(mee::Protocol::Leaf);
    cfg.stride = 7;
    cfg.sampleSeed = 3;
    const fault::ScheduleReport report = fault::runCrashSchedule(cfg);
    EXPECT_TRUE(report.allOk()) << report.describeFailures();
    // ceil((total - offset) / stride) boundaries, offset < stride.
    EXPECT_LT(report.tested,
              report.totalBoundaries / cfg.stride + 2);
    EXPECT_GT(report.tested, 0u);

    const fault::ScheduleReport again = fault::runCrashSchedule(cfg);
    EXPECT_EQ(report.tested, again.tested);
    EXPECT_EQ(report.totalBoundaries, again.totalBoundaries);
}

TEST(CrashSchedule, OnlyPointTestsExactlyOneBoundary)
{
    QuietScope quiet;
    fault::ScheduleConfig cfg = matrixConfig(mee::Protocol::Leaf);
    cfg.onlyPoint = 5;
    const fault::ScheduleReport report = fault::runCrashSchedule(cfg);
    EXPECT_EQ(report.tested, 1u);
    EXPECT_TRUE(report.allOk()) << report.describeFailures();
}

TEST(CrashSchedule, RunBoundaryMatchesScheduleOutcome)
{
    QuietScope quiet;
    const fault::ScheduleConfig cfg =
        matrixConfig(mee::Protocol::Osiris);
    const fault::BoundaryOutcome out = fault::runBoundary(cfg, 3);
    EXPECT_TRUE(out.ok()) << out.detail;
    EXPECT_EQ(out.point, 3u);
}

TEST(CrashSchedule, PointBeyondCountReportsFailure)
{
    QuietScope quiet;
    fault::ScheduleConfig cfg = matrixConfig(mee::Protocol::Leaf);
    cfg.onlyPoint = ~0ull;
    const fault::ScheduleReport report = fault::runCrashSchedule(cfg);
    EXPECT_FALSE(report.allOk());
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_FALSE(report.failures[0].fired);
}

// ---------------------------------------------------------------------
// FaultDomain unit behaviour.

TEST(FaultDomain, CountsBoundariesMonotonically)
{
    fault::FaultDomain d;
    d.startCounting();
    d.persistPoint();
    d.persistPoint();
    {
        fault::CommitScope scope(&d); // one boundary at open
        d.persistPoint();             // inside: not a boundary
        d.persistPoint();
    }
    d.persistPoint();
    EXPECT_EQ(d.events(), 4u);
    EXPECT_EQ(d.commitsClosed(), 1u);
}

TEST(FaultDomain, NestedScopesAreOneBoundaryAndOneCommit)
{
    fault::FaultDomain d;
    d.startCounting();
    {
        fault::CommitScope outer(&d);
        {
            fault::CommitScope inner(&d); // nested: no new boundary
            d.persistPoint();
        }
        EXPECT_EQ(d.commitsClosed(), 0u); // outer still open
    }
    EXPECT_EQ(d.events(), 1u);
    EXPECT_EQ(d.commitsClosed(), 1u);
}

TEST(FaultDomain, ArmedDomainFiresOnceThenDisarms)
{
    fault::FaultDomain d;
    d.arm(1);
    d.persistPoint(); // boundary 0
    bool threw = false;
    try {
        d.persistPoint(); // boundary 1: fires
    } catch (const fault::CrashInjected &c) {
        threw = true;
        EXPECT_EQ(c.point(), 1u);
        EXPECT_FALSE(c.atCommitOpen());
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(d.mode(), fault::FaultDomain::Mode::Disarmed);
    d.persistPoint(); // disarmed: inert
}

TEST(FaultDomain, CommitOpenFiresBeforeScopeDepthIsTaken)
{
    fault::FaultDomain d;
    d.arm(0);
    bool threw = false;
    try {
        fault::CommitScope scope(&d);
    } catch (const fault::CrashInjected &c) {
        threw = true;
        EXPECT_TRUE(c.atCommitOpen());
    }
    EXPECT_TRUE(threw);
    // The throwing open never took the depth: a later scope pairs up.
    d.startCounting();
    {
        fault::CommitScope scope(&d);
    }
    EXPECT_EQ(d.commitsClosed(), 1u);
}

TEST(FaultDomain, ArmAfterKeepsNumberingAndFiresRelative)
{
    // armAfter() arms relative to the CURRENT boundary id without
    // resetting the count — the campaign suites use it to crash "N
    // boundaries from now" mid-workload, and the fired point stays
    // meaningful for AMNT_FAULT_POINT reproduction.
    fault::FaultDomain d;
    d.startCounting();
    d.persistPoint(); // 0
    d.persistPoint(); // 1
    d.persistPoint(); // 2
    d.armAfter(2);    // fire at boundary 3 + 2 = 5
    d.persistPoint(); // 3
    d.persistPoint(); // 4
    bool threw = false;
    try {
        d.persistPoint(); // 5: fires
    } catch (const fault::CrashInjected &c) {
        threw = true;
        EXPECT_EQ(c.point(), 5u);
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(d.mode(), fault::FaultDomain::Mode::Disarmed);
}

TEST(FaultDomain, ArmAfterZeroFiresAtNextBoundary)
{
    fault::FaultDomain d; // fresh (Disarmed): ids start at 0
    d.armAfter(0);
    bool threw = false;
    try {
        d.persistPoint();
    } catch (const fault::CrashInjected &c) {
        threw = true;
        EXPECT_EQ(c.point(), 0u);
    }
    EXPECT_TRUE(threw);
}

TEST(FaultDomain, DisarmedDomainIsInert)
{
    fault::FaultDomain d;
    d.persistPoint();
    {
        fault::CommitScope scope(&d);
        d.persistPoint();
    }
    EXPECT_EQ(d.events(), 0u);
}
