/**
 * @file
 * Torn-epoch crash matrix: every persistent protocol, sharded over 2
 * and 4 slices, crashed at every boundary of a fixed seeded workload
 * — engine persist ops, the fence between each slice's epoch drain
 * and the cross-shard commit record, and the record's own persist —
 * must recover every slice to the last fully-committed epoch with
 * zero oracle violations.
 *
 * Slice geometry matches the proven per-engine matrix (2 MB per
 * slice), so the per-slice recovery boundary this matrix reduces
 * crashes to is itself exhaustively validated by test_crash_matrix.
 * A failing boundary prints its crash-point ID; reproduce it alone
 * with AMNT_FAULT_POINT=<id> on the matching test filter.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/protocol_registry.hh"
#include "fault/shard_crash_schedule.hh"

using namespace amnt;

namespace
{

/** 2 MB per slice — the per-engine matrix geometry, times slices. */
fault::ShardScheduleConfig
shardMatrixConfig(mee::Protocol p, unsigned slices)
{
    fault::ShardScheduleConfig cfg;
    cfg.slices = slices;
    cfg.epochWrites = 8; // many epoch closes inside ~96 ops
    cfg.base.protocol = p;
    cfg.base.mee.dataBytes = slices * (2ull << 20);
    cfg.base.mee.trackContents = true;
    cfg.base.mee.keySeed = 7;
    cfg.base.mee.metaCache = {"mcache", 4 * 1024, 4, 2};
    cfg.base.mee.osirisStopLoss = 4;
    cfg.base.mee.amntSubtreeLevel = 3;
    cfg.base.mee.amntInterval = 16;
    cfg.base.mee.amntHistoryEntries = 16;
    cfg.base.mee.bmfRootCacheEntries = 16;
    cfg.base.mee.bmfInterval = 24;
    cfg.base.workloadSeed = 1;
    cfg.base.workloadOps = 96;
    cfg.base.pages = 48;
    cfg.base.blocksPerPage = 8;
    cfg.base.writeFraction = 0.7;
    cfg.base = fault::applyEnv(cfg.base);
    return cfg;
}

/** Silence the expected tamper-probe warnings for one test body. */
struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

void
runShardMatrix(const fault::ShardScheduleConfig &cfg)
{
    QuietScope quiet;
    const fault::ScheduleReport report =
        fault::runShardCrashSchedule(cfg);
    EXPECT_GT(report.totalBoundaries, 0u);
    EXPECT_GT(report.tested, 0u);
    EXPECT_TRUE(report.allOk())
        << "tested " << report.tested << " of "
        << report.totalBoundaries << " boundaries; "
        << report.failures.size() << " failed:\n"
        << report.describeFailures();
}

} // namespace

/**
 * Instantiated from core::persistentProtocols() x slice counts {2,4}:
 * registering a protocol enrolls it in the torn-epoch matrix with no
 * per-protocol test code, and the enrollment pin in
 * test_crash_matrix.cc guarantees the set cannot silently shrink.
 */
class ShardCrashMatrix
    : public ::testing::TestWithParam<
          std::tuple<mee::Protocol, unsigned>>
{
};

TEST_P(ShardCrashMatrix, AllBoundariesRecover)
{
    const auto [protocol, slices] = GetParam();
    runShardMatrix(shardMatrixConfig(protocol, slices));
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ShardCrashMatrix,
    ::testing::Combine(
        ::testing::ValuesIn(core::persistentProtocols()),
        ::testing::Values(2u, 4u)),
    [](const ::testing::TestParamInfo<
        std::tuple<mee::Protocol, unsigned>> &info) {
        return std::string(
                   mee::protocolName(std::get<0>(info.param))) +
               "_x" + std::to_string(std::get<1>(info.param));
    });

TEST(ShardCrashSchedule, BoundaryCountIsDeterministic)
{
    QuietScope quiet;
    fault::ShardScheduleConfig cfg =
        shardMatrixConfig(mee::Protocol::Leaf, 2);
    cfg.base.onlyPoint = ~0ull; // count, then test nothing real
    const fault::ScheduleReport a = fault::runShardCrashSchedule(cfg);
    const fault::ScheduleReport b = fault::runShardCrashSchedule(cfg);
    EXPECT_EQ(a.totalBoundaries, b.totalBoundaries);
    EXPECT_GT(a.totalBoundaries, 0u);
}

TEST(ShardCrashSchedule, RunBoundaryMatchesScheduleOutcome)
{
    QuietScope quiet;
    const fault::ShardScheduleConfig cfg =
        shardMatrixConfig(mee::Protocol::Osiris, 2);
    const fault::BoundaryOutcome out = fault::runShardBoundary(cfg, 3);
    EXPECT_TRUE(out.ok()) << out.detail;
    EXPECT_EQ(out.point, 3u);
}

TEST(ShardCrashSchedule, TornEpochsAreActuallyExercised)
{
    // The matrix only proves what it reaches: assert the boundary
    // stream really contains torn-epoch cases by finding boundaries
    // whose recovery rolled at least one slice back. Every epoch
    // close contributes `slices` drain fences before its commit
    // record, so crashes at those fences tear the epoch by
    // construction — if no boundary reports a rollback, the fences
    // are not in the stream and the matrix is vacuous.
    QuietScope quiet;
    const fault::ShardScheduleConfig cfg =
        shardMatrixConfig(mee::Protocol::Leaf, 2);
    fault::ShardScheduleConfig probe = cfg;
    probe.base.onlyPoint = ~0ull;
    const fault::ScheduleReport count =
        fault::runShardCrashSchedule(probe);
    ASSERT_GT(count.totalBoundaries, 0u);
    std::uint64_t torn_boundaries = 0;
    for (std::uint64_t k = 0; k < count.totalBoundaries; ++k) {
        const fault::BoundaryOutcome out =
            fault::runShardBoundary(cfg, k);
        ASSERT_TRUE(out.ok())
            << "boundary " << k << ": " << out.detail;
        if (out.tornSlices > 0)
            ++torn_boundaries;
    }
    EXPECT_GT(torn_boundaries, 0u);
}

