#!/usr/bin/env python3
"""Unit tests for tools/check_replay_bench.py over synthetic files.

Exercises the (protocol, preset, shards) cell keying: sharded rows
must not be compared against the legacy (shards-free) history cell,
cells absent from history are record-only instead of a crash,
malformed history entries are ignored with a warning, regressions on
matching keys still gate, and --append round-trips the shards field.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir,
    os.pardir,
    "tools",
    "check_replay_bench.py",
)


def run_tool(*args):
    return subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True,
        text=True,
    )


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(payload, f)
    return path


def current_dump(rows):
    return {"bench": "bench_replay", "rows": rows}


def history_dump(entries):
    return {"bench": "bench_replay", "entries": entries}


def row(protocol, preset, rate, shards=None):
    r = {
        "protocol": protocol,
        "preset": preset,
        "accesses_per_sec": rate,
    }
    if shards is not None:
        r["shards"] = shards
    return r


def entry(protocol, preset, rate, shards=None, rev="r0"):
    e = row(protocol, preset, rate, shards)
    e["git_rev"] = rev
    return e


class CheckReplayBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()

    def test_sharded_cell_absent_from_history_is_record_only(self):
        # The sharded run is slower per-lane than the legacy cell;
        # keyed by (protocol, preset) alone this would be a false
        # regression — keyed with shards it is a new cell.
        cur = write_json(
            self.dir,
            "cur.json",
            current_dump(
                [
                    row("amnt", "zipfian", 1_000_000.0),
                    row("amnt", "zipfian", 500_000.0, shards=4),
                ]
            ),
        )
        hist = write_json(
            self.dir,
            "hist.json",
            history_dump([entry("amnt", "zipfian", 1_000_000.0)]),
        )
        res = run_tool("--current", cur, "--history", hist)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("amnt/zipfian/x4", res.stdout)
        self.assertIn("record-only", res.stdout)

    def test_regression_on_matching_sharded_cell_still_gates(self):
        cur = write_json(
            self.dir,
            "cur.json",
            current_dump([row("amnt", "zipfian", 100.0, shards=4)]),
        )
        hist = write_json(
            self.dir,
            "hist.json",
            history_dump(
                [entry("amnt", "zipfian", 1000.0, shards=4)]
            ),
        )
        res = run_tool("--current", cur, "--history", hist)
        self.assertEqual(res.returncode, 1)
        self.assertIn("regressed", res.stderr)

    def test_malformed_history_entry_is_ignored_not_a_crash(self):
        cur = write_json(
            self.dir,
            "cur.json",
            current_dump([row("amnt", "zipfian", 1000.0)]),
        )
        hist = write_json(
            self.dir,
            "hist.json",
            history_dump(
                [
                    {"preset": "zipfian"},  # no protocol, no rate
                    entry("amnt", "zipfian", 1000.0),
                ]
            ),
        )
        res = run_tool("--current", cur, "--history", hist)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("malformed history entry", res.stdout)
        self.assertIn("ok", res.stdout)

    def test_append_round_trips_shards_field(self):
        cur = write_json(
            self.dir,
            "cur.json",
            current_dump(
                [
                    row("amnt", "zipfian", 1000.0),
                    row("amnt", "zipfian", 4000.0, shards=4),
                ]
            ),
        )
        hist = write_json(self.dir, "hist.json", history_dump([]))
        res = run_tool(
            "--current",
            cur,
            "--history",
            hist,
            "--append",
            "--rev",
            "abc123",
        )
        self.assertEqual(res.returncode, 0, res.stderr)
        with open(hist) as f:
            recorded = json.load(f)["entries"]
        self.assertEqual(len(recorded), 2)
        self.assertNotIn("shards", recorded[0])  # legacy row stays
        self.assertEqual(recorded[1]["shards"], 4)
        self.assertEqual(recorded[1]["git_rev"], "abc123")

        # A second check against the appended history matches cells.
        res2 = run_tool("--current", cur, "--history", hist)
        self.assertEqual(res2.returncode, 0, res2.stderr)
        self.assertNotIn("record-only", res2.stdout)

    def test_legacy_history_still_gates_legacy_rows(self):
        cur = write_json(
            self.dir,
            "cur.json",
            current_dump([row("phoenix", "gups", 900.0)]),
        )
        hist = write_json(
            self.dir,
            "hist.json",
            history_dump([entry("phoenix", "gups", 1000.0)]),
        )
        res = run_tool("--current", cur, "--history", hist)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("phoenix/gups: 900", res.stdout)
        self.assertIn("ok", res.stdout)


if __name__ == "__main__":
    unittest.main()
