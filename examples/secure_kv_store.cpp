/**
 * A crash-consistent in-memory key-value store on secure SCM — the
 * class of application the paper's introduction motivates.
 *
 * The store is a fixed-capacity open-addressing hash table whose
 * buckets are 64 B blocks living in AMNT-protected non-volatile
 * memory. Every put() persists through the secure-memory engine
 * (encrypt + HMAC + tree update under the hybrid persistence policy),
 * so a power failure at ANY point loses nothing that was put: after
 * engine recovery the table is intact and every lookup verifies.
 *
 *   $ ./secure_kv_store
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/rng.hh"
#include "core/amnt.hh"

using namespace amnt;

namespace
{

/**
 * Bucket layout (64 B): 2 B key length, 2 B value length,
 * then key bytes then value bytes (truncated to fit).
 */
class SecureKvStore
{
  public:
    SecureKvStore(mee::MemoryEngine &engine, std::uint64_t buckets)
        : engine_(&engine), buckets_(buckets)
    {
    }

    bool
    put(const std::string &key, const std::string &value)
    {
        if (key.size() + value.size() + 4 > kBlockSize)
            return false;
        // Linear probing over bucket blocks.
        for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
            const Addr addr = bucketAddr(slotOf(key, probe));
            std::uint8_t block[kBlockSize];
            engine_->read(addr, block);
            if (!occupied(block) || keyOf(block) == key) {
                encode(block, key, value);
                engine_->write(addr, block);
                return true;
            }
        }
        return false; // table full
    }

    bool
    get(const std::string &key, std::string &value_out)
    {
        for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
            const Addr addr = bucketAddr(slotOf(key, probe));
            std::uint8_t block[kBlockSize];
            engine_->read(addr, block);
            if (!occupied(block))
                return false;
            if (keyOf(block) == key) {
                const unsigned klen = block[0] | (block[1] << 8);
                const unsigned vlen = block[2] | (block[3] << 8);
                value_out.assign(
                    reinterpret_cast<const char *>(block + 4 + klen),
                    vlen);
                return true;
            }
        }
        return false;
    }

  private:
    static bool
    occupied(const std::uint8_t *block)
    {
        return (block[0] | block[1]) != 0;
    }

    static std::string
    keyOf(const std::uint8_t *block)
    {
        const unsigned klen = block[0] | (block[1] << 8);
        return std::string(reinterpret_cast<const char *>(block + 4),
                           klen);
    }

    static void
    encode(std::uint8_t *block, const std::string &key,
           const std::string &value)
    {
        std::memset(block, 0, kBlockSize);
        block[0] = static_cast<std::uint8_t>(key.size() & 0xff);
        block[1] = static_cast<std::uint8_t>(key.size() >> 8);
        block[2] = static_cast<std::uint8_t>(value.size() & 0xff);
        block[3] = static_cast<std::uint8_t>(value.size() >> 8);
        std::memcpy(block + 4, key.data(), key.size());
        std::memcpy(block + 4 + key.size(), value.data(),
                    value.size());
    }

    std::uint64_t
    slotOf(const std::string &key, std::uint64_t probe) const
    {
        std::uint64_t h = 1469598103934665603ull;
        for (char c : key)
            h = (h ^ static_cast<unsigned char>(c)) *
                1099511628211ull;
        return (h + probe) % buckets_;
    }

    Addr
    bucketAddr(std::uint64_t slot) const
    {
        return slot * kBlockSize;
    }

    mee::MemoryEngine *engine_;
    std::uint64_t buckets_;
};

} // namespace

int
main()
{
    mee::MeeConfig config;
    config.dataBytes = 16ull << 20;
    config.plane = crypto::CryptoPlane::Functional;
    config.trackContents = true;
    config.keySeed = 0xcafe;

    mem::NvmDevice nvm(mem::MemoryMap(config.dataBytes).deviceBytes());
    auto engine = core::makeEngine(mee::Protocol::Amnt, config, nvm);
    SecureKvStore store(*engine, 4096);

    // Load a workload of keys; remember what we committed.
    std::map<std::string, std::string> truth;
    Rng rng(2026);
    for (int i = 0; i < 1500; ++i) {
        const std::string key = "user:" + std::to_string(rng.below(600));
        const std::string value =
            "balance=" + std::to_string(rng.below(100000));
        if (store.put(key, value))
            truth[key] = value;
    }
    std::printf("committed %zu keys through the secure engine\n",
                truth.size());

    // Power failure mid-operation, then recovery.
    engine->crash();
    const mee::RecoveryReport report = engine->recover();
    std::printf("crash + recovery: %s (%.4f ms modeled, %llu blocks "
                "read)\n",
                report.success ? "success" : "FAILED",
                report.estimatedMs,
                static_cast<unsigned long long>(report.blocksRead));
    if (!report.success)
        return 1;

    // Every committed pair must still be there and verify.
    std::size_t ok = 0;
    for (const auto &kv : truth) {
        std::string value;
        if (store.get(kv.first, value) && value == kv.second)
            ++ok;
    }
    std::printf("verified %zu/%zu keys after recovery (violations: "
                "%llu)\n",
                ok, truth.size(),
                static_cast<unsigned long long>(engine->violations()));

    // An attacker corrupts one occupied bucket on the DIMM while we
    // are live; the next lookup touching it must scream.
    Addr victim = 0;
    for (std::uint64_t slot = 0; slot < 4096; ++slot) {
        std::uint8_t block[kBlockSize];
        engine->read(slot * kBlockSize, block);
        if ((block[0] | block[1]) != 0) {
            victim = slot * kBlockSize;
            break;
        }
    }
    nvm.tamper(victim, 8, 0xff);
    std::uint8_t block[kBlockSize];
    engine->read(victim, block);
    std::printf("tamper scan: violations now %llu (attack %s)\n",
                static_cast<unsigned long long>(engine->violations()),
                engine->violations() > 0 ? "detected" : "MISSED");

    return ok == truth.size() && engine->violations() > 0 ? 0 : 1;
}
