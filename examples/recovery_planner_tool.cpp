/**
 * Recovery planner: the system administrator's tool from section 6.7.
 *
 * Given an SCM capacity and a tolerable recovery-time budget, prints
 * the recovery-time table for every protocol and recommends the AMNT
 * subtree level (set in BIOS) that maximizes the fast subtree while
 * honouring the budget.
 *
 *   $ ./recovery_planner_tool [capacity_gb] [budget_ms]
 *   $ ./recovery_planner_tool 2048 100
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "core/recovery_planner.hh"

using namespace amnt;

int
main(int argc, char **argv)
{
    const double capacity_gb =
        argc > 1 ? std::atof(argv[1]) : 2048.0; // 2 TB default
    const double budget_ms = argc > 2 ? std::atof(argv[2]) : 100.0;
    const auto mem_bytes = static_cast<std::uint64_t>(
        capacity_gb * 1024.0 * 1024.0 * 1024.0);

    core::RecoveryModel model;

    std::printf("SCM capacity: %.0f GB; tolerable recovery: %.2f ms; "
                "read bandwidth %.0f GB/s\n\n",
                capacity_gb, budget_ms, model.readBandwidthGBs);

    TextTable table;
    table.header({"protocol", "recovery (ms)", "stale BMT",
                  "runtime character"});
    table.row({"strict", TextTable::num(model.strictMs(mem_bytes), 2),
               "0%", "slowest (full path write-through)"});
    table.row({"leaf", TextTable::num(model.leafMs(mem_bytes), 2),
               "100%", "fastest, unbounded recovery"});
    table.row({"osiris", TextTable::num(model.osirisMs(mem_bytes), 2),
               "100%*", "leaf-like, longest recovery"});
    table.row({"anubis", TextTable::num(model.anubisMs(), 2), "fixed",
               "slow path on metadata cache misses"});
    table.row({"bmf", TextTable::num(model.bmfMs(mem_bytes), 2), "0%",
               "strict-like on cold regions"});
    for (unsigned level = 2; level <= 6; ++level) {
        table.row(
            {"amnt L" + std::to_string(level),
             TextTable::num(model.amntMs(mem_bytes, level), 2),
             TextTable::pct(core::RecoveryModel::amntStaleFraction(
                                level),
                            2),
             "near-leaf inside the fast subtree"});
    }
    std::printf("%s\n", table.render().c_str());

    const unsigned pick = model.levelForBudget(mem_bytes, budget_ms, 7);
    if (pick == 0) {
        std::printf("no subtree level meets the %.2f ms budget at "
                    "this capacity; consider Anubis-style fixed "
                    "recovery or a smaller persistence domain.\n",
                    budget_ms);
        return 1;
    }
    const double coverage_gb =
        capacity_gb / static_cast<double>(ipow(kTreeArity, pick - 1));
    std::printf("recommendation: configure the AMNT subtree root at "
                "level %u in BIOS\n"
                "  -> fast subtree covers %.2f GB, worst-case "
                "recovery %.2f ms (budget %.2f ms)\n",
                pick, coverage_gb, model.amntMs(mem_bytes, pick),
                budget_ms);
    return 0;
}
