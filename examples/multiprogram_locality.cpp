/**
 * Multiprogram locality demo: the AMNT++ story of section 5 end to
 * end.
 *
 * Runs the bodytrack+fluidanimate pair on a two-core secure system
 * three ways — volatile baseline, AMNT on a stock OS, and AMNT++ with
 * the biased buddy allocator — and prints how physical placement,
 * subtree hit rate, and normalized cycles respond.
 *
 *   $ ./multiprogram_locality
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/table.hh"
#include "sim/presets.hh"
#include "sim/system.hh"

using namespace amnt;

namespace
{

struct Outcome
{
    sim::RunResult result;
    std::size_t regionsTouched = 0;
    double topRegionShare = 0.0;
};

Outcome
runOnce(mee::Protocol protocol, bool amntpp)
{
    sim::SystemConfig cfg = sim::SystemConfig::multiProgram(protocol);
    cfg.mee.dataBytes = 8ull << 30;
    cfg.amntpp = amntpp;
    cfg.recordAccessHistogram = true;

    sim::System sys(cfg);
    sim::WorkloadConfig a = sim::parsecPreset("bodytrack");
    sim::WorkloadConfig b = sim::parsecPreset("fluidanimate");
    sys.addProcess(a);
    sys.addProcess(b);

    Outcome out;
    out.result = sys.run(400000, 200000);

    const std::uint64_t frames_per_region =
        sys.engine().map().geometry().countersPerNode(3);
    std::map<std::uint64_t, std::uint64_t> regions;
    std::uint64_t total = 0;
    for (const auto &kv : sys.accessHistogram()) {
        regions[kv.first / frames_per_region] += kv.second;
        total += kv.second;
    }
    out.regionsTouched = regions.size();
    std::uint64_t top = 0;
    for (const auto &kv : regions)
        top = std::max(top, kv.second);
    out.topRegionShare = total == 0 ? 0.0
                                    : static_cast<double>(top) /
                                          static_cast<double>(total);
    return out;
}

} // namespace

int
main()
{
    std::printf("bodytrack + fluidanimate on a 2-core secure SCM "
                "(8 GB, subtree level 3)\n\n");

    const Outcome base = runOnce(mee::Protocol::Volatile, false);
    const Outcome amnt = runOnce(mee::Protocol::Amnt, false);
    const Outcome amntpp = runOnce(mee::Protocol::Amnt, true);

    const double base_cycles = static_cast<double>(base.result.cycles);
    TextTable table;
    table.header({"configuration", "normalized cycles", "subtree hit",
                  "level-3 regions touched", "top-region share",
                  "OS instr"});
    auto row = [&](const char *name, const Outcome &o, bool has_amnt) {
        table.row(
            {name,
             TextTable::num(static_cast<double>(o.result.cycles) /
                                base_cycles,
                            3),
             has_amnt ? TextTable::pct(o.result.subtreeHitRate, 1)
                      : std::string("-"),
             std::to_string(o.regionsTouched),
             TextTable::pct(o.topRegionShare, 1),
             TextTable::big(o.result.osInstructions)});
    };
    row("volatile baseline", base, false);
    row("amnt (stock buddy allocator)", amnt, true);
    row("amnt++ (biased allocator)", amntpp, true);
    std::printf("%s\n", table.render().c_str());

    std::printf("what to look for: amnt++ concentrates both "
                "processes' pages into fewer subtree regions, raising "
                "the subtree hit rate and pulling normalized cycles "
                "toward the leaf-persistence floor — at a percent or "
                "two of extra OS instructions (Table 2).\n");
    return 0;
}
