/**
 * Quickstart: the secure-SCM public API in one file.
 *
 * Builds a functional (real AES-128-CTR + HMAC-SHA-256) AMNT-protected
 * memory, writes data through it, survives a power failure, recovers,
 * and proves the data back out — then shows what a physical attacker
 * triggers.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <cstring>

#include "core/amnt.hh"
#include "core/recovery_planner.hh"

using namespace amnt;

int
main()
{
    // 1. Configure a 64 MB protected SCM with the paper's defaults:
    //    split counters, 8-ary BMT, 64 kB metadata cache, subtree
    //    root at level 3, functional crypto plane.
    mee::MeeConfig config;
    config.dataBytes = 64ull << 20;
    config.plane = crypto::CryptoPlane::Functional;
    config.trackContents = true;
    config.keySeed = 0x1234;

    mem::NvmDevice nvm(mem::MemoryMap(config.dataBytes).deviceBytes());
    auto engine = core::makeEngine(mee::Protocol::Amnt, config, nvm);

    // 2. Write a block. write() is a data write arriving at the
    //    memory controller: it encrypts, updates the counter + HMAC +
    //    tree, and persists per the AMNT hybrid policy.
    std::uint8_t message[kBlockSize] = {};
    std::strcpy(reinterpret_cast<char *>(message),
                "the course of true love never did run smooth");
    const Cycle wlat = engine->write(0x4000, message);
    std::printf("wrote one block (modeled latency %llu cycles)\n",
                static_cast<unsigned long long>(wlat));

    // 3. Read it back: fetch + decrypt + integrity verification.
    std::uint8_t readback[kBlockSize];
    engine->read(0x4000, readback);
    std::printf("read back: \"%s\" (violations: %llu)\n", readback,
                static_cast<unsigned long long>(engine->violations()));

    // 4. Power failure. Volatile state (metadata cache, architectural
    //    tree) is gone; NVM and the NV root registers survive.
    engine->crash();
    std::printf("power failure injected\n");

    // 5. Recovery: AMNT recomputes only the fast subtree's interior
    //    and re-anchors it against the non-volatile subtree register.
    const mee::RecoveryReport report = engine->recover();
    std::printf("recovery: %s (%llu blocks read, %.4f ms modeled)\n",
                report.success ? "success" : "FAILED",
                static_cast<unsigned long long>(report.blocksRead),
                report.estimatedMs);

    engine->read(0x4000, readback);
    std::printf("after recovery: \"%s\" (violations: %llu)\n",
                readback,
                static_cast<unsigned long long>(engine->violations()));

    // 6. A physical attacker flips one persisted data bit...
    nvm.tamper(0x4000, 0, 0x01);
    engine->read(0x4000, readback);
    std::printf("after tampering, violations: %llu (attack %s)\n",
                static_cast<unsigned long long>(engine->violations()),
                engine->violations() > 0 ? "detected" : "MISSED");

    // 7. The administrator's dial (paper section 6.7): pick the
    //    subtree level for a recovery-time budget.
    core::RecoveryModel model;
    std::printf("\nadmin planner: 2 TB SCM, 100 ms budget -> subtree "
                "level %u (%.2f ms)\n",
                model.levelForBudget(2ull << 40, 100.0, 7),
                model.amntMs(2ull << 40, 3));
    return engine->violations() > 0 ? 0 : 1;
}
