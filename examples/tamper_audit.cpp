/**
 * Tamper audit: plays the threat model's attacks against every
 * persisted structure — data splicing, HMAC corruption, counter
 * replay (rollback), tree-node corruption, and cold (powered-off)
 * counter corruption — and reports whether each is detected and
 * where.
 *
 *   $ ./tamper_audit
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "core/amnt.hh"

using namespace amnt;

namespace
{

struct Attack
{
    std::string name;
    std::string mechanism;
    bool detected;
};

/** Fresh functional AMNT system with a populated working set. */
struct Victim
{
    Victim()
    {
        config.dataBytes = 8ull << 20;
        config.plane = crypto::CryptoPlane::Functional;
        config.trackContents = true;
        config.keySeed = 7;
        nvm = std::make_unique<mem::NvmDevice>(
            mem::MemoryMap(config.dataBytes).deviceBytes());
        engine = core::makeEngine(mee::Protocol::Amnt, config, *nvm);
        std::uint8_t block[kBlockSize];
        for (std::uint64_t p = 0; p < 512; ++p) {
            std::memset(block, static_cast<int>(p & 0xff),
                        sizeof(block));
            engine->write(p * kPageSize, block);
        }
        // Push metadata out of the on-chip cache so future fetches
        // come from the (attackable) device.
        for (std::uint64_t p = 512; p < 1500; ++p)
            engine->read(p * kPageSize);
    }

    mee::MeeConfig config;
    std::unique_ptr<mem::NvmDevice> nvm;
    std::unique_ptr<mee::MemoryEngine> engine;
};

} // namespace

int
main()
{
    setQuiet(true); // the audit table replaces per-event warnings
    std::vector<Attack> results;

    {
        Victim v;
        v.nvm->tamper(3 * kPageSize, 21, 0x40);
        v.engine->read(3 * kPageSize);
        results.push_back({"data splice (flip ciphertext bit)",
                           "per-block HMAC mismatch on read",
                           v.engine->violations() > 0});
    }
    {
        Victim v;
        v.nvm->tamper(v.engine->map().hmacAddrOf(3 * kPageSize), 1,
                      0x02);
        v.engine->read(3 * kPageSize);
        results.push_back({"HMAC corruption",
                           "persisted-MAC check on metadata fetch",
                           v.engine->violations() > 0});
    }
    {
        Victim v;
        const Addr caddr = v.engine->map().counterBase();
        mem::Block old_counter;
        v.nvm->peek(caddr, old_counter);
        std::uint8_t block[kBlockSize] = {9};
        for (int i = 0; i < 6; ++i)
            v.engine->write(0, block);
        for (std::uint64_t p = 512; p < 1500; ++p)
            v.engine->read(p * kPageSize); // force write-back + evict
        v.nvm->writeBlock(caddr, old_counter); // rollback!
        for (int i = 0; i < 4 && v.engine->violations() == 0; ++i)
            v.engine->read(0);
        results.push_back({"counter replay (rollback to old value)",
                           "keyed MAC of persisted bytes diverges",
                           v.engine->violations() > 0});
    }
    {
        Victim v;
        const Addr naddr = v.engine->map().nodeAddrOf(
            v.engine->map().geometry().leafNodeOf(0));
        v.nvm->tamper(naddr, 5, 0x80);
        for (int i = 0; i < 4 && v.engine->violations() == 0; ++i)
            v.engine->read(0);
        results.push_back({"BMT node corruption",
                           "tree-node verification on fetch",
                           v.engine->violations() > 0});
    }
    {
        Victim v;
        v.engine->crash();
        v.nvm->tamper(v.engine->map().counterBase() + 9 * kBlockSize,
                      2, 0x10);
        const auto report = v.engine->recover();
        results.push_back({"cold attack (corrupt counter, power off)",
                           "recovery root-register mismatch",
                           !report.success});
    }
    setQuiet(false);

    TextTable table;
    table.header({"attack", "detection mechanism", "result"});
    bool all = true;
    for (const auto &a : results) {
        table.row({a.name, a.mechanism,
                   a.detected ? "DETECTED" : "missed"});
        all = all && a.detected;
    }
    std::printf("Tamper audit against AMNT-protected SCM\n\n%s\n%s\n",
                table.render().c_str(),
                all ? "all attacks detected"
                    : "SOME ATTACKS WERE MISSED");
    return all ? 0 : 1;
}
