/**
 * Figure 7: subtree hit rates for the multiprogram PARSEC pairs while
 * the AMNT subtree level sweeps from 2 to 7, with and without AMNT++.
 *
 * The paper's companion to Figure 6: hit rates fall as coverage
 * shrinks, and AMNT++ buys back at least ~5 points in the middle
 * levels for bodytrack+fluidanimate.
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();
    JsonSink json(argc, argv, "fig07_subtree_hitrate");

    constexpr unsigned kLoLevel = 2, kHiLevel = 7;
    const auto pairs = sim::parsecMultiprogramPairs();
    std::vector<sweep::Job> jobs;
    for (const auto &[a, b] : pairs) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)),
            scaledMp(sim::parsecPreset(b))};
        for (unsigned level = kLoLevel; level <= kHiLevel; ++level) {
            sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
            cfg.mee.amntSubtreeLevel = level;
            jobs.push_back(makeJob(cfg, procs, instr, warmup));
            cfg.amntpp = true;
            jobs.push_back(makeJob(cfg, procs, instr, warmup));
        }
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);
    const std::size_t stride = 2 * (kHiLevel - kLoLevel + 1);

    std::size_t pair_no = 0;
    for (const auto &[a, b] : pairs) {
        TextTable table;
        table.header({"subtree level", "amnt hit rate",
                      "amnt++ hit rate", "moves/1k (amnt)"});
        for (unsigned level = kLoLevel; level <= kHiLevel; ++level) {
            const std::size_t idx =
                pair_no * stride + 2 * (level - kLoLevel);
            const sim::RunResult &r = outcomes[idx].result;
            const sim::RunResult &rpp = outcomes[idx + 1].result;
            json.result(a + "+" + b, jobs[idx], outcomes[idx]);
            json.result(a + "+" + b, jobs[idx + 1], outcomes[idx + 1]);

            const double moves_per_k =
                r.memWrites == 0
                    ? 0.0
                    : 1000.0 *
                          static_cast<double>(r.subtreeMovements) /
                          static_cast<double>(r.memWrites);
            table.row({"L" + std::to_string(level),
                       TextTable::pct(r.subtreeHitRate, 1),
                       TextTable::pct(rpp.subtreeHitRate, 1),
                       TextTable::num(moves_per_k, 2)});
        }
        std::printf("Figure 7 [%s + %s]: subtree hit rate vs AMNT "
                    "subtree level\n\n%s\n",
                    a.c_str(), b.c_str(), table.render().c_str());
        ++pair_no;
    }
    std::printf("paper shape: hit rates decrease toward deeper "
                "levels; amnt++ >= amnt throughout (91%% -> 97%% at "
                "L3 for bodytrack+fluidanimate)\n");
    return 0;
}
