/**
 * Figure 7: subtree hit rates for the multiprogram PARSEC pairs while
 * the AMNT subtree level sweeps from 2 to 7, with and without AMNT++.
 *
 * The paper's companion to Figure 6: hit rates fall as coverage
 * shrinks, and AMNT++ buys back at least ~5 points in the middle
 * levels for bodytrack+fluidanimate.
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();

    for (const auto &[a, b] : sim::parsecMultiprogramPairs()) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)), scaledMp(sim::parsecPreset(b))};

        TextTable table;
        table.header({"subtree level", "amnt hit rate",
                      "amnt++ hit rate", "moves/1k (amnt)"});
        for (unsigned level = 2; level <= 7; ++level) {
            sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
            cfg.mee.amntSubtreeLevel = level;
            const sim::RunResult r =
                runConfig(cfg, procs, instr, warmup);

            cfg.amntpp = true;
            const sim::RunResult rpp =
                runConfig(cfg, procs, instr, warmup);

            const double moves_per_k =
                r.memWrites == 0
                    ? 0.0
                    : 1000.0 *
                          static_cast<double>(r.subtreeMovements) /
                          static_cast<double>(r.memWrites);
            table.row({"L" + std::to_string(level),
                       TextTable::pct(r.subtreeHitRate, 1),
                       TextTable::pct(rpp.subtreeHitRate, 1),
                       TextTable::num(moves_per_k, 2)});
        }
        std::printf("Figure 7 [%s + %s]: subtree hit rate vs AMNT "
                    "subtree level\n\n%s\n",
                    a.c_str(), b.c_str(), table.render().c_str());
    }
    std::printf("paper shape: hit rates decrease toward deeper "
                "levels; amnt++ >= amnt throughout (91%% -> 97%% at "
                "L3 for bodytrack+fluidanimate)\n");
    return 0;
}
