/**
 * bench_replay — host-throughput regression bench over trace replay.
 *
 * Records one trace per synthetic preset (zipfian / gups / stream)
 * under the volatile baseline — the reference stream a workload
 * generates is protocol-independent — then replays each trace through
 * every registry protocol and reports host-side replay throughput
 * (simulated data accesses per wall-clock second, best of
 * AMNT_BENCH_REPS repetitions).
 *
 * Unlike every other harness in bench/, the reported number IS a
 * wall-clock measurement: it tracks the cost of the simulator itself,
 * not a simulated quantity. CI compares the rows against the history
 * in results/BENCH_replay.json (tools/check_replay_bench.py) and
 * fails on a >20% per-(protocol, preset) regression.
 *
 *   bench_replay [--json out.json] [--protocol=NAME] [--shards=N,M]
 *
 * `--shards=` adds sharded-engine legs (shard/sharded_engine.hh) at
 * the given drain-lane counts on top of the legacy run; their rows
 * carry a "shards" field and the history check keys them separately.
 *
 * AMNT_BENCH_INSTR / AMNT_BENCH_WARMUP / AMNT_BENCH_SCALE shape the
 * run exactly like the figure harnesses; AMNT_BENCH_REPS (default 3)
 * sets the repetitions per cell.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace amnt;

namespace
{

const char *const kPresets[] = {"zipfian", "gups", "stream"};

std::string
tracePath(const std::string &preset)
{
    return "/tmp/bench_replay_" + preset + "." +
           std::to_string(static_cast<unsigned long long>(getpid())) +
           ".trc";
}

/** Record the preset's reference stream once, under volatile. */
void
record(const std::string &preset, const std::string &path,
       std::uint64_t instr, std::uint64_t warmup)
{
    sim::SystemConfig cfg =
        sim::SystemConfig::singleProgram(mee::Protocol::Volatile);
    cfg.traceRecordPath = path;
    sim::System sys(cfg);
    sys.addProcess(bench::scaled(sim::namedWorkload(preset)));
    sys.run(instr, warmup);
}

/**
 * One timed replay; returns simulated data accesses per second.
 * @p shards 0 runs the legacy single-engine path; N >= 1 runs the
 * sharded model on N drain lanes (simulated results identical across
 * N — only this wall-clock rate moves).
 */
double
replayRate(mee::Protocol p, const std::string &preset,
           const std::string &path, std::uint64_t instr,
           std::uint64_t warmup, unsigned shards = 0)
{
    sim::SystemConfig cfg = sim::SystemConfig::singleProgram(p);
    cfg.shards = shards;
    sim::WorkloadConfig w = bench::scaled(sim::namedWorkload(preset));
    w.name = "trace:" + path;
    w.traceFile = path;
    sim::System sys(cfg);
    sys.addProcess(w);
    const auto t0 = std::chrono::steady_clock::now();
    const sim::RunResult r = sys.run(instr, warmup);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    if (secs <= 0.0 || r.dataAccesses == 0)
        fatal("replay of %s under %s did nothing", preset.c_str(),
              mee::protocolName(p));
    return static_cast<double>(r.dataAccesses) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t instr = bench::benchInstructions();
    const std::uint64_t warmup = bench::benchWarmup();
    const std::uint64_t reps = envU64("AMNT_BENCH_REPS", 3);
    const std::optional<mee::Protocol> only =
        bench::protocolOverride(argc, argv);
    const std::vector<mee::Protocol> protocols =
        only ? std::vector<mee::Protocol>{*only}
             : core::allProtocols();

    // `--shards=N[,M...]`: bench the sharded engine at those lane
    // counts after the legacy run. Rows carry a "shards" field so the
    // history check keys (protocol, preset, shards) independently.
    const std::vector<unsigned> shard_list =
        bench::shardsOverride(argc, argv);

    bench::JsonSink sink(argc, argv, "bench_replay");
    TextTable table;
    table.header({"protocol", "preset", "shards", "Maccess/s"});

    std::vector<unsigned> variants = {0};
    variants.insert(variants.end(), shard_list.begin(),
                    shard_list.end());

    for (const char *preset : kPresets) {
        const std::string path = tracePath(preset);
        record(preset, path, instr, warmup);
        for (unsigned shards : variants) {
            for (mee::Protocol p : protocols) {
                double best = 0.0;
                for (std::uint64_t rep = 0; rep < reps; ++rep)
                    best = std::max(
                        best, replayRate(p, preset, path, instr,
                                         warmup, shards));
                table.row({mee::protocolName(p), preset,
                           shards == 0 ? "-"
                                       : std::to_string(shards),
                           TextTable::num(best / 1e6, 3)});
                bench::JsonRow row;
                row.field("protocol",
                          std::string(mee::protocolName(p)));
                row.field("preset", std::string(preset));
                if (shards > 0)
                    row.field("shards",
                              static_cast<std::uint64_t>(shards));
                row.field("accesses_per_sec", best);
                sink.add(row);
            }
        }
        std::remove(path.c_str());
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
