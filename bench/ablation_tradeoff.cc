/**
 * Ablation: the runtime-overhead vs recovery-time Pareto frontier —
 * the paper's central trade-off (section 1) on one axis.
 *
 * For each configuration, prints normalized runtime (measured on the
 * bodytrack+fluidanimate pair) against worst-case recovery time at
 * 2 TB (Table 4 model). Strict and leaf are the endpoints; AMNT's
 * subtree levels walk the frontier between them, which is exactly the
 * knob the administrator turns.
 */

#include "bench_util.hh"
#include "core/recovery_planner.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions() / 2;
    const std::uint64_t warmup = benchWarmup() / 2;
    constexpr std::uint64_t kTwoTb = 2ull << 40;
    JsonSink json(argc, argv, "ablation_tradeoff");

    const std::vector<sim::WorkloadConfig> procs = {
        scaledMp(sim::parsecPreset("bodytrack")),
        scaledMp(sim::parsecPreset("fluidanimate"))};

    // Jobs: volatile baseline, leaf, AMNT L2..L5, strict.
    constexpr unsigned kLoLevel = 2, kHiLevel = 5;
    std::vector<sweep::Job> jobs;
    jobs.push_back(makeJob(paperSystem(mee::Protocol::Volatile, 2),
                           procs, instr, warmup));
    jobs.push_back(makeJob(paperSystem(mee::Protocol::Leaf, 2), procs,
                           instr, warmup));
    for (unsigned level = kLoLevel; level <= kHiLevel; ++level) {
        sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
        cfg.mee.amntSubtreeLevel = level;
        jobs.push_back(makeJob(cfg, procs, instr, warmup));
    }
    jobs.push_back(makeJob(paperSystem(mee::Protocol::Strict, 2),
                           procs, instr, warmup));
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);

    const double base_cycles =
        static_cast<double>(outcomes[0].result.cycles);
    core::RecoveryModel model;
    auto norm_of = [&](std::size_t idx) {
        return static_cast<double>(outcomes[idx].result.cycles) /
               base_cycles;
    };
    json.result("volatile baseline", jobs[0], outcomes[0], 1.0);

    TextTable table;
    table.header({"configuration", "runtime (norm.)",
                  "recovery @ 2TB (ms)", "stale BMT"});

    json.result("leaf", jobs[1], outcomes[1], norm_of(1));
    table.row({"leaf", TextTable::num(norm_of(1), 3),
               TextTable::num(model.leafMs(kTwoTb), 2), "100%"});
    for (unsigned level = kLoLevel; level <= kHiLevel; ++level) {
        const std::size_t idx = 2 + (level - kLoLevel);
        json.result("amnt L" + std::to_string(level), jobs[idx],
                    outcomes[idx], norm_of(idx));
        table.row(
            {"amnt L" + std::to_string(level),
             TextTable::num(norm_of(idx), 3),
             TextTable::num(model.amntMs(kTwoTb, level), 2),
             TextTable::pct(
                 core::RecoveryModel::amntStaleFraction(level), 2)});
    }
    const std::size_t strict_idx = jobs.size() - 1;
    json.result("strict", jobs[strict_idx], outcomes[strict_idx],
                norm_of(strict_idx));
    table.row({"strict", TextTable::num(norm_of(strict_idx), 3),
               TextTable::num(model.strictMs(kTwoTb), 2), "0%"});

    std::printf("Ablation: runtime vs recovery trade-off "
                "(bodytrack+fluidanimate, 2 cores)\n\n%s\n",
                table.render().c_str());
    std::printf("shape: leaf and strict are the endpoints of section "
                "1's trade-off; AMNT's subtree level walks the "
                "frontier between them (shallow = near-leaf runtime, "
                "deep = near-strict runtime but tiny recovery)\n");
    return 0;
}
