/**
 * Ablation: the runtime-overhead vs recovery-time Pareto frontier —
 * the paper's central trade-off (section 1) on one axis.
 *
 * For each configuration, prints normalized runtime (measured on the
 * bodytrack+fluidanimate pair) against worst-case recovery time at
 * 2 TB (Table 4 model). Strict and leaf are the endpoints; AMNT's
 * subtree levels walk the frontier between them, which is exactly the
 * knob the administrator turns.
 */

#include "bench_util.hh"
#include "core/recovery_planner.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions() / 2;
    const std::uint64_t warmup = benchWarmup() / 2;
    constexpr std::uint64_t kTwoTb = 2ull << 40;

    const std::vector<sim::WorkloadConfig> procs = {
        scaledMp(sim::parsecPreset("bodytrack")),
        scaledMp(sim::parsecPreset("fluidanimate"))};

    const sim::RunResult base =
        runConfig(paperSystem(mee::Protocol::Volatile, 2), procs,
                  instr, warmup);
    const double base_cycles = static_cast<double>(base.cycles);
    core::RecoveryModel model;

    TextTable table;
    table.header({"configuration", "runtime (norm.)",
                  "recovery @ 2TB (ms)", "stale BMT"});

    auto run_proto = [&](mee::Protocol p) {
        return static_cast<double>(
                   runConfig(paperSystem(p, 2), procs, instr, warmup)
                       .cycles) /
               base_cycles;
    };

    table.row({"leaf", TextTable::num(run_proto(mee::Protocol::Leaf), 3),
               TextTable::num(model.leafMs(kTwoTb), 2), "100%"});
    for (unsigned level = 2; level <= 5; ++level) {
        sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
        cfg.mee.amntSubtreeLevel = level;
        const double norm =
            static_cast<double>(
                runConfig(cfg, procs, instr, warmup).cycles) /
            base_cycles;
        table.row(
            {"amnt L" + std::to_string(level), TextTable::num(norm, 3),
             TextTable::num(model.amntMs(kTwoTb, level), 2),
             TextTable::pct(
                 core::RecoveryModel::amntStaleFraction(level), 2)});
    }
    table.row({"strict",
               TextTable::num(run_proto(mee::Protocol::Strict), 3),
               TextTable::num(model.strictMs(kTwoTb), 2), "0%"});

    std::printf("Ablation: runtime vs recovery trade-off "
                "(bodytrack+fluidanimate, 2 cores)\n\n%s\n",
                table.render().c_str());
    std::printf("shape: leaf and strict are the endpoints of section "
                "1's trade-off; AMNT's subtree level walks the "
                "frontier between them (shallow = near-leaf runtime, "
                "deep = near-strict runtime but tiny recovery)\n");
    return 0;
}
