/**
 * Table 3: hardware overheads of BMF, Anubis, and AMNT for a 64 kB
 * metadata cache — non-volatile on-chip, volatile on-chip, and
 * in-memory space — computed from the same configuration structs the
 * engines run with, plus the AMNT detail rows (96 B history buffer,
 * 64 B NV subtree register) from sections 4.2 and 6.6.
 */

#include "bench_util.hh"
#include "core/history_buffer.hh"
#include "core/hw_overhead.hh"

using namespace amnt;
using namespace amnt::bench;

namespace
{

std::string
bytes(std::uint64_t b)
{
    if (b == 0)
        return "-";
    if (b % 1024 == 0 && b >= 1024)
        return std::to_string(b / 1024) + " kB";
    return std::to_string(b) + " B";
}

} // namespace

int
main(int argc, char **argv)
{
    JsonSink json(argc, argv, "table3_hw_overhead");
    mee::MeeConfig cfg; // Table 1 defaults: 64 kB metadata cache

    TextTable table;
    table.header({"", "NV on-chip", "vol. on-chip", "in-memory"});
    for (mee::Protocol p : {mee::Protocol::Bmf, mee::Protocol::Anubis,
                            mee::Protocol::Amnt}) {
        const core::HwOverhead hw = core::hwOverheadOf(p, cfg);
        table.row({protocolName(p), bytes(hw.nvOnChip),
                   bytes(hw.volatileOnChip), bytes(hw.inMemory)});
        JsonRow jrow;
        jrow.field("label", std::string(protocolName(p)))
            .field("nv_on_chip_bytes", hw.nvOnChip)
            .field("volatile_on_chip_bytes", hw.volatileOnChip)
            .field("in_memory_bytes", hw.inMemory);
        json.add(jrow);
    }

    std::printf("Table 3: hardware overheads for a %llu kB metadata "
                "cache\n\n%s\n",
                static_cast<unsigned long long>(
                    cfg.metaCache.sizeBytes / 1024),
                table.render().c_str());

    const core::HistoryBuffer hb(cfg.amntHistoryEntries, 0);
    std::printf("AMNT detail: history buffer %llu entries x 2 x "
                "log2(n) bits = %llu bits (%llu B, volatile); one "
                "64 B NV subtree-root register; dirty-path bitmap "
                "128 bits. All independent of metadata cache and "
                "memory size.\n",
                static_cast<unsigned long long>(hb.capacity()),
                static_cast<unsigned long long>(hb.storageBits()),
                static_cast<unsigned long long>(hb.storageBits() / 8));
    std::printf("paper anchors: BMF 4kB/768B/-, Anubis 64B/37kB/37kB, "
                "AMNT 64B/96B/-\n");
    return 0;
}
