/**
 * Table 4: recovery times (ms) as a function of memory size for every
 * protocol, from the analytic bandwidth model of section 6.7 (reads
 * bound at 12 GB/s, level-by-level recompute), plus the stale-BMT
 * percentage column.
 *
 * A second section validates the model against *functional* recovery:
 * a small (64 MB) instance of each protocol is run, crashed, and
 * recovered for real, reporting measured recovery traffic. The six
 * protocol instances are independent, so they run on the sweep pool.
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/amnt.hh"
#include "core/recovery_planner.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    JsonSink json(argc, argv, "table4_recovery");
    core::RecoveryModel model;
    constexpr std::uint64_t kTb = 1ull << 40;
    const std::uint64_t sizes[] = {2 * kTb, 16 * kTb, 128 * kTb};

    TextTable table;
    table.header(
        {"", "2.00TB", "16.00TB", "128.00TB", "BMT stale %"});

    auto row = [&](const std::string &name, auto fn,
                   const std::string &stale) {
        std::vector<std::string> cells = {name};
        JsonRow jrow;
        jrow.field("label", name).field("stale_bmt", stale);
        for (std::uint64_t s : sizes) {
            const double ms = fn(s);
            cells.push_back(TextTable::num(ms, 2));
            jrow.field(
                ("recovery_ms_" + std::to_string(s / kTb) + "tb")
                    .c_str(),
                ms);
        }
        cells.push_back(stale);
        table.row(cells);
        json.add(jrow);
    };

    row("leaf", [&](std::uint64_t s) { return model.leafMs(s); },
        "100%");
    row("strict", [&](std::uint64_t s) { return model.strictMs(s); },
        "0%");
    row("Anubis", [&](std::uint64_t) { return model.anubisMs(); },
        "fixed");
    row("Osiris", [&](std::uint64_t s) { return model.osirisMs(s); },
        "100%*");
    row("BMF", [&](std::uint64_t s) { return model.bmfMs(s); }, "0%");
    for (unsigned level = 2; level <= 4; ++level) {
        row("AMNT L" + std::to_string(level),
            [&, level](std::uint64_t s) {
                return model.amntMs(s, level);
            },
            TextTable::pct(core::RecoveryModel::amntStaleFraction(level),
                           level >= 4 ? 2 : 2));
    }
    row("Phoenix",
        [&](std::uint64_t) {
            return model.phoenixMs(mee::MeeConfig{}.phoenixEpoch);
        },
        "1 epoch");
    row("STIT", [&](std::uint64_t s) { return model.stitMs(s); },
        "100%");

    std::printf("Table 4: recovery times (ms) vs memory size "
                "(analytic model, 12 GB/s read-bound)\n\n%s\n",
                table.render().c_str());

    // Planner demonstration (section 6.7's administrator knob).
    std::printf("planner: 2TB with a 100 ms budget -> level %u; "
                "with a 1 s budget -> level %u; 0.01 s at 2TB needs "
                "level %u (paper: L4 = 0.01 s)\n\n",
                model.levelForBudget(2 * kTb, 100.0, 7),
                model.levelForBudget(2 * kTb, 1000.0, 7),
                model.levelForBudget(2 * kTb, 13.0, 7));

    // Functional validation at 64 MB: crash + real recovery. Each
    // protocol instance owns its engine and NVM, so the recoveries
    // run in parallel and report in protocol order.
    std::printf("functional validation (64 MB instance, real crash "
                "+ recovery):\n");
    const std::vector<mee::Protocol> protocols =
        core::persistentProtocols();
    std::vector<mee::RecoveryReport> reports(protocols.size());
    sweep::parallelFor(protocols.size(), [&](std::size_t i) {
        mee::MeeConfig cfg;
        cfg.dataBytes = 64ull << 20;
        cfg.trackContents = false;
        cfg.keySeed = 99;
        mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
        auto engine = core::makeEngine(protocols[i], cfg, nvm);
        Rng rng(4242);
        for (int w = 0; w < 20000; ++w)
            engine->write(rng.below(16384) * kPageSize +
                          rng.below(64) * kBlockSize);
        engine->crash();
        reports[i] = engine->recover();
    });

    TextTable fv;
    fv.header({"protocol", "success", "blocks read", "blocks written",
               "est. ms"});
    for (std::size_t i = 0; i < protocols.size(); ++i) {
        const mee::RecoveryReport &report = reports[i];
        fv.row({protocolName(protocols[i]),
                report.success ? "yes" : "NO",
                TextTable::big(report.blocksRead),
                TextTable::big(report.blocksWritten),
                TextTable::num(report.estimatedMs, 4)});
        JsonRow jrow;
        jrow.field("label",
                   std::string("functional ") +
                       protocolName(protocols[i]))
            .field("success", report.success)
            .field("blocks_read", report.blocksRead)
            .field("blocks_written", report.blocksWritten)
            .field("estimated_ms", report.estimatedMs);
        json.add(jrow);
    }
    std::printf("%s\n", fv.render().c_str());
    std::printf("paper anchors: leaf 6222/49778/398222 ms; Osiris "
                "8.1x leaf; Anubis 1.3 ms fixed; strict/BMF 0; "
                "AMNT L2/L3/L4 = leaf / 8 / 64 / 512\n");
    return 0;
}
