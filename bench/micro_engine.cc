/**
 * Microbenchmark: raw MemoryEngine::read / MemoryEngine::write
 * throughput (host accesses per second) for every protocol — the
 * single-thread hot path that bounds how fast the figure sweeps can
 * simulate. Unlike micro_crypto this is a plain chrono binary, so it
 * doubles as a quick regression check for the engine fast path.
 *
 * Environment knobs:
 *   AMNT_MICRO_OPS  accesses measured per protocol and op (def. 400k)
 *
 * Accepts `--json <path>` / AMNT_BENCH_JSON like the figure benches.
 */

#include <chrono>

#include "bench_util.hh"
#include "core/amnt.hh"
#include "mem/memory_map.hh"

using namespace amnt;
using namespace amnt::bench;

namespace
{

constexpr std::uint64_t kPages = 16384; // 64 MB footprint

/**
 * Page for op @p i: a full-period odd-stride scramble. Successive
 * accesses land on uncorrelated pages, like the randomized workload
 * traces the figure sweeps replay — a linear sweep would instead
 * measure the allocator's luck at laying metadata out in sweep order.
 */
std::uint64_t
scrambledPage(std::uint64_t i)
{
    return (i * 10368889) % kPages;
}

double
secondsOf(const std::function<void(std::uint64_t)> &op,
          std::uint64_t ops)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        op(i);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops = envU64("AMNT_MICRO_OPS", 400'000);
    JsonSink json(argc, argv, "micro_engine");

    TextTable table;
    table.header({"protocol", "write M/s", "read M/s", "write ns",
                  "read ns"});

    for (mee::Protocol p : core::allProtocols()) {
        mee::MeeConfig cfg;
        cfg.dataBytes = 64ull << 20;
        cfg.keySeed = 5;
        mem::NvmDevice nvm(
            mem::MemoryMap(cfg.dataBytes).deviceBytes());
        auto engine = core::makeEngine(p, cfg, nvm);

        // Touch the footprint once so reads hit initialized blocks
        // and the steady-state path is measured, not first-touch.
        for (std::uint64_t page = 0; page < kPages; ++page)
            engine->write(page * kPageSize);

        const double wsec = secondsOf(
            [&](std::uint64_t i) {
                engine->write(scrambledPage(i) * kPageSize);
            },
            ops);
        const double rsec = secondsOf(
            [&](std::uint64_t i) {
                engine->read(scrambledPage(i) * kPageSize);
            },
            ops);

        const double wps = static_cast<double>(ops) / wsec;
        const double rps = static_cast<double>(ops) / rsec;
        table.row({protocolName(p), TextTable::num(wps / 1e6, 3),
                   TextTable::num(rps / 1e6, 3),
                   TextTable::num(1e9 * wsec /
                                      static_cast<double>(ops),
                                  1),
                   TextTable::num(1e9 * rsec /
                                      static_cast<double>(ops),
                                  1)});

        JsonRow row;
        row.field("label", std::string(protocolName(p)))
            .field("ops", ops)
            .field("write_accesses_per_sec", wps)
            .field("read_accesses_per_sec", rps)
            .field("write_wall_seconds", wsec)
            .field("read_wall_seconds", rsec);
        json.add(row);
    }

    std::printf("micro_engine: raw MemoryEngine access throughput "
                "(%llu ops per cell, 64 MB footprint)\n\n%s\n",
                static_cast<unsigned long long>(ops),
                table.render().c_str());
    return 0;
}
