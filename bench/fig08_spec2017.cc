/**
 * Figure 8: normalized cycles for SPEC CPU2017 under {leaf, strict,
 * anubis, bmf, amnt}, four cores (one program per core, SimPoint-like
 * fast-forward via warm-up), normalized to the volatile write-back
 * secure-memory baseline.
 *
 * Paper anchors: AMNT within 2% of leaf on average and up to 8x
 * better than strict; 13% (avg) / 41% (max) better than Anubis; on
 * write-intensive xz: amnt 1.32x vs anubis 1.41x vs bmf ~7x; on
 * read-intensive mcf/cactuBSSN, amnt ~ leaf while anubis/bmf lag.
 */

#include <map>

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    // Four copies of the benchmark, one per core, as in rate-style
    // multithreaded evaluation (section 6.5).
    const std::uint64_t instr = benchInstructions() / 2;
    const std::uint64_t warmup = benchWarmup() / 2;
    JsonSink json(argc, argv, "fig08_spec2017");

    const std::vector<std::string> benchmarks = sim::specBenchmarks();
    std::vector<sweep::Job> jobs;
    for (const std::string &name : benchmarks) {
        std::vector<sim::WorkloadConfig> procs;
        for (int copy = 0; copy < 4; ++copy) {
            sim::WorkloadConfig w = scaled(sim::specPreset(name));
            w.seed += static_cast<std::uint64_t>(copy) * 977;
            procs.push_back(w);
        }
        jobs.push_back(makeJob(paperSystem(mee::Protocol::Volatile, 4),
                               procs, instr, warmup));
        for (mee::Protocol p : figureProtocols())
            jobs.push_back(
                makeJob(paperSystem(p, 4), procs, instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);
    const std::size_t stride = 1 + figureProtocols().size();

    TextTable table;
    table.header({"benchmark", "leaf", "strict", "anubis", "bmf",
                  "amnt", "amnt_hit"});
    std::map<std::string, double> sums;
    std::size_t rows = 0;

    for (const std::string &name : benchmarks) {
        const std::size_t base_idx = rows * stride;
        const double base_cycles = static_cast<double>(
            outcomes[base_idx].result.cycles);
        json.result(name, jobs[base_idx], outcomes[base_idx], 1.0);

        std::vector<std::string> row = {name};
        double amnt_hit = 0.0;
        std::size_t idx = base_idx + 1;
        for (mee::Protocol p : figureProtocols()) {
            const sim::RunResult &r = outcomes[idx].result;
            const double norm =
                static_cast<double>(r.cycles) / base_cycles;
            sums[protocolName(p)] += norm;
            row.push_back(TextTable::num(norm, 3));
            json.result(name, jobs[idx], outcomes[idx], norm);
            if (p == mee::Protocol::Amnt)
                amnt_hit = r.subtreeHitRate;
            ++idx;
        }
        row.push_back(TextTable::pct(amnt_hit, 1));
        table.row(row);
        ++rows;
    }

    std::vector<std::string> mean_row = {"average"};
    for (const char *key : {"leaf", "strict", "anubis", "bmf", "amnt"})
        mean_row.push_back(
            TextTable::num(sums[key] / static_cast<double>(rows), 3));
    table.row(mean_row);

    std::printf("Figure 8: normalized cycles, SPEC CPU2017, 4 cores "
                "(volatile baseline = 1.0)\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: amnt <= leaf + 2%%; amnt beats anubis "
                "by 13%% avg / 41%% max; xz: amnt 1.32 vs anubis 1.41 "
                "vs bmf ~7; bmf resembles strict on write-heavy "
                "workloads\n");
    return 0;
}
