/**
 * Figure 4: normalized cycles for single-program PARSEC workloads.
 *
 * One core, Table-1 configuration; every protocol normalized to the
 * volatile (write-back) secure-memory baseline. amnt++ is amnt plus
 * the modified physical page allocator. The paper's headline numbers:
 * leaf 1.08x, strict 2.39x, amnt 1.16x, amnt++ 1.10x on average, with
 * Anubis collapsing on metadata-cache-hostile canneal (2.4x).
 */

#include <map>

#include "bench_util.hh"
#include "common/table.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();

    TextTable table;
    table.header({"benchmark", "leaf", "strict", "anubis", "bmf",
                  "amnt", "amnt++", "amnt_hit", "moves/1k"});

    std::map<std::string, double> sums;
    std::size_t rows = 0;

    for (const std::string &name : sim::parsecBenchmarks()) {
        const sim::WorkloadConfig w = scaled(sim::parsecPreset(name));

        const sim::RunResult base =
            runConfig(paperSystem(mee::Protocol::Volatile, 1), {w},
                      instr, warmup);
        const double base_cycles = static_cast<double>(base.cycles);

        std::vector<std::string> row = {name};
        auto add = [&](const char *key, const sim::RunResult &r) {
            const double norm =
                static_cast<double>(r.cycles) / base_cycles;
            sums[key] += norm;
            row.push_back(TextTable::num(norm, 3));
            return norm;
        };

        sim::RunResult amnt_result;
        for (mee::Protocol p : figureProtocols()) {
            const sim::RunResult r =
                runConfig(paperSystem(p, 1), {w}, instr, warmup);
            add(protocolName(p), r);
            if (p == mee::Protocol::Amnt)
                amnt_result = r;
        }
        {
            sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 1);
            cfg.amntpp = true;
            const sim::RunResult r = runConfig(cfg, {w}, instr, warmup);
            add("amnt++", r);
        }
        row.push_back(TextTable::pct(amnt_result.subtreeHitRate, 1));
        const double moves_per_k =
            amnt_result.memWrites == 0
                ? 0.0
                : 1000.0 *
                      static_cast<double>(amnt_result.subtreeMovements) /
                      static_cast<double>(amnt_result.memWrites);
        row.push_back(TextTable::num(moves_per_k, 2));
        table.row(row);
        ++rows;
    }

    std::vector<std::string> mean_row = {"geomean-ish (arith.)"};
    for (const char *key :
         {"leaf", "strict", "anubis", "bmf", "amnt", "amnt++"})
        mean_row.push_back(
            TextTable::num(sums[key] / static_cast<double>(rows), 3));
    table.row(mean_row);

    std::printf("Figure 4: normalized cycles, single-program PARSEC "
                "(volatile baseline = 1.0)\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: leaf 1.08, strict 2.39, amnt 1.16, "
                "amnt++ 1.10 (averages); anubis ~2.4 on canneal\n");
    return 0;
}
