/**
 * Figure 4: normalized cycles for single-program PARSEC workloads.
 *
 * One core, Table-1 configuration; every protocol normalized to the
 * volatile (write-back) secure-memory baseline. amnt++ is amnt plus
 * the modified physical page allocator. The paper's headline numbers:
 * leaf 1.08x, strict 2.39x, amnt 1.16x, amnt++ 1.10x on average, with
 * Anubis collapsing on metadata-cache-hostile canneal (2.4x).
 */

#include <map>

#include "bench_util.hh"
#include "common/table.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();
    JsonSink json(argc, argv, "fig04_parsec_single");

    // Matrix: per benchmark, the volatile baseline, the five figure
    // protocols, then amnt++ — 7 jobs per row, all independent.
    const std::vector<std::string> benchmarks = sim::parsecBenchmarks();
    std::vector<sweep::Job> jobs;
    for (const std::string &name : benchmarks) {
        const sim::WorkloadConfig w = scaled(sim::parsecPreset(name));
        jobs.push_back(makeJob(paperSystem(mee::Protocol::Volatile, 1),
                               {w}, instr, warmup));
        for (mee::Protocol p : figureProtocols())
            jobs.push_back(
                makeJob(paperSystem(p, 1), {w}, instr, warmup));
        sim::SystemConfig pp = paperSystem(mee::Protocol::Amnt, 1);
        pp.amntpp = true;
        jobs.push_back(makeJob(pp, {w}, instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);
    const std::size_t stride = 2 + figureProtocols().size();

    TextTable table;
    table.header({"benchmark", "leaf", "strict", "anubis", "bmf",
                  "amnt", "amnt++", "amnt_hit", "moves/1k"});

    std::map<std::string, double> sums;
    std::size_t rows = 0;

    for (const std::string &name : benchmarks) {
        const std::size_t base_idx = rows * stride;
        const double base_cycles = static_cast<double>(
            outcomes[base_idx].result.cycles);
        json.result(name, jobs[base_idx], outcomes[base_idx], 1.0);

        std::vector<std::string> row = {name};
        auto add = [&](const char *key, std::size_t idx) {
            const sim::RunResult &r = outcomes[idx].result;
            const double norm =
                static_cast<double>(r.cycles) / base_cycles;
            sums[key] += norm;
            row.push_back(TextTable::num(norm, 3));
            json.result(name, jobs[idx], outcomes[idx], norm);
        };

        sim::RunResult amnt_result;
        std::size_t idx = base_idx + 1;
        for (mee::Protocol p : figureProtocols()) {
            add(protocolName(p), idx);
            if (p == mee::Protocol::Amnt)
                amnt_result = outcomes[idx].result;
            ++idx;
        }
        add("amnt++", idx);
        row.push_back(TextTable::pct(amnt_result.subtreeHitRate, 1));
        const double moves_per_k =
            amnt_result.memWrites == 0
                ? 0.0
                : 1000.0 *
                      static_cast<double>(amnt_result.subtreeMovements) /
                      static_cast<double>(amnt_result.memWrites);
        row.push_back(TextTable::num(moves_per_k, 2));
        table.row(row);
        ++rows;
    }

    std::vector<std::string> mean_row = {"geomean-ish (arith.)"};
    for (const char *key :
         {"leaf", "strict", "anubis", "bmf", "amnt", "amnt++"})
        mean_row.push_back(
            TextTable::num(sums[key] / static_cast<double>(rows), 3));
    table.row(mean_row);

    std::printf("Figure 4: normalized cycles, single-program PARSEC "
                "(volatile baseline = 1.0)\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: leaf 1.08, strict 2.39, amnt 1.16, "
                "amnt++ 1.10 (averages); anubis ~2.4 on canneal\n");
    return 0;
}
