/**
 * @file
 * Shared plumbing for the experiment harnesses in bench/.
 *
 * Every binary regenerates one table or figure of the paper: it runs
 * the same protocol set over the same workloads and prints the same
 * rows/series the paper reports (normalized cycles, hit rates,
 * recovery milliseconds). Scale differs from the authors' testbed —
 * these are scaled-down regions of interest on a simulator — so the
 * *shape* (who wins, by roughly what factor, where crossovers fall)
 * is the reproduction target; see EXPERIMENTS.md.
 *
 * Harnesses enqueue their whole configuration matrix as sweep::Jobs
 * and execute it once through sweepConfigs(), which fans the
 * independent simulations out over a work-stealing thread pool
 * (AMNT_SWEEP_THREADS workers) and returns outcomes in submission
 * order — tables are formatted from the outcome vector afterwards, so
 * stdout is byte-identical at any thread count.
 *
 * Environment knobs:
 *   AMNT_BENCH_INSTR    instructions per core measured  (default 2M)
 *   AMNT_BENCH_WARMUP   warm-up instructions per core   (default 1M)
 *   AMNT_BENCH_SCALE    divisor applied to preset footprints (def. 4)
 *   AMNT_SWEEP_THREADS  sweep worker count (default: hardware threads)
 *   AMNT_BENCH_JSON     write per-row machine-readable results here
 *   AMNT_BENCH_STATS    1 = embed each row's full stats-registry
 *                       snapshot (sweep::Outcome::statsJson) as a
 *                       "stats" object in the JSON rows
 *
 * Every harness also accepts `--json <path>` (overrides the
 * environment variable), plus a workload override:
 *   --workload=NAME  run the whole protocol/config matrix on this
 *                    one workload (PARSEC, SPEC, or synthetic
 *                    preset: zipfian gups stream kvstore chase)
 *   --trace=PATH     same, replaying a recorded trace (sim/traceio/);
 *                    combine with --workload=NAME to reproduce the
 *                    recording workload's pre-ROI hot-page
 *                    initialization (required for bit-identical
 *                    record/replay stats)
 *   --protocol=NAME  run every job of the matrix under this protocol
 *                    (any name registered in core/protocol_registry;
 *                    an unknown name dies listing them all)
 * The overrides substitute every process/job of the matrix, so row
 * labels keep the harness's own naming while all rows measure the
 * chosen workload or protocol. Recording is orthogonal: AMNT_TRACE_RECORD=<path>
 * captures every simulated run (see sim/system.hh).
 */

#ifndef AMNT_BENCH_BENCH_UTIL_HH
#define AMNT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "core/protocol_registry.hh"
#include "sim/presets.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace amnt::bench
{

inline std::uint64_t
benchInstructions()
{
    return envU64("AMNT_BENCH_INSTR", 2'000'000);
}

inline std::uint64_t
benchWarmup()
{
    return envU64("AMNT_BENCH_WARMUP", 1'000'000);
}

/**
 * Scale a preset's footprint down so scaled-down instruction counts
 * still revisit their working set (the paper runs 1B+ instructions;
 * we default to 2M measured).
 */
inline sim::WorkloadConfig
scaled(sim::WorkloadConfig w)
{
    const std::uint64_t divisor = envU64("AMNT_BENCH_SCALE", 4);
    w.footprintPages =
        std::max<std::uint64_t>(256, w.footprintPages / divisor);
    return w;
}

/**
 * Multiprogram footprints stay at full size: the interference
 * effects of Figures 5-7 only appear when the combined hot sets
 * compete for (and overflow) one subtree region.
 */
inline sim::WorkloadConfig
scaledMp(sim::WorkloadConfig w)
{
    const std::uint64_t divisor = envU64("AMNT_BENCH_SCALE_MP", 1);
    w.footprintPages =
        std::max<std::uint64_t>(256, w.footprintPages / divisor);
    return w;
}

/**
 * The protocol columns of Figures 4/5 (amnt++ handled separately),
 * derived from ProtocolInfo::figureOrder in the registry so the
 * harness columns and the golden pins can never drift apart.
 */
inline const std::vector<mee::Protocol> &
figureProtocols()
{
    static const std::vector<mee::Protocol> p =
        core::figureProtocols();
    return p;
}

/**
 * Parse a `--protocol=NAME` / `--protocol NAME` override against the
 * registry. Returns nullopt when the flag is absent; fatal (listing
 * every registered name) on an unknown protocol.
 */
inline std::optional<mee::Protocol>
protocolOverride(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string eq = "--protocol=";
        if (arg.rfind(eq, 0) == 0)
            return core::protocolByName(arg.substr(eq.size()));
        if (arg == "--protocol") {
            if (i + 1 >= argc)
                fatal("--protocol needs a value (one of: %s)",
                      core::protocolNameList().c_str());
            return core::protocolByName(argv[i + 1]);
        }
    }
    return std::nullopt;
}

/**
 * Parse a `--shards=N[,M...]` / `--shards N[,M...]` override: the
 * sharded-engine lane counts to bench in addition to the legacy
 * single-engine run (see shard/sharded_engine.hh — the lane count is
 * host execution policy, so simulated results are byte-identical
 * across the list; only wall-clock throughput moves). Returns an
 * empty list when the flag is absent; fatal on malformed values.
 */
inline std::vector<unsigned>
shardsOverride(int argc, char **argv)
{
    std::string spec;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string eq = "--shards=";
        if (arg.rfind(eq, 0) == 0) {
            spec = arg.substr(eq.size());
        } else if (arg == "--shards") {
            if (i + 1 >= argc)
                fatal("--shards needs a value, e.g. --shards=1,4");
            spec = argv[i + 1];
        }
    }
    std::vector<unsigned> shards;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string tok = spec.substr(pos, end - pos);
        char *rest = nullptr;
        const unsigned long v = std::strtoul(tok.c_str(), &rest, 10);
        if (tok.empty() || *rest != '\0' || v == 0)
            fatal("--shards: '%s' is not a positive lane count",
                  tok.c_str());
        shards.push_back(static_cast<unsigned>(v));
        pos = end + 1;
    }
    return shards;
}

/**
 * Apply a `--protocol=` override to a built job matrix: every job
 * simulates the chosen protocol while keeping its label, workload,
 * and core count. No-op without the flag.
 */
inline void
applyProtocolOverride(std::vector<sweep::Job> &jobs, int argc,
                      char **argv)
{
    const std::optional<mee::Protocol> over =
        protocolOverride(argc, argv);
    if (!over)
        return;
    for (sweep::Job &job : jobs)
        job.config.protocol = *over;
}

/**
 * Parse a `--workload=NAME` / `--trace=PATH` override (both `=` and
 * two-token spellings). Returns the override workload, or nullopt
 * when neither flag is present; fatal on conflicting or malformed
 * flags. Named workloads are resolved across every suite and scaled
 * like the harness presets (AMNT_BENCH_SCALE).
 */
inline std::optional<sim::WorkloadConfig>
workloadOverride(int argc, char **argv)
{
    std::string workload, trace;
    auto grab = [&](const std::string &arg, const char *flag,
                    int i, std::string &out) {
        const std::string eq = std::string(flag) + "=";
        if (arg.rfind(eq, 0) == 0) {
            out = arg.substr(eq.size());
            return true;
        }
        if (arg == flag) {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            out = argv[i + 1];
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        grab(arg, "--workload", i, workload) ||
            grab(arg, "--trace", i, trace);
    }
    if (!trace.empty()) {
        // --workload alongside --trace names the recording workload:
        // its parameters shape the pre-ROI hot-page initialization,
        // which replay must repeat for bit-identical stats.
        sim::WorkloadConfig w =
            workload.empty() ? sim::WorkloadConfig{}
                             : scaled(sim::namedWorkload(workload));
        w.name = "trace:" + trace;
        w.traceFile = trace;
        return w;
    }
    if (!workload.empty())
        return scaled(sim::namedWorkload(workload));
    return std::nullopt;
}

/**
 * Apply the `--workload=` / `--trace=` override to a built job
 * matrix: every process of every job runs the override instead of
 * the harness's preset (protocols, core counts, and system configs
 * are untouched). No-op without the flags.
 */
inline void
applyWorkloadOverride(std::vector<sweep::Job> &jobs, int argc,
                      char **argv)
{
    const std::optional<sim::WorkloadConfig> over =
        workloadOverride(argc, argv);
    if (!over)
        return;
    for (sweep::Job &job : jobs) {
        for (sim::WorkloadConfig &w : job.processes)
            w = *over;
    }
}

/**
 * Execute the whole configuration matrix on the sweep pool and return
 * the outcomes in submission order (deterministic: each job owns its
 * full simulator, so outcome i is bit-identical to running job i
 * alone).
 */
inline std::vector<sweep::Outcome>
sweepConfigs(const std::vector<sweep::Job> &jobs)
{
    return sweep::run(jobs);
}

/** Convenience builder for the common one-config job. */
inline sweep::Job
makeJob(sim::SystemConfig cfg,
        std::vector<sim::WorkloadConfig> procs, std::uint64_t instr,
        std::uint64_t warmup)
{
    return sweep::Job{std::move(cfg), std::move(procs), instr, warmup};
}

/**
 * Run one configuration serially, in place. Kept for callers outside
 * the harnesses (tests, examples); the harnesses themselves batch
 * through sweepConfigs().
 */
inline sim::RunResult
runConfig(sim::SystemConfig cfg,
          const std::vector<sim::WorkloadConfig> &procs,
          std::uint64_t instr, std::uint64_t warmup)
{
    sim::System sys(cfg);
    for (const auto &w : procs)
        sys.addProcess(w);
    return sys.run(instr, warmup);
}

/** AMNT_BENCH_STATS: embed registry snapshots in JSON rows. */
inline bool
benchStatsEnabled()
{
    static const bool on = envU64("AMNT_BENCH_STATS", 0) != 0;
    return on;
}

/** Paper Table 1 system config at the chosen core count. */
inline sim::SystemConfig
paperSystem(mee::Protocol p, unsigned cores)
{
    sim::SystemConfig cfg =
        cores == 1   ? sim::SystemConfig::singleProgram(p)
        : cores == 2 ? sim::SystemConfig::multiProgram(p)
                     : sim::SystemConfig::specQuad(p);
    cfg.mee.dataBytes = 8ull << 30;
    return cfg;
}

// ------------------------------------------------------------- JSON sink

/** One JSON object, built field by field (insertion order kept). */
class JsonRow
{
  public:
    JsonRow &
    field(const char *key, const std::string &value)
    {
        sep();
        body_ += '"';
        body_ += key;
        body_ += "\": \"";
        for (char c : value) {
            if (c == '"' || c == '\\')
                body_ += '\\';
            body_ += c;
        }
        body_ += '"';
        return *this;
    }

    JsonRow &
    field(const char *key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        return raw(key, buf);
    }

    JsonRow &
    field(const char *key, std::uint64_t value)
    {
        return raw(key, std::to_string(value));
    }

    JsonRow &
    field(const char *key, bool value)
    {
        return raw(key, value ? "true" : "false");
    }

    /** Embed pre-rendered JSON (an object or array) verbatim. */
    JsonRow &
    rawField(const char *key, const std::string &json)
    {
        return raw(key, json);
    }

    std::string str() const { return "{" + body_ + "}"; }

  private:
    JsonRow &
    raw(const char *key, const std::string &text)
    {
        sep();
        body_ += '"';
        body_ += key;
        body_ += "\": ";
        body_ += text;
        return *this;
    }

    void
    sep()
    {
        if (!body_.empty())
            body_ += ", ";
    }

    std::string body_;
};

/**
 * Machine-readable results file, enabled by `--json <path>` or
 * AMNT_BENCH_JSON. Rows accumulate in memory and flush as one JSON
 * document ({"bench": ..., "rows": [...]}) at destruction; when
 * disabled every call is a no-op.
 */
class JsonSink
{
  public:
    JsonSink(int argc, char **argv, std::string bench)
        : bench_(std::move(bench))
    {
        if (const char *env = std::getenv("AMNT_BENCH_JSON"))
            path_ = env;
        for (int i = 1; i + 1 < argc; ++i) {
            if (std::string(argv[i]) == "--json")
                path_ = argv[i + 1];
        }
    }

    JsonSink(const JsonSink &) = delete;
    JsonSink &operator=(const JsonSink &) = delete;

    ~JsonSink()
    {
        if (path_.empty())
            return;
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write JSON to %s\n",
                         path_.c_str());
            return;
        }
        std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [",
                     bench_.c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i)
            std::fprintf(f, "%s\n  %s", i == 0 ? "" : ",",
                         rows_[i].c_str());
        std::fprintf(f, "\n]}\n");
        std::fclose(f);
    }

    bool enabled() const { return !path_.empty(); }

    /** Append an arbitrary row. */
    void
    add(const JsonRow &row)
    {
        if (enabled())
            rows_.push_back(row.str());
    }

    /**
     * Append the standard row for one swept configuration: the
     * config, the simulated result, and the host-side measurement
     * (wall seconds and simulated instructions per second).
     */
    void
    result(const std::string &label, const sweep::Job &job,
           const sweep::Outcome &o, double normalized_cycles = 0.0)
    {
        if (!enabled())
            return;
        const double instr_total = static_cast<double>(
            o.result.appInstructions + o.result.osInstructions);
        JsonRow row;
        row.field("label", label)
            .field("protocol",
                   std::string(
                       mee::protocolName(job.config.protocol)))
            .field("cores", std::uint64_t(job.config.cores))
            .field("amntpp", job.config.amntpp)
            .field("subtree_level",
                   std::uint64_t(job.config.mee.amntSubtreeLevel))
            .field("instructions", job.instructions)
            .field("warmup", job.warmup)
            .field("cycles", o.result.cycles)
            .field("normalized_cycles", normalized_cycles)
            .field("mcache_hit_rate", o.result.mcacheHitRate)
            .field("subtree_hit_rate", o.result.subtreeHitRate)
            .field("subtree_movements", o.result.subtreeMovements)
            .field("wall_seconds", o.wallSeconds)
            .field("sim_instr_per_sec",
                   o.wallSeconds > 0.0 ? instr_total / o.wallSeconds
                                       : 0.0);
        if (benchStatsEnabled() && !o.statsJson.empty())
            row.rawField("stats", o.statsJson);
        rows_.push_back(row.str());
    }

  private:
    std::string bench_;
    std::string path_;
    std::vector<std::string> rows_;
};

} // namespace amnt::bench

#endif // AMNT_BENCH_BENCH_UTIL_HH
