/**
 * @file
 * Shared plumbing for the experiment harnesses in bench/.
 *
 * Every binary regenerates one table or figure of the paper: it runs
 * the same protocol set over the same workloads and prints the same
 * rows/series the paper reports (normalized cycles, hit rates,
 * recovery milliseconds). Scale differs from the authors' testbed —
 * these are scaled-down regions of interest on a simulator — so the
 * *shape* (who wins, by roughly what factor, where crossovers fall)
 * is the reproduction target; see EXPERIMENTS.md.
 *
 * Environment knobs:
 *   AMNT_BENCH_INSTR   instructions per core measured  (default 2M)
 *   AMNT_BENCH_WARMUP  warm-up instructions per core   (default 1M)
 *   AMNT_BENCH_SCALE   divisor applied to preset footprints (def. 4)
 */

#ifndef AMNT_BENCH_BENCH_UTIL_HH
#define AMNT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/presets.hh"
#include "sim/system.hh"

namespace amnt::bench
{

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v == nullptr ? fallback : std::strtoull(v, nullptr, 10);
}

inline std::uint64_t
benchInstructions()
{
    return envU64("AMNT_BENCH_INSTR", 2'000'000);
}

inline std::uint64_t
benchWarmup()
{
    return envU64("AMNT_BENCH_WARMUP", 1'000'000);
}

/**
 * Scale a preset's footprint down so scaled-down instruction counts
 * still revisit their working set (the paper runs 1B+ instructions;
 * we default to 2M measured).
 */
inline sim::WorkloadConfig
scaled(sim::WorkloadConfig w)
{
    const std::uint64_t divisor = envU64("AMNT_BENCH_SCALE", 4);
    w.footprintPages =
        std::max<std::uint64_t>(256, w.footprintPages / divisor);
    return w;
}

/**
 * Multiprogram footprints stay at full size: the interference
 * effects of Figures 5-7 only appear when the combined hot sets
 * compete for (and overflow) one subtree region.
 */
inline sim::WorkloadConfig
scaledMp(sim::WorkloadConfig w)
{
    const std::uint64_t divisor = envU64("AMNT_BENCH_SCALE_MP", 1);
    w.footprintPages =
        std::max<std::uint64_t>(256, w.footprintPages / divisor);
    return w;
}

/** The protocol columns of Figures 4/5 (amnt++ handled separately). */
inline const std::vector<mee::Protocol> &
figureProtocols()
{
    static const std::vector<mee::Protocol> p = {
        mee::Protocol::Leaf, mee::Protocol::Strict,
        mee::Protocol::Anubis, mee::Protocol::Bmf,
        mee::Protocol::Amnt,
    };
    return p;
}

/** One measured configuration. */
struct Measured
{
    sim::RunResult result;
    double normalizedCycles = 0.0; ///< vs the volatile baseline
};

/**
 * Run one protocol (optionally with the AMNT++ OS) on one or two
 * workloads under @p base system config and return the result.
 */
inline sim::RunResult
runConfig(sim::SystemConfig cfg,
          const std::vector<sim::WorkloadConfig> &procs,
          std::uint64_t instr, std::uint64_t warmup)
{
    sim::System sys(cfg);
    for (const auto &w : procs)
        sys.addProcess(w);
    return sys.run(instr, warmup);
}

/** Paper Table 1 system config at the chosen core count. */
inline sim::SystemConfig
paperSystem(mee::Protocol p, unsigned cores)
{
    sim::SystemConfig cfg =
        cores == 1   ? sim::SystemConfig::singleProgram(p)
        : cores == 2 ? sim::SystemConfig::multiProgram(p)
                     : sim::SystemConfig::specQuad(p);
    cfg.mee.dataBytes = 8ull << 30;
    return cfg;
}

} // namespace amnt::bench

#endif // AMNT_BENCH_BENCH_UTIL_HH
