/**
 * Figure 5: normalized cycles for the multiprogram PARSEC pairs
 * (bodytrack+fluidanimate, swaptions+streamcluster, x264+freqmine).
 *
 * Two cores with private L1/L2 and a shared L3, both regions of
 * interest measured in parallel, everything normalized to the
 * volatile baseline. The paper's key observation: AMNT++ counteracts
 * multiprogram interference (bodytrack+fluidanimate subtree hit rate
 * 91% -> 97%, overhead 8% -> ~leaf).
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();

    TextTable table;
    table.header({"pair", "leaf", "strict", "anubis", "bmf", "amnt",
                  "amnt++", "hit(amnt)", "hit(amnt++)"});

    for (const auto &[a, b] : sim::parsecMultiprogramPairs()) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)), scaledMp(sim::parsecPreset(b))};

        const sim::RunResult base = runConfig(
            paperSystem(mee::Protocol::Volatile, 2), procs, instr,
            warmup);
        const double base_cycles = static_cast<double>(base.cycles);

        std::vector<std::string> row = {a + "+" + b};
        double hit_amnt = 0.0, hit_pp = 0.0;
        for (mee::Protocol p : figureProtocols()) {
            const sim::RunResult r = runConfig(paperSystem(p, 2),
                                               procs, instr, warmup);
            row.push_back(TextTable::num(
                static_cast<double>(r.cycles) / base_cycles, 3));
            if (p == mee::Protocol::Amnt)
                hit_amnt = r.subtreeHitRate;
        }
        {
            sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
            cfg.amntpp = true;
            const sim::RunResult r =
                runConfig(cfg, procs, instr, warmup);
            row.push_back(TextTable::num(
                static_cast<double>(r.cycles) / base_cycles, 3));
            hit_pp = r.subtreeHitRate;
        }
        row.push_back(TextTable::pct(hit_amnt, 1));
        row.push_back(TextTable::pct(hit_pp, 1));
        table.row(row);
    }

    std::printf("Figure 5: normalized cycles, multiprogram PARSEC "
                "pairs (volatile baseline = 1.0)\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: amnt++ closes the gap to leaf on "
                "bodytrack+fluidanimate (hit rate 91%% -> 97%%); the "
                "other pairs are not memory intensive\n");
    return 0;
}
