/**
 * Figure 5: normalized cycles for the multiprogram PARSEC pairs
 * (bodytrack+fluidanimate, swaptions+streamcluster, x264+freqmine).
 *
 * Two cores with private L1/L2 and a shared L3, both regions of
 * interest measured in parallel, everything normalized to the
 * volatile baseline. The paper's key observation: AMNT++ counteracts
 * multiprogram interference (bodytrack+fluidanimate subtree hit rate
 * 91% -> 97%, overhead 8% -> ~leaf).
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();
    JsonSink json(argc, argv, "fig05_parsec_multi");

    const auto pairs = sim::parsecMultiprogramPairs();
    std::vector<sweep::Job> jobs;
    for (const auto &[a, b] : pairs) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)),
            scaledMp(sim::parsecPreset(b))};
        jobs.push_back(makeJob(paperSystem(mee::Protocol::Volatile, 2),
                               procs, instr, warmup));
        for (mee::Protocol p : figureProtocols())
            jobs.push_back(
                makeJob(paperSystem(p, 2), procs, instr, warmup));
        sim::SystemConfig pp = paperSystem(mee::Protocol::Amnt, 2);
        pp.amntpp = true;
        jobs.push_back(makeJob(pp, procs, instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);
    const std::size_t stride = 2 + figureProtocols().size();

    TextTable table;
    table.header({"pair", "leaf", "strict", "anubis", "bmf", "amnt",
                  "amnt++", "hit(amnt)", "hit(amnt++)"});

    std::size_t pair_no = 0;
    for (const auto &[a, b] : pairs) {
        const std::string label = a + "+" + b;
        const std::size_t base_idx = pair_no * stride;
        const double base_cycles = static_cast<double>(
            outcomes[base_idx].result.cycles);
        json.result(label, jobs[base_idx], outcomes[base_idx], 1.0);

        std::vector<std::string> row = {label};
        double hit_amnt = 0.0, hit_pp = 0.0;
        std::size_t idx = base_idx + 1;
        for (mee::Protocol p : figureProtocols()) {
            const sim::RunResult &r = outcomes[idx].result;
            const double norm =
                static_cast<double>(r.cycles) / base_cycles;
            row.push_back(TextTable::num(norm, 3));
            json.result(label, jobs[idx], outcomes[idx], norm);
            if (p == mee::Protocol::Amnt)
                hit_amnt = r.subtreeHitRate;
            ++idx;
        }
        {
            const sim::RunResult &r = outcomes[idx].result;
            const double norm =
                static_cast<double>(r.cycles) / base_cycles;
            row.push_back(TextTable::num(norm, 3));
            json.result(label, jobs[idx], outcomes[idx], norm);
            hit_pp = r.subtreeHitRate;
        }
        row.push_back(TextTable::pct(hit_amnt, 1));
        row.push_back(TextTable::pct(hit_pp, 1));
        table.row(row);
        ++pair_no;
    }

    std::printf("Figure 5: normalized cycles, multiprogram PARSEC "
                "pairs (volatile baseline = 1.0)\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: amnt++ closes the gap to leaf on "
                "bodytrack+fluidanimate (hit rate 91%% -> 97%%); the "
                "other pairs are not memory intensive\n");
    return 0;
}
