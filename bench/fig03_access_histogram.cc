/**
 * Figure 3: memory accesses per physical address, single-program
 * (lbm) versus multiprogram (perlbench + lbm).
 *
 * Prints a binned series over the physical address space: accesses
 * per 16 MB bin, plus a per-subtree-region summary. The single
 * program's traffic concentrates in few regions (3a); running two
 * programs interleaves their physical placement (3b), which is the
 * phenomenon motivating AMNT++.
 */

#include <algorithm>
#include <map>

#include "bench_util.hh"
#include "mem/memory_map.hh"

using namespace amnt;
using namespace amnt::bench;

namespace
{

void
report(const char *title, const sweep::Outcome &outcome,
       std::uint64_t frames_per_region)
{
    constexpr std::uint64_t kBinPages = 4096; // 16 MB bins

    std::map<std::uint64_t, std::uint64_t> bins;
    std::map<std::uint64_t, std::uint64_t> regions;
    std::uint64_t total = 0;
    for (const auto &kv : outcome.accessHistogram) {
        bins[kv.first / kBinPages] += kv.second;
        regions[kv.first / frames_per_region] += kv.second;
        total += kv.second;
    }

    std::printf("%s\n", title);
    std::printf("  accesses=%llu, populated 16MB bins=%zu, "
                "populated level-3 regions=%zu\n",
                static_cast<unsigned long long>(total), bins.size(),
                regions.size());
    std::printf("  bin(16MB)  accesses\n");
    for (const auto &kv : bins)
        std::printf("  %9llu  %llu\n",
                    static_cast<unsigned long long>(kv.first),
                    static_cast<unsigned long long>(kv.second));

    std::vector<std::pair<std::uint64_t, std::uint64_t>> top(
        regions.begin(), regions.end());
    std::sort(top.begin(), top.end(), [](auto &a, auto &b) {
        return a.second > b.second;
    });
    std::printf("  hottest level-3 regions (region: share):");
    for (std::size_t i = 0; i < std::min<std::size_t>(4, top.size());
         ++i)
        std::printf(" %llu: %.1f%%",
                    static_cast<unsigned long long>(top[i].first),
                    100.0 * static_cast<double>(top[i].second) /
                        static_cast<double>(total));
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup() / 2;
    JsonSink json(argc, argv, "fig03_access_histogram");

    std::vector<sweep::Job> jobs;
    {
        sim::SystemConfig cfg =
            paperSystem(mee::Protocol::Volatile, 1);
        cfg.recordAccessHistogram = true;
        jobs.push_back(makeJob(cfg, {scaled(sim::specPreset("lbm"))},
                               instr, warmup));
    }
    {
        sim::SystemConfig cfg =
            paperSystem(mee::Protocol::Volatile, 2);
        cfg.recordAccessHistogram = true;
        jobs.push_back(makeJob(cfg,
                               {scaled(sim::specPreset("perlbench")),
                                scaled(sim::specPreset("lbm"))},
                               instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);

    // Both jobs share the 8 GB map, so the level-3 region width is a
    // property of the geometry alone.
    const std::uint64_t frames_per_region =
        mem::MemoryMap(jobs[0].config.mee.dataBytes)
            .geometry()
            .countersPerNode(3);

    report("Figure 3a: single program (lbm), accesses per "
           "physical address",
           outcomes[0], frames_per_region);
    report("Figure 3b: multiprogram (perlbench + lbm), accesses "
           "per physical address",
           outcomes[1], frames_per_region);
    json.result("3a lbm", jobs[0], outcomes[0]);
    json.result("3b perlbench+lbm", jobs[1], outcomes[1]);

    std::printf("paper shape: 3a concentrates accesses in a tight "
                "physical band; 3b interleaves two programs across "
                "the space\n");
    return 0;
}
