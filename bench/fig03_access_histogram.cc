/**
 * Figure 3: memory accesses per physical address, single-program
 * (lbm) versus multiprogram (perlbench + lbm).
 *
 * Prints a binned series over the physical address space: accesses
 * per 16 MB bin, plus a per-subtree-region summary. The single
 * program's traffic concentrates in few regions (3a); running two
 * programs interleaves their physical placement (3b), which is the
 * phenomenon motivating AMNT++.
 */

#include <algorithm>
#include <map>

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

namespace
{

void
report(const char *title, sim::System &sys)
{
    const std::uint64_t frames_per_region =
        sys.engine().map().geometry().countersPerNode(3);
    constexpr std::uint64_t kBinPages = 4096; // 16 MB bins

    std::map<std::uint64_t, std::uint64_t> bins;
    std::map<std::uint64_t, std::uint64_t> regions;
    std::uint64_t total = 0;
    for (const auto &kv : sys.accessHistogram()) {
        bins[kv.first / kBinPages] += kv.second;
        regions[kv.first / frames_per_region] += kv.second;
        total += kv.second;
    }

    std::printf("%s\n", title);
    std::printf("  accesses=%llu, populated 16MB bins=%zu, "
                "populated level-3 regions=%zu\n",
                static_cast<unsigned long long>(total), bins.size(),
                regions.size());
    std::printf("  bin(16MB)  accesses\n");
    for (const auto &kv : bins)
        std::printf("  %9llu  %llu\n",
                    static_cast<unsigned long long>(kv.first),
                    static_cast<unsigned long long>(kv.second));

    std::vector<std::pair<std::uint64_t, std::uint64_t>> top(
        regions.begin(), regions.end());
    std::sort(top.begin(), top.end(), [](auto &a, auto &b) {
        return a.second > b.second;
    });
    std::printf("  hottest level-3 regions (region: share):");
    for (std::size_t i = 0; i < std::min<std::size_t>(4, top.size());
         ++i)
        std::printf(" %llu: %.1f%%",
                    static_cast<unsigned long long>(top[i].first),
                    100.0 * static_cast<double>(top[i].second) /
                        static_cast<double>(total));
    std::printf("\n\n");
}

} // namespace

int
main()
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup() / 2;

    {
        sim::SystemConfig cfg =
            paperSystem(mee::Protocol::Volatile, 1);
        cfg.recordAccessHistogram = true;
        sim::System sys(cfg);
        sys.addProcess(scaled(sim::specPreset("lbm")));
        sys.run(instr, warmup);
        report("Figure 3a: single program (lbm), accesses per "
               "physical address",
               sys);
    }
    {
        sim::SystemConfig cfg =
            paperSystem(mee::Protocol::Volatile, 2);
        cfg.recordAccessHistogram = true;
        sim::System sys(cfg);
        sys.addProcess(scaled(sim::specPreset("perlbench")));
        sys.addProcess(scaled(sim::specPreset("lbm")));
        sys.run(instr, warmup);
        report("Figure 3b: multiprogram (perlbench + lbm), accesses "
               "per physical address",
               sys);
    }
    std::printf("paper shape: 3a concentrates accesses in a tight "
                "physical band; 3b interleaves two programs across "
                "the space\n");
    return 0;
}
