/**
 * Figure 6: normalized cycles for the multiprogram pairs while the
 * AMNT subtree root level sweeps from 2 (1/8 of memory) to 7 (near
 * the leaves), with and without the AMNT++ allocator.
 *
 * Deeper levels protect less data, constraining AMNT; AMNT++ recovers
 * part of the loss by consolidating placement. Normalization baseline
 * is the volatile scheme (per pair).
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();

    for (const auto &[a, b] : sim::parsecMultiprogramPairs()) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)), scaledMp(sim::parsecPreset(b))};

        const sim::RunResult base = runConfig(
            paperSystem(mee::Protocol::Volatile, 2), procs, instr,
            warmup);
        const double base_cycles = static_cast<double>(base.cycles);

        TextTable table;
        table.header(
            {"subtree level", "amnt", "amnt++", "coverage"});
        for (unsigned level = 2; level <= 7; ++level) {
            sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
            cfg.mee.amntSubtreeLevel = level;
            const sim::RunResult r =
                runConfig(cfg, procs, instr, warmup);

            cfg.amntpp = true;
            const sim::RunResult rpp =
                runConfig(cfg, procs, instr, warmup);

            const double cover_mb =
                static_cast<double>(8ull << 30) /
                static_cast<double>(ipow(kTreeArity, level - 1)) /
                (1 << 20);
            table.row({"L" + std::to_string(level),
                       TextTable::num(static_cast<double>(r.cycles) /
                                          base_cycles,
                                      3),
                       TextTable::num(static_cast<double>(rpp.cycles) /
                                          base_cycles,
                                      3),
                       TextTable::num(cover_mb, 0) + " MB"});
        }
        std::printf("Figure 6 [%s + %s]: normalized cycles vs AMNT "
                    "subtree level\n\n%s\n",
                    a.c_str(), b.c_str(), table.render().c_str());
    }
    std::printf("paper shape: overhead grows as the subtree root "
                "descends (less coverage); amnt++ stays at or below "
                "amnt at every level\n");
    return 0;
}
