/**
 * Figure 6: normalized cycles for the multiprogram pairs while the
 * AMNT subtree root level sweeps from 2 (1/8 of memory) to 7 (near
 * the leaves), with and without the AMNT++ allocator.
 *
 * Deeper levels protect less data, constraining AMNT; AMNT++ recovers
 * part of the loss by consolidating placement. Normalization baseline
 * is the volatile scheme (per pair).
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();
    JsonSink json(argc, argv, "fig06_subtree_level");

    constexpr unsigned kLoLevel = 2, kHiLevel = 7;
    const auto pairs = sim::parsecMultiprogramPairs();
    std::vector<sweep::Job> jobs;
    for (const auto &[a, b] : pairs) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)),
            scaledMp(sim::parsecPreset(b))};
        jobs.push_back(makeJob(paperSystem(mee::Protocol::Volatile, 2),
                               procs, instr, warmup));
        for (unsigned level = kLoLevel; level <= kHiLevel; ++level) {
            sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
            cfg.mee.amntSubtreeLevel = level;
            jobs.push_back(makeJob(cfg, procs, instr, warmup));
            cfg.amntpp = true;
            jobs.push_back(makeJob(cfg, procs, instr, warmup));
        }
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);
    const std::size_t stride = 1 + 2 * (kHiLevel - kLoLevel + 1);

    std::size_t pair_no = 0;
    for (const auto &[a, b] : pairs) {
        const std::size_t base_idx = pair_no * stride;
        const double base_cycles = static_cast<double>(
            outcomes[base_idx].result.cycles);
        json.result(a + "+" + b, jobs[base_idx], outcomes[base_idx],
                    1.0);

        TextTable table;
        table.header(
            {"subtree level", "amnt", "amnt++", "coverage"});
        for (unsigned level = kLoLevel; level <= kHiLevel; ++level) {
            const std::size_t idx =
                base_idx + 1 + 2 * (level - kLoLevel);
            const double norm = static_cast<double>(
                                    outcomes[idx].result.cycles) /
                                base_cycles;
            const double norm_pp =
                static_cast<double>(outcomes[idx + 1].result.cycles) /
                base_cycles;
            json.result(a + "+" + b, jobs[idx], outcomes[idx], norm);
            json.result(a + "+" + b, jobs[idx + 1], outcomes[idx + 1],
                        norm_pp);

            const double cover_mb =
                static_cast<double>(8ull << 30) /
                static_cast<double>(ipow(kTreeArity, level - 1)) /
                (1 << 20);
            table.row({"L" + std::to_string(level),
                       TextTable::num(norm, 3),
                       TextTable::num(norm_pp, 3),
                       TextTable::num(cover_mb, 0) + " MB"});
        }
        std::printf("Figure 6 [%s + %s]: normalized cycles vs AMNT "
                    "subtree level\n\n%s\n",
                    a.c_str(), b.c_str(), table.render().c_str());
        ++pair_no;
    }
    std::printf("paper shape: overhead grows as the subtree root "
                "descends (less coverage); amnt++ stays at or below "
                "amnt at every level\n");
    return 0;
}
