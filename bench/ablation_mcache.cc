/**
 * Ablation: metadata cache size sensitivity (section 6.6's argument).
 *
 * Anubis's runtime and recovery scale with the metadata cache, while
 * AMNT's area is constant and its runtime depends only on workload
 * spatial locality. Sweeping the metadata cache from 16 kB to 256 kB
 * on a cache-hostile workload (canneal) shows Anubis's overhead
 * tracking the cache miss rate while AMNT stays flat.
 */

#include "bench_util.hh"
#include "core/hw_overhead.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions() / 2;
    const std::uint64_t warmup = benchWarmup() / 2;
    JsonSink json(argc, argv, "ablation_mcache");
    const sim::WorkloadConfig w = scaled(sim::parsecPreset("canneal"));

    const std::vector<std::uint64_t> sizes = {16, 32, 64, 128, 256};
    std::vector<sweep::Job> jobs;
    for (std::uint64_t kb : sizes) {
        auto mk = [&](mee::Protocol p) {
            sim::SystemConfig cfg = paperSystem(p, 1);
            cfg.mee.metaCache.sizeBytes = kb * 1024;
            return cfg;
        };
        jobs.push_back(
            makeJob(mk(mee::Protocol::Volatile), {w}, instr, warmup));
        jobs.push_back(
            makeJob(mk(mee::Protocol::Anubis), {w}, instr, warmup));
        jobs.push_back(
            makeJob(mk(mee::Protocol::Amnt), {w}, instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);

    TextTable table;
    table.header({"mcache", "mcache hit rate", "anubis", "amnt",
                  "anubis vol. area", "amnt vol. area"});

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const std::uint64_t kb = sizes[i];
        const std::size_t idx = i * 3;
        const sim::RunResult &base = outcomes[idx].result;
        const sim::RunResult &anubis = outcomes[idx + 1].result;
        const sim::RunResult &amnt = outcomes[idx + 2].result;
        const std::string label = std::to_string(kb) + " kB";
        json.result(label, jobs[idx], outcomes[idx], 1.0);
        json.result(label, jobs[idx + 1], outcomes[idx + 1],
                    static_cast<double>(anubis.cycles) /
                        static_cast<double>(base.cycles));
        json.result(label, jobs[idx + 2], outcomes[idx + 2],
                    static_cast<double>(amnt.cycles) /
                        static_cast<double>(base.cycles));

        mee::MeeConfig area_cfg;
        area_cfg.metaCache.sizeBytes = kb * 1024;
        const auto anubis_area =
            core::hwOverheadOf(mee::Protocol::Anubis, area_cfg);
        const auto amnt_area =
            core::hwOverheadOf(mee::Protocol::Amnt, area_cfg);

        table.row(
            {label,
             TextTable::pct(base.mcacheHitRate, 1),
             TextTable::num(static_cast<double>(anubis.cycles) /
                                static_cast<double>(base.cycles),
                            3),
             TextTable::num(static_cast<double>(amnt.cycles) /
                                static_cast<double>(base.cycles),
                            3),
             std::to_string(anubis_area.volatileOnChip / 1024) + " kB",
             std::to_string(amnt_area.volatileOnChip) + " B"});
    }

    std::printf("Ablation: metadata cache size sweep on canneal "
                "(normalized to volatile at each size)\n\n%s\n",
                table.render().c_str());
    std::printf("shape: anubis overhead tracks the metadata cache "
                "miss rate and its area grows with the cache; amnt "
                "overhead and area stay flat\n");
    return 0;
}
