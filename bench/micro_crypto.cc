/**
 * Microbenchmarks (google-benchmark): throughput of the crypto
 * primitives both planes are built on, plus the per-operation cost of
 * the secure-memory engine's hot paths. These justify the fast-plane
 * design choice in DESIGN.md: SipHash-based metadata hashing is ~20x
 * cheaper than HMAC-SHA-256, which is what makes the multi-million
 * access figure sweeps tractable.
 */

#include <benchmark/benchmark.h>

#include "core/amnt.hh"
#include "crypto/engines.hh"
#include "mem/memory_map.hh"

using namespace amnt;

namespace
{

void
BM_Sha256_64B(benchmark::State &state)
{
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::Sha256::digest(buf, sizeof(buf)));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void
BM_HmacSha256_64B(benchmark::State &state)
{
    crypto::HmacSha256 mac("bench-key", 9);
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.mac64(buf, sizeof(buf)));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_HmacSha256_64B);

void
BM_SipHash_64B(benchmark::State &state)
{
    crypto::SipHash24 sip(1, 2);
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(sip.mac(buf, sizeof(buf)));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SipHash_64B);

void
BM_Aes128Block(benchmark::State &state)
{
    crypto::Aes128 aes(crypto::AesBlock{0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                        10, 11, 12, 13, 14, 15});
    crypto::AesBlock in{};
    for (auto _ : state) {
        in = aes.encrypt(in);
        benchmark::DoNotOptimize(in);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Block);

void
BM_PadGeneration(benchmark::State &state)
{
    const auto plane = state.range(0) == 0
                           ? crypto::CryptoPlane::Fast
                           : crypto::CryptoPlane::Functional;
    crypto::CryptoSuite suite = crypto::CryptoSuite::make(plane, 7);
    std::uint8_t pad[kBlockSize];
    std::uint64_t addr = 0;
    for (auto _ : state) {
        suite.enc->pad(addr += 64, 3, 5, pad);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_PadGeneration)->Arg(0)->Arg(1);

void
BM_EngineWrite(benchmark::State &state)
{
    const auto protocol = static_cast<mee::Protocol>(state.range(0));
    mee::MeeConfig cfg;
    cfg.dataBytes = 64ull << 20;
    cfg.keySeed = 5;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    auto engine = core::makeEngine(protocol, cfg, nvm);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine->write(((i++) % 16384) * kPageSize));
    }
}
BENCHMARK(BM_EngineWrite)
    ->Arg(static_cast<int>(mee::Protocol::Volatile))
    ->Arg(static_cast<int>(mee::Protocol::Leaf))
    ->Arg(static_cast<int>(mee::Protocol::Strict))
    ->Arg(static_cast<int>(mee::Protocol::Amnt));

void
BM_EngineRead(benchmark::State &state)
{
    mee::MeeConfig cfg;
    cfg.dataBytes = 64ull << 20;
    cfg.keySeed = 5;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    auto engine =
        core::makeEngine(mee::Protocol::Amnt, cfg, nvm);
    for (std::uint64_t p = 0; p < 4096; ++p)
        engine->write(p * kPageSize);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine->read(((i++) % 4096) * kPageSize));
    }
}
BENCHMARK(BM_EngineRead);

} // namespace

BENCHMARK_MAIN();
