/**
 * Microbenchmarks (google-benchmark): throughput of the crypto
 * primitives both planes are built on, plus the per-operation cost of
 * the secure-memory engine's hot paths. These justify the fast-plane
 * design choice in DESIGN.md: SipHash-based metadata hashing is ~20x
 * cheaper than HMAC-SHA-256, which is what makes the multi-million
 * access figure sweeps tractable.
 *
 * Beyond the fixed baseline set (names kept stable so runs stay
 * comparable with results/micro_crypto_seed_baseline.txt), the binary
 * registers at startup:
 *
 *  - one variant of each dispatchable primitive per *available* ISA
 *    path ("BM_Sha256_64B/isa:shani", ...), so the win of each kernel
 *    is measured, not assumed;
 *  - batch-width sweeps of the mac64xN/padxN engine entry points on
 *    both planes ("BM_Mac64xN_Hmac/64", ...), including batch-disabled
 *    controls that degrade to the scalar reference loop.
 *
 * Accepts `--json <path>` (or AMNT_BENCH_JSON) and mirrors every
 * result row into the machine-readable sink used by the experiment
 * harnesses, tagged with the dispatch path it ran on.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/amnt.hh"
#include "crypto/dispatch.hh"
#include "crypto/engines.hh"
#include "mem/memory_map.hh"

using namespace amnt;

namespace
{

// ------------------------------------------------ fixed baseline set

void
BM_Sha256_64B(benchmark::State &state)
{
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::Sha256::digest(buf, sizeof(buf)));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void
BM_HmacSha256_64B(benchmark::State &state)
{
    crypto::HmacSha256 mac("bench-key", 9);
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.mac64(buf, sizeof(buf)));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_HmacSha256_64B);

void
BM_SipHash_64B(benchmark::State &state)
{
    crypto::SipHash24 sip(1, 2);
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(sip.mac(buf, sizeof(buf)));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SipHash_64B);

void
BM_Aes128Block(benchmark::State &state)
{
    crypto::Aes128 aes(crypto::AesBlock{0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                        10, 11, 12, 13, 14, 15});
    crypto::AesBlock in{};
    for (auto _ : state) {
        in = aes.encrypt(in);
        benchmark::DoNotOptimize(in);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Block);

void
BM_PadGeneration(benchmark::State &state)
{
    const auto plane = state.range(0) == 0
                           ? crypto::CryptoPlane::Fast
                           : crypto::CryptoPlane::Functional;
    crypto::CryptoSuite suite = crypto::CryptoSuite::make(plane, 7);
    std::uint8_t pad[kBlockSize];
    std::uint64_t addr = 0;
    for (auto _ : state) {
        suite.enc->pad(addr += 64, 3, 5, pad);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_PadGeneration)->Arg(0)->Arg(1);

void
BM_EngineWrite(benchmark::State &state)
{
    const auto protocol = static_cast<mee::Protocol>(state.range(0));
    mee::MeeConfig cfg;
    cfg.dataBytes = 64ull << 20;
    cfg.keySeed = 5;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    auto engine = core::makeEngine(protocol, cfg, nvm);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine->write(((i++) % 16384) * kPageSize));
    }
}
BENCHMARK(BM_EngineWrite)
    ->Arg(static_cast<int>(mee::Protocol::Volatile))
    ->Arg(static_cast<int>(mee::Protocol::Leaf))
    ->Arg(static_cast<int>(mee::Protocol::Strict))
    ->Arg(static_cast<int>(mee::Protocol::Amnt));

void
BM_EngineRead(benchmark::State &state)
{
    mee::MeeConfig cfg;
    cfg.dataBytes = 64ull << 20;
    cfg.keySeed = 5;
    mem::NvmDevice nvm(mem::MemoryMap(cfg.dataBytes).deviceBytes());
    auto engine =
        core::makeEngine(mee::Protocol::Amnt, cfg, nvm);
    for (std::uint64_t p = 0; p < 4096; ++p)
        engine->write(p * kPageSize);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine->read(((i++) % 4096) * kPageSize));
    }
}
BENCHMARK(BM_EngineRead);

// ------------------------------------------- dispatch-path variants

namespace dispatch = crypto::dispatch;

/** Pin one ISA for the duration of a benchmark, restore after. */
class IsaScope
{
  public:
    explicit IsaScope(dispatch::Isa isa) : saved_(dispatch::active().isa)
    {
        dispatch::select(isa);
    }
    ~IsaScope() { dispatch::select(saved_); }

  private:
    dispatch::Isa saved_;
};

const std::vector<dispatch::Isa> &
availableIsas()
{
    static const std::vector<dispatch::Isa> isas = [] {
        std::vector<dispatch::Isa> v;
        for (auto isa : {dispatch::Isa::Scalar, dispatch::Isa::AesNi,
                         dispatch::Isa::ShaNi, dispatch::Isa::Native})
            if (dispatch::available(isa))
                v.push_back(isa);
        return v;
    }();
    return isas;
}

void
isaSha256(benchmark::State &state, dispatch::Isa isa)
{
    IsaScope scope(isa);
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::Sha256::digest(buf, sizeof(buf)));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}

void
isaHmac(benchmark::State &state, dispatch::Isa isa)
{
    IsaScope scope(isa);
    crypto::HmacSha256 mac("bench-key", 9);
    std::uint8_t buf[64] = {1, 2, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.mac64(buf, sizeof(buf)));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}

void
isaAesBlock(benchmark::State &state, dispatch::Isa isa)
{
    IsaScope scope(isa);
    crypto::Aes128 aes(crypto::AesBlock{0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                        10, 11, 12, 13, 14, 15});
    crypto::AesBlock in{};
    for (auto _ : state) {
        in = aes.encrypt(in);
        benchmark::DoNotOptimize(in);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}

// ----------------------------------------------- batch-width sweeps

void
batchMac(benchmark::State &state, crypto::CryptoPlane plane, bool wide)
{
    const bool saved = dispatch::batchEnabled();
    dispatch::setBatchEnabled(wide);
    crypto::CryptoSuite suite = crypto::CryptoSuite::make(plane, 7);
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> bufs(width * kBlockSize);
    for (std::size_t i = 0; i < bufs.size(); ++i)
        bufs[i] = static_cast<std::uint8_t>(i * 131 + 7);
    std::vector<crypto::MacRequest> reqs(width);
    for (std::size_t i = 0; i < width; ++i)
        reqs[i] = {bufs.data() + i * kBlockSize, kBlockSize,
                   0x1000 + i * kBlockSize};
    std::vector<std::uint64_t> macs(width);
    for (auto _ : state) {
        suite.hash->mac64xN(reqs.data(), width, macs.data());
        benchmark::DoNotOptimize(macs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(width));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(width * kBlockSize));
    dispatch::setBatchEnabled(saved);
}

void
batchPad(benchmark::State &state, crypto::CryptoPlane plane, bool wide)
{
    const bool saved = dispatch::batchEnabled();
    dispatch::setBatchEnabled(wide);
    crypto::CryptoSuite suite = crypto::CryptoSuite::make(plane, 7);
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    std::vector<crypto::PadRequest> reqs(width);
    for (std::size_t i = 0; i < width; ++i)
        reqs[i] = {static_cast<Addr>(i * kBlockSize), 3,
                   static_cast<std::uint8_t>(i & 0x7f)};
    std::vector<std::uint8_t> pads(width * kBlockSize);
    for (auto _ : state) {
        suite.enc->padxN(reqs.data(), width, pads.data());
        benchmark::DoNotOptimize(pads.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(width));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(width * kBlockSize));
    dispatch::setBatchEnabled(saved);
}

void
registerDynamicBenchmarks()
{
    for (auto isa : availableIsas()) {
        const std::string tag =
            std::string("/isa:") + dispatch::isaName(isa);
        benchmark::RegisterBenchmark(
            ("BM_Sha256_64B" + tag).c_str(),
            [isa](benchmark::State &s) { isaSha256(s, isa); });
        benchmark::RegisterBenchmark(
            ("BM_HmacSha256_64B" + tag).c_str(),
            [isa](benchmark::State &s) { isaHmac(s, isa); });
        benchmark::RegisterBenchmark(
            ("BM_Aes128Block" + tag).c_str(),
            [isa](benchmark::State &s) { isaAesBlock(s, isa); });
    }

    struct BatchBench
    {
        const char *name;
        crypto::CryptoPlane plane;
        bool wide;
        void (*fn)(benchmark::State &, crypto::CryptoPlane, bool);
    };
    static const BatchBench kBatchSet[] = {
        {"BM_Mac64xN_Hmac", crypto::CryptoPlane::Functional, true,
         batchMac},
        {"BM_Mac64xN_Sip", crypto::CryptoPlane::Fast, true, batchMac},
        {"BM_Mac64xN_Sip_nobatch", crypto::CryptoPlane::Fast, false,
         batchMac},
        {"BM_PadxN_Aes", crypto::CryptoPlane::Functional, true,
         batchPad},
        {"BM_PadxN_Aes_nobatch", crypto::CryptoPlane::Functional,
         false, batchPad},
        {"BM_PadxN_Fast", crypto::CryptoPlane::Fast, true, batchPad},
        {"BM_PadxN_Fast_nobatch", crypto::CryptoPlane::Fast, false,
         batchPad},
    };
    for (const auto &b : kBatchSet) {
        auto *bench = benchmark::RegisterBenchmark(
            b.name,
            [fn = b.fn, plane = b.plane,
             wide = b.wide](benchmark::State &s) { fn(s, plane, wide); });
        bench->Arg(1)->Arg(4)->Arg(8)->Arg(64);
    }
}

// --------------------------------------------------------- JSON sink

/**
 * Console reporter that additionally mirrors every measured run into
 * the shared bench JSON sink, tagged with the active dispatch path so
 * downstream tooling can compare ISA variants across runs.
 */
class SinkReporter : public benchmark::ConsoleReporter
{
  public:
    explicit SinkReporter(bench::JsonSink &sink) : sink_(&sink) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const auto &run : runs) {
            if (run.error_occurred || run.repetition_index > 0)
                continue;
            bench::JsonRow row;
            row.field("label", run.benchmark_name())
                .field("default_isa",
                       std::string(
                           dispatch::isaName(dispatch::active().isa)))
                .field("batch_default", dispatch::batchEnabled())
                .field("real_ns_per_op", run.GetAdjustedRealTime())
                .field("cpu_ns_per_op", run.GetAdjustedCPUTime())
                .field("iterations",
                       static_cast<std::uint64_t>(run.iterations));
            const auto bytes = run.counters.find("bytes_per_second");
            if (bytes != run.counters.end())
                row.field("bytes_per_second", double(bytes->second));
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end())
                row.field("items_per_second", double(items->second));
            sink_->add(row);
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::JsonSink *sink_;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink sink(argc, argv, "micro_crypto");

    // google-benchmark rejects flags it does not know; strip the
    // `--json <path>` pair the sink consumed before handing over.
    std::vector<char *> fwd;
    fwd.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            ++i;
            continue;
        }
        fwd.push_back(argv[i]);
    }
    int fwd_argc = static_cast<int>(fwd.size());

    registerDynamicBenchmarks();
    benchmark::Initialize(&fwd_argc, fwd.data());
    if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data()))
        return 1;
    SinkReporter reporter(sink);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
