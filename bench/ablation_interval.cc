/**
 * Ablation: AMNT design-parameter sensitivity (DESIGN.md section 5).
 *
 * Sweeps the two tracking parameters the paper fixes at 64 — the
 * history-buffer interval (writes between movement decisions) and the
 * history-buffer capacity — on a movement-prone multiprogram mix, and
 * reports normalized cycles, subtree hit rate, and movement rate.
 * Shows the trade-off: short intervals chase the workload (more
 * movements, more flush traffic), long intervals react too slowly.
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions() / 2;
    const std::uint64_t warmup = benchWarmup() / 2;
    JsonSink json(argc, argv, "ablation_interval");

    const std::vector<sim::WorkloadConfig> procs = {
        scaledMp(sim::parsecPreset("bodytrack")),
        scaledMp(sim::parsecPreset("fluidanimate"))};

    const std::vector<unsigned> intervals = {8,  16,  32,  64,
                                             128, 256, 1024};
    const std::vector<unsigned> capacities = {4, 8, 16, 32, 64, 128};

    std::vector<sweep::Job> jobs;
    jobs.push_back(makeJob(paperSystem(mee::Protocol::Volatile, 2),
                           procs, instr, warmup));
    for (unsigned interval : intervals) {
        sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
        cfg.mee.amntSubtreeLevel = 5; // movement-prone coverage
        cfg.mee.amntInterval = interval;
        jobs.push_back(makeJob(cfg, procs, instr, warmup));
    }
    for (unsigned entries : capacities) {
        sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
        cfg.mee.amntSubtreeLevel = 5; // movement-prone coverage
        cfg.mee.amntHistoryEntries = entries;
        jobs.push_back(makeJob(cfg, procs, instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);
    const double base_cycles =
        static_cast<double>(outcomes[0].result.cycles);
    json.result("volatile baseline", jobs[0], outcomes[0], 1.0);

    std::printf("Ablation A: movement interval (history entries "
                "fixed at 64)\n\n");
    TextTable ta;
    ta.header({"interval", "normalized cycles", "subtree hit",
               "moves/1k writes"});
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const std::size_t idx = 1 + i;
        const sim::RunResult &r = outcomes[idx].result;
        const double norm =
            static_cast<double>(r.cycles) / base_cycles;
        json.result("interval " + std::to_string(intervals[i]),
                    jobs[idx], outcomes[idx], norm);
        const double mpk =
            r.memWrites == 0
                ? 0.0
                : 1000.0 * static_cast<double>(r.subtreeMovements) /
                      static_cast<double>(r.memWrites);
        ta.row({std::to_string(intervals[i]),
                TextTable::num(norm, 3),
                TextTable::pct(r.subtreeHitRate, 1),
                TextTable::num(mpk, 2)});
    }
    std::printf("%s\n", ta.render().c_str());

    std::printf("Ablation B: history-buffer capacity (interval fixed "
                "at 64)\n\n");
    TextTable tb;
    tb.header({"entries", "normalized cycles", "subtree hit",
               "buffer bits"});
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        const std::size_t idx = 1 + intervals.size() + i;
        const sim::RunResult &r = outcomes[idx].result;
        const double norm =
            static_cast<double>(r.cycles) / base_cycles;
        json.result("entries " + std::to_string(capacities[i]),
                    jobs[idx], outcomes[idx], norm);
        const unsigned bits =
            capacities[i] * 2 *
            static_cast<unsigned>(ceilLog2(capacities[i]));
        tb.row({std::to_string(capacities[i]),
                TextTable::num(norm, 3),
                TextTable::pct(r.subtreeHitRate, 1),
                std::to_string(bits)});
    }
    std::printf("%s\n", tb.render().c_str());
    std::printf("paper default: 64 writes per interval, 64 entries = "
                "768 bits (96 B)\n");
    return 0;
}
