/**
 * Ablation: AMNT design-parameter sensitivity (DESIGN.md section 5).
 *
 * Sweeps the two tracking parameters the paper fixes at 64 — the
 * history-buffer interval (writes between movement decisions) and the
 * history-buffer capacity — on a movement-prone multiprogram mix, and
 * reports normalized cycles, subtree hit rate, and movement rate.
 * Shows the trade-off: short intervals chase the workload (more
 * movements, more flush traffic), long intervals react too slowly.
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions() / 2;
    const std::uint64_t warmup = benchWarmup() / 2;

    const std::vector<sim::WorkloadConfig> procs = {
        scaledMp(sim::parsecPreset("bodytrack")),
        scaledMp(sim::parsecPreset("fluidanimate"))};

    const sim::RunResult base =
        runConfig(paperSystem(mee::Protocol::Volatile, 2), procs,
                  instr, warmup);
    const double base_cycles = static_cast<double>(base.cycles);

    std::printf("Ablation A: movement interval (history entries "
                "fixed at 64)\n\n");
    TextTable ta;
    ta.header({"interval", "normalized cycles", "subtree hit",
               "moves/1k writes"});
    for (unsigned interval : {8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
        sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
        cfg.mee.amntSubtreeLevel = 5; // movement-prone coverage
        cfg.mee.amntInterval = interval;
        const sim::RunResult r = runConfig(cfg, procs, instr, warmup);
        const double mpk =
            r.memWrites == 0
                ? 0.0
                : 1000.0 * static_cast<double>(r.subtreeMovements) /
                      static_cast<double>(r.memWrites);
        ta.row({std::to_string(interval),
                TextTable::num(static_cast<double>(r.cycles) /
                                   base_cycles,
                               3),
                TextTable::pct(r.subtreeHitRate, 1),
                TextTable::num(mpk, 2)});
    }
    std::printf("%s\n", ta.render().c_str());

    std::printf("Ablation B: history-buffer capacity (interval fixed "
                "at 64)\n\n");
    TextTable tb;
    tb.header({"entries", "normalized cycles", "subtree hit",
               "buffer bits"});
    for (unsigned entries : {4u, 8u, 16u, 32u, 64u, 128u}) {
        sim::SystemConfig cfg = paperSystem(mee::Protocol::Amnt, 2);
        cfg.mee.amntSubtreeLevel = 5; // movement-prone coverage
        cfg.mee.amntHistoryEntries = entries;
        const sim::RunResult r = runConfig(cfg, procs, instr, warmup);
        const unsigned bits =
            entries * 2 * static_cast<unsigned>(ceilLog2(entries));
        tb.row({std::to_string(entries),
                TextTable::num(static_cast<double>(r.cycles) /
                                   base_cycles,
                               3),
                TextTable::pct(r.subtreeHitRate, 1),
                std::to_string(bits)});
    }
    std::printf("%s\n", tb.render().c_str());
    std::printf("paper default: 64 writes per interval, 64 entries = "
                "768 bits (96 B)\n");
    return 0;
}
