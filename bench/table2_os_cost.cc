/**
 * Table 2: impact of the AMNT++ modified operating system on the
 * multiprogram workloads.
 *
 * Two columns per pair: normalized performance (cycles with the
 * modified OS / cycles with the unmodified OS — both under the AMNT
 * protocol) and instruction overhead (total instructions including
 * OS work, modified / unmodified). Paper: performance within noise
 * (0.97-1.01) and ~1-2% extra instructions.
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main()
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();

    TextTable table;
    table.header({"pair", "normalized performance",
                  "instruction overhead"});

    for (const auto &[a, b] : sim::parsecMultiprogramPairs()) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)), scaledMp(sim::parsecPreset(b))};

        sim::SystemConfig plain = paperSystem(mee::Protocol::Amnt, 2);
        const sim::RunResult unmodified =
            runConfig(plain, procs, instr, warmup);

        sim::SystemConfig pp = plain;
        pp.amntpp = true;
        const sim::RunResult modified =
            runConfig(pp, procs, instr, warmup);

        const double perf = static_cast<double>(modified.cycles) /
                            static_cast<double>(unmodified.cycles);
        const double instr_ratio =
            static_cast<double>(modified.appInstructions +
                                modified.osInstructions) /
            static_cast<double>(unmodified.appInstructions +
                                unmodified.osInstructions);
        table.row({a + " and " + b, TextTable::num(perf, 3),
                   TextTable::num(instr_ratio, 3)});
    }

    std::printf("Table 2: impact of the modified operating system "
                "(AMNT++) on multiprogram workloads\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: normalized performance 0.967-1.013; "
                "instruction overhead 1.004-1.021\n");
    return 0;
}
