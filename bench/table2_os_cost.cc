/**
 * Table 2: impact of the AMNT++ modified operating system on the
 * multiprogram workloads.
 *
 * Two columns per pair: normalized performance (cycles with the
 * modified OS / cycles with the unmodified OS — both under the AMNT
 * protocol) and instruction overhead (total instructions including
 * OS work, modified / unmodified). Paper: performance within noise
 * (0.97-1.01) and ~1-2% extra instructions.
 */

#include "bench_util.hh"

using namespace amnt;
using namespace amnt::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t instr = benchInstructions();
    const std::uint64_t warmup = benchWarmup();
    JsonSink json(argc, argv, "table2_os_cost");

    const auto pairs = sim::parsecMultiprogramPairs();
    std::vector<sweep::Job> jobs;
    for (const auto &[a, b] : pairs) {
        const std::vector<sim::WorkloadConfig> procs = {
            scaledMp(sim::parsecPreset(a)),
            scaledMp(sim::parsecPreset(b))};
        sim::SystemConfig plain = paperSystem(mee::Protocol::Amnt, 2);
        jobs.push_back(makeJob(plain, procs, instr, warmup));
        sim::SystemConfig pp = plain;
        pp.amntpp = true;
        jobs.push_back(makeJob(pp, procs, instr, warmup));
    }
    applyWorkloadOverride(jobs, argc, argv);
    applyProtocolOverride(jobs, argc, argv);
    const std::vector<sweep::Outcome> outcomes = sweepConfigs(jobs);

    TextTable table;
    table.header({"pair", "normalized performance",
                  "instruction overhead"});

    std::size_t pair_no = 0;
    for (const auto &[a, b] : pairs) {
        const std::size_t idx = pair_no * 2;
        const sim::RunResult &unmodified = outcomes[idx].result;
        const sim::RunResult &modified = outcomes[idx + 1].result;

        const double perf = static_cast<double>(modified.cycles) /
                            static_cast<double>(unmodified.cycles);
        const double instr_ratio =
            static_cast<double>(modified.appInstructions +
                                modified.osInstructions) /
            static_cast<double>(unmodified.appInstructions +
                                unmodified.osInstructions);
        json.result(a + "+" + b, jobs[idx], outcomes[idx], 1.0);
        json.result(a + "+" + b, jobs[idx + 1], outcomes[idx + 1],
                    perf);
        table.row({a + " and " + b, TextTable::num(perf, 3),
                   TextTable::num(instr_ratio, 3)});
        ++pair_no;
    }

    std::printf("Table 2: impact of the modified operating system "
                "(AMNT++) on multiprogram workloads\n\n%s\n",
                table.render().c_str());
    std::printf("paper anchors: normalized performance 0.967-1.013; "
                "instruction overhead 1.004-1.021\n");
    return 0;
}
