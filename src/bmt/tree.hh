/**
 * @file
 * Architectural (up-to-date) Bonsai Merkle Tree state.
 *
 * TreeState holds the *latest logical values* of every touched counter
 * block and tree node — the values the on-chip hardware would see
 * through its root-of-trust chain. The NVM device separately holds the
 * possibly-stale *persisted* values; which of the two a protocol keeps
 * in sync is exactly the metadata-persistence policy under study.
 *
 * Sparse convention: untouched blocks are all-zero and their hash
 * entry is 0, so only touched paths are materialized even for
 * terabyte-scale trees.
 */

#ifndef AMNT_BMT_TREE_HH
#define AMNT_BMT_TREE_HH

#include <cstdint>

#include "bmt/counters.hh"
#include "bmt/geometry.hh"
#include "common/flat_map.hh"
#include "crypto/engines.hh"
#include "mem/memory_map.hh"
#include "mem/nvm_device.hh"

namespace amnt::bmt
{

/** Up-to-date metadata values plus hash maintenance. */
class TreeState
{
  public:
    /**
     * @param map  Address layout (provides the geometry and the
     *             address tweaks that bind hashes to locations).
     * @param hash Keyed MAC engine; not owned.
     */
    TreeState(const mem::MemoryMap &map, const crypto::HashEngine &hash);

    /** Latest counter block for page @p idx (zero when untouched). */
    const CounterBlock &counter(std::uint64_t idx) const;

    /**
     * Mutate the counter for page @p idx then refresh the ancestral
     * hash path (deepest node up to the root register value).
     */
    void setCounter(std::uint64_t idx, const CounterBlock &value);

    /** Latest bytes of node @p ref (zero block when untouched). */
    const mem::Block &node(NodeRef ref) const;

    /** 64-bit hash of the latest root node; 0 for an empty tree. */
    std::uint64_t rootHash() const;

    /** Hash entry value for counter @p idx (0 when zero block). */
    std::uint64_t hashCounterBytes(std::uint64_t idx,
                                   const mem::Block &bytes) const;

    /** Hash entry value for node bytes at @p ref (0 when zero). */
    std::uint64_t hashNodeBytes(NodeRef ref,
                                const mem::Block &bytes) const;

    /** Serialized latest counter block (zero block when untouched). */
    const mem::Block &counterBytes(std::uint64_t idx) const;

    /**
     * Verify bytes fetched from NVM for counter @p idx against the
     * hash entry stored in its (trusted) parent node.
     */
    bool verifyCounterBytes(std::uint64_t idx,
                            const mem::Block &bytes) const;

    /**
     * Verify node bytes fetched from NVM against the parent entry
     * (or the root register value for the root node).
     */
    bool verifyNodeBytes(NodeRef ref, const mem::Block &bytes) const;

    /** Number of materialized counter blocks. */
    std::size_t touchedCounters() const { return counters_.size(); }

    /** Number of materialized (non-zero) tree nodes. */
    std::size_t touchedNodes() const { return nodes_.size(); }

    /** Iterate all materialized nodes: visitor(ref, bytes). */
    void forEachNode(
        const std::function<void(NodeRef, const mem::Block &)> &visitor)
        const;

    /** Iterate all touched counters: visitor(idx, block). */
    void forEachCounter(
        const std::function<void(std::uint64_t, const CounterBlock &)>
            &visitor) const;

    /**
     * Rebuild the full architectural state from persisted counter
     * blocks in @p nvm (the leaf-persistence recovery computation).
     * Returns the recomputed root hash; the instance now reflects the
     * persisted counters.
     */
    std::uint64_t rebuildFromNvm(const mem::NvmDevice &nvm);

    /** Geometry shortcut. */
    const Geometry &geometry() const { return *geo_; }

  private:
    /** Recompute the parent-entry chain for counter @p idx. */
    void updatePath(std::uint64_t idx);

    /** Set entry @p slot of node @p ref to @p value. */
    void setEntry(NodeRef ref, unsigned slot, std::uint64_t value);

    /** Device address of node @p ref (cached-layout fast path). */
    Addr
    nodeAddr(NodeRef ref) const
    {
        return treeBase_ + (geo_->linearId(ref) << kBlockShift);
    }

    const mem::MemoryMap *map_;
    const crypto::HashEngine *hash_;

    // Layout values resolved once: every write walks the ancestor
    // path, so the per-access address math must be adds and shifts,
    // not virtual-free but pointer-hopping calls into MemoryMap.
    const Geometry *geo_;
    Addr counterBase_;
    Addr treeBase_;

    FlatMap<std::uint64_t, CounterBlock> counters_;
    // Serialized form of every entry in counters_, maintained by
    // setCounter/rebuildFromNvm: each write hashes and persists the
    // same serialized bytes, so packing the 7-bit minors once per
    // mutation instead of per reader keeps serialize() off the
    // per-access path.
    FlatMap<std::uint64_t, mem::Block> counterBytes_;
    FlatMap<std::uint64_t, mem::Block> nodes_;
};

} // namespace amnt::bmt

#endif // AMNT_BMT_TREE_HH
