#include "bmt/counters.hh"

#include "common/bitops.hh"

namespace amnt::bmt
{

std::array<std::uint8_t, kBlockSize>
CounterBlock::serialize() const
{
    std::array<std::uint8_t, kBlockSize> out{};
    store64le(out.data(), major);
    // Pack 64 seven-bit minors into the remaining 56 bytes.
    std::size_t bitpos = 0;
    std::uint8_t *base = out.data() + 8;
    for (unsigned i = 0; i < kCounterArity; ++i) {
        const std::uint32_t v = minors[i] & kMinorCounterMax;
        const std::size_t byte = bitpos >> 3;
        const unsigned shift = bitpos & 7;
        base[byte] |= static_cast<std::uint8_t>(v << shift);
        if (shift > 1)
            base[byte + 1] |= static_cast<std::uint8_t>(v >> (8 - shift));
        bitpos += kMinorCounterBits;
    }
    return out;
}

CounterBlock
CounterBlock::deserialize(const std::array<std::uint8_t, kBlockSize> &raw)
{
    CounterBlock cb;
    cb.major = load64le(raw.data());
    std::size_t bitpos = 0;
    const std::uint8_t *base = raw.data() + 8;
    for (unsigned i = 0; i < kCounterArity; ++i) {
        const std::size_t byte = bitpos >> 3;
        const unsigned shift = bitpos & 7;
        std::uint32_t v = base[byte] >> shift;
        if (shift > 1)
            v |= static_cast<std::uint32_t>(base[byte + 1]) << (8 - shift);
        cb.minors[i] = static_cast<std::uint8_t>(v & kMinorCounterMax);
        bitpos += kMinorCounterBits;
    }
    return cb;
}

} // namespace amnt::bmt
