/**
 * @file
 * Bonsai Merkle Tree geometry: pure index math, no storage.
 *
 * Levels are numbered the way the paper numbers them: the root is
 * level 1 and level k holds 8^(k-1) nodes, so a subtree root placed at
 * level 3 is one of 64 nodes and covers 1/64 of protected memory
 * (128 MB of an 8 GB device). Counter blocks form one extra level
 * below the deepest node level ("8-level BMT" for 8 GB = 7 node levels
 * + the counter leaves).
 */

#ifndef AMNT_BMT_GEOMETRY_HH
#define AMNT_BMT_GEOMETRY_HH

#include <array>
#include <cstdint>

#include "common/bitops.hh"
#include "common/types.hh"

namespace amnt::bmt
{

/** log2 of the tree arity; all level math reduces to shifts by it. */
inline constexpr unsigned kArityShift = floorLog2(kTreeArity);

/** Identifies one BMT node by level (root = 1) and index within it. */
struct NodeRef
{
    unsigned level;      ///< 1 = root.
    std::uint64_t index; ///< [0, 8^(level-1)).

    bool operator==(const NodeRef &) const = default;
};

/**
 * Geometry of an 8-ary BMT over a power-of-8-padded set of counter
 * blocks. All functions are O(1) index arithmetic.
 */
class Geometry
{
  public:
    /**
     * Upper bound on nodeLevels() for any representable device (8^21
     * counters exceeds a 2^63 B device); sized for stack path buffers.
     */
    static constexpr unsigned kMaxPathNodes = 22;

    /**
     * @param n_counter_blocks Number of counter blocks (= pages of
     *        protected data); padded up to a power of 8, minimum 8.
     */
    explicit Geometry(std::uint64_t n_counter_blocks);

    /** Number of hash-node levels; root = level 1. */
    unsigned nodeLevels() const { return nodeLevels_; }

    /** Node levels + 1 for the counter-leaf level (paper's "8-level"). */
    unsigned totalLevels() const { return nodeLevels_ + 1; }

    /** Counter blocks after padding (a power of 8). */
    std::uint64_t paddedCounters() const { return paddedCounters_; }

    /** Number of nodes at @p level. */
    std::uint64_t
    nodesAt(unsigned level) const
    {
        return 1ull << (kArityShift * (level - 1));
    }

    /** Total hash nodes over all levels. */
    std::uint64_t totalNodes() const { return totalNodes_; }

    /** Counter blocks covered by one node at @p level. */
    std::uint64_t
    countersPerNode(unsigned level) const
    {
        return 1ull << coverShift(level);
    }

    /** Node at @p level on the ancestral path of counter @p counter. */
    NodeRef
    ancestorOf(std::uint64_t counter, unsigned level) const
    {
        return {level, counter >> coverShift(level)};
    }

    /** The deepest node level's node covering counter @p counter. */
    NodeRef
    leafNodeOf(std::uint64_t counter) const
    {
        return ancestorOf(counter, nodeLevels_);
    }

    /** Parent of a node; level must be > 1. */
    static NodeRef
    parentOf(NodeRef node)
    {
        return {node.level - 1, node.index / kTreeArity};
    }

    /** Child @p slot (0..7) of @p node. */
    NodeRef
    childOf(NodeRef node, unsigned slot) const
    {
        return {node.level + 1, node.index * kTreeArity + slot};
    }

    /** Which child slot of its parent @p node occupies. */
    static unsigned
    slotOf(NodeRef node)
    {
        return static_cast<unsigned>(node.index % kTreeArity);
    }

    /** Linear node id: nodes packed level-major starting at the root. */
    std::uint64_t
    linearId(NodeRef node) const
    {
        return levelOffset_[node.level] + node.index;
    }

    /** Inverse of linearId(). */
    NodeRef
    nodeOfLinearId(std::uint64_t id) const
    {
        unsigned level = 1;
        std::uint64_t level_size = 1;
        while (id >= level_size) {
            id -= level_size;
            level_size *= kTreeArity;
            ++level;
        }
        return {level, id};
    }

    /** True iff @p node is on the ancestral path of @p counter. */
    bool
    onPath(NodeRef node, std::uint64_t counter) const
    {
        return ancestorOf(counter, node.level) == node;
    }

    /** True iff @p node lies inside the subtree rooted at @p root. */
    static bool
    inSubtree(NodeRef node, NodeRef root)
    {
        if (node.level < root.level)
            return false;
        return (node.index >>
                (kArityShift * (node.level - root.level))) ==
               root.index;
    }

    /**
     * Region index of @p counter at @p level: which level-@p level
     * node covers it. This is the "subtree region" of the paper.
     */
    std::uint64_t
    regionOf(std::uint64_t counter, unsigned level) const
    {
        return counter >> coverShift(level);
    }

  private:
    /** Deepest possible tree (see kMaxPathNodes). */
    static constexpr unsigned kMaxLevels = kMaxPathNodes;

    /** log2 of countersPerNode(level). */
    unsigned
    coverShift(unsigned level) const
    {
        return kArityShift * (nodeLevels_ - (level - 1));
    }

    std::uint64_t paddedCounters_;
    std::uint64_t totalNodes_;
    unsigned nodeLevels_;

    /** levelOffset_[l]: linear id of the first node of level l. */
    std::array<std::uint64_t, kMaxLevels + 2> levelOffset_{};
};

} // namespace amnt::bmt

#endif // AMNT_BMT_GEOMETRY_HH
