#include "bmt/geometry.hh"

#include "common/log.hh"

namespace amnt::bmt
{

Geometry::Geometry(std::uint64_t n_counter_blocks)
{
    if (n_counter_blocks == 0)
        panic("Geometry requires at least one counter block");

    // Pad to a power of 8 (>= 8) so every level is full.
    paddedCounters_ = kTreeArity;
    nodeLevels_ = 1;
    while (paddedCounters_ < n_counter_blocks) {
        paddedCounters_ *= kTreeArity;
        ++nodeLevels_;
    }
    totalNodes_ = (paddedCounters_ - 1) / (kTreeArity - 1);
    if (nodeLevels_ > kMaxLevels)
        panic("BMT with %u levels exceeds the geometry table",
              nodeLevels_);

    // levelOffset_[l] = nodes on levels 1..l-1 = (8^(l-1) - 1) / 7,
    // precomputed so linearId() is one add instead of an ipow loop.
    levelOffset_[0] = 0;
    levelOffset_[1] = 0;
    std::uint64_t level_size = 1;
    for (unsigned l = 2; l <= kMaxLevels + 1; ++l) {
        levelOffset_[l] = levelOffset_[l - 1] + level_size;
        level_size *= kTreeArity;
    }
}

} // namespace amnt::bmt
