#include "bmt/geometry.hh"

#include "common/log.hh"

namespace amnt::bmt
{

Geometry::Geometry(std::uint64_t n_counter_blocks)
{
    if (n_counter_blocks == 0)
        panic("Geometry requires at least one counter block");

    // Pad to a power of 8 (>= 8) so every level is full.
    paddedCounters_ = kTreeArity;
    nodeLevels_ = 1;
    while (paddedCounters_ < n_counter_blocks) {
        paddedCounters_ *= kTreeArity;
        ++nodeLevels_;
    }
    totalNodes_ = (paddedCounters_ - 1) / (kTreeArity - 1);
}

} // namespace amnt::bmt
