#include "bmt/tree.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::bmt
{

namespace
{

const mem::Block kZeroBlock{};
const CounterBlock kZeroCounter{};

bool
isZeroBlock(const mem::Block &b)
{
    for (auto byte : b)
        if (byte != 0)
            return false;
    return true;
}

} // namespace

TreeState::TreeState(const mem::MemoryMap &map,
                     const crypto::HashEngine &hash)
    : map_(&map), hash_(&hash)
{
}

const CounterBlock &
TreeState::counter(std::uint64_t idx) const
{
    auto it = counters_.find(idx);
    return it == counters_.end() ? kZeroCounter : it->second;
}

const mem::Block &
TreeState::node(NodeRef ref) const
{
    auto it = nodes_.find(map_->geometry().linearId(ref));
    return it == nodes_.end() ? kZeroBlock : it->second;
}

std::uint64_t
TreeState::hashCounterBytes(std::uint64_t idx,
                            const mem::Block &bytes) const
{
    if (isZeroBlock(bytes))
        return 0;
    const Addr tweak = map_->counterBase() + idx * kBlockSize;
    return hash_->mac64(bytes.data(), bytes.size(), tweak);
}

std::uint64_t
TreeState::hashNodeBytes(NodeRef ref, const mem::Block &bytes) const
{
    if (isZeroBlock(bytes))
        return 0;
    return hash_->mac64(bytes.data(), bytes.size(), map_->nodeAddrOf(ref));
}

mem::Block
TreeState::counterBytes(std::uint64_t idx) const
{
    return counter(idx).serialize();
}

void
TreeState::setEntry(NodeRef ref, unsigned slot, std::uint64_t value)
{
    auto [it, fresh] =
        nodes_.try_emplace(map_->geometry().linearId(ref));
    if (fresh)
        it->second.fill(0);
    store64le(it->second.data() + slot * kHashBytes, value);
}

void
TreeState::updatePath(std::uint64_t idx)
{
    const Geometry &geo = map_->geometry();
    // Deepest node holds the counter hash.
    NodeRef ref = geo.leafNodeOf(idx);
    setEntry(ref, static_cast<unsigned>(idx % kTreeArity),
             hashCounterBytes(idx, counterBytes(idx)));
    // Propagate to the root.
    while (ref.level > 1) {
        const NodeRef parent = Geometry::parentOf(ref);
        setEntry(parent, Geometry::slotOf(ref),
                 hashNodeBytes(ref, node(ref)));
        ref = parent;
    }
}

void
TreeState::setCounter(std::uint64_t idx, const CounterBlock &value)
{
    counters_[idx] = value;
    updatePath(idx);
}

std::uint64_t
TreeState::rootHash() const
{
    return hashNodeBytes({1, 0}, node({1, 0}));
}

bool
TreeState::verifyCounterBytes(std::uint64_t idx,
                              const mem::Block &bytes) const
{
    const NodeRef parent = map_->geometry().leafNodeOf(idx);
    const std::uint64_t stored = load64le(
        node(parent).data() + (idx % kTreeArity) * kHashBytes);
    return hashCounterBytes(idx, bytes) == stored;
}

bool
TreeState::verifyNodeBytes(NodeRef ref, const mem::Block &bytes) const
{
    if (ref.level == 1)
        return hashNodeBytes(ref, bytes) == rootHash();
    const NodeRef parent = Geometry::parentOf(ref);
    const std::uint64_t stored = load64le(
        node(parent).data() + Geometry::slotOf(ref) * kHashBytes);
    return hashNodeBytes(ref, bytes) == stored;
}

void
TreeState::forEachCounter(
    const std::function<void(std::uint64_t, const CounterBlock &)>
        &visitor) const
{
    for (const auto &kv : counters_)
        visitor(kv.first, kv.second);
}

void
TreeState::forEachNode(
    const std::function<void(NodeRef, const mem::Block &)> &visitor) const
{
    for (const auto &kv : nodes_)
        visitor(map_->geometry().nodeOfLinearId(kv.first), kv.second);
}

std::uint64_t
TreeState::rebuildFromNvm(const mem::NvmDevice &nvm)
{
    counters_.clear();
    nodes_.clear();
    const Addr lo = map_->counterBase();
    const Addr hi = map_->hmacBase();
    nvm.forEachBlockIn(lo, hi, [this, lo](Addr addr, const mem::Block &b) {
        const std::uint64_t idx = (addr - lo) / kBlockSize;
        counters_[idx] = CounterBlock::deserialize(b);
    });
    for (const auto &kv : counters_)
        updatePath(kv.first);
    return rootHash();
}

} // namespace amnt::bmt
