#include "bmt/tree.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::bmt
{

namespace
{

const mem::Block kZeroBlock{};
const CounterBlock kZeroCounter{};

bool
isZeroBlock(const mem::Block &b)
{
    for (auto byte : b)
        if (byte != 0)
            return false;
    return true;
}

/**
 * Batched hash of @p n blocks with the zero-block -> 0 convention:
 * out[i] = mac64(blockOf(i), tweakOf(i)), zero blocks skipping the
 * MAC entirely, all real MACs in one mac64xN burst.
 */
template <typename BlockFn, typename TweakFn>
void
batchHash(const crypto::HashEngine &hash, std::size_t n,
          BlockFn &&blockOf, TweakFn &&tweakOf,
          std::vector<std::uint64_t> &out)
{
    out.assign(n, 0);
    std::vector<crypto::MacRequest> reqs;
    std::vector<std::size_t> pos;
    reqs.reserve(n);
    pos.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const mem::Block &b = blockOf(i);
        if (isZeroBlock(b))
            continue;
        reqs.push_back({b.data(), b.size(), tweakOf(i)});
        pos.push_back(i);
    }
    std::vector<std::uint64_t> macs(reqs.size());
    hash.mac64xN(reqs.data(), reqs.size(), macs.data());
    for (std::size_t j = 0; j < reqs.size(); ++j)
        out[pos[j]] = macs[j];
}

} // namespace

TreeState::TreeState(const mem::MemoryMap &map,
                     const crypto::HashEngine &hash)
    : map_(&map), hash_(&hash), geo_(&map.geometry()),
      counterBase_(map.counterBase()), treeBase_(map.treeBase())
{
}

const CounterBlock &
TreeState::counter(std::uint64_t idx) const
{
    auto it = counters_.find(idx);
    return it == counters_.end() ? kZeroCounter : it->second;
}

const mem::Block &
TreeState::node(NodeRef ref) const
{
    auto it = nodes_.find(geo_->linearId(ref));
    return it == nodes_.end() ? kZeroBlock : it->second;
}

std::uint64_t
TreeState::hashCounterBytes(std::uint64_t idx,
                            const mem::Block &bytes) const
{
    if (isZeroBlock(bytes))
        return 0;
    const Addr tweak = counterBase_ + idx * kBlockSize;
    return hash_->mac64(bytes.data(), bytes.size(), tweak);
}

std::uint64_t
TreeState::hashNodeBytes(NodeRef ref, const mem::Block &bytes) const
{
    if (isZeroBlock(bytes))
        return 0;
    return hash_->mac64(bytes.data(), bytes.size(), nodeAddr(ref));
}

const mem::Block &
TreeState::counterBytes(std::uint64_t idx) const
{
    auto it = counterBytes_.find(idx);
    return it == counterBytes_.end() ? kZeroBlock : it->second;
}

void
TreeState::setEntry(NodeRef ref, unsigned slot, std::uint64_t value)
{
    // try_emplace value-initializes fresh blocks to all-zero.
    auto it = nodes_.try_emplace(geo_->linearId(ref)).first;
    store64le(it->second.data() + slot * kHashBytes, value);
}

void
TreeState::updatePath(std::uint64_t idx)
{
    const Geometry &geo = *geo_;
    // Deepest node holds the counter hash.
    NodeRef ref = geo.leafNodeOf(idx);
    setEntry(ref, static_cast<unsigned>(idx % kTreeArity),
             hashCounterBytes(idx, counterBytes(idx)));
    // Propagate to the root.
    while (ref.level > 1) {
        const NodeRef parent = Geometry::parentOf(ref);
        setEntry(parent, Geometry::slotOf(ref),
                 hashNodeBytes(ref, node(ref)));
        ref = parent;
    }
}

void
TreeState::setCounter(std::uint64_t idx, const CounterBlock &value)
{
    counters_[idx] = value;
    counterBytes_[idx] = value.serialize();
    updatePath(idx);
}

std::uint64_t
TreeState::rootHash() const
{
    return hashNodeBytes({1, 0}, node({1, 0}));
}

bool
TreeState::verifyCounterBytes(std::uint64_t idx,
                              const mem::Block &bytes) const
{
    const NodeRef parent = map_->geometry().leafNodeOf(idx);
    const std::uint64_t stored = load64le(
        node(parent).data() + (idx % kTreeArity) * kHashBytes);
    return hashCounterBytes(idx, bytes) == stored;
}

bool
TreeState::verifyNodeBytes(NodeRef ref, const mem::Block &bytes) const
{
    if (ref.level == 1)
        return hashNodeBytes(ref, bytes) == rootHash();
    const NodeRef parent = Geometry::parentOf(ref);
    const std::uint64_t stored = load64le(
        node(parent).data() + Geometry::slotOf(ref) * kHashBytes);
    return hashNodeBytes(ref, bytes) == stored;
}

void
TreeState::forEachCounter(
    const std::function<void(std::uint64_t, const CounterBlock &)>
        &visitor) const
{
    for (const auto &kv : counters_)
        visitor(kv.first, kv.second);
}

void
TreeState::forEachNode(
    const std::function<void(NodeRef, const mem::Block &)> &visitor) const
{
    for (const auto &kv : nodes_)
        visitor(geo_->nodeOfLinearId(kv.first), kv.second);
}

std::uint64_t
TreeState::rebuildFromNvm(const mem::NvmDevice &nvm)
{
    counters_.clear();
    counterBytes_.clear();
    nodes_.clear();
    const Addr lo = map_->counterBase();
    const Addr hi = map_->hmacBase();
    std::vector<std::uint64_t> idxs;
    nvm.forEachBlockIn(lo, hi,
                       [this, lo, &idxs](Addr addr, const mem::Block &b) {
        const std::uint64_t idx = (addr - lo) / kBlockSize;
        counters_[idx] = CounterBlock::deserialize(b);
        idxs.push_back(idx);
    });
    std::sort(idxs.begin(), idxs.end());
    // Re-serialize rather than caching the raw persisted bytes: the
    // hash chain must be computed over the canonical encoding, exactly
    // as the pre-crash updatePath did (tampered non-canonical bytes
    // must not leak into the rebuilt tree).
    for (std::uint64_t idx : idxs)
        counterBytes_[idx] = counters_.find(idx)->second.serialize();

    // Level-by-level rebuild: every entry of a level is final before
    // the level itself is hashed, so each touched node is MACed
    // exactly once (the per-counter updatePath walk re-hashes shared
    // ancestors once per descendant), and each level's hashes go
    // through one batched mac64xN burst.
    const unsigned deepest = geo_->nodeLevels();

    // Counter leaves -> deepest node level.
    {
        std::vector<std::uint64_t> macs;
        batchHash(
            *hash_, idxs.size(),
            [this, &idxs](std::size_t i) -> const mem::Block & {
                return counterBytes(idxs[i]);
            },
            [this, &idxs](std::size_t i) {
                return counterBase_ + idxs[i] * kBlockSize;
            },
            macs);
        for (std::size_t i = 0; i < idxs.size(); ++i)
            setEntry(geo_->leafNodeOf(idxs[i]),
                     static_cast<unsigned>(idxs[i] % kTreeArity),
                     macs[i]);
    }

    // Touched node indices at the current level, sorted and unique.
    std::vector<std::uint64_t> level_idx;
    level_idx.reserve(idxs.size());
    for (std::uint64_t idx : idxs)
        level_idx.push_back(geo_->leafNodeOf(idx).index);
    level_idx.erase(std::unique(level_idx.begin(), level_idx.end()),
                    level_idx.end());

    for (unsigned level = deepest; level > 1; --level) {
        std::vector<std::uint64_t> macs;
        batchHash(
            *hash_, level_idx.size(),
            [this, level, &level_idx](std::size_t i)
                -> const mem::Block & {
                return node({level, level_idx[i]});
            },
            [this, level, &level_idx](std::size_t i) {
                return nodeAddr({level, level_idx[i]});
            },
            macs);
        for (std::size_t i = 0; i < level_idx.size(); ++i) {
            const NodeRef ref{level, level_idx[i]};
            setEntry(Geometry::parentOf(ref), Geometry::slotOf(ref),
                     macs[i]);
        }
        for (auto &idx : level_idx)
            idx /= kTreeArity;
        level_idx.erase(
            std::unique(level_idx.begin(), level_idx.end()),
            level_idx.end());
    }
    return rootHash();
}

} // namespace amnt::bmt
