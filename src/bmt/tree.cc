#include "bmt/tree.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::bmt
{

namespace
{

const mem::Block kZeroBlock{};
const CounterBlock kZeroCounter{};

bool
isZeroBlock(const mem::Block &b)
{
    for (auto byte : b)
        if (byte != 0)
            return false;
    return true;
}

} // namespace

TreeState::TreeState(const mem::MemoryMap &map,
                     const crypto::HashEngine &hash)
    : map_(&map), hash_(&hash), geo_(&map.geometry()),
      counterBase_(map.counterBase()), treeBase_(map.treeBase())
{
}

const CounterBlock &
TreeState::counter(std::uint64_t idx) const
{
    auto it = counters_.find(idx);
    return it == counters_.end() ? kZeroCounter : it->second;
}

const mem::Block &
TreeState::node(NodeRef ref) const
{
    auto it = nodes_.find(geo_->linearId(ref));
    return it == nodes_.end() ? kZeroBlock : it->second;
}

std::uint64_t
TreeState::hashCounterBytes(std::uint64_t idx,
                            const mem::Block &bytes) const
{
    if (isZeroBlock(bytes))
        return 0;
    const Addr tweak = counterBase_ + idx * kBlockSize;
    return hash_->mac64(bytes.data(), bytes.size(), tweak);
}

std::uint64_t
TreeState::hashNodeBytes(NodeRef ref, const mem::Block &bytes) const
{
    if (isZeroBlock(bytes))
        return 0;
    return hash_->mac64(bytes.data(), bytes.size(), nodeAddr(ref));
}

const mem::Block &
TreeState::counterBytes(std::uint64_t idx) const
{
    auto it = counterBytes_.find(idx);
    return it == counterBytes_.end() ? kZeroBlock : it->second;
}

void
TreeState::setEntry(NodeRef ref, unsigned slot, std::uint64_t value)
{
    // try_emplace value-initializes fresh blocks to all-zero.
    auto it = nodes_.try_emplace(geo_->linearId(ref)).first;
    store64le(it->second.data() + slot * kHashBytes, value);
}

void
TreeState::updatePath(std::uint64_t idx)
{
    const Geometry &geo = *geo_;
    // Deepest node holds the counter hash.
    NodeRef ref = geo.leafNodeOf(idx);
    setEntry(ref, static_cast<unsigned>(idx % kTreeArity),
             hashCounterBytes(idx, counterBytes(idx)));
    // Propagate to the root.
    while (ref.level > 1) {
        const NodeRef parent = Geometry::parentOf(ref);
        setEntry(parent, Geometry::slotOf(ref),
                 hashNodeBytes(ref, node(ref)));
        ref = parent;
    }
}

void
TreeState::setCounter(std::uint64_t idx, const CounterBlock &value)
{
    counters_[idx] = value;
    counterBytes_[idx] = value.serialize();
    updatePath(idx);
}

std::uint64_t
TreeState::rootHash() const
{
    return hashNodeBytes({1, 0}, node({1, 0}));
}

bool
TreeState::verifyCounterBytes(std::uint64_t idx,
                              const mem::Block &bytes) const
{
    const NodeRef parent = map_->geometry().leafNodeOf(idx);
    const std::uint64_t stored = load64le(
        node(parent).data() + (idx % kTreeArity) * kHashBytes);
    return hashCounterBytes(idx, bytes) == stored;
}

bool
TreeState::verifyNodeBytes(NodeRef ref, const mem::Block &bytes) const
{
    if (ref.level == 1)
        return hashNodeBytes(ref, bytes) == rootHash();
    const NodeRef parent = Geometry::parentOf(ref);
    const std::uint64_t stored = load64le(
        node(parent).data() + Geometry::slotOf(ref) * kHashBytes);
    return hashNodeBytes(ref, bytes) == stored;
}

void
TreeState::forEachCounter(
    const std::function<void(std::uint64_t, const CounterBlock &)>
        &visitor) const
{
    for (const auto &kv : counters_)
        visitor(kv.first, kv.second);
}

void
TreeState::forEachNode(
    const std::function<void(NodeRef, const mem::Block &)> &visitor) const
{
    for (const auto &kv : nodes_)
        visitor(geo_->nodeOfLinearId(kv.first), kv.second);
}

std::uint64_t
TreeState::rebuildFromNvm(const mem::NvmDevice &nvm)
{
    counters_.clear();
    counterBytes_.clear();
    nodes_.clear();
    const Addr lo = map_->counterBase();
    const Addr hi = map_->hmacBase();
    nvm.forEachBlockIn(lo, hi, [this, lo](Addr addr, const mem::Block &b) {
        const std::uint64_t idx = (addr - lo) / kBlockSize;
        counters_[idx] = CounterBlock::deserialize(b);
    });
    // Re-serialize rather than caching the raw persisted bytes: the
    // hash chain must be computed over the canonical encoding, exactly
    // as the pre-crash updatePath did (tampered non-canonical bytes
    // must not leak into the rebuilt tree).
    for (const auto &kv : counters_)
        counterBytes_[kv.first] = kv.second.serialize();
    for (const auto &kv : counters_)
        updatePath(kv.first);
    return rootHash();
}

} // namespace amnt::bmt
