/**
 * @file
 * Split-counter blocks for counter-mode encryption (Table 1 format).
 *
 * One 64 B counter block serves one 4 KB page: an 8-byte major counter
 * shared by the page plus 64 seven-bit minor counters (64 x 7 = 448
 * bits = 56 bytes), one per 64 B data block. A minor-counter overflow
 * bumps the major counter, resets every minor, and forces the page to
 * be re-encrypted — the engine models (and in functional mode
 * performs) that re-encryption.
 */

#ifndef AMNT_BMT_COUNTERS_HH
#define AMNT_BMT_COUNTERS_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace amnt::bmt
{

/** In-core representation of one split-counter block. */
struct CounterBlock
{
    std::uint64_t major = 0;
    std::array<std::uint8_t, kCounterArity> minors{};

    /**
     * Increment the minor counter for @p slot.
     * @return true when the minor overflowed; the caller must then
     *         call overflowReset() and re-encrypt the page.
     */
    bool
    increment(unsigned slot)
    {
        if (minors[slot] == kMinorCounterMax)
            return true;
        ++minors[slot];
        return false;
    }

    /** Handle an overflow: bump major, zero all minors. */
    void
    overflowReset()
    {
        ++major;
        minors.fill(0);
    }

    /** True iff the block was never written (all-zero encoding). */
    bool
    isZero() const
    {
        if (major != 0)
            return false;
        for (auto m : minors)
            if (m != 0)
                return false;
        return true;
    }

    bool operator==(const CounterBlock &) const = default;

    /** Serialize to the 64 B in-memory format (8 B major + packed 7-bit
     *  minors). */
    std::array<std::uint8_t, kBlockSize> serialize() const;

    /** Parse the 64 B in-memory format. */
    static CounterBlock
    deserialize(const std::array<std::uint8_t, kBlockSize> &raw);
};

} // namespace amnt::bmt

#endif // AMNT_BMT_COUNTERS_HH
