/**
 * @file
 * Online-recovery campaign: crash a protocol mid-workload, then keep
 * serving traffic while the recovery backlog drains, recording the
 * degraded-mode latency distribution.
 *
 * Phases (per protocol):
 *  1. steady   — cfg.ops zipfian-style references: the healthy
 *                latency distribution (p50/p90/p99).
 *  2. crash    — arm the fault domain cfg.crashAfter persist points
 *                ahead and run until the injected crash fires.
 *  3. recover  — run the protocol's recovery planner. Its NVM block
 *                traffic becomes a cycle backlog (read/write cycles
 *                from MeeConfig's bandwidth model). A protocol whose
 *                recovery fails (the volatile baseline) takes a cold
 *                restart instead: fresh device, fresh engine, no
 *                backlog — but all warmed state is gone.
 *  4. degraded — serve cfg.ops references while the backlog drains;
 *                each op is taxed one extra NVM read while recovery
 *                replay still owns the channel. The histogram is
 *                snapshotAndReset between phases, so degraded
 *                percentiles cannot be polluted by steady samples.
 *  5. post     — cfg.ops/2 references after the backlog is gone.
 */

#include "campaign/harness.hh"
#include "common/log.hh"
#include "core/protocol_registry.hh"
#include "fault/fault.hh"

namespace amnt::campaign
{

namespace
{

sim::WorkloadConfig
serveWorkload(const CampaignConfig &cfg, std::uint64_t seed)
{
    sim::WorkloadConfig w;
    w.name = "serve";
    w.kind = sim::WorkloadKind::Zipfian;
    w.footprintPages = cfg.dataBytes / kPageSize;
    w.writeFraction = cfg.writeFraction;
    w.zipfAlpha = 0.99;
    w.spatialRun = 0.2;
    w.seed = seed;
    return w;
}

void
fillOnlineRecovery(mee::Protocol p, const CampaignConfig &cfg,
                   ProtocolRow &row)
{
    const mee::CrashProfile profile = core::crashProfileOf(p);
    const std::uint64_t salt = protoSalt(cfg, p);
    Harness h(p, baseMee(cfg));
    Histogram lat = latencyHistogram();

    // Phase 1: steady state.
    {
        sim::Workload gen(serveWorkload(cfg, salt));
        for (unsigned i = 0; i < cfg.ops; ++i)
            lat.add(static_cast<double>(
                h.access(gen.next(), 0, cfg.dataBytes, salt)));
        const HistogramSummary s = lat.snapshotAndReset();
        row.u64("steady_ops", s.count);
        row.f64("steady_p50", s.p50);
        row.f64("steady_p90", s.p90);
        row.f64("steady_p99", s.p99);
    }

    // Phase 2: crash mid-workload. The serve stream writes often
    // enough that persist boundaries keep coming; the cap is a
    // safety net, not an expected exit.
    bool fired = false;
    std::uint64_t point = 0;
    {
        h.domain.armAfter(cfg.crashAfter);
        sim::Workload gen(serveWorkload(cfg, salt ^ 0x51ed));
        for (unsigned i = 0; i < 64 * cfg.crashAfter + cfg.ops; ++i) {
            try {
                h.access(gen.next(), 0, cfg.dataBytes, salt);
            } catch (const fault::CrashInjected &c) {
                fired = true;
                point = c.point();
                break;
            }
        }
        h.domain.disarm();
    }
    row.boolean("crash_fired", fired);
    row.u64("crash_point", point);

    // Phase 3: recovery. The planner's block traffic is the replay
    // backlog the degraded phase must absorb.
    Cycle backlog = 0;
    bool cold_restart = false;
    {
        h.engine->crash();
        const mee::RecoveryReport rep = h.engine->recover();
        row.boolean("recovered", rep.success);
        row.boolean("recover_expected", profile.persistent);
        row.u64("recovery_blocks_read", rep.blocksRead);
        row.u64("recovery_blocks_written", rep.blocksWritten);
        row.f64("recovery_est_ms", rep.estimatedMs);
        if (rep.success) {
            backlog = rep.blocksRead * h.mee.nvmReadCycles +
                      rep.blocksWritten * h.mee.nvmWriteCycles;
        } else {
            cold_restart = true;
            h.rebuildFresh();
        }
    }
    row.boolean("cold_restart", cold_restart);
    row.u64("recovery_backlog_cycles", backlog);

    // Phase 4: degraded service while replay owns part of the NVM
    // channel. Foreground ops pay one extra device read until the
    // backlog (drained at foreground speed) is gone.
    {
        sim::Workload gen(serveWorkload(cfg, salt ^ 0xdeaf));
        std::uint64_t window = 0;
        for (unsigned i = 0; i < cfg.ops; ++i) {
            Cycle c = h.access(gen.next(), 0, cfg.dataBytes, salt);
            if (backlog > 0) {
                c += h.mee.nvmReadCycles;
                backlog = backlog > c ? backlog - c : 0;
                ++window;
            }
            lat.add(static_cast<double>(c));
        }
        const HistogramSummary s = lat.snapshotAndReset();
        row.u64("degraded_window_ops", window);
        row.f64("degraded_p50", s.p50);
        row.f64("degraded_p90", s.p90);
        row.f64("degraded_p99", s.p99);
    }

    // Phase 5: post-recovery steady state.
    {
        sim::Workload gen(serveWorkload(cfg, salt ^ 0xf00d));
        for (unsigned i = 0; i < cfg.ops / 2; ++i)
            lat.add(static_cast<double>(
                h.access(gen.next(), 0, cfg.dataBytes, salt)));
        const HistogramSummary s = lat.snapshotAndReset();
        row.f64("post_p50", s.p50);
        row.f64("post_p99", s.p99);
    }
}

} // namespace

CampaignReport
runOnlineRecovery(const CampaignConfig &cfg)
{
    return runPerProtocol("online_recovery", cfg, fillOnlineRecovery);
}

} // namespace amnt::campaign
