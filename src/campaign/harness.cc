#include "campaign/harness.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "core/amnt.hh"
#include "core/protocol_registry.hh"
#include "sim/sweep.hh"

namespace amnt::campaign
{

mee::MeeConfig
baseMee(const CampaignConfig &cfg)
{
    mee::MeeConfig m;
    m.dataBytes = cfg.dataBytes;
    m.trackContents = true; // functional plane: tamper checks are real
    m.keySeed = cfg.seed | 1;
    m.metaCache = {"mcache", cfg.metaCacheBytes, 4, 2};
    // Small-geometry protocol knobs, matching the crash matrix: the
    // adaptive protocols must actually adapt within a few thousand ops.
    m.osirisStopLoss = 4;
    m.amntSubtreeLevel = 3;
    m.amntInterval = 16;
    m.amntHistoryEntries = 16;
    m.bmfRootCacheEntries = 16;
    m.bmfInterval = 24;
    m.phoenixEpoch = 16;
    m.stitQueueDepth = 8;
    m.stitDrain = 2;
    return m;
}

std::uint64_t
protoSalt(const CampaignConfig &cfg, mee::Protocol p)
{
    return cfg.seed ^
           (0x5bd1e9955bd1e995ull * (static_cast<unsigned>(p) + 1));
}

mem::Block
patternBlock(Addr addr, std::uint64_t salt)
{
    mem::Block b;
    std::uint64_t x = addr * 0x9e3779b97f4a7c15ull ^ salt;
    for (std::size_t i = 0; i < kBlockSize; i += 8) {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 29;
        store64le(b.data() + i, x);
    }
    return b;
}

Harness::Harness(mee::Protocol p, const mee::MeeConfig &mee_cfg)
    : protocol(p), mee(mee_cfg)
{
    rebuildFresh();
}

void
Harness::rebuildFresh()
{
    engine.reset();
    nvm = std::make_unique<mem::NvmDevice>(
        mem::MemoryMap(mee.dataBytes).deviceBytes());
    nvm->setFaultDomain(&domain);
    domain.startCounting();
    engine = core::makeEngine(protocol, mee, *nvm);
}

Addr
Harness::place(Addr vaddr, Addr base, std::uint64_t span)
{
    return base + blockAddr(blockOf(vaddr)) % span;
}

Cycle
Harness::access(const sim::MemRef &ref, Addr base, std::uint64_t span,
                std::uint64_t salt)
{
    const Addr paddr = place(ref.vaddr, base, span);
    if (ref.type == AccessType::Write) {
        const mem::Block data = patternBlock(paddr, salt);
        return engine->write(paddr, data.data());
    }
    return engine->read(paddr);
}

CampaignReport
runPerProtocol(
    const char *name, const CampaignConfig &cfg,
    const std::function<void(mee::Protocol, const CampaignConfig &,
                             ProtocolRow &)> &fill)
{
    CampaignReport report;
    report.name = name;
    report.config = cfg;
    const std::vector<mee::Protocol> protocols =
        cfg.only ? std::vector<mee::Protocol>{*cfg.only}
                 : core::allProtocols();
    report.rows.resize(protocols.size());
    // Campaigns tamper and crash on purpose; the resulting violation
    // warnings are expected output. Quiet is process-global, so it is
    // set once around the whole fan-out, not per phase (toggling it
    // inside concurrently running rows would race).
    setQuiet(true);
    // Rows are independent simulations writing disjoint slots:
    // bit-identical at any worker count (the sweep contract).
    sweep::parallelFor(
        protocols.size(),
        [&](std::size_t i) {
            report.rows[i].protocol = protocols[i];
            fill(protocols[i], cfg, report.rows[i]);
        },
        cfg.threads);
    setQuiet(false);
    return report;
}

} // namespace amnt::campaign
