#include "campaign/campaign.hh"

#include <cstdio>
#include <cstdlib>

#include "common/env.hh"
#include "common/log.hh"

namespace amnt::campaign
{

namespace
{

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

CampaignConfig
pinnedConfig()
{
    // The checked-in artifact geometry. Deliberately fixed here (not
    // read from the environment): the pin test and the CLI's default
    // regeneration path must agree byte-for-byte.
    return CampaignConfig{};
}

CampaignConfig
applyEnv(CampaignConfig cfg)
{
    cfg.seed = envU64("AMNT_CAMPAIGN_SEED", cfg.seed);
    cfg.ops = static_cast<unsigned>(envU64("AMNT_CAMPAIGN_OPS", cfg.ops));
    cfg.dataBytes =
        envU64("AMNT_CAMPAIGN_DATA_MB", cfg.dataBytes >> 20) << 20;
    cfg.tenants = static_cast<unsigned>(
        envU64("AMNT_CAMPAIGN_TENANTS", cfg.tenants));
    cfg.crashAfter = static_cast<unsigned>(
        envU64("AMNT_CAMPAIGN_CRASH_AFTER", cfg.crashAfter));
    return cfg;
}

Histogram
latencyHistogram()
{
    // Log bins over [1, 2^21) cycles: covers a metadata-cache hit
    // (~tens of cycles) through re-encryption bursts and recovery
    // contention (tens of thousands) with relative precision.
    return Histogram(1.0, 2097152.0, 96, Histogram::Scale::Log);
}

std::uint64_t
tenantKeySeed(const CampaignConfig &cfg, unsigned tenant)
{
    // Any injective, seed-dependent derivation works; tests rebuild
    // tenant suites from this to probe cross-tenant verification.
    return cfg.seed * 0x9e3779b97f4a7c15ull + 104729ull * (tenant + 1);
}

void
ProtocolRow::u64(const std::string &key, std::uint64_t v)
{
    metrics.emplace_back(key, std::to_string(v));
}

void
ProtocolRow::f64(const std::string &key, double v)
{
    metrics.emplace_back(key, formatDouble(v));
}

void
ProtocolRow::boolean(const std::string &key, bool v)
{
    metrics.emplace_back(key, v ? "true" : "false");
}

void
ProtocolRow::str(const std::string &key, const std::string &v)
{
    metrics.emplace_back(key, "\"" + v + "\"");
}

const std::string *
ProtocolRow::find(const std::string &key) const
{
    for (const auto &kv : metrics) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

double
ProtocolRow::num(const std::string &key) const
{
    const std::string *v = find(key);
    if (v == nullptr)
        fatal("campaign row for %s has no metric '%s'",
              mee::protocolName(protocol), key.c_str());
    if (*v == "true")
        return 1.0;
    if (*v == "false")
        return 0.0;
    char *end = nullptr;
    const double d = std::strtod(v->c_str(), &end);
    if (end == v->c_str())
        fatal("campaign metric '%s' is not numeric: %s", key.c_str(),
              v->c_str());
    return d;
}

const std::vector<double> *
ProtocolRow::sampleSet(const std::string &name) const
{
    for (const auto &kv : samples) {
        if (kv.first == name)
            return &kv.second;
    }
    return nullptr;
}

const ProtocolRow &
CampaignReport::row(mee::Protocol p) const
{
    for (const ProtocolRow &r : rows) {
        if (r.protocol == p)
            return r;
    }
    fatal("campaign '%s' has no row for protocol %s", name.c_str(),
          mee::protocolName(p));
}

std::string
CampaignReport::toJson() const
{
    // Canonical artifact bytes: fixed key order, %.9g doubles, one
    // row per line. Only simulated values enter — never wall-clock,
    // never the thread count — so the bytes are identical at any
    // AMNT_SWEEP_THREADS (pinned by tests/campaign/).
    std::string out = "{\n";
    out += "  \"campaign\": \"" + name + "\",\n";
    out += "  \"version\": " + std::to_string(version) + ",\n";
    out += "  \"geometry\": {\"seed\": " + std::to_string(config.seed);
    out += ", \"data_bytes\": " + std::to_string(config.dataBytes);
    out += ", \"meta_cache_bytes\": " +
           std::to_string(config.metaCacheBytes);
    out += ", \"ops\": " + std::to_string(config.ops);
    out += ", \"tenants\": " + std::to_string(config.tenants);
    out += ", \"write_fraction\": " + formatDouble(config.writeFraction);
    out += ", \"crash_after\": " + std::to_string(config.crashAfter);
    out += "},\n";
    out += "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ProtocolRow &r = rows[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"protocol\": \"";
        out += mee::protocolName(r.protocol);
        out += "\"";
        for (const auto &[key, value] : r.metrics)
            out += ", \"" + key + "\": " + value;
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

const std::vector<std::string> &
campaignNames()
{
    static const std::vector<std::string> names = {
        "adversarial", "multi_tenant", "online_recovery"};
    return names;
}

CampaignReport
runCampaign(const std::string &name, const CampaignConfig &cfg)
{
    if (name == "adversarial")
        return runAdversarial(cfg);
    if (name == "multi_tenant")
        return runMultiTenant(cfg);
    if (name == "online_recovery")
        return runOnlineRecovery(cfg);
    std::string all;
    for (const std::string &n : campaignNames())
        all += (all.empty() ? "" : ", ") + n;
    fatal("unknown campaign '%s' (one of: %s)", name.c_str(),
          all.c_str());
}

} // namespace amnt::campaign
