/**
 * @file
 * Internal plumbing shared by the campaign suites: an engine-level
 * driver (one NvmDevice + FaultDomain + MemoryEngine per protocol
 * row, in the style of fault/crash_schedule.cc's Harness) plus the
 * deterministic write-pattern and per-protocol seed helpers.
 */

#ifndef AMNT_CAMPAIGN_HARNESS_HH
#define AMNT_CAMPAIGN_HARNESS_HH

#include <functional>
#include <memory>

#include "campaign/campaign.hh"
#include "fault/fault.hh"
#include "mem/nvm_device.hh"
#include "sim/workload.hh"

namespace amnt::campaign
{

/** Base MeeConfig every campaign engine starts from. */
mee::MeeConfig baseMee(const CampaignConfig &cfg);

/** Per-protocol seed salt: row results are independent of which
 *  other protocols run (CampaignConfig::only must not change rows). */
std::uint64_t protoSalt(const CampaignConfig &cfg, mee::Protocol p);

/** Deterministic plaintext for a write to @p addr. */
mem::Block patternBlock(Addr addr, std::uint64_t salt);

/**
 * One protocol's simulator for a campaign row: the device, a fault
 * domain in Counting mode (so armAfter can crash mid-workload), and
 * the engine. rebuildFresh() models a cold service restart after an
 * unrecoverable crash (the volatile baseline's contract: data gone,
 * fresh device, fresh engine).
 */
struct Harness
{
    Harness(mee::Protocol p, const mee::MeeConfig &mee_cfg);

    /** Map a generator vaddr into [base, base+span), block-aligned. */
    static Addr place(Addr vaddr, Addr base, std::uint64_t span);

    /**
     * Issue one reference against the engine; returns the simulated
     * latency. Writes carry patternBlock(paddr, salt). May throw
     * fault::CrashInjected while the domain is armed.
     */
    Cycle access(const sim::MemRef &ref, Addr base, std::uint64_t span,
                 std::uint64_t salt);

    /** Tear down and rebuild device + engine from scratch. */
    void rebuildFresh();

    mee::Protocol protocol;
    mee::MeeConfig mee;
    fault::FaultDomain domain;
    std::unique_ptr<mem::NvmDevice> nvm;
    std::unique_ptr<mee::MemoryEngine> engine;
};

/**
 * Shared runner: one row per registry protocol (or cfg.only),
 * computed on independent simulators via sweep::parallelFor with
 * cfg.threads workers, assembled in registry order.
 */
CampaignReport runPerProtocol(
    const char *name, const CampaignConfig &cfg,
    const std::function<void(mee::Protocol, const CampaignConfig &,
                             ProtocolRow &)> &fill);

} // namespace amnt::campaign

#endif // AMNT_CAMPAIGN_HARNESS_HH
