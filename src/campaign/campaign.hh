/**
 * @file
 * Scenario campaigns: registry-parameterized measurement-and-
 * verification suites composed from the existing building blocks —
 * WorkloadKind generators (sim/workload.hh), FaultDomain crash
 * injection (fault/fault.hh), and the Histogram/StatRegistry
 * machinery (common/stats.hh, obs/registry.hh).
 *
 * Three campaigns, each run over every protocol in the registry
 * (core/protocol_registry.hh) with zero per-protocol exemptions:
 *
 *  - adversarial:      metadata-cache thrash, counter-overflow
 *                      forcing, tamper-while-running and tamper-at-
 *                      rest legs, and a crash at an adversarially
 *                      chosen persist boundary, judged against each
 *                      protocol's declared CrashProfile.
 *  - multi_tenant:     co-scheduled generators on one engine with
 *                      per-tenant key domains and address partitions
 *                      (MeeConfig::tenantKeySeeds); solo-baseline vs
 *                      co-run latency percentiles per tenant plus a
 *                      ciphertext-splice isolation probe.
 *  - online_recovery:  crash mid-workload, recover, then serve
 *                      traffic while the recovery traffic drains —
 *                      degraded-mode latency histograms per protocol.
 *
 * Determinism contract (locked by tests/campaign/): a campaign's
 * report depends only on its CampaignConfig. All randomness flows
 * through per-phase Rng/Workload instances seeded from
 * CampaignConfig::seed, rows are computed on independent simulators
 * fanned out with sweep::parallelFor and assembled in registry
 * order, and no wall-clock values enter the report — so toJson() is
 * byte-identical at any thread count, and the checked-in
 * results/campaign_<name>.json artifacts are pinned like the golden
 * figures.
 */

#ifndef AMNT_CAMPAIGN_CAMPAIGN_HH
#define AMNT_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "mee/engine.hh"

namespace amnt::campaign
{

/** One campaign's knobs; the whole report is a function of these. */
struct CampaignConfig
{
    std::uint64_t seed = 2026;

    /** Protected-data size; must split into tenant page-aligned
     *  slices (tenants * 4 KB divides dataBytes). */
    std::uint64_t dataBytes = 2ull << 20;

    /** Metadata-cache size; small so thrash phases actually thrash. */
    std::uint64_t metaCacheBytes = 4 * 1024;

    /** Per-phase operation budget. */
    unsigned ops = 2400;

    /** Co-scheduled tenants of the multi_tenant campaign. */
    unsigned tenants = 4;

    double writeFraction = 0.6;

    /** Boundaries between arming and the injected crash. */
    unsigned crashAfter = 37;

    /** sweep::parallelFor workers; 0 = AMNT_SWEEP_THREADS. */
    unsigned threads = 0;

    /** Restrict to one protocol (CLI debugging; pins use all). */
    std::optional<mee::Protocol> only;

    /** Keep raw latency samples per phase (conformance tests). */
    bool collectSamples = false;
};

/** The checked-in artifact geometry (results/campaign_*.json). */
CampaignConfig pinnedConfig();

/**
 * Apply AMNT_CAMPAIGN_{SEED,OPS,DATA_MB,TENANTS,CRASH_AFTER} over
 * @p cfg (strict envU64 parsing; unset keeps the field).
 */
CampaignConfig applyEnv(CampaignConfig cfg);

/** Canonical latency-histogram geometry every campaign phase uses. */
Histogram latencyHistogram();

/** Key seed of tenant @p tenant (tests rebuild tenant suites). */
std::uint64_t tenantKeySeed(const CampaignConfig &cfg, unsigned tenant);

/** One protocol's metrics, in emission (insertion) order. */
struct ProtocolRow
{
    mee::Protocol protocol{};

    /** key -> canonically formatted value (kind-tagged: see u64). */
    std::vector<std::pair<std::string, std::string>> metrics;

    /** Raw per-phase samples when CampaignConfig::collectSamples. */
    std::vector<std::pair<std::string, std::vector<double>>> samples;

    void u64(const std::string &key, std::uint64_t v);
    void f64(const std::string &key, double v); ///< %.9g
    void boolean(const std::string &key, bool v);
    void str(const std::string &key, const std::string &v);

    /** Formatted value, or nullptr when the key was never set. */
    const std::string *find(const std::string &key) const;

    /** Numeric value of @p key; fatal when missing or non-numeric. */
    double num(const std::string &key) const;

    /** Raw samples recorded under @p name (nullptr when absent). */
    const std::vector<double> *sampleSet(const std::string &name) const;
};

/** A full campaign result: one row per protocol, registry order. */
struct CampaignReport
{
    std::string name;
    unsigned version = 1;
    CampaignConfig config;
    std::vector<ProtocolRow> rows;

    /** Row for @p p; fatal when the protocol has no row. */
    const ProtocolRow &row(mee::Protocol p) const;

    /** Canonical artifact bytes (results/campaign_<name>.json). */
    std::string toJson() const;
};

CampaignReport runAdversarial(const CampaignConfig &cfg);
CampaignReport runMultiTenant(const CampaignConfig &cfg);
CampaignReport runOnlineRecovery(const CampaignConfig &cfg);

/** Registered campaign names, artifact order. */
const std::vector<std::string> &campaignNames();

/** Run the named campaign; fatal on an unknown name. */
CampaignReport runCampaign(const std::string &name,
                           const CampaignConfig &cfg);

} // namespace amnt::campaign

#endif // AMNT_CAMPAIGN_CAMPAIGN_HH
