/**
 * @file
 * Multi-tenant interference campaign: several tenants co-scheduled
 * on one secure-memory engine, each with its own key domain
 * (MeeConfig::tenantKeySeeds) and page-aligned address partition,
 * each driving a different WorkloadKind generator.
 *
 * Per protocol:
 *  1. solo baselines — each tenant alone on a fresh engine for
 *     cfg.ops references: its un-contended latency distribution.
 *  2. co-run — round-robin across all tenants on one shared engine
 *     (cfg.ops references each): per-tenant latency percentiles, the
 *     p99 slowdown vs solo, and the shared metadata-cache hit rate.
 *  3. isolation probe — splice tenant i's ciphertext into tenant
 *     i+1's partition (byte-wise XOR via NvmDevice::tamper) and read
 *     it back as the victim: the per-tenant data MAC must flag every
 *     attempt, because tenant A's key never verifies tenant B's
 *     lines.
 */

#include <array>

#include "campaign/harness.hh"
#include "common/log.hh"

namespace amnt::campaign
{

namespace
{

struct TenantKind
{
    sim::WorkloadKind kind;
    const char *name;
};

/** Tenant personalities, cycled when cfg.tenants > 5. */
constexpr std::array<TenantKind, 5> kKinds{{
    {sim::WorkloadKind::Zipfian, "zipfian"},
    {sim::WorkloadKind::Stream, "stream"},
    {sim::WorkloadKind::Gups, "gups"},
    {sim::WorkloadKind::KeyValue, "kvstore"},
    {sim::WorkloadKind::PointerChase, "chase"},
}};

sim::WorkloadConfig
tenantWorkload(const CampaignConfig &cfg, std::uint64_t slice_bytes,
               unsigned tenant, std::uint64_t salt)
{
    const TenantKind &tk = kKinds[tenant % kKinds.size()];
    sim::WorkloadConfig w;
    w.name = tk.name;
    w.kind = tk.kind;
    w.footprintPages = slice_bytes / kPageSize;
    w.writeFraction = cfg.writeFraction;
    w.zipfAlpha = 0.9;
    w.spatialRun = 0.3;
    w.kvValueBlocks = 4;
    w.seed = salt ^ (7919ull * (tenant + 1));
    return w;
}

void
fillMultiTenant(mee::Protocol p, const CampaignConfig &cfg,
                ProtocolRow &row)
{
    const unsigned T = cfg.tenants;
    const std::uint64_t slice = cfg.dataBytes / T;
    const std::uint64_t salt = protoSalt(cfg, p);

    mee::MeeConfig m = baseMee(cfg);
    for (unsigned i = 0; i < T; ++i)
        m.tenantKeySeeds.push_back(tenantKeySeed(cfg, i));

    // Phase 1: solo baselines (same keyed config, one tenant active).
    std::vector<HistogramSummary> solo(T);
    for (unsigned i = 0; i < T; ++i) {
        Harness h(p, m);
        sim::Workload gen(tenantWorkload(cfg, slice, i, salt));
        Histogram lat = latencyHistogram();
        for (unsigned op = 0; op < cfg.ops; ++op)
            lat.add(static_cast<double>(
                h.access(gen.next(), i * slice, slice, salt)));
        solo[i] = lat.snapshot();
    }

    // Phase 2: co-run on one shared engine.
    Harness h(p, m);
    std::vector<std::unique_ptr<sim::Workload>> gens;
    gens.reserve(T);
    std::vector<Histogram> lats;
    std::vector<std::vector<double>> raw(T);
    std::vector<Addr> firstWrite(T, ~0ull);
    for (unsigned i = 0; i < T; ++i) {
        gens.push_back(std::make_unique<sim::Workload>(
            tenantWorkload(cfg, slice, i, salt)));
        lats.push_back(latencyHistogram());
    }
    for (unsigned op = 0; op < cfg.ops; ++op) {
        for (unsigned i = 0; i < T; ++i) {
            const sim::MemRef ref = gens[i]->next();
            const Addr paddr = Harness::place(ref.vaddr, i * slice,
                                              slice);
            if (ref.type == AccessType::Write &&
                firstWrite[i] == ~0ull)
                firstWrite[i] = paddr;
            const Cycle c = h.access(ref, i * slice, slice, salt);
            lats[i].add(static_cast<double>(c));
            if (cfg.collectSamples)
                raw[i].push_back(static_cast<double>(c));
        }
    }

    for (unsigned i = 0; i < T; ++i) {
        const HistogramSummary co = lats[i].snapshot();
        const std::string t = "t" + std::to_string(i);
        row.str(t + "_kind", kKinds[i % kKinds.size()].name);
        row.u64(t + "_ops", co.count);
        row.f64(t + "_solo_p50", solo[i].p50);
        row.f64(t + "_solo_p99", solo[i].p99);
        row.f64(t + "_co_p50", co.p50);
        row.f64(t + "_co_p90", co.p90);
        row.f64(t + "_co_p99", co.p99);
        row.f64(t + "_p99_slowdown",
                solo[i].p99 > 0.0 ? co.p99 / solo[i].p99 : 0.0);
        if (cfg.collectSamples)
            row.samples.emplace_back(t + "_co", std::move(raw[i]));
    }
    row.f64("co_mcache_hit_rate", h.engine->metaCache().hitRate());

    // Phase 3: cross-tenant ciphertext splice. Copy the attacker's
    // persisted ciphertext over the victim's block (byte-wise XOR via
    // tamper) and read it back under the victim's identity.
    std::uint64_t attempts = 0;
    std::uint64_t detected = 0;
    for (unsigned i = 0; i < T; ++i) {
        const unsigned j = (i + 1) % T;
        const Addr src = firstWrite[i];
        const Addr dst = firstWrite[j];
        if (src == ~0ull || dst == ~0ull)
            continue;
        mem::Block a{};
        mem::Block b{};
        h.nvm->peek(src, a);
        h.nvm->peek(dst, b);
        bool changed = false;
        for (std::size_t k = 0; k < kBlockSize; ++k) {
            const std::uint8_t mask =
                static_cast<std::uint8_t>(a[k] ^ b[k]);
            if (mask != 0)
                changed |= h.nvm->tamper(dst, k, mask);
        }
        if (!changed)
            continue;
        ++attempts;
        const std::uint64_t before = h.engine->violations();
        h.engine->read(dst);
        if (h.engine->violations() > before)
            ++detected;
    }
    row.u64("splice_attempts", attempts);
    row.u64("splice_detected", detected);
    row.u64("isolation_false_accepts", attempts - detected);
}

} // namespace

CampaignReport
runMultiTenant(const CampaignConfig &cfg)
{
    // Validate before the fan-out: a bad geometry is a caller error,
    // not a per-row condition.
    if (cfg.tenants == 0 ||
        cfg.dataBytes % (cfg.tenants * kPageSize) != 0)
        fatal("multi_tenant needs page-aligned equal slices: "
              "%llu bytes / %u tenants",
              static_cast<unsigned long long>(cfg.dataBytes),
              cfg.tenants);
    return runPerProtocol("multi_tenant", cfg, fillMultiTenant);
}

} // namespace amnt::campaign
