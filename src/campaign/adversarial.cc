/**
 * @file
 * Adversarial campaign: each protocol faces the access patterns and
 * attacks its CrashProfile claims to survive.
 *
 * Phases (per protocol, one Harness unless noted):
 *  1. thrash    — uniform GUPS read-modify-write over the whole
 *                 footprint with no spatial runs: every access lands
 *                 in a different counter/HMAC neighborhood, defeating
 *                 the (deliberately small) metadata cache.
 *  2. overflow  — hammer one block until its 7-bit minor counter
 *                 wraps repeatedly, forcing page re-encryptions.
 *  3. live tamper — flip persisted data bytes and a persisted counter
 *                 block under a running engine; the read path must
 *                 flag every attempt (all protocols: the data-MAC and
 *                 persisted-metadata-MAC checks are engine machinery).
 *  4. crash     — arm the fault domain mid-workload and crash at an
 *                 adversarially deferred boundary; recovery outcome
 *                 is judged against CrashProfile::persistent.
 *  5. at rest   — fresh harness: crash, flip a persisted counter
 *                 byte while powered off, recover. Detection is
 *                 judged against CrashProfile::tamperAtRestDetects.
 */

#include <algorithm>

#include "campaign/harness.hh"
#include "common/log.hh"
#include "core/protocol_registry.hh"
#include "fault/fault.hh"

namespace amnt::campaign
{

namespace
{

sim::WorkloadConfig
thrashWorkload(const CampaignConfig &cfg, std::uint64_t salt)
{
    sim::WorkloadConfig w;
    w.name = "thrash";
    w.kind = sim::WorkloadKind::Gups;
    w.footprintPages = cfg.dataBytes / kPageSize;
    w.writeFraction = cfg.writeFraction;
    w.spatialRun = 0.0;
    w.seed = salt;
    return w;
}

void
fillAdversarial(mee::Protocol p, const CampaignConfig &cfg,
                ProtocolRow &row)
{
    const mee::CrashProfile profile = core::crashProfileOf(p);
    const std::uint64_t salt = protoSalt(cfg, p);
    Harness h(p, baseMee(cfg));
    Histogram lat = latencyHistogram();

    // Phase 1: metadata-cache thrash.
    {
        sim::Workload gen(thrashWorkload(cfg, salt));
        for (unsigned i = 0; i < cfg.ops; ++i)
            lat.add(static_cast<double>(
                h.access(gen.next(), 0, cfg.dataBytes, salt)));
        const HistogramSummary s = lat.snapshotAndReset();
        row.u64("thrash_ops", s.count);
        row.f64("thrash_p50", s.p50);
        row.f64("thrash_p99", s.p99);
        row.f64("thrash_mcache_hit_rate",
                h.engine->metaCache().hitRate());
    }

    // Phase 2: counter-overflow forcing. kMinorCounterMax + 1 writes
    // wrap one slot once; drive several wraps.
    {
        const std::uint64_t before =
            h.engine->stats().get("overflow_reencrypts");
        const unsigned writes = std::max(
            cfg.ops, 3u * (static_cast<unsigned>(kMinorCounterMax) + 1));
        const Addr hot = 0;
        for (unsigned i = 0; i < writes; ++i) {
            const mem::Block data = patternBlock(hot, salt + i);
            lat.add(static_cast<double>(
                h.engine->write(hot, data.data())));
        }
        const HistogramSummary s = lat.snapshotAndReset();
        row.u64("overflow_writes", writes);
        row.u64("overflow_reencrypts",
                h.engine->stats().get("overflow_reencrypts") - before);
        row.f64("overflow_p99", s.p99);
    }

    // Phase 3: tamper while running. Data-block flips are caught by
    // the per-block data MAC on the very next read; a persisted
    // counter-block flip is caught by the persisted-metadata MAC when
    // the line is refetched (the thrash stream below evicts it first).
    {
        const unsigned victims = 6;
        std::uint64_t attempts = 0;
        std::uint64_t detected = 0;
        for (unsigned v = 0; v < victims; ++v) {
            const Addr addr =
                ((salt / 3 + v * 97) % (cfg.dataBytes / kBlockSize)) *
                kBlockSize;
            const mem::Block data = patternBlock(addr, salt + v);
            h.engine->write(addr, data.data());
            const std::uint64_t before = h.engine->violations();
            if (!h.nvm->tamper(addr, (v * 7) % kBlockSize,
                               static_cast<std::uint8_t>(0x11 + v)))
                continue;
            ++attempts;
            h.engine->read(addr);
            if (h.engine->violations() > before)
                ++detected;
            // XOR the flip back out (tamper is involutive): protocols
            // like osiris trial-MAC persisted data during recovery,
            // so leaving the corruption in NVM would fail the phase-4
            // crash oracle for reasons unrelated to the crash.
            h.nvm->tamper(addr, (v * 7) % kBlockSize,
                          static_cast<std::uint8_t>(0x11 + v));
        }
        row.u64("live_tamper_attempts", attempts);
        row.u64("live_tamper_detected", detected);

        // Metadata (counter-block) tamper: pick a written page, evict
        // its counter line with a read sweep, flip a persisted byte,
        // then touch the page again to force the verified refetch.
        const Addr victim = 0; // phase 2 hammered page 0
        const Addr caddr = h.engine->map().counterAddrOf(victim);
        sim::Workload evictor(thrashWorkload(cfg, salt ^ 0xe41c));
        unsigned spins = 0;
        while (h.engine->metaCache().contains(caddr) &&
               spins < 8 * cfg.ops) {
            const sim::MemRef ref = evictor.next();
            if (ref.type == AccessType::Read) {
                h.access(ref, 0, cfg.dataBytes, salt);
                ++spins;
            }
        }
        bool meta_detected = false;
        if (!h.engine->metaCache().contains(caddr) &&
            h.nvm->tamper(caddr, 1, 0x20)) {
            const std::uint64_t before = h.engine->violations();
            h.engine->read(victim);
            meta_detected = h.engine->violations() > before;
            // XOR the flip back out: the live detection is what this
            // phase measures; leaving NVM corrupted would make the
            // phase-4 crash oracle fail for reasons the protocol is
            // not accountable for.
            h.nvm->tamper(caddr, 1, 0x20);
        }
        row.boolean("meta_tamper_detected", meta_detected);
    }

    // Phase 4: crash at an adversarially deferred boundary. The
    // tampered metadata block above was refetched (and on write-back
    // protocols re-persisted) already; the crash exercises recovery
    // from a mid-thrash persist boundary.
    {
        h.domain.armAfter(cfg.crashAfter);
        sim::Workload gen(thrashWorkload(cfg, salt ^ 0x9d2c));
        bool fired = false;
        std::uint64_t point = 0;
        for (unsigned i = 0; i < 64 * cfg.crashAfter + cfg.ops; ++i) {
            try {
                h.access(gen.next(), 0, cfg.dataBytes, salt);
            } catch (const fault::CrashInjected &c) {
                fired = true;
                point = c.point();
                break;
            }
        }
        h.domain.disarm();
        row.boolean("crash_fired", fired);
        row.u64("crash_point", point);
        bool recovered = false;
        double est_ms = 0.0;
        if (fired) {
            h.engine->crash();
            const mee::RecoveryReport rep = h.engine->recover();
            recovered = rep.success;
            est_ms = rep.estimatedMs;
        }
        row.boolean("crash_recovered", recovered);
        row.boolean("crash_expected_recover", profile.persistent);
        row.f64("crash_recovery_est_ms", est_ms);
    }

    // Phase 5: tamper at rest, on a fresh harness (phase 4 may have
    // left a non-persistent engine unrecovered).
    {
        Harness h2(p, baseMee(cfg));
        for (std::uint64_t i = 0; i < 64; ++i) {
            const Addr addr = i * kPageSize + (i % 8) * kBlockSize;
            const mem::Block data = patternBlock(addr, salt ^ i);
            h2.engine->write(addr, data.data());
        }
        h2.engine->crash();
        h2.nvm->tamper(h2.engine->map().counterBase() + 5 * kBlockSize,
                       1, 0x10);
        const mee::RecoveryReport rep = h2.engine->recover();
        row.boolean("at_rest_tamper_detected", !rep.success);
        row.boolean("at_rest_detect_expected",
                    profile.tamperAtRestDetects);
    }
}

} // namespace

CampaignReport
runAdversarial(const CampaignConfig &cfg)
{
    return runPerProtocol("adversarial", cfg, fillAdversarial);
}

} // namespace amnt::campaign
