/**
 * @file
 * Exhaustive crash-point scheduling with a differential recovery
 * oracle.
 *
 * A CrashSchedule drives one engine configuration through a fixed,
 * seeded workload three ways:
 *
 *  1. Count pass: replay once with the fault domain counting, which
 *     enumerates every persist-op boundary with a stable ID.
 *  2. Injection passes: re-execute the workload once per selected
 *     boundary k, crashing exactly there, then run recovery.
 *  3. Oracle: after each recovery the engine must satisfy the
 *     differential checks below, or the boundary is reported with
 *     enough detail to reproduce it (AMNT_FAULT_POINT=<id>).
 *
 * The oracle per boundary:
 *  - recovery must succeed (root/register verification passes);
 *  - every block the volatile shadow copy says was durably committed
 *    must decrypt bit-exactly, with zero integrity violations;
 *  - the recovered counter state must agree with a Volatile reference
 *    engine replaying only the committed writes (the cross-protocol
 *    agreement property of test_protocol_differential);
 *  - a post-recovery tamper of a committed block must still be
 *    detected;
 *  - the engine must accept new writes (liveness).
 *
 * Subset scheduling: boundary k is tested iff k ≡ offset (mod
 * stride), with offset derived deterministically from sampleSeed via
 * common/rng — the exhaustive matrix runs at small geometry while
 * larger geometries sample reproducibly. Environment knobs
 * (applyEnv): AMNT_FAULT_STRIDE, AMNT_FAULT_SEED, AMNT_FAULT_POINT.
 */

#ifndef AMNT_FAULT_CRASH_SCHEDULE_HH
#define AMNT_FAULT_CRASH_SCHEDULE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mee/engine.hh"

namespace amnt::fault
{

/** One crash-schedule run: protocol, geometry, workload, sampling. */
struct ScheduleConfig
{
    mee::Protocol protocol = mee::Protocol::Leaf;

    /** Drive a HybridEngine (AMNT over SCM + volatile DRAM). */
    bool hybrid = false;

    /**
     * Engine geometry. trackContents is forced on (the oracle needs
     * functional contents); for hybrid runs dataBytes sizes each
     * partition.
     */
    mee::MeeConfig mee;

    // Seeded workload (replayed identically for every boundary).
    std::uint64_t workloadSeed = 1;
    unsigned workloadOps = 96;
    std::uint64_t pages = 48;         ///< footprint in data pages
    std::uint64_t blocksPerPage = 8;  ///< distinct blocks per page
    double writeFraction = 0.7;

    // Deterministic subset scheduling.
    std::uint64_t stride = 1;      ///< test every stride-th boundary
    std::uint64_t sampleSeed = 0;  ///< offsets the strided subset
    std::optional<std::uint64_t> onlyPoint; ///< single-boundary repro
};

/** Oracle verdict for one injected boundary. */
struct BoundaryOutcome
{
    std::uint64_t point = 0;
    bool fired = false;          ///< the armed boundary was reached
    bool recovered = false;      ///< recover() reported success
    bool contentsOk = false;     ///< committed blocks bit-exact
    bool countersMatch = false;  ///< differential vs Volatile replay
    bool tamperDetected = false; ///< post-recovery tamper caught
    bool liveness = false;       ///< post-recovery write/read works

    /**
     * Slices rolled back to the committed epoch during recovery
     * (sharded schedules only; 0 on the per-engine matrix). Lets
     * coverage tests assert the boundary stream really contains
     * torn-epoch cases instead of only clean-commit crashes.
     */
    std::uint64_t tornSlices = 0;
    std::string detail;

    bool
    ok() const
    {
        return fired && recovered && contentsOk && countersMatch &&
               tamperDetected && liveness;
    }
};

/** Aggregate result of a schedule. */
struct ScheduleReport
{
    std::uint64_t totalBoundaries = 0;
    std::uint64_t tested = 0;
    std::vector<BoundaryOutcome> failures;

    bool allOk() const { return tested > 0 && failures.empty(); }

    /** Human-readable failure summary with repro instructions. */
    std::string describeFailures() const;
};

/**
 * Apply the fault-injection environment knobs onto @p cfg:
 * AMNT_FAULT_STRIDE (subset stride), AMNT_FAULT_SEED (subset offset
 * seed), AMNT_FAULT_POINT (test exactly one boundary).
 */
ScheduleConfig applyEnv(ScheduleConfig cfg);

/** Count boundaries, inject each selected one, run the oracle. */
ScheduleReport runCrashSchedule(const ScheduleConfig &cfg);

/**
 * Run the oracle for exactly one boundary (regression tests pin the
 * IDs the crash matrix flushed out).
 */
BoundaryOutcome runBoundary(const ScheduleConfig &cfg,
                            std::uint64_t point);

} // namespace amnt::fault

#endif // AMNT_FAULT_CRASH_SCHEDULE_HH
