#include "fault/crash_schedule.hh"

#include <cstdlib>
#include <unordered_map>

#include "common/env.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "core/amnt.hh"
#include "core/hybrid.hh"
#include "fault/fault.hh"

namespace amnt::fault
{

namespace
{

/** One replayable access of the seeded workload. */
struct Op
{
    bool isWrite = false;
    Addr addr = 0;
    std::uint64_t pattern = 0; ///< seed of the 64 B payload
    bool scm = true;           ///< false: hybrid DRAM partition
};

/** Expand a pattern seed into a 64 B payload. */
mem::Block
patternBlock(std::uint64_t seed)
{
    Rng rng(seed);
    mem::Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

/** The fixed workload: identical for the count pass and every replay. */
std::vector<Op>
makeWorkload(const ScheduleConfig &cfg)
{
    if (cfg.pages * kPageSize > cfg.mee.dataBytes)
        panic("crash-schedule footprint exceeds dataBytes");
    if (cfg.blocksPerPage == 0 || cfg.blocksPerPage > kBlocksPerPage)
        panic("crash-schedule blocksPerPage outside [1, %u]",
              static_cast<unsigned>(kBlocksPerPage));
    Rng rng(cfg.workloadSeed);
    std::vector<Op> ops(cfg.workloadOps);
    for (unsigned i = 0; i < cfg.workloadOps; ++i) {
        Op &op = ops[i];
        op.isWrite = rng.chance(cfg.writeFraction);
        op.addr = rng.below(cfg.pages) * kPageSize +
                  rng.below(cfg.blocksPerPage) * kBlockSize;
        op.pattern = rng.next();
        // Hybrid machines interleave DRAM traffic: every fourth access
        // targets the volatile partition. Those are excluded from the
        // oracle — DRAM contents are lost at a crash by definition.
        if (cfg.hybrid && i % 4 == 3) {
            op.scm = false;
            op.addr += cfg.mee.dataBytes;
        }
    }
    return ops;
}

/** Uniform driver over a flat engine or the hybrid controller. */
class Harness
{
  public:
    explicit Harness(const ScheduleConfig &cfg)
    {
        mee::MeeConfig m = cfg.mee;
        m.trackContents = true; // the oracle needs functional contents
        if (cfg.hybrid) {
            core::HybridConfig hc;
            hc.scmBytes = m.dataBytes;
            hc.dramBytes = m.dataBytes;
            hc.mee = m;
            hybrid_ = std::make_unique<core::HybridEngine>(hc);
        } else {
            nvm_ = std::make_unique<mem::NvmDevice>(
                mem::MemoryMap(m.dataBytes).deviceBytes());
            engine_ = core::makeEngine(cfg.protocol, m, *nvm_);
        }
    }

    void
    attach(FaultDomain *domain)
    {
        if (hybrid_ != nullptr)
            hybrid_->setFaultDomain(domain);
        else
            nvm_->setFaultDomain(domain);
    }

    Cycle
    write(Addr addr, const std::uint8_t *data)
    {
        return hybrid_ != nullptr ? hybrid_->write(addr, data)
                                  : engine_->write(addr, data);
    }

    Cycle
    read(Addr addr, std::uint8_t *out = nullptr)
    {
        return hybrid_ != nullptr ? hybrid_->read(addr, out)
                                  : engine_->read(addr, out);
    }

    void
    crash()
    {
        if (hybrid_ != nullptr)
            hybrid_->crash();
        else
            engine_->crash();
    }

    mee::RecoveryReport
    recover()
    {
        return hybrid_ != nullptr ? hybrid_->recover()
                                  : engine_->recover();
    }

    std::uint64_t
    violations() const
    {
        return hybrid_ != nullptr ? hybrid_->violations()
                                  : engine_->violations();
    }

    /** The persistent-side engine the oracle inspects. */
    mee::MemoryEngine &
    scmEngine()
    {
        return hybrid_ != nullptr
                   ? static_cast<mee::MemoryEngine &>(hybrid_->scm())
                   : *engine_;
    }

    /** The persistent-side device (tamper probes). */
    mem::NvmDevice &
    scmDevice()
    {
        return hybrid_ != nullptr ? hybrid_->scmDevice() : *nvm_;
    }

  private:
    std::unique_ptr<mem::NvmDevice> nvm_;
    std::unique_ptr<mee::MemoryEngine> engine_;
    std::unique_ptr<core::HybridEngine> hybrid_;
};

/**
 * Replay @p ops until the armed boundary fires (or the workload ends,
 * which is also how the counting pass runs to completion).
 * @param committed Receives every SCM data write whose commit group
 *        closed before the crash, in program order.
 * @return true when the armed crash point fired.
 */
bool
replay(Harness &h, const FaultDomain &domain,
       const std::vector<Op> &ops, std::vector<const Op *> &committed)
{
    for (const Op &op : ops) {
        const std::uint64_t closed_before = domain.commitsClosed();
        try {
            if (op.isWrite)
                h.write(op.addr, patternBlock(op.pattern).data());
            else
                h.read(op.addr);
        } catch (const CrashInjected &) {
            // The in-flight op committed iff its commit group closed
            // before the boundary fired — the crash then landed in
            // the op's deferred postCommit work (stop-loss persists,
            // path write-throughs, adaptation, movement).
            if (op.isWrite && op.scm &&
                domain.commitsClosed() > closed_before)
                committed.push_back(&op);
            return true;
        }
        if (op.isWrite && op.scm)
            committed.push_back(&op);
    }
    return false;
}

/** Inject a crash at @p point, recover, and run the full oracle. */
BoundaryOutcome
runOne(const ScheduleConfig &cfg, const std::vector<Op> &ops,
       std::uint64_t point)
{
    BoundaryOutcome out;
    out.point = point;

    Harness h(cfg);
    FaultDomain domain;
    h.attach(&domain);
    domain.arm(point);

    // Injection lifecycle on the engine's trace track: the armed
    // boundary id (a1=1 distinguishes it from the organic Crash
    // instant the engine emits when the boundary actually fires).
    h.scmEngine().tracer().instant(obs::EventClass::Crash, point, 1);

    std::vector<const Op *> committed;
    out.fired = replay(h, domain, ops, committed);
    if (!out.fired) {
        out.detail = "armed boundary never fired: replay diverged "
                     "from the count pass";
        return out;
    }

    // Crash and recover. The domain disarmed itself when it fired, so
    // recovery and the oracle's own persists run freely.
    h.crash();
    const mee::RecoveryReport rec = h.recover();
    out.recovered = rec.success;
    if (!out.recovered) {
        out.detail = "recovery failed (" + rec.detail + ")";
        return out;
    }

    // Contents oracle: the last committed payload of every durably
    // committed block must decrypt bit-exactly, with zero violations.
    std::unordered_map<Addr, std::uint64_t> last;
    for (const Op *op : committed)
        last[op->addr] = op->pattern;
    out.contentsOk = true;
    for (const Op *op : committed) {
        if (last.at(op->addr) != op->pattern)
            continue; // superseded by a later committed write
        const mem::Block expect = patternBlock(op->pattern);
        mem::Block got{};
        h.read(op->addr, got.data());
        if (got != expect) {
            out.contentsOk = false;
            out.detail = "committed block at address " +
                         std::to_string(op->addr) +
                         " lost or corrupted after recovery";
            break;
        }
    }
    if (out.contentsOk && h.violations() != 0) {
        out.contentsOk = false;
        out.detail = "integrity violations while reading committed "
                     "blocks back";
    }
    if (!out.contentsOk)
        return out;

    // Counter differential: a Volatile reference engine replaying only
    // the committed writes must agree with the recovered engine on
    // every counter block (both directions, so neither lost nor
    // phantom counters pass).
    mee::MeeConfig ref_cfg = cfg.mee;
    ref_cfg.trackContents = true;
    mem::NvmDevice ref_nvm(
        mem::MemoryMap(ref_cfg.dataBytes).deviceBytes());
    const auto ref =
        core::makeEngine(mee::Protocol::Volatile, ref_cfg, ref_nvm);
    for (const Op *op : committed)
        ref->write(op->addr, patternBlock(op->pattern).data());
    out.countersMatch = true;
    const bmt::TreeState &want = ref->treeState();
    const bmt::TreeState &have = h.scmEngine().treeState();
    want.forEachCounter(
        [&](std::uint64_t idx, const bmt::CounterBlock &cb) {
            if (have.counter(idx) != cb)
                out.countersMatch = false;
        });
    have.forEachCounter(
        [&](std::uint64_t idx, const bmt::CounterBlock &cb) {
            if (want.counter(idx) != cb)
                out.countersMatch = false;
        });
    if (!out.countersMatch) {
        out.detail = "recovered counters diverge from the committed-"
                     "write reference replay";
        return out;
    }

    // Liveness: the recovered engine must accept and serve new writes.
    const Addr live_addr = 0;
    const mem::Block live = patternBlock(0x11fe ^ point);
    h.write(live_addr, live.data());
    mem::Block live_back{};
    h.read(live_addr, live_back.data());
    out.liveness = live_back == live && h.violations() == 0;
    if (!out.liveness) {
        out.detail = "post-recovery write/read round trip failed";
        return out;
    }

    // Tamper probe: integrity detection must still be armed after
    // recovery. Target the most recent committed block (or the
    // liveness block when the crash preceded every write).
    const Addr probe =
        committed.empty() ? live_addr : committed.back()->addr;
    const std::uint64_t viol_before = h.violations();
    h.scmDevice().tamper(probe, 13, 0x40);
    h.read(probe);
    out.tamperDetected = h.violations() > viol_before;
    if (!out.tamperDetected)
        out.detail = "post-recovery tamper of a committed block went "
                     "undetected";
    return out;
}

} // namespace

std::string
ScheduleReport::describeFailures() const
{
    std::string s;
    for (const auto &f : failures) {
        s += "boundary " + std::to_string(f.point) + ": " + f.detail;
        s += " [fired=" + std::to_string(f.fired) +
             " recovered=" + std::to_string(f.recovered) +
             " contents=" + std::to_string(f.contentsOk) +
             " counters=" + std::to_string(f.countersMatch) +
             " tamper=" + std::to_string(f.tamperDetected) +
             " live=" + std::to_string(f.liveness) + "]";
        s += " (reproduce: AMNT_FAULT_POINT=" +
             std::to_string(f.point) + ")\n";
    }
    return s;
}

ScheduleConfig
applyEnv(ScheduleConfig cfg)
{
    cfg.stride = envU64("AMNT_FAULT_STRIDE", cfg.stride);
    if (cfg.stride == 0)
        cfg.stride = 1;
    cfg.sampleSeed = envU64("AMNT_FAULT_SEED", cfg.sampleSeed);
    if (std::getenv("AMNT_FAULT_POINT") != nullptr)
        cfg.onlyPoint = envU64("AMNT_FAULT_POINT", 0);
    return cfg;
}

ScheduleReport
runCrashSchedule(const ScheduleConfig &cfg)
{
    const std::vector<Op> ops = makeWorkload(cfg);
    ScheduleReport report;

    // Count pass: enumerate every persist-op boundary once.
    {
        Harness h(cfg);
        FaultDomain domain;
        h.attach(&domain);
        domain.startCounting();
        std::vector<const Op *> committed;
        replay(h, domain, ops, committed);
        report.totalBoundaries = domain.events();
    }

    const std::uint64_t stride = cfg.stride == 0 ? 1 : cfg.stride;
    std::uint64_t first = 0;
    if (cfg.sampleSeed != 0 && stride > 1)
        first = Rng(cfg.sampleSeed).below(stride);

    for (std::uint64_t k = cfg.onlyPoint ? *cfg.onlyPoint : first;
         k < report.totalBoundaries; k += stride) {
        BoundaryOutcome out = runOne(cfg, ops, k);
        ++report.tested;
        if (!out.ok())
            report.failures.push_back(std::move(out));
        if (cfg.onlyPoint)
            break;
    }
    if (cfg.onlyPoint && report.tested == 0) {
        BoundaryOutcome out;
        out.point = *cfg.onlyPoint;
        out.detail = "AMNT_FAULT_POINT beyond the boundary count (" +
                     std::to_string(report.totalBoundaries) + ")";
        report.failures.push_back(std::move(out));
    }
    return report;
}

BoundaryOutcome
runBoundary(const ScheduleConfig &cfg, std::uint64_t point)
{
    const std::vector<Op> ops = makeWorkload(cfg);
    return runOne(cfg, ops, point);
}

} // namespace amnt::fault
