#include "fault/shard_crash_schedule.hh"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/log.hh"
#include "common/rng.hh"
#include "core/amnt.hh"
#include "fault/fault.hh"
#include "shard/sharded_engine.hh"

namespace amnt::fault
{

namespace
{

/** One replayable access of the seeded workload. */
struct Op
{
    bool isWrite = false;
    Addr addr = 0;
    std::uint64_t pattern = 0; ///< seed of the 64 B payload
};

/** Expand a pattern seed into a 64 B payload. */
mem::Block
patternBlock(std::uint64_t seed)
{
    Rng rng(seed);
    mem::Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

/**
 * The fixed workload: the per-engine matrix generator minus the
 * hybrid interleave (the sharded engine is flat SCM), with the
 * footprint pages spread evenly across the WHOLE data range so every
 * slice sees traffic — a contiguous low footprint would leave all
 * but slice 0 idle and the torn cases untested. Identical for the
 * count pass and every injection replay.
 */
std::vector<Op>
makeWorkload(const ShardScheduleConfig &scfg)
{
    const ScheduleConfig &cfg = scfg.base;
    if (cfg.pages * kPageSize > cfg.mee.dataBytes)
        panic("shard-schedule footprint exceeds dataBytes");
    if (cfg.blocksPerPage == 0 || cfg.blocksPerPage > kBlocksPerPage)
        panic("shard-schedule blocksPerPage outside [1, %u]",
              static_cast<unsigned>(kBlocksPerPage));
    const std::uint64_t total_pages = cfg.mee.dataBytes / kPageSize;
    const std::uint64_t spread =
        std::max<std::uint64_t>(1, total_pages / cfg.pages);
    Rng rng(cfg.workloadSeed);
    std::vector<Op> ops(cfg.workloadOps);
    for (unsigned i = 0; i < cfg.workloadOps; ++i) {
        Op &op = ops[i];
        op.isWrite = rng.chance(cfg.writeFraction);
        op.addr = rng.below(cfg.pages) * spread * kPageSize +
                  rng.below(cfg.blocksPerPage) * kBlockSize;
        op.pattern = rng.next();
    }
    return ops;
}

shard::ShardOptions
shardOptions(const ShardScheduleConfig &cfg)
{
    shard::ShardOptions so;
    so.slices = cfg.slices;
    so.lanes = 1; // injection forces serial drains anyway
    so.epochWrites = cfg.epochWrites;
    so.cores = 1;
    return so;
}

/**
 * Replay @p ops (and the final flush) until the armed boundary
 * fires, recording each operation's epoch. An op belongs to the
 * epoch that was open when it was issued — queried BEFORE the call,
 * because the issuing write itself may close the epoch. Unexecuted
 * ops keep epoch ~0 so they can never read as committed.
 * @return true when the armed crash point fired.
 */
bool
replay(shard::ShardedEngine &eng, const std::vector<Op> &ops,
       std::vector<std::uint64_t> &epoch_of)
{
    epoch_of.assign(ops.size(), ~0ull);
    try {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            epoch_of[i] = eng.currentEpoch();
            if (ops[i].isWrite) {
                eng.write(ops[i].addr,
                          patternBlock(ops[i].pattern).data());
            } else {
                eng.read(ops[i].addr);
            }
        }
        eng.flush();
    } catch (const CrashInjected &) {
        return true;
    }
    return false;
}

/** Inject a crash at @p point, recover, and run the full oracle. */
BoundaryOutcome
runOne(const ShardScheduleConfig &cfg, const std::vector<Op> &ops,
       std::uint64_t point)
{
    BoundaryOutcome out;
    out.point = point;

    mee::MeeConfig m = cfg.base.mee;
    m.trackContents = true; // the oracle needs functional contents
    shard::ShardedEngine eng(cfg.base.protocol, m,
                             shardOptions(cfg));
    FaultDomain domain;
    eng.setFaultDomain(&domain);
    domain.arm(point);

    std::vector<std::uint64_t> epoch_of;
    out.fired = replay(eng, ops, epoch_of);
    if (!out.fired) {
        out.detail = "armed boundary never fired: replay diverged "
                     "from the count pass";
        return out;
    }

    eng.crash();
    const mee::RecoveryReport rec = eng.recover();
    out.tornSlices = eng.stats().get("torn_epochs_rolled_back");
    out.recovered = rec.success;
    if (!out.recovered) {
        out.detail = "recovery failed (" + rec.detail + ")";
        return out;
    }

    // Committed set: exactly the writes whose epoch's cross-shard
    // commit record persisted before the crash. A torn epoch's
    // writes — even on slices that finished draining — are NOT
    // committed; the oracle below fails if any survived rollback.
    const std::uint64_t ce = eng.committedEpoch();
    std::vector<std::size_t> committed;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].isWrite && epoch_of[i] <= ce)
            committed.push_back(i);
    }

    // Epoch coalescing means the engine applied only the LAST write
    // per (epoch, block); earlier writes in the same epoch never
    // reached the slice. The reference replays below must mirror
    // that, or their counters would over-count coalesced writes.
    std::map<std::pair<std::uint64_t, Addr>, std::size_t> last_in_epoch;
    for (std::size_t i : committed)
        last_in_epoch[{epoch_of[i], ops[i].addr}] = i;

    // Contents oracle: the last committed payload of every durably
    // committed block must decrypt bit-exactly, with zero violations.
    std::unordered_map<Addr, std::uint64_t> last;
    for (std::size_t i : committed)
        last[ops[i].addr] = ops[i].pattern;
    out.contentsOk = true;
    for (std::size_t i : committed) {
        const Op &op = ops[i];
        if (last.at(op.addr) != op.pattern)
            continue; // superseded by a later committed write
        const mem::Block expect = patternBlock(op.pattern);
        mem::Block got{};
        eng.read(op.addr, got.data());
        if (got != expect) {
            out.contentsOk = false;
            out.detail = "committed block at address " +
                         std::to_string(op.addr) +
                         " lost or corrupted after recovery";
            break;
        }
    }
    if (out.contentsOk && eng.violations() != 0) {
        out.contentsOk = false;
        out.detail = "integrity violations while reading committed "
                     "blocks back";
    }
    if (!out.contentsOk)
        return out;

    // Counter differential, per slice: a Volatile reference engine at
    // slice geometry replaying that slice's committed writes — after
    // epoch coalescing, i.e. the last write per (epoch, block) — must
    // agree with the recovered slice on every counter block (both
    // directions, so neither lost nor phantom counters pass).
    const shard::Partition &part = eng.partition();
    out.countersMatch = true;
    for (unsigned s = 0;
         s < eng.sliceCount() && out.countersMatch; ++s) {
        mee::MeeConfig ref_cfg = m;
        ref_cfg.dataBytes = part.sliceBytes;
        mem::NvmDevice ref_nvm(
            mem::MemoryMap(ref_cfg.dataBytes).deviceBytes());
        const auto ref = core::makeEngine(mee::Protocol::Volatile,
                                          ref_cfg, ref_nvm);
        for (std::size_t i : committed) {
            const Op &op = ops[i];
            if (part.shardFor(op.addr) != s)
                continue;
            if (last_in_epoch.at({epoch_of[i], op.addr}) != i)
                continue; // coalesced into a later same-epoch write
            ref->write(part.localAddr(op.addr),
                       patternBlock(op.pattern).data());
        }
        const bmt::TreeState &want = ref->treeState();
        const bmt::TreeState &have =
            eng.shard(s).engine().treeState();
        want.forEachCounter(
            [&](std::uint64_t idx, const bmt::CounterBlock &cb) {
                if (have.counter(idx) != cb)
                    out.countersMatch = false;
            });
        have.forEachCounter(
            [&](std::uint64_t idx, const bmt::CounterBlock &cb) {
                if (want.counter(idx) != cb)
                    out.countersMatch = false;
            });
    }
    if (!out.countersMatch) {
        out.detail = "recovered slice counters diverge from the "
                     "committed-write reference replay";
        return out;
    }

    // Liveness: the recovered sharded engine must accept and serve
    // new writes (the functional read drains them synchronously).
    const Addr live_addr = 0;
    const mem::Block live = patternBlock(0x5eedull ^ point);
    eng.write(live_addr, live.data());
    mem::Block live_back{};
    eng.read(live_addr, live_back.data());
    out.liveness = live_back == live && eng.violations() == 0;
    if (!out.liveness) {
        out.detail = "post-recovery write/read round trip failed";
        return out;
    }

    // Tamper probe: integrity detection must still be armed on the
    // probed slice after recovery. Target the most recent committed
    // block (or the liveness block when the crash preceded every
    // commit); the functional read forces the check.
    const Addr probe =
        committed.empty() ? live_addr : ops[committed.back()].addr;
    const std::uint64_t viol_before = eng.violations();
    eng.shard(part.shardFor(probe))
        .device()
        .tamper(part.localAddr(probe), 13, 0x40);
    mem::Block sink{};
    eng.read(probe, sink.data());
    out.tamperDetected = eng.violations() > viol_before;
    if (!out.tamperDetected)
        out.detail = "post-recovery tamper of a committed block went "
                     "undetected";
    return out;
}

} // namespace

ScheduleReport
runShardCrashSchedule(const ShardScheduleConfig &cfg)
{
    const std::vector<Op> ops = makeWorkload(cfg);
    ScheduleReport report;

    // Count pass: enumerate every boundary once — engine persist ops,
    // the per-slice drain fences, and each epoch's commit record.
    {
        mee::MeeConfig m = cfg.base.mee;
        m.trackContents = true;
        shard::ShardedEngine eng(cfg.base.protocol, m,
                                 shardOptions(cfg));
        FaultDomain domain;
        eng.setFaultDomain(&domain);
        domain.startCounting();
        std::vector<std::uint64_t> epoch_of;
        replay(eng, ops, epoch_of);
        report.totalBoundaries = domain.events();
    }

    const std::uint64_t stride =
        cfg.base.stride == 0 ? 1 : cfg.base.stride;
    std::uint64_t first = 0;
    if (cfg.base.sampleSeed != 0 && stride > 1)
        first = Rng(cfg.base.sampleSeed).below(stride);

    for (std::uint64_t k =
             cfg.base.onlyPoint ? *cfg.base.onlyPoint : first;
         k < report.totalBoundaries; k += stride) {
        BoundaryOutcome out = runOne(cfg, ops, k);
        ++report.tested;
        if (!out.ok())
            report.failures.push_back(std::move(out));
        if (cfg.base.onlyPoint)
            break;
    }
    if (cfg.base.onlyPoint && report.tested == 0) {
        BoundaryOutcome out;
        out.point = *cfg.base.onlyPoint;
        out.detail = "AMNT_FAULT_POINT beyond the boundary count (" +
                     std::to_string(report.totalBoundaries) + ")";
        report.failures.push_back(std::move(out));
    }
    return report;
}

BoundaryOutcome
runShardBoundary(const ShardScheduleConfig &cfg, std::uint64_t point)
{
    const std::vector<Op> ops = makeWorkload(cfg);
    return runOne(cfg, ops, point);
}

} // namespace amnt::fault
