/**
 * @file
 * Torn-epoch crash-point scheduling for the sharded engine.
 *
 * The per-engine crash matrix (fault/crash_schedule.hh) proves every
 * protocol recovers from a crash at any persist-op boundary of ONE
 * engine. The sharded engine adds boundaries of its own: the fence
 * after each slice's epoch drain and the cross-shard commit record's
 * persist. A crash between a slice's drain and the record leaves the
 * epoch TORN — some slices durably hold epoch N+1 state while the
 * record still names epoch N — and recovery must roll every slice
 * back to the last fully-committed epoch.
 *
 * This schedule reuses the per-engine matrix's machinery (seeded
 * workload, count pass, deterministic subset, BoundaryOutcome /
 * ScheduleReport) but drives a ShardedEngine with a small epoch so
 * the exhaustive sweep crosses many epoch closes. The oracle is the
 * same five stages, lifted to epoch granularity:
 *
 *  - recovery must succeed on every slice;
 *  - a write is committed iff its epoch's commit record persisted
 *    (epoch <= committedEpoch() after recovery); every committed
 *    block must decrypt bit-exactly with zero violations — and any
 *    torn slice must have rolled back cleanly for that to hold;
 *  - each slice's recovered counters must agree with a Volatile
 *    reference engine replaying that slice's committed writes;
 *  - a post-recovery tamper through a slice's device must still be
 *    detected;
 *  - the recovered sharded engine must accept new writes (liveness).
 *
 * Boundary IDs are deterministic because an attached fault domain
 * forces serial slice-order drains (lanes are irrelevant under
 * injection). AMNT_FAULT_STRIDE / AMNT_FAULT_SEED / AMNT_FAULT_POINT
 * apply exactly as in the per-engine matrix.
 */

#ifndef AMNT_FAULT_SHARD_CRASH_SCHEDULE_HH
#define AMNT_FAULT_SHARD_CRASH_SCHEDULE_HH

#include "fault/crash_schedule.hh"

namespace amnt::fault
{

/** One torn-epoch schedule: a per-engine config plus shard knobs. */
struct ShardScheduleConfig
{
    /**
     * Protocol, TOTAL geometry, workload and sampling. The hybrid
     * flag is ignored (the sharded engine is flat SCM).
     */
    ScheduleConfig base;

    /** Logical slice count (each slice gets dataBytes / slices). */
    unsigned slices = 2;

    /**
     * Buffered writes per epoch. Small on purpose: the boundary
     * stream must cross many epoch closes (drain fences + commit
     * records), not just engine persist ops.
     */
    std::uint64_t epochWrites = 8;
};

/** Count boundaries, inject each selected one, run the oracle. */
ScheduleReport runShardCrashSchedule(const ShardScheduleConfig &cfg);

/** Run the oracle for exactly one torn-epoch boundary. */
BoundaryOutcome runShardBoundary(const ShardScheduleConfig &cfg,
                                 std::uint64_t point);

} // namespace amnt::fault

#endif // AMNT_FAULT_SHARD_CRASH_SCHEDULE_HH
