#include "fault/fault.hh"

namespace amnt::fault
{

// Out of line: the hot inline paths stay branch-only; numbering and
// the (cold) throw live here.
void
FaultDomain::fire(bool at_commit_open)
{
    const std::uint64_t id = nextId_++;
    if (mode_ == Mode::Armed && id == point_) {
        // One-shot: recovery and post-crash oracle checks that follow
        // the injected crash must persist freely.
        mode_ = Mode::Disarmed;
        throw CrashInjected(id, at_commit_open);
    }
}

} // namespace amnt::fault
