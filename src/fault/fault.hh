/**
 * @file
 * Crash-point fault injection for the persistence domain.
 *
 * Every operation that would survive power loss — an NVM block write
 * or an update of a non-volatile on-chip register/cache — is a
 * *persist op*. A FaultDomain attached to the persistence domain
 * assigns each persist-op boundary a stable, monotonically numbered
 * crash-point ID: replaying a fixed workload enumerates the same IDs
 * in the same order every time, so a crash schedule can first count
 * the boundaries and then re-execute the workload once per boundary,
 * injecting a crash exactly there (see crash_schedule.hh).
 *
 * Commit groups. Engines mutate *architectural* (volatile, latest)
 * state before persisting it; the simulator's NV root register is
 * computed lazily from that architectural tree. A crash injected
 * between the architectural update and its persists would therefore
 * model a register that is "ahead" of NVM — a machine that cannot
 * exist. Persist sets that hardware makes atomic with their
 * architectural update (a write's ordered persist burst, an eviction's
 * shadow-erase + write-back, a subtree retarget's region + register
 * update) are instead bracketed in a CommitScope: the whole scope is
 * ONE crash point whose injection fires at scope *open*, before any
 * mutation, so a suppressed commit never happened at all. Persist ops
 * outside any scope (deferred counter persists, adaptation flushes,
 * eviction write-backs during reads) are each their own crash point,
 * firing before the NVM write applies.
 *
 * Hook placement rules for new persist paths are in DESIGN.md §10.
 */

#ifndef AMNT_FAULT_FAULT_HH
#define AMNT_FAULT_FAULT_HH

#include <cstdint>
#include <exception>

namespace amnt::fault
{

/** Thrown when execution reaches the armed crash point. */
class CrashInjected : public std::exception
{
  public:
    CrashInjected(std::uint64_t point, bool at_commit_open)
        : point_(point), atCommitOpen_(at_commit_open)
    {
    }

    const char *
    what() const noexcept override
    {
        return "injected crash at persist boundary";
    }

    /** Crash-point ID that fired (reproduce via AMNT_FAULT_POINT). */
    std::uint64_t point() const { return point_; }

    /** True when the crash fired at a commit-scope open. */
    bool atCommitOpen() const { return atCommitOpen_; }

  private:
    std::uint64_t point_;
    bool atCommitOpen_;
};

/**
 * Crash-point numbering and injection for one persistence domain.
 * Attach to the domain's NvmDevice (setFaultDomain); engines route
 * their non-device persist ops (NV register/cache updates) through
 * the same domain. Disarmed domains cost one predicted branch per
 * persist op and change no simulated state.
 */
class FaultDomain
{
  public:
    enum class Mode
    {
        Disarmed, ///< hooks inert (production / golden runs)
        Counting, ///< number the boundaries, never throw
        Armed,    ///< throw CrashInjected at boundary point()
    };

    Mode mode() const { return mode_; }

    /** Begin a counting pass: IDs restart from zero. */
    void
    startCounting()
    {
        mode_ = Mode::Counting;
        reset();
    }

    /** Arm a replay that crashes at boundary @p point. */
    void
    arm(std::uint64_t point)
    {
        mode_ = Mode::Armed;
        point_ = point;
        reset();
    }

    /**
     * Arm mid-run: fire at the boundary @p more boundaries ahead of
     * the current position, keeping the numbering (no reset). Campaign
     * suites use this to crash "somewhere ahead" inside a live
     * workload — switch a Counting (or fresh) domain to Armed without
     * a separate counting pass. The injected crash then still reports
     * the absolute crash-point ID, so AMNT_FAULT_POINT reproduction
     * works unchanged.
     */
    void
    armAfter(std::uint64_t more)
    {
        mode_ = Mode::Armed;
        point_ = nextId_ + more;
    }

    /** Disable injection (recovery and oracle checks run freely). */
    void disarm() { mode_ = Mode::Disarmed; }

    /** Boundaries numbered since the last startCounting()/arm(). */
    std::uint64_t events() const { return nextId_; }

    /** Top-level commit scopes closed since startCounting()/arm(). */
    std::uint64_t commitsClosed() const { return commitsClosed_; }

    /**
     * One bare persist op (an NVM block write or NV register update
     * outside any commit scope). Fires *before* the op applies, so a
     * suppressed persist leaves the old durable state intact.
     */
    void
    persistPoint()
    {
        if (mode_ == Mode::Disarmed || depth_ > 0)
            return;
        fire(false);
    }

    /**
     * Open a commit group. The group is a single crash point whose
     * injection fires here, before the caller mutates anything; every
     * persist op inside is part of the same atomic unit. May throw —
     * the scope depth is only taken after a successful fire, so an
     * injected crash leaves the domain balanced.
     */
    void
    beginCommit()
    {
        if (depth_ == 0 && mode_ != Mode::Disarmed)
            fire(true);
        ++depth_;
    }

    /** Close a commit group. */
    void
    endCommit()
    {
        if (--depth_ == 0)
            ++commitsClosed_;
    }

  private:
    void
    reset()
    {
        nextId_ = 0;
        depth_ = 0;
        commitsClosed_ = 0;
    }

    /** Number this boundary; throw if it is the armed point. */
    void fire(bool at_commit_open);

    Mode mode_ = Mode::Disarmed;
    std::uint64_t point_ = 0;
    std::uint64_t nextId_ = 0;
    std::uint64_t commitsClosed_ = 0;
    unsigned depth_ = 0;
};

/**
 * RAII commit group. Null domains (the common, un-instrumented case)
 * cost nothing; see FaultDomain::beginCommit for crash semantics.
 */
class CommitScope
{
  public:
    explicit CommitScope(FaultDomain *domain) : domain_(domain)
    {
        if (domain_ != nullptr)
            domain_->beginCommit();
    }

    ~CommitScope()
    {
        if (domain_ != nullptr)
            domain_->endCommit();
    }

    CommitScope(const CommitScope &) = delete;
    CommitScope &operator=(const CommitScope &) = delete;

  private:
    FaultDomain *domain_;
};

} // namespace amnt::fault

#endif // AMNT_FAULT_FAULT_HH
