#include "crypto/hmac_sha256.hh"

#include <cstring>

#include "common/bitops.hh"

namespace amnt::crypto
{

HmacSha256::HmacSha256(const void *key, std::size_t key_len)
{
    std::uint8_t k[64] = {};
    if (key_len > sizeof(k)) {
        const Sha256Digest d = Sha256::digest(key, key_len);
        std::memcpy(k, d.data(), d.size());
    } else {
        std::memcpy(k, key, key_len);
    }
    std::uint8_t pad[64];
    for (std::size_t i = 0; i < sizeof(k); ++i)
        pad[i] = k[i] ^ 0x36;
    inner_.update(pad, sizeof(pad));
    for (std::size_t i = 0; i < sizeof(k); ++i)
        pad[i] = k[i] ^ 0x5c;
    outer_.update(pad, sizeof(pad));
}

Sha256Digest
HmacSha256::mac(const void *data, std::size_t len) const
{
    Sha256 inner = inner_;
    inner.update(data, len);
    const Sha256Digest inner_digest = inner.final();

    Sha256 outer = outer_;
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.final();
}

std::uint64_t
HmacSha256::mac64(const void *data, std::size_t len) const
{
    const Sha256Digest d = mac(data, len);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = (v << 8) | d[static_cast<std::size_t>(i)];
    return v;
}

} // namespace amnt::crypto
