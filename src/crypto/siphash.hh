/**
 * @file
 * SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
 *
 * A fast keyed 64-bit PRF. The timing plane of the secure-memory
 * engine uses it for BMT node hashes, data HMACs, and one-time-pad
 * generation so that multi-million-access sweeps remain cheap while
 * still exercising real keyed-hash semantics (tamper detection works
 * identically). Validated against the reference test vectors.
 */

#ifndef AMNT_CRYPTO_SIPHASH_HH
#define AMNT_CRYPTO_SIPHASH_HH

#include <cstddef>
#include <cstdint>

#include "crypto/dispatch.hh"

namespace amnt::crypto
{

/**
 * Portable four-lane SipHash-2-4 batch kernel (the scalar kernel
 * behind dispatch::Sip4Fn): four sequential scalar runs over the
 * interleaved word matrix. A GPR interleave is deliberately absent —
 * 16 live state words spill on x86-64 and lose to this plain loop;
 * the batch win comes from the AVX2/AVX-512 kernels when dispatched.
 */
void sip4Scalar(std::uint64_t k0, std::uint64_t k1,
                const std::uint64_t *m, std::size_t nwords,
                std::uint64_t *out);

/** SipHash-2-4 keyed with a 128-bit key held as two 64-bit halves. */
class SipHash24
{
  public:
    SipHash24(std::uint64_t k0, std::uint64_t k1)
        : k0_(k0), k1_(k1), sip4_(dispatch::active().sip4)
    {
    }

    /** 64-bit MAC over an arbitrary byte string. */
    std::uint64_t mac(const void *data, std::size_t len) const;

    /** 64-bit MAC over a pair of words (fast path, no buffer). */
    std::uint64_t macWords(std::uint64_t a, std::uint64_t b) const;

    /**
     * Batch MAC of @p n equal-length messages: out[i] =
     * mac(data[i], len). A SipHash round is one serial dependency
     * chain, so groups of four independent messages run through the
     * dispatched four-lane kernel (captured at construction) to fill
     * the vector pipeline; bit-identical to n scalar calls.
     */
    void macManySameLen(const std::uint8_t *const *data, std::size_t len,
                        std::uint64_t *out, std::size_t n) const;

    /** Batch macWords: out[i] = macWords(a[i], b[i]), four-lane. */
    void macWordsMany(const std::uint64_t *a, const std::uint64_t *b,
                      std::uint64_t *out, std::size_t n) const;

  private:
    std::uint64_t k0_;
    std::uint64_t k1_;
    dispatch::Sip4Fn sip4_;
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_SIPHASH_HH
