/**
 * @file
 * SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
 *
 * A fast keyed 64-bit PRF. The timing plane of the secure-memory
 * engine uses it for BMT node hashes, data HMACs, and one-time-pad
 * generation so that multi-million-access sweeps remain cheap while
 * still exercising real keyed-hash semantics (tamper detection works
 * identically). Validated against the reference test vectors.
 */

#ifndef AMNT_CRYPTO_SIPHASH_HH
#define AMNT_CRYPTO_SIPHASH_HH

#include <cstddef>
#include <cstdint>

namespace amnt::crypto
{

/** SipHash-2-4 keyed with a 128-bit key held as two 64-bit halves. */
class SipHash24
{
  public:
    SipHash24(std::uint64_t k0, std::uint64_t k1) : k0_(k0), k1_(k1) {}

    /** 64-bit MAC over an arbitrary byte string. */
    std::uint64_t mac(const void *data, std::size_t len) const;

    /** 64-bit MAC over a pair of words (fast path, no buffer). */
    std::uint64_t macWords(std::uint64_t a, std::uint64_t b) const;

  private:
    std::uint64_t k0_;
    std::uint64_t k1_;
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_SIPHASH_HH
