/**
 * @file
 * Pluggable hash/encryption engines for the secure-memory hardware.
 *
 * The protocol logic in src/mee and src/core is agnostic to the
 * concrete primitives. Two planes are provided:
 *
 *  - Functional plane: HMAC-SHA-256 + AES-128-CTR; cryptographically
 *    real, used by unit/property tests and the examples.
 *  - Fast plane: SipHash-2-4 for both MACs and pad expansion; a real
 *    keyed PRF that keeps multi-million-access timing sweeps cheap.
 *
 * Both planes provide identical tamper-detection semantics: any change
 * to protected bytes changes the MAC with overwhelming probability.
 */

#ifndef AMNT_CRYPTO_ENGINES_HH
#define AMNT_CRYPTO_ENGINES_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "crypto/aes128.hh"
#include "crypto/hmac_sha256.hh"
#include "crypto/siphash.hh"

namespace amnt::crypto
{

/** One mac64 computation in a batch (see HashEngine::mac64xN). */
struct MacRequest
{
    const void *data;
    std::size_t len;
    std::uint64_t tweak;
};

/** One pad generation in a batch (see EncryptionEngine::padxN). */
struct PadRequest
{
    Addr blockAddr;
    std::uint64_t major;
    std::uint8_t minor;
};

/**
 * Keyed MAC producing 64-bit tags, with a caller-supplied tweak that
 * binds the MAC to an address/domain (preventing splicing).
 */
class HashEngine
{
  public:
    virtual ~HashEngine() = default;

    /** 64-bit MAC of @p len bytes at @p data, bound to @p tweak. */
    virtual std::uint64_t mac64(const void *data, std::size_t len,
                                std::uint64_t tweak) const = 0;

    /**
     * Batch MAC: out[i] = mac64(reqs[i]). Bit-identical to n scalar
     * calls by contract; overrides amortize per-call setup and
     * pipeline latency across the batch (interleaved SipHash lanes,
     * one virtual dispatch instead of n). The default is the scalar
     * reference loop.
     */
    virtual void
    mac64xN(const MacRequest *reqs, std::size_t n,
            std::uint64_t *out) const
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = mac64(reqs[i].data, reqs[i].len, reqs[i].tweak);
    }
};

/** Counter-mode one-time-pad generator. */
class EncryptionEngine
{
  public:
    virtual ~EncryptionEngine() = default;

    /**
     * Fill @p out with a 64-byte pad unique to
     * (block address, major counter, minor counter).
     */
    virtual void pad(Addr block_addr, std::uint64_t major,
                     std::uint8_t minor,
                     std::uint8_t out[kBlockSize]) const = 0;

    /**
     * Batch pad generation: pad i is written to out + i * kBlockSize.
     * Bit-identical to n scalar pad() calls by contract; overrides
     * feed all counter blocks of the batch through one dispatched
     * cipher call. The default is the scalar reference loop.
     */
    virtual void
    padxN(const PadRequest *reqs, std::size_t n, std::uint8_t *out) const
    {
        for (std::size_t i = 0; i < n; ++i)
            pad(reqs[i].blockAddr, reqs[i].major, reqs[i].minor,
                out + i * kBlockSize);
    }

    /** XOR @p in with the pad into @p out (encrypt == decrypt). */
    void xorPad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
                const std::uint8_t in[kBlockSize],
                std::uint8_t out[kBlockSize]) const;
};

/** Fast plane MAC: SipHash-2-4. */
class SipHashEngine : public HashEngine
{
  public:
    SipHashEngine(std::uint64_t k0, std::uint64_t k1) : sip_(k0, k1) {}

    std::uint64_t
    mac64(const void *data, std::size_t len,
          std::uint64_t tweak) const override
    {
        return sip_.mac(data, len) ^ sip_.macWords(tweak, 0x746a7773ULL);
    }

    /** Interleaved 4-lane SipHash over payloads and tweak binds. */
    void mac64xN(const MacRequest *reqs, std::size_t n,
                 std::uint64_t *out) const override;

  private:
    SipHash24 sip_;
};

/** Functional plane MAC: HMAC-SHA-256 truncated to 64 bits. */
class HmacShaEngine : public HashEngine
{
  public:
    HmacShaEngine(const void *key, std::size_t key_len)
        : hmac_(key, key_len)
    {
    }

    std::uint64_t mac64(const void *data, std::size_t len,
                        std::uint64_t tweak) const override;

    /**
     * Batch loop without per-item virtual dispatch; the heavy lifting
     * (hoisted ipad/opad midstates, SHA-NI compression) lives in the
     * shared scalar path.
     */
    void mac64xN(const MacRequest *reqs, std::size_t n,
                 std::uint64_t *out) const override;

  private:
    HmacSha256 hmac_;
};

/** Fast plane pad: SipHash-expanded keystream. */
class FastPadEngine : public EncryptionEngine
{
  public:
    FastPadEngine(std::uint64_t k0, std::uint64_t k1) : sip_(k0, k1) {}

    void pad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
             std::uint8_t out[kBlockSize]) const override;

    /** Interleaved seed derivation + keystream expansion. */
    void padxN(const PadRequest *reqs, std::size_t n,
               std::uint8_t *out) const override;

  private:
    SipHash24 sip_;
};

/** Functional plane pad: AES-128 in counter mode (4 blocks per pad). */
class AesCtrEngine : public EncryptionEngine
{
  public:
    explicit AesCtrEngine(const AesBlock &key) : aes_(key) {}

    void pad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
             std::uint8_t out[kBlockSize]) const override;

    /** All 4n counter blocks through one dispatched cipher call. */
    void padxN(const PadRequest *reqs, std::size_t n,
               std::uint8_t *out) const override;

  private:
    Aes128 aes_;
};

/** Which primitive family a secure-memory system instantiates. */
enum class CryptoPlane
{
    Functional, ///< AES-128-CTR + HMAC-SHA-256 (tests, examples)
    Fast,       ///< SipHash-2-4 everywhere (timing sweeps)
};

/** Bundle of engines owned by a secure-memory system. */
struct CryptoSuite
{
    std::unique_ptr<HashEngine> hash;
    std::unique_ptr<EncryptionEngine> enc;

    /** Build a suite for @p plane, deriving keys from @p seed. */
    static CryptoSuite make(CryptoPlane plane, std::uint64_t seed);
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_ENGINES_HH
