/**
 * @file
 * SHA-256 block compression with the SHA-NI instruction set.
 *
 * `_mm_sha256rnds2_epu32` executes two FIPS 180-4 rounds and the
 * msg1/msg2 instructions implement the message schedule recurrence,
 * so the kernel is bit-identical to the scalar compression in
 * sha256.cc. State is carried in the (ABEF, CDGH) register split the
 * instructions expect; the shuffle prologue/epilogue converts from
 * and to the canonical a..h word order.
 *
 * The schedule follows the standard rotation: W-block i (four W
 * words) is msg2(msg1(W[i-4], W[i-3]) + alignr(W[i-1], W[i-2], 4),
 * W[i-1]), kept in a 4-register ring.
 *
 * Built with -msha -msse4.1 -mssse3 on x86 (see src/CMakeLists.txt);
 * elsewhere the provider returns nullptr and dispatch stays scalar.
 */

#include "crypto/isa_kernels.hh"

#if defined(__SHA__) && defined(__SSE4_1__) && defined(__SSSE3__)

#include <immintrin.h>

namespace amnt::crypto::dispatch
{

namespace
{

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

void
shaniCompress(std::uint32_t state[8], const std::uint8_t *blocks,
              std::size_t nblocks)
{
    // Big-endian 32-bit loads within each 128-bit message lane.
    const __m128i kByteSwap =
        _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

    // Canonical {a,b,c,d} / {e,f,g,h} -> {ABEF} / {CDGH}.
    __m128i tmp =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(state));
    __m128i state1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(state + 4));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

    for (std::size_t blk = 0; blk < nblocks; ++blk) {
        const std::uint8_t *data = blocks + 64 * blk;
        const __m128i abef_save = state0;
        const __m128i cdgh_save = state1;
        __m128i w[4];

        // Rounds 0-15: message words straight from the block.
        for (int i = 0; i < 4; ++i) {
            w[i] = _mm_shuffle_epi8(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(data + 16 * i)),
                kByteSwap);
            __m128i m = _mm_add_epi32(
                w[i], _mm_load_si128(
                          reinterpret_cast<const __m128i *>(kK + 4 * i)));
            state1 = _mm_sha256rnds2_epu32(state1, state0, m);
            m = _mm_shuffle_epi32(m, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, m);
        }

        // Rounds 16-63: schedule through the 4-register ring.
        for (int i = 4; i < 16; ++i) {
            const __m128i w1 = w[(i - 3) & 3];
            const __m128i w2 = w[(i - 2) & 3];
            const __m128i w3 = w[(i - 1) & 3];
            __m128i wi = _mm_sha256msg1_epu32(w[i & 3], w1);
            wi = _mm_add_epi32(wi, _mm_alignr_epi8(w3, w2, 4));
            wi = _mm_sha256msg2_epu32(wi, w3);
            w[i & 3] = wi;
            __m128i m = _mm_add_epi32(
                wi, _mm_load_si128(
                        reinterpret_cast<const __m128i *>(kK + 4 * i)));
            state1 = _mm_sha256rnds2_epu32(state1, state0, m);
            m = _mm_shuffle_epi32(m, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, m);
        }

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
    }

    // {ABEF} / {CDGH} -> canonical word order.
    tmp = _mm_shuffle_epi32(state0, 0x1B);    // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state + 4), state1);
}

} // namespace

Sha256CompressFn
shaniCompressKernel()
{
    return &shaniCompress;
}

} // namespace amnt::crypto::dispatch

#else // !(__SHA__ && __SSE4_1__ && __SSSE3__)

namespace amnt::crypto::dispatch
{

Sha256CompressFn
shaniCompressKernel()
{
    return nullptr;
}

} // namespace amnt::crypto::dispatch

#endif
