/**
 * @file
 * Runtime ISA dispatch for the crypto kernels.
 *
 * The MEE engine funnels every simulated memory access through
 * HashEngine::mac64 and EncryptionEngine::pad, so the crypto kernels
 * are the floor under all benchmark harnesses. This module selects,
 * once at startup, the fastest available implementation of the two
 * dispatchable primitives:
 *
 *  - SHA-256 block compression: SHA-NI (`_mm_sha256rnds2_epu32`) when
 *    the CPU and build support it, scalar otherwise;
 *  - AES-128 block encryption: AES-NI (`_mm_aesenc_si128`) pipelined
 *    over multiple blocks, scalar otherwise;
 *  - four-lane SipHash-2-4 batch absorption: AVX-512VL (`vprolq`, the
 *    only x86 extension with a true 64-bit vector rotate) or AVX2
 *    (shift-shift-or rotates), scalar otherwise. A 4-wide SipHash
 *    state is 16 live 64-bit words — more than the x86-64 integer
 *    register file — so a GPR interleave spills and loses to plain
 *    scalar code; only the vector units make batching profitable.
 *
 * All paths compute bit-identical results — dispatch changes speed,
 * never output — which the known-answer tests in
 * tests/crypto/test_kat_dispatch.cc assert for every detected path.
 *
 * Selection policy: the AMNT_CRYPTO_ISA environment variable
 * ("native" default, "scalar", "aesni", "shani") filtered by CPUID
 * detection. The partial sets (aesni, shani) isolate their named
 * kernel for measurement and keep everything else scalar; the vector
 * SipHash kernel is only engaged by "native". Objects (Sha256,
 * Aes128, SipHash24) capture the active kernel pointers at
 * construction, so tests and benches may switch paths with select()
 * and construct fresh objects; the switch is not thread-safe and
 * exists for measurement/verification only.
 */

#ifndef AMNT_CRYPTO_DISPATCH_HH
#define AMNT_CRYPTO_DISPATCH_HH

#include <cstddef>
#include <cstdint>

namespace amnt::crypto::dispatch
{

/** Selectable kernel sets (feature combinations, not vendors). */
enum class Isa
{
    Scalar, ///< portable C++ kernels only
    AesNi,  ///< AES-NI encryption, scalar SHA-256
    ShaNi,  ///< SHA-NI compression, scalar AES
    Native, ///< everything the CPU supports (default)
};

/** Name used by AMNT_CRYPTO_ISA and in bench/test labels. */
const char *isaName(Isa isa);

/** CPU feature bits relevant to the kernels (cached CPUID). */
struct CpuCaps
{
    bool aesni = false;
    bool shani = false;
    bool ssse3 = false;
    bool sse41 = false;
    bool avx2 = false;     ///< includes the OS ymm-state check
    bool avx512vl = false; ///< AVX-512F+VL, includes the OS check
};

/** Detected capabilities of this CPU (and build). */
const CpuCaps &cpuCaps();

/**
 * SHA-256 compression over @p nblocks consecutive 64-byte blocks,
 * updating the 8-word state in place.
 */
using Sha256CompressFn = void (*)(std::uint32_t state[8],
                                  const std::uint8_t *blocks,
                                  std::size_t nblocks);

/**
 * AES-128 ECB encryption of @p nblocks 16-byte blocks with the
 * 11-round-key schedule @p rk (176 bytes, as laid out by Aes128).
 */
using AesEncryptFn = void (*)(const std::uint8_t *rk,
                              const std::uint8_t *in, std::uint8_t *out,
                              std::size_t nblocks);

/**
 * Four independent SipHash-2-4 messages advanced in lockstep. @p m is
 * an interleaved word matrix: word w of lane l at m[w * 4 + l], with
 * the final padded length word already included (the caller owns all
 * message parsing). Writes the four finalized 64-bit MACs to @p out,
 * bit-identical to four scalar SipHash24::mac calls.
 */
using Sip4Fn = void (*)(std::uint64_t k0, std::uint64_t k1,
                        const std::uint64_t *m, std::size_t nwords,
                        std::uint64_t *out);

/** The kernel table one Isa resolves to. */
struct Kernels
{
    Isa isa;
    Sha256CompressFn sha256Compress;
    AesEncryptFn aesEncrypt;
    Sip4Fn sip4;
};

/**
 * Active kernel table. First use resolves AMNT_CRYPTO_ISA against
 * cpuCaps(); unavailable or unknown requests fall back to the best
 * supported set with a warning.
 */
const Kernels &active();

/** True iff @p isa is runnable on this CPU with this build. */
bool available(Isa isa);

/**
 * Force the active kernel set (benchmarks and known-answer tests).
 * @return false (and no change) when @p isa is not available.
 */
bool select(Isa isa);

/**
 * Whether the batch APIs (mac64xN/padxN) use their wide kernels.
 * When false every batch call degrades to N scalar calls — the
 * reference behaviour the property tests compare against. Initialized
 * from AMNT_CRYPTO_BATCH (unset or nonzero = enabled).
 */
bool batchEnabled();

/** Test knob for batchEnabled(). */
void setBatchEnabled(bool enabled);

} // namespace amnt::crypto::dispatch

#endif // AMNT_CRYPTO_DISPATCH_HH
