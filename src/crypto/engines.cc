#include "crypto/engines.hh"

#include <cstring>

#include "common/bitops.hh"

namespace amnt::crypto
{

void
EncryptionEngine::xorPad(Addr block_addr, std::uint64_t major,
                         std::uint8_t minor,
                         const std::uint8_t in[kBlockSize],
                         std::uint8_t out[kBlockSize]) const
{
    std::uint8_t p[kBlockSize];
    pad(block_addr, major, minor, p);
    for (std::size_t i = 0; i < kBlockSize; ++i)
        out[i] = in[i] ^ p[i];
}

std::uint64_t
HmacShaEngine::mac64(const void *data, std::size_t len,
                     std::uint64_t tweak) const
{
    // Bind the tweak by MACing tweak || data.
    std::uint8_t buf[8 + kBlockSize * 2];
    if (len > sizeof(buf) - 8) {
        // Rare large payloads: two-stage MAC.
        std::uint8_t t[8];
        store64le(t, tweak);
        Sha256 h;
        h.update(t, 8);
        h.update(data, len);
        const Sha256Digest d = h.final();
        return hmac_.mac64(d.data(), d.size());
    }
    store64le(buf, tweak);
    std::memcpy(buf + 8, data, len);
    return hmac_.mac64(buf, 8 + len);
}

void
FastPadEngine::pad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
                   std::uint8_t out[kBlockSize]) const
{
    const std::uint64_t seed =
        sip_.macWords(block_addr, (major << 8) | minor);
    for (unsigned i = 0; i < kBlockSize / 8; ++i)
        store64le(out + 8 * i, sip_.macWords(seed, i));
}

void
AesCtrEngine::pad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
                  std::uint8_t out[kBlockSize]) const
{
    for (unsigned i = 0; i < kBlockSize / 16; ++i) {
        AesBlock ctr{};
        store64le(ctr.data(), block_addr);
        store64le(ctr.data() + 8, (major << 16) | (std::uint64_t(minor) << 8)
                                      | i);
        const AesBlock enc = aes_.encrypt(ctr);
        std::memcpy(out + 16 * i, enc.data(), 16);
    }
}

CryptoSuite
CryptoSuite::make(CryptoPlane plane, std::uint64_t seed)
{
    CryptoSuite suite;
    // Derive independent subkeys from the seed with SipHash under a
    // fixed derivation key.
    const SipHash24 kdf(0x414d4e542d4b4446ULL, seed);
    const std::uint64_t k0 = kdf.macWords(seed, 1);
    const std::uint64_t k1 = kdf.macWords(seed, 2);
    const std::uint64_t k2 = kdf.macWords(seed, 3);
    const std::uint64_t k3 = kdf.macWords(seed, 4);

    if (plane == CryptoPlane::Fast) {
        suite.hash = std::make_unique<SipHashEngine>(k0, k1);
        suite.enc = std::make_unique<FastPadEngine>(k2, k3);
    } else {
        std::uint8_t hkey[16];
        store64le(hkey, k0);
        store64le(hkey + 8, k1);
        suite.hash = std::make_unique<HmacShaEngine>(hkey, sizeof(hkey));
        AesBlock akey;
        store64le(akey.data(), k2);
        store64le(akey.data() + 8, k3);
        suite.enc = std::make_unique<AesCtrEngine>(akey);
    }
    return suite;
}

} // namespace amnt::crypto
