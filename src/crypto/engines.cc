#include "crypto/engines.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "crypto/dispatch.hh"

namespace amnt::crypto
{

namespace
{

/**
 * Stack-buffer chunk size for the batch overrides: large enough to
 * cover a whole page re-encryption burst (64 blocks) without heap
 * traffic, small enough to stay cache-resident.
 */
constexpr std::size_t kBatchChunk = 64;

} // namespace

void
EncryptionEngine::xorPad(Addr block_addr, std::uint64_t major,
                         std::uint8_t minor,
                         const std::uint8_t in[kBlockSize],
                         std::uint8_t out[kBlockSize]) const
{
    std::uint8_t p[kBlockSize];
    pad(block_addr, major, minor, p);
    for (std::size_t i = 0; i < kBlockSize; ++i)
        out[i] = in[i] ^ p[i];
}

std::uint64_t
HmacShaEngine::mac64(const void *data, std::size_t len,
                     std::uint64_t tweak) const
{
    // Bind the tweak by MACing tweak || data.
    std::uint8_t buf[8 + kBlockSize * 2];
    if (len > sizeof(buf) - 8) {
        // Rare large payloads: two-stage MAC.
        std::uint8_t t[8];
        store64le(t, tweak);
        Sha256 h;
        h.update(t, 8);
        h.update(data, len);
        const Sha256Digest d = h.final();
        return hmac_.mac64(d.data(), d.size());
    }
    store64le(buf, tweak);
    std::memcpy(buf + 8, data, len);
    return hmac_.mac64(buf, 8 + len);
}

void
SipHashEngine::mac64xN(const MacRequest *reqs, std::size_t n,
                       std::uint64_t *out) const
{
    if (!dispatch::batchEnabled()) {
        HashEngine::mac64xN(reqs, n, out);
        return;
    }
    while (n > 0) {
        const std::size_t chunk = std::min(n, kBatchChunk);

        // Payload MACs: interleave runs of equal-length requests
        // (bursts are uniformly kBlockSize in practice).
        const std::uint8_t *ptrs[kBatchChunk];
        std::size_t i = 0;
        while (i < chunk) {
            std::size_t j = i;
            while (j < chunk && reqs[j].len == reqs[i].len) {
                ptrs[j] = static_cast<const std::uint8_t *>(reqs[j].data);
                ++j;
            }
            sip_.macManySameLen(ptrs + i, reqs[i].len, out + i, j - i);
            i = j;
        }

        // Tweak binds, interleaved across the whole chunk.
        std::uint64_t ta[kBatchChunk], tb[kBatchChunk],
            tmac[kBatchChunk];
        for (std::size_t k = 0; k < chunk; ++k) {
            ta[k] = reqs[k].tweak;
            tb[k] = 0x746a7773ULL;
        }
        sip_.macWordsMany(ta, tb, tmac, chunk);
        for (std::size_t k = 0; k < chunk; ++k)
            out[k] ^= tmac[k];

        reqs += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
HmacShaEngine::mac64xN(const MacRequest *reqs, std::size_t n,
                       std::uint64_t *out) const
{
    // HMAC has no multi-message kernel (SHA-NI is single-stream);
    // the batch win is the hoisted key schedule plus one virtual
    // dispatch for the burst. Identical to the base reference loop
    // by construction, so no batchEnabled() split is needed.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = mac64(reqs[i].data, reqs[i].len, reqs[i].tweak);
}

void
FastPadEngine::pad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
                   std::uint8_t out[kBlockSize]) const
{
    const std::uint64_t seed =
        sip_.macWords(block_addr, (major << 8) | minor);
    for (unsigned i = 0; i < kBlockSize / 8; ++i)
        store64le(out + 8 * i, sip_.macWords(seed, i));
}

void
FastPadEngine::padxN(const PadRequest *reqs, std::size_t n,
                     std::uint8_t *out) const
{
    if (!dispatch::batchEnabled()) {
        EncryptionEngine::padxN(reqs, n, out);
        return;
    }
    constexpr std::size_t kWordsPerPad = kBlockSize / 8;
    while (n > 0) {
        const std::size_t chunk = std::min(n, kBatchChunk);

        // Seeds for the chunk, interleaved.
        std::uint64_t sa[kBatchChunk], sb[kBatchChunk],
            seed[kBatchChunk];
        for (std::size_t k = 0; k < chunk; ++k) {
            sa[k] = reqs[k].blockAddr;
            sb[k] = (reqs[k].major << 8) | reqs[k].minor;
        }
        sip_.macWordsMany(sa, sb, seed, chunk);

        // Keystream expansion: all chunk * 8 words in one batch.
        std::uint64_t ka[kBatchChunk * kWordsPerPad],
            kb[kBatchChunk * kWordsPerPad],
            ks[kBatchChunk * kWordsPerPad];
        for (std::size_t k = 0; k < chunk; ++k) {
            for (std::size_t w = 0; w < kWordsPerPad; ++w) {
                ka[k * kWordsPerPad + w] = seed[k];
                kb[k * kWordsPerPad + w] = w;
            }
        }
        sip_.macWordsMany(ka, kb, ks, chunk * kWordsPerPad);
        for (std::size_t w = 0; w < chunk * kWordsPerPad; ++w)
            store64le(out + 8 * w, ks[w]);

        reqs += chunk;
        out += chunk * kBlockSize;
        n -= chunk;
    }
}

void
AesCtrEngine::pad(Addr block_addr, std::uint64_t major, std::uint8_t minor,
                  std::uint8_t out[kBlockSize]) const
{
    std::uint8_t ctrs[kBlockSize];
    for (unsigned i = 0; i < kBlockSize / 16; ++i) {
        std::uint8_t *ctr = ctrs + 16 * i;
        store64le(ctr, block_addr);
        store64le(ctr + 8, (major << 16) | (std::uint64_t(minor) << 8) | i);
    }
    aes_.encryptBlocks(ctrs, out, kBlockSize / 16);
}

void
AesCtrEngine::padxN(const PadRequest *reqs, std::size_t n,
                    std::uint8_t *out) const
{
    if (!dispatch::batchEnabled()) {
        EncryptionEngine::padxN(reqs, n, out);
        return;
    }
    constexpr std::size_t kCtrsPerPad = kBlockSize / 16;
    while (n > 0) {
        const std::size_t chunk = std::min(n, kBatchChunk);

        std::uint8_t ctrs[kBatchChunk * kBlockSize];
        for (std::size_t k = 0; k < chunk; ++k) {
            for (std::size_t i = 0; i < kCtrsPerPad; ++i) {
                std::uint8_t *ctr = ctrs + k * kBlockSize + 16 * i;
                store64le(ctr, reqs[k].blockAddr);
                store64le(ctr + 8,
                          (reqs[k].major << 16)
                              | (std::uint64_t(reqs[k].minor) << 8) | i);
            }
        }
        // Pads are contiguous in out, so encrypt straight into it.
        aes_.encryptBlocks(ctrs, out, chunk * kCtrsPerPad);

        reqs += chunk;
        out += chunk * kBlockSize;
        n -= chunk;
    }
}

CryptoSuite
CryptoSuite::make(CryptoPlane plane, std::uint64_t seed)
{
    CryptoSuite suite;
    // Derive independent subkeys from the seed with SipHash under a
    // fixed derivation key.
    const SipHash24 kdf(0x414d4e542d4b4446ULL, seed);
    const std::uint64_t k0 = kdf.macWords(seed, 1);
    const std::uint64_t k1 = kdf.macWords(seed, 2);
    const std::uint64_t k2 = kdf.macWords(seed, 3);
    const std::uint64_t k3 = kdf.macWords(seed, 4);

    if (plane == CryptoPlane::Fast) {
        suite.hash = std::make_unique<SipHashEngine>(k0, k1);
        suite.enc = std::make_unique<FastPadEngine>(k2, k3);
    } else {
        std::uint8_t hkey[16];
        store64le(hkey, k0);
        store64le(hkey + 8, k1);
        suite.hash = std::make_unique<HmacShaEngine>(hkey, sizeof(hkey));
        AesBlock akey;
        store64le(akey.data(), k2);
        store64le(akey.data() + 8, k3);
        suite.enc = std::make_unique<AesCtrEngine>(akey);
    }
    return suite;
}

} // namespace amnt::crypto
