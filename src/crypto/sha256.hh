/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used by the functional secure-memory plane for HMAC computation and
 * Bonsai Merkle Tree node hashing. Validated against the NIST example
 * vectors in tests/crypto/test_sha256.cc.
 */

#ifndef AMNT_CRYPTO_SHA256_HH
#define AMNT_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/dispatch.hh"

namespace amnt::crypto
{

/** A 32-byte SHA-256 digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/**
 * Portable SHA-256 compression over @p nblocks consecutive 64-byte
 * blocks (the scalar kernel behind dispatch::Sha256CompressFn).
 */
void sha256CompressScalar(std::uint32_t state[8],
                          const std::uint8_t *blocks,
                          std::size_t nblocks);

/**
 * Incremental SHA-256 context. Typical use:
 * @code
 *   Sha256 h;
 *   h.update(data, len);
 *   Sha256Digest d = h.final();
 * @endcode
 */
class Sha256
{
  public:
    /** Captures the active dispatch kernel for its lifetime. */
    Sha256() : compress_(dispatch::active().sha256Compress) { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Finish and produce the digest; context must then be reset(). */
    Sha256Digest final();

    /** One-shot convenience. */
    static Sha256Digest digest(const void *data, std::size_t len);

  private:
    dispatch::Sha256CompressFn compress_;
    std::uint32_t state_[8];
    std::uint64_t totalBytes_;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_SHA256_HH
