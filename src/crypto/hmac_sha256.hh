/**
 * @file
 * HMAC-SHA-256 (RFC 2104 / FIPS 198-1), implemented from scratch.
 *
 * The secure-memory engine stores 8-byte truncations of these MACs as
 * the per-block data HMACs and as BMT node entries in the functional
 * plane. Validated against RFC 4231 vectors.
 */

#ifndef AMNT_CRYPTO_HMAC_SHA256_HH
#define AMNT_CRYPTO_HMAC_SHA256_HH

#include <cstddef>
#include <cstdint>

#include "crypto/sha256.hh"

namespace amnt::crypto
{

/**
 * Keyed HMAC-SHA-256 instance. The key schedule is hoisted into the
 * constructor: the SHA-256 midstates after absorbing the ipad and
 * opad blocks are computed once, so each mac() clones a midstate
 * instead of re-compressing 64 bytes of key material per pass. For
 * the engine's 72-byte messages that removes two of five compression
 * calls from every MAC.
 */
class HmacSha256
{
  public:
    /** Construct with an arbitrary-length key. */
    HmacSha256(const void *key, std::size_t key_len);

    /** Full 32-byte MAC over @p len bytes of @p data. */
    Sha256Digest mac(const void *data, std::size_t len) const;

    /** 64-bit truncation of the MAC (big-endian leading bytes). */
    std::uint64_t mac64(const void *data, std::size_t len) const;

  private:
    /** Midstates after one compression of ipad / opad respectively. */
    Sha256 inner_;
    Sha256 outer_;
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_HMAC_SHA256_HH
