/**
 * @file
 * HMAC-SHA-256 (RFC 2104 / FIPS 198-1), implemented from scratch.
 *
 * The secure-memory engine stores 8-byte truncations of these MACs as
 * the per-block data HMACs and as BMT node entries in the functional
 * plane. Validated against RFC 4231 vectors.
 */

#ifndef AMNT_CRYPTO_HMAC_SHA256_HH
#define AMNT_CRYPTO_HMAC_SHA256_HH

#include <cstddef>
#include <cstdint>

#include "crypto/sha256.hh"

namespace amnt::crypto
{

/**
 * Keyed HMAC-SHA-256 instance. The key is absorbed once at
 * construction; each mac() call is then a two-pass SHA-256.
 */
class HmacSha256
{
  public:
    /** Construct with an arbitrary-length key. */
    HmacSha256(const void *key, std::size_t key_len);

    /** Full 32-byte MAC over @p len bytes of @p data. */
    Sha256Digest mac(const void *data, std::size_t len) const;

    /** 64-bit truncation of the MAC (big-endian leading bytes). */
    std::uint64_t mac64(const void *data, std::size_t len) const;

  private:
    std::uint8_t ipad_[64];
    std::uint8_t opad_[64];
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_HMAC_SHA256_HH
