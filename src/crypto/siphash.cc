#include "crypto/siphash.hh"

#include "common/bitops.hh"

namespace amnt::crypto
{

namespace
{

struct SipState
{
    std::uint64_t v0, v1, v2, v3;

    explicit SipState(std::uint64_t k0, std::uint64_t k1)
        : v0(0x736f6d6570736575ULL ^ k0),
          v1(0x646f72616e646f6dULL ^ k1),
          v2(0x6c7967656e657261ULL ^ k0),
          v3(0x7465646279746573ULL ^ k1)
    {
    }

    void
    round()
    {
        v0 += v1;
        v1 = rotl64(v1, 13);
        v1 ^= v0;
        v0 = rotl64(v0, 32);
        v2 += v3;
        v3 = rotl64(v3, 16);
        v3 ^= v2;
        v0 += v3;
        v3 = rotl64(v3, 21);
        v3 ^= v0;
        v2 += v1;
        v1 = rotl64(v1, 17);
        v1 ^= v2;
        v2 = rotl64(v2, 32);
    }

    std::uint64_t
    finalize()
    {
        v2 ^= 0xff;
        round();
        round();
        round();
        round();
        return v0 ^ v1 ^ v2 ^ v3;
    }
};

/**
 * Longest message (in 8-byte words, including the final length word)
 * the batch paths stage on the stack. Covers the engines' 64-byte
 * blocks with room to spare; longer messages fall back to scalar.
 */
constexpr std::size_t kMaxBatchWords = 17;

} // namespace

void
sip4Scalar(std::uint64_t k0, std::uint64_t k1, const std::uint64_t *m,
           std::size_t nwords, std::uint64_t *out)
{
    for (int l = 0; l < 4; ++l) {
        SipState s(k0, k1);
        for (std::size_t w = 0; w < nwords; ++w) {
            const std::uint64_t word = m[w * 4 + l];
            s.v3 ^= word;
            s.round();
            s.round();
            s.v0 ^= word;
        }
        out[l] = s.finalize();
    }
}

std::uint64_t
SipHash24::mac(const void *data, std::size_t len) const
{
    SipState s(k0_, k1_);
    const auto *p = static_cast<const std::uint8_t *>(data);
    const std::size_t full_words = len / 8;
    for (std::size_t i = 0; i < full_words; ++i) {
        const std::uint64_t m = load64le(p + 8 * i);
        s.v3 ^= m;
        s.round();
        s.round();
        s.v0 ^= m;
    }
    std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
    const std::size_t tail = len & 7;
    const std::uint8_t *tp = p + 8 * full_words;
    for (std::size_t i = 0; i < tail; ++i)
        last |= static_cast<std::uint64_t>(tp[i]) << (8 * i);
    s.v3 ^= last;
    s.round();
    s.round();
    s.v0 ^= last;
    return s.finalize();
}

std::uint64_t
SipHash24::macWords(std::uint64_t a, std::uint64_t b) const
{
    SipState s(k0_, k1_);
    for (std::uint64_t m : {a, b}) {
        s.v3 ^= m;
        s.round();
        s.round();
        s.v0 ^= m;
    }
    // Length word for a 16-byte message.
    const std::uint64_t last = 16ULL << 56;
    s.v3 ^= last;
    s.round();
    s.round();
    s.v0 ^= last;
    return s.finalize();
}

void
SipHash24::macManySameLen(const std::uint8_t *const *data,
                          std::size_t len, std::uint64_t *out,
                          std::size_t n) const
{
    const std::size_t full_words = len / 8;
    const std::size_t tail = len & 7;
    const std::size_t nwords = full_words + 1;
    if (nwords > kMaxBatchWords) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = mac(data[i], len);
        return;
    }

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint64_t m[kMaxBatchWords * 4];
        for (std::size_t w = 0; w < full_words; ++w)
            for (std::size_t l = 0; l < 4; ++l)
                m[w * 4 + l] = load64le(data[i + l] + 8 * w);
        for (std::size_t l = 0; l < 4; ++l) {
            std::uint64_t last =
                static_cast<std::uint64_t>(len & 0xff) << 56;
            const std::uint8_t *tp = data[i + l] + 8 * full_words;
            for (std::size_t t = 0; t < tail; ++t)
                last |= static_cast<std::uint64_t>(tp[t]) << (8 * t);
            m[full_words * 4 + l] = last;
        }
        sip4_(k0_, k1_, m, nwords, out + i);
    }
    for (; i < n; ++i)
        out[i] = mac(data[i], len);
}

void
SipHash24::macWordsMany(const std::uint64_t *a, const std::uint64_t *b,
                        std::uint64_t *out, std::size_t n) const
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint64_t m[3 * 4];
        for (std::size_t l = 0; l < 4; ++l) {
            m[0 * 4 + l] = a[i + l];
            m[1 * 4 + l] = b[i + l];
            // Length word for a 16-byte message.
            m[2 * 4 + l] = 16ULL << 56;
        }
        sip4_(k0_, k1_, m, 3, out + i);
    }
    for (; i < n; ++i)
        out[i] = macWords(a[i], b[i]);
}

} // namespace amnt::crypto
