/**
 * @file
 * Internal providers for the ISA-specific kernel entry points.
 *
 * Each provider returns the kernel function pointer when the
 * translation unit was built with the matching ISA flags (CMake adds
 * them per-file on x86 builds) and nullptr otherwise, so dispatch.cc
 * links unconditionally on every platform. Callers must still gate on
 * runtime CPUID via dispatch::cpuCaps().
 */

#ifndef AMNT_CRYPTO_ISA_KERNELS_HH
#define AMNT_CRYPTO_ISA_KERNELS_HH

#include "crypto/dispatch.hh"

namespace amnt::crypto::dispatch
{

/** AES-NI block encryption, or nullptr when not compiled in. */
AesEncryptFn aesniEncryptKernel();

/** SHA-NI block compression, or nullptr when not compiled in. */
Sha256CompressFn shaniCompressKernel();

/** AVX2 four-lane SipHash batch, or nullptr when not compiled in. */
Sip4Fn sipAvx2Kernel();

/** AVX-512VL four-lane SipHash batch (vprolq rotates), or nullptr. */
Sip4Fn sipAvx512Kernel();

} // namespace amnt::crypto::dispatch

#endif // AMNT_CRYPTO_ISA_KERNELS_HH
