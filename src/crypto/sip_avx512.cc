/**
 * @file
 * Four-lane SipHash-2-4 batch kernel on AVX-512VL.
 *
 * Identical structure to the AVX2 kernel (four messages per 256-bit
 * register), but AVX-512 contributes `vprolq` — the only true 64-bit
 * vector rotate on x86 — collapsing every shift+shift+or rotate
 * sequence into one instruction. VL is required because the kernel
 * stays at 256 bits: four lanes match the batch shape the engines
 * produce, and 256-bit ops avoid the zmm frequency penalty on older
 * server parts. Bit-identical to four scalar SipHash24::mac calls.
 *
 * Built with -mavx512f -mavx512vl on x86 (see src/CMakeLists.txt); on
 * other targets the provider returns nullptr.
 */

#include "crypto/isa_kernels.hh"

#if defined(__AVX512F__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace amnt::crypto::dispatch
{

namespace
{

struct Sip4
{
    __m256i v0, v1, v2, v3;

    Sip4(std::uint64_t k0, std::uint64_t k1)
        : v0(_mm256_set1_epi64x(
              static_cast<long long>(0x736f6d6570736575ULL ^ k0))),
          v1(_mm256_set1_epi64x(
              static_cast<long long>(0x646f72616e646f6dULL ^ k1))),
          v2(_mm256_set1_epi64x(
              static_cast<long long>(0x6c7967656e657261ULL ^ k0))),
          v3(_mm256_set1_epi64x(
              static_cast<long long>(0x7465646279746573ULL ^ k1)))
    {
    }

    void
    round()
    {
        v0 = _mm256_add_epi64(v0, v1);
        v1 = _mm256_xor_si256(_mm256_rol_epi64(v1, 13), v0);
        v0 = _mm256_rol_epi64(v0, 32);
        v2 = _mm256_add_epi64(v2, v3);
        v3 = _mm256_xor_si256(_mm256_rol_epi64(v3, 16), v2);
        v0 = _mm256_add_epi64(v0, v3);
        v3 = _mm256_xor_si256(_mm256_rol_epi64(v3, 21), v0);
        v2 = _mm256_add_epi64(v2, v1);
        v1 = _mm256_xor_si256(_mm256_rol_epi64(v1, 17), v2);
        v2 = _mm256_rol_epi64(v2, 32);
    }
};

void
sipAvx512(std::uint64_t k0, std::uint64_t k1, const std::uint64_t *m,
          std::size_t nwords, std::uint64_t *out)
{
    Sip4 s(k0, k1);
    for (std::size_t w = 0; w < nwords; ++w) {
        const __m256i mm = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(m + 4 * w));
        s.v3 = _mm256_xor_si256(s.v3, mm);
        s.round();
        s.round();
        s.v0 = _mm256_xor_si256(s.v0, mm);
    }
    s.v2 = _mm256_xor_si256(s.v2, _mm256_set1_epi64x(0xff));
    s.round();
    s.round();
    s.round();
    s.round();
    const __m256i r =
        _mm256_xor_si256(_mm256_xor_si256(s.v0, s.v1),
                         _mm256_xor_si256(s.v2, s.v3));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), r);
}

} // namespace

Sip4Fn
sipAvx512Kernel()
{
    return &sipAvx512;
}

} // namespace amnt::crypto::dispatch

#else // !(__AVX512F__ && __AVX512VL__)

namespace amnt::crypto::dispatch
{

Sip4Fn
sipAvx512Kernel()
{
    return nullptr;
}

} // namespace amnt::crypto::dispatch

#endif
