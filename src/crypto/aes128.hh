/**
 * @file
 * AES-128 block cipher (FIPS 197), implemented from scratch.
 *
 * Counter-mode encryption in the functional secure-memory plane
 * generates one-time pads with this cipher. Validated against the
 * FIPS-197 Appendix and SP 800-38A vectors.
 */

#ifndef AMNT_CRYPTO_AES128_HH
#define AMNT_CRYPTO_AES128_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/dispatch.hh"

namespace amnt::crypto
{

/** A 16-byte AES block or key. */
using AesBlock = std::array<std::uint8_t, 16>;

/**
 * Portable AES-128 ECB encryption of @p nblocks 16-byte blocks with
 * the expanded schedule @p rk (the scalar kernel behind
 * dispatch::AesEncryptFn).
 */
void aes128EncryptScalar(const std::uint8_t *rk, const std::uint8_t *in,
                         std::uint8_t *out, std::size_t nblocks);

/**
 * AES-128 with a fixed key schedule computed at construction.
 * Only the forward (encrypt) direction is needed: counter mode uses
 * the cipher purely as a pseudo-random function.
 */
class Aes128
{
  public:
    /**
     * Expand the 16-byte key into the round-key schedule and capture
     * the active dispatch kernel (AES-NI or scalar).
     */
    explicit Aes128(const AesBlock &key);

    /** Encrypt one 16-byte block in place semantics: out = E_k(in). */
    AesBlock encrypt(const AesBlock &in) const;

    /**
     * Encrypt @p nblocks consecutive 16-byte blocks; the dispatched
     * kernel pipelines independent blocks through the cipher rounds,
     * so wide calls amortize the per-block latency.
     */
    void
    encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                  std::size_t nblocks) const
    {
        enc_(roundKeys_, in, out, nblocks);
    }

  private:
    // 11 round keys of 16 bytes each.
    std::uint8_t roundKeys_[176];
    dispatch::AesEncryptFn enc_;
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_AES128_HH
