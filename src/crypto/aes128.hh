/**
 * @file
 * AES-128 block cipher (FIPS 197), implemented from scratch.
 *
 * Counter-mode encryption in the functional secure-memory plane
 * generates one-time pads with this cipher. Validated against the
 * FIPS-197 Appendix and SP 800-38A vectors.
 */

#ifndef AMNT_CRYPTO_AES128_HH
#define AMNT_CRYPTO_AES128_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace amnt::crypto
{

/** A 16-byte AES block or key. */
using AesBlock = std::array<std::uint8_t, 16>;

/**
 * AES-128 with a fixed key schedule computed at construction.
 * Only the forward (encrypt) direction is needed: counter mode uses
 * the cipher purely as a pseudo-random function.
 */
class Aes128
{
  public:
    /** Expand the 16-byte key into the round-key schedule. */
    explicit Aes128(const AesBlock &key);

    /** Encrypt one 16-byte block in place semantics: out = E_k(in). */
    AesBlock encrypt(const AesBlock &in) const;

  private:
    // 11 round keys of 16 bytes each.
    std::uint8_t roundKeys_[176];
};

} // namespace amnt::crypto

#endif // AMNT_CRYPTO_AES128_HH
