#include "crypto/dispatch.hh"

#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "crypto/aes128.hh"
#include "crypto/isa_kernels.hh"
#include "crypto/sha256.hh"
#include "crypto/siphash.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace amnt::crypto::dispatch
{

namespace
{

CpuCaps
detectCaps()
{
    CpuCaps caps;
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    bool osxsave = false;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
        caps.ssse3 = (ecx & (1u << 9)) != 0;
        caps.sse41 = (ecx & (1u << 19)) != 0;
        caps.aesni = (ecx & (1u << 25)) != 0;
        osxsave = (ecx & (1u << 27)) != 0;
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        caps.shani = (ebx & (1u << 29)) != 0;
        caps.avx2 = (ebx & (1u << 5)) != 0;
        caps.avx512vl =
            (ebx & (1u << 16)) != 0 && (ebx & (1u << 31)) != 0;
    }
    // AVX state is only usable when the OS context-switches it:
    // XCR0 must enable ymm (bits 2:1) and, for AVX-512, the opmask
    // and zmm state as well (bits 7:5).
    std::uint64_t xcr0 = 0;
    if (osxsave) {
        unsigned lo = 0, hi = 0;
        asm volatile(".byte 0x0f, 0x01, 0xd0" // xgetbv
                     : "=a"(lo), "=d"(hi)
                     : "c"(0));
        xcr0 = (static_cast<std::uint64_t>(hi) << 32) | lo;
    }
    caps.avx2 = caps.avx2 && (xcr0 & 0x6) == 0x6;
    caps.avx512vl = caps.avx512vl && (xcr0 & 0xe6) == 0xe6;
#endif
    // A feature only counts when the matching kernel was compiled in
    // (non-x86 builds and builds without the ISA flags get stubs).
    caps.aesni = caps.aesni && aesniEncryptKernel() != nullptr;
    caps.shani = caps.shani && caps.sse41 && caps.ssse3 &&
                 shaniCompressKernel() != nullptr;
    caps.avx2 = caps.avx2 && sipAvx2Kernel() != nullptr;
    caps.avx512vl = caps.avx512vl && sipAvx512Kernel() != nullptr;
    return caps;
}

Kernels
resolve(Isa isa)
{
    Kernels k;
    k.isa = isa;
    k.sha256Compress = &sha256CompressScalar;
    k.aesEncrypt = &aes128EncryptScalar;
    k.sip4 = &sip4Scalar;
    const CpuCaps &caps = cpuCaps();
    if ((isa == Isa::AesNi || isa == Isa::Native) && caps.aesni)
        k.aesEncrypt = aesniEncryptKernel();
    if ((isa == Isa::ShaNi || isa == Isa::Native) && caps.shani)
        k.sha256Compress = shaniCompressKernel();
    // The partial sets isolate their named kernel; only "native"
    // engages the vector SipHash batch kernel.
    if (isa == Isa::Native) {
        if (caps.avx512vl)
            k.sip4 = sipAvx512Kernel();
        else if (caps.avx2)
            k.sip4 = sipAvx2Kernel();
    }
    return k;
}

Isa
isaFromEnv()
{
    const char *env = std::getenv("AMNT_CRYPTO_ISA");
    if (env == nullptr || std::strcmp(env, "native") == 0)
        return Isa::Native;
    if (std::strcmp(env, "scalar") == 0)
        return Isa::Scalar;
    Isa isa = Isa::Native;
    if (std::strcmp(env, "aesni") == 0)
        isa = Isa::AesNi;
    else if (std::strcmp(env, "shani") == 0)
        isa = Isa::ShaNi;
    else
        warn("AMNT_CRYPTO_ISA=%s not recognized; using native", env);
    if (!available(isa)) {
        warn("AMNT_CRYPTO_ISA=%s not supported on this CPU/build; "
             "using native",
             env);
        isa = Isa::Native;
    }
    return isa;
}

Kernels &
mutableActive()
{
    static Kernels kernels = resolve(isaFromEnv());
    return kernels;
}

bool
batchFromEnv()
{
    const char *env = std::getenv("AMNT_CRYPTO_BATCH");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

bool &
mutableBatch()
{
    static bool enabled = batchFromEnv();
    return enabled;
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar: return "scalar";
      case Isa::AesNi: return "aesni";
      case Isa::ShaNi: return "shani";
      case Isa::Native: return "native";
    }
    return "?";
}

const CpuCaps &
cpuCaps()
{
    static const CpuCaps caps = detectCaps();
    return caps;
}

const Kernels &
active()
{
    return mutableActive();
}

bool
available(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
      case Isa::Native:
        return true;
      case Isa::AesNi:
        return cpuCaps().aesni;
      case Isa::ShaNi:
        return cpuCaps().shani;
    }
    return false;
}

bool
select(Isa isa)
{
    if (!available(isa))
        return false;
    mutableActive() = resolve(isa);
    return true;
}

bool
batchEnabled()
{
    return mutableBatch();
}

void
setBatchEnabled(bool enabled)
{
    mutableBatch() = enabled;
}

} // namespace amnt::crypto::dispatch
