/**
 * @file
 * AES-128 encryption with the AES-NI instruction set.
 *
 * `_mm_aesenc_si128` performs exactly one FIPS-197 round
 * (SubBytes + ShiftRows + MixColumns + AddRoundKey), so this kernel
 * is bit-identical to the scalar implementation in aes128.cc; it
 * consumes the same 176-byte expanded key schedule. Throughput comes
 * from pipelining: the aesenc latency (~4 cycles) is hidden by
 * issuing four independent blocks per round, which is why the batch
 * pad API hands this kernel 4n counter blocks at once.
 *
 * Built with -maes -mssse3 on x86 (see src/CMakeLists.txt); on other
 * targets the provider returns nullptr and dispatch stays scalar.
 */

#include "crypto/isa_kernels.hh"

#if defined(__AES__) && defined(__SSE2__)

#include <wmmintrin.h>

namespace amnt::crypto::dispatch
{

namespace
{

void
aesniEncrypt(const std::uint8_t *rk, const std::uint8_t *in,
             std::uint8_t *out, std::size_t nblocks)
{
    __m128i k[11];
    for (int r = 0; r < 11; ++r)
        k[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 16 * r));

    std::size_t i = 0;
    for (; i + 4 <= nblocks; i += 4) {
        const __m128i *src =
            reinterpret_cast<const __m128i *>(in + 16 * i);
        __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k[0]);
        __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k[0]);
        __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k[0]);
        __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k[0]);
        for (int r = 1; r <= 9; ++r) {
            b0 = _mm_aesenc_si128(b0, k[r]);
            b1 = _mm_aesenc_si128(b1, k[r]);
            b2 = _mm_aesenc_si128(b2, k[r]);
            b3 = _mm_aesenc_si128(b3, k[r]);
        }
        b0 = _mm_aesenclast_si128(b0, k[10]);
        b1 = _mm_aesenclast_si128(b1, k[10]);
        b2 = _mm_aesenclast_si128(b2, k[10]);
        b3 = _mm_aesenclast_si128(b3, k[10]);
        __m128i *dst = reinterpret_cast<__m128i *>(out + 16 * i);
        _mm_storeu_si128(dst + 0, b0);
        _mm_storeu_si128(dst + 1, b1);
        _mm_storeu_si128(dst + 2, b2);
        _mm_storeu_si128(dst + 3, b3);
    }
    for (; i < nblocks; ++i) {
        __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + 16 * i));
        b = _mm_xor_si128(b, k[0]);
        for (int r = 1; r <= 9; ++r)
            b = _mm_aesenc_si128(b, k[r]);
        b = _mm_aesenclast_si128(b, k[10]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * i), b);
    }
}

} // namespace

AesEncryptFn
aesniEncryptKernel()
{
    return &aesniEncrypt;
}

} // namespace amnt::crypto::dispatch

#else // !(__AES__ && __SSE2__)

namespace amnt::crypto::dispatch
{

AesEncryptFn
aesniEncryptKernel()
{
    return nullptr;
}

} // namespace amnt::crypto::dispatch

#endif
