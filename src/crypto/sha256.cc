#include "crypto/sha256.hh"

#include <cstring>

#include "common/bitops.hh"

namespace amnt::crypto
{

namespace
{

constexpr std::uint32_t kRoundConst[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

} // namespace

void
Sha256::reset()
{
    state_[0] = 0x6a09e667;
    state_[1] = 0xbb67ae85;
    state_[2] = 0x3c6ef372;
    state_[3] = 0xa54ff53a;
    state_[4] = 0x510e527f;
    state_[5] = 0x9b05688c;
    state_[6] = 0x1f83d9ab;
    state_[7] = 0x5be0cd19;
    totalBytes_ = 0;
    bufferLen_ = 0;
}

void
sha256CompressScalar(std::uint32_t state[8], const std::uint8_t *blocks,
                     std::size_t nblocks)
{
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
        const std::uint8_t *block = blocks + 64 * blk;
        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i)
            w[i] = load32be(block + 4 * i);
        for (int i = 16; i < 64; ++i) {
            const std::uint32_t s0 = rotr32(w[i - 15], 7) ^
                rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
            const std::uint32_t s1 = rotr32(w[i - 2], 17) ^
                rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }

        std::uint32_t a = state[0], b = state[1], c = state[2];
        std::uint32_t d = state[3], e = state[4], f = state[5];
        std::uint32_t g = state[6], h = state[7];

        for (int i = 0; i < 64; ++i) {
            const std::uint32_t s1 =
                rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
            const std::uint32_t ch = (e & f) ^ (~e & g);
            const std::uint32_t t1 = h + s1 + ch + kRoundConst[i] + w[i];
            const std::uint32_t s0 =
                rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
            const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const std::uint32_t t2 = s0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }

        state[0] += a;
        state[1] += b;
        state[2] += c;
        state[3] += d;
        state[4] += e;
        state[5] += f;
        state[6] += g;
        state[7] += h;
    }
}

void
Sha256::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    totalBytes_ += len;
    if (bufferLen_ > 0) {
        const std::size_t take = std::min(len, sizeof(buffer_) - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, p, take);
        bufferLen_ += take;
        p += take;
        len -= take;
        if (bufferLen_ == sizeof(buffer_)) {
            compress_(state_, buffer_, 1);
            bufferLen_ = 0;
        }
    }
    if (len >= sizeof(buffer_)) {
        const std::size_t full = len / sizeof(buffer_);
        compress_(state_, p, full);
        p += full * sizeof(buffer_);
        len -= full * sizeof(buffer_);
    }
    if (len > 0) {
        std::memcpy(buffer_, p, len);
        bufferLen_ = len;
    }
}

Sha256Digest
Sha256::final()
{
    const std::uint64_t bit_len = totalBytes_ * 8;
    const std::uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    const std::uint8_t zero = 0;
    while (bufferLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_be[8];
    store64be(len_be, bit_len);
    update(len_be, 8);

    Sha256Digest out;
    for (int i = 0; i < 8; ++i)
        store32be(out.data() + 4 * i, state_[i]);
    return out;
}

Sha256Digest
Sha256::digest(const void *data, std::size_t len)
{
    Sha256 h;
    h.update(data, len);
    return h.final();
}

} // namespace amnt::crypto
