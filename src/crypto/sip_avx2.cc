/**
 * @file
 * Four-lane SipHash-2-4 batch kernel on AVX2.
 *
 * One 256-bit register holds the same SipHash variable of four
 * independent messages, so the serial v0->v1->v3 dependency chain of
 * each round runs once for all four lanes. AVX2 has no 64-bit vector
 * rotate, so rotates cost shift+shift+or — except the rotate by 32,
 * which is a lane-local dword shuffle. Bit-identical to four scalar
 * SipHash24::mac calls by construction (same adds, xors, rotates).
 *
 * Built with -mavx2 on x86 (see src/CMakeLists.txt); on other targets
 * the provider returns nullptr and dispatch stays scalar.
 */

#include "crypto/isa_kernels.hh"

#if defined(__AVX2__)

#include <immintrin.h>

namespace amnt::crypto::dispatch
{

namespace
{

inline __m256i
rot(__m256i x, int r)
{
    return _mm256_or_si256(_mm256_slli_epi64(x, r),
                           _mm256_srli_epi64(x, 64 - r));
}

inline __m256i
rot32(__m256i x)
{
    return _mm256_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1));
}

struct Sip4
{
    __m256i v0, v1, v2, v3;

    Sip4(std::uint64_t k0, std::uint64_t k1)
        : v0(_mm256_set1_epi64x(
              static_cast<long long>(0x736f6d6570736575ULL ^ k0))),
          v1(_mm256_set1_epi64x(
              static_cast<long long>(0x646f72616e646f6dULL ^ k1))),
          v2(_mm256_set1_epi64x(
              static_cast<long long>(0x6c7967656e657261ULL ^ k0))),
          v3(_mm256_set1_epi64x(
              static_cast<long long>(0x7465646279746573ULL ^ k1)))
    {
    }

    void
    round()
    {
        v0 = _mm256_add_epi64(v0, v1);
        v1 = _mm256_xor_si256(rot(v1, 13), v0);
        v0 = rot32(v0);
        v2 = _mm256_add_epi64(v2, v3);
        v3 = _mm256_xor_si256(rot(v3, 16), v2);
        v0 = _mm256_add_epi64(v0, v3);
        v3 = _mm256_xor_si256(rot(v3, 21), v0);
        v2 = _mm256_add_epi64(v2, v1);
        v1 = _mm256_xor_si256(rot(v1, 17), v2);
        v2 = rot32(v2);
    }
};

void
sipAvx2(std::uint64_t k0, std::uint64_t k1, const std::uint64_t *m,
        std::size_t nwords, std::uint64_t *out)
{
    Sip4 s(k0, k1);
    for (std::size_t w = 0; w < nwords; ++w) {
        const __m256i mm = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(m + 4 * w));
        s.v3 = _mm256_xor_si256(s.v3, mm);
        s.round();
        s.round();
        s.v0 = _mm256_xor_si256(s.v0, mm);
    }
    s.v2 = _mm256_xor_si256(s.v2, _mm256_set1_epi64x(0xff));
    s.round();
    s.round();
    s.round();
    s.round();
    const __m256i r =
        _mm256_xor_si256(_mm256_xor_si256(s.v0, s.v1),
                         _mm256_xor_si256(s.v2, s.v3));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), r);
}

} // namespace

Sip4Fn
sipAvx2Kernel()
{
    return &sipAvx2;
}

} // namespace amnt::crypto::dispatch

#else // !__AVX2__

namespace amnt::crypto::dispatch
{

Sip4Fn
sipAvx2Kernel()
{
    return nullptr;
}

} // namespace amnt::crypto::dispatch

#endif
