#include "os/buddy_allocator.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::os
{

BuddyAllocator::BuddyAllocator(std::uint64_t frames, unsigned max_order)
    : frames_(frames), maxOrder_(max_order)
{
    if (frames == 0)
        panic("BuddyAllocator requires at least one frame");
    if (max_order > 20)
        panic("unreasonable max order");
    freeLists_.resize(maxOrder_ + 1);

    // Seed the free lists with maximal aligned chunks.
    PageId frame = 0;
    while (frame < frames_) {
        unsigned order = maxOrder_;
        while (order > 0 &&
               ((frame & ((1ull << order) - 1)) != 0 ||
                frame + (1ull << order) > frames_))
            --order;
        pushChunk(frame, order);
        freeFrames_ += 1ull << order;
        frame += 1ull << order;
    }
}

void
BuddyAllocator::pushChunk(PageId frame, unsigned order)
{
    freeLists_[order].push_front(frame);
    index_[key(frame, order)] = freeLists_[order].begin();
}

void
BuddyAllocator::removeChunk(PageId frame, unsigned order)
{
    auto it = index_.find(key(frame, order));
    if (it == index_.end())
        panic("removeChunk: chunk not free");
    freeLists_[order].erase(it->second);
    index_.erase(it);
}

bool
BuddyAllocator::chunkIsFree(PageId frame, unsigned order) const
{
    return index_.count(key(frame, order)) != 0;
}

std::size_t
BuddyAllocator::chunksAt(unsigned order) const
{
    return freeLists_[order].size();
}

PageId
BuddyAllocator::allocFrom(unsigned have, unsigned order)
{
    PageId frame = freeLists_[have].front();
    removeChunk(frame, have);

    // Split down to the requested order, returning the low half and
    // freeing the high half at each step (Linux splits the same way).
    while (have > order) {
        --have;
        charge(costs_.splitPerLevel);
        pushChunk(frame + (1ull << have), have);
    }
    freeFrames_ -= 1ull << order;
    return frame;
}

std::optional<PageId>
BuddyAllocator::alloc(unsigned order)
{
    charge(costs_.allocBase);
    unsigned have = order;
    while (have <= maxOrder_ && freeLists_[have].empty())
        ++have;
    if (have > maxOrder_)
        return std::nullopt;
    return allocFrom(have, order);
}

std::optional<PageId>
BuddyAllocator::allocPage()
{
    return alloc(0);
}

void
BuddyAllocator::free(PageId frame, unsigned order)
{
    charge(costs_.freeBase);
    if (frame >= frames_)
        panic("free of frame beyond memory");

    // Only the newly returned frames change the free count; buddies
    // absorbed during coalescing were already counted.
    freeFrames_ += 1ull << order;

    // Coalesce with the buddy while it is also free.
    while (order < maxOrder_) {
        const PageId buddy = frame ^ (1ull << order);
        if (buddy + (1ull << order) > frames_ ||
            !chunkIsFree(buddy, order))
            break;
        charge(costs_.coalescePerLevel);
        removeChunk(buddy, order);
        frame = std::min(frame, buddy);
        ++order;
    }
    pushChunk(frame, order);
    if (!aging_)
        onReclaim();
}

bool
BuddyAllocator::isFree(PageId frame) const
{
    for (unsigned order = 0; order <= maxOrder_; ++order) {
        const PageId base = frame & ~((1ull << order) - 1);
        if (chunkIsFree(base, order))
            return true;
    }
    return false;
}

void
BuddyAllocator::ageSystem(Rng &rng, double free_fraction,
                          std::uint64_t run_pages)
{
    aging_ = true;
    // Drain everything as single frames.
    while (allocPage())
        ;

    // Shuffle run order, then free whole runs (or pin them).
    std::vector<PageId> runs;
    for (PageId start = 0; start < frames_; start += run_pages)
        runs.push_back(start);
    for (std::size_t i = runs.size(); i > 1; --i)
        std::swap(runs[i - 1], runs[rng.below(i)]);

    for (PageId start : runs) {
        if (!rng.chance(free_fraction))
            continue; // pinned: some resident daemon keeps it
        const PageId end = std::min(start + run_pages, frames_);
        for (PageId f = start; f < end; ++f)
            freePage(f);
    }

    // Aging is environment setup, not measured OS work.
    instructions_ = 0;
    aging_ = false;
}

} // namespace amnt::os
