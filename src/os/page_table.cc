#include "os/page_table.hh"

#include "common/log.hh"

namespace amnt::os
{

Addr
PageTable::translate(Addr vaddr)
{
    const PageId vpage = pageOf(vaddr);
    auto it = map_.find(vpage);
    if (it == map_.end()) {
        const auto frame = allocator_->allocPage();
        if (!frame)
            fatal("out of physical memory at vpage %llu",
                  static_cast<unsigned long long>(vpage));
        it = map_.emplace(vpage, *frame).first;
        ++faults_;
    }
    return pageAddr(it->second) + (vaddr & (kPageSize - 1));
}

bool
PageTable::probe(Addr vaddr, Addr &paddr) const
{
    auto it = map_.find(pageOf(vaddr));
    if (it == map_.end())
        return false;
    paddr = pageAddr(it->second) + (vaddr & (kPageSize - 1));
    return true;
}

void
PageTable::unmapPage(PageId vpage)
{
    auto it = map_.find(vpage);
    if (it == map_.end())
        return;
    allocator_->freePage(it->second);
    map_.erase(it);
}

void
PageTable::unmapAll()
{
    for (const auto &kv : map_)
        allocator_->freePage(kv.second);
    map_.clear();
}

void
PageTable::forEachMapping(
    const std::function<void(PageId, PageId)> &visitor) const
{
    for (const auto &kv : map_)
        visitor(kv.first, kv.second);
}

} // namespace amnt::os
