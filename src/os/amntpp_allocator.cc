#include "os/amntpp_allocator.hh"

#include <unordered_map>

#include "common/log.hh"

namespace amnt::os
{

AmntPpAllocator::AmntPpAllocator(std::uint64_t frames,
                                 std::uint64_t frames_per_region,
                                 unsigned max_order,
                                 const AmntPpConfig &config)
    : BuddyAllocator(frames, max_order),
      framesPerRegion_(frames_per_region), config_(config)
{
    if (frames_per_region == 0)
        panic("AMNT++ requires a non-zero region size");
}

void
AmntPpAllocator::onReclaim()
{
    if (++reclaims_ % config_.restructureEvery == 0)
        restructure();
}

std::optional<PageId>
AmntPpAllocator::alloc(unsigned order)
{
    charge(costs_.allocBase);
    for (unsigned o = order; o <= maxOrder(); ++o) {
        if (freeLists_[o].empty())
            continue;
        if (regionOf(freeLists_[o].front()) == biasedRegion_)
            return allocFrom(o, order);
        // The head here is unbiased; keep looking upward for a
        // biased chunk before settling for it.
        for (unsigned above = o; above <= maxOrder(); ++above) {
            if (!freeLists_[above].empty() &&
                regionOf(freeLists_[above].front()) == biasedRegion_)
                return allocFrom(above, order);
        }
        return allocFrom(o, order);
    }
    return std::nullopt;
}

void
AmntPpAllocator::restructure()
{
    ++restructures_;

    // Pass 1: scan a bounded prefix of each biased list and count
    // free chunks per subtree region.
    std::unordered_map<std::uint64_t, std::uint64_t> region_chunks;
    for (unsigned order = 0;
         order <= config_.maxOrderScanned && order < freeLists_.size();
         ++order) {
        std::size_t scanned = 0;
        for (PageId frame : freeLists_[order]) {
            if (scanned++ >= config_.scanLimit)
                break;
            ++region_chunks[regionOf(frame)];
            charge(costs_.scanPerChunk);
        }
    }
    if (region_chunks.empty())
        return;

    // The region with the greatest number of free chunks wins: it
    // can absorb the most future allocations without spilling.
    std::uint64_t best_region = 0;
    std::uint64_t best_count = 0;
    for (const auto &kv : region_chunks) {
        if (kv.second > best_count ||
            (kv.second == best_count && kv.first < best_region)) {
            best_region = kv.first;
            best_count = kv.second;
        }
    }
    // Hysteresis: keep the incumbent biased region until a rival has
    // twice its free chunks. Flapping between near-tied regions would
    // scatter consecutive allocations — the exact problem the bias
    // exists to prevent.
    const auto incumbent = region_chunks.find(biasedRegion_);
    if (incumbent != region_chunks.end() &&
        incumbent->second * 2 >= best_count)
        best_region = biasedRegion_;
    biasedRegion_ = best_region;

    // Pass 2: splice the winning region's chunks to the head of
    // each list (built as a temporary biased list, then swapped in,
    // so allocations never observe a partial restructure).
    for (unsigned order = 0;
         order <= config_.maxOrderScanned && order < freeLists_.size();
         ++order) {
        std::list<PageId> &lst = freeLists_[order];
        std::list<PageId> biased;
        std::size_t scanned = 0;
        for (auto it = lst.begin();
             it != lst.end() && scanned < config_.scanLimit;
             ++scanned) {
            charge(costs_.scanPerChunk);
            if (regionOf(*it) == best_region) {
                auto next = std::next(it);
                biased.splice(biased.end(), lst, it);
                it = next;
            } else {
                ++it;
            }
        }
        lst.splice(lst.begin(), biased);
    }
}

} // namespace amnt::os
