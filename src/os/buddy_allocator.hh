/**
 * @file
 * Binary buddy physical-page allocator modeled after Linux's
 * free_area structure (paper section 5).
 *
 * Physical memory is managed as chunks of 2^order pages kept in
 * per-order free lists. Allocation pops the head of the smallest
 * sufficient order, splitting larger chunks as needed; freeing
 * coalesces with the buddy chunk while possible. The allocator also
 * keeps an instruction account so the OS cost of AMNT++'s
 * modifications can be reported (paper Table 2).
 *
 * ageSystem() emulates a long-running machine: every frame is
 * allocated and then a fraction is freed in random order with the
 * rest left pinned, which randomizes the free lists the way real
 * reclamation does. This is what makes physical placement scatter —
 * the problem AMNT++'s biased free lists solve.
 */

#ifndef AMNT_OS_BUDDY_ALLOCATOR_HH
#define AMNT_OS_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace amnt::os
{

/** Modeled instruction costs of allocator operations. */
struct AllocCosts
{
    std::uint64_t allocBase = 60;
    std::uint64_t splitPerLevel = 25;
    std::uint64_t freeBase = 55;
    std::uint64_t coalescePerLevel = 30;
    std::uint64_t scanPerChunk = 2; ///< AMNT++ restructure scan
};

/** Linux-style binary buddy allocator over physical page frames. */
class BuddyAllocator
{
  public:
    /**
     * @param frames    Total physical page frames (power of two not
     *                  required; the tail simply starts free).
     * @param max_order Largest chunk order (Linux: 10).
     */
    explicit BuddyAllocator(std::uint64_t frames,
                            unsigned max_order = 10);

    virtual ~BuddyAllocator() = default;

    /** Allocate one page frame; nullopt when memory is exhausted. */
    std::optional<PageId> allocPage();

    /** Allocate a 2^order-aligned chunk; returns its first frame. */
    virtual std::optional<PageId> alloc(unsigned order);

    /** Return a chunk to the allocator (coalescing with buddies). */
    void free(PageId frame, unsigned order);

    /** Free a single page frame. */
    void freePage(PageId frame) { free(frame, 0); }

    /** Frames currently free. */
    std::uint64_t freeFrames() const { return freeFrames_; }

    /** Total frames managed. */
    std::uint64_t totalFrames() const { return frames_; }

    /** Modeled OS instructions spent in the allocator so far. */
    std::uint64_t instructions() const { return instructions_; }

    /** Number of free chunks at @p order (testing). */
    std::size_t chunksAt(unsigned order) const;

    /**
     * Emulate a long-running system: allocate everything, then free
     * whole runs of @p run_pages contiguous frames in shuffled order
     * with probability @p free_fraction, pinning the rest. Free
     * lists end up holding contiguous multi-megabyte chunks in
     * randomized order — contiguity survives within a run (as it
     * does on real systems, where reclamation returns whole
     * mappings) but successive allocations can jump across memory,
     * which is the scatter AMNT++'s biased lists repair.
     */
    void ageSystem(Rng &rng, double free_fraction = 0.7,
                   std::uint64_t run_pages = 8192);

    /** True iff @p frame is currently inside some free chunk. */
    bool isFree(PageId frame) const;

  protected:
    /**
     * Hook invoked at the end of free() — the reclamation path —
     * where AMNT++ installs its free-list restructuring.
     */
    virtual void onReclaim() {}

    /** Charge modeled OS instructions. */
    void charge(std::uint64_t n) { instructions_ += n; }

    /** Insert chunk at the head of its order list (no coalescing). */
    void pushChunk(PageId frame, unsigned order);

    /** Remove a specific free chunk from its order list. */
    void removeChunk(PageId frame, unsigned order);

    /** Largest chunk order managed. */
    unsigned maxOrder() const { return maxOrder_; }

    /**
     * Pop the head chunk of @p have and split it down to @p order,
     * re-listing the upper halves; the caller guarantees the list at
     * @p have is non-empty.
     */
    PageId allocFrom(unsigned have, unsigned order);

    /** Free lists: per order, chunk start frames; head = next out. */
    std::vector<std::list<PageId>> freeLists_;

    AllocCosts costs_;

    /** Suppresses reclamation hooks during ageSystem() setup. */
    bool aging_ = false;

  private:
    /** Locate a free chunk record. */
    bool chunkIsFree(PageId frame, unsigned order) const;

    std::uint64_t frames_;
    unsigned maxOrder_;
    std::uint64_t freeFrames_ = 0;
    std::uint64_t instructions_ = 0;

    /** (frame, order) -> iterator for O(1) list removal. */
    std::unordered_map<std::uint64_t, std::list<PageId>::iterator>
        index_;

    static std::uint64_t
    key(PageId frame, unsigned order)
    {
        return (frame << 5) | order;
    }
};

} // namespace amnt::os

#endif // AMNT_OS_BUDDY_ALLOCATOR_HH
