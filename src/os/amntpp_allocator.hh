/**
 * @file
 * AMNT++: the hardware/software co-designed physical page allocator
 * (paper section 5).
 *
 * The modification biases the buddy allocator's free lists so that
 * chunks belonging to the subtree region with the most free chunks
 * sit at the head of each list. Allocations therefore keep landing
 * in one subtree region, consolidating the hot sets of all running
 * processes under a single fast subtree and raising the subtree hit
 * rate without any extra hardware.
 *
 * The restructuring runs during page reclamation — off the critical
 * path of an allocation — by scanning each free list, counting chunks
 * per region, and splicing the winning region's chunks to the front.
 * Its modeled instruction cost feeds the Table 2 evaluation
 * (~1-2% instruction overhead, negligible performance impact).
 */

#ifndef AMNT_OS_AMNTPP_ALLOCATOR_HH
#define AMNT_OS_AMNTPP_ALLOCATOR_HH

#include "os/buddy_allocator.hh"

namespace amnt::os
{

/** Tunables for the restructuring pass. */
struct AmntPpConfig
{
    /** Reclamations between restructuring passes. */
    std::uint64_t restructureEvery = 64;

    /** Chunks scanned per list per pass (OS batching bound). */
    std::size_t scanLimit = 2048;

    /** Highest order list scanned ("each linked list", section 5). */
    unsigned maxOrderScanned = 10;
};

/** Buddy allocator with AMNT++ free-list region biasing. */
class AmntPpAllocator : public BuddyAllocator
{
  public:
    /**
     * @param frames            Physical frames managed.
     * @param frames_per_region Frames covered by one subtree region
     *                          (coverage of a node at the configured
     *                          subtree level).
     */
    AmntPpAllocator(std::uint64_t frames,
                    std::uint64_t frames_per_region,
                    unsigned max_order = 10,
                    const AmntPpConfig &config = AmntPpConfig());

    /**
     * The restructuring pass. Normally invoked from the reclamation
     * hook; the simulator also ticks it periodically to model
     * background reclamation (kswapd) on systems that rarely free.
     */
    void restructure();

    /** Region currently biased to the head of the free lists. */
    std::uint64_t biasedRegion() const { return biasedRegion_; }

    /** Passes run so far. */
    std::uint64_t restructures() const { return restructures_; }

    /** Subtree region of a physical frame. */
    std::uint64_t
    regionOf(PageId frame) const
    {
        return frame / framesPerRegion_;
    }

    /**
     * Allocation steering: if some order list (at or above the
     * request) has a biased-region chunk at its head, serve the
     * request from the smallest such order, even when an unbiased
     * chunk exists at a lower order. Splitting a larger same-region
     * chunk keeps allocations physically consolidated, which is the
     * entire point of the modification.
     */
    std::optional<PageId> alloc(unsigned order) override;

  protected:
    void onReclaim() override;

  private:
    std::uint64_t framesPerRegion_;
    AmntPpConfig config_;
    std::uint64_t reclaims_ = 0;
    std::uint64_t restructures_ = 0;
    std::uint64_t biasedRegion_ = 0;
};

} // namespace amnt::os

#endif // AMNT_OS_AMNTPP_ALLOCATOR_HH
