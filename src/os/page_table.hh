/**
 * @file
 * Per-process page table with first-touch physical allocation.
 *
 * Virtual address spaces are private per process; physical frames
 * come from the shared buddy (or AMNT++) allocator on first touch.
 * The translation layer is what lets the multiprogram experiments
 * show physical interleaving (Figure 3b) and what gives AMNT++ its
 * lever: same virtual behavior, different physical placement.
 */

#ifndef AMNT_OS_PAGE_TABLE_HH
#define AMNT_OS_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hh"
#include "os/buddy_allocator.hh"

namespace amnt::os
{

/** Maps one process's virtual pages to physical frames. */
class PageTable
{
  public:
    /** @param allocator Shared physical allocator; not owned. */
    explicit PageTable(BuddyAllocator &allocator)
        : allocator_(&allocator)
    {
    }

    /**
     * Translate a virtual address, allocating the backing frame on
     * first touch. Returns the physical address.
     */
    Addr translate(Addr vaddr);

    /** Translate without allocating; false when unmapped. */
    bool probe(Addr vaddr, Addr &paddr) const;

    /** Release the frame backing virtual page @p vpage, if any. */
    void unmapPage(PageId vpage);

    /** Release every mapping (process exit). */
    void unmapAll();

    /** Mapped page count. */
    std::size_t mappedPages() const { return map_.size(); }

    /** Pages faulted in so far (allocation count). */
    std::uint64_t faults() const { return faults_; }

    /** Iterate mappings: visitor(vpage, pframe). */
    void forEachMapping(
        const std::function<void(PageId, PageId)> &visitor) const;

  private:
    BuddyAllocator *allocator_;
    std::unordered_map<PageId, PageId> map_;
    std::uint64_t faults_ = 0;
};

} // namespace amnt::os

#endif // AMNT_OS_PAGE_TABLE_HH
