#include "core/protocol_registry.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/amnt.hh"
#include "mee/anubis.hh"
#include "mee/baselines.hh"
#include "mee/bmf.hh"
#include "mee/phoenix.hh"
#include "mee/stit.hh"

namespace amnt::core
{

namespace
{

template <typename S>
std::unique_ptr<mee::ProtocolStrategy>
makeDefault(const mee::MeeConfig &)
{
    return std::make_unique<S>();
}

std::unique_ptr<mee::ProtocolStrategy>
makeAmnt(const mee::MeeConfig &config)
{
    return std::make_unique<AmntStrategy>(config);
}

} // namespace

const std::vector<ProtocolInfo> &
protocolRegistry()
{
    static const std::vector<ProtocolInfo> table = {
        {mee::Protocol::Volatile, "volatile",
         "write-back secure memory, no crash consistency "
         "(normalization baseline)",
         "", -1, false, makeDefault<mee::VolatileStrategy>},
        {mee::Protocol::Strict, "strict",
         "write-through of the whole ancestral path on every write",
         "", 1, false, makeDefault<mee::StrictStrategy>},
        {mee::Protocol::Leaf, "leaf",
         "counters+HMACs persist with the write; full tree recompute "
         "at recovery",
         "", 0, false, makeDefault<mee::LeafStrategy>},
        {mee::Protocol::Osiris, "osiris",
         "stop-loss counter persistence; recovery re-derives counters "
         "by HMAC trial",
         "osirisStopLoss", -1, false,
         makeDefault<mee::OsirisStrategy>},
        {mee::Protocol::Anubis, "anubis",
         "NVM shadow table mirroring the metadata cache; cache-size "
         "bound recovery",
         "", 2, false, makeDefault<mee::AnubisStrategy>},
        {mee::Protocol::Bmf, "bmf",
         "persistent root set (Bonsai Merkle Forest) with prune/merge "
         "adaptation",
         "bmfRootCacheEntries, bmfInterval", 3, false,
         makeDefault<mee::BmfStrategy>},
        {mee::Protocol::Amnt, "amnt",
         "the paper's tree-within-a-tree: one lazy fast subtree, "
         "strict elsewhere",
         "amntSubtreeLevel, amntInterval, amntHistoryEntries", 4,
         false, makeAmnt},
        {mee::Protocol::Phoenix, "phoenix",
         "leaf-style persistence with epoch-batched node flushes "
         "(tree-of-counters restore)",
         "phoenixEpoch", -1, true,
         makeDefault<mee::PhoenixStrategy>},
        {mee::Protocol::Stit, "stit",
         "coalesced BMT update pipeline: node persists drain from a "
         "bounded volatile queue",
         "stitQueueDepth, stitDrain", -1, true,
         makeDefault<mee::StitStrategy>},
    };
    return table;
}

const ProtocolInfo &
protocolInfo(mee::Protocol p)
{
    for (const ProtocolInfo &info : protocolRegistry())
        if (info.id == p)
            return info;
    fatal("protocol %u is not registered",
          static_cast<unsigned>(p));
}

std::optional<mee::Protocol>
findProtocol(const std::string &name)
{
    for (const ProtocolInfo &info : protocolRegistry())
        if (name == info.name)
            return info.id;
    return std::nullopt;
}

mee::Protocol
protocolByName(const std::string &name)
{
    if (const auto p = findProtocol(name))
        return *p;
    fatal("unknown protocol '%s' (registered: %s)", name.c_str(),
          protocolNameList().c_str());
}

std::string
protocolNameList()
{
    std::string list;
    for (const ProtocolInfo &info : protocolRegistry()) {
        if (!list.empty())
            list += ", ";
        list += info.name;
    }
    return list;
}

std::vector<mee::Protocol>
allProtocols()
{
    std::vector<mee::Protocol> out;
    for (const ProtocolInfo &info : protocolRegistry())
        out.push_back(info.id);
    return out;
}

std::vector<mee::Protocol>
persistentProtocols()
{
    std::vector<mee::Protocol> out;
    for (const ProtocolInfo &info : protocolRegistry())
        if (crashProfileOf(info.id).persistent)
            out.push_back(info.id);
    return out;
}

std::vector<mee::Protocol>
tamperAtRestProtocols()
{
    std::vector<mee::Protocol> out;
    for (const ProtocolInfo &info : protocolRegistry())
        if (crashProfileOf(info.id).tamperAtRestDetects)
            out.push_back(info.id);
    return out;
}

std::vector<mee::Protocol>
figureProtocols()
{
    std::vector<std::pair<int, mee::Protocol>> ordered;
    for (const ProtocolInfo &info : protocolRegistry())
        if (info.figureOrder >= 0)
            ordered.emplace_back(info.figureOrder, info.id);
    std::sort(ordered.begin(), ordered.end());
    std::vector<mee::Protocol> out;
    for (const auto &kv : ordered)
        out.push_back(kv.second);
    return out;
}

std::vector<mee::Protocol>
fig04ExtraProtocols()
{
    std::vector<mee::Protocol> out;
    for (const ProtocolInfo &info : protocolRegistry())
        if (info.fig04Extra)
            out.push_back(info.id);
    return out;
}

mee::CrashProfile
crashProfileOf(mee::Protocol p)
{
    // The profile is a static declaration: read it off a detached
    // strategy built against default knobs.
    const mee::MeeConfig defaults;
    return protocolInfo(p).make(defaults)->crashProfile();
}

std::unique_ptr<mee::ProtocolStrategy>
makeProtocol(mee::Protocol p, const mee::MeeConfig &config)
{
    return protocolInfo(p).make(config);
}

std::unique_ptr<mee::MemoryEngine>
makeEngine(mee::Protocol p, const mee::MeeConfig &config,
           mem::NvmDevice &nvm)
{
    return std::make_unique<mee::MemoryEngine>(config, nvm,
                                               makeProtocol(p, config));
}

} // namespace amnt::core
