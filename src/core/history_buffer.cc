#include "core/history_buffer.hh"

#include <algorithm>
#include <utility>

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::core
{

HistoryBuffer::HistoryBuffer(unsigned entries, std::uint64_t incumbent)
{
    if (entries == 0)
        panic("HistoryBuffer requires at least one entry");
    entries_.resize(entries);
    reset(incumbent);
}

void
HistoryBuffer::reset(std::uint64_t incumbent)
{
    for (auto &e : entries_) {
        e.region = 0;
        e.count = 0;
    }
    entries_[0].region = incumbent;
}

void
HistoryBuffer::record(std::uint64_t region)
{
    // Scan for the region (two cache accesses' worth of work in
    // hardware, off the authentication critical path).
    std::size_t slot = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].region == region &&
            (entries_[i].count > 0 || i == 0)) {
            slot = i;
            break;
        }
    }
    if (slot == entries_.size()) {
        // Not present: claim an idle (or the weakest) non-head slot.
        std::size_t victim = 1 % entries_.size();
        for (std::size_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].count == 0) {
                victim = i;
                break;
            }
            if (entries_[i].count < entries_[victim].count)
                victim = i;
        }
        entries_[victim].region = region;
        entries_[victim].count = 0;
        slot = victim;
    }

    // Saturating increment (a log2(n)-bit counter in hardware).
    if (entries_[slot].count < entries_.size())
        ++entries_[slot].count;

    // Swap-with-head keeps the maximum at the head; ties keep the
    // incumbent to avoid needless subtree movement.
    if (slot != 0 && entries_[slot].count > entries_[0].count)
        std::swap(entries_[slot], entries_[0]);
}

std::uint64_t
HistoryBuffer::countOf(std::uint64_t region) const
{
    for (const auto &e : entries_)
        if (e.region == region && e.count > 0)
            return e.count;
    return entries_[0].region == region ? entries_[0].count : 0;
}

std::uint64_t
HistoryBuffer::storageBits() const
{
    const unsigned idx_bits = ceilLog2(entries_.size());
    return entries_.size() * 2ull * idx_bits;
}

} // namespace amnt::core
