/**
 * @file
 * AMNT's hot-region history buffer (paper section 4.2).
 *
 * A small on-chip buffer of n entries tracking the n most recent
 * memory writes at subtree-region granularity. Each entry holds a
 * region index and a log2(n)-bit counter. The buffer is not fully
 * sorted: a swap-with-head rule guarantees only that the head entry
 * always holds the most frequently written region, which is all the
 * subtree-movement decision needs. On a tie the incumbent (current
 * subtree) stays at the head to avoid gratuitous subtree movement.
 *
 * For the default configuration (n = 64, subtree level 3 with 64
 * regions) the buffer costs 64 x (6 + 6) = 768 bits = 96 bytes of
 * volatile on-chip state (paper Table 3).
 */

#ifndef AMNT_CORE_HISTORY_BUFFER_HH
#define AMNT_CORE_HISTORY_BUFFER_HH

#include <cstdint>
#include <vector>

namespace amnt::core
{

/** Swap-with-head frequency tracker over subtree regions. */
class HistoryBuffer
{
  public:
    /**
     * @param entries Buffer entries (n); also the counter saturation.
     * @param incumbent Region seeded at the head (current subtree).
     */
    explicit HistoryBuffer(unsigned entries,
                           std::uint64_t incumbent = 0);

    /** Record one write to @p region. */
    void record(std::uint64_t region);

    /** Region currently at the head (the most-written region). */
    std::uint64_t head() const { return entries_[0].region; }

    /** Zero all counters and seed the head with @p incumbent. */
    void reset(std::uint64_t incumbent);

    /** Count currently attributed to @p region (testing). */
    std::uint64_t countOf(std::uint64_t region) const;

    /** Volatile on-chip bits this buffer costs (Table 3). */
    std::uint64_t storageBits() const;

    /** Entry capacity. */
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    struct Entry
    {
        std::uint64_t region = 0;
        std::uint32_t count = 0;
    };

    std::vector<Entry> entries_;
};

} // namespace amnt::core

#endif // AMNT_CORE_HISTORY_BUFFER_HH
