#include "core/hw_overhead.hh"

#include "common/bitops.hh"

namespace amnt::core
{

HwOverhead
hwOverheadOf(mee::Protocol p, const mee::MeeConfig &config)
{
    HwOverhead hw;
    const std::uint64_t lines =
        config.metaCache.sizeBytes / kBlockSize;

    switch (p) {
      case mee::Protocol::Volatile:
      case mee::Protocol::Strict:
      case mee::Protocol::Leaf:
      case mee::Protocol::Osiris:
        // Only the NV root register, which the comparison excludes.
        break;

      case mee::Protocol::Anubis:
        // One extra NV register for the shadow Merkle tree root; the
        // shadow MT is cached entirely on-chip (37 kB for a 64 kB
        // metadata cache) and the shadow table mirrors the cache in
        // memory (37 kB) [Zubair & Awad; paper Table 3].
        hw.nvOnChip = 64;
        hw.volatileOnChip = config.metaCache.sizeBytes * 37 / 64;
        hw.inMemory = config.metaCache.sizeBytes * 37 / 64;
        break;

      case mee::Protocol::Bmf:
        // NV root cache (64 x 64 B = 4 kB by default) plus 6-bit
        // frequency counters on every metadata cache line (768 B for
        // a 64 kB cache).
        hw.nvOnChip =
            std::uint64_t(config.bmfRootCacheEntries) * kBlockSize;
        hw.volatileOnChip = lines * 6 / 8;
        break;

      case mee::Protocol::Phoenix:
        // Leaf-style persistence plus an epoch write counter (8 B
        // volatile); the NV root register is the shared baseline.
        hw.volatileOnChip = 8;
        break;

      case mee::Protocol::Stit:
        // The coalescing pending queue: one address tag per entry
        // (8 B), all volatile — a crash loses only recomputable node
        // updates.
        hw.volatileOnChip =
            std::uint64_t(config.stitQueueDepth) * 8;
        break;

      case mee::Protocol::Amnt: {
          // One NV register for the subtree root; the history buffer
          // is n entries of 2*log2(n) bits (96 B at n = 64),
          // independent of cache and memory sizes.
          hw.nvOnChip = 64;
          const unsigned idx_bits = ceilLog2(config.amntHistoryEntries);
          hw.volatileOnChip =
              std::uint64_t(config.amntHistoryEntries) * 2 * idx_bits /
              8;
          break;
      }
    }
    return hw;
}

} // namespace amnt::core
