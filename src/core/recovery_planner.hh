/**
 * @file
 * Analytic recovery-time model (paper section 6.7 and Table 4) and
 * the administrator-facing planner that inverts it.
 *
 * The recovery workload streams counter blocks in and recomputes the
 * tree level by level, writing each level back before computing the
 * next; with pipelined hashing the bottleneck is memory read
 * bandwidth (12 GB/s across six DIMMs at an 8:1 read:write mix). A
 * system administrator picks the AMNT subtree level in the BIOS to
 * bound recovery time; levelForBudget() performs that selection.
 */

#ifndef AMNT_CORE_RECOVERY_PLANNER_HH
#define AMNT_CORE_RECOVERY_PLANNER_HH

#include <cstdint>
#include <string>

#include "mee/engine.hh"

namespace amnt::core
{

/** Bandwidth and geometry constants for the analytic model. */
struct RecoveryModel
{
    double readBandwidthGBs = 12.0; ///< six DIMMs x 2 GB/s reads

    /** Counter bytes for @p mem_bytes of data (1/64 of capacity). */
    static std::uint64_t
    counterBytes(std::uint64_t mem_bytes)
    {
        return mem_bytes / kCounterArity;
    }

    /**
     * Leaf persistence: all counters are read and every tree level is
     * re-read while the next is computed: C*(2 + 1/7) bytes of reads.
     */
    double leafMs(std::uint64_t mem_bytes) const;

    /** Strict persistence: nothing stale. */
    double strictMs(std::uint64_t) const { return 0.0; }

    /**
     * Anubis: bounded by the shadow table (metadata cache size), a
     * short dependent-fetch chain per restored line; independent of
     * memory size.
     */
    double anubisMs(std::uint64_t mcache_lines = 1024) const;

    /**
     * Osiris: the stop-loss trial adds data reads on top of the full
     * leaf rebuild; Table 4's ratio to leaf (8.143x) is adopted as
     * the traffic multiplier.
     */
    double osirisMs(std::uint64_t mem_bytes) const;

    /** BMF: full persistent-root coverage, nothing stale. */
    double bmfMs(std::uint64_t) const { return 0.0; }

    /**
     * Phoenix: only nodes dirtied since the last epoch flush are
     * stale — a counter+node read per dirty line, latency-bound like
     * Anubis but over at most one epoch of lines.
     */
    double phoenixMs(unsigned epoch_writes) const;

    /**
     * STIT: the pending queue is lost but counters are always
     * current, so recovery recomputes the tree from leaves; same
     * asymptotics as leaf persistence.
     */
    double stitMs(std::uint64_t mem_bytes) const;

    /** AMNT at subtree level L: leaf work / 8^(L-1). */
    double amntMs(std::uint64_t mem_bytes, unsigned level) const;

    /** Fraction of the BMT stale at a crash for AMNT at @p level. */
    static double
    amntStaleFraction(unsigned level)
    {
        double f = 1.0;
        for (unsigned l = 1; l < level; ++l)
            f /= static_cast<double>(kTreeArity);
        return f;
    }

    /**
     * Administrator planner: deepest coverage (smallest level, i.e.
     * largest fast subtree and best runtime) whose recovery time fits
     * within @p budget_ms. Returns 0 when even the deepest level
     * exceeds the budget.
     */
    unsigned levelForBudget(std::uint64_t mem_bytes, double budget_ms,
                            unsigned max_level) const;
};

} // namespace amnt::core

#endif // AMNT_CORE_RECOVERY_PLANNER_HH
