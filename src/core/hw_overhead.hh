/**
 * @file
 * On-chip and in-memory area model for the compared protocols
 * (paper Table 3, section 6.6).
 *
 * Non-volatile and volatile on-chip space are reported separately —
 * they are different technologies (Flash vs SRAM) — and exclude the
 * 64 kB metadata cache and the one NV root register every scheme
 * needs. Anubis and BMF overheads scale with the metadata cache size;
 * AMNT's is a constant 64 B NV + 96 B volatile.
 */

#ifndef AMNT_CORE_HW_OVERHEAD_HH
#define AMNT_CORE_HW_OVERHEAD_HH

#include <cstdint>

#include "mee/engine.hh"

namespace amnt::core
{

/** Area figures in bytes. */
struct HwOverhead
{
    std::uint64_t nvOnChip = 0;
    std::uint64_t volatileOnChip = 0;
    std::uint64_t inMemory = 0;
};

/** Table-3 area model for protocol @p p under @p config. */
HwOverhead hwOverheadOf(mee::Protocol p, const mee::MeeConfig &config);

} // namespace amnt::core

#endif // AMNT_CORE_HW_OVERHEAD_HH
