#include "core/recovery_planner.hh"

namespace amnt::core
{

double
RecoveryModel::leafMs(std::uint64_t mem_bytes) const
{
    // Reads: every counter block (C bytes), the recomputed leaf-hash
    // level (C), and each upper level re-read before its parents are
    // computed (C/8 + C/64 + ... = C/7): C * 15/7 bytes total.
    const double c = static_cast<double>(counterBytes(mem_bytes));
    const double reads = c * 15.0 / 7.0;
    return reads / (readBandwidthGBs * 1e9) * 1e3;
}

double
RecoveryModel::anubisMs(std::uint64_t mcache_lines) const
{
    // Latency-bound: each shadow-table line costs a short dependent
    // chain of ~4 reads at 305 ns (restore + repair + re-verify).
    const double read_ns = 305.0;
    return static_cast<double>(mcache_lines) * 4.0 * read_ns / 1e6;
}

double
RecoveryModel::osirisMs(std::uint64_t mem_bytes) const
{
    // Stop-loss counter recovery requires HMAC trials against data
    // on top of the full tree rebuild; the paper's Table 4 reports
    // 8.143x the leaf recovery time, which we adopt as the traffic
    // multiplier.
    return leafMs(mem_bytes) * 8.143;
}

double
RecoveryModel::phoenixMs(unsigned epoch_writes) const
{
    // At most one epoch of tree nodes is stale; each restored node
    // costs a counter read + node rewrite dependent pair at NVM read
    // latency, like the Anubis chain but epoch-bounded.
    const double read_ns = 305.0;
    return static_cast<double>(epoch_writes) * 2.0 * read_ns / 1e6;
}

double
RecoveryModel::stitMs(std::uint64_t mem_bytes) const
{
    // The coalescing queue never defers a counter, so recovery is the
    // leaf rebuild: stream counters in, recompute level by level.
    return leafMs(mem_bytes);
}

double
RecoveryModel::amntMs(std::uint64_t mem_bytes, unsigned level) const
{
    return leafMs(mem_bytes) * amntStaleFraction(level);
}

unsigned
RecoveryModel::levelForBudget(std::uint64_t mem_bytes, double budget_ms,
                              unsigned max_level) const
{
    for (unsigned level = 2; level <= max_level; ++level) {
        if (amntMs(mem_bytes, level) <= budget_ms)
            return level;
    }
    return 0;
}

} // namespace amnt::core
