#include "core/amnt.hh"

#include <vector>

#include "common/log.hh"
#include "fault/fault.hh"

namespace amnt::core
{

void
AmntStrategy::onAttach()
{
    if (config().amntSubtreeLevel < 2 ||
        config().amntSubtreeLevel > map().geometry().nodeLevels())
        fatal("AMNT subtree level %u outside [2, %u]",
              config().amntSubtreeLevel,
              map().geometry().nodeLevels());
    if (config().amntInterval == 0)
        fatal("AMNT interval must be non-zero");
    subtreeHits_ = &stats().counter("subtree_hits");
    subtreeMisses_ = &stats().counter("subtree_misses");
}

Cycle
AmntStrategy::persistInside(const mee::WriteContext &ctx)
{
    // Leaf persistence: counter + HMAC persist with the data write in
    // one parallel burst; tree nodes stay dirty in the metadata
    // cache. The subtree-root register (on-chip, non-volatile) is
    // refreshed so recovery can re-anchor the recomputed subtree.
    ++*subtreeHits_;
    const Addr wt[2] = {map().counterBase() +
                            ctx.counterIdx * kBlockSize,
                        map().hmacAddrOf(ctx.dataAddr)};
    writeThroughMany(wt, 2);
    refreshSubtreeRegister();
    return persistCost(1);
}

Cycle
AmntStrategy::persistOutside(const mee::WriteContext &ctx)
{
    // Strict persistence: read-modify-write the ancestral path and
    // write everything through, ordered.
    ++*subtreeMisses_;
    unsigned misses = 0;
    Cycle hook = 0;
    pathOf(ctx.counterIdx, pathScratch());
    const auto &path = pathScratch();
    for (const auto &ref : path)
        hook += ensureResident(map().nodeAddrOf(ref), misses);
    Cycle lat = misses > 0 ? config().nvmReadCycles : 0;

    // Counter and HMAC persist atomically with the data write; the
    // ancestral path follows in postCommit (recomputable nodes, one
    // crash point each — see StrictStrategy).
    const Addr wt[2] = {map().counterBase() +
                            ctx.counterIdx * kBlockSize,
                        map().hmacAddrOf(ctx.dataAddr)};
    writeThroughMany(wt, 2);

    lat += persistCost(3 + static_cast<unsigned>(path.size()));
    return lat + hook;
}

Cycle
AmntStrategy::persist(const mee::WriteContext &ctx)
{
    const std::uint64_t region = map().geometry().regionOf(
        ctx.counterIdx, config().amntSubtreeLevel);

    // The subtree register initializes on first use: before any
    // write exists there is nothing to flush, so the very first
    // written region is adopted as the fast subtree for free.
    if (!bootstrapped_) {
        bootstrapped_ = true;
        region_ = region;
        refreshSubtreeRegister();
        history_.reset(region_);
    }

    // Hot-region tracking is off the authentication critical path.
    history_.record(region);

    return region == region_ ? persistInside(ctx)
                             : persistOutside(ctx);
}

Cycle
AmntStrategy::postCommit(const mee::WriteContext &ctx)
{
    // Outside-subtree writes persist their ancestral path here, after
    // the commit closed. region_ is still the value persist()
    // dispatched on: movement only happens below, at the interval
    // boundary.
    if (map().geometry().regionOf(ctx.counterIdx,
                                  config().amntSubtreeLevel) !=
        region_) {
        pathOf(ctx.counterIdx, pathScratch());
        Addr wt[bmt::Geometry::kMaxPathNodes];
        std::size_t nwt = 0;
        for (const auto &ref : pathScratch())
            wt[nwt++] = map().nodeAddrOf(ref);
        writeThroughMany(wt, nwt);
    }

    if (++writesThisInterval_ >= config().amntInterval) {
        writesThisInterval_ = 0;
        considerMovement();
        history_.reset(region_);
    }
    return 0; // charged in persistOutside's persistCost
}

void
AmntStrategy::propagateParent(Addr parent_addr)
{
    const bmt::NodeRef ref = map().nodeOfAddr(parent_addr);
    if (ref.level >= config().amntSubtreeLevel &&
        bmt::Geometry::inSubtree(ref, subtreeRoot())) {
        markDirty(parent_addr);
    } else {
        writeThrough(parent_addr);
    }
}

void
AmntStrategy::considerMovement()
{
    const std::uint64_t head = history_.head();
    if (head != region_)
        moveSubtreeTo(head);
}

void
AmntStrategy::moveSubtreeTo(std::uint64_t new_region)
{
    stats().inc("subtree_movements");
    trace().begin(obs::EventClass::SubtreeMove, new_region);

    // All inner nodes of the outgoing subtree must persist before the
    // incoming one may run lazily. Only in-subtree nodes (and the
    // propagation chain above the old root) can be dirty: everything
    // else was written through. A dirty-bit scan of the metadata
    // cache finds them (the 128-bit dirty-path bitmap in hardware).
    std::vector<Addr> dirty_nodes;
    mcache().forEachLine([&](Addr addr, bool dirty) {
        if (dirty && map().classify(addr) == mem::Region::Tree)
            dirty_nodes.push_back(addr);
    });
    writeThroughMany(dirty_nodes.data(), dirty_nodes.size());
    for (std::size_t i = 0; i < dirty_nodes.size(); ++i)
        stats().inc("movement_flush_writes");

    // Persist the path from the outgoing subtree root to the global
    // root so the strict region is anchored again.
    Addr anchor[bmt::Geometry::kMaxPathNodes];
    std::size_t n_anchor = 0;
    bmt::NodeRef ref = subtreeRoot();
    while (true) {
        anchor[n_anchor++] = map().nodeAddrOf(ref);
        stats().inc("movement_flush_writes");
        if (ref.level == 1)
            break;
        ref = bmt::Geometry::parentOf(ref);
    }
    writeThroughMany(anchor, n_anchor);

    // Retargeting is one atomic NV-register transaction: the region
    // selector and the subtree-root register value switch together (a
    // crash between them would anchor the new region with the old
    // region's root hash and falsely fail recovery).
    fault::CommitScope retarget(nvm().faultDomain());
    region_ = new_region;
    refreshSubtreeRegister();
    trace().end(obs::EventClass::SubtreeMove);
}

void
AmntStrategy::onCrash()
{
    // The history buffer is volatile; the subtree-root register and
    // the global root register are non-volatile and survive.
    history_.reset(region_);
    writesThisInterval_ = 0;
}

mee::RecoveryReport
AmntStrategy::recover()
{
    mee::RecoveryReport report;

    // Functionally rebuild and verify against both non-volatile
    // anchors: the recomputed global root must match the root
    // register, and the recomputed subtree root node must match the
    // subtree register.
    mee::RecoveryReport scratch;
    rebuildAndVerify(scratch);
    const bool subtree_ok = tree().node(subtreeRoot()) ==
                            subtreeRegister_;
    report.success = scratch.success && subtree_ok;

    // Work model: only the fast subtree was allowed to be stale, so
    // recovery reads the subtree's counters and recomputes/rewrites
    // only its interior nodes (everything outside was persisted
    // strictly). Count the touched blocks inside the current region.
    const unsigned level = config().amntSubtreeLevel;
    std::uint64_t counters_in = 0;
    tree().forEachCounter(
        [&](std::uint64_t idx, const bmt::CounterBlock &) {
            if (map().geometry().regionOf(idx, level) == region_)
                ++counters_in;
        });
    std::uint64_t nodes_in = 0;
    tree().forEachNode([&](bmt::NodeRef ref, const mem::Block &) {
        if (ref.level >= level &&
            bmt::Geometry::inSubtree(ref, subtreeRoot()))
            ++nodes_in;
    });
    report.countersRecovered = counters_in;
    report.nodesRecomputed = nodes_in;
    report.blocksRead = counters_in + nodes_in;
    report.blocksWritten = nodes_in;
    report.estimatedMs =
        recoveryMs(report.blocksRead, report.blocksWritten);
    report.detail = "amnt: subtree-bounded recompute";
    return report;
}

} // namespace amnt::core
