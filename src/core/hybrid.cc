#include "core/hybrid.hh"

#include "common/log.hh"
#include "core/protocol_registry.hh"

namespace amnt::core
{

HybridEngine::HybridEngine(const HybridConfig &config) : config_(config)
{
    if (config.scmBytes == 0 || config.dramBytes == 0)
        fatal("hybrid machine needs both partitions");

    mee::MeeConfig scm_cfg = config.mee;
    scm_cfg.dataBytes = config.scmBytes;
    scmNvm_ = std::make_unique<mem::NvmDevice>(
        mem::MemoryMap(scm_cfg.dataBytes).deviceBytes());
    scm_ = makeEngine(mee::Protocol::Amnt, scm_cfg, *scmNvm_);

    mee::MeeConfig dram_cfg = config.mee;
    dram_cfg.dataBytes = config.dramBytes;
    dram_cfg.nvmReadCycles = config.dramReadCycles;
    dram_cfg.nvmWriteCycles = config.dramWriteCycles;
    // Independent keys per partition.
    dram_cfg.keySeed = config.mee.keySeed ^ 0xd7a3ULL;
    dramNvm_ = std::make_unique<mem::NvmDevice>(
        mem::MemoryMap(dram_cfg.dataBytes).deviceBytes(),
        mem::NvmTiming{config.dramReadCycles, config.dramWriteCycles,
                       25.0, 25.0});
    dram_ =
        makeEngine(mee::Protocol::Volatile, dram_cfg, *dramNvm_);
}

Cycle
HybridEngine::read(Addr addr, std::uint8_t *out)
{
    if (isScm(addr))
        return scm_->read(addr, out);
    return dram_->read(addr - config_.scmBytes, out);
}

Cycle
HybridEngine::write(Addr addr, const std::uint8_t *data)
{
    if (isScm(addr))
        return scm_->write(addr, data);
    return dram_->write(addr - config_.scmBytes, data);
}

void
HybridEngine::crash()
{
    scm_->crash();
    // DRAM is volatile: device contents themselves are gone. Model
    // the loss by replacing device and engine wholesale, as a reboot
    // re-initializes the volatile tree from scratch.
    mee::MeeConfig dram_cfg = config_.mee;
    dram_cfg.dataBytes = config_.dramBytes;
    dram_cfg.nvmReadCycles = config_.dramReadCycles;
    dram_cfg.nvmWriteCycles = config_.dramWriteCycles;
    dram_cfg.keySeed = config_.mee.keySeed ^ 0xd7a3ULL;
    dramNvm_ = std::make_unique<mem::NvmDevice>(
        mem::MemoryMap(dram_cfg.dataBytes).deviceBytes(),
        mem::NvmTiming{config_.dramReadCycles,
                       config_.dramWriteCycles, 25.0, 25.0});
    dram_ =
        makeEngine(mee::Protocol::Volatile, dram_cfg, *dramNvm_);
}

mee::RecoveryReport
HybridEngine::recover()
{
    return scm_->recover();
}

} // namespace amnt::core
