/**
 * @file
 * The protocol registry: one table describing every metadata
 * persistence protocol the simulator implements.
 *
 * Each entry carries the CLI name, a one-line summary, the MeeConfig
 * knobs the protocol reads, its column position in the paper's
 * figures, and a factory for the protocol's strategy object
 * (mee/protocol.hh). Everything that enumerates protocols — the
 * crash-matrix and tamper test suites, the differential harness, the
 * trace round-trip suite, `--protocol=` parsing in the benches and
 * tools/amnt_trace, and the figure/table golden pins — derives its
 * list from this table, so registering a protocol here auto-enrolls
 * it in the full verification matrix.
 *
 * The table is an explicit function-local static (not self-registration
 * at static-init time): the simulator links as a static library, where
 * unreferenced registration objects are legally dropped.
 */

#ifndef AMNT_CORE_PROTOCOL_REGISTRY_HH
#define AMNT_CORE_PROTOCOL_REGISTRY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mee/protocol.hh"

namespace amnt::core
{

/** One registered protocol. */
struct ProtocolInfo
{
    mee::Protocol id;

    /** CLI token; always equals mee::protocolName(id). */
    const char *name;

    /** One-line description for --help and the README table. */
    const char *summary;

    /** MeeConfig knobs the protocol reads ("" when none). */
    const char *knobs;

    /**
     * Column position in the paper's Figures 4/5 (-1: not a figure
     * column). Golden rows are pinned in this order.
     */
    int figureOrder;

    /**
     * Appended to the Figure 4 golden after the paper's columns
     * (added protocols extend the pin without perturbing it).
     */
    bool fig04Extra;

    /** Strategy factory. */
    std::unique_ptr<mee::ProtocolStrategy> (*make)(
        const mee::MeeConfig &config);
};

/** The full table, ordered by mee::Protocol enumerator value. */
const std::vector<ProtocolInfo> &protocolRegistry();

/** Entry for @p p (fatal if unregistered). */
const ProtocolInfo &protocolInfo(mee::Protocol p);

/** Lookup by CLI name; nullopt when unknown. */
std::optional<mee::Protocol> findProtocol(const std::string &name);

/** Lookup by CLI name; fatal with the registered list on failure. */
mee::Protocol protocolByName(const std::string &name);

/** Comma-joined registered names, for --help text. */
std::string protocolNameList();

/** Every registered protocol, in registry order. */
std::vector<mee::Protocol> allProtocols();

/** Protocols whose CrashProfile declares them persistent: the crash
 *  matrix, post-crash tamper sweep, and crash-survivor differential
 *  enroll exactly this list. */
std::vector<mee::Protocol> persistentProtocols();

/** Protocols whose recovery detects at-rest counter tampering: the
 *  TamperAtRest suite enrolls exactly this list. */
std::vector<mee::Protocol> tamperAtRestProtocols();

/** The paper's figure columns, ordered by ProtocolInfo::figureOrder. */
std::vector<mee::Protocol> figureProtocols();

/** Protocols appended to the Figure 4 golden after the paper's
 *  columns (ProtocolInfo::fig04Extra), in registry order. */
std::vector<mee::Protocol> fig04ExtraProtocols();

/** Crash-boundary declaration of @p p (from a detached strategy). */
mee::CrashProfile crashProfileOf(mee::Protocol p);

/** Build the strategy object for @p p. */
std::unique_ptr<mee::ProtocolStrategy>
makeProtocol(mee::Protocol p, const mee::MeeConfig &config);

} // namespace amnt::core

#endif // AMNT_CORE_PROTOCOL_REGISTRY_HH
