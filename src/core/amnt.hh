/**
 * @file
 * A Midsummer Night's Tree (AMNT): the paper's contribution.
 *
 * AMNT is a dynamic hybrid metadata-persistence protocol — a "tree
 * within a tree". One subtree of the BMT, rooted at a BIOS-configured
 * level (default 3 → 64 candidate regions, 1/64 of memory each),
 * follows leaf persistence: writes inside it persist only the counter
 * and HMAC, leaving tree nodes lazy in the metadata cache. Everything
 * outside the subtree follows strict persistence, so at a crash the
 * only stale metadata in NVM lies inside the subtree, bounding
 * recovery work by the subtree's coverage instead of memory size.
 *
 * A 96-byte history buffer tracks write frequency per subtree region;
 * every interval (64 writes) the hottest region becomes the subtree.
 * Moving the subtree flushes the dirty in-subtree metadata found by
 * scanning the metadata cache's dirty bits and persists the path from
 * the old subtree root to the global root, after which the new region
 * may run lazily.
 *
 * On-chip cost (paper Table 3): one 64 B non-volatile register for
 * the subtree root (plus the 64 B NV global root register every
 * scheme needs) and 96 B of volatile history buffer — independent of
 * memory size and metadata cache size.
 */

#ifndef AMNT_CORE_AMNT_HH
#define AMNT_CORE_AMNT_HH

#include <memory>
#include <string>

#include "core/history_buffer.hh"
#include "mee/protocol.hh"

namespace amnt::core
{

/** The AMNT metadata-persistence protocol. */
class AmntStrategy : public mee::ProtocolStrategy
{
  public:
    explicit AmntStrategy(const mee::MeeConfig &config)
        : history_(config.amntHistoryEntries, 0)
    {
    }

    mee::Protocol id() const override { return mee::Protocol::Amnt; }

    mee::CrashProfile
    crashProfile() const override
    {
        return {true, true,
                "in-subtree: counter+hmac commit-atomic, nodes lazy; "
                "outside: strict write-through; movement retarget "
                "NV-register atomic"};
    }

    mee::RecoveryReport recover() override;

    /** Registry subpath carries the subtree level: "amnt.l3". */
    std::string
    statPath() const override
    {
        return "amnt.l" + std::to_string(config().amntSubtreeLevel);
    }

    Cycle persist(const mee::WriteContext &ctx) override;

    /**
     * Outside-subtree ancestral-path persists (recomputable nodes)
     * and the interval's movement check; neither is atomic with the
     * data write's commit.
     */
    Cycle postCommit(const mee::WriteContext &ctx) override;

    /**
     * Freshness propagation from dirty evictions: parents inside the
     * fast subtree stay lazy; parents outside it (including the
     * ancestors of the subtree root) are written through so that the
     * stale set at any crash is confined to the subtree interior.
     */
    void propagateParent(Addr parent_addr) override;

    void onCrash() override;

    /** Region index currently protected by the fast subtree. */
    std::uint64_t currentRegion() const { return region_; }

    /** Subtree root node of the current region. */
    bmt::NodeRef
    subtreeRoot() const
    {
        return {config().amntSubtreeLevel, region_};
    }

    /** Fraction of data writes that hit the fast subtree (Fig. 7). */
    double
    subtreeHitRate() const
    {
        return stats().ratio("subtree_hits", "subtree_misses");
    }

    /** Subtree movements performed (paper: ~0.3% of accesses). */
    std::uint64_t
    movements() const
    {
        return stats().get("subtree_movements");
    }

    /** True iff counter @p counter_idx lies in the fast subtree. */
    bool
    inFastSubtree(std::uint64_t counter_idx) const
    {
        return map().geometry().regionOf(
                   counter_idx, config().amntSubtreeLevel) == region_;
    }

    /** History buffer (testing). */
    const HistoryBuffer &history() const { return history_; }

    std::unique_ptr<mee::ProtocolShadow>
    cloneShadow() const override
    {
        auto snap = std::make_unique<Snapshot>();
        snap->region = region_;
        snap->bootstrapped = bootstrapped_;
        snap->subtreeRegister = subtreeRegister_;
        return snap;
    }

    void
    restoreShadow(const mee::ProtocolShadow &snap) override
    {
        const auto &s = static_cast<const Snapshot &>(snap);
        region_ = s.region;
        bootstrapped_ = s.bootstrapped;
        subtreeRegister_ = s.subtreeRegister;
    }

  protected:
    void onAttach() override;

  private:
    /**
     * Epoch-commit snapshot of the NV registers: the fast-subtree
     * target and its 64 B root register. The history buffer and
     * interval counter are volatile and die at any crash.
     */
    struct Snapshot : mee::ProtocolShadow
    {
        std::uint64_t region = 0;
        bool bootstrapped = false;
        mem::Block subtreeRegister{};
    };

    /** Leaf-persistence fast path for in-subtree writes. */
    Cycle persistInside(const mee::WriteContext &ctx);

    /** Strict write-through path for out-of-subtree writes. */
    Cycle persistOutside(const mee::WriteContext &ctx);

    /** Interval boundary: possibly move the subtree to the head. */
    void considerMovement();

    /** Flush old-subtree dirty metadata and the root path; retarget. */
    void moveSubtreeTo(std::uint64_t new_region);

    /** Refresh the NV subtree-root register from architecture. */
    void
    refreshSubtreeRegister()
    {
        subtreeRegister_ = tree().node(subtreeRoot());
    }

    HistoryBuffer history_;

    /// Per-write statistics resolved once (see StatGroup::counter).
    std::uint64_t *subtreeHits_ = nullptr;
    std::uint64_t *subtreeMisses_ = nullptr;

    std::uint64_t region_ = 0;
    std::uint64_t writesThisInterval_ = 0;

    /** Cleared until the first data write adopts its region. */
    bool bootstrapped_ = false;

    /** NV on-chip register: latest bytes of the subtree root node. */
    mem::Block subtreeRegister_{};
};

/**
 * Engine factory covering every registered protocol; the single entry
 * point the simulator and benches use. Defined with the protocol
 * registry (core/protocol_registry.cc).
 */
std::unique_ptr<mee::MemoryEngine>
makeEngine(mee::Protocol p, const mee::MeeConfig &config,
           mem::NvmDevice &nvm);

} // namespace amnt::core

#endif // AMNT_CORE_AMNT_HH
