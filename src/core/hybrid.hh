/**
 * @file
 * Hybrid SCM+DRAM secure memory (paper section 7.3).
 *
 * "AMNT abstracts well to a hybrid SCM-DRAM machine as it does not
 * require significant protocol or hardware changes. AMNT protects
 * SCM, and a traditional BMT protects DRAM. This solution only
 * requires an additional (volatile) register for the [DRAM] BMT and
 * knowledge at the memory controller of the SCM/DRAM physical address
 * partition."
 *
 * HybridEngine implements exactly that: one AMNT engine over the
 * persistent partition and one volatile write-back engine over the
 * DRAM partition, dispatched by physical address at the controller.
 * A crash loses the DRAM partition entirely (contents and metadata —
 * by definition) while the SCM partition recovers through AMNT.
 */

#ifndef AMNT_CORE_HYBRID_HH
#define AMNT_CORE_HYBRID_HH

#include <memory>

#include "core/amnt.hh"
#include "mee/engine.hh"

namespace amnt::core
{

/** Construction parameters for the hybrid controller. */
struct HybridConfig
{
    std::uint64_t scmBytes = 1ull << 30;
    std::uint64_t dramBytes = 1ull << 30;
    mee::MeeConfig mee; ///< dataBytes fields are overridden per side
    Cycle dramReadCycles = 100;  ///< ~50 ns DRAM vs 305 ns PCM
    Cycle dramWriteCycles = 100;
};

/**
 * Address-partitioned secure memory controller:
 * [0, scmBytes) is persistent SCM under AMNT; [scmBytes,
 * scmBytes+dramBytes) is DRAM under the volatile scheme.
 */
class HybridEngine
{
  public:
    explicit HybridEngine(const HybridConfig &config);

    /** True iff @p addr falls in the persistent (SCM) partition. */
    bool
    isScm(Addr addr) const
    {
        return addr < config_.scmBytes;
    }

    /** Read one block; dispatches on the partition. */
    Cycle read(Addr addr, std::uint8_t *out = nullptr);

    /** Write one block; dispatches on the partition. */
    Cycle write(Addr addr, const std::uint8_t *data = nullptr);

    /**
     * Power failure: DRAM loses everything (contents included); the
     * SCM side loses only its volatile metadata state.
     */
    void crash();

    /**
     * Recover the SCM partition through AMNT; the DRAM partition
     * restarts empty with a fresh volatile tree, as on any boot.
     */
    mee::RecoveryReport recover();

    /** Violations across both partitions. */
    std::uint64_t
    violations() const
    {
        return scm_->violations() + dram_->violations();
    }

    /** The AMNT-protocol engine protecting SCM. */
    mee::MemoryEngine &scm() { return *scm_; }

    /** The SCM engine's AMNT strategy (subtree state accessors). */
    AmntStrategy &
    amnt()
    {
        return static_cast<AmntStrategy &>(scm_->strategy());
    }

    /** The volatile engine protecting DRAM. */
    mee::MemoryEngine &dram() { return *dram_; }

    /** Devices (testing / tamper injection). */
    mem::NvmDevice &scmDevice() { return *scmNvm_; }
    mem::NvmDevice &dramDevice() { return *dramNvm_; }

    /**
     * Attach fault injection to the persistence domain. Only the SCM
     * partition has one: DRAM is volatile by definition, so its
     * device writes are not persist ops and enumerate no crash
     * points.
     */
    void
    setFaultDomain(fault::FaultDomain *domain)
    {
        scmNvm_->setFaultDomain(domain);
    }

  private:
    HybridConfig config_;
    std::unique_ptr<mem::NvmDevice> scmNvm_;
    std::unique_ptr<mem::NvmDevice> dramNvm_;
    std::unique_ptr<mee::MemoryEngine> scm_;
    std::unique_ptr<mee::MemoryEngine> dram_;
};

} // namespace amnt::core

#endif // AMNT_CORE_HYBRID_HH
