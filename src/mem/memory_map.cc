#include "mem/memory_map.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::mem
{

MemoryMap::MemoryMap(std::uint64_t data_bytes)
    : dataBytes_(alignUp(data_bytes, kPageSize)),
      geo_(dataBytes_ / kPageSize)
{
    if (data_bytes == 0)
        panic("MemoryMap requires non-zero data capacity");

    counterBase_ = dataBytes_;
    // One 64 B counter block per page, padded geometry included so the
    // tree region can assume full levels.
    const std::uint64_t counter_bytes = geo_.paddedCounters() * kBlockSize;
    hmacBase_ = counterBase_ + counter_bytes;
    const std::uint64_t hmac_bytes = dataBlocks() * kHashBytes;
    treeBase_ = hmacBase_ + alignUp(hmac_bytes, kBlockSize);
    const std::uint64_t tree_bytes = geo_.totalNodes() * kBlockSize;
    deviceBytes_ = treeBase_ + tree_bytes;
}

Region
MemoryMap::classify(Addr addr) const
{
    if (addr < counterBase_)
        return Region::Data;
    if (addr < hmacBase_)
        return Region::Counter;
    if (addr < treeBase_)
        return Region::Hmac;
    return Region::Tree;
}

bmt::NodeRef
MemoryMap::nodeOfAddr(Addr addr) const
{
    if (addr < treeBase_)
        panic("nodeOfAddr on non-tree address");
    std::uint64_t id = (addr - treeBase_) / kBlockSize;
    unsigned level = 1;
    std::uint64_t level_size = 1;
    while (id >= level_size) {
        id -= level_size;
        level_size *= kTreeArity;
        ++level;
    }
    return {level, id};
}

} // namespace amnt::mem
