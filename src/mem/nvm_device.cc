#include "mem/nvm_device.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::mem
{

NvmDevice::NvmDevice(std::uint64_t capacity, const NvmTiming &timing)
    : capacity_(alignUp(capacity, kBlockSize)), timing_(timing)
{
    if (capacity == 0)
        panic("NvmDevice requires non-zero capacity");
}

void
NvmDevice::checkAddr(Addr addr) const
{
    if (addr >= capacity_)
        panic("NVM access beyond capacity: %llx >= %llx",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(capacity_));
}

void
NvmDevice::readBlock(Addr addr, Block &out)
{
    checkAddr(addr);
    ++reads_;
    auto it = store_.find(blockOf(addr));
    if (it == store_.end())
        out.fill(0);
    else
        out = it->second;
}

void
NvmDevice::writeBlock(Addr addr, const Block &data)
{
    checkAddr(addr);
    ++writes_;
    store_[blockOf(addr)] = data;
}

void
NvmDevice::peek(Addr addr, Block &out) const
{
    checkAddr(addr);
    auto it = store_.find(blockOf(addr));
    if (it == store_.end())
        out.fill(0);
    else
        out = it->second;
}

void
NvmDevice::touchRead(Addr addr)
{
    checkAddr(addr);
    ++reads_;
}

void
NvmDevice::touchWrite(Addr addr)
{
    checkAddr(addr);
    ++writes_;
}

bool
NvmDevice::tamper(Addr addr, std::size_t offset, std::uint8_t mask)
{
    checkAddr(addr);
    if (offset >= kBlockSize)
        panic("tamper offset out of range");
    auto [it, fresh] = store_.try_emplace(blockOf(addr));
    if (fresh)
        it->second.fill(0);
    it->second[offset] ^= mask;
    return !fresh;
}

void
NvmDevice::forEachBlockIn(
    Addr lo, Addr hi,
    const std::function<void(Addr, const Block &)> &visitor) const
{
    for (const auto &kv : store_) {
        const Addr addr = blockAddr(kv.first);
        if (addr >= lo && addr < hi)
            visitor(addr, kv.second);
    }
}

void
NvmDevice::crash()
{
    // Contents persist across a crash; nothing to discard here.
}

} // namespace amnt::mem
