#include "mem/nvm_device.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/registry.hh"

namespace amnt::mem
{

NvmDevice::NvmDevice(std::uint64_t capacity, const NvmTiming &timing)
    : capacity_(alignUp(capacity, kBlockSize)), timing_(timing)
{
    if (capacity == 0)
        panic("NvmDevice requires non-zero capacity");
}

bool
NvmDevice::tamper(Addr addr, std::size_t offset, std::uint8_t mask)
{
    checkAddr(addr);
    if (offset >= kBlockSize)
        panic("tamper offset out of range");
    if (mask == 0)
        panic("tamper with a zero mask modifies nothing");
    // try_emplace value-initializes fresh blocks to all-zero: the
    // attack registers a never-written block in the store, so it is
    // visible to recovery scans like any engine-persisted block.
    auto [it, fresh] = store_.try_emplace(blockOf(addr));
    it->second[offset] ^= mask;
    return !fresh;
}

void
NvmDevice::forEachBlockIn(
    Addr lo, Addr hi,
    const std::function<void(Addr, const Block &)> &visitor) const
{
    for (const auto &kv : store_) {
        const Addr addr = blockAddr(kv.first);
        if (addr >= lo && addr < hi)
            visitor(addr, kv.second);
    }
}

void
NvmDevice::crash()
{
    // Contents persist across a crash; nothing to discard here.
}

std::vector<Addr>
NvmDevice::journalRollback()
{
    std::vector<Addr> affected;
    affected.reserve(journalEntries_.size());
    for (const auto &kv : journalEntries_) {
        const BlockId blk = kv.first;
        const JournalEntry &e = kv.second;
        if (e.wasPresent)
            store_.try_emplace(blk).first->second = e.preimage;
        else
            store_.erase(blk);
        affected.push_back(blockAddr(blk));
    }
    journalEntries_.clear();
    ++journalRollbacks_;
    std::sort(affected.begin(), affected.end());
    return affected;
}

void
NvmDevice::registerStats(obs::StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addScalar(prefix + ".reads", [this] { return reads_; });
    reg.addScalar(prefix + ".writes", [this] { return writes_; });
    reg.addScalar(prefix + ".blocks_touched",
                  [this] { return store_.size(); });
}

} // namespace amnt::mem
