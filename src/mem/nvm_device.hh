/**
 * @file
 * Non-volatile (storage-class) main-memory device model.
 *
 * Models the persistence domain of a DDR-based PCM part (Table 1:
 * 305 ns reads, 391 ns writes): any block written here survives
 * crash(); anything held only in on-chip volatile structures does not.
 * Contents are stored sparsely so terabyte-scale address spaces can be
 * simulated with memory proportional to the touched footprint.
 *
 * The device also provides the attack surface of the threat model:
 * tamper() lets tests flip persisted bytes the way a physical attacker
 * with access to the DIMM would.
 */

#ifndef AMNT_MEM_NVM_DEVICE_HH
#define AMNT_MEM_NVM_DEVICE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/flat_map.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace amnt::obs
{
class StatRegistry;
}

namespace amnt::mem
{

/** One 64 B memory block. */
using Block = std::array<std::uint8_t, kBlockSize>;

/** Timing parameters of the device (Table 1 defaults at 2 GHz). */
struct NvmTiming
{
    Cycle readCycles = 610;        ///< 305 ns at 2 GHz.
    Cycle writeCycles = 782;       ///< 391 ns at 2 GHz.
    double readBandwidthGBs = 12.0;  ///< recovery-time model (6 DIMMs).
    double writeBandwidthGBs = 12.0; ///< recovery-time model.
};

/**
 * Sparse, block-granular non-volatile store. Blocks never written
 * read as zero. Every access updates traffic statistics, which the
 * benches report as NVM read/write traffic.
 */
class NvmDevice
{
  public:
    /** @param capacity Device capacity in bytes (block aligned). */
    explicit NvmDevice(std::uint64_t capacity,
                       const NvmTiming &timing = NvmTiming());

    /** Device capacity in bytes. */
    std::uint64_t capacity() const { return capacity_; }

    /** Timing parameters. */
    const NvmTiming &timing() const { return timing_; }

    /** Read the block containing @p addr into @p out. */
    void
    readBlock(Addr addr, Block &out)
    {
        checkAddr(addr);
        ++reads_;
        auto it = store_.find(blockOf(addr));
        if (it == store_.end())
            out.fill(0);
        else
            out = it->second;
    }

    /** Write @p data to the block containing @p addr (persists). */
    void
    writeBlock(Addr addr, const Block &data)
    {
        checkAddr(addr);
        // Persist-op boundary: an injected crash suppresses this
        // write, leaving the previous durable contents in place.
        if (fault_ != nullptr)
            fault_->persistPoint();
        ++writes_;
        if (journal_)
            journalCapture(blockOf(addr));
        // try_emplace + assign: fresh blocks are value-initialized
        // then overwritten, existing blocks take one probe total.
        store_.try_emplace(blockOf(addr)).first->second = data;
    }

    /** Read contents without generating device traffic (model use). */
    void
    peek(Addr addr, Block &out) const
    {
        checkAddr(addr);
        auto it = store_.find(blockOf(addr));
        if (it == store_.end())
            out.fill(0);
        else
            out = it->second;
    }

    /**
     * Account a read without touching contents (timing plane).
     * Content-free and content-full paths share the same statistics.
     */
    void
    touchRead(Addr addr)
    {
        checkAddr(addr);
        ++reads_;
    }

    /** Account a write without touching contents (timing plane). */
    void
    touchWrite(Addr addr)
    {
        checkAddr(addr);
        if (fault_ != nullptr)
            fault_->persistPoint();
        ++writes_;
    }

    /**
     * Simulate a physical attack: XOR @p mask into byte @p offset of
     * the block containing @p addr. A never-written (still all-zero)
     * block is registered in the store by the attack, so every
     * persisted-state scan (recovery sweeps, forEachBlockIn) sees the
     * tampered block exactly like one the engine had persisted — the
     * attacker's write is indistinguishable from a stale persist.
     * @p mask must be non-zero (a zero mask would "touch" the block
     * without modifying it, which no physical attack does).
     * Returns false when the block had never been written.
     */
    bool tamper(Addr addr, std::size_t offset, std::uint8_t mask);

    /**
     * Crash: non-volatile contents are retained by definition. This
     * only snapshots traffic counters so recovery traffic can be
     * reported separately.
     */
    void crash();

    /** Reads since construction. */
    std::uint64_t reads() const { return reads_; }

    /** Writes since construction. */
    std::uint64_t writes() const { return writes_; }

    /** Number of distinct blocks ever written. */
    std::uint64_t blocksTouched() const { return store_.size(); }

    /**
     * Register traffic probes (`<prefix>.reads`, `.writes`,
     * `.blocks_touched`) with a stats registry (obs/registry.hh).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Attach (or detach, with nullptr) a fault-injection domain.
     * Every writeBlock/touchWrite then reports a persist-op boundary
     * to it; disarmed domains are inert (see fault/fault.hh).
     */
    void setFaultDomain(fault::FaultDomain *domain) { fault_ = domain; }

    /** Attached fault domain, nullptr when un-instrumented. */
    fault::FaultDomain *faultDomain() const { return fault_; }

    /**
     * Visit every block ever written whose first byte address lies in
     * [lo, hi). Visitation order is unspecified. Used by recovery
     * scans; does not count as device traffic (callers account the
     * traffic they would generate explicitly).
     */
    void forEachBlockIn(
        Addr lo, Addr hi,
        const std::function<void(Addr, const Block &)> &visitor) const;

    // ------------------------------------------------- epoch journal
    //
    // Pre-image journal for the sharded engine's torn-epoch rollback
    // (shard/sharded_engine.hh): between journalClear() calls, the
    // first content-carrying write to each block records the block's
    // previous durable value (or its absence). journalRollback()
    // restores exactly those pre-images. The journal append is
    // modeled as atomic with the block write it shadows — both land
    // in the same ADR persist burst — so it adds no crash-point
    // boundaries of its own (DESIGN.md §15). Timing-plane touchWrite
    // traffic carries no contents and needs no pre-image.

    /** Start capturing pre-images (idempotent; sharded engines only). */
    void journalEnable() { journal_ = true; }

    /** Whether pre-image capture is on. */
    bool journalEnabled() const { return journal_; }

    /** Commit: the open epoch's pre-images are no longer needed. */
    void journalClear() { journalEntries_.clear(); }

    /** True when content writes happened since the last clear. */
    bool journalDirty() const { return !journalEntries_.empty(); }

    /** Pre-images captured since construction (shard-layer stat). */
    std::uint64_t journalCaptures() const { return journalCaptures_; }

    /** Rollbacks performed since construction (shard-layer stat). */
    std::uint64_t journalRollbacks() const { return journalRollbacks_; }

    /**
     * Undo every content write since the last journalClear():
     * journaled blocks revert to their pre-image, blocks that had
     * never been written are erased from the store (so recovery scans
     * see no phantom all-zero blocks). Generates no device traffic
     * and no persist points — it models what was simply never made
     * durable. Returns the affected block addresses, sorted.
     */
    std::vector<Addr> journalRollback();

  private:
    /** A block's durable state before the open epoch first wrote it. */
    struct JournalEntry
    {
        bool wasPresent = false;
        Block preimage{};
    };

    void
    journalCapture(BlockId blk)
    {
        auto [it, fresh] = journalEntries_.try_emplace(blk);
        if (!fresh)
            return;
        ++journalCaptures_;
        auto s = store_.find(blk);
        if (s != store_.end()) {
            it->second.wasPresent = true;
            it->second.preimage = s->second;
        }
    }

    void
    checkAddr(Addr addr) const
    {
        if (addr >= capacity_)
            panic("NVM access beyond capacity: %llx >= %llx",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(capacity_));
    }

    std::uint64_t capacity_;
    NvmTiming timing_;
    FlatMap<BlockId, Block> store_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    fault::FaultDomain *fault_ = nullptr;

    bool journal_ = false;
    FlatMap<BlockId, JournalEntry> journalEntries_;
    std::uint64_t journalCaptures_ = 0;
    std::uint64_t journalRollbacks_ = 0;
};

} // namespace amnt::mem

#endif // AMNT_MEM_NVM_DEVICE_HH
