/**
 * @file
 * Physical layout of protected data and its security metadata.
 *
 * The device is partitioned into four regions:
 *
 *   [0, data)                    application data (64 B blocks)
 *   [counterBase, +counterBytes) split-counter blocks, one per page
 *   [hmacBase, +hmacBytes)       data HMACs, 8 bytes per data block
 *   [treeBase, +treeBytes)       BMT nodes, level-major order
 *
 * All metadata shares one address space with data so a single
 * metadata cache (and a single NVM device) serves every region, as in
 * the paper's configuration.
 */

#ifndef AMNT_MEM_MEMORY_MAP_HH
#define AMNT_MEM_MEMORY_MAP_HH

#include <cstdint>

#include "bmt/geometry.hh"
#include "common/types.hh"

namespace amnt::mem
{

/** Region tags used for statistics and address classification. */
enum class Region
{
    Data,
    Counter,
    Hmac,
    Tree,
};

/** Computes and answers all address-layout questions. */
class MemoryMap
{
  public:
    /** @param data_bytes Protected data capacity (page aligned). */
    explicit MemoryMap(std::uint64_t data_bytes);

    /** Protected data capacity in bytes. */
    std::uint64_t dataBytes() const { return dataBytes_; }

    /** Number of 64 B data blocks. */
    std::uint64_t dataBlocks() const { return dataBytes_ / kBlockSize; }

    /** Number of pages == number of counter blocks (pre padding). */
    std::uint64_t pages() const { return dataBytes_ / kPageSize; }

    /** Tree geometry over the counter blocks. */
    const bmt::Geometry &geometry() const { return geo_; }

    /** Total device capacity needed (data + all metadata). */
    std::uint64_t deviceBytes() const { return deviceBytes_; }

    /** First byte of the counter region. */
    Addr counterBase() const { return counterBase_; }

    /** First byte of the HMAC region. */
    Addr hmacBase() const { return hmacBase_; }

    /** First byte of the tree-node region. */
    Addr treeBase() const { return treeBase_; }

    /** Which region @p addr falls in. */
    Region classify(Addr addr) const;

    /** Counter-block index for the page containing data @p addr. */
    std::uint64_t
    counterIndexOf(Addr data_addr) const
    {
        return pageOf(data_addr);
    }

    /** Address of the counter block for data @p addr. */
    Addr
    counterAddrOf(Addr data_addr) const
    {
        return counterBase_ + counterIndexOf(data_addr) * kBlockSize;
    }

    /** Address of the HMAC block holding the entry for data @p addr. */
    Addr
    hmacAddrOf(Addr data_addr) const
    {
        const std::uint64_t entry = blockOf(data_addr);
        return hmacBase_ + (entry / kTreeArity) * kBlockSize;
    }

    /** Byte offset of the 8 B HMAC entry inside its HMAC block. */
    static std::size_t
    hmacOffsetOf(Addr data_addr)
    {
        return (blockOf(data_addr) % kTreeArity) * kHashBytes;
    }

    /** Address of a BMT node. */
    Addr
    nodeAddrOf(bmt::NodeRef node) const
    {
        return treeBase_ + geo_.linearId(node) * kBlockSize;
    }

    /** Inverse of nodeAddrOf (addr must be in the tree region). */
    bmt::NodeRef nodeOfAddr(Addr addr) const;

    /** Counter index for an address in the counter region. */
    std::uint64_t
    counterIndexOfCounterAddr(Addr counter_addr) const
    {
        return (counter_addr - counterBase_) / kBlockSize;
    }

  private:
    std::uint64_t dataBytes_;
    bmt::Geometry geo_;
    Addr counterBase_;
    Addr hmacBase_;
    Addr treeBase_;
    std::uint64_t deviceBytes_;
};

} // namespace amnt::mem

#endif // AMNT_MEM_MEMORY_MAP_HH
