/**
 * @file
 * Secure-memory engine (memory encryption engine, MEE) framework.
 *
 * The engine sits at the memory-controller boundary: every read() is
 * an LLC miss arriving from the cache hierarchy and every write() is a
 * dirty write-back (a "data write" in the paper's terminology). The
 * engine maintains:
 *
 *  - counter-mode encryption state (split counters, one block/page),
 *  - per-block data HMACs,
 *  - the Bonsai Merkle Tree over counter blocks,
 *  - a 64 kB on-chip metadata cache shared by all metadata regions,
 *  - the on-chip root register (non-volatile for persistent schemes).
 *
 * Architectural (latest) metadata values live in bmt::TreeState; the
 * NVM device holds the persisted values. The delta between the two is
 * exactly what a crash loses, so each metadata-persistence protocol is
 * expressed as "which updates are written through, and what extra
 * work the slow paths cost". The protocols themselves are plug-in
 * ProtocolStrategy objects (mee/protocol.hh): volatile write-back,
 * strict, leaf, Osiris, Anubis, BMF, Phoenix, STIT, and AMNT (in
 * src/core). The engine owns one strategy and forwards the
 * protocol-specific hooks to it.
 */

#ifndef AMNT_MEE_ENGINE_HH
#define AMNT_MEE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bmt/tree.hh"
#include "cache/cache.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/engines.hh"
#include "mem/memory_map.hh"
#include "mem/nvm_device.hh"
#include "obs/trace.hh"

namespace amnt::obs
{
class StatRegistry;
}

namespace amnt::shard
{
class EngineShard;
}

namespace amnt::mee
{

/** The metadata-persistence protocols evaluated in the paper. */
enum class Protocol
{
    Volatile, ///< write-back baseline, no crash consistency
    Strict,   ///< write-through of the whole ancestral path
    Leaf,     ///< counters + HMACs persisted, tree lazy
    Osiris,   ///< leaf with stop-loss counter persistence
    Anubis,   ///< shadow-table tracking of cached metadata
    Bmf,      ///< Bonsai Merkle Forest persistent root set
    Amnt,     ///< this paper: tree-within-a-tree hybrid
    Phoenix,  ///< epoch-flushed tree of counters [arXiv:1911.01922]
    Stit,     ///< coalesced/pipelined BMT updates [arXiv:2003.04693]
};

/**
 * Number of Protocol enum members. The protocol registry
 * (core/protocol_registry.hh) is tested against this, so adding an
 * enum member without a registry entry is a test failure.
 */
inline constexpr unsigned kProtocolCount = 9;

/** Human-readable protocol name (matches the paper's figure labels). */
const char *protocolName(Protocol p);

/** Engine configuration (defaults = paper Table 1 at 2 GHz). */
struct MeeConfig
{
    std::uint64_t dataBytes = 1ull << 33; ///< 8 GB protected data

    cache::CacheConfig metaCache{"mcache", 64 * 1024, 8, 2};

    Cycle nvmReadCycles = 610;  ///< 305 ns
    Cycle nvmWriteCycles = 782; ///< 391 ns
    Cycle hashCycles = 40;      ///< pipelined MAC unit
    Cycle aesCycles = 40;       ///< pad generation when not overlapped

    /**
     * Fraction of a single posted persist hidden under subsequent
     * execution; serialized chains hide only this much of their first
     * write. See DESIGN.md ("persist cost model").
     */
    double persistOverlap = 0.5;

    crypto::CryptoPlane plane = crypto::CryptoPlane::Fast;
    bool trackContents = false; ///< keep real data bytes (functional)
    std::uint64_t keySeed = 1;

    /**
     * Multi-tenant data-key domains. When non-empty, the protected
     * data range is split into equal slices, one per entry, and slice
     * i's data encryption pads and per-block data MACs are derived
     * from tenantKeySeeds[i] instead of keySeed — so one tenant's key
     * never decrypts or authenticates another tenant's lines. The
     * shared metadata machinery (counters, integrity tree, persisted
     * metadata MACs) stays under the platform keySeed: the tree is a
     * platform structure, confidentiality and data authentication are
     * per-tenant. dataBytes must divide evenly into page-aligned
     * slices. Empty (the default) is the single-domain engine,
     * bit-identical to pre-tenant behaviour.
     */
    std::vector<std::uint64_t> tenantKeySeeds;

    // Protocol-specific knobs.
    unsigned osirisStopLoss = 4;    ///< persist counters every N updates
    unsigned amntSubtreeLevel = 3;  ///< paper default (64 regions)
    unsigned amntInterval = 64;     ///< writes per history interval
    unsigned amntHistoryEntries = 64;
    unsigned bmfRootCacheEntries = 64; ///< 4 kB NV cache
    unsigned bmfInterval = 1024;       ///< writes between prune/merge
    unsigned phoenixEpoch = 64;  ///< writes per dirty-tree flush epoch
    unsigned stitQueueDepth = 16; ///< pending-update pipeline bound
    unsigned stitDrain = 2;       ///< pending persists drained per write
};

/** Outcome of crash recovery. */
struct RecoveryReport
{
    bool success = false;
    std::uint64_t blocksRead = 0;    ///< NVM blocks the procedure reads
    std::uint64_t blocksWritten = 0; ///< NVM blocks it writes back
    std::uint64_t countersRecovered = 0;
    std::uint64_t nodesRecomputed = 0;
    double estimatedMs = 0.0; ///< bandwidth-model time (Table 4)
    std::string detail;
};

class ProtocolStrategy;

/** Context handed to the protocol's persistence hooks. */
struct WriteContext
{
    Addr dataAddr = 0;
    std::uint64_t counterIdx = 0;
    bool overflowed = false; ///< page re-encryption happened
};

/**
 * The secure-memory engine: full read path, write-path skeleton, and
 * the metadata cache/NVM plumbing shared by every protocol. The
 * protocol-specific decisions are delegated to the owned
 * ProtocolStrategy (mee/protocol.hh).
 */
class MemoryEngine
{
  public:
    /**
     * @param config   Engine configuration.
     * @param nvm      Backing device; must cover
     *                 MemoryMap(config.dataBytes).deviceBytes().
     * @param strategy The persistence protocol; attached here.
     */
    MemoryEngine(const MeeConfig &config, mem::NvmDevice &nvm,
                 std::unique_ptr<ProtocolStrategy> strategy);
    ~MemoryEngine();

    MemoryEngine(const MemoryEngine &) = delete;
    MemoryEngine &operator=(const MemoryEngine &) = delete;

    /** Which protocol this engine implements. */
    Protocol protocol() const;

    /** The protocol strategy (tests downcast to concrete types). */
    ProtocolStrategy &strategy() { return *strategy_; }
    const ProtocolStrategy &strategy() const { return *strategy_; }

    /**
     * Service an LLC read miss for the block at @p addr.
     * @param out Optional plaintext destination (functional plane).
     * @return critical-path latency in cycles.
     */
    Cycle read(Addr addr, std::uint8_t *out = nullptr);

    /**
     * Service a data write arriving at memory for block @p addr.
     * @param data Optional plaintext (functional plane).
     * @return critical-path latency in cycles.
     */
    Cycle write(Addr addr, const std::uint8_t *data = nullptr);

    /**
     * Power failure: all volatile on-chip state (metadata cache,
     * architectural metadata, volatile registers) is lost. NVM and
     * non-volatile registers survive. The engine must not be used
     * again until recover() succeeds.
     */
    void crash();

    /** Rebuild a trusted state from NVM + NV registers. */
    RecoveryReport recover();

    /** Number of integrity violations detected so far. */
    std::uint64_t violations() const { return violations_; }

    /** Aggregate statistics. */
    const StatGroup &stats() const { return stats_; }

    /** Mutable statistics (registry federation / reset-in-place). */
    StatGroup &stats() { return stats_; }

    /** Event tracer for this engine's track (obs/trace.hh). */
    obs::Tracer &tracer() { return trace_; }

    /**
     * Dotted registry subpath of this engine: the protocol name by
     * default; AMNT refines it with the subtree level ("amnt.l3") so
     * sweep dumps separate configurations (DESIGN.md §11).
     */
    std::string statPath() const;

    /**
     * Federate this engine's stats under `<prefix>.<statPath()>.*`
     * plus the metadata cache under `<prefix>.mcache.*` and the
     * observability histograms (persist-chain depth, metadata-cache
     * dirty occupancy, host-side crypto batch times under `host.`).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix);

    /** Metadata cache (for hit-rate reporting). */
    const cache::Cache &metaCache() const { return mcache_; }

    /** Address map. */
    const mem::MemoryMap &map() const { return map_; }

    /** Backing device. */
    mem::NvmDevice &nvm() { return *nvm_; }

    /** Architectural metadata state (tests and recovery checks). */
    const bmt::TreeState &treeState() const { return *tree_; }

    /** Configuration. */
    const MeeConfig &config() const { return config_; }

    /**
     * On-chip root register value (testing). Architecturally the
     * register refreshes on every write; the simulator computes the
     * equivalent value lazily — live from the tree while running,
     * from the crash-time snapshot afterwards.
     */
    std::uint64_t
    rootRegister() const
    {
        return crashed_ ? rootRegister_ : tree_->rootHash();
    }

    /**
     * Crash-staleness audit: metadata blocks whose persisted (NVM)
     * bytes differ from the architectural latest value. At a crash
     * these are exactly the blocks that would be lost; tests use this
     * to prove e.g. that AMNT's stale set is confined to the fast
     * subtree.
     */
    std::vector<Addr> staleMetadataBlocks() const;

  protected:
    /**
     * Ensure @p maddr is resident in the metadata cache, fetching
     * (and verifying against the trust chain) on a miss.
     * @param misses Incremented when a fetch was needed; the caller
     *        charges one parallel NVM read round when misses > 0.
     * @return extra critical-path latency added by protocol hooks
     *         (e.g. Anubis shadow-table persists on inserts).
     */
    Cycle ensureResident(Addr maddr, unsigned &misses);

    /**
     * Fetch-and-verify the counter trust chain for @p counterIdx:
     * counter block plus ancestor nodes up to the first cached one.
     * @param misses Incremented per fetched block in this round.
     * @return extra critical-path latency from protocol hooks.
     */
    Cycle ensureCounterChain(std::uint64_t counterIdx, unsigned &misses);

    /** Mark a resident metadata block dirty (lazy write-back). */
    void markDirty(Addr maddr);

    /** Persist the latest bytes of @p maddr and clean its line. */
    void writeThrough(Addr maddr);

    /**
     * Batch writeThrough of @p n metadata addresses: identical final
     * state and statistics, but all persisted-block MACs go through
     * one HashEngine::mac64xN burst. Persist policies hand their full
     * ordered write set (counter + HMAC + path nodes) here.
     */
    void writeThroughMany(const Addr *addrs, std::size_t n);

    /** Write metadata bytes to NVM and record their persisted MAC. */
    void persistBytes(Addr maddr, const mem::Block &bytes);

    /**
     * Batch persistBytes: addrs[i] receives *blocks[i]. The persisted
     * MACs are computed with one batched burst per chunk; used by the
     * bulk restore paths (recovery rebuild, Anubis shadow restore).
     */
    void persistBytesMany(const Addr *addrs,
                          const mem::Block *const *blocks,
                          std::size_t n);

    /** Latest architectural bytes of a metadata block. */
    mem::Block latestBytes(Addr maddr) const;

    /** Critical-path cost of @p serialized_writes ordered persists. */
    Cycle
    persistCost(unsigned serialized_writes) const
    {
        if (serialized_writes == 0)
            return 0;
        const double w = static_cast<double>(serialized_writes) -
                         config_.persistOverlap;
        return static_cast<Cycle>(
            w * static_cast<double>(config_.nvmWriteCycles));
    }

    /** Tree-path node refs for a counter, deepest first. */
    std::vector<bmt::NodeRef> pathOf(std::uint64_t counterIdx) const;

    /**
     * pathOf into a reusable buffer (cleared first). Persist policies
     * run once per simulated write; passing pathScratch_ here avoids
     * a heap allocation on that hot path.
     */
    void pathOf(std::uint64_t counterIdx,
                std::vector<bmt::NodeRef> &out) const;

    /** Record an integrity violation. */
    void flagViolation(const char *what, Addr addr);

    /** Attached fault domain (nullptr when un-instrumented). */
    fault::FaultDomain *
    faultDomain() const
    {
        return nvm_->faultDomain();
    }

    /**
     * Report a non-device persist op (NV on-chip register or cache
     * update) as a crash-point boundary. No-op when un-instrumented
     * or inside a commit group.
     */
    void
    faultPersistPoint()
    {
        if (fault::FaultDomain *d = nvm_->faultDomain())
            d->persistPoint();
    }

    /** Update the on-chip root register from architectural state. */
    void
    refreshRootRegister()
    {
        rootRegister_ = tree_->rootHash();
    }

    /**
     * Rebuild architectural state from persisted counters and compare
     * with the NV root register; shared by leaf-style recoveries.
     * Traffic for reading @p counters_read counter blocks and writing
     * the recomputed nodes is added to @p report.
     */
    void rebuildAndVerify(RecoveryReport &report);

    /** Convert recovery traffic to milliseconds (Table 4 model). */
    double recoveryMs(std::uint64_t blocks_read,
                      std::uint64_t blocks_written) const;

    /**
     * Crypto suite for data blocks at @p data_addr: the tenant
     * domain's suite under multi-tenant keying, the platform suite
     * otherwise. Metadata always uses crypto_.
     */
    const crypto::CryptoSuite &dataSuite(Addr data_addr) const;

    MeeConfig config_;
    mem::MemoryMap map_;
    mem::NvmDevice *nvm_;
    crypto::CryptoSuite crypto_;

    /** Per-tenant data-key suites (MeeConfig::tenantKeySeeds). */
    std::vector<crypto::CryptoSuite> tenantCrypto_;

    /** Bytes per tenant slice; 0 when single-domain. */
    std::uint64_t tenantSliceBytes_ = 0;
    std::unique_ptr<bmt::TreeState> tree_;
    cache::Cache mcache_;
    StatGroup stats_;

    /** Per-engine event tracer (no-op unless AMNT_TRACE is set). */
    obs::Tracer trace_;

    /**
     * Serialized persists per write-through chain (how deep the
     * ordered persist chains the protocol issues are).
     */
    Histogram persistChainDepth_{1.0, 4097.0, 48,
                                 Histogram::Scale::Log};

    /**
     * Metadata-cache dirty-line occupancy sampled at every data write
     * (the engine's write-queue residency). Sized from the cache
     * geometry in the constructor.
     */
    Histogram mcacheDirtyOccupancy_;

    /**
     * Host-side wall-clock nanoseconds per batched MAC burst. Only
     * recorded under AMNT_OBS_TIMING=1 (host times are inherently
     * nondeterministic); registered under the `host.` path prefix.
     */
    Histogram hostCryptoBatchNs_{1.0, 1e9, 90, Histogram::Scale::Log};

    /** Latest HMAC-block bytes (architectural). */
    FlatMap<Addr, mem::Block> hmacLatest_;

    /**
     * MAC of the bytes last persisted per metadata block; fetched
     * blocks are verified against this (any physical tampering of
     * NVM contents diverges from it). Lives conceptually in the
     * integrity machinery, not in NVM, and survives crashes because
     * it describes persistent state.
     */
    FlatMap<Addr, std::uint64_t> persistedMac_;

    /** Plaintext contents when trackContents (functional plane). */
    FlatMap<BlockId, mem::Block> plaintext_;

    /** Reusable path buffer for persist policies (see pathOf). */
    std::vector<bmt::NodeRef> pathScratch_;

    /** On-chip root register (NV except for Volatile). */
    std::uint64_t rootRegister_ = 0;

    /** Set between crash() and a successful recover(). */
    bool crashed_ = false;

    std::uint64_t violations_ = 0;

  private:
    /** The plug-in persistence protocol (mee/protocol.hh). */
    std::unique_ptr<ProtocolStrategy> strategy_;

    friend class ProtocolStrategy;

    /**
     * The sharded scale-out wrapper (shard/sharded_engine.hh) rolls
     * torn epochs back to the last durable commit: it restores the
     * persisted-MAC table, the functional plaintext pre-images and
     * the NV root register to their committed values between crash()
     * and recover().
     */
    friend class shard::EngineShard;

    // Per-access statistics resolved once (see StatGroup::counter).
    std::uint64_t *dataReads_;
    std::uint64_t *dataWrites_;
    std::uint64_t *metaFetches_;
    std::uint64_t *metaWritebacks_;
    std::uint64_t *persistWrites_;

    /** Handle a (possibly dirty) eviction returned by the cache. */
    void handleEviction(const cache::AccessResult &res);

    /** Verify fetched NVM bytes for a metadata block. */
    void verifyFetched(Addr maddr, const mem::Block &bytes);

    /** Write path: counter increment + overflow + HMAC update. */
    Cycle writeCommon(Addr addr, const std::uint8_t *data,
                      WriteContext &ctx);

    /** Re-encrypt an entire page after a minor-counter overflow. */
    Cycle reencryptPage(std::uint64_t counterIdx);

    /** Compute the HMAC entry for data block @p addr. */
    std::uint64_t dataMac(Addr addr, const std::uint8_t *cipher) const;

    /** Update the HMAC entry (architectural) for @p addr. */
    void updateHmacEntry(Addr addr);
};

} // namespace amnt::mee

#endif // AMNT_MEE_ENGINE_HH
