#include "mee/baselines.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::mee
{

// ---------------------------------------------------------------- Volatile

RecoveryReport
VolatileStrategy::recover()
{
    RecoveryReport report;
    rebuildAndVerify(report);
    report.estimatedMs =
        recoveryMs(report.blocksRead, report.blocksWritten);
    report.detail = "volatile scheme: root register lost at power-off";
    return report;
}

// ------------------------------------------------------------------ Strict

Cycle
StrictStrategy::persist(const WriteContext &ctx)
{
    // Read-modify-write of every ancestral node, then an ordered
    // write-through of data + counter + HMAC + the whole path. The
    // serialization is what crash atomicity costs here, and is why
    // strict persistence runs up to 2.4x slower than volatile.
    unsigned misses = 0;
    Cycle hook = 0;
    pathOf(ctx.counterIdx, pathScratch());
    const auto &path = pathScratch();
    for (const auto &ref : path)
        hook += ensureResident(map().nodeAddrOf(ref), misses);
    Cycle lat = misses > 0 ? config().nvmReadCycles : 0;

    // Counter and HMAC persist atomically with the data write; the
    // ancestral path follows in postCommit — each node in the ordered
    // chain is its own crash point, and a lost tail is recomputable
    // from the (already persisted) counters.
    const Addr wt[2] = {map().counterBase() +
                            ctx.counterIdx * kBlockSize,
                        map().hmacAddrOf(ctx.dataAddr)};
    writeThroughMany(wt, 2);

    lat += persistCost(3 + static_cast<unsigned>(path.size()));
    return lat + hook;
}

Cycle
StrictStrategy::postCommit(const WriteContext &ctx)
{
    pathOf(ctx.counterIdx, pathScratch());
    Addr wt[bmt::Geometry::kMaxPathNodes];
    std::size_t nwt = 0;
    for (const auto &ref : pathScratch())
        wt[nwt++] = map().nodeAddrOf(ref);
    writeThroughMany(wt, nwt);
    return 0; // charged in persist's persistCost
}

RecoveryReport
StrictStrategy::recover()
{
    RecoveryReport report;
    rebuildAndVerify(report);
    // All metadata was persisted eagerly: recovery does no memory
    // work beyond re-loading the (already consistent) state.
    report.blocksRead = 0;
    report.blocksWritten = 0;
    report.nodesRecomputed = 0;
    report.countersRecovered = 0;
    report.estimatedMs = 0.0;
    report.detail = "strict persistence: metadata already consistent";
    return report;
}

// -------------------------------------------------------------------- Leaf

Cycle
LeafStrategy::persist(const WriteContext &ctx)
{
    // Counter and HMAC persist atomically with the data write (one
    // parallel burst to independent banks); the root register update
    // is on-chip. Tree nodes stay lazy in the metadata cache.
    writeThrough(map().counterBase() + ctx.counterIdx * kBlockSize);
    writeThrough(map().hmacAddrOf(ctx.dataAddr));
    return persistCost(1);
}

RecoveryReport
LeafStrategy::recover()
{
    RecoveryReport report;
    rebuildAndVerify(report);
    report.estimatedMs =
        recoveryMs(report.blocksRead, report.blocksWritten);
    report.detail = "leaf persistence: full inner-tree recompute";
    return report;
}

// ------------------------------------------------------------------ Osiris

Cycle
OsirisStrategy::persist(const WriteContext &ctx)
{
    writeThrough(map().hmacAddrOf(ctx.dataAddr));
    return persistCost(1);
}

Cycle
OsirisStrategy::postCommit(const WriteContext &ctx)
{
    // Stop-loss: the counter reaches NVM only every N updates (or at
    // a minor overflow), and NOT atomically with the data write — a
    // crash on this boundary loses at most stop-loss minor
    // increments, exactly what recovery re-derives by HMAC trial.
    unsigned &since = sincePersist_[ctx.counterIdx];
    ++since;
    if (ctx.overflowed || since >= config().osirisStopLoss) {
        writeThrough(map().counterBase() +
                     ctx.counterIdx * kBlockSize);
        since = 0;
    }
    return 0;
}

RecoveryReport
OsirisStrategy::recover()
{
    RecoveryReport report;
    sincePersist_.clear();

    // Phase 1: find every data block with a persisted HMAC entry and
    // re-derive its minor counter by trying the at-most-stop-loss
    // candidate values against the stored HMAC.
    struct Recovered
    {
        bmt::CounterBlock cb;
        bool loaded = false;
    };
    std::unordered_map<std::uint64_t, Recovered> counters;
    bool all_matched = true;

    nvm().forEachBlockIn(
        map().hmacBase(), map().treeBase(),
        [&](Addr haddr, const mem::Block &hblock) {
            ++report.blocksRead; // the HMAC block itself
            for (unsigned slot = 0; slot < kTreeArity; ++slot) {
                const std::uint64_t entry =
                    load64le(hblock.data() + slot * kHashBytes);
                if (entry == 0)
                    continue;
                const std::uint64_t data_block =
                    (haddr - map().hmacBase()) / kBlockSize *
                        kTreeArity +
                    slot;
                const Addr daddr = blockAddr(data_block);
                const std::uint64_t cidx = map().counterIndexOf(daddr);

                auto &rec = counters[cidx];
                if (!rec.loaded) {
                    mem::Block raw;
                    nvm().peek(map().counterBase() + cidx * kBlockSize,
                               raw);
                    rec.cb = bmt::CounterBlock::deserialize(raw);
                    rec.loaded = true;
                    ++report.blocksRead; // the stale counter block
                }

                mem::Block cipher{};
                const std::uint8_t *cipher_p = nullptr;
                if (config().trackContents) {
                    nvm().peek(daddr, cipher);
                    cipher_p = cipher.data();
                }
                ++report.blocksRead; // the data block for the trial

                const unsigned minor_slot = static_cast<unsigned>(
                    data_block % kBlocksPerPage);
                const std::uint8_t base = rec.cb.minors[minor_slot];
                // Trial-MAC every stop-loss candidate in one batched
                // burst, then pick the first match (same result as the
                // early-exit scalar loop).
                crypto::MacRequest treqs[kMinorCounterMax + 1u];
                unsigned ncand = 0;
                for (unsigned d = 0; d <= config().osirisStopLoss;
                     ++d) {
                    const unsigned v = base + d;
                    if (v > kMinorCounterMax)
                        break;
                    const std::uint64_t tweak =
                        (daddr << 16) ^ (rec.cb.major << 7) ^ v;
                    if (cipher_p == nullptr)
                        treqs[ncand] = {"", 0, tweak};
                    else
                        treqs[ncand] = {cipher_p, kBlockSize, tweak};
                    ++ncand;
                }
                std::uint64_t cand[kMinorCounterMax + 1u];
                dataSuite(daddr).hash->mac64xN(treqs, ncand, cand);
                trace().instant(obs::EventClass::CryptoBatch, ncand);
                bool matched = false;
                for (unsigned d = 0; d < ncand; ++d) {
                    if (cand[d] == entry) {
                        rec.cb.minors[minor_slot] =
                            static_cast<std::uint8_t>(base + d);
                        matched = true;
                        break;
                    }
                }
                if (!matched)
                    all_matched = false;
            }
        });

    // Phase 2: persist the recovered counters, then rebuild the tree
    // from them and compare with the non-volatile root register.
    for (const auto &kv : counters) {
        persistBytes(map().counterBase() + kv.first * kBlockSize,
                     kv.second.cb.serialize());
        ++report.blocksWritten;
    }
    rebuildAndVerify(report);
    report.success = report.success && all_matched;
    report.estimatedMs =
        recoveryMs(report.blocksRead, report.blocksWritten);
    report.detail = "osiris: stop-loss counter trial + full recompute";
    return report;
}

} // namespace amnt::mee
