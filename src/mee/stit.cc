#include "mee/stit.hh"

#include <algorithm>

#include "common/log.hh"

namespace amnt::mee
{

void
StitStrategy::onAttach()
{
    if (config().stitQueueDepth == 0)
        fatal("STIT queue depth must be non-zero");
    if (config().stitDrain == 0)
        fatal("STIT drain rate must be non-zero");
}

void
StitStrategy::enqueue(Addr maddr)
{
    if (pendingSet_.count(maddr) != 0) {
        // An update to this node is already queued; the eventual
        // drain writes the node's latest bytes, so the new update
        // rides along for free.
        stats().inc("stit_coalesced");
        return;
    }
    pending_.push_back(maddr);
    pendingSet_.insert(maddr);
    stats().inc("stit_enqueues");
}

void
StitStrategy::drainOne()
{
    const Addr maddr = pending_.front();
    pending_.pop_front();
    pendingSet_.erase(maddr);
    // One posted write retires every update coalesced into the entry
    // (writeThrough persists the node's latest architectural bytes).
    writeThrough(maddr);
    stats().inc("stit_drains");
}

Cycle
StitStrategy::persist(const WriteContext &ctx)
{
    // Counter + HMAC persist with the data write in one parallel
    // burst — the queue never holds a counter, so nothing
    // unrecomputable is ever pending.
    const Addr wt[2] = {map().counterBase() +
                            ctx.counterIdx * kBlockSize,
                        map().hmacAddrOf(ctx.dataAddr)};
    writeThroughMany(wt, 2);

    // The ancestral node updates enter the pipeline instead of the
    // critical path; bursty same-subtree writes coalesce here.
    pathOf(ctx.counterIdx, pathScratch());
    for (const auto &ref : pathScratch())
        enqueue(map().nodeAddrOf(ref));

    return persistCost(1);
}

Cycle
StitStrategy::postCommit(const WriteContext &)
{
    // Steady-state drain, then enforce the occupancy cap. Both run
    // outside the commit group: each drained write is a recomputable
    // node, i.e. an ordinary crash boundary.
    unsigned drains = config().stitDrain;
    while (drains-- > 0 && !pending_.empty())
        drainOne();
    while (pending_.size() > config().stitQueueDepth)
        drainOne();
    return 0; // posted writes, off the critical path
}

void
StitStrategy::onMetaEvict(Addr maddr, bool)
{
    // The victim leaves the cache and the generic eviction path
    // persists its latest bytes; a pending entry for it would only
    // repeat that write, so retire it here (inside the eviction's
    // commit scope).
    if (pendingSet_.erase(maddr) != 0) {
        pending_.erase(
            std::find(pending_.begin(), pending_.end(), maddr));
        stats().inc("stit_evict_retires");
    }
}

void
StitStrategy::onCrash()
{
    // The pending queue is volatile: every queued update is lost,
    // and every one of them is a recomputable node.
    stats().counter("stit_lost_at_crash") = pending_.size();
    pending_.clear();
    pendingSet_.clear();
}

RecoveryReport
StitStrategy::recover()
{
    RecoveryReport report;
    rebuildAndVerify(report);
    report.estimatedMs =
        recoveryMs(report.blocksRead, report.blocksWritten);
    report.detail = "stit: inner-tree recompute from coalesced leaves";
    return report;
}

} // namespace amnt::mee
