#include "common/log.hh"
#include "mee/anubis.hh"
#include "mee/baselines.hh"
#include "mee/bmf.hh"
#include "mee/engine.hh"

namespace amnt::mee
{

std::unique_ptr<MemoryEngine>
MemoryEngine::makeBaseline(Protocol p, const MeeConfig &config,
                           mem::NvmDevice &nvm)
{
    switch (p) {
      case Protocol::Volatile:
        return std::make_unique<VolatileEngine>(config, nvm);
      case Protocol::Strict:
        return std::make_unique<StrictEngine>(config, nvm);
      case Protocol::Leaf:
        return std::make_unique<LeafEngine>(config, nvm);
      case Protocol::Osiris:
        return std::make_unique<OsirisEngine>(config, nvm);
      case Protocol::Anubis:
        return std::make_unique<AnubisEngine>(config, nvm);
      case Protocol::Bmf:
        return std::make_unique<BmfEngine>(config, nvm);
      case Protocol::Amnt:
        fatal("use core::makeEngine for the AMNT protocol");
    }
    panic("unknown protocol");
}

} // namespace amnt::mee
