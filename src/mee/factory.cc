#include "common/log.hh"
#include "mee/anubis.hh"
#include "mee/baselines.hh"
#include "mee/bmf.hh"
#include "mee/phoenix.hh"
#include "mee/protocol.hh"
#include "mee/stit.hh"

namespace amnt::mee
{

std::unique_ptr<ProtocolStrategy>
makeStrategy(Protocol p, const MeeConfig &config)
{
    (void)config; // mee-layer strategies read knobs after attach()
    switch (p) {
      case Protocol::Volatile:
        return std::make_unique<VolatileStrategy>();
      case Protocol::Strict:
        return std::make_unique<StrictStrategy>();
      case Protocol::Leaf:
        return std::make_unique<LeafStrategy>();
      case Protocol::Osiris:
        return std::make_unique<OsirisStrategy>();
      case Protocol::Anubis:
        return std::make_unique<AnubisStrategy>();
      case Protocol::Bmf:
        return std::make_unique<BmfStrategy>();
      case Protocol::Phoenix:
        return std::make_unique<PhoenixStrategy>();
      case Protocol::Stit:
        return std::make_unique<StitStrategy>();
      case Protocol::Amnt:
        fatal("AMNT lives in the core layer; use the protocol "
              "registry (core::makeEngine)");
    }
    panic("unknown protocol");
}

} // namespace amnt::mee
