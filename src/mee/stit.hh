/**
 * @file
 * STIT [Yuan, Xu, Wang & Sha, arXiv:2003.04693]: a coalesced BMT
 * update pipeline.
 *
 * Counters and HMAC entries persist atomically with every data write
 * (so the tree is always recomputable from persisted leaves); the
 * ancestral node updates are *enqueued* into a small on-chip pending
 * queue instead of being written through on the critical path. Writes
 * that share ancestors — the common case under bursty same-subtree
 * traffic — coalesce into existing queue entries, so one eventual
 * NVM write retires many logical updates. The queue drains a few
 * entries per write (MeeConfig::stitDrain) and caps its occupancy at
 * MeeConfig::stitQueueDepth by draining the oldest entries first.
 * The queue itself is volatile: a crash loses only recomputable node
 * updates, never a counter, so every drain is an ordinary crash
 * boundary.
 */

#ifndef AMNT_MEE_STIT_HH
#define AMNT_MEE_STIT_HH

#include <deque>
#include <unordered_set>

#include "mee/protocol.hh"

namespace amnt::mee
{

/** Coalesced pending-queue node persistence. */
class StitStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Stit; }

    CrashProfile
    crashProfile() const override
    {
        return {true, true,
                "counter+hmac commit-atomic; node updates coalesced "
                "in a bounded volatile FIFO, drained post-commit "
                "(recomputable)"};
    }

    Cycle persist(const WriteContext &ctx) override;

    /** Drain a few pending node updates (posted writes). */
    Cycle postCommit(const WriteContext &ctx) override;

    void onMetaEvict(Addr maddr, bool dirty) override;

    void onCrash() override;

    RecoveryReport recover() override;

    /** Current pending-queue occupancy (testing). */
    std::size_t pendingUpdates() const { return pending_.size(); }

    /** True iff @p maddr has a pending coalesced update (testing). */
    bool
    isPending(Addr maddr) const
    {
        return pendingSet_.count(maddr) != 0;
    }

    /** Updates absorbed by coalescing (testing). */
    std::uint64_t coalesced() const
    {
        return stats().get("stit_coalesced");
    }

  protected:
    void onAttach() override;

  private:
    /** Enqueue one node update, coalescing with a pending entry. */
    void enqueue(Addr maddr);

    /** Retire the oldest pending entry with one NVM write. */
    void drainOne();

    /** FIFO of node addresses awaiting their coalesced write. */
    std::deque<Addr> pending_;
    /** Membership index of pending_ for O(1) coalescing. */
    std::unordered_set<Addr> pendingSet_;
};

} // namespace amnt::mee

#endif // AMNT_MEE_STIT_HH
