/**
 * @file
 * Phoenix [Alwadi, Zubair, Mohaisen & Awad, arXiv:1911.01922]:
 * persistently secure tree of counters with epoch-batched node
 * persistence.
 *
 * Counters and HMAC entries persist atomically with every data write
 * (leaf-style), so the tree is always recomputable from persisted
 * leaves. Inner BMT nodes stay lazy in the metadata cache and are
 * flushed in bulk once per *epoch* (a configurable write count,
 * MeeConfig::phoenixEpoch): between flushes the stale node set in NVM
 * is bounded by one epoch's dirty lines, which is what lets Phoenix
 * restore — rather than fully recompute — the tree after a crash.
 * Each epoch flush is a posted bulk write of recomputable nodes, so
 * every flush boundary is an ordinary crash point.
 */

#ifndef AMNT_MEE_PHOENIX_HH
#define AMNT_MEE_PHOENIX_HH

#include "mee/protocol.hh"

namespace amnt::mee
{

/** Epoch-flushed leaf persistence (tree-of-counters restore). */
class PhoenixStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Phoenix; }

    CrashProfile
    crashProfile() const override
    {
        return {true, true,
                "counter+hmac commit-atomic; tree nodes deferred to "
                "the epoch flush (recomputable, one epoch of "
                "staleness max)"};
    }

    Cycle persist(const WriteContext &ctx) override;

    /** Epoch boundary check: bulk-flush dirty tree nodes. */
    Cycle postCommit(const WriteContext &ctx) override;

    void onCrash() override;

    RecoveryReport recover() override;

    /** Writes since the last epoch flush (testing). */
    std::uint64_t writesThisEpoch() const { return writesThisEpoch_; }

    /** Epoch flushes performed so far (testing). */
    std::uint64_t epochFlushes() const
    {
        return stats().get("phoenix_epoch_flushes");
    }

  protected:
    void onAttach() override;

  private:
    /** Write through every dirty tree node in the metadata cache. */
    void epochFlush();

    std::uint64_t writesThisEpoch_ = 0;

    /** Dirty tree lines latched at the crash (recovery work model). */
    std::uint64_t staleNodesAtCrash_ = 0;
};

} // namespace amnt::mee

#endif // AMNT_MEE_PHOENIX_HH
