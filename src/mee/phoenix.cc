#include "mee/phoenix.hh"

#include <unordered_set>
#include <vector>

#include "common/log.hh"

namespace amnt::mee
{

void
PhoenixStrategy::onAttach()
{
    if (config().phoenixEpoch == 0)
        fatal("Phoenix epoch must be non-zero");
}

Cycle
PhoenixStrategy::persist(const WriteContext &ctx)
{
    // Leaf-style: counter + HMAC persist with the data write in one
    // parallel burst; the inner tree stays lazy until the epoch ends.
    const Addr wt[2] = {map().counterBase() +
                            ctx.counterIdx * kBlockSize,
                        map().hmacAddrOf(ctx.dataAddr)};
    writeThroughMany(wt, 2);
    return persistCost(1);
}

Cycle
PhoenixStrategy::postCommit(const WriteContext &)
{
    // The epoch flush runs between writes, outside the commit group:
    // its node persists are recomputable, so each is an ordinary
    // crash boundary.
    if (++writesThisEpoch_ >= config().phoenixEpoch) {
        writesThisEpoch_ = 0;
        epochFlush();
    }
    return 0; // posted bulk writes, off the critical path
}

void
PhoenixStrategy::epochFlush()
{
    // A write dirties only its leaf tree node; ancestors change
    // architecturally but stay clean in the cache until a child is
    // evicted. The flush therefore persists the ancestor closure of
    // every dirty node — otherwise upper levels would stay stale
    // across epochs and the restore bound would be a lie.
    std::unordered_set<Addr> seen;
    std::vector<Addr> flush;
    mcache().forEachLine([&](Addr addr, bool dirty) {
        if (!dirty || map().classify(addr) != mem::Region::Tree)
            return;
        bmt::NodeRef ref = map().nodeOfAddr(addr);
        while (true) {
            const Addr naddr = map().nodeAddrOf(ref);
            if (!seen.insert(naddr).second)
                break; // this path is already queued
            flush.push_back(naddr);
            if (ref.level == 1)
                break;
            ref = bmt::Geometry::parentOf(ref);
        }
    });
    writeThroughMany(flush.data(), flush.size());
    stats().inc("phoenix_epoch_flushes");
}

void
PhoenixStrategy::onCrash()
{
    // Latch how many tree nodes were stale at power-off — at most one
    // epoch's worth of dirtied paths, which bounds the restore below.
    staleNodesAtCrash_ = 0;
    tree().forEachNode([&](bmt::NodeRef ref, const mem::Block &b) {
        mem::Block persisted;
        nvm().peek(map().nodeAddrOf(ref), persisted);
        if (persisted != b)
            ++staleNodesAtCrash_;
    });
    writesThisEpoch_ = 0;
}

RecoveryReport
PhoenixStrategy::recover()
{
    RecoveryReport report;

    // Functional verification: rebuild from the (always current)
    // persisted counters and compare with the NV root register.
    RecoveryReport scratch;
    rebuildAndVerify(scratch);
    report.success = scratch.success;
    report.countersRecovered = scratch.countersRecovered;

    // Work model: only nodes dirtied since the last epoch flush were
    // stale, so the restore reads the persisted counters and rewrites
    // just that epoch-bounded node set.
    report.nodesRecomputed = staleNodesAtCrash_;
    report.blocksRead = report.countersRecovered + staleNodesAtCrash_;
    report.blocksWritten = staleNodesAtCrash_;
    report.estimatedMs =
        recoveryMs(report.blocksRead, report.blocksWritten);
    report.detail = "phoenix: epoch-bounded node restore";
    return report;
}

} // namespace amnt::mee
