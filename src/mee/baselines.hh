/**
 * @file
 * The static metadata-persistence baselines of the paper:
 *
 *  - VolatileEngine: write-back secure memory with no crash
 *    consistency. This is the normalization baseline of every figure.
 *  - StrictEngine: every metadata update on the ancestral path is
 *    written through to NVM (fast recovery, slow runtime).
 *  - LeafEngine: counters + HMACs persist atomically with the data
 *    write; tree nodes are lazy (fast runtime, slow recovery).
 *  - OsirisEngine: leaf with stop-loss counter persistence every N
 *    updates; recovery re-derives counters by HMAC trial [Ye et al.].
 */

#ifndef AMNT_MEE_BASELINES_HH
#define AMNT_MEE_BASELINES_HH

#include <unordered_map>

#include "mee/engine.hh"

namespace amnt::mee
{

/** Write-back baseline; not crash consistent. */
class VolatileEngine : public MemoryEngine
{
  public:
    using MemoryEngine::MemoryEngine;

    Protocol protocol() const override { return Protocol::Volatile; }

    /** The root register is volatile here: it is lost on crash. */
    void
    crash() override
    {
        MemoryEngine::crash();
        rootRegister_ = 0;
    }

    RecoveryReport recover() override;

  protected:
    Cycle
    persistPolicy(const WriteContext &) override
    {
        return 0;
    }
};

/** Strict metadata persistence: write-through of the whole path. */
class StrictEngine : public MemoryEngine
{
  public:
    using MemoryEngine::MemoryEngine;

    Protocol protocol() const override { return Protocol::Strict; }

    RecoveryReport recover() override;

  protected:
    Cycle persistPolicy(const WriteContext &ctx) override;

    /** Ancestral-path persists (recomputable; not commit-atomic). */
    Cycle postCommit(const WriteContext &ctx) override;
};

/** Leaf metadata persistence: counters + HMACs write through. */
class LeafEngine : public MemoryEngine
{
  public:
    using MemoryEngine::MemoryEngine;

    Protocol protocol() const override { return Protocol::Leaf; }

    RecoveryReport recover() override;

  protected:
    Cycle persistPolicy(const WriteContext &ctx) override;
};

/** Osiris: stop-loss counter persistence. */
class OsirisEngine : public MemoryEngine
{
  public:
    using MemoryEngine::MemoryEngine;

    Protocol protocol() const override { return Protocol::Osiris; }

    RecoveryReport recover() override;

  protected:
    Cycle persistPolicy(const WriteContext &ctx) override;

    /** Stop-loss counter persists (deferred; not commit-atomic). */
    Cycle postCommit(const WriteContext &ctx) override;

  private:
    /** Updates since the last persist, per counter block. */
    std::unordered_map<std::uint64_t, unsigned> sincePersist_;
};

} // namespace amnt::mee

#endif // AMNT_MEE_BASELINES_HH
