/**
 * @file
 * The static metadata-persistence baselines of the paper, as plug-in
 * ProtocolStrategy objects (mee/protocol.hh):
 *
 *  - VolatileStrategy: write-back secure memory with no crash
 *    consistency. This is the normalization baseline of every figure.
 *  - StrictStrategy: every metadata update on the ancestral path is
 *    written through to NVM (fast recovery, slow runtime).
 *  - LeafStrategy: counters + HMACs persist atomically with the data
 *    write; tree nodes are lazy (fast runtime, slow recovery).
 *  - OsirisStrategy: leaf with stop-loss counter persistence every N
 *    updates; recovery re-derives counters by HMAC trial [Ye et al.].
 */

#ifndef AMNT_MEE_BASELINES_HH
#define AMNT_MEE_BASELINES_HH

#include <unordered_map>

#include "mee/protocol.hh"

namespace amnt::mee
{

/** Write-back baseline; not crash consistent. */
class VolatileStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Volatile; }

    CrashProfile
    crashProfile() const override
    {
        return {false, false,
                "nothing persisted; root register volatile"};
    }

    Cycle persist(const WriteContext &) override { return 0; }

    /** The root register is volatile here: it is lost on crash. */
    void onCrash() override { clearRootRegister(); }

    RecoveryReport recover() override;
};

/** Strict metadata persistence: write-through of the whole path. */
class StrictStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Strict; }

    CrashProfile
    crashProfile() const override
    {
        return {true, true,
                "counter+hmac commit-atomic; path nodes deferred "
                "per-node (recomputable)"};
    }

    Cycle persist(const WriteContext &ctx) override;

    /** Ancestral-path persists (recomputable; not commit-atomic). */
    Cycle postCommit(const WriteContext &ctx) override;

    RecoveryReport recover() override;
};

/** Leaf metadata persistence: counters + HMACs write through. */
class LeafStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Leaf; }

    CrashProfile
    crashProfile() const override
    {
        return {true, true,
                "counter+hmac commit-atomic; tree fully lazy"};
    }

    Cycle persist(const WriteContext &ctx) override;

    RecoveryReport recover() override;
};

/** Osiris: stop-loss counter persistence. */
class OsirisStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Osiris; }

    CrashProfile
    crashProfile() const override
    {
        return {true, false,
                "hmac commit-atomic; counters deferred up to "
                "stop-loss updates"};
    }

    Cycle persist(const WriteContext &ctx) override;

    /** Stop-loss counter persists (deferred; not commit-atomic). */
    Cycle postCommit(const WriteContext &ctx) override;

    RecoveryReport recover() override;

  private:
    /** Updates since the last persist, per counter block. */
    std::unordered_map<std::uint64_t, unsigned> sincePersist_;
};

} // namespace amnt::mee

#endif // AMNT_MEE_BASELINES_HH
