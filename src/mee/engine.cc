#include "mee/engine.hh"

#include <algorithm>
#include <cstring>

#include <chrono>

#include "common/bitops.hh"
#include "common/log.hh"
#include "fault/fault.hh"
#include "mee/protocol.hh"
#include "obs/registry.hh"

namespace amnt::mee
{

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::Volatile: return "volatile";
      case Protocol::Strict: return "strict";
      case Protocol::Leaf: return "leaf";
      case Protocol::Osiris: return "osiris";
      case Protocol::Anubis: return "anubis";
      case Protocol::Bmf: return "bmf";
      case Protocol::Amnt: return "amnt";
      case Protocol::Phoenix: return "phoenix";
      case Protocol::Stit: return "stit";
    }
    return "?";
}

void
ProtocolStrategy::attach(MemoryEngine &engine)
{
    if (eng_ != nullptr)
        fatal("protocol strategy attached twice");
    eng_ = &engine;
    onAttach();
}

void
ProtocolStrategy::propagateParent(Addr parent_addr)
{
    markDirty(parent_addr);
}

MemoryEngine::MemoryEngine(const MeeConfig &config, mem::NvmDevice &nvm,
                           std::unique_ptr<ProtocolStrategy> strategy)
    : config_(config), map_(config.dataBytes), nvm_(&nvm),
      crypto_(crypto::CryptoSuite::make(config.plane, config.keySeed)),
      mcache_(config.metaCache),
      mcacheDirtyOccupancy_(
          0.0, static_cast<double>(mcache_.lines()) + 1.0,
          static_cast<std::size_t>(mcache_.lines()) + 1),
      strategy_(std::move(strategy))
{
    if (strategy_ == nullptr)
        fatal("memory engine needs a protocol strategy");
    if (nvm.capacity() < map_.deviceBytes())
        fatal("NVM device (%llu B) smaller than required layout "
              "(%llu B data + metadata)",
              static_cast<unsigned long long>(nvm.capacity()),
              static_cast<unsigned long long>(map_.deviceBytes()));
    if (!config_.tenantKeySeeds.empty()) {
        const std::uint64_t n = config_.tenantKeySeeds.size();
        if (config_.dataBytes % (n * kPageSize) != 0)
            fatal("tenant key domains need page-aligned equal slices: "
                  "%llu data bytes / %llu tenants",
                  static_cast<unsigned long long>(config_.dataBytes),
                  static_cast<unsigned long long>(n));
        tenantSliceBytes_ = config_.dataBytes / n;
        tenantCrypto_.reserve(n);
        for (std::uint64_t seed : config_.tenantKeySeeds)
            tenantCrypto_.push_back(
                crypto::CryptoSuite::make(config_.plane, seed));
    }
    tree_ = std::make_unique<bmt::TreeState>(map_, *crypto_.hash);
    dataReads_ = &stats_.counter("data_reads");
    dataWrites_ = &stats_.counter("data_writes");
    metaFetches_ = &stats_.counter("meta_fetches");
    metaWritebacks_ = &stats_.counter("meta_writebacks");
    persistWrites_ = &stats_.counter("persist_writes");
    strategy_->attach(*this);
}

MemoryEngine::~MemoryEngine() = default;

Protocol
MemoryEngine::protocol() const
{
    return strategy_->id();
}

std::string
MemoryEngine::statPath() const
{
    return strategy_->statPath();
}

void
MemoryEngine::registerStats(obs::StatRegistry &reg,
                            const std::string &prefix)
{
    const std::string base = prefix + "." + statPath();
    reg.addGroup(base, &stats_);
    reg.addGroup(prefix + ".mcache", &mcache_.stats());
    reg.addHistogram(prefix + ".persist_chain_depth",
                     &persistChainDepth_);
    reg.addHistogram(prefix + ".mcache_dirty_occupancy",
                     &mcacheDirtyOccupancy_);
    reg.addHistogram("host." + prefix + ".crypto_batch_ns",
                     &hostCryptoBatchNs_);
    reg.addScalar(prefix + ".violations",
                  [this] { return violations_; });
}

mem::Block
MemoryEngine::latestBytes(Addr maddr) const
{
    switch (map_.classify(maddr)) {
      case mem::Region::Counter:
        return tree_->counterBytes(map_.counterIndexOfCounterAddr(maddr));
      case mem::Region::Tree:
        return tree_->node(map_.nodeOfAddr(maddr));
      case mem::Region::Hmac: {
          auto it = hmacLatest_.find(maddr);
          if (it != hmacLatest_.end())
              return it->second;
          mem::Block zero{};
          return zero;
      }
      case mem::Region::Data:
        break;
    }
    panic("latestBytes on a data address");
}

namespace
{

bool
blockIsZero(const mem::Block &b)
{
    for (auto byte : b)
        if (byte != 0)
            return false;
    return true;
}

} // namespace

void
MemoryEngine::persistBytes(Addr maddr, const mem::Block &bytes)
{
    trace_.instant(obs::EventClass::Persist, maddr);
    nvm_->writeBlock(maddr, bytes);
    if (blockIsZero(bytes))
        persistedMac_.erase(maddr);
    else
        persistedMac_[maddr] =
            crypto_.hash->mac64(bytes.data(), bytes.size(), maddr);
}

namespace
{

/** Chunk size for the batched persist paths (stack buffers only). */
constexpr std::size_t kPersistBatch = 64;

} // namespace

void
MemoryEngine::persistBytesMany(const Addr *addrs,
                               const mem::Block *const *blocks,
                               std::size_t n)
{
    while (n > 0) {
        const std::size_t chunk = std::min(n, kPersistBatch);
        crypto::MacRequest reqs[kPersistBatch];
        std::size_t m = 0;
        for (std::size_t k = 0; k < chunk; ++k) {
            if (!blockIsZero(*blocks[k])) {
                reqs[m] = {blocks[k]->data(), blocks[k]->size(),
                           addrs[k]};
                ++m;
            }
        }
        // MACs are computed before any write lands so that an
        // injected crash at block k leaves blocks < k fully persisted
        // (bytes AND recorded MAC) and blocks >= k fully untouched.
        std::uint64_t macs[kPersistBatch];
        if (obs::hostTimingEnabled()) {
            const auto t0 = std::chrono::steady_clock::now();
            crypto_.hash->mac64xN(reqs, m, macs);
            const auto t1 = std::chrono::steady_clock::now();
            hostCryptoBatchNs_.add(static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count()));
        } else {
            crypto_.hash->mac64xN(reqs, m, macs);
        }
        trace_.instant(obs::EventClass::CryptoBatch, m);
        std::size_t j = 0;
        for (std::size_t k = 0; k < chunk; ++k) {
            if (trace_.on())
                trace_.instant(obs::EventClass::Persist, addrs[k]);
            nvm_->writeBlock(addrs[k], *blocks[k]);
            if (blockIsZero(*blocks[k])) {
                persistedMac_.erase(addrs[k]);
            } else {
                persistedMac_[addrs[k]] = macs[j];
                ++j;
            }
        }
        addrs += chunk;
        blocks += chunk;
        n -= chunk;
    }
}

void
MemoryEngine::verifyFetched(Addr maddr, const mem::Block &bytes)
{
    // A fetched metadata block must be byte-identical to what the
    // engine last persisted there; the check is a keyed MAC so any
    // physical modification (splice, spoof, or replay of an older
    // value) diverges with overwhelming probability. This is the
    // fetch-time arm of the integrity chain; the crash-time arm is
    // the recovery root comparison against the NV root register.
    auto it = persistedMac_.find(maddr);
    const std::uint64_t expect =
        it == persistedMac_.end() ? 0 : it->second;
    const std::uint64_t got =
        blockIsZero(bytes)
            ? 0
            : crypto_.hash->mac64(bytes.data(), bytes.size(), maddr);
    if (got != expect) {
        switch (map_.classify(maddr)) {
          case mem::Region::Counter:
            flagViolation("counter", maddr);
            break;
          case mem::Region::Tree:
            flagViolation("tree node", maddr);
            break;
          case mem::Region::Hmac:
            flagViolation("hmac block", maddr);
            break;
          case mem::Region::Data:
            panic("verifyFetched on a data address");
        }
    }
}

void
MemoryEngine::handleEviction(const cache::AccessResult &res)
{
    if (!res.evictedValid)
        return;
    const Addr victim = res.evictedAddr;
    trace_.instant(obs::EventClass::McacheEvict, victim,
                   res.evictedDirty ? 1 : 0);
    {
        // Eviction is one atomic persist unit: protocols that track
        // residency in NV state (Anubis's shadow table) retire the
        // victim's entry in the same breath as its write-back, so a
        // crash never sees the entry gone but the write-back lost.
        fault::CommitScope evict_unit(nvm_->faultDomain());
        strategy_->onMetaEvict(victim, res.evictedDirty);
        if (res.evictedDirty) {
            // Lazy write-back: the victim's latest bytes reach NVM.
            ++*metaWritebacks_;
            persistBytes(victim, latestBytes(victim));
        }
    }
    if (!res.evictedDirty)
        return;

    // Propagate freshness: a dirty tree node's parent must now track
    // the victim's new hash (counters already dirtied their leaf node
    // at write time; the root node is anchored by the root register).
    if (map_.classify(victim) == mem::Region::Tree) {
        const bmt::NodeRef ref = map_.nodeOfAddr(victim);
        if (ref.level > 1)
            strategy_->propagateParent(
                map_.nodeAddrOf(bmt::Geometry::parentOf(ref)));
    }
}

Cycle
MemoryEngine::ensureResident(Addr maddr, unsigned &misses)
{
    maddr = blockAddr(blockOf(maddr));
    if (mcache_.access(maddr, false)) {
        trace_.instant(obs::EventClass::McacheHit, maddr);
        return 0;
    }
    trace_.instant(obs::EventClass::McacheMiss, maddr);
    ++misses;
    ++*metaFetches_;
    mem::Block bytes;
    nvm_->readBlock(maddr, bytes);
    verifyFetched(maddr, bytes);
    const cache::AccessResult res = mcache_.insert(maddr, false);
    handleEviction(res);
    return strategy_->onMetaInsert(maddr);
}

Cycle
MemoryEngine::ensureCounterChain(std::uint64_t counterIdx,
                                 unsigned &misses)
{
    const Addr counter_addr =
        map_.counterBase() + counterIdx * kBlockSize;
    const unsigned before = misses;
    Cycle hook = ensureResident(counter_addr, misses);
    if (misses == before)
        return hook; // counter cached: it is itself a root of trust.

    // Counter missed: walk ancestors until a cached (trusted) node.
    bmt::NodeRef ref = map_.geometry().leafNodeOf(counterIdx);
    while (true) {
        const Addr naddr = map_.nodeAddrOf(ref);
        if (mcache_.contains(naddr)) {
            mcache_.access(naddr, false); // refresh LRU of the anchor
            break;
        }
        hook += ensureResident(naddr, misses);
        if (ref.level == 1)
            break; // anchored at the on-chip root register
        ref = bmt::Geometry::parentOf(ref);
    }
    if (trace_.on())
        trace_.instant(obs::EventClass::BmtWalk, counterIdx,
                       misses - before);
    return hook;
}

void
MemoryEngine::markDirty(Addr maddr)
{
    maddr = blockAddr(blockOf(maddr));
    if (!mcache_.access(maddr, true)) {
        // Rare: the block was displaced between residency setup and
        // this update; re-fetch (read-modify-write).
        trace_.instant(obs::EventClass::McacheMiss, maddr);
        ++*metaFetches_;
        mem::Block bytes;
        nvm_->readBlock(maddr, bytes);
        verifyFetched(maddr, bytes);
        const cache::AccessResult res = mcache_.insert(maddr, true);
        handleEviction(res);
        strategy_->onMetaInsert(maddr);
    }
    strategy_->onMetaUpdate(maddr);
}

void
MemoryEngine::writeThrough(Addr maddr)
{
    persistChainDepth_.add(1.0);
    maddr = blockAddr(blockOf(maddr));
    ++*persistWrites_;
    persistBytes(maddr, latestBytes(maddr));
    mcache_.clean(maddr);
    strategy_->onMetaUpdate(maddr);
}

void
MemoryEngine::writeThroughMany(const Addr *addrs, std::size_t n)
{
    if (n > 0)
        persistChainDepth_.add(static_cast<double>(n));
    // latestBytes is unaffected by persists of other metadata blocks,
    // so snapshotting the whole chunk up front and batching the MACs
    // is state-identical to n scalar writeThrough calls.
    while (n > 0) {
        const std::size_t chunk = std::min(n, kPersistBatch);
        Addr a[kPersistBatch];
        mem::Block bufs[kPersistBatch];
        const mem::Block *ptrs[kPersistBatch];
        for (std::size_t k = 0; k < chunk; ++k) {
            a[k] = blockAddr(blockOf(addrs[k]));
            ++*persistWrites_;
            bufs[k] = latestBytes(a[k]);
            ptrs[k] = &bufs[k];
        }
        persistBytesMany(a, ptrs, chunk);
        for (std::size_t k = 0; k < chunk; ++k) {
            mcache_.clean(a[k]);
            strategy_->onMetaUpdate(a[k]);
        }
        addrs += chunk;
        n -= chunk;
    }
}

std::vector<bmt::NodeRef>
MemoryEngine::pathOf(std::uint64_t counterIdx) const
{
    std::vector<bmt::NodeRef> path;
    pathOf(counterIdx, path);
    return path;
}

void
MemoryEngine::pathOf(std::uint64_t counterIdx,
                     std::vector<bmt::NodeRef> &out) const
{
    out.clear();
    bmt::NodeRef ref = map_.geometry().leafNodeOf(counterIdx);
    out.push_back(ref);
    while (ref.level > 1) {
        ref = bmt::Geometry::parentOf(ref);
        out.push_back(ref);
    }
}

void
MemoryEngine::flagViolation(const char *what, Addr addr)
{
    ++violations_;
    stats_.inc("violations");
    warn("integrity violation: %s at %llx", what,
         static_cast<unsigned long long>(addr));
}

const crypto::CryptoSuite &
MemoryEngine::dataSuite(Addr data_addr) const
{
    if (tenantCrypto_.empty())
        return crypto_;
    std::uint64_t idx = data_addr / tenantSliceBytes_;
    if (idx >= tenantCrypto_.size())
        idx = tenantCrypto_.size() - 1;
    return tenantCrypto_[idx];
}

std::uint64_t
MemoryEngine::dataMac(Addr addr, const std::uint8_t *cipher) const
{
    const Addr block = blockAddr(blockOf(addr));
    const std::uint64_t idx = map_.counterIndexOf(block);
    const bmt::CounterBlock &cb = tree_->counter(idx);
    const unsigned slot =
        static_cast<unsigned>(blockOf(block) % kBlocksPerPage);
    const std::uint64_t tweak =
        (block << 16) ^ (cb.major << 7) ^ cb.minors[slot];
    const crypto::CryptoSuite &suite = dataSuite(block);
    if (cipher == nullptr)
        return suite.hash->mac64("", 0, tweak);
    return suite.hash->mac64(cipher, kBlockSize, tweak);
}

void
MemoryEngine::updateHmacEntry(Addr addr)
{
    const Addr block = blockAddr(blockOf(addr));
    const Addr haddr = map_.hmacAddrOf(block);
    std::uint8_t cipher_buf[kBlockSize];
    const std::uint8_t *cipher = nullptr;
    if (config_.trackContents) {
        mem::Block c;
        nvm_->peek(block, c);
        std::memcpy(cipher_buf, c.data(), kBlockSize);
        cipher = cipher_buf;
    }
    auto [it, fresh] = hmacLatest_.try_emplace(haddr);
    if (fresh)
        nvm_->peek(haddr, it->second); // seed with persisted entries
    store64le(it->second.data() + mem::MemoryMap::hmacOffsetOf(block),
              dataMac(block, cipher));
}

Cycle
MemoryEngine::reencryptPage(std::uint64_t counterIdx)
{
    stats_.inc("overflow_reencrypts");
    const Addr page_base = counterIdx * kPageSize;
    const bmt::CounterBlock &cb = tree_->counter(counterIdx);

    // Gather the page's touched blocks (functional plane: only
    // ever-written blocks have plaintext to re-encrypt).
    Addr addrs[kBlocksPerPage];
    unsigned slots[kBlocksPerPage];
    const mem::Block *plains[kBlocksPerPage];
    std::size_t m = 0;
    for (std::uint64_t b = 0; b < kBlocksPerPage; ++b) {
        const Addr baddr = page_base + b * kBlockSize;
        if (config_.trackContents) {
            auto it = plaintext_.find(blockOf(baddr));
            if (it == plaintext_.end())
                continue; // never written: nothing to re-encrypt
            plains[m] = &it->second;
        } else {
            nvm_->touchRead(baddr);
            nvm_->touchWrite(baddr);
            plains[m] = nullptr;
        }
        addrs[m] = baddr;
        slots[m] = static_cast<unsigned>(b);
        ++m;
    }

    // Re-encrypt under the bumped counter: one batched pad generation
    // for the whole page, XORed into ciphertext in place.
    std::uint8_t ciphers[kBlocksPerPage * kBlockSize];
    if (config_.trackContents && m > 0) {
        crypto::PadRequest preqs[kBlocksPerPage];
        for (std::size_t k = 0; k < m; ++k)
            preqs[k] = {addrs[k], cb.major, cb.minors[slots[k]]};
        // The page lives in one tenant slice (slices are page-
        // aligned), so the whole burst uses one data suite.
        dataSuite(page_base).enc->padxN(preqs, m, ciphers);
        for (std::size_t k = 0; k < m; ++k) {
            std::uint8_t *c = ciphers + k * kBlockSize;
            const mem::Block &plain = *plains[k];
            for (std::size_t i = 0; i < kBlockSize; ++i)
                c[i] ^= plain[i];
            mem::Block out;
            std::memcpy(out.data(), c, kBlockSize);
            nvm_->writeBlock(addrs[k], out);
        }
    }

    // HMAC entries for the page: one batched MAC burst.
    std::uint64_t macs[kBlocksPerPage];
    crypto::MacRequest mreqs[kBlocksPerPage];
    for (std::size_t k = 0; k < m; ++k) {
        const std::uint64_t tweak =
            (addrs[k] << 16) ^ (cb.major << 7) ^ cb.minors[slots[k]];
        if (config_.trackContents)
            mreqs[k] = {ciphers + k * kBlockSize, kBlockSize, tweak};
        else
            mreqs[k] = {"", 0, tweak};
    }
    dataSuite(page_base).hash->mac64xN(mreqs, m, macs);
    trace_.instant(obs::EventClass::CryptoBatch, m);
    for (std::size_t k = 0; k < m; ++k) {
        const Addr haddr = map_.hmacAddrOf(addrs[k]);
        auto [it, fresh] = hmacLatest_.try_emplace(haddr);
        if (fresh)
            nvm_->peek(haddr, it->second); // seed with persisted entries
        store64le(it->second.data() +
                      mem::MemoryMap::hmacOffsetOf(addrs[k]),
                  macs[k]);
    }

    // Persist every HMAC block of the page and the counter block:
    // the re-encryption must be atomic with the counter bump.
    Addr wt[kBlocksPerPage / kTreeArity + 1];
    for (std::uint64_t h = 0; h < kBlocksPerPage / kTreeArity; ++h)
        wt[h] = map_.hmacAddrOf(page_base + h * kTreeArity * kBlockSize);
    wt[kBlocksPerPage / kTreeArity] =
        map_.counterBase() + counterIdx * kBlockSize;
    writeThroughMany(wt, kBlocksPerPage / kTreeArity + 1);

    // Pipelined burst cost: reads and writes of the page stream.
    return static_cast<Cycle>(m / 8 + 1) *
           (config_.nvmReadCycles + config_.nvmWriteCycles);
}

Cycle
MemoryEngine::read(Addr addr, std::uint8_t *out)
{
    if (crashed_)
        panic("MEE read after crash without recovery");
    ++*dataReads_;
    const Addr block = blockAddr(blockOf(addr));
    const std::uint64_t counter_idx = map_.counterIndexOf(block);

    Cycle lat = config_.nvmReadCycles; // data fetch
    mem::Block cipher{};
    if (config_.trackContents)
        nvm_->readBlock(block, cipher);
    else
        nvm_->touchRead(block);

    const Addr haddr = map_.hmacAddrOf(block);
    const bool hmac_was_cached = mcache_.contains(haddr);

    unsigned misses = 0;
    Cycle hook = 0;
    hook += ensureCounterChain(counter_idx, misses);
    hook += ensureResident(haddr, misses);
    if (misses > 0) {
        // Ancestor addresses are all known up front, so the fetch
        // round is parallel; pad generation then serializes behind
        // the counter arrival.
        lat += config_.nvmReadCycles + config_.aesCycles;
    }
    lat += mcache_.hitLatency() + config_.hashCycles + hook;

    if (config_.trackContents) {
        const bmt::CounterBlock &cb = tree_->counter(counter_idx);
        const unsigned slot =
            static_cast<unsigned>(blockOf(block) % kBlocksPerPage);

        // The HMAC entry the hardware sees: the trusted on-chip copy
        // when the block was cached, the (attackable) NVM bytes when
        // it was just fetched.
        mem::Block hmac_block;
        if (hmac_was_cached) {
            hmac_block = latestBytes(haddr);
        } else {
            nvm_->peek(haddr, hmac_block);
        }
        const std::uint64_t stored = load64le(
            hmac_block.data() + mem::MemoryMap::hmacOffsetOf(block));

        // A block is untouched iff it was never written through this
        // engine; its counter entry and HMAC entry are still zero.
        // Untouched blocks must also read back as all-zero NVM: an
        // attacker writing a never-written block is caught here, not
        // silently masked by the zero-fill below.
        const bool untouched =
            plaintext_.find(blockOf(block)) == plaintext_.end();
        if (untouched) {
            if (!blockIsZero(cipher))
                flagViolation("untouched data", block);
        } else if (dataMac(block, cipher.data()) != stored) {
            flagViolation("data hmac", block);
        }

        if (out != nullptr) {
            if (untouched) {
                std::memset(out, 0, kBlockSize);
            } else {
                dataSuite(block).enc->xorPad(block, cb.major,
                                             cb.minors[slot],
                                             cipher.data(), out);
            }
        }
    }
    if (trace_.on()) {
        trace_.complete(obs::EventClass::Op, lat, addr, 0);
        trace_.advance(lat);
    }
    return lat;
}

Cycle
MemoryEngine::writeCommon(Addr addr, const std::uint8_t *data,
                          WriteContext &ctx)
{
    const Addr block = blockAddr(blockOf(addr));
    const std::uint64_t counter_idx = map_.counterIndexOf(block);
    ctx.dataAddr = block;
    ctx.counterIdx = counter_idx;

    const Addr counter_addr =
        map_.counterBase() + counter_idx * kBlockSize;
    const Addr leaf_node_addr =
        map_.nodeAddrOf(map_.geometry().leafNodeOf(counter_idx));
    const Addr haddr = map_.hmacAddrOf(block);

    unsigned misses = 0;
    Cycle hook = 0;
    hook += ensureCounterChain(counter_idx, misses);
    hook += ensureResident(leaf_node_addr, misses);
    hook += ensureResident(haddr, misses);
    Cycle lat = misses > 0 ? config_.nvmReadCycles : 0;
    lat += mcache_.hitLatency() + config_.hashCycles + hook;

    // Architectural update: bump the counter, refresh the hash path.
    bmt::CounterBlock cb = tree_->counter(counter_idx);
    const unsigned slot =
        static_cast<unsigned>(blockOf(block) % kBlocksPerPage);
    if (cb.increment(slot)) {
        cb.overflowReset();
        tree_->setCounter(counter_idx, cb);
        ctx.overflowed = true;
    } else {
        tree_->setCounter(counter_idx, cb);
    }

    // Data to NVM (ciphertext under the fresh counter).
    if (config_.trackContents) {
        if (data == nullptr)
            panic("functional MEE write without data");
        mem::Block &plain = plaintext_[blockOf(block)];
        std::memcpy(plain.data(), data, kBlockSize);
        mem::Block cipher;
        dataSuite(block).enc->xorPad(block, cb.major, cb.minors[slot],
                                     data, cipher.data());
        nvm_->writeBlock(block, cipher);
    } else {
        nvm_->touchWrite(block);
    }

    if (ctx.overflowed) {
        lat += reencryptPage(counter_idx);
    } else {
        updateHmacEntry(block);
    }

    // Default lazy (write-back) marking; protocols may write through
    // afterwards, which cleans these lines again.
    markDirty(counter_addr);
    markDirty(leaf_node_addr);
    markDirty(haddr);

    // The on-chip root register tracks the architectural root. The
    // simulator computes its value on demand (rootRegister()) and
    // snapshots it at crash(): hashing the root node on every write
    // would model the same architecture at twice the hash cost.
    return lat;
}

Cycle
MemoryEngine::write(Addr addr, const std::uint8_t *data)
{
    if (crashed_)
        panic("MEE write after crash without recovery");
    ++*dataWrites_;
    WriteContext ctx;
    Cycle lat;
    {
        // The architectural update and the protocol's persist set are
        // one commit group: an injected crash fires before anything
        // mutates, so a suppressed write never happened at all (the
        // lazily computed NV root register stays consistent with NVM).
        fault::CommitScope commit(nvm_->faultDomain());
        lat = writeCommon(addr, data, ctx);
        lat += strategy_->persist(ctx);
    }
    // Deferred, non-atomic per-write work (crashable boundaries).
    lat += strategy_->postCommit(ctx);
    mcacheDirtyOccupancy_.add(
        static_cast<double>(mcache_.dirtyLines()));
    if (trace_.on()) {
        trace_.complete(obs::EventClass::Op, lat, addr, 1);
        trace_.advance(lat);
    }
    return lat;
}

void
MemoryEngine::crash()
{
    // The NV root register survives with its last written value;
    // latch it before the architectural tree becomes unreachable
    // (recovery rebuilds tree_ from NVM and compares against this).
    refreshRootRegister();
    // The protocol's crash hook runs while the metadata cache is
    // still inspectable (dirty-line latches) but after the root
    // register latched (Volatile zeroes it here).
    strategy_->onCrash();
    // Volatile on-chip state vanishes; NVM and NV registers survive.
    mcache_.invalidateAll();
    crashed_ = true;
    trace_.instant(obs::EventClass::Crash);
}

RecoveryReport
MemoryEngine::recover()
{
    return strategy_->recover();
}

void
MemoryEngine::rebuildAndVerify(RecoveryReport &report)
{
    trace_.begin(obs::EventClass::Recovery);
    tree_ = std::make_unique<bmt::TreeState>(map_, *crypto_.hash);
    const std::uint64_t root = tree_->rebuildFromNvm(*nvm_);

    report.countersRecovered = tree_->touchedCounters();
    report.nodesRecomputed = tree_->touchedNodes();
    // The rebuild streams counters in and writes each recomputed
    // level back before computing the next (paper section 6.7).
    report.blocksRead += report.countersRecovered +
                         report.nodesRecomputed;
    report.blocksWritten += report.nodesRecomputed;

    // Recomputed nodes become the new persisted state; MACs for the
    // whole rebuilt node set go out in batched bursts.
    std::vector<Addr> naddrs;
    std::vector<const mem::Block *> nblocks;
    naddrs.reserve(tree_->touchedNodes());
    nblocks.reserve(tree_->touchedNodes());
    tree_->forEachNode([&](bmt::NodeRef ref, const mem::Block &b) {
        naddrs.push_back(map_.nodeAddrOf(ref));
        nblocks.push_back(&b);
    });
    persistBytesMany(naddrs.data(), nblocks.data(), naddrs.size());

    // Restore architectural HMAC state from (persisted) NVM.
    hmacLatest_.clear();
    nvm_->forEachBlockIn(
        map_.hmacBase(), map_.treeBase(),
        [this](Addr a, const mem::Block &b) { hmacLatest_[a] = b; });

    report.success = root == rootRegister_;
    if (report.success)
        crashed_ = false;
    trace_.end(obs::EventClass::Recovery);
}

std::vector<Addr>
MemoryEngine::staleMetadataBlocks() const
{
    std::vector<Addr> stale;
    auto check = [this, &stale](Addr maddr, const mem::Block &latest) {
        mem::Block persisted;
        nvm_->peek(maddr, persisted);
        if (persisted != latest)
            stale.push_back(maddr);
    };
    tree_->forEachCounter(
        [this, &check](std::uint64_t idx, const bmt::CounterBlock &cb) {
            check(map_.counterBase() + idx * kBlockSize, cb.serialize());
        });
    tree_->forEachNode(
        [this, &check](bmt::NodeRef ref, const mem::Block &b) {
            check(map_.nodeAddrOf(ref), b);
        });
    for (const auto &kv : hmacLatest_)
        check(kv.first, kv.second);
    return stale;
}

double
MemoryEngine::recoveryMs(std::uint64_t blocks_read,
                         std::uint64_t blocks_written) const
{
    const double read_s =
        static_cast<double>(blocks_read * kBlockSize) /
        (nvm_->timing().readBandwidthGBs * 1e9);
    const double write_s =
        static_cast<double>(blocks_written * kBlockSize) /
        (nvm_->timing().writeBandwidthGBs * 1e9);
    return 1000.0 * std::max(read_s, write_s);
}

} // namespace amnt::mee
