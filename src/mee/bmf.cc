#include "mee/bmf.hh"

#include <algorithm>

#include "common/log.hh"
#include "fault/fault.hh"

namespace amnt::mee
{

void
BmfStrategy::onAttach()
{
    if (config().bmfRootCacheEntries < 8)
        fatal("BMF needs at least 8 NV root-cache entries");
    // The set starts as {global root}: full coverage, strict-like
    // behaviour everywhere until pruning adapts to the workload.
    roots_.push_back({bmt::NodeRef{1, 0}, {}, 0});
    rebuildIndex();
}

void
BmfStrategy::rebuildIndex()
{
    index_.clear();
    for (std::size_t i = 0; i < roots_.size(); ++i)
        index_[map().geometry().linearId(roots_[i].ref)] = i;
}

bool
BmfStrategy::inSet(bmt::NodeRef ref) const
{
    return index_.count(map().geometry().linearId(ref)) != 0;
}

std::size_t
BmfStrategy::coveringIndex(std::uint64_t counter_idx) const
{
    // Walk the ancestral path from the deepest node up; the first
    // path node in the set covers this counter. The set is an
    // antichain covering the tree, so exactly one exists.
    bmt::NodeRef ref = map().geometry().leafNodeOf(counter_idx);
    while (true) {
        auto it = index_.find(map().geometry().linearId(ref));
        if (it != index_.end())
            return it->second;
        if (ref.level == 1)
            break;
        ref = bmt::Geometry::parentOf(ref);
    }
    panic("BMF root set does not cover counter %llu",
          static_cast<unsigned long long>(counter_idx));
}

unsigned
BmfStrategy::coveringLevel(std::uint64_t counter_idx) const
{
    return roots_[coveringIndex(counter_idx)].ref.level;
}

bool
BmfStrategy::covers(std::uint64_t counter_idx) const
{
    bmt::NodeRef ref = map().geometry().leafNodeOf(counter_idx);
    unsigned found = 0;
    while (true) {
        if (inSet(ref))
            ++found;
        if (ref.level == 1)
            break;
        ref = bmt::Geometry::parentOf(ref);
    }
    return found == 1;
}

void
BmfStrategy::refreshEntry(std::size_t i)
{
    roots_[i].value = tree().node(roots_[i].ref);
}

Cycle
BmfStrategy::persist(const WriteContext &ctx)
{
    const std::size_t cover = coveringIndex(ctx.counterIdx);
    ++roots_[cover].uses;
    const unsigned cover_level = roots_[cover].ref.level;

    // Write through everything strictly below the covering root:
    // counter, HMAC, and path nodes deeper than the cover. The
    // covering root itself is updated in the NV cache (on-chip).
    unsigned misses = 0;
    Cycle hook = 0;
    unsigned below = 0;
    pathOf(ctx.counterIdx, pathScratch());
    const auto &path = pathScratch();
    for (const auto &ref : path) {
        if (ref.level <= cover_level)
            break;
        hook += ensureResident(map().nodeAddrOf(ref), misses);
        ++below;
    }
    Cycle lat = misses > 0 ? config().nvmReadCycles : 0;

    // One batched write-through of the persist set below the cover.
    Addr wt[2 + bmt::Geometry::kMaxPathNodes];
    std::size_t nwt = 0;
    wt[nwt++] = map().counterBase() + ctx.counterIdx * kBlockSize;
    wt[nwt++] = map().hmacAddrOf(ctx.dataAddr);
    for (const auto &ref : path) {
        if (ref.level <= cover_level)
            break;
        wt[nwt++] = map().nodeAddrOf(ref);
    }
    writeThroughMany(wt, nwt);
    refreshEntry(cover);

    lat += persistCost(3 + below);
    return lat + hook;
}

Cycle
BmfStrategy::postCommit(const WriteContext &)
{
    // Adaptation runs between writes, outside the commit group: a
    // crash can land before, inside (at each merge/prune boundary),
    // or after it.
    if (++writesSinceAdapt_ >= config().bmfInterval) {
        writesSinceAdapt_ = 0;
        adapt();
    }
    return 0;
}

void
BmfStrategy::adapt()
{
    const unsigned leaf_level = map().geometry().nodeLevels();

    // Prune: split the hottest non-leaf-level root into its children.
    std::size_t hottest = roots_.size();
    std::uint64_t best = 0;
    for (std::size_t i = 0; i < roots_.size(); ++i) {
        if (roots_[i].ref.level < leaf_level && roots_[i].uses >= best &&
            roots_[i].uses > 0) {
            best = roots_[i].uses;
            hottest = i;
        }
    }

    if (hottest < roots_.size()) {
        // Make room by merging the coldest full sibling group while
        // the cache cannot absorb seven more entries.
        while (roots_.size() + 7 > config().bmfRootCacheEntries) {
            // Group entries by parent; only groups with all eight
            // siblings present are mergeable (prune creates such
            // groups, so one always exists when size > 1).
            std::unordered_map<std::uint64_t,
                               std::pair<unsigned, std::uint64_t>>
                groups; // parent linear id -> (count, total uses)
            const auto &geo = map().geometry();
            for (const auto &e : roots_) {
                if (e.ref.level == 1)
                    continue;
                const std::uint64_t pid =
                    geo.linearId(bmt::Geometry::parentOf(e.ref));
                auto &g = groups[pid];
                g.first += 1;
                g.second += e.uses;
            }
            std::uint64_t victim_pid = 0;
            std::uint64_t victim_uses = ~0ULL;
            bool found = false;
            for (const auto &kv : groups) {
                if (kv.second.first == kTreeArity &&
                    kv.second.second < victim_uses) {
                    victim_pid = kv.first;
                    victim_uses = kv.second.second;
                    found = true;
                }
            }
            if (!found)
                return; // cannot adapt this round
            const bmt::NodeRef parent = geo.nodeOfLinearId(victim_pid);
            if (parent == roots_[hottest].ref)
                return; // would undo the prune we are about to do
            // One merge is one atomic NV-cache transaction: the
            // children's write-throughs and the root-set mutation
            // must not tear (a crash in between would leave counters
            // covered by no persistent root).
            fault::CommitScope merge(nvm().faultDomain());
            // The children leave the NV cache: persist their latest
            // values so nothing below the new covering root is stale.
            Addr child_wt[kTreeArity];
            std::size_t n_child = 0;
            for (const auto &e : roots_) {
                if (e.ref.level == parent.level + 1 &&
                    bmt::Geometry::parentOf(e.ref) == parent)
                    child_wt[n_child++] = map().nodeAddrOf(e.ref);
            }
            writeThroughMany(child_wt, n_child);
            std::erase_if(roots_, [&](const RootEntry &e) {
                return e.ref.level == parent.level + 1 &&
                       bmt::Geometry::parentOf(e.ref) == parent;
            });
            // Everything under the merged parent must be persistent;
            // its children were NV-cached (current), and deeper
            // levels were written through, so installing the parent
            // with its architectural value preserves coverage.
            roots_.push_back({parent, tree().node(parent),
                              victim_uses / 2});
            rebuildIndex();
            stats().inc("bmf_merges");
            trace().instant(obs::EventClass::RootAdapt, 1);
            // Indices moved; re-locate the hottest entry.
            hottest = roots_.size();
            best = 0;
            for (std::size_t i = 0; i < roots_.size(); ++i) {
                if (roots_[i].ref.level < leaf_level &&
                    roots_[i].uses >= best && roots_[i].uses > 0) {
                    best = roots_[i].uses;
                    hottest = i;
                }
            }
            if (hottest == roots_.size())
                return;
        }

        // A prune replaces one NV entry with its eight children in a
        // single atomic NV-cache transaction (pure register-file
        // update: the children's values come from the architectural
        // tree, which prune leaves fully covered).
        fault::CommitScope prune(nvm().faultDomain());
        const RootEntry victim = roots_[hottest];
        roots_.erase(roots_.begin() +
                     static_cast<std::ptrdiff_t>(hottest));
        for (unsigned slot = 0; slot < kTreeArity; ++slot) {
            const bmt::NodeRef child =
                map().geometry().childOf(victim.ref, slot);
            roots_.push_back(
                {child, tree().node(child), victim.uses / kTreeArity});
        }
        rebuildIndex();
        stats().inc("bmf_prunes");
        trace().instant(obs::EventClass::RootAdapt, 0);
    }

    // Age the usage counters so the set keeps tracking the workload.
    for (auto &e : roots_)
        e.uses /= 2;
}

RecoveryReport
BmfStrategy::recover()
{
    RecoveryReport report;

    // Nothing below a persistent root can be stale; verify that the
    // recomputed tree matches both the NV root register and every NV
    // root-set entry.
    RecoveryReport scratch;
    rebuildAndVerify(scratch);
    bool set_ok = true;
    for (const auto &e : roots_) {
        if (tree().node(e.ref) != e.value) {
            set_ok = false;
            break;
        }
    }
    report.success = scratch.success && set_ok;
    report.countersRecovered = scratch.countersRecovered;
    report.blocksRead = 0;
    report.blocksWritten = 0;
    report.estimatedMs = 0.0;
    report.detail = "bmf: persistent root set, nothing stale";
    return report;
}

std::unique_ptr<ProtocolShadow>
BmfStrategy::cloneShadow() const
{
    auto snap = std::make_unique<Snapshot>();
    snap->roots = roots_;
    snap->index = index_;
    snap->writesSinceAdapt = writesSinceAdapt_;
    return snap;
}

void
BmfStrategy::restoreShadow(const ProtocolShadow &snap)
{
    const auto &s = static_cast<const Snapshot &>(snap);
    roots_ = s.roots;
    index_ = s.index;
    writesSinceAdapt_ = s.writesSinceAdapt;
}

} // namespace amnt::mee
