/**
 * @file
 * Bonsai Merkle Forest [Freij, Zhou & Solihin, MICRO'21].
 *
 * BMF extends the single non-volatile root register into a small
 * non-volatile on-chip cache holding a *persistent root set*: an
 * antichain of BMT nodes that together cover every counter. A data
 * write persists its path only up to the covering persistent root, so
 * hot subtrees with roots pruned close to the leaves persist cheaply
 * while cold regions behave like strict persistence. On an interval,
 * the hottest root is "pruned" into its eight children and, when the
 * NV cache is full, the coldest full sibling group is "merged" back
 * into its parent. Because every leaf is always covered, nothing is
 * stale at a crash and recovery is immediate — but the protocol can
 * never relax below its covering roots, which is the limitation AMNT
 * removes (paper section 7.3).
 */

#ifndef AMNT_MEE_BMF_HH
#define AMNT_MEE_BMF_HH

#include <unordered_map>
#include <vector>

#include "mee/protocol.hh"

namespace amnt::mee
{

/** Persistent-root-set metadata persistence. */
class BmfStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Bmf; }

    CrashProfile
    crashProfile() const override
    {
        return {true, false,
                "counter+hmac+subpath below the covering NV root "
                "commit-atomic; prune/merge each its own atomic "
                "NV-cache transaction"};
    }

    Cycle persist(const WriteContext &ctx) override;

    /** Interval prune/merge adaptation (not commit-atomic). */
    Cycle postCommit(const WriteContext &ctx) override;

    RecoveryReport recover() override;

    /** Number of roots currently in the persistent root set. */
    std::size_t rootSetSize() const { return roots_.size(); }

    /** Level of the root covering @p counter_idx (test hook). */
    unsigned coveringLevel(std::uint64_t counter_idx) const;

    /** Check the full-coverage invariant for @p counter_idx. */
    bool covers(std::uint64_t counter_idx) const;

    std::unique_ptr<ProtocolShadow> cloneShadow() const override;

    void restoreShadow(const ProtocolShadow &snap) override;

  protected:
    void onAttach() override;

  private:
    struct RootEntry
    {
        bmt::NodeRef ref;
        mem::Block value{}; ///< NV copy of the node's latest bytes
        std::uint64_t uses = 0;
    };

    /** Index of the entry covering @p counter_idx; set is a cover. */
    std::size_t coveringIndex(std::uint64_t counter_idx) const;

    /** Refresh the NV copy of entry @p i from architectural state. */
    void refreshEntry(std::size_t i);

    /** Periodic prune/merge adaptation. */
    void adapt();

    bool inSet(bmt::NodeRef ref) const;

    /** Rebuild the linear-id lookup index after set mutations. */
    void rebuildIndex();

    /** Epoch-commit snapshot: the full NV root set and its index. */
    struct Snapshot : ProtocolShadow
    {
        std::vector<RootEntry> roots;
        std::unordered_map<std::uint64_t, std::size_t> index;
        std::uint64_t writesSinceAdapt = 0;
    };

    std::vector<RootEntry> roots_;
    /** linearId -> index in roots_ for O(1) covering-root lookup. */
    std::unordered_map<std::uint64_t, std::size_t> index_;
    std::uint64_t writesSinceAdapt_ = 0;
};

} // namespace amnt::mee

#endif // AMNT_MEE_BMF_HH
