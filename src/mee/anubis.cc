#include "mee/anubis.hh"

namespace amnt::mee
{

RecoveryReport
AnubisStrategy::recover()
{
    RecoveryReport report;

    // Restore every shadowed block: these are precisely the blocks
    // whose NVM copies may be stale (they were cached, possibly
    // dirty, at the crash). After restoration NVM is fully current.
    // The persisted-MAC recompute for the whole table is batched.
    const std::uint64_t entries = shadow_.size();
    std::vector<Addr> addrs;
    std::vector<const mem::Block *> blocks;
    addrs.reserve(shadow_.size());
    blocks.reserve(shadow_.size());
    for (const auto &kv : shadow_) {
        addrs.push_back(kv.first);
        blocks.push_back(&kv.second);
    }
    persistBytesMany(addrs.data(), blocks.data(), addrs.size());

    // Functional verification: rebuild and compare with the NV root.
    RecoveryReport scratch;
    rebuildAndVerify(scratch);
    report.success = scratch.success;
    report.countersRecovered = scratch.countersRecovered;

    // Traffic/time model: read the shadow table, write the restored
    // blocks, then verify each restored block against the (on-chip)
    // shadow Merkle tree. The procedure is latency-bound: each
    // restored entry costs a short dependent-fetch chain, which is
    // what fixes Anubis recovery at ~1.3 ms for a 64 kB cache
    // regardless of memory size (paper Table 4).
    report.blocksRead = entries;
    report.blocksWritten = entries;
    const double read_ns = 305.0;
    const double dependent_fetches = 4.0;
    const std::uint64_t table_lines = mcache().lines();
    report.estimatedMs = table_lines * dependent_fetches * read_ns / 1e6;
    report.detail = "anubis: shadow-table restore (cache-size bound)";
    return report;
}

} // namespace amnt::mee
