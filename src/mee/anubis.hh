/**
 * @file
 * Anubis [Zubair & Awad, ISCA'19], the state-of-the-art the paper
 * compares against.
 *
 * Anubis "shadows" the metadata cache in NVM: a shadow-table entry
 * mirrors every cached metadata block, so after a crash exactly the
 * blocks that were (possibly dirty) on-chip can be restored and
 * repaired — recovery time is fixed by the cache size, not memory
 * size. The cost is the slow path the paper highlights: every
 * metadata-cache miss must persist a shadow-table update before the
 * fetched block may be used, and a single authentication can take
 * several misses. The shadow table is itself integrity-protected by a
 * small shadow Merkle tree that is held entirely on-chip (volatile)
 * with a non-volatile root, so it adds no extra runtime traffic.
 */

#ifndef AMNT_MEE_ANUBIS_HH
#define AMNT_MEE_ANUBIS_HH

#include <unordered_map>

#include "mee/protocol.hh"

namespace amnt::mee
{

/** Shadow-table metadata persistence. */
class AnubisStrategy : public ProtocolStrategy
{
  public:
    Protocol id() const override { return Protocol::Anubis; }

    CrashProfile
    crashProfile() const override
    {
        return {true, false,
                "shadow-table entry commit-atomic per cache "
                "insert/update; tree fully lazy (restored from "
                "shadow)"};
    }

    Cycle
    persist(const WriteContext &) override
    {
        // Tree updates are lazy (write-back); crash consistency comes
        // from the shadow table maintained by the hooks below.
        return 0;
    }

    Cycle
    onMetaInsert(Addr maddr) override
    {
        // Slow path: the shadow entry must be persisted before the
        // newly cached block can be trusted — one ordered NVM write
        // on the critical path per miss. The shadow write is a
        // persist op: crash-point instrumented, and suppressed
        // before the entry lands (the fetched block then simply was
        // never cached).
        faultPersistPoint();
        trace().instant(obs::EventClass::Persist, maddr, 1);
        shadow_[maddr] = latestBytes(maddr);
        stats().inc("shadow_writes");
        return config().nvmWriteCycles;
    }

    void
    onMetaUpdate(Addr maddr) override
    {
        // Updates to resident blocks refresh the shadow copy; these
        // are posted (coalesced in the write-pending queue).
        faultPersistPoint();
        trace().instant(obs::EventClass::Persist, maddr, 1);
        shadow_[maddr] = latestBytes(maddr);
        stats().inc("shadow_writes");
    }

    void
    onMetaEvict(Addr maddr, bool) override
    {
        // The block leaves the cache (its latest value is written
        // back by the generic path); drop the shadow entry. Runs
        // inside the eviction commit scope, atomic with the victim's
        // write-back (see MemoryEngine::handleEviction).
        faultPersistPoint();
        shadow_.erase(maddr);
        stats().inc("shadow_writes");
    }

    RecoveryReport recover() override;

    /** Shadow-table occupancy (bounded by metadata cache lines). */
    std::size_t shadowEntries() const { return shadow_.size(); }

    std::unique_ptr<ProtocolShadow>
    cloneShadow() const override
    {
        auto snap = std::make_unique<Snapshot>();
        snap->table = shadow_;
        return snap;
    }

    void
    restoreShadow(const ProtocolShadow &snap) override
    {
        shadow_ = static_cast<const Snapshot &>(snap).table;
    }

  private:
    /** Epoch-commit snapshot: the NV shadow table in full. */
    struct Snapshot : ProtocolShadow
    {
        std::unordered_map<Addr, mem::Block> table;
    };

    /**
     * The in-NVM shadow table: latest bytes of every metadata block
     * currently resident in the metadata cache. Survives crashes.
     */
    std::unordered_map<Addr, mem::Block> shadow_;
};

} // namespace amnt::mee

#endif // AMNT_MEE_ANUBIS_HH
