/**
 * @file
 * Metadata-persistence protocols as plug-in strategy objects.
 *
 * A ProtocolStrategy is everything that differs between the paper's
 * persistence schemes: the persist hook that runs inside each data
 * write's commit group, the deferred post-commit work, the metadata
 * cache hooks (insert/update/evict/parent propagation), the crash
 * hook, and the recovery planner. The shared machinery — read path,
 * write-path skeleton, metadata cache, integrity verification, NVM
 * plumbing — lives once in MemoryEngine, which owns one strategy and
 * forwards the protocol-specific decisions to it.
 *
 * Each strategy also declares its crash-boundary profile: whether the
 * scheme is persistent at all (enrolls it in the crash matrix, the
 * post-crash tamper sweep, and the crash-survivor differential) and
 * whether its recovery detects at-rest counter tampering (enrolls it
 * in the TamperAtRest suite). The protocol registry
 * (core/protocol_registry.hh) derives every test/bench/CLI protocol
 * list from these declarations, so a new protocol is auto-enrolled in
 * the full test matrix by registering — no per-protocol test code.
 */

#ifndef AMNT_MEE_PROTOCOL_HH
#define AMNT_MEE_PROTOCOL_HH

#include "mee/engine.hh"

namespace amnt::mee
{

/**
 * Opaque snapshot of a protocol's non-volatile on-chip state (shadow
 * tables, persistent root sets, subtree registers). The sharded
 * engine captures one per epoch commit via
 * ProtocolStrategy::cloneShadow and hands it back through
 * restoreShadow when a torn cross-shard epoch must be rolled back to
 * the last durable commit. Protocols whose NV state is only the root
 * register need no shadow and keep the default hooks.
 */
struct ProtocolShadow
{
    virtual ~ProtocolShadow() = default;
};

/**
 * Crash-boundary declaration: what the scheme promises about the
 * state NVM + NV registers are in at an arbitrary power failure.
 * Drives automatic enrollment into the verification matrix.
 */
struct CrashProfile
{
    /**
     * The scheme recovers a trusted state after power loss. False
     * only for the volatile write-back baseline, which is excluded
     * from the crash matrix and post-crash sweeps.
     */
    bool persistent = true;

    /**
     * recover() fails when persisted counters were tampered with
     * while powered off (root-register comparison schemes). Schemes
     * whose recovery reconstructs or overwrites counters from other
     * NV state (Osiris trial-MAC, Anubis shadow restore, BMF root
     * set) make no such promise and skip the TamperAtRest suite.
     */
    bool tamperAtRestDetects = true;

    /**
     * Human-readable declaration of the commit-atomic persist set vs
     * the deferred (crashable) boundaries, for docs and --help text.
     */
    const char *boundaries = "";
};

/**
 * One metadata-persistence protocol behind the plug-in API.
 *
 * Strategies are default-constructed (optionally with knobs from the
 * MeeConfig), then attached to exactly one engine; attach() runs the
 * protocol's validation and resolves its statistics counters. All
 * hooks run with the engine attached. The protected forwarders expose
 * the engine machinery the former subclass implementations used, so a
 * protocol body reads the same as it did as a MemoryEngine subclass.
 */
class ProtocolStrategy
{
  public:
    virtual ~ProtocolStrategy() = default;

    /** Which protocol this strategy implements. */
    virtual Protocol id() const = 0;

    /** Crash-boundary declaration (see CrashProfile). */
    virtual CrashProfile crashProfile() const = 0;

    /** Registry subpath; AMNT refines it with the subtree level. */
    virtual std::string statPath() const { return protocolName(id()); }

    /**
     * Persist hook: called once per data write after the
     * architectural update, inside the write's commit group — its
     * persists are atomic with the update. Returns added latency.
     */
    virtual Cycle persist(const WriteContext &ctx) = 0;

    /**
     * Deferred per-write work outside the commit group (stop-loss
     * persists, subtree movement, pipeline drains): each persist here
     * is its own crash boundary. Returns added latency.
     */
    virtual Cycle postCommit(const WriteContext &) { return 0; }

    /** Hook: a metadata block was inserted into the cache. */
    virtual Cycle onMetaInsert(Addr) { return 0; }

    /** Hook: a cached metadata block's value changed. */
    virtual void onMetaUpdate(Addr) {}

    /** Hook: a metadata block left the cache (eviction scope). */
    virtual void onMetaEvict(Addr, bool) {}

    /**
     * Hook: a dirty tree node was written back and its parent must
     * track the new hash. Default keeps the parent lazy.
     */
    virtual void propagateParent(Addr parent_addr);

    /** Hook: power failure, after the NV root register latched but
     *  before volatile on-chip state is wiped. */
    virtual void onCrash() {}

    /** Recovery planner: rebuild a trusted state from NVM + NV
     *  registers and report the traffic/time model. */
    virtual RecoveryReport recover() = 0;

    /**
     * Snapshot the protocol's non-volatile on-chip state for the
     * sharded engine's epoch commit record. nullptr (the default)
     * declares "no NV state beyond the root register".
     */
    virtual std::unique_ptr<ProtocolShadow>
    cloneShadow() const
    {
        return nullptr;
    }

    /**
     * Restore NV on-chip state from a cloneShadow() snapshot taken at
     * the last committed epoch. Runs between crash() and recover(),
     * after the device journal rolled the torn epoch's NVM writes
     * back, so the restored state is exactly what a crash right after
     * that commit would have left.
     */
    virtual void restoreShadow(const ProtocolShadow &) {}

    /**
     * Bind to @p engine (exactly once, from the engine constructor)
     * and run the protocol's validation/setup against it.
     */
    void attach(MemoryEngine &engine);

  protected:
    /** Validation and stat-counter resolution; engine() is bound. */
    virtual void onAttach() {}

    // ------------------------------------------------ engine access
    MemoryEngine &engine() { return *eng_; }
    const MemoryEngine &engine() const { return *eng_; }

    const MeeConfig &config() const { return eng_->config_; }
    const mem::MemoryMap &map() const { return eng_->map_; }
    bmt::TreeState &tree() { return *eng_->tree_; }
    const bmt::TreeState &tree() const { return *eng_->tree_; }
    cache::Cache &mcache() { return eng_->mcache_; }
    const cache::Cache &mcache() const { return eng_->mcache_; }
    mem::NvmDevice &nvm() { return *eng_->nvm_; }
    StatGroup &stats() { return eng_->stats_; }
    const StatGroup &stats() const { return eng_->stats_; }
    obs::Tracer &trace() { return eng_->trace_; }
    crypto::CryptoSuite &crypto() { return eng_->crypto_; }
    /** Suite the engine MACs/encrypts @p data_addr with — the tenant
     *  suite under MeeConfig::tenantKeySeeds, crypto() otherwise.
     *  Recovery procedures that trial-MAC persisted data must use
     *  this, or tenant-keyed blocks would never verify. */
    const crypto::CryptoSuite &
    dataSuite(Addr data_addr) const
    {
        return eng_->dataSuite(data_addr);
    }
    std::vector<bmt::NodeRef> &pathScratch()
    {
        return eng_->pathScratch_;
    }

    // --------------------------------------------- shared machinery
    Cycle
    ensureResident(Addr maddr, unsigned &misses)
    {
        return eng_->ensureResident(maddr, misses);
    }
    void markDirty(Addr maddr) { eng_->markDirty(maddr); }
    void writeThrough(Addr maddr) { eng_->writeThrough(maddr); }
    void
    writeThroughMany(const Addr *addrs, std::size_t n)
    {
        eng_->writeThroughMany(addrs, n);
    }
    void
    persistBytes(Addr maddr, const mem::Block &bytes)
    {
        eng_->persistBytes(maddr, bytes);
    }
    void
    persistBytesMany(const Addr *addrs,
                     const mem::Block *const *blocks, std::size_t n)
    {
        eng_->persistBytesMany(addrs, blocks, n);
    }
    mem::Block
    latestBytes(Addr maddr) const
    {
        return eng_->latestBytes(maddr);
    }
    Cycle
    persistCost(unsigned serialized_writes) const
    {
        return eng_->persistCost(serialized_writes);
    }
    void
    pathOf(std::uint64_t counter_idx,
           std::vector<bmt::NodeRef> &out) const
    {
        eng_->pathOf(counter_idx, out);
    }
    void faultPersistPoint() { eng_->faultPersistPoint(); }
    fault::FaultDomain *
    faultDomain() const
    {
        return eng_->faultDomain();
    }
    void
    rebuildAndVerify(RecoveryReport &report)
    {
        eng_->rebuildAndVerify(report);
    }
    double
    recoveryMs(std::uint64_t blocks_read,
               std::uint64_t blocks_written) const
    {
        return eng_->recoveryMs(blocks_read, blocks_written);
    }
    void refreshRootRegister() { eng_->refreshRootRegister(); }

    /** Volatile only: the root register does not survive power-off. */
    void clearRootRegister() { eng_->rootRegister_ = 0; }

  private:
    MemoryEngine *eng_ = nullptr;
};

/**
 * Strategy factory for the mee-layer protocols (everything except
 * AMNT, which lives in the core layer — see the protocol registry).
 */
std::unique_ptr<ProtocolStrategy>
makeStrategy(Protocol p, const MeeConfig &config);

} // namespace amnt::mee

#endif // AMNT_MEE_PROTOCOL_HH
