/**
 * @file
 * Plain-text table formatting for the benchmark harnesses, which print
 * the same rows/series the paper's tables and figures report.
 */

#ifndef AMNT_COMMON_TABLE_HH
#define AMNT_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace amnt
{

/**
 * Accumulates rows of string cells and renders them with aligned,
 * space-padded columns. Numeric helpers format with fixed precision.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with 2-space column gaps and a rule under the header. */
    std::string render() const;

    /** Format a double with @p precision fraction digits. */
    static std::string num(double v, int precision = 3);

    /** Format an integer with thousands separators. */
    static std::string big(std::uint64_t v);

    /** Format a ratio as a percentage string, e.g. "12.5%". */
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace amnt

#endif // AMNT_COMMON_TABLE_HH
