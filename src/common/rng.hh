/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All simulation randomness flows through Xoshiro256StarStar seeded
 * explicitly, so every experiment in this repository is reproducible
 * bit-for-bit. A Zipf sampler provides the skewed ("hot region")
 * access distributions used by the workload generators.
 */

#ifndef AMNT_COMMON_RNG_HH
#define AMNT_COMMON_RNG_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"

namespace amnt
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna: fast, high-quality, and
 * deterministic across platforms (unlike std::mt19937 distributions).
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0xa34d'7005'eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 state expansion.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        for (auto &word : state_)
            word = next();
    }

    /** Next uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl64(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling (biased by at
        // most 2^-64 per draw, irrelevant for simulation workloads).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf(alpha) sampler over [0, n) using inverse-CDF with a precomputed
 * cumulative table. Suitable for the region-granular draws the workload
 * generators make (n up to a few hundred thousand).
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of ranks (must be >= 1).
     * @param alpha Skew parameter; 0 degenerates to uniform.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    /** Number of ranks. */
    std::uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace amnt

#endif // AMNT_COMMON_RNG_HH
