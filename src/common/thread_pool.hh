/**
 * @file
 * Work-stealing thread pool for coarse-grained, independent jobs.
 *
 * Each worker owns a deque: it pops its own work LIFO (cache-warm)
 * and steals FIFO from the other workers when it runs dry, so a few
 * long simulations left on one queue are redistributed instead of
 * serializing the tail of a sweep. Submissions round-robin across the
 * queues. The pool makes no ordering promises — callers that need
 * deterministic results index into a pre-sized output array, which is
 * exactly what sweep::run does.
 */

#ifndef AMNT_COMMON_THREAD_POOL_HH
#define AMNT_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace amnt
{

/** Fixed-size pool executing submitted tasks on worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means one per hardware thread
     *        (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins the workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue @p task; it may start immediately on another thread. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    /** Hardware concurrency with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    /** One worker's deque; owner pops back, thieves pop front. */
    struct WorkQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    /** Run one task if any can be popped or stolen. */
    bool runOne(unsigned self);

    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex sleepMutex_;
    std::condition_variable wake_;  ///< workers sleep here when dry
    std::condition_variable idle_;  ///< wait() sleeps here

    std::atomic<std::uint64_t> queued_{0};  ///< tasks not yet started
    std::atomic<std::uint64_t> pending_{0}; ///< queued + running
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> nextQueue_{0}; ///< round-robin submit
};

} // namespace amnt

#endif // AMNT_COMMON_THREAD_POOL_HH
