#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace amnt
{

namespace
{

bool quietMode = false;

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

[[noreturn]] void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    return msg;
}

} // namespace amnt
