#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace amnt
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    auto emit = [&os, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::big(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int digits = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (digits && digits % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++digits;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

} // namespace amnt
