/**
 * @file
 * Open-addressing hash map for the simulator's hot metadata tables.
 *
 * The secure-memory engine performs several map lookups per simulated
 * memory access (architectural counters, tree nodes, HMAC blocks,
 * persisted-MAC records, NVM backing store). std::unordered_map's
 * node-per-entry layout makes each of those a pointer chase plus an
 * allocation on insert; FlatMap probes a flat array instead.
 *
 * Design points:
 *  - power-of-two capacity, linear probing, max load factor 1/2;
 *  - keys and values live in separate arrays: the mapped values here
 *    are large (64 B blocks, counter structs), so probing a combined
 *    key+value array would stride over mostly-cold value bytes.
 *    Probes touch only the occupancy bitmap and the dense key array
 *    (8 keys per cache line); exactly one value line is read on a
 *    hit;
 *  - backward-shift deletion (no tombstones, so probe chains never
 *    degrade);
 *  - a SplitMix64-style finalizer as the default hasher, because the
 *    keys are block-aligned addresses whose low bits are constant —
 *    identity hashing (libstdc++'s std::hash) would collide entire
 *    regions onto a few buckets;
 *  - iteration in slot order, which is a deterministic function of
 *    the insertion history — reruns of a deterministic simulation
 *    visit entries in the same order on every platform. Iterators
 *    dereference to a {first, second} reference proxy (there is no
 *    std::pair in memory to point at).
 *
 * Only the operations the simulator needs are provided (find, [],
 * try_emplace, erase, clear, iteration, size); it is not a drop-in
 * std::unordered_map.
 */

#ifndef AMNT_COMMON_FLAT_MAP_HH
#define AMNT_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

namespace amnt
{

/** Mixes all key bits; good enough as a hash for 64-bit keys. */
struct U64Mix
{
    std::uint64_t
    operator()(std::uint64_t x) const
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }
};

/**
 * Open-addressing map from an integer key to @p V.
 * @tparam K Key type (an unsigned integer type).
 * @tparam V Mapped type; value-initialized by operator[]/try_emplace.
 * @tparam Hash Hasher; must mix low bits (see U64Mix).
 */
template <typename K, typename V, typename Hash = U64Mix>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;

    FlatMap() = default;

    /**
     * Reference view of one entry. Converts to pair<K, V> so ranges
     * of entries can be materialized (std::vector<value_type>(begin,
     * end)).
     */
    template <typename ValueT>
    struct Ref
    {
        const K &first;
        ValueT &second;

        operator value_type() const { return {first, second}; }
    };

    /** Iterator over occupied slots; dereferences to a Ref proxy. */
    template <typename MapT, typename ValueT>
    class Iter
    {
      public:
        // Dereferencing yields a proxy, not a true reference, so
        // this models an input iterator (enough for range-for and
        // range construction).
        using iterator_category = std::input_iterator_tag;
        using value_type = FlatMap::value_type;
        using difference_type = std::ptrdiff_t;
        using pointer = void;
        using reference = Ref<ValueT>;

        Iter(MapT *map, std::size_t slot) : map_(map), slot_(slot)
        {
            skipEmpty();
        }

        Ref<ValueT>
        operator*() const
        {
            return {map_->keys_[slot_], map_->values_[slot_]};
        }

        /** Keeps the proxy alive for the full it->second expression. */
        struct Arrow
        {
            Ref<ValueT> ref;
            Ref<ValueT> *operator->() { return &ref; }
        };

        Arrow operator->() const { return Arrow{**this}; }

        Iter &
        operator++()
        {
            ++slot_;
            skipEmpty();
            return *this;
        }

        bool
        operator==(const Iter &o) const
        {
            return slot_ == o.slot_;
        }

      private:
        friend class FlatMap;

        void
        skipEmpty()
        {
            while (slot_ < map_->keys_.size() &&
                   !map_->occupied_[slot_])
                ++slot_;
        }

        MapT *map_;
        std::size_t slot_;
    };

    using iterator = Iter<FlatMap, V>;
    using const_iterator = Iter<const FlatMap, const V>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, keys_.size()}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, keys_.size()}; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        keys_.clear();
        values_.clear();
        occupied_.clear();
        size_ = 0;
    }

    iterator
    find(const K &key)
    {
        const std::size_t slot = findSlot(key);
        return {this, slot == kNone ? keys_.size() : slot};
    }

    const_iterator
    find(const K &key) const
    {
        const std::size_t slot = findSlot(key);
        return {this, slot == kNone ? keys_.size() : slot};
    }

    bool contains(const K &key) const { return findSlot(key) != kNone; }

    /**
     * Insert a value-initialized entry for @p key if absent.
     * @return {iterator to the entry, true iff it was inserted}.
     */
    std::pair<iterator, bool>
    try_emplace(const K &key)
    {
        reserveOne();
        std::size_t slot = probeFor(key);
        if (occupied_[slot])
            return {iterator{this, slot}, false};
        occupied_[slot] = true;
        // Unoccupied slots always hold value-initialized entries
        // (vector growth value-initializes, erase re-initializes the
        // vacated slot), so only the key needs storing here.
        keys_[slot] = key;
        ++size_;
        return {iterator{this, slot}, true};
    }

    V &
    operator[](const K &key)
    {
        return values_[try_emplace(key).first.slot_];
    }

    /** Remove @p key; returns the number of entries removed (0/1). */
    std::size_t
    erase(const K &key)
    {
        std::size_t slot = findSlot(key);
        if (slot == kNone)
            return 0;
        // Backward-shift deletion: pull every displaced follower of
        // the probe chain one slot toward its home bucket.
        const std::size_t mask = keys_.size() - 1;
        std::size_t hole = slot;
        std::size_t next = (hole + 1) & mask;
        while (occupied_[next]) {
            const std::size_t home =
                static_cast<std::size_t>(Hash{}(keys_[next])) & mask;
            // The entry may move iff the hole lies within its probe
            // path, i.e. between its home slot and its current slot.
            const std::size_t dist_home_next = (next - home) & mask;
            const std::size_t dist_home_hole = (hole - home) & mask;
            if (dist_home_hole <= dist_home_next) {
                keys_[hole] = keys_[next];
                values_[hole] = std::move(values_[next]);
                hole = next;
            }
            next = (next + 1) & mask;
        }
        occupied_[hole] = false;
        keys_[hole] = K();
        values_[hole] = V();
        --size_;
        return 1;
    }

  private:
    static constexpr std::size_t kNone = ~std::size_t{0};
    static constexpr std::size_t kMinCapacity = 16;

    /** Slot of @p key, or kNone; capacity may be zero. */
    std::size_t
    findSlot(const K &key) const
    {
        if (keys_.empty())
            return kNone;
        const std::size_t mask = keys_.size() - 1;
        std::size_t slot = static_cast<std::size_t>(Hash{}(key)) & mask;
        while (occupied_[slot]) {
            if (keys_[slot] == key)
                return slot;
            slot = (slot + 1) & mask;
        }
        return kNone;
    }

    /** First slot for @p key: its entry, or the empty slot to use. */
    std::size_t
    probeFor(const K &key) const
    {
        const std::size_t mask = keys_.size() - 1;
        std::size_t slot = static_cast<std::size_t>(Hash{}(key)) & mask;
        while (occupied_[slot] && keys_[slot] != key)
            slot = (slot + 1) & mask;
        return slot;
    }

    /** Grow so one more entry keeps the load factor at most 1/2. */
    void
    reserveOne()
    {
        if (keys_.empty()) {
            keys_.resize(kMinCapacity);
            values_.resize(kMinCapacity);
            occupied_.assign(kMinCapacity, false);
            return;
        }
        if ((size_ + 1) * 2 <= keys_.size())
            return;
        std::vector<K> old_keys(keys_.size() * 2);
        std::vector<V> old_values(old_keys.size());
        std::vector<bool> old_occupied(old_keys.size(), false);
        old_keys.swap(keys_);
        old_values.swap(values_);
        old_occupied.swap(occupied_);
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (!old_occupied[i])
                continue;
            const std::size_t slot = probeFor(old_keys[i]);
            occupied_[slot] = true;
            keys_[slot] = old_keys[i];
            values_[slot] = std::move(old_values[i]);
        }
    }

    std::vector<K> keys_;
    std::vector<V> values_;
    std::vector<bool> occupied_;
    std::size_t size_ = 0;
};

} // namespace amnt

#endif // AMNT_COMMON_FLAT_MAP_HH
