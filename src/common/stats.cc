#include "common/stats.hh"

#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace amnt
{

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << prefix << kv.first << " " << kv.second << "\n";
    return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins, Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), bins_(bins, 0)
{
    if (bins == 0 || !(hi > lo))
        panic("Histogram requires bins >= 1 and hi > lo");
    if (scale == Scale::Log && !(lo > 0.0))
        panic("Histogram with log bins requires lo > 0");
}

std::ptrdiff_t
Histogram::binIndex(double sample) const
{
    if (sample < lo_)
        return -1;
    if (sample >= hi_)
        return static_cast<std::ptrdiff_t>(bins_.size());
    double pos;
    if (scale_ == Scale::Linear) {
        pos = (sample - lo_) / (hi_ - lo_) *
              static_cast<double>(bins_.size());
    } else {
        pos = std::log(sample / lo_) / std::log(hi_ / lo_) *
              static_cast<double>(bins_.size());
    }
    auto idx = static_cast<std::size_t>(pos);
    // Guard the floating-point edge where a sample just below hi
    // rounds up to bins().
    if (idx >= bins_.size())
        idx = bins_.size() - 1;
    return static_cast<std::ptrdiff_t>(idx);
}

void
Histogram::add(double sample, std::uint64_t weight)
{
    const std::ptrdiff_t idx = binIndex(sample);
    if (idx < 0) {
        underflow_ += weight;
    } else if (idx >= static_cast<std::ptrdiff_t>(bins_.size())) {
        overflow_ += weight;
    } else {
        bins_[static_cast<std::size_t>(idx)] += weight;
    }
    count_ += weight;
    sum_ += sample * static_cast<double>(weight);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::binLo(std::size_t i) const
{
    const double frac =
        static_cast<double>(i) / static_cast<double>(bins_.size());
    if (scale_ == Scale::Log)
        return lo_ * std::exp(std::log(hi_ / lo_) * frac);
    return lo_ + (hi_ - lo_) * frac;
}

double
Histogram::quantize(double sample) const
{
    const std::ptrdiff_t idx = binIndex(sample);
    if (idx < 0)
        return lo_;
    if (idx >= static_cast<std::ptrdiff_t>(bins_.size()))
        return hi_;
    return binLo(static_cast<std::size_t>(idx));
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    // Nearest rank: the smallest k in [1, count] with
    // k >= ceil(p/100 * count).
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t cum = underflow_;
    if (cum >= rank)
        return lo_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        cum += bins_[i];
        if (cum >= rank)
            return binLo(i);
    }
    return hi_;
}

void
Histogram::reset()
{
    for (auto &b : bins_)
        b = 0;
    count_ = 0;
    underflow_ = 0;
    overflow_ = 0;
    sum_ = 0.0;
}

HistogramSummary
Histogram::snapshot() const
{
    HistogramSummary s;
    s.count = count_;
    s.mean = mean();
    s.p50 = percentile(50.0);
    s.p90 = percentile(90.0);
    s.p95 = percentile(95.0);
    s.p99 = percentile(99.0);
    s.underflow = underflow_;
    s.overflow = overflow_;
    return s;
}

HistogramSummary
Histogram::snapshotAndReset()
{
    const HistogramSummary s = snapshot();
    reset();
    return s;
}

} // namespace amnt
