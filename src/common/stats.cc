#include "common/stats.hh"

#include <sstream>

#include "common/log.hh"

namespace amnt
{

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << prefix << kv.first << " " << kv.second << "\n";
    return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    if (bins == 0 || !(hi > lo))
        panic("Histogram requires bins >= 1 and hi > lo");
}

void
Histogram::add(double sample, std::uint64_t weight)
{
    const double span = hi_ - lo_;
    double pos = (sample - lo_) / span * static_cast<double>(bins_.size());
    std::size_t idx;
    if (pos < 0.0) {
        idx = 0;
    } else if (pos >= static_cast<double>(bins_.size())) {
        idx = bins_.size() - 1;
    } else {
        idx = static_cast<std::size_t>(pos);
    }
    bins_[idx] += weight;
    count_ += weight;
    sum_ += sample * static_cast<double>(weight);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::binLo(std::size_t i) const
{
    const double span = hi_ - lo_;
    return lo_ + span * static_cast<double>(i) /
        static_cast<double>(bins_.size());
}

} // namespace amnt
