#include "common/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace amnt
{

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    stop_.store(true);
    {
        // Taking the lock orders the store against sleeping workers'
        // predicate checks, so none can miss the shutdown signal.
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const std::size_t victim =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
        queues_[victim]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        queued_.fetch_add(1, std::memory_order_relaxed);
    }
    wake_.notify_one();
}

bool
ThreadPool::runOne(unsigned self)
{
    std::function<void()> task;

    // Own queue first, newest task (LIFO keeps the footprint warm)...
    {
        WorkQueue &own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
        }
    }
    // ... then steal the oldest task from the other queues.
    if (!task) {
        const std::size_t n = queues_.size();
        for (std::size_t d = 1; d < n && !task; ++d) {
            WorkQueue &other = *queues_[(self + d) % n];
            std::lock_guard<std::mutex> lock(other.mutex);
            if (!other.tasks.empty()) {
                task = std::move(other.tasks.front());
                other.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;

    queued_.fetch_sub(1, std::memory_order_relaxed);
    task();
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        idle_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        if (runOne(self))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wake_.wait(lock, [this] {
            return stop_.load() ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_.load() &&
            queued_.load(std::memory_order_relaxed) == 0)
            return;
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(sleepMutex_);
    idle_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

} // namespace amnt
