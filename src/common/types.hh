/**
 * @file
 * Fundamental types and geometry constants shared across the library.
 *
 * The configuration mirrors Table 1 of the AMNT paper: 64 B blocks,
 * 4 KB pages, split encryption counters (one 64 B counter block per
 * 4 KB page), and an 8-ary Bonsai Merkle Tree over counter blocks.
 */

#ifndef AMNT_COMMON_TYPES_HH
#define AMNT_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace amnt
{

/** Physical (or simulated-physical) byte address. */
using Addr = std::uint64_t;

/** Index of a 64 B block (address >> 6). */
using BlockId = std::uint64_t;

/** Index of a 4 KB page (address >> 12). */
using PageId = std::uint64_t;

/** Simulated clock cycles. */
using Cycle = std::uint64_t;

/** Simulated picoseconds (used by the memory timing model). */
using Picos = std::uint64_t;

/** Cache-block size in bytes: the unit of all memory traffic. */
inline constexpr std::size_t kBlockSize = 64;

/** log2 of the block size. */
inline constexpr unsigned kBlockShift = 6;

/** Page size in bytes. */
inline constexpr std::size_t kPageSize = 4096;

/** log2 of the page size. */
inline constexpr unsigned kPageShift = 12;

/** Blocks per page (also the arity of a counter block). */
inline constexpr std::size_t kBlocksPerPage = kPageSize / kBlockSize;

/** Arity of inner Bonsai Merkle Tree nodes (Table 1: "8-ary"). */
inline constexpr std::size_t kTreeArity = 8;

/**
 * Arity of counter blocks: one 64 B counter block provides minor
 * counters for the 64 blocks of one page (Table 1: "64-ary counters").
 */
inline constexpr std::size_t kCounterArity = 64;

/** Bytes of one hash entry inside a BMT node (8 entries per node). */
inline constexpr std::size_t kHashBytes = kBlockSize / kTreeArity;

/** Bits in one split-counter minor counter. */
inline constexpr unsigned kMinorCounterBits = 7;

/** Maximum minor counter value before a page overflow re-encryption. */
inline constexpr std::uint8_t kMinorCounterMax = (1u << kMinorCounterBits) - 1;

/** Convert a byte address to the id of the block containing it. */
constexpr BlockId
blockOf(Addr addr)
{
    return addr >> kBlockShift;
}

/** Convert a byte address to the id of the page containing it. */
constexpr PageId
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** First byte address of a block. */
constexpr Addr
blockAddr(BlockId block)
{
    return block << kBlockShift;
}

/** First byte address of a page. */
constexpr Addr
pageAddr(PageId page)
{
    return page << kPageShift;
}

/** Kind of a memory access as seen by the secure-memory engine. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

} // namespace amnt

#endif // AMNT_COMMON_TYPES_HH
