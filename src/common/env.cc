#include "common/env.hh"

#include <cerrno>
#include <cstdlib>

#include "common/log.hh"

namespace amnt
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;

    // Reject signs outright: strtoull accepts "-2" and wraps it.
    const char *p = v;
    while (*p == ' ' || *p == '\t')
        ++p;
    const bool signed_or_empty = *p == '-' || *p == '+' || *p == '\0';

    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (signed_or_empty || end == v || *end != '\0' ||
        errno == ERANGE) {
        warn("%s=\"%s\" is not a valid unsigned integer; using %llu",
             name, v, static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return parsed;
}

} // namespace amnt
