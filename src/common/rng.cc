#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace amnt
{

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
{
    if (n == 0)
        panic("ZipfSampler requires n >= 1");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = sum;
    }
    const double inv = 1.0 / sum;
    for (auto &c : cdf_)
        c *= inv;
    cdf_.back() = 1.0; // guard against rounding
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace amnt
