/**
 * @file
 * Lightweight statistics containers in the spirit of gem5's stats
 * package: named scalar counters, ratios computed on demand, and
 * fixed-bin histograms, all dumpable as text.
 */

#ifndef AMNT_COMMON_STATS_HH
#define AMNT_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace amnt
{

/**
 * A group of named scalar statistics. Cheap to increment, and
 * serializable in a stable (sorted) order for test assertions and
 * bench output.
 */
class StatGroup
{
  public:
    /** Add @p delta to the counter named @p name (creating it at 0). */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set the counter named @p name. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /**
     * Stable reference to the counter named @p name (created at 0).
     * Hot paths resolve their counters once and bump through the
     * reference, skipping the per-event string lookup; std::map never
     * invalidates references, and reset() zeroes values in place.
     */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Value of the counter, or 0 when never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** a / (a + b) as a double; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &denom_extra) const
    {
        const double a = static_cast<double>(get(num));
        const double b = static_cast<double>(get(denom_extra));
        return (a + b) == 0.0 ? 0.0 : a / (a + b);
    }

    /** Reset all counters to zero (names are kept). */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second = 0;
    }

    /** All counters in sorted-name order. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Multi-line "name value" dump. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Fixed-bin histogram over [lo, hi) with percentile queries.
 *
 * Bins are uniform either in the value (Scale::Linear) or in its
 * logarithm (Scale::Log, for latency-style long tails; requires
 * lo > 0). Samples outside [lo, hi) are tallied in separate
 * underflow/overflow counters — they still contribute to count() and
 * mean(), but no longer distort the edge bins.
 *
 * percentile(p) uses the nearest-rank definition (the smallest
 * recorded value v such that at least ceil(p/100 * count) samples are
 * <= v) resolved at bin granularity: it returns the lower edge of the
 * bin holding that rank, which is exactly quantize(v*) for the true
 * nearest-rank sample v*. Underflow resolves to lo and overflow to hi,
 * so results are always finite. An empty histogram reports 0.
 */
/**
 * Value snapshot of a Histogram: the summary fields campaign
 * artifacts and registry dumps report, decoupled from the live
 * (mutable) histogram so phase windows can be captured and the
 * histogram reused (see Histogram::snapshotAndReset).
 */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
};

class Histogram
{
  public:
    enum class Scale { Linear, Log };

    Histogram(double lo, double hi, std::size_t bins,
              Scale scale = Scale::Linear);

    /** Record one sample. */
    void add(double sample, std::uint64_t weight = 1);

    /** Number of samples recorded (including under/overflow). */
    std::uint64_t count() const { return count_; }

    /** Mean of recorded samples (including under/overflow). */
    double mean() const;

    /** Samples below lo / at-or-above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Bin contents (in-range samples only). */
    const std::vector<std::uint64_t> &bins() const { return bins_; }

    /** Lower edge of bin @p i (scale-aware). */
    double binLo(std::size_t i) const;

    /**
     * The value a recorded sample resolves to: the lower edge of its
     * bin, lo for underflow, hi for overflow. percentile() answers in
     * this quantized domain, which lets tests compare it exactly
     * against a sorted-reference oracle.
     */
    double quantize(double sample) const;

    /** Nearest-rank percentile for p in (0, 100]; 0 when empty. */
    double percentile(double p) const;

    /** Forget all samples (geometry is kept). */
    void reset();

    /** Summary of the samples recorded so far. */
    HistogramSummary snapshot() const;

    /**
     * Snapshot, then reset in place. The one safe way to reuse a
     * histogram across measurement phases: the returned summary holds
     * phase N's percentiles while the histogram starts phase N+1
     * empty, so later windows can never be polluted by earlier
     * samples (locked by tests/obs/test_histogram_percentiles.cc).
     */
    HistogramSummary snapshotAndReset();

  private:
    /** Bin of @p sample: -1 underflow, bins() overflow. */
    std::ptrdiff_t binIndex(double sample) const;

    double lo_;
    double hi_;
    Scale scale_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

} // namespace amnt

#endif // AMNT_COMMON_STATS_HH
