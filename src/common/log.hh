/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic() aborts on internal invariant violations (library bugs);
 * fatal() exits on unusable user configuration; warn()/inform() print
 * without stopping the simulation.
 */

#ifndef AMNT_COMMON_LOG_HH
#define AMNT_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace amnt
{

/** Abort with a formatted message; for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; for unusable user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace amnt

#endif // AMNT_COMMON_LOG_HH
