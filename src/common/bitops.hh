/**
 * @file
 * Small integer/bit utilities used throughout the library.
 */

#ifndef AMNT_COMMON_BITOPS_HH
#define AMNT_COMMON_BITOPS_HH

#include <cstdint>

#include "common/log.hh"

namespace amnt
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Integer exponentiation. */
constexpr std::uint64_t
ipow(std::uint64_t base, unsigned exp)
{
    std::uint64_t r = 1;
    while (exp--)
        r *= base;
    return r;
}

/** Ceiling division for unsigned operands. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Left-rotate of a 64-bit value. */
constexpr std::uint64_t
rotl64(std::uint64_t x, unsigned b)
{
    return (x << b) | (x >> (64 - b));
}

/** Right-rotate of a 32-bit value. */
constexpr std::uint32_t
rotr32(std::uint32_t x, unsigned b)
{
    return (x >> b) | (x << (32 - b));
}

/**
 * Load a little-endian 64-bit value from bytes. On little-endian
 * hosts this is a plain (unaligned-safe) memcpy that compiles to one
 * load; the byte loop is kept only for big-endian targets, where GCC
 * at -O2 would otherwise emit it verbatim on every crypto hot path.
 */
inline std::uint64_t
load64le(const std::uint8_t *p)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint64_t v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
#else
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
#endif
}

/** Store a 64-bit value to bytes, little-endian (see load64le). */
inline void
store64le(std::uint8_t *p, std::uint64_t v)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    __builtin_memcpy(p, &v, sizeof(v));
#else
    for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
    }
#endif
}

/** Load a big-endian 32-bit value from bytes. */
inline std::uint32_t
load32be(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

/** Store a 32-bit value to bytes, big-endian. */
inline void
store32be(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

/** Store a 64-bit value to bytes, big-endian. */
inline void
store64be(std::uint8_t *p, std::uint64_t v)
{
    store32be(p, static_cast<std::uint32_t>(v >> 32));
    store32be(p + 4, static_cast<std::uint32_t>(v));
}

} // namespace amnt

#endif // AMNT_COMMON_BITOPS_HH
