/**
 * @file
 * Strict environment-variable parsing shared by the benches and the
 * sweep runner.
 *
 * std::strtoull silently returns 0 for garbage and wraps negative
 * input, so a typo like AMNT_BENCH_INSTR=2m would quietly run a
 * 2-instruction benchmark. envU64 instead rejects anything that is
 * not a complete non-negative decimal integer, warns on stderr, and
 * falls back to the caller's default.
 */

#ifndef AMNT_COMMON_ENV_HH
#define AMNT_COMMON_ENV_HH

#include <cstdint>

namespace amnt
{

/**
 * Value of environment variable @p name parsed as an unsigned decimal
 * integer; @p fallback when unset. Malformed values (empty, trailing
 * garbage, a sign, or overflow past 2^64-1) produce one stderr
 * warning and the fallback.
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

} // namespace amnt

#endif // AMNT_COMMON_ENV_HH
