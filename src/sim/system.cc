#include "sim/system.hh"

#include <atomic>
#include <cstdlib>

#include "common/log.hh"

namespace amnt::sim
{

namespace
{

/**
 * AMNT_TRACE_RECORD destination for this System instance: the first
 * recording system of the process gets the bare path, later ones get
 * `.2`, `.3`, … so independent sweep jobs never share a file.
 */
std::string
envRecordPath()
{
    const char *base = std::getenv("AMNT_TRACE_RECORD");
    if (base == nullptr || base[0] == '\0')
        return "";
    static std::atomic<std::uint64_t> instances{0};
    const std::uint64_t n = ++instances;
    if (n == 1)
        return base;
    return std::string(base) + "." + std::to_string(n);
}

} // namespace

SystemConfig
SystemConfig::singleProgram(mee::Protocol p)
{
    SystemConfig cfg;
    cfg.cores = 1;
    cfg.protocol = p;
    cfg.privateLevels = {
        {"l1d", 32 * 1024, 8, 2},
        {"l2", 1024 * 1024, 16, 12},
    };
    cfg.sharedLlc = std::nullopt;
    return cfg;
}

SystemConfig
SystemConfig::multiProgram(mee::Protocol p)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.protocol = p;
    cfg.privateLevels = {
        {"l1d", 32 * 1024, 8, 2},
        {"l2", 128 * 1024, 8, 12},
    };
    cfg.sharedLlc = cache::CacheConfig{"l3", 1024 * 1024, 16, 30};
    return cfg;
}

SystemConfig
SystemConfig::specQuad(mee::Protocol p)
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.protocol = p;
    cfg.privateLevels = {
        {"l1d", 32 * 1024, 8, 2},
        {"l2", 512 * 1024, 8, 12},
    };
    cfg.sharedLlc = cache::CacheConfig{"l3", 8 * 1024 * 1024, 16, 30};
    return cfg;
}

System::System(const SystemConfig &config) : config_(config)
{
    if (config.cores == 0)
        fatal("system needs at least one core");
    if (config_.traceRecordPath.empty())
        config_.traceRecordPath = envRecordPath();

    // AMNT_SHARDS selects the sharded scale-out model (lane count
    // only; the slice partition is a separate, fixed parameter — see
    // SystemConfig::shards).
    if (config_.shards == 0) {
        if (const char *s = std::getenv("AMNT_SHARDS");
            s != nullptr && s[0] != '\0') {
            config_.shards = static_cast<unsigned>(
                std::strtoull(s, nullptr, 10));
        }
    }

    mee::MeeConfig mee_cfg = config.mee;
    if (config_.shards > 0) {
        shard::ShardOptions so = config_.shardOptions;
        so.lanes = config_.shards;
        so.cores = config_.cores;
        sharded_ = std::make_unique<shard::ShardedEngine>(
            config.protocol, mee_cfg, so);
    } else {
        const mem::MemoryMap probe(mee_cfg.dataBytes);
        nvm_ = std::make_unique<mem::NvmDevice>(probe.deviceBytes());
        engine_ = core::makeEngine(config.protocol, mee_cfg, *nvm_);
    }

    const std::uint64_t frames = mee_cfg.dataBytes / kPageSize;
    // Sharded: AMNT regions live inside each slice's (smaller) tree,
    // so the allocator's region granule comes from slice geometry.
    const auto &geo = sharded_ != nullptr
                          ? sharded_->shard(0).engine().map().geometry()
                          : engine_->map().geometry();
    const std::uint64_t frames_per_region =
        geo.countersPerNode(mee_cfg.amntSubtreeLevel);
    if (config.amntpp) {
        allocator_ = std::make_unique<os::AmntPpAllocator>(
            frames, frames_per_region, 10, config.amntppCfg);
    } else {
        allocator_ = std::make_unique<os::BuddyAllocator>(frames);
    }
    if (config.ageAllocator) {
        Rng rng(config.allocatorSeed);
        allocator_->ageSystem(rng, config.agedFreeFraction,
                              config.agedRunPages);
    }
    if (auto *pp =
            dynamic_cast<os::AmntPpAllocator *>(allocator_.get())) {
        // The modified OS has been restructuring since boot; start
        // from a biased free list (its cost was paid long ago, so it
        // is excluded from the measured OS instruction account).
        pp->restructure();
        lastOsInstructions_ = allocator_->instructions();
    }

    if (config.sharedLlc)
        llc_ = std::make_unique<cache::Cache>(*config.sharedLlc);

    cores_.resize(config.cores);

    if (sharded_ != nullptr) {
        sharded_->registerStats(registry_);
    } else {
        engine_->registerStats(registry_, "mee");
        nvm_->registerStats(registry_, "nvm");
    }
    if (llc_)
        registry_.addGroup("cache." + llc_->name(), &llc_->stats());
}

core::AmntStrategy *
System::amnt()
{
    if (engine_ == nullptr)
        return nullptr; // sharded: per-slice strategies, no single one
    return dynamic_cast<core::AmntStrategy *>(&engine_->strategy());
}

Cycle
System::memRead(Addr a, unsigned core)
{
    if (sharded_ != nullptr)
        return sharded_->read(a, nullptr, core);
    return engine_->read(a);
}

Cycle
System::memWrite(Addr a, unsigned core)
{
    if (sharded_ != nullptr)
        return sharded_->write(a, nullptr, core);
    return engine_->write(a);
}

void
System::syncShards()
{
    if (sharded_ == nullptr)
        return;
    sharded_->flush();
    std::vector<Cycle> lat(cores_.size(), 0);
    sharded_->harvestLatencies(lat);
    for (std::size_t i = 0; i < cores_.size(); ++i)
        cores_[i].cycles += lat[i];
}

void
System::addProcess(const WorkloadConfig &workload)
{
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core &c = cores_[i];
        if (c.workload != nullptr)
            continue;

        c.workload = std::make_unique<Workload>(workload);
        c.pageTable = std::make_unique<os::PageTable>(*allocator_);
        c.rng.reseed(workload.seed ^ (0xc0feULL + i));

        if (!config_.traceRecordPath.empty()) {
            const std::string path =
                cores_.size() == 1
                    ? config_.traceRecordPath
                    : config_.traceRecordPath + ".core" +
                          std::to_string(i);
            c.recorder =
                std::make_unique<traceio::TraceWriter>(path);
        }

        std::vector<cache::Cache *> path;
        for (const auto &level : config_.privateLevels) {
            cache::CacheConfig cc = level;
            cc.name = level.name + "." + std::to_string(i);
            c.privateCaches.push_back(
                std::make_unique<cache::Cache>(cc));
            path.push_back(c.privateCaches.back().get());
            registry_.addGroup("cache." + cc.name,
                               &c.privateCaches.back()->stats());
        }
        if (llc_)
            path.push_back(llc_.get());

        const unsigned idx = static_cast<unsigned>(i);
        c.hierarchy = std::make_unique<cache::CacheHierarchy>(
            path,
            [this, idx](Addr a) { return memRead(a, idx); },
            [this, idx](Addr a) { return memWrite(a, idx); });

        const std::string core_path = "core" + std::to_string(i);
        c.hierarchy->registerStats(registry_, core_path);
        registry_.addScalar(
            core_path + ".page_faults",
            [pt = c.pageTable.get()] { return pt->faults(); });

        // Initialization phase: programs allocate and touch their
        // core (hot) data structures up front, which is what makes
        // hot sets physically contiguous. Unmeasured, like the rest
        // of the pre-ROI execution.
        const auto hot_pages = static_cast<std::uint64_t>(
            static_cast<double>(workload.footprintPages) *
            workload.hotPagesFraction);
        for (std::uint64_t p = 0; p < hot_pages; ++p)
            c.pageTable->translate(pageAddr(p));
        lastOsInstructions_ = allocator_->instructions();
        return;
    }
    fatal("more processes than cores");
}

void
System::chargeOs(Core &c)
{
    const std::uint64_t now = allocator_->instructions();
    if (now != lastOsInstructions_) {
        const std::uint64_t delta = now - lastOsInstructions_;
        lastOsInstructions_ = now;
        osInstructions_ += delta;
        c.cycles += delta * config_.baseCpi;
    }
}

void
System::step(Core &c, unsigned idx)
{
    ++c.instructions;
    c.cycles += config_.baseCpi;
    ++c.refGap;

    // Timed trace replay drives issue off the recorded instruction
    // gaps; generators (and untimed v1 traces) are gated by the
    // workload's memory intensity.
    if (c.workload->timedReplay()) {
        if (!c.workload->replayTick())
            return;
    } else if (!c.workload->issuesMemRef(c.rng)) {
        return;
    }

    const MemRef ref = c.workload->next();
    if (c.recorder != nullptr) {
        c.recorder->append(ref, c.refGap);
        c.refGap = 0;
    }
    if (ref.churnPage)
        c.pageTable->unmapPage(ref.churnVictim);

    const Addr paddr = c.pageTable->translate(ref.vaddr);
    if (config_.recordAccessHistogram)
        ++histogram_[pageOf(paddr)];

    c.cycles += c.hierarchy->access(paddr, ref.type);
    if (ref.flush) {
        // Persistence-model flush: the dirty line is written through
        // to the secure memory controller on the critical path.
        c.cycles += memWrite(paddr, idx);
    }
    chargeOs(c);
}

System::Snapshot
System::snapshot() const
{
    Snapshot s;
    for (const auto &c : cores_) {
        s.coreCycles.push_back(c.cycles);
        s.coreInstructions.push_back(c.instructions);
        s.memReads.push_back(c.hierarchy->memReads());
        s.memWrites.push_back(c.hierarchy->memWrites());
        s.faults.push_back(c.pageTable->faults());
    }
    s.osInstructions = osInstructions_;
    if (sharded_ != nullptr) {
        for (unsigned i = 0; i < sharded_->sliceCount(); ++i) {
            const auto &eng = sharded_->shard(i).engine();
            s.mcacheHits += eng.metaCache().stats().get("hits");
            s.mcacheMisses += eng.metaCache().stats().get("misses");
            s.subtreeHits += eng.stats().get("subtree_hits");
            s.subtreeMisses += eng.stats().get("subtree_misses");
            s.movements += eng.stats().get("subtree_movements");
        }
    } else {
        s.mcacheHits = engine_->metaCache().stats().get("hits");
        s.mcacheMisses = engine_->metaCache().stats().get("misses");
        s.subtreeHits = engine_->stats().get("subtree_hits");
        s.subtreeMisses = engine_->stats().get("subtree_misses");
        s.movements = engine_->stats().get("subtree_movements");
    }
    return s;
}

void
System::advance(std::uint64_t n, std::uint64_t &daemon_clock)
{
    auto *pp = dynamic_cast<os::AmntPpAllocator *>(allocator_.get());

    // Round-robin lockstep in small quanta.
    constexpr std::uint64_t kQuantum = 64;
    std::uint64_t done = 0;
    while (done < n) {
        const std::uint64_t q = std::min(kQuantum, n - done);
        for (std::size_t ci = 0; ci < cores_.size(); ++ci) {
            for (std::uint64_t i = 0; i < q; ++i)
                step(cores_[ci], static_cast<unsigned>(ci));
        }
        done += q;
        daemon_clock += q;
        if (config_.amntpp && pp != nullptr &&
            daemon_clock >= config_.daemonEvery) {
            // Background reclamation pass (kswapd analogue).
            daemon_clock = 0;
            pp->restructure();
            chargeOs(cores_[0]);
        }
    }
}

RunResult
System::run(std::uint64_t instructions_per_core,
            std::uint64_t warmup_per_core)
{
    for (auto &c : cores_) {
        if (c.workload == nullptr)
            fatal("run() before every core has a process");
    }

    std::uint64_t daemon_clock = 0;
    if (warmup_per_core > 0)
        advance(warmup_per_core, daemon_clock);
    syncShards();
    const Snapshot before = snapshot();
    advance(instructions_per_core, daemon_clock);
    syncShards();
    const Snapshot after = snapshot();

    // Seal each recording with the run's silent tail so a looped
    // replay reproduces the instruction positions past the last
    // reference (the end-of-trace marker is written on close).
    for (auto &c : cores_) {
        if (c.recorder != nullptr)
            c.recorder->noteTail(c.refGap);
    }

    RunResult res;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        res.cycles = std::max(res.cycles, after.coreCycles[i] -
                                              before.coreCycles[i]);
        res.appInstructions +=
            after.coreInstructions[i] - before.coreInstructions[i];
        res.memReads += after.memReads[i] - before.memReads[i];
        res.memWrites += after.memWrites[i] - before.memWrites[i];
        res.pageFaults += after.faults[i] - before.faults[i];
    }
    res.dataAccesses = res.memReads + res.memWrites;
    res.osInstructions = after.osInstructions - before.osInstructions;

    const std::uint64_t mhits = after.mcacheHits - before.mcacheHits;
    const std::uint64_t mmiss =
        after.mcacheMisses - before.mcacheMisses;
    res.mcacheHitRate =
        mhits + mmiss == 0
            ? 0.0
            : static_cast<double>(mhits) /
                  static_cast<double>(mhits + mmiss);
    const std::uint64_t shits = after.subtreeHits - before.subtreeHits;
    const std::uint64_t smiss =
        after.subtreeMisses - before.subtreeMisses;
    res.subtreeHitRate =
        shits + smiss == 0
            ? 0.0
            : static_cast<double>(shits) /
                  static_cast<double>(shits + smiss);
    res.subtreeMovements = after.movements - before.movements;
    return res;
}

} // namespace amnt::sim
