#include "sim/trace.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"

namespace amnt::sim
{

namespace
{

constexpr char kMagic[8] = {'A', 'M', 'N', 'T', 'T', 'R', 'C', '1'};
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 9;

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (file_ == nullptr)
        fatal("cannot open trace '%s' for writing", path.c_str());
    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    header[8] = 1; // version
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        fatal("short write on trace header");
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
TraceWriter::append(const MemRef &ref)
{
    std::uint8_t rec[kRecordBytes];
    store64le(rec, ref.vaddr);
    rec[8] = static_cast<std::uint8_t>(
        (ref.type == AccessType::Write ? 1 : 0) |
        (ref.flush ? 2 : 0));
    if (std::fwrite(rec, 1, sizeof(rec), file_) != sizeof(rec))
        fatal("short write on trace record");
    ++count_;
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (file_ == nullptr)
        fatal("cannot open trace '%s'", path.c_str());
    std::uint8_t header[kHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header) ||
        std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        fatal("'%s' is not an AMNT trace", path.c_str());
    if (header[8] != 1)
        fatal("unsupported trace version %u", header[8]);
    dataStart_ = std::ftell(file_);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::next(MemRef &out)
{
    std::uint8_t rec[kRecordBytes];
    if (std::fread(rec, 1, sizeof(rec), file_) != sizeof(rec))
        return false;
    out = MemRef{};
    out.vaddr = load64le(rec);
    out.type = (rec[8] & 1) != 0 ? AccessType::Write
                                 : AccessType::Read;
    out.flush = (rec[8] & 2) != 0;
    return true;
}

void
TraceReader::rewind()
{
    std::fseek(file_, dataStart_, SEEK_SET);
}

std::uint64_t
recordTrace(Workload &source, std::uint64_t n, const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < n; ++i)
        writer.append(source.next());
    return writer.count();
}

} // namespace amnt::sim
