/**
 * @file
 * Memory-trace recording and replay.
 *
 * Downstream users rarely want synthetic workloads alone: this module
 * serializes reference streams (from the generators, from gem5/pin
 * conversions, or from production captures) into a compact binary
 * format and replays them through the same simulator plumbing.
 * WorkloadConfig::traceFile plugs a trace into System transparently.
 *
 * Format: 16-byte header ("AMNTTRC1" + version + reserved), then one
 * 9-byte record per reference: 8 B little-endian virtual address plus
 * 1 B flags (bit 0 write, bit 1 flush).
 */

#ifndef AMNT_SIM_TRACE_HH
#define AMNT_SIM_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hh"

namespace amnt::sim
{

/** Streams references into a trace file. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one reference. */
    void append(const MemRef &ref);

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    std::uint64_t count_ = 0;
};

/** Reads a trace file sequentially. */
class TraceReader
{
  public:
    /** Opens @p path; fatal on malformed headers. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Fetch the next record; false at end of trace. */
    bool next(MemRef &out);

    /** Restart from the first record. */
    void rewind();

  private:
    std::FILE *file_;
    long dataStart_ = 0;
};

/**
 * Record @p n references from a generator into @p path. Returns the
 * number written.
 */
std::uint64_t recordTrace(Workload &source, std::uint64_t n,
                          const std::string &path);

} // namespace amnt::sim

#endif // AMNT_SIM_TRACE_HH
