/**
 * @file
 * Synthetic workload generation.
 *
 * The metadata-persistence protocols under study are sensitive only
 * to the stream of (virtual address, read/write) references and its
 * spatial structure, so each PARSEC/SPEC benchmark is modeled as a
 * parameterized address-stream generator: footprint, memory
 * intensity, write fraction, a hot cluster with Zipf popularity, a
 * sequential streaming component, and optional page churn (frees that
 * exercise OS reclamation). Presets calibrated to the per-benchmark
 * behaviour the paper reports live in sim/presets.cc.
 */

#ifndef AMNT_SIM_WORKLOAD_HH
#define AMNT_SIM_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace amnt::sim
{

/** Generator parameters for one benchmark. */
struct WorkloadConfig
{
    std::string name = "synthetic";

    /** Virtual footprint in 4 KB pages. */
    std::uint64_t footprintPages = 16 * 1024;

    /** Memory references issued per instruction. */
    double memIntensity = 0.10;

    /** Fraction of references that are writes. */
    double writeFraction = 0.25;

    /** Fraction of the footprint forming the hot cluster. */
    double hotPagesFraction = 0.05;

    /** Fraction of reads directed at the hot cluster. */
    double readHotFraction = 0.7;

    /** Fraction of writes directed at the hot cluster. */
    double writeHotFraction = 0.8;

    /** Zipf skew inside the hot cluster (0 = uniform). */
    double zipfAlpha = 0.8;

    /** Fraction of references that stream sequentially. */
    double streamFraction = 0.1;

    /**
     * Probability of continuing a spatial run: the next reference is
     * the next 64 B block after the previous one. Real programs walk
     * structures, so consecutive blocks (which share HMAC blocks and
     * counter blocks) cluster; pointer-chasing workloads set this
     * low.
     */
    double spatialRun = 0.7;

    /**
     * Page churn: every this many references, one cold virtual page
     * is freed (returned to the OS) and later refaulted; 0 disables.
     * This is what exercises reclamation (and AMNT++ restructuring).
     */
    std::uint64_t churnEvery = 0;

    /**
     * Fraction of writes that are explicitly persisted (clwb-style),
     * as the paper's in-memory storage applications do under an SCM
     * persistence model. Flushed writes reach the secure-memory
     * engine immediately instead of waiting for an LLC write-back.
     */
    double flushWriteFraction = 0.0;

    /**
     * When non-empty, replay this recorded trace (see sim/trace.hh)
     * instead of synthesizing references; the trace wraps around at
     * its end. Generator parameters other than memIntensity are
     * ignored in trace mode.
     */
    std::string traceFile;

    std::uint64_t seed = 42;
};

/** One generated reference. */
struct MemRef
{
    Addr vaddr = 0;
    AccessType type = AccessType::Read;
    bool isInstruction = false; ///< reserved; data refs only for now

    /** Write must persist immediately (persistence-model flush). */
    bool flush = false;

    /** Set when this reference wants vaddr's page dropped first. */
    bool churnPage = false;
    PageId churnVictim = 0;
};

class TraceReader;

/** Deterministic address-stream generator (or trace replayer). */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config);
    ~Workload();

    /** Next reference in the stream. */
    MemRef next();

    /** Should the current instruction issue a memory reference? */
    bool
    issuesMemRef(Rng &core_rng) const
    {
        return core_rng.chance(config_.memIntensity);
    }

    const WorkloadConfig &config() const { return config_; }

  private:
    Addr pickPage(bool is_write);

    WorkloadConfig config_;
    Rng rng_;
    ZipfSampler hotZipf_;
    std::uint64_t hotPages_;
    std::uint64_t streamPos_ = 0;
    Addr lastVaddr_ = 0;
    std::uint64_t refs_ = 0;
    std::unique_ptr<TraceReader> trace_;
};

} // namespace amnt::sim

#endif // AMNT_SIM_WORKLOAD_HH
