/**
 * @file
 * Synthetic workload generation and trace replay.
 *
 * The metadata-persistence protocols under study are sensitive only
 * to the stream of (virtual address, read/write) references and its
 * spatial structure, so each PARSEC/SPEC benchmark is modeled as a
 * parameterized address-stream generator: footprint, memory
 * intensity, write fraction, a hot cluster with Zipf popularity, a
 * sequential streaming component, and optional page churn (frees that
 * exercise OS reclamation). Presets calibrated to the per-benchmark
 * behaviour the paper reports live in sim/presets.cc.
 *
 * Beyond the calibrated Synthetic generator, five microbenchmark
 * kinds widen the access-pattern space (WorkloadKind): footprint-wide
 * Zipfian hot/cold, GUPS-style random read-modify-write, STREAM-style
 * sequential with a configurable write share, a Zipf-keyed key-value
 * get/put mix, and a permutation-walk pointer chase. A workload can
 * also replay a recorded trace (sim/traceio/) instead of
 * synthesizing.
 *
 * Determinism contract (locked by tests/sim/test_sweep.cc): every
 * draw a generator makes flows through the instance's own rng_ seeded
 * from WorkloadConfig::seed — no global or static randomness — so a
 * workload's reference stream depends only on its own config, never
 * on which other workloads run in the same process or sweep.
 */

#ifndef AMNT_SIM_WORKLOAD_HH
#define AMNT_SIM_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace amnt::sim
{

/** Address-stream generator family. */
enum class WorkloadKind : std::uint8_t
{
    /** Calibrated benchmark model (hot cluster + stream + runs). */
    Synthetic,

    /** Zipf(zipfAlpha) popularity over the whole footprint, ranks
     *  scattered across the address space (hot/cold skew without
     *  spatial clustering). */
    Zipfian,

    /** GUPS-style random update: uniform random block, read then
     *  write of the same block (exact read-modify-write pairs). */
    Gups,

    /** STREAM-style sequential sweeps: reads walk the lower half of
     *  the footprint, writes walk the upper half; writeFraction sets
     *  the write share. */
    Stream,

    /** Key-value get/put mix: Zipf-popular keys map to
     *  kvValueBlocks-block values read/written sequentially;
     *  writeFraction is the put share. */
    KeyValue,

    /** Pointer chase: a full-period permutation walk over a
     *  power-of-two block set (lat_mem_rd-style scrambled linked
     *  list); writeFraction marks nodes in place. */
    PointerChase,
};

/** Generator parameters for one benchmark. */
struct WorkloadConfig
{
    std::string name = "synthetic";

    /** Which generator family produces the stream. */
    WorkloadKind kind = WorkloadKind::Synthetic;

    /** Virtual footprint in 4 KB pages. */
    std::uint64_t footprintPages = 16 * 1024;

    /** Memory references issued per instruction. */
    double memIntensity = 0.10;

    /** Fraction of references that are writes. */
    double writeFraction = 0.25;

    /** Fraction of the footprint forming the hot cluster. */
    double hotPagesFraction = 0.05;

    /** Fraction of reads directed at the hot cluster. */
    double readHotFraction = 0.7;

    /** Fraction of writes directed at the hot cluster. */
    double writeHotFraction = 0.8;

    /** Zipf skew inside the hot cluster (0 = uniform); for the
     *  Zipfian and KeyValue kinds, the skew of the whole key space. */
    double zipfAlpha = 0.8;

    /** Fraction of references that stream sequentially. */
    double streamFraction = 0.1;

    /**
     * Probability of continuing a spatial run: the next reference is
     * the next 64 B block after the previous one. Real programs walk
     * structures, so consecutive blocks (which share HMAC blocks and
     * counter blocks) cluster; pointer-chasing workloads set this
     * low.
     */
    double spatialRun = 0.7;

    /**
     * Page churn: every this many references, one cold virtual page
     * is freed (returned to the OS) and later refaulted; 0 disables.
     * This is what exercises reclamation (and AMNT++ restructuring).
     */
    std::uint64_t churnEvery = 0;

    /**
     * Fraction of writes that are explicitly persisted (clwb-style),
     * as the paper's in-memory storage applications do under an SCM
     * persistence model. Flushed writes reach the secure-memory
     * engine immediately instead of waiting for an LLC write-back.
     */
    double flushWriteFraction = 0.0;

    /** Value size of the KeyValue kind, in 64 B blocks. */
    std::uint64_t kvValueBlocks = 4;

    /**
     * When non-empty, replay this recorded trace (see sim/traceio/)
     * instead of synthesizing references; the trace wraps around at
     * its end. v2 traces replay timed (the recorded instruction gaps
     * gate issue); v1 traces are gated by memIntensity as generators
     * are. Generator parameters other than memIntensity are ignored
     * in trace mode.
     */
    std::string traceFile;

    std::uint64_t seed = 42;
};

/** One generated reference. */
struct MemRef
{
    Addr vaddr = 0;
    AccessType type = AccessType::Read;
    bool isInstruction = false; ///< reserved; data refs only for now

    /** Write must persist immediately (persistence-model flush). */
    bool flush = false;

    /** Set when this reference wants vaddr's page dropped first. */
    bool churnPage = false;
    PageId churnVictim = 0;
};

namespace traceio
{
class TraceReader;
struct TraceRecord;
} // namespace traceio

/** Deterministic address-stream generator (or trace replayer). */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config);
    ~Workload();

    /** Next reference in the stream. */
    MemRef next();

    /** Should the current instruction issue a memory reference? */
    bool
    issuesMemRef(Rng &core_rng) const
    {
        return core_rng.chance(config_.memIntensity);
    }

    /**
     * True when this workload replays a timed (v2) trace: reference
     * issue is then driven by replayTick(), not issuesMemRef().
     */
    bool timedReplay() const;

    /**
     * Timed replay only: account one executed instruction. Returns
     * true when the trace schedules a reference on this instruction
     * (fetch it with next()).
     */
    bool replayTick();

    const WorkloadConfig &config() const { return config_; }

  private:
    Addr pickPage(bool is_write);
    MemRef nextSynthetic();
    MemRef nextZipfian();
    MemRef nextGups();
    MemRef nextStream();
    MemRef nextKeyValue();
    MemRef nextPointerChase();
    MemRef nextFromTrace();
    void prefetchTrace();

    WorkloadConfig config_;
    Rng rng_;
    ZipfSampler hotZipf_;
    std::uint64_t hotPages_;
    std::uint64_t streamPos_ = 0;
    Addr lastVaddr_ = 0;
    std::uint64_t refs_ = 0;

    // Zipfian / KeyValue: popularity over the whole footprint.
    std::unique_ptr<ZipfSampler> fullZipf_;

    // Gups: second half of the current read-modify-write pair.
    bool gupsWritePending_ = false;
    Addr gupsAddr_ = 0;

    // Stream: independent read and write cursors.
    Addr streamReadPos_ = 0;
    Addr streamWritePos_ = 0;

    // KeyValue: remaining blocks of the op in flight.
    std::uint64_t kvSlots_ = 0;
    std::uint64_t kvRemaining_ = 0;
    Addr kvNextAddr_ = 0;
    bool kvIsPut_ = false;

    // PointerChase: k-bit LCG state walking a block permutation.
    std::uint64_t chaseState_ = 0;
    std::uint64_t chaseMask_ = 0;
    std::uint64_t chaseInc_ = 1;

    // Trace replay.
    std::unique_ptr<traceio::TraceReader> trace_;
    std::unique_ptr<traceio::TraceRecord> pending_;
    std::uint64_t replayCountdown_ = 0;
};

} // namespace amnt::sim

#endif // AMNT_SIM_WORKLOAD_HH
