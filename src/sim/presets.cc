#include "sim/presets.hh"

#include <unordered_map>

#include "common/log.hh"

namespace amnt::sim
{

namespace
{

struct P
{
    std::uint64_t pages;  ///< footprint in 4 KB pages
    double intensity;     ///< memory refs per instruction
    double writes;        ///< write fraction
    double hotPages;      ///< hot cluster as fraction of footprint
    double readHot;       ///< reads hitting the hot cluster
    double writeHot;      ///< writes hitting the hot cluster
    double zipf;          ///< skew inside the hot cluster
    double stream;        ///< sequential component
    double run;           ///< spatial-run continuation probability
    std::uint64_t churn;  ///< refs per page churn (0 = none)
};

WorkloadConfig
build(const std::string &name, const P &p)
{
    WorkloadConfig w;
    w.name = name;
    w.footprintPages = p.pages;
    w.memIntensity = p.intensity;
    w.writeFraction = p.writes;
    w.hotPagesFraction = p.hotPages;
    w.readHotFraction = p.readHot;
    w.writeHotFraction = p.writeHot;
    w.zipfAlpha = p.zipf;
    w.streamFraction = p.stream;
    w.spatialRun = p.run;
    w.churnEvery = p.churn;
    // Distinct deterministic seed per benchmark.
    w.seed = 0x9e3779b9;
    for (char c : name)
        w.seed = w.seed * 131 + static_cast<unsigned char>(c);
    return w;
}

// PARSEC 3.0 simlarge characteristics.
//   pages intens writes hotPg readH writeH zipf stream run churn
const std::unordered_map<std::string, P> kParsec = {
    {"blackscholes", {4096, 0.028, 0.22, 0.30, 0.95, 0.95, 0.9, 0.05, 0.80, 0}},
    {"bodytrack", {24576, 0.084, 0.30, 0.08, 0.80, 0.90, 0.9, 0.05, 0.70, 8192}},
    {"canneal", {393216, 0.210, 0.11, 0.01, 0.05, 0.90, 0.7, 0.02, 0.05, 0}},
    {"dedup", {196608, 0.126, 0.38, 0.05, 0.60, 0.85, 0.8, 0.15, 0.70, 4096}},
    {"facesim", {98304, 0.112, 0.33, 0.06, 0.70, 0.88, 0.8, 0.10, 0.75, 0}},
    {"ferret", {98304, 0.098, 0.22, 0.05, 0.65, 0.85, 0.8, 0.10, 0.65, 0}},
    {"fluidanimate", {65536, 0.126, 0.38, 0.08, 0.75, 0.90, 0.9, 0.08, 0.75, 8192}},
    {"freqmine", {49152, 0.056, 0.22, 0.08, 0.80, 0.90, 0.9, 0.05, 0.60, 0}},
    {"raytrace", {98304, 0.070, 0.11, 0.06, 0.75, 0.85, 0.8, 0.05, 0.55, 0}},
    {"streamcluster", {24576, 0.168, 0.06, 0.10, 0.45, 0.85, 0.6, 0.50, 0.85, 0}},
    {"swaptions", {4096, 0.015, 0.30, 0.25, 0.92, 0.95, 0.9, 0.02, 0.70, 0}},
    {"vips", {49152, 0.084, 0.33, 0.06, 0.65, 0.85, 0.8, 0.20, 0.80, 0}},
    {"x264", {49152, 0.070, 0.27, 0.08, 0.75, 0.88, 0.8, 0.15, 0.80, 0}},
};

// SPEC CPU2017 speed, ref inputs, SimPoint regions of interest.
const std::unordered_map<std::string, P> kSpec = {
    {"perlbench", {32768, 0.056, 0.27, 0.08, 0.80, 0.90, 0.9, 0.05, 0.60, 0}},
    {"gcc", {65536, 0.084, 0.32, 0.06, 0.70, 0.85, 0.8, 0.08, 0.50, 4096}},
    {"bwaves", {196608, 0.154, 0.16, 0.02, 0.40, 0.80, 0.7, 0.82, 0.85, 0}},
    {"mcf", {262144, 0.280, 0.05, 0.02, 0.25, 0.85, 0.7, 0.02, 0.15, 0}},
    {"cactuBSSN", {163840, 0.168, 0.08, 0.04, 0.50, 0.85, 0.7, 0.35, 0.80, 0}},
    {"lbm", {327680, 0.210, 0.42, 0.02, 0.40, 0.85, 0.7, 0.92, 0.85, 0}},
    {"omnetpp", {98304, 0.126, 0.27, 0.05, 0.60, 0.85, 0.8, 0.03, 0.30, 2048}},
    {"wrf", {131072, 0.112, 0.22, 0.05, 0.65, 0.85, 0.8, 0.30, 0.80, 0}},
    {"xalancbmk", {65536, 0.098, 0.22, 0.06, 0.70, 0.85, 0.8, 0.05, 0.40, 0}},
    {"x264", {49152, 0.070, 0.27, 0.08, 0.75, 0.88, 0.8, 0.15, 0.80, 0}},
    {"imagick", {32768, 0.042, 0.32, 0.10, 0.85, 0.90, 0.9, 0.10, 0.80, 0}},
    {"leela", {8192, 0.021, 0.22, 0.15, 0.90, 0.92, 0.9, 0.02, 0.50, 0}},
    {"nab", {24576, 0.056, 0.27, 0.08, 0.80, 0.88, 0.9, 0.05, 0.70, 0}},
    {"exchange2", {2048, 0.007, 0.30, 0.25, 0.92, 0.95, 0.9, 0.01, 0.70, 0}},
    {"fotonik3d", {196608, 0.140, 0.22, 0.02, 0.40, 0.80, 0.7, 0.82, 0.85, 0}},
    {"roms", {163840, 0.126, 0.22, 0.02, 0.40, 0.80, 0.7, 0.80, 0.85, 0}},
    {"xz", {262144, 0.196, 0.50, 0.03, 0.75, 0.97, 0.8, 0.03, 0.65, 4096}},
    {"deepsjeng", {131072, 0.112, 0.38, 0.06, 0.70, 0.94, 0.9, 0.03, 0.30, 0}},
};

WorkloadConfig
lookup(const std::unordered_map<std::string, P> &table,
       const std::string &name, const char *suite)
{
    auto it = table.find(name);
    if (it == table.end())
        fatal("unknown %s benchmark '%s'", suite, name.c_str());
    return build(name, it->second);
}

/**
 * The synthetic generator suite. Intensities and footprints are
 * chosen so every kind is memory-bound at bench scale; the write
 * fractions follow the archetypes (GUPS pairs are inherently 50%
 * writes regardless of the knob).
 */
WorkloadConfig
buildSynthetic(const std::string &name, WorkloadKind kind)
{
    WorkloadConfig w = build(name, {65536, 0.15, 0.30, 0.05, 0.7,
                                    0.8, 0.9, 0.0, 0.0, 0});
    w.kind = kind;
    switch (kind) {
      case WorkloadKind::Zipfian:
        w.zipfAlpha = 0.99;
        break;
      case WorkloadKind::Gups:
        w.footprintPages = 131072;
        w.memIntensity = 0.20;
        break;
      case WorkloadKind::Stream:
        w.memIntensity = 0.25;
        break;
      case WorkloadKind::KeyValue:
        w.writeFraction = 0.20; // put share
        w.zipfAlpha = 0.9;
        w.kvValueBlocks = 4;
        // Storage semantics: every put block persists immediately.
        w.flushWriteFraction = 1.0;
        break;
      case WorkloadKind::PointerChase:
        w.footprintPages = 131072;
        w.memIntensity = 0.30;
        w.writeFraction = 0.10;
        break;
      default:
        break;
    }
    return w;
}

const std::unordered_map<std::string, WorkloadKind> kSynthetic = {
    {"zipfian", WorkloadKind::Zipfian},
    {"gups", WorkloadKind::Gups},
    {"stream", WorkloadKind::Stream},
    {"kvstore", WorkloadKind::KeyValue},
    {"chase", WorkloadKind::PointerChase},
};

} // namespace

WorkloadConfig
parsecPreset(const std::string &name)
{
    return lookup(kParsec, name, "PARSEC");
}

WorkloadConfig
specPreset(const std::string &name)
{
    return lookup(kSpec, name, "SPEC CPU2017");
}

WorkloadConfig
syntheticPreset(const std::string &name)
{
    auto it = kSynthetic.find(name);
    if (it == kSynthetic.end())
        fatal("unknown synthetic workload '%s'", name.c_str());
    return buildSynthetic(name, it->second);
}

WorkloadConfig
namedWorkload(const std::string &name)
{
    if (kParsec.count(name) != 0)
        return parsecPreset(name);
    if (kSpec.count(name) != 0)
        return specPreset(name);
    if (kSynthetic.count(name) != 0)
        return syntheticPreset(name);
    fatal("unknown workload '%s' (not a PARSEC, SPEC CPU2017, or "
          "synthetic preset; synthetic: zipfian gups stream kvstore "
          "chase)",
          name.c_str());
}

const std::vector<std::string> &
parsecBenchmarks()
{
    static const std::vector<std::string> order = {
        "blackscholes", "bodytrack", "canneal", "dedup", "facesim",
        "ferret", "fluidanimate", "freqmine", "raytrace",
        "streamcluster", "swaptions", "vips", "x264",
    };
    return order;
}

const std::vector<std::pair<std::string, std::string>> &
parsecMultiprogramPairs()
{
    static const std::vector<std::pair<std::string, std::string>> pairs =
        {
            {"bodytrack", "fluidanimate"},
            {"swaptions", "streamcluster"},
            {"x264", "freqmine"},
        };
    return pairs;
}

const std::vector<std::string> &
syntheticBenchmarks()
{
    static const std::vector<std::string> order = {
        "zipfian", "gups", "stream", "kvstore", "chase",
    };
    return order;
}

const std::vector<std::string> &
specBenchmarks()
{
    static const std::vector<std::string> order = {
        "perlbench", "gcc", "bwaves", "mcf", "cactuBSSN", "lbm",
        "omnetpp", "wrf", "xalancbmk", "x264", "imagick", "leela",
        "nab", "exchange2", "fotonik3d", "roms", "xz", "deepsjeng",
    };
    return order;
}

} // namespace amnt::sim
