/**
 * @file
 * Workload presets named after the PARSEC 3.0 and SPEC CPU2017
 * benchmarks the paper evaluates.
 *
 * Each preset encodes the published memory behaviour of its namesake
 * (footprint, intensity, write share, locality) at the fidelity the
 * protocols care about; see DESIGN.md for the substitution argument.
 * Key calibration anchors from the paper: canneal has poor metadata
 * cache locality (30.4% hit rate) but spatially tight writes; xz is
 * the most write-intensive SPEC benchmark; swaptions/streamcluster
 * and x264/freqmine pairs are not memory intensive; mcf and
 * cactuBSSN are read-dominated.
 */

#ifndef AMNT_SIM_PRESETS_HH
#define AMNT_SIM_PRESETS_HH

#include <string>
#include <vector>

#include "sim/workload.hh"

namespace amnt::sim
{

/** PARSEC preset by benchmark name; fatal on unknown names. */
WorkloadConfig parsecPreset(const std::string &name);

/** SPEC CPU2017 preset by benchmark name; fatal on unknown names. */
WorkloadConfig specPreset(const std::string &name);

/**
 * Microbenchmark-generator preset by name ("zipfian", "gups",
 * "stream", "kvstore", "chase"); fatal on unknown names. These are
 * the WorkloadKind families of sim/workload.hh at calibrated default
 * parameters.
 */
WorkloadConfig syntheticPreset(const std::string &name);

/**
 * Resolve @p name against every suite — PARSEC, then SPEC CPU2017,
 * then the synthetic generators; fatal (listing the suites) when no
 * suite knows it. This is what `--workload=` feeds.
 */
WorkloadConfig namedWorkload(const std::string &name);

/** The PARSEC benchmarks of Figure 4, in the paper's order. */
const std::vector<std::string> &parsecBenchmarks();

/** The multiprogram pairs of Figures 5-7. */
const std::vector<std::pair<std::string, std::string>> &
parsecMultiprogramPairs();

/** The SPEC benchmarks of Figure 8. */
const std::vector<std::string> &specBenchmarks();

/** The synthetic generator presets, in suite order. */
const std::vector<std::string> &syntheticBenchmarks();

} // namespace amnt::sim

#endif // AMNT_SIM_PRESETS_HH
