#include "sim/sweep.hh"

#include <chrono>

#include "common/env.hh"
#include "common/thread_pool.hh"

namespace amnt::sweep
{

namespace
{

Outcome
runJob(const Job &job)
{
    const auto start = std::chrono::steady_clock::now();

    Outcome out;
    sim::System sys(job.config);
    for (const auto &w : job.processes)
        sys.addProcess(w);
    out.result = sys.run(job.instructions, job.warmup);
    if (job.config.recordAccessHistogram)
        out.accessHistogram = sys.accessHistogram();
    out.statsJson = sys.statsJson();

    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return out;
}

} // namespace

unsigned
threadCount()
{
    const std::uint64_t n =
        envU64("AMNT_SWEEP_THREADS", ThreadPool::hardwareThreads());
    return n == 0 ? 1 : static_cast<unsigned>(n);
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &fn,
            unsigned threads)
{
    if (threads == 0)
        threads = threadCount();
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (static_cast<std::size_t>(threads) > n)
        threads = static_cast<unsigned>(n);
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

std::vector<Outcome>
run(const std::vector<Job> &jobs, unsigned threads)
{
    std::vector<Outcome> outcomes(jobs.size());
    parallelFor(
        jobs.size(),
        [&](std::size_t i) { outcomes[i] = runJob(jobs[i]); },
        threads);
    return outcomes;
}

} // namespace amnt::sweep
