/**
 * @file
 * Full-system assembly: cores + data-cache hierarchy + OS paging +
 * secure memory engine + NVM device.
 *
 * Each core runs one process (workload + private page table) through
 * private cache levels into an optional shared LLC; misses and dirty
 * write-backs reach the single secure-memory engine. Cores advance in
 * round-robin lockstep; the run's cycle count is the slowest core's,
 * matching the multiprogram methodology of the paper (both regions of
 * interest measured in parallel).
 */

#ifndef AMNT_SIM_SYSTEM_HH
#define AMNT_SIM_SYSTEM_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/amnt.hh"
#include "mee/engine.hh"
#include "obs/registry.hh"
#include "os/amntpp_allocator.hh"
#include "os/page_table.hh"
#include "shard/sharded_engine.hh"
#include "sim/traceio/writer.hh"
#include "sim/workload.hh"

namespace amnt::sim
{

/** System construction parameters. */
struct SystemConfig
{
    unsigned cores = 1;
    mee::Protocol protocol = mee::Protocol::Volatile;
    mee::MeeConfig mee;

    /** Use the AMNT++ biased allocator + reclamation daemon. */
    bool amntpp = false;
    os::AmntPpConfig amntppCfg;

    /**
     * Sharded scale-out (shard/sharded_engine.hh): 0 keeps the
     * single-engine legacy path (unless AMNT_SHARDS overrides it at
     * construction); N >= 1 runs the sharded model with N host drain
     * lanes. The logical slice partition is fixed by
     * shardOptions.slices (default AMNT_SHARD_SLICES = 4)
     * independent of N, so simulated results are byte-identical at
     * any shard count — `--shards=1` is the sharded model on one
     * lane, not the legacy engine.
     */
    unsigned shards = 0;

    /** Slice/epoch knobs for the sharded engine (0 = env default). */
    shard::ShardOptions shardOptions;

    /** Private cache levels per core (L1 first). */
    std::vector<cache::CacheConfig> privateLevels = {
        {"l1d", 32 * 1024, 8, 2},
        {"l2", 1024 * 1024, 16, 12},
    };

    /** Shared last-level cache (nullopt = none). */
    std::optional<cache::CacheConfig> sharedLlc;

    /** Age the allocator before the run (long-running system). */
    bool ageAllocator = true;
    double agedFreeFraction = 0.7;
    std::uint64_t agedRunPages = 8192; ///< 32 MB contiguous runs
    std::uint64_t allocatorSeed = 7;

    /** Background-reclamation tick (instructions) for AMNT++. */
    std::uint64_t daemonEvery = 250000;

    /** Base CPI of non-memory instructions. */
    Cycle baseCpi = 1;

    /** Record a physical-frame access histogram (Figure 3). */
    bool recordAccessHistogram = false;

    /**
     * When non-empty, record every core's reference stream (warm-up
     * included) as a v2 trace (sim/traceio/): core 0 writes exactly
     * this path on a single-core system, and `<path>.core<i>` per
     * core otherwise. Left empty, the AMNT_TRACE_RECORD environment
     * variable fills it in at construction (the second and later
     * System instances of the process then append `.2`, `.3`, … so
     * sweep jobs do not clobber each other; record single jobs, or
     * set AMNT_SWEEP_THREADS=1, for stable numbering). Recording
     * only observes: the run itself is bit-identical with it on or
     * off.
     */
    std::string traceRecordPath;

    /** Canonical single-program config (paper section 6 defaults). */
    static SystemConfig singleProgram(mee::Protocol p);

    /** Two cores, private L1/L2, shared 1 MB L3 (section 6.2). */
    static SystemConfig multiProgram(mee::Protocol p);

    /** Four cores, 512 kB L2, shared 8 MB L3 (section 6.5, SPEC). */
    static SystemConfig specQuad(mee::Protocol p);
};

/** Aggregate outcome of a run. */
struct RunResult
{
    Cycle cycles = 0; ///< slowest core
    std::uint64_t appInstructions = 0;
    std::uint64_t osInstructions = 0;
    std::uint64_t dataAccesses = 0;
    std::uint64_t memReads = 0;   ///< LLC misses reaching the MEE
    std::uint64_t memWrites = 0;  ///< write-backs reaching the MEE
    double mcacheHitRate = 0.0;
    double subtreeHitRate = 0.0;  ///< AMNT only
    std::uint64_t subtreeMovements = 0;
    std::uint64_t pageFaults = 0;
};

/** An assembled simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &config);

    /**
     * Bind a process to the next free core. Must be called exactly
     * `cores` times before run().
     */
    void addProcess(const WorkloadConfig &workload);

    /**
     * Run every core for @p instructions_per_core instructions after
     * an unmeasured warm-up of @p warmup_per_core instructions — the
     * simulated analogue of fast-forwarding to the benchmark's
     * region of interest.
     */
    RunResult run(std::uint64_t instructions_per_core,
                  std::uint64_t warmup_per_core = 0);

    /** The secure-memory engine (legacy single-engine path only). */
    mee::MemoryEngine &
    engine()
    {
        if (engine_ == nullptr)
            fatal("System::engine() on a sharded system; use "
                  "sharded()");
        return *engine_;
    }

    /** The sharded engine; nullptr on the legacy path. */
    shard::ShardedEngine *sharded() { return sharded_.get(); }

    /** The physical allocator. */
    os::BuddyAllocator &allocator() { return *allocator_; }

    /** Physical frame access histogram (when enabled). */
    const std::unordered_map<PageId, std::uint64_t> &
    accessHistogram() const
    {
        return histogram_;
    }

    /** AMNT strategy accessor; nullptr for other protocols. */
    core::AmntStrategy *amnt();

    /**
     * The federated stats registry: every component of this system
     * registers at construction under stable dotted paths ("mee.*",
     * "cache.*", "core<i>.*", "nvm.*"; DESIGN.md §11).
     */
    obs::StatRegistry &registry() { return registry_; }

    /** One sorted JSON document of every registered statistic. */
    std::string statsJson() const { return registry_.dumpJson(); }

  private:
    struct Core
    {
        std::unique_ptr<Workload> workload;
        std::unique_ptr<os::PageTable> pageTable;
        std::vector<std::unique_ptr<cache::Cache>> privateCaches;
        std::unique_ptr<cache::CacheHierarchy> hierarchy;
        Rng rng{1};
        Cycle cycles = 0;
        std::uint64_t instructions = 0;

        /** Trace recording sink (null unless recording). */
        std::unique_ptr<traceio::TraceWriter> recorder;

        /** Instructions since this core's last reference. */
        std::uint64_t refGap = 0;
    };

    /** Advance one instruction on core @p c (index @p idx). */
    void step(Core &c, unsigned idx);

    /** Route one memory read/write to the active engine. */
    Cycle memRead(Addr a, unsigned core);
    Cycle memWrite(Addr a, unsigned core);

    /**
     * Sharded path: drain + commit everything buffered and fold the
     * accrued per-core drain latencies into the cores' cycle counts.
     * Called at every measurement boundary so snapshots observe a
     * fully-settled machine. No-op on the legacy path.
     */
    void syncShards();

    /** Attribute freshly accrued OS instructions to core @p c. */
    void chargeOs(Core &c);

    /** Counters captured at the measurement boundary. */
    struct Snapshot
    {
        std::vector<Cycle> coreCycles;
        std::vector<std::uint64_t> coreInstructions;
        std::vector<std::uint64_t> memReads;
        std::vector<std::uint64_t> memWrites;
        std::vector<std::uint64_t> faults;
        std::uint64_t osInstructions = 0;
        std::uint64_t mcacheHits = 0;
        std::uint64_t mcacheMisses = 0;
        std::uint64_t subtreeHits = 0;
        std::uint64_t subtreeMisses = 0;
        std::uint64_t movements = 0;
    };

    Snapshot snapshot() const;

    /** Drive all cores for @p n instructions each. */
    void advance(std::uint64_t n, std::uint64_t &daemon_clock);

    SystemConfig config_;
    obs::StatRegistry registry_;
    std::unique_ptr<mem::NvmDevice> nvm_;
    std::unique_ptr<mee::MemoryEngine> engine_;
    std::unique_ptr<shard::ShardedEngine> sharded_;
    std::unique_ptr<os::BuddyAllocator> allocator_;
    std::unique_ptr<cache::Cache> llc_;
    std::vector<Core> cores_;
    std::uint64_t lastOsInstructions_ = 0;
    std::uint64_t osInstructions_ = 0;
    std::unordered_map<PageId, std::uint64_t> histogram_;
};

} // namespace amnt::sim

#endif // AMNT_SIM_SYSTEM_HH
