#include "sim/traceio/champsim.hh"

#include <cstdio>
#include <memory>

#include "common/bitops.hh"
#include "sim/traceio/writer.hh"

namespace amnt::sim::traceio
{

namespace
{

// Offsets inside one 64 B ChampSim record (all fields little-endian):
// u64 ip; u8 is_branch; u8 branch_taken; u8 dst_regs[2];
// u8 src_regs[4]; u64 dst_mem[2]; u64 src_mem[4].
constexpr std::size_t kDstMemOffset = 16;
constexpr std::size_t kSrcMemOffset = 32;
constexpr std::size_t kDstMemCount = 2;
constexpr std::size_t kSrcMemCount = 4;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

} // namespace

std::string
importChampSim(const std::string &in, const std::string &out,
               ImportStats *stats)
{
    std::unique_ptr<std::FILE, FileCloser> file(
        std::fopen(in.c_str(), "rb"));
    if (file == nullptr)
        return "'" + in + "': cannot open ChampSim trace";

    ImportStats local;
    std::uint64_t gap = 0; ///< instructions since the last reference
    {
        TraceWriter writer(out);
        std::uint8_t rec[kChampSimRecordBytes];
        for (;;) {
            const std::size_t got =
                std::fread(rec, 1, sizeof(rec), file.get());
            if (got == 0)
                break;
            if (got != sizeof(rec)) {
                std::remove(out.c_str());
                return "'" + in +
                       "': truncated ChampSim instruction record " +
                       std::to_string(local.instructions);
            }
            ++local.instructions;
            ++gap;

            // Reads before writes, matching execution order.
            auto emit = [&](Addr vaddr, bool is_write) {
                MemRef ref;
                ref.vaddr = vaddr;
                ref.type = is_write ? AccessType::Write
                                    : AccessType::Read;
                writer.append(ref, gap == 0 ? 1 : gap);
                gap = 0;
                ++local.records;
                ++(is_write ? local.writes : local.reads);
            };
            for (std::size_t i = 0; i < kSrcMemCount; ++i) {
                const Addr a =
                    load64le(rec + kSrcMemOffset + 8 * i);
                if (a != 0)
                    emit(a, false);
            }
            for (std::size_t i = 0; i < kDstMemCount; ++i) {
                const Addr a =
                    load64le(rec + kDstMemOffset + 8 * i);
                if (a != 0)
                    emit(a, true);
            }
        }
    }
    if (local.instructions == 0) {
        std::remove(out.c_str());
        return "'" + in + "': ChampSim trace holds no instructions";
    }
    if (local.records == 0) {
        std::remove(out.c_str());
        return "'" + in +
               "': ChampSim trace holds no memory references";
    }
    if (stats != nullptr)
        *stats = local;
    return "";
}

} // namespace amnt::sim::traceio
