/**
 * @file
 * On-disk memory-trace format (DESIGN.md §12).
 *
 * A trace is a 16-byte header followed by a stream of variable-length
 * records. Two format generations share the header shape:
 *
 *   v1 ("AMNTTRC1", version byte 1): fixed 9-byte records — 8 B
 *      little-endian virtual address + 1 B flags. Untimed: replay is
 *      gated by the replaying workload's memIntensity. Kept readable
 *      for old captures; no longer written.
 *
 *   v2 ("AMNTTRC2", version byte 2): varint records. Each record is
 *        flags      1 B   bits 0-1 op kind (0 read, 1 write,
 *                         2 flushed write, 3 end-of-trace marker),
 *                         bit 2 page churn, bits 3-7 reserved (must
 *                         be zero)
 *        gap        varint  instructions since the previous
 *                           reference, inclusive of the referencing
 *                           instruction (>= 1; 0 replays as 1)
 *        delta      varint  zigzag(vaddr - previous record's vaddr);
 *                           the first record's base address is 0
 *        victim     varint  churn victim PageId; present only when
 *                           the churn bit is set
 *      The stream ends with exactly one end-of-trace marker: a bare
 *      kind-3 flags byte (no churn bit) followed by one varint — the
 *      tail gap, i.e. instructions executed after the final
 *      reference (0 when the run ended on one). The marker makes
 *      truncation detectable and lets wrap-around replay reproduce
 *      the recording's silent tail: the first wrapped reference
 *      fires tail + firstGap instructions after the last real one.
 *      Timed: replay reproduces the exact instruction positions of
 *      the recorded references, which is what makes a replayed run's
 *      StatRegistry dump bit-identical to the live run's.
 *
 * Varints are LEB128 (7 data bits per byte, high bit continues), at
 * most 10 bytes for a u64. Readers reject non-canonical encodings
 * (a continuation into a zero final byte, a 10th byte above 1, or
 * more than 10 bytes) so every valid value has exactly one encoding.
 */

#ifndef AMNT_SIM_TRACEIO_FORMAT_HH
#define AMNT_SIM_TRACEIO_FORMAT_HH

#include <cstddef>
#include <cstdint>

namespace amnt::sim::traceio
{

/** Header: magic (8 B) + version (1 B) + 7 reserved zero bytes. */
inline constexpr std::size_t kHeaderBytes = 16;

inline constexpr char kMagicV1[8] = {'A', 'M', 'N', 'T',
                                     'T', 'R', 'C', '1'};
inline constexpr char kMagicV2[8] = {'A', 'M', 'N', 'T',
                                     'T', 'R', 'C', '2'};

inline constexpr std::uint8_t kVersion1 = 1;
inline constexpr std::uint8_t kVersion2 = 2;

/** v1 payload: 8 B address + 1 B flags. */
inline constexpr std::size_t kV1RecordBytes = 9;

/** Record flag byte layout (v2; v1 uses bits 0-1 only). */
inline constexpr std::uint8_t kKindMask = 0x03;
inline constexpr std::uint8_t kKindRead = 0x00;
inline constexpr std::uint8_t kKindWrite = 0x01;
inline constexpr std::uint8_t kKindFlush = 0x02; ///< flushed write
inline constexpr std::uint8_t kKindEnd = 0x03;   ///< end-of-trace marker
inline constexpr std::uint8_t kFlagChurn = 0x04;
inline constexpr std::uint8_t kReservedFlags = 0xf8;

/** Longest LEB128 encoding of a u64. */
inline constexpr std::size_t kMaxVarintBytes = 10;

/** Map a signed delta onto the unsigned varint domain. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/**
 * LEB128-encode @p v into @p buf (at least kMaxVarintBytes long).
 * @return bytes written (1..10); always the canonical encoding.
 */
inline std::size_t
putVarint(std::uint8_t *buf, std::uint64_t v)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        buf[n++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
    }
    buf[n++] = static_cast<std::uint8_t>(v);
    return n;
}

/**
 * Decode one canonical LEB128 varint from @p buf (of @p len bytes).
 * @return bytes consumed, or 0 when the buffer is truncated or the
 *         encoding is non-canonical / longer than a u64.
 */
inline std::size_t
getVarint(const std::uint8_t *buf, std::size_t len, std::uint64_t &out)
{
    std::uint64_t v = 0;
    for (std::size_t n = 0; n < len && n < kMaxVarintBytes; ++n) {
        const std::uint8_t byte = buf[n];
        if (n == kMaxVarintBytes - 1 && byte > 1)
            return 0; // would overflow 64 bits
        if (n > 0 && byte == 0)
            return 0; // non-canonical: trailing zero group
        v |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * n);
        if ((byte & 0x80) == 0) {
            out = v;
            return n + 1;
        }
    }
    return 0; // truncated or more than kMaxVarintBytes
}

} // namespace amnt::sim::traceio

#endif // AMNT_SIM_TRACEIO_FORMAT_HH
