#include "sim/traceio/writer.hh"

#include <cstring>

#include "common/log.hh"
#include "sim/traceio/format.hh"

namespace amnt::sim::traceio
{

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb")), path_(path)
{
    if (file_ == nullptr)
        fatal("cannot open trace '%s' for writing", path.c_str());
    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagicV2, sizeof(kMagicV2));
    header[8] = kVersion2;
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        fatal("short write on trace header '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    if (file_ == nullptr)
        return;
    // Seal the stream: a bare kind-3 flags byte plus the tail gap.
    std::uint8_t rec[1 + kMaxVarintBytes];
    rec[0] = kKindEnd;
    const std::size_t n = 1 + putVarint(rec + 1, tailGap_);
    if (std::fwrite(rec, 1, n, file_) != n)
        fatal("short write on trace end marker '%s'", path_.c_str());
    std::fclose(file_);
}

void
TraceWriter::append(const MemRef &ref, std::uint64_t gap)
{
    // flags + gap + delta + optional victim.
    std::uint8_t rec[1 + 3 * kMaxVarintBytes];
    std::uint8_t flags = ref.type == AccessType::Write
                             ? (ref.flush ? kKindFlush : kKindWrite)
                             : kKindRead;
    if (ref.churnPage)
        flags |= kFlagChurn;
    std::size_t n = 0;
    rec[n++] = flags;
    n += putVarint(rec + n, gap);
    n += putVarint(rec + n,
                   zigzagEncode(static_cast<std::int64_t>(
                       ref.vaddr - prevVaddr_)));
    if (ref.churnPage)
        n += putVarint(rec + n, ref.churnVictim);
    if (std::fwrite(rec, 1, n, file_) != n)
        fatal("short write on trace record '%s'", path_.c_str());
    prevVaddr_ = ref.vaddr;
    ++count_;
}

std::uint64_t
recordTrace(Workload &source, std::uint64_t n, const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < n; ++i)
        writer.append(source.next());
    return writer.count();
}

} // namespace amnt::sim::traceio
