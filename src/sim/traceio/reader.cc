#include "sim/traceio/reader.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"
#include "sim/traceio/format.hh"

namespace amnt::sim::traceio
{

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb")), path_(path)
{
    if (file_ == nullptr) {
        fail("cannot open trace");
        return;
    }
    std::uint8_t header[kHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
        fail("truncated header");
        return;
    }
    if (std::memcmp(header, kMagicV1, sizeof(kMagicV1)) == 0)
        version_ = kVersion1;
    else if (std::memcmp(header, kMagicV2, sizeof(kMagicV2)) == 0)
        version_ = kVersion2;
    else {
        fail("not an AMNT trace (bad magic)");
        return;
    }
    if (header[8] != version_) {
        fail(strfmt("header version %u does not match magic "
                    "generation %u",
                    header[8], version_));
        version_ = 0;
        return;
    }
    dataStart_ = std::ftell(file_);
    // A replayable trace needs at least one record; diagnosing the
    // empty file here keeps every consumer's error path uniform.
    const int c = std::fgetc(file_);
    if (c == EOF) {
        fail("trace holds no records");
        return;
    }
    std::ungetc(c, file_);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
TraceReader::fail(const std::string &what)
{
    if (!error_.empty())
        return;
    error_ = "'" + path_ + "': " + what;
}

bool
TraceReader::readVarint(std::uint64_t &out, const char *field)
{
    std::uint8_t buf[kMaxVarintBytes];
    std::size_t n = 0;
    while (n < kMaxVarintBytes) {
        const int c = std::fgetc(file_);
        if (c == EOF) {
            fail(strfmt("truncated %s varint in record %llu", field,
                        static_cast<unsigned long long>(
                            recordsRead_)));
            return false;
        }
        buf[n++] = static_cast<std::uint8_t>(c);
        if ((buf[n - 1] & 0x80) == 0)
            break;
    }
    if (getVarint(buf, n, out) != n) {
        fail(strfmt("overlong or non-canonical %s varint in record "
                    "%llu",
                    field,
                    static_cast<unsigned long long>(recordsRead_)));
        return false;
    }
    return true;
}

bool
TraceReader::nextV1(TraceRecord &out)
{
    std::uint8_t rec[kV1RecordBytes];
    const std::size_t got = std::fread(rec, 1, sizeof(rec), file_);
    if (got == 0)
        return false; // clean end of trace
    if (got != sizeof(rec)) {
        fail(strfmt("truncated record %llu",
                    static_cast<unsigned long long>(recordsRead_)));
        return false;
    }
    out = TraceRecord{};
    out.ref.vaddr = load64le(rec);
    out.ref.type = (rec[8] & 1) != 0 ? AccessType::Write
                                     : AccessType::Read;
    out.ref.flush = (rec[8] & 2) != 0;
    ++recordsRead_;
    return true;
}

bool
TraceReader::nextV2(TraceRecord &out)
{
    const int first = std::fgetc(file_);
    if (first == EOF) {
        // A well-formed v2 stream always ends with its marker; a
        // hard EOF here means the file was cut short.
        fail("truncated trace (missing end-of-trace marker)");
        return false;
    }
    const auto flags = static_cast<std::uint8_t>(first);
    if ((flags & kReservedFlags) != 0) {
        fail(strfmt("reserved flag bits 0x%02x set in record %llu",
                    flags & kReservedFlags,
                    static_cast<unsigned long long>(recordsRead_)));
        return false;
    }
    if (flags == kKindEnd) {
        if (!readVarint(tailGap_, "tail-gap"))
            return false;
        if (std::fgetc(file_) != EOF) {
            fail("data after end-of-trace marker");
            return false;
        }
        atEnd_ = true;
        return false; // clean end of trace
    }
    const std::uint8_t kind = flags & kKindMask;
    if (kind > kKindFlush) {
        // Kind 3 is only valid as the bare end marker checked above.
        fail(strfmt("invalid op kind %u in record %llu", kind,
                    static_cast<unsigned long long>(recordsRead_)));
        return false;
    }

    out = TraceRecord{};
    std::uint64_t delta_zz = 0;
    if (!readVarint(out.gap, "gap") ||
        !readVarint(delta_zz, "address-delta"))
        return false;
    out.ref.vaddr =
        prevVaddr_ +
        static_cast<std::uint64_t>(zigzagDecode(delta_zz));
    out.ref.type = kind == kKindRead ? AccessType::Read
                                     : AccessType::Write;
    out.ref.flush = kind == kKindFlush;
    if ((flags & kFlagChurn) != 0) {
        std::uint64_t victim = 0;
        if (!readVarint(victim, "churn-victim"))
            return false;
        out.ref.churnPage = true;
        out.ref.churnVictim = victim;
    }
    prevVaddr_ = out.ref.vaddr;
    ++recordsRead_;
    return true;
}

bool
TraceReader::next(TraceRecord &out)
{
    if (!ok() || atEnd_)
        return false;
    return version_ == kVersion1 ? nextV1(out) : nextV2(out);
}

void
TraceReader::rewind()
{
    if (!ok())
        return;
    std::clearerr(file_);
    std::fseek(file_, dataStart_, SEEK_SET);
    prevVaddr_ = 0;
    atEnd_ = false;
}

} // namespace amnt::sim::traceio
