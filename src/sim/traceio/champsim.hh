/**
 * @file
 * ChampSim trace importer: converts the fixed 64-byte-per-instruction
 * ChampSim format into the native v2 trace (format.hh).
 *
 * A ChampSim record is one retired instruction: instruction pointer,
 * branch metadata, register lists, then up to 2 destination and 4
 * source memory operands (zero = unused). The importer turns every
 * non-zero source operand into a read and every non-zero destination
 * operand into a write, preserving instruction gaps: the first
 * operand of an instruction carries the distance (in instructions)
 * from the previous memory-referencing instruction, and additional
 * operands of the same instruction follow at gap 1 — our simulator
 * issues at most one reference per instruction, so a multi-operand
 * instruction replays as a dense burst of adjacent instructions.
 *
 * Input must be uncompressed (xz/gzip captures need decompressing
 * first). Import is streaming: O(1) memory at any trace size.
 */

#ifndef AMNT_SIM_TRACEIO_CHAMPSIM_HH
#define AMNT_SIM_TRACEIO_CHAMPSIM_HH

#include <cstdint>
#include <string>

namespace amnt::sim::traceio
{

/** Byte size of one ChampSim instruction record. */
inline constexpr std::size_t kChampSimRecordBytes = 64;

/** Import counters, for reporting. */
struct ImportStats
{
    std::uint64_t instructions = 0; ///< ChampSim records consumed
    std::uint64_t records = 0;      ///< native records written
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/**
 * Convert the ChampSim trace at @p in into a native v2 trace at
 * @p out. Returns an empty string on success, otherwise a
 * description of the defect (missing/truncated input, no memory
 * references); on failure the output file is not left behind.
 */
std::string importChampSim(const std::string &in,
                           const std::string &out,
                           ImportStats *stats = nullptr);

} // namespace amnt::sim::traceio

#endif // AMNT_SIM_TRACEIO_CHAMPSIM_HH
