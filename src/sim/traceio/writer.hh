/**
 * @file
 * Streaming trace writer: appends v2 varint records (format.hh) to a
 * file with O(1) memory, delta-encoding addresses against the
 * previous record.
 */

#ifndef AMNT_SIM_TRACEIO_WRITER_HH
#define AMNT_SIM_TRACEIO_WRITER_HH

#include <cstdio>
#include <string>

#include "sim/workload.hh"

namespace amnt::sim::traceio
{

/** Streams references into a v2 trace file. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path and writes the header; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /**
     * Append one reference. @p gap is the number of instructions
     * since the previous reference, counting the referencing
     * instruction itself (so consecutive references have gap 1);
     * standalone captures that have no instruction stream use the
     * default.
     */
    void append(const MemRef &ref, std::uint64_t gap = 1);

    /**
     * Instructions executed since the last reference (the stream's
     * silent tail). Written into the end-of-trace marker on close;
     * call again to update — the latest value wins.
     */
    void noteTail(std::uint64_t gap) { tailGap_ = gap; }

    /** Records written so far (the end marker is not a record). */
    std::uint64_t count() const { return count_; }

    const std::string &path() const { return path_; }

  private:
    std::FILE *file_;
    std::string path_;
    Addr prevVaddr_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t tailGap_ = 0;
};

/**
 * Record @p n references from a generator into @p path with unit
 * gaps. Returns the number written.
 */
std::uint64_t recordTrace(Workload &source, std::uint64_t n,
                          const std::string &path);

} // namespace amnt::sim::traceio

#endif // AMNT_SIM_TRACEIO_WRITER_HH
