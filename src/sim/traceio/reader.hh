/**
 * @file
 * Streaming trace reader: sequentially decodes v1 (fixed-width) and
 * v2 (varint) traces with O(1) memory.
 *
 * Malformed input never aborts the process: every defect — missing
 * file, short or alien header, unsupported version, truncated record,
 * overlong or non-canonical varint, reserved flag bits, zero records
 * — parks the reader in a failed state with a descriptive error()
 * string; next() then simply returns false. Callers that cannot
 * proceed (Workload replay) turn that into fatal() themselves.
 */

#ifndef AMNT_SIM_TRACEIO_READER_HH
#define AMNT_SIM_TRACEIO_READER_HH

#include <cstdio>
#include <string>

#include "sim/traceio/format.hh"
#include "sim/workload.hh"

namespace amnt::sim::traceio
{

/** One decoded trace record. */
struct TraceRecord
{
    MemRef ref;

    /**
     * Instructions since the previous reference, inclusive (>= 1).
     * v1 traces carry no timing and always report 1.
     */
    std::uint64_t gap = 1;
};

/** Reads a trace file sequentially; see file comment for error model. */
class TraceReader
{
  public:
    /** Opens @p path and validates the header. Check ok() after. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** False once any defect has been found (see error()). */
    bool ok() const { return error_.empty(); }

    /** Human-readable description of the first defect; empty if ok. */
    const std::string &error() const { return error_; }

    /** Format generation: 1 or 2 (0 when the header was rejected). */
    unsigned version() const { return version_; }

    /** True when records carry real instruction gaps (v2). */
    bool timed() const { return version_ == kVersion2; }

    /**
     * Decode the next record. Returns false at end of trace or on a
     * defect; distinguish with ok().
     */
    bool next(TraceRecord &out);

    /** Restart from the first record (no-op in the failed state). */
    void rewind();

    /** Records decoded since construction (not reset by rewind). */
    std::uint64_t recordsRead() const { return recordsRead_; }

    /**
     * Instructions after the final reference, from the v2
     * end-of-trace marker (0 until the marker has been reached, and
     * always 0 for v1). Wrap-around replay delays the first wrapped
     * reference by this much.
     */
    std::uint64_t tailGap() const { return tailGap_; }

  private:
    void fail(const std::string &what);
    bool readVarint(std::uint64_t &out, const char *field);
    bool nextV1(TraceRecord &out);
    bool nextV2(TraceRecord &out);

    std::FILE *file_ = nullptr;
    std::string path_;
    std::string error_;
    unsigned version_ = 0;
    long dataStart_ = 0;
    Addr prevVaddr_ = 0;
    std::uint64_t recordsRead_ = 0;
    std::uint64_t tailGap_ = 0;
    bool atEnd_ = false; ///< v2 end marker reached (clears on rewind)
};

} // namespace amnt::sim::traceio

#endif // AMNT_SIM_TRACEIO_READER_HH
