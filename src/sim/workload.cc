#include "sim/workload.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/traceio/reader.hh"

namespace amnt::sim
{

namespace
{

/**
 * Scatter a popularity rank across [0, n): consecutive ranks land on
 * unrelated slots, so "hot" is a property of popularity, not of a
 * contiguous address range. Multiplication by a prime far larger
 * than any footprint is a bijection on [0, n) whenever the prime
 * does not divide n.
 */
std::uint64_t
scatterRank(std::uint64_t rank, std::uint64_t n)
{
    return (rank * 2654435761ULL) % n;
}

/** Largest power-of-two exponent with 2^k <= n (n >= 1). */
unsigned
floorLog2(std::uint64_t n)
{
    unsigned k = 0;
    while ((2ULL << k) <= n)
        ++k;
    return k;
}

} // namespace

Workload::~Workload() = default;

Workload::Workload(const WorkloadConfig &config)
    : config_(config), rng_(config.seed),
      hotZipf_(std::max<std::uint64_t>(
                   1, static_cast<std::uint64_t>(
                          static_cast<double>(config.footprintPages) *
                          config.hotPagesFraction)),
               config.zipfAlpha),
      hotPages_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(config.footprintPages) *
                 config.hotPagesFraction)))
{
    if (config.footprintPages == 0)
        panic("workload needs a non-zero footprint");

    if (!config.traceFile.empty()) {
        trace_ = std::make_unique<traceio::TraceReader>(
            config.traceFile);
        if (!trace_->ok())
            fatal("trace replay: %s", trace_->error().c_str());
        prefetchTrace();
        return;
    }

    const std::uint64_t blocks =
        config.footprintPages * kBlocksPerPage;
    switch (config.kind) {
      case WorkloadKind::Zipfian:
        fullZipf_ = std::make_unique<ZipfSampler>(
            config.footprintPages, config.zipfAlpha);
        break;
      case WorkloadKind::KeyValue:
        kvSlots_ = std::max<std::uint64_t>(
            1, blocks / std::max<std::uint64_t>(
                            1, config.kvValueBlocks));
        fullZipf_ =
            std::make_unique<ZipfSampler>(kvSlots_, config.zipfAlpha);
        break;
      case WorkloadKind::PointerChase: {
        // Walk a full-period permutation of the largest power-of-two
        // block set inside the footprint. The k-bit LCG (multiplier
        // = 1 mod 4, odd increment) has period 2^k; the output mixer
        // below scatters the state so successive nodes share no
        // spatial relation, like a scrambled linked list.
        const unsigned k = floorLog2(std::max<std::uint64_t>(
            2, blocks));
        chaseMask_ = (k >= 64) ? ~0ULL : ((1ULL << k) - 1);
        chaseInc_ = (config.seed * 2 + 1) & chaseMask_;
        chaseState_ = config.seed & chaseMask_;
        break;
      }
      case WorkloadKind::Stream:
        // Writes start at the upper half of the footprint.
        streamWritePos_ =
            (config.footprintPages / 2) * kPageSize;
        break;
      default:
        break;
    }
}

Addr
Workload::pickPage(bool is_write)
{
    const double hot_p =
        is_write ? config_.writeHotFraction : config_.readHotFraction;
    if (rng_.chance(hot_p)) {
        // The hot cluster occupies the first pages of the footprint
        // (contiguous virtually, as heaps are).
        return hotZipf_.sample(rng_);
    }
    return rng_.below(config_.footprintPages);
}

MemRef
Workload::nextSynthetic()
{
    MemRef ref;
    ref.type = rng_.chance(config_.writeFraction) ? AccessType::Write
                                                  : AccessType::Read;
    ref.flush = ref.type == AccessType::Write &&
                rng_.chance(config_.flushWriteFraction);
    // Writes continue a spatial run only while its locus is hot:
    // stores cluster on the program's core structures, while loads
    // also walk cold data. Without this, run-following writes leak
    // into cold pages and, amplified by write-back coalescing of the
    // hot stores, would dominate the memory-level write stream.
    const bool may_follow =
        ref.type == AccessType::Read ||
        pageOf(lastVaddr_) < hotPages_;
    if (rng_.chance(config_.streamFraction)) {
        // Streaming component: a block-granular sequential sweep of
        // the whole footprint (grids, buffers).
        streamPos_ = (streamPos_ + kBlockSize) %
                     (config_.footprintPages * kPageSize);
        ref.vaddr = streamPos_;
    } else if (refs_ > 0 && may_follow &&
               rng_.chance(config_.spatialRun)) {
        // Continue the current spatial run block by block.
        lastVaddr_ = (lastVaddr_ + kBlockSize) %
                     (config_.footprintPages * kPageSize);
        ref.vaddr = lastVaddr_;
    } else {
        const PageId page = pickPage(ref.type == AccessType::Write);
        const std::uint64_t block = rng_.below(kBlocksPerPage);
        ref.vaddr = pageAddr(page) + block * kBlockSize;
        lastVaddr_ = ref.vaddr;
    }
    return ref;
}

MemRef
Workload::nextZipfian()
{
    MemRef ref;
    ref.type = rng_.chance(config_.writeFraction) ? AccessType::Write
                                                  : AccessType::Read;
    ref.flush = ref.type == AccessType::Write &&
                rng_.chance(config_.flushWriteFraction);
    const std::uint64_t rank = fullZipf_->sample(rng_);
    const PageId page =
        scatterRank(rank, config_.footprintPages);
    ref.vaddr = pageAddr(page) +
                rng_.below(kBlocksPerPage) * kBlockSize;
    return ref;
}

MemRef
Workload::nextGups()
{
    MemRef ref;
    if (gupsWritePending_) {
        // Second half of the update: write back the block just read.
        gupsWritePending_ = false;
        ref.vaddr = gupsAddr_;
        ref.type = AccessType::Write;
        ref.flush = rng_.chance(config_.flushWriteFraction);
        return ref;
    }
    const PageId page = rng_.below(config_.footprintPages);
    gupsAddr_ =
        pageAddr(page) + rng_.below(kBlocksPerPage) * kBlockSize;
    gupsWritePending_ = true;
    ref.vaddr = gupsAddr_;
    ref.type = AccessType::Read;
    return ref;
}

MemRef
Workload::nextStream()
{
    const std::uint64_t half_pages =
        std::max<std::uint64_t>(1, config_.footprintPages / 2);
    MemRef ref;
    if (rng_.chance(config_.writeFraction)) {
        // Write sweep over the upper half of the footprint.
        const Addr base = half_pages * kPageSize;
        const Addr span =
            (config_.footprintPages - half_pages) * kPageSize;
        ref.type = AccessType::Write;
        ref.flush = rng_.chance(config_.flushWriteFraction);
        ref.vaddr = streamWritePos_;
        streamWritePos_ =
            base + (streamWritePos_ - base + kBlockSize) %
                       std::max<Addr>(kBlockSize, span);
    } else {
        // Read sweep over the lower half.
        ref.type = AccessType::Read;
        ref.vaddr = streamReadPos_;
        streamReadPos_ = (streamReadPos_ + kBlockSize) %
                         (half_pages * kPageSize);
    }
    return ref;
}

MemRef
Workload::nextKeyValue()
{
    if (kvRemaining_ == 0) {
        // Start a new op on a Zipf-popular key, its value scattered
        // somewhere in the footprint as hash-table buckets are.
        const std::uint64_t slot =
            scatterRank(fullZipf_->sample(rng_), kvSlots_);
        kvNextAddr_ = slot * config_.kvValueBlocks * kBlockSize;
        kvIsPut_ = rng_.chance(config_.writeFraction);
        kvRemaining_ = std::max<std::uint64_t>(
            1, config_.kvValueBlocks);
    }
    MemRef ref;
    ref.vaddr = kvNextAddr_;
    ref.type = kvIsPut_ ? AccessType::Write : AccessType::Read;
    ref.flush = kvIsPut_ && rng_.chance(config_.flushWriteFraction);
    kvNextAddr_ += kBlockSize;
    --kvRemaining_;
    return ref;
}

MemRef
Workload::nextPointerChase()
{
    MemRef ref;
    if (rng_.chance(config_.writeFraction)) {
        // Mark the node in place (visited flags, ranks, parents).
        ref.type = AccessType::Write;
        ref.flush = rng_.chance(config_.flushWriteFraction);
    } else {
        // Follow the pointer: advance the permutation walk.
        chaseState_ = (chaseState_ * 0xd1342543de82ef95ULL +
                       (chaseInc_ | 1)) &
                      chaseMask_;
        ref.type = AccessType::Read;
    }
    // Mix the state into the node id (bijective on the masked bits:
    // odd multiplications and a xor-shift), so the walk has no
    // spatial structure.
    std::uint64_t node = chaseState_;
    node = (node * 0x9e3779b97f4a7c15ULL) & chaseMask_;
    node ^= node >> 29;
    node = (node * 0xbf58476d1ce4e5b9ULL) & chaseMask_;
    ref.vaddr = node * kBlockSize;
    return ref;
}

bool
Workload::timedReplay() const
{
    return trace_ != nullptr && trace_->timed();
}

bool
Workload::replayTick()
{
    if (replayCountdown_ > 0)
        --replayCountdown_;
    return replayCountdown_ == 0;
}

void
Workload::prefetchTrace()
{
    if (pending_ == nullptr)
        pending_ = std::make_unique<traceio::TraceRecord>();
    std::uint64_t wrap_delay = 0;
    if (!trace_->next(*pending_)) {
        if (!trace_->ok())
            fatal("trace replay: %s", trace_->error().c_str());
        // Clean end of trace: wrap around. The recording's silent
        // tail delays the first wrapped reference so a looped replay
        // keeps the live run's instruction positions exactly.
        wrap_delay = trace_->tailGap();
        trace_->rewind();
        if (!trace_->next(*pending_))
            fatal("trace replay: '%s': %s",
                  config_.traceFile.c_str(),
                  trace_->ok() ? "holds no records"
                               : trace_->error().c_str());
    }
    replayCountdown_ =
        std::max<std::uint64_t>(1, pending_->gap) + wrap_delay;
}

MemRef
Workload::nextFromTrace()
{
    const MemRef ref = pending_->ref;
    prefetchTrace();
    return ref;
}

MemRef
Workload::next()
{
    if (trace_ != nullptr) {
        ++refs_;
        return nextFromTrace();
    }

    MemRef ref;
    switch (config_.kind) {
      case WorkloadKind::Zipfian:
        ref = nextZipfian();
        break;
      case WorkloadKind::Gups:
        ref = nextGups();
        break;
      case WorkloadKind::Stream:
        ref = nextStream();
        break;
      case WorkloadKind::KeyValue:
        ref = nextKeyValue();
        break;
      case WorkloadKind::PointerChase:
        ref = nextPointerChase();
        break;
      case WorkloadKind::Synthetic:
      default:
        ref = nextSynthetic();
        break;
    }

    ++refs_;
    if (config_.churnEvery != 0 && refs_ % config_.churnEvery == 0) {
        // Drop a random cold page; it refaults on its next touch.
        ref.churnPage = true;
        ref.churnVictim =
            hotPages_ +
            rng_.below(std::max<std::uint64_t>(
                1, config_.footprintPages - hotPages_));
    }
    return ref;
}

} // namespace amnt::sim
