#include "sim/workload.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/trace.hh"

namespace amnt::sim
{

Workload::~Workload() = default;

Workload::Workload(const WorkloadConfig &config)
    : config_(config), rng_(config.seed),
      hotZipf_(std::max<std::uint64_t>(
                   1, static_cast<std::uint64_t>(
                          static_cast<double>(config.footprintPages) *
                          config.hotPagesFraction)),
               config.zipfAlpha),
      hotPages_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(config.footprintPages) *
                 config.hotPagesFraction)))
{
    if (config.footprintPages == 0)
        panic("workload needs a non-zero footprint");
    if (!config.traceFile.empty())
        trace_ = std::make_unique<TraceReader>(config.traceFile);
}

Addr
Workload::pickPage(bool is_write)
{
    const double hot_p =
        is_write ? config_.writeHotFraction : config_.readHotFraction;
    if (rng_.chance(hot_p)) {
        // The hot cluster occupies the first pages of the footprint
        // (contiguous virtually, as heaps are).
        return hotZipf_.sample(rng_);
    }
    return rng_.below(config_.footprintPages);
}

MemRef
Workload::next()
{
    if (trace_ != nullptr) {
        MemRef ref;
        if (!trace_->next(ref)) {
            trace_->rewind();
            if (!trace_->next(ref))
                fatal("trace '%s' holds no records",
                      config_.traceFile.c_str());
        }
        ++refs_;
        return ref;
    }

    MemRef ref;
    ref.type = rng_.chance(config_.writeFraction) ? AccessType::Write
                                                  : AccessType::Read;
    ref.flush = ref.type == AccessType::Write &&
                rng_.chance(config_.flushWriteFraction);
    // Writes continue a spatial run only while its locus is hot:
    // stores cluster on the program's core structures, while loads
    // also walk cold data. Without this, run-following writes leak
    // into cold pages and, amplified by write-back coalescing of the
    // hot stores, would dominate the memory-level write stream.
    const bool may_follow =
        ref.type == AccessType::Read ||
        pageOf(lastVaddr_) < hotPages_;
    if (rng_.chance(config_.streamFraction)) {
        // Streaming component: a block-granular sequential sweep of
        // the whole footprint (grids, buffers).
        streamPos_ = (streamPos_ + kBlockSize) %
                     (config_.footprintPages * kPageSize);
        ref.vaddr = streamPos_;
    } else if (refs_ > 0 && may_follow &&
               rng_.chance(config_.spatialRun)) {
        // Continue the current spatial run block by block.
        lastVaddr_ = (lastVaddr_ + kBlockSize) %
                     (config_.footprintPages * kPageSize);
        ref.vaddr = lastVaddr_;
    } else {
        const PageId page = pickPage(ref.type == AccessType::Write);
        const std::uint64_t block = rng_.below(kBlocksPerPage);
        ref.vaddr = pageAddr(page) + block * kBlockSize;
        lastVaddr_ = ref.vaddr;
    }

    ++refs_;
    if (config_.churnEvery != 0 && refs_ % config_.churnEvery == 0) {
        // Drop a random cold page; it refaults on its next touch.
        ref.churnPage = true;
        ref.churnVictim =
            hotPages_ +
            rng_.below(std::max<std::uint64_t>(
                1, config_.footprintPages - hotPages_));
    }
    return ref;
}

} // namespace amnt::sim
