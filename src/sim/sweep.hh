/**
 * @file
 * Parallel sweep runner for the benchmark harnesses.
 *
 * Every figure/table binary replays the same pattern: tens of fully
 * independent (protocol x workload x config) simulations whose results
 * are only combined at formatting time. sweep::run executes such a
 * job list on a work-stealing thread pool and returns the outcomes in
 * submission order.
 *
 * Determinism guarantee: results are bit-identical to a serial run at
 * any thread count. Each job constructs its own sim::System (and with
 * it its own mee::MemoryEngine, mem::NvmDevice, allocator and caches),
 * all simulation randomness is seeded per job from its WorkloadConfig,
 * and no simulator state is shared between jobs — threads only decide
 * *when* a job runs, never what it computes. Wall-clock fields are the
 * only nondeterministic outputs.
 *
 * Thread count: AMNT_SWEEP_THREADS when set (strictly parsed),
 * otherwise one thread per hardware thread.
 *
 * Sharded systems need no special handling here: SystemConfig.shards
 * rides inside each Job's config, and the determinism contract
 * extends to the shard-lane count — a job's statsJson and RunResult
 * are byte-identical whether its system drains one lane or many,
 * at any sweep thread count (see shard/sharded_engine.hh and
 * tests/shard/test_shard_invariance.cc).
 */

#ifndef AMNT_SIM_SWEEP_HH
#define AMNT_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/system.hh"

namespace amnt::sweep
{

/** One independent simulation: a system, its processes, a run length. */
struct Job
{
    sim::SystemConfig config;
    std::vector<sim::WorkloadConfig> processes;
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
};

/** Result of one job plus host-side measurement. */
struct Outcome
{
    sim::RunResult result;
    double wallSeconds = 0.0; ///< host time; nondeterministic

    /** Copy of the frame histogram when the job recorded one. */
    std::unordered_map<PageId, std::uint64_t> accessHistogram;

    /**
     * Per-job registry snapshot (System::statsJson): the system's
     * full federated stats as sorted JSON, captured after the run.
     * Deterministic at any thread count — everything it contains is
     * simulated state (host timings stay out unless AMNT_OBS_TIMING
     * opts in, and those live under the `host.` prefix).
     */
    std::string statsJson;
};

/** Worker count: AMNT_SWEEP_THREADS, else hardware threads. */
unsigned threadCount();

/**
 * Run every job and return outcomes in submission order.
 * @param threads Worker count; 0 = threadCount().
 */
std::vector<Outcome> run(const std::vector<Job> &jobs,
                         unsigned threads = 0);

/**
 * Run @p fn(0..n-1) on the pool; same determinism contract as run()
 * provided each index works on its own state. Used by harness phases
 * that need more than a RunResult (e.g. functional recovery).
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 unsigned threads = 0);

} // namespace amnt::sweep

#endif // AMNT_SIM_SWEEP_HH
